(* Wall-clock packing benchmark: interpreter engine vs compiled plans.

   Unlike the simulator's virtual-time figures (which are bit-identical
   by construction between the two engines), this measures the real
   host-CPU cost of the serialization work itself, the quantity the
   plan compilation is meant to reduce.

   Each shape is measured two ways:
   - whole:  one pack of the full stream (steady-state send of a large
     message with a pre-registered datatype);
   - frag:   the stream produced fragment by fragment through
     [pack_range], the shape of every bounded-MTU transport.  The
     interpreter re-derives its position in the type tree for every
     fragment; the plan resumes a cursor in O(1).

   Usage:
     bench_pack.exe [--smoke] [--out FILE]

   Writes a JSON report (default BENCH_PACK.json) and exits nonzero if
   the plan is meaningfully slower than the interpreter on the
   contiguous shape, where compilation can win nothing and must at
   least not regress. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan

let now = Monotonic_clock.now

(* Median-of-reps wall time per call, in nanoseconds. *)
let time_ns ~reps ~iters f =
  f ();
  f ();
  let samples =
    Array.init reps (fun _ ->
        let t0 = now () in
        for _ = 1 to iters do
          f ()
        done;
        Int64.to_float (Int64.sub (now ()) t0) /. float_of_int iters)
  in
  Array.sort compare samples;
  samples.(reps / 2)

type shape = {
  name : string;
  dt : Dt.t;
  count : int;
  src : Buf.t;
}

let shape name dt ~count =
  let n = max 1 (Dt.ub dt + ((count - 1) * Dt.extent dt)) in
  let src = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 src i ((i * 131 + 17) land 0xff)
  done;
  { name; dt; count; src }

(* Sizes are bounded by the slowest cell of the matrix: the
   interpreter's fragmented pack re-walks the typemap per fragment,
   i.e. O(fragments x leaves) — quadratic in stream size — so "full"
   only doubles the smoke shapes. *)
let shapes ~smoke =
  let s = if smoke then 1 else 2 in
  let wrf =
    let module W =
      (val Option.get (Mpicd_ddtbench.Registry.find "WRF_x_vec"))
    in
    { name = "WRF_x_vec"; dt = W.derived; count = 1; src = W.create () }
  in
  [
    shape "contig" (Dt.contiguous (4096 * s) Dt.byte) ~count:(16 * s);
    shape "hvector"
      (Dt.hvector ~count:(64 * s) ~blocklength:8 ~stride_bytes:32 Dt.byte)
      ~count:(8 * s);
    shape "hindexed"
      (Dt.hindexed
         ~blocklengths:(Array.make (32 * s) 16)
         ~displacements_bytes:(Array.init (32 * s) (fun i -> i * 48))
         Dt.byte)
      ~count:(8 * s);
    shape "struct"
      (Dt.resized ~lb:0 ~extent:64
         (Dt.struct_ ~blocklengths:[| 3; 2; 1 |]
            ~displacements_bytes:[| 0; 16; 40 |]
            ~types:[| Dt.int32; Dt.float64; Dt.int64 |]))
      ~count:(64 * s);
    wrf;
  ]

type row = {
  r_name : string;
  bytes : int;
  blocks : int;
  whole_interp_ns : float;
  whole_plan_ns : float;
  frag_size : int;
  frag_interp_ns : float;
  frag_plan_ns : float;
}

let bench ~reps ~iters ~frag_size { name; dt; count; src } =
  let plan = Plan.get dt in
  let psize = Dt.packed_size dt ~count in
  let dst = Buf.create psize in
  let whole_interp_ns =
    time_ns ~reps ~iters (fun () -> ignore (Dt.pack dt ~count ~src ~dst))
  in
  let whole_plan_ns =
    time_ns ~reps ~iters (fun () -> ignore (Plan.pack plan ~count ~src ~dst))
  in
  (* Fragmented stream: same frag_size for both engines; the plan side
     threads a cursor exactly like the transport descriptors do. *)
  let frag_interp_ns =
    time_ns ~reps ~iters (fun () ->
        let off = ref 0 in
        while !off < psize do
          let len = min frag_size (psize - !off) in
          ignore
            (Dt.pack_range dt ~count ~src ~packed_off:!off
               ~dst:(Buf.sub dst ~pos:!off ~len));
          off := !off + len
        done)
  in
  let frag_plan_ns =
    time_ns ~reps ~iters (fun () ->
        let cur = Plan.cursor plan in
        let off = ref 0 in
        while !off < psize do
          let len = min frag_size (psize - !off) in
          ignore
            (Plan.pack_range ~cursor:cur plan ~count ~src ~packed_off:!off
               ~dst:(Buf.sub dst ~pos:!off ~len));
          off := !off + len
        done)
  in
  {
    r_name = name;
    bytes = psize;
    blocks = Plan.block_count plan * count;
    whole_interp_ns;
    whole_plan_ns;
    frag_size;
    frag_interp_ns;
    frag_plan_ns;
  }

let speedup interp plan = if plan > 0. then interp /. plan else 0.

let json_of_row r =
  Printf.sprintf
    {|    { "name": %S, "bytes": %d, "blocks": %d,
      "whole": { "interp_ns": %.1f, "plan_ns": %.1f, "speedup": %.3f },
      "frag": { "size": %d, "interp_ns": %.1f, "plan_ns": %.1f, "speedup": %.3f } }|}
    r.r_name r.bytes r.blocks r.whole_interp_ns r.whole_plan_ns
    (speedup r.whole_interp_ns r.whole_plan_ns)
    r.frag_size r.frag_interp_ns r.frag_plan_ns
    (speedup r.frag_interp_ns r.frag_plan_ns)

let () =
  let smoke = ref false and out = ref "BENCH_PACK.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench_pack: unknown argument %S\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !smoke then 5 else 11 in
  let iters = if !smoke then 5 else 10 in
  let frag_size = if !smoke then 512 else 1024 in
  let rows = List.map (bench ~reps ~iters ~frag_size) (shapes ~smoke:!smoke) in
  let find n = List.find (fun r -> r.r_name = n) rows in
  let contig = find "contig" and hvec = find "hvector" in
  (* Contiguous packing is a single memcpy under both engines: the plan
     may win nothing there, but it must not lose.  1.5x of tolerance
     absorbs timer noise at smoke sizes. *)
  let contig_ok =
    contig.whole_plan_ns <= contig.whole_interp_ns *. 1.5
    && contig.frag_plan_ns <= contig.frag_interp_ns *. 1.5
  in
  let hvec_frag_speedup = speedup hvec.frag_interp_ns hvec.frag_plan_ns in
  let oc = open_out !out in
  Printf.fprintf oc
    {|{
  "smoke": %b,
  "reps": %d,
  "iters": %d,
  "shapes": [
%s
  ],
  "guard": {
    "contig_never_slower": %b,
    "hvector_frag_speedup": %.3f
  }
}
|}
    !smoke reps iters
    (String.concat ",\n" (List.map json_of_row rows))
    contig_ok hvec_frag_speedup;
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf "%-12s %8dB  whole %8.0f -> %8.0f ns (%5.2fx)   frag(%d) %8.0f -> %8.0f ns (%5.2fx)\n"
        r.r_name r.bytes r.whole_interp_ns r.whole_plan_ns
        (speedup r.whole_interp_ns r.whole_plan_ns)
        r.frag_size r.frag_interp_ns r.frag_plan_ns
        (speedup r.frag_interp_ns r.frag_plan_ns))
    rows;
  Printf.printf "hvector fragmented speedup: %.2fx; contig guard: %s\n"
    hvec_frag_speedup
    (if contig_ok then "ok" else "FAILED");
  if not contig_ok then begin
    prerr_endline
      "bench_pack: compiled plan slower than interpreter on contiguous shape";
    exit 1
  end
