(* Wall-clock throughput benchmark of the simulation engine.

   Two layers are measured:

   - queue churn ("hold" pattern): pop the minimum event and push a
     replacement at a later time, holding the number of live events
     constant — the steady state of a large simulation.  The retained
     reference binary heap ([Heap], the seed engine's queue, which
     allocates an entry record, a float box and an option per push and
     a tuple per pop) is run against the pooled calendar queue ([Evq],
     the engine's current queue: O(1) push, allocation-free steady
     state).  The hold level stands in for the rank count: a 1k-rank
     workload keeps ~1k events live.

   - whole-engine runs: [Harness.scale_allreduce] builds a 1024-rank
     (and, full mode, 4096-rank) world, runs binomial-tree allreduces
     over flat and fat-tree networks, and reports wall-clock events/sec
     plus peak live events and pool hit rate.

   Usage:
     bench_sim.exe [--smoke] [--out FILE]

   Writes a JSON report (default BENCH_SIM.json) and exits nonzero if
   the pooled queue fails the >= 5x events/sec guard over the seed
   binary heap at the 1k hold level. *)

module Heap = Mpicd_simnet.Heap
module Evq = Mpicd_simnet.Evq
module Topology = Mpicd_simnet.Topology
module Harness = Mpicd_harness.Harness

let now = Monotonic_clock.now

(* Median-of-reps wall time of [f ()], in nanoseconds. *)
let time_ns ~reps f =
  f ();
  let samples =
    Array.init reps (fun _ ->
        let t0 = now () in
        f ();
        Int64.to_float (Int64.sub (now ()) t0))
  in
  Array.sort compare samples;
  samples.(reps / 2)

(* Deterministic delay stream shared by both queue variants (xorshift:
   no division, so generator cost doesn't drown the queue cost). *)
let lcg = ref 88172645463325252

let reset_lcg () = lcg := 88172645463325252

let next_delta () =
  let s = !lcg in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  lcg := s;
  float_of_int (1 + (s land 1023))

let nop () = ()

let churn_heap ~live ~ops =
  reset_lcg ();
  let h = Heap.create () in
  let seq = ref 0 in
  for _ = 1 to live do
    incr seq;
    Heap.push h ~time:(next_delta ()) ~seq:!seq nop
  done;
  for _ = 1 to ops do
    match Heap.pop h with
    | None -> assert false
    | Some (time, _, f) ->
        f ();
        incr seq;
        Heap.push h ~time:(time +. next_delta ()) ~seq:!seq f
  done

let churn_evq ~live ~ops =
  reset_lcg ();
  let q = Evq.create () in
  let seq = ref 0 in
  for _ = 1 to live do
    incr seq;
    Evq.push q ~time:(next_delta ()) ~seq:!seq nop
  done;
  for _ = 1 to ops do
    let time = Evq.min_time q in
    let f = Evq.pop_min q in
    f ();
    incr seq;
    Evq.push q ~time:(time +. next_delta ()) ~seq:!seq f
  done

type queue_row = {
  q_live : int;
  q_ops : int;
  heap_ns : float;
  evq_ns : float;
}

let events_per_sec ops ns = if ns > 0. then float_of_int ops /. (ns /. 1e9) else 0.

let q_speedup r = if r.evq_ns > 0. then r.heap_ns /. r.evq_ns else 0.

let bench_queue ~reps ~ops live =
  let heap_ns = time_ns ~reps (fun () -> churn_heap ~live ~ops) in
  let evq_ns = time_ns ~reps (fun () -> churn_evq ~live ~ops) in
  { q_live = live; q_ops = ops; heap_ns; evq_ns }

let json_of_queue_row r =
  Printf.sprintf
    {|    { "live": %d, "ops": %d,
      "heap": { "ns": %.0f, "events_per_sec": %.0f },
      "evq": { "ns": %.0f, "events_per_sec": %.0f },
      "speedup": %.3f }|}
    r.q_live r.q_ops r.heap_ns
    (events_per_sec r.q_ops r.heap_ns)
    r.evq_ns
    (events_per_sec r.q_ops r.evq_ns)
    (q_speedup r)

type engine_row = {
  e_ranks : int;
  e_topology : string;
  e_wall_ns : float;
  e_result : Harness.scale_result;
}

let bench_engine ~iters ~elems ~ranks topology =
  let result = ref None in
  let wall_ns =
    time_ns ~reps:1 (fun () ->
        result := Some (Harness.scale_allreduce ?topology ~iters ~elems ~ranks ()))
  in
  let r = Option.get !result in
  { e_ranks = ranks; e_topology = r.Harness.topology; e_wall_ns = wall_ns; e_result = r }

let json_of_engine_row e =
  let r = e.e_result in
  Printf.sprintf
    {|    { "ranks": %d, "topology": %S, "wall_ms": %.1f,
      "events": %d, "events_per_sec": %.0f, "pooled": %d, "max_live_events": %d,
      "sim_time_ms": %.3f, "wall_per_sim_second": %.1f,
      "congestion_events": %d, "congestion_wait_ms": %.3f, "checksum": %.1f }|}
    e.e_ranks e.e_topology (e.e_wall_ns /. 1e6) r.Harness.events
    (events_per_sec r.Harness.events e.e_wall_ns)
    r.Harness.pooled r.Harness.max_live
    (r.Harness.sim_time_ns /. 1e6)
    (if r.Harness.sim_time_ns > 0. then e.e_wall_ns /. r.Harness.sim_time_ns
     else 0.)
    r.Harness.congestion_events
    (r.Harness.congestion_wait_ns /. 1e6)
    r.Harness.checksum

let () =
  let smoke = ref false and out = ref "BENCH_SIM.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench_sim: unknown argument %S\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !smoke then 5 else 11 in
  let ops = if !smoke then 200_000 else 2_000_000 in
  let queue_rows = List.map (bench_queue ~reps ~ops) [ 1024; 4096 ] in
  let engine_rows =
    let iters = if !smoke then 1 else 4 and elems = if !smoke then 4 else 64 in
    let at ranks =
      [
        bench_engine ~iters ~elems ~ranks None;
        bench_engine ~iters ~elems ~ranks
          (Some (Topology.fat_tree ~nranks:ranks ()));
      ]
    in
    at 1024 @ (if !smoke then [] else at 4096)
  in
  let r1k = List.find (fun r -> r.q_live = 1024) queue_rows in
  (* The tentpole guard: at the 1k-rank hold level the pooled calendar
     queue must move events at >= 5x the seed binary heap's rate. *)
  let guard_ok = q_speedup r1k >= 5.0 in
  let oc = open_out !out in
  Printf.fprintf oc
    {|{
  "smoke": %b,
  "reps": %d,
  "queue": [
%s
  ],
  "engine": [
%s
  ],
  "guard": {
    "min_speedup_1k": 5.0,
    "speedup_1k": %.3f,
    "ok": %b
  }
}
|}
    !smoke reps
    (String.concat ",\n" (List.map json_of_queue_row queue_rows))
    (String.concat ",\n" (List.map json_of_engine_row engine_rows))
    (q_speedup r1k) guard_ok;
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "queue hold=%-5d heap %8.0f ev/s  evq %8.0f ev/s  (%.2fx)\n" r.q_live
        (events_per_sec r.q_ops r.heap_ns)
        (events_per_sec r.q_ops r.evq_ns)
        (q_speedup r))
    queue_rows;
  List.iter
    (fun e ->
      Printf.printf
        "engine ranks=%-5d %-9s %8.0f ev/s  peak_live=%d  wall=%.0f ms\n"
        e.e_ranks e.e_topology
        (events_per_sec e.e_result.Harness.events e.e_wall_ns)
        e.e_result.Harness.max_live (e.e_wall_ns /. 1e6))
    engine_rows;
  Printf.printf "1k-hold speedup: %.2fx; guard (>=5x): %s\n" (q_speedup r1k)
    (if guard_ok then "ok" else "FAIL");
  if not guard_ok then exit 1
