(* Wall-clock checkpoint benchmark: plan-serialized snapshots vs the
   naive alternative.

   [Snapshot.encode] reuses the compiled pack-plan engine to serialize
   a registered buffer, so a checkpoint costs one plan pack plus two
   CRC-32 passes and elides the gaps of strided layouts.  The naive
   checkpoint it displaces copies the buffer's full extent footprint
   verbatim and checksums it — no layout knowledge, gaps included.
   This measures the real host-CPU cost of both, plus the restore
   (validate + plan unpack) latency.

   Usage:
     bench_ckpt.exe [--smoke] [--out FILE]

   Writes a JSON report (default BENCH_CKPT.json) and exits nonzero if
   - the contiguous snapshot is meaningfully slower than the naive
     copy+CRC (there the plan degenerates to one memcpy and must not
     regress), or
   - a strided snapshot image is not smaller than the naive extent
     image (the gap-elision guarantee). *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Crc32 = Mpicd_ucx.Crc32
module Snapshot = Mpicd_restart.Snapshot

let now = Monotonic_clock.now

(* Median-of-reps wall time per call, in nanoseconds. *)
let time_ns ~reps ~iters f =
  f ();
  f ();
  let samples =
    Array.init reps (fun _ ->
        let t0 = now () in
        for _ = 1 to iters do
          f ()
        done;
        Int64.to_float (Int64.sub (now ()) t0) /. float_of_int iters)
  in
  Array.sort compare samples;
  samples.(reps / 2)

type shape = {
  name : string;
  dt : Dt.t;
  count : int;
  src : Buf.t;
}

let shape name dt ~count =
  let n = max 1 (Dt.ub dt + ((count - 1) * Dt.extent dt)) in
  let src = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 src i ((i * 131 + 17) land 0xff)
  done;
  { name; dt; count; src }

let shapes ~smoke =
  let s = if smoke then 1 else 4 in
  [
    shape "contig" (Dt.contiguous (16384 * s) Dt.byte) ~count:(16 * s);
    shape "vector"
      (Dt.vector ~count:(256 * s) ~blocklength:4 ~stride:8 Dt.float64)
      ~count:(8 * s);
    shape "struct"
      (Dt.resized ~lb:0 ~extent:64
         (Dt.struct_ ~blocklengths:[| 3; 2; 1 |]
            ~displacements_bytes:[| 0; 16; 40 |]
            ~types:[| Dt.int32; Dt.float64; Dt.int64 |]))
      ~count:(512 * s);
  ]

type row = {
  r_name : string;
  payload : int;  (* packed payload bytes in the snapshot *)
  image : int;  (* full snapshot image, header included *)
  naive : int;  (* naive image: extent footprint + 4-byte CRC *)
  encode_ns : float;
  naive_ns : float;
  restore_ns : float;
}

let gb_per_s bytes ns = if ns > 0. then float_of_int bytes /. ns else 0.

let bench ~reps ~iters { name; dt; count; src } =
  let payload = Dt.packed_size dt ~count in
  let image = Snapshot.encoded_size dt ~count in
  let naive = Buf.length src + 4 in
  let encode_ns =
    time_ns ~reps ~iters (fun () ->
        ignore (Snapshot.encode ~epoch:1 ~rank:0 ~cid:0 ~dt ~count ~src ()))
  in
  (* the layout-blind checkpoint: copy the whole footprint, checksum it *)
  let naive_ns =
    time_ns ~reps ~iters (fun () ->
        let img = Buf.copy src in
        ignore (Crc32.digest img))
  in
  let img = Snapshot.encode ~epoch:1 ~rank:0 ~cid:0 ~dt ~count ~src () in
  let dst = Buf.create (Buf.length src) in
  let restore_ns =
    time_ns ~reps ~iters (fun () ->
        match Snapshot.decode ~dt ~count ~dst img with
        | Ok _ -> ()
        | Error e -> failwith (Snapshot.error_to_string e))
  in
  { r_name = name; payload; image; naive; encode_ns; naive_ns; restore_ns }

let json_of_row r =
  Printf.sprintf
    {|    { "name": %S, "payload_bytes": %d, "image_bytes": %d, "naive_bytes": %d,
      "encode_ns": %.1f, "encode_gb_s": %.3f,
      "naive_ns": %.1f, "naive_gb_s": %.3f,
      "restore_ns": %.1f, "restore_gb_s": %.3f }|}
    r.r_name r.payload r.image r.naive r.encode_ns
    (gb_per_s r.payload r.encode_ns)
    r.naive_ns
    (gb_per_s r.naive r.naive_ns)
    r.restore_ns
    (gb_per_s r.payload r.restore_ns)

let () =
  let smoke = ref false and out = ref "BENCH_CKPT.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench_ckpt: unknown argument %S\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !smoke then 5 else 11 in
  let iters = if !smoke then 5 else 10 in
  let rows = List.map (bench ~reps ~iters) (shapes ~smoke:!smoke) in
  let find n = List.find (fun r -> r.r_name = n) rows in
  let contig = find "contig" and vector = find "vector" in
  (* A contiguous snapshot is one memcpy plus the CRCs under both
     schemes: the plan may win nothing there, but it must not lose.
     2x of tolerance absorbs timer noise at smoke sizes (the snapshot
     also stamps and checksums its 64-byte header). *)
  let contig_ok = contig.encode_ns <= contig.naive_ns *. 2. in
  (* Gap elision is deterministic: a strided image must be smaller
     than the footprint the naive scheme persists. *)
  let elision_ok = vector.image < vector.naive in
  let oc = open_out !out in
  Printf.fprintf oc
    {|{
  "smoke": %b,
  "reps": %d,
  "iters": %d,
  "shapes": [
%s
  ],
  "guard": {
    "contig_never_slower": %b,
    "strided_image_smaller": %b,
    "vector_image_bytes": %d,
    "vector_naive_bytes": %d
  }
}
|}
    !smoke reps iters
    (String.concat ",\n" (List.map json_of_row rows))
    contig_ok elision_ok vector.image vector.naive;
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %8dB image (naive %8dB)  encode %8.0f ns (%5.2f GB/s, naive %5.2f)  restore %8.0f ns\n"
        r.r_name r.image r.naive r.encode_ns
        (gb_per_s r.payload r.encode_ns)
        (gb_per_s r.naive r.naive_ns)
        r.restore_ns)
    rows;
  Printf.printf "guards: contig %s, strided image %s\n"
    (if contig_ok then "ok" else "FAILED")
    (if elision_ok then "smaller" else "NOT SMALLER");
  if not (contig_ok && elision_ok) then begin
    prerr_endline "bench_ckpt: regression guard failed";
    exit 1
  end
