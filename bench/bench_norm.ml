(* Wall-clock benchmark for the datatype normalizer: raw vs normalized
   commitment and packing.

   The normalizer's claim is asymmetric and this measures both halves:

   - pack:    the rewrite preserves the type map, so the merged-block
     sequence — and therefore per-send pack time — must not change.
     The guard fails if the normalized form packs meaningfully slower
     than the raw form on any shape ("never loses").
   - commit:  the rewrite shrinks the descriptor (fewer nodes and index
     entries), so plan compilation of the normalized form should be
     cheaper on the shapes with large index arrays, and must at least
     not regress on the rest.

   Usage:
     bench_norm.exe [--smoke] [--out FILE]

   Writes a JSON report (default BENCH_NORM.json) and exits nonzero if
   the normalized form loses on any shape beyond the noise margin. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan
module Normalize = Mpicd_datatype.Normalize

let now = Monotonic_clock.now

(* Median-of-reps wall time per call, in nanoseconds. *)
let time_ns ~reps ~iters f =
  f ();
  f ();
  let samples =
    Array.init reps (fun _ ->
        let t0 = now () in
        for _ = 1 to iters do
          f ()
        done;
        Int64.to_float (Int64.sub (now ()) t0) /. float_of_int iters)
  in
  Array.sort compare samples;
  samples.(reps / 2)

(* Denormalized shapes the rewrite engine actually improves, plus an
   already-normal control where it must be a no-op. *)
let shapes ~smoke =
  let s = if smoke then 1 else 4 in
  [
    ( "hvector-collapse",
      Dt.hvector ~count:(256 * s) ~blocklength:8 ~stride_bytes:64 Dt.float64 );
    ( "hindexed-coalesce",
      (* byte-adjacent runs: a large index array that melts away *)
      Dt.hindexed
        ~blocklengths:(Array.make (256 * s) 2)
        ~displacements_bytes:(Array.init (256 * s) (fun i -> i * 16))
        Dt.float64 );
    ( "hindexed-vector",
      Dt.hindexed
        ~blocklengths:(Array.make (256 * s) 2)
        ~displacements_bytes:(Array.init (256 * s) (fun i -> i * 48))
        Dt.float64 );
    ( "struct-homogeneous",
      Dt.struct_
        ~blocklengths:(Array.make 32 2)
        ~displacements_bytes:(Array.init 32 (fun i -> i * 32))
        ~types:(Array.make 32 Dt.float64) );
    ( "nested-contig",
      Dt.contiguous 4 (Dt.contiguous 8 (Dt.contiguous (32 * s) Dt.int32)) );
    ( "control-strided",
      (* honest gapped column: already normal, nothing may change *)
      Dt.vector ~count:(64 * s) ~blocklength:1 ~stride:4 Dt.float64 );
  ]

type row = {
  r_name : string;
  bytes : int;
  steps : int;
  predicted_saving_ns : float;
  normalize_ns : float;
  compile_raw_ns : float;
  compile_norm_ns : float;
  pack_raw_ns : float;
  pack_norm_ns : float;
}

let bench ~reps ~iters ~count (name, dt) =
  let r = Normalize.run dt in
  let norm = r.Normalize.normalized in
  (match Normalize.verify_bytes dt norm with
  | Ok () -> ()
  | Error why ->
      Printf.eprintf "bench_norm: %s: normalization not byte-identical: %s\n"
        name why;
      exit 2);
  let n = max 1 (Dt.ub dt + ((count - 1) * Dt.extent dt)) in
  let src = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 src i ((i * 131 + 17) land 0xff)
  done;
  let dst = Buf.create (Dt.packed_size dt ~count) in
  let normalize_ns =
    time_ns ~reps ~iters (fun () -> ignore (Normalize.run dt))
  in
  let compile_raw_ns =
    time_ns ~reps ~iters (fun () -> ignore (Plan.build dt))
  in
  let compile_norm_ns =
    time_ns ~reps ~iters (fun () -> ignore (Plan.build norm))
  in
  let pack_raw_ns =
    time_ns ~reps ~iters (fun () -> ignore (Dt.pack dt ~count ~src ~dst))
  in
  let pack_norm_ns =
    time_ns ~reps ~iters (fun () -> ignore (Dt.pack norm ~count ~src ~dst))
  in
  {
    r_name = name;
    bytes = Dt.packed_size dt ~count;
    steps = List.length r.Normalize.steps;
    predicted_saving_ns =
      r.Normalize.original_cost.Normalize.total_ns
      -. r.Normalize.normalized_cost.Normalize.total_ns;
    normalize_ns;
    compile_raw_ns;
    compile_norm_ns;
    pack_raw_ns;
    pack_norm_ns;
  }

let ratio a b = if b > 0. then a /. b else 1.

let json_of_row r =
  Printf.sprintf
    {|    { "name": %S, "bytes": %d, "steps": %d, "predicted_saving_ns": %.1f,
      "normalize_ns": %.1f,
      "compile": { "raw_ns": %.1f, "norm_ns": %.1f, "speedup": %.3f },
      "pack": { "raw_ns": %.1f, "norm_ns": %.1f, "speedup": %.3f } }|}
    r.r_name r.bytes r.steps r.predicted_saving_ns r.normalize_ns
    r.compile_raw_ns r.compile_norm_ns
    (ratio r.compile_raw_ns r.compile_norm_ns)
    r.pack_raw_ns r.pack_norm_ns
    (ratio r.pack_raw_ns r.pack_norm_ns)

let () =
  let smoke = ref false and out = ref "BENCH_NORM.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench_norm: unknown argument %S\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !smoke then 5 else 11 in
  let iters = if !smoke then 10 else 50 in
  let count = if !smoke then 4 else 16 in
  let rows = List.map (bench ~reps ~iters ~count) (shapes ~smoke:!smoke) in
  (* Never-loses guard: identical type maps mean identical merged
     blocks, so normalized packing may only differ by timer noise; the
     1.35x slack absorbs it at smoke sizes.  Compilation gets the same
     slack — it should win on the indexed shapes but the guard only
     demands "not slower". *)
  let slack = 1.35 in
  let losses =
    List.concat_map
      (fun r ->
        (if r.pack_norm_ns > r.pack_raw_ns *. slack then
           [ Printf.sprintf "%s: pack %.0f -> %.0f ns" r.r_name r.pack_raw_ns
               r.pack_norm_ns ]
         else [])
        @
        if r.compile_norm_ns > r.compile_raw_ns *. slack then
          [ Printf.sprintf "%s: compile %.0f -> %.0f ns" r.r_name
              r.compile_raw_ns r.compile_norm_ns ]
        else [])
      rows
  in
  let oc = open_out !out in
  Printf.fprintf oc
    {|{
  "smoke": %b,
  "reps": %d,
  "iters": %d,
  "slack": %.2f,
  "shapes": [
%s
  ],
  "guard": {
    "normalized_never_loses": %b
  }
}
|}
    !smoke reps iters slack
    (String.concat ",\n" (List.map json_of_row rows))
    (losses = []);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "%-18s %8dB %2d step(s)  compile %8.0f -> %8.0f ns (%5.2fx)   pack %8.0f -> %8.0f ns (%5.2fx)\n"
        r.r_name r.bytes r.steps r.compile_raw_ns r.compile_norm_ns
        (ratio r.compile_raw_ns r.compile_norm_ns)
        r.pack_raw_ns r.pack_norm_ns
        (ratio r.pack_raw_ns r.pack_norm_ns))
    rows;
  if losses <> [] then begin
    List.iter
      (fun l -> Printf.eprintf "bench_norm: normalized form lost: %s\n" l)
      losses;
    exit 1
  end;
  print_endline "normalized-never-loses guard: ok"
