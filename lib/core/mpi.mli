(** mpicd point-to-point layer.

    The OCaml analog of the paper's [mpicd] crate: communicators and
    point-to-point operations over the simulated UCX transport, where a
    message buffer is described by one of three descriptor kinds
    (the Rust prototype's buffer trait):

    - [Bytes] — a raw contiguous byte buffer ([MPI_BYTE]);
    - [Typed] — a classic derived datatype + count + base address
      (what RSMPI / Open MPI offer today);
    - [Custom] — a buffer of a {!Custom.t} datatype (the paper's new
      API); sent as a single scatter/gather message whose first entry
      is the packed data and whose remaining entries are the type's
      zero-copy memory regions.

    Every rank of a world runs as one simulation fiber; all blocking
    calls ([send], [recv], [wait], [probe], [barrier]) suspend the
    calling fiber on the virtual clock. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Datatype = Mpicd_datatype.Datatype

(** {1 Worlds} *)

type world

val create_world :
  ?config:Config.t ->
  ?topology:Mpicd_simnet.Topology.t ->
  size:int ->
  unit ->
  world
(** A simulated cluster of [size] ranks.  Without [topology] (the
    default) the network is a flat full mesh of independent wires —
    bit-identical to every historical result.  With [topology] all
    message payloads route over the topology's shared links with
    congestion-aware serialization ({!Mpicd_simnet.Topology});
    endpoints are created lazily so worlds of thousands of ranks
    don't pay an N{^2} setup cost.
    @raise Invalid_argument if the topology has fewer ranks than
    [size]. *)

val world_engine : world -> Engine.t
val world_stats : world -> Stats.t
val world_config : world -> Config.t
val world_size : world -> int

type comm

val comm_for_rank : world -> int -> comm
(** The world communicator as seen by rank [i]. *)

val spawn_rank : world -> int -> (comm -> unit) -> unit
(** Spawn one rank's program as a fiber (does not run the engine). *)

val run : world -> (comm -> unit) -> unit
(** SPMD convenience: spawn [f] on every rank and run the simulation to
    completion.  @raise Engine.Deadlock if ranks block forever. *)

val set_trace : world -> Mpicd_simnet.Trace.t option -> unit
(** Attach a protocol-event trace to the world's transport. *)

val set_obs : world -> Mpicd_obs.Obs.t -> unit
(** Attach one observability sink to every layer of this world: MPI
    operations become ["p2p"] spans (send/isend/recv/irecv/wait/barrier,
    post to completion), transport protocol phases ["proto"] spans,
    pack/unpack callback invocations ["callback"] spans, and rank fibers
    ["fiber"] spans, with message-size/latency/queue-depth metrics in
    the sink's registry.  Pass [Mpicd_obs.Obs.null] to detach.
    Recording is passive: it never changes timing, matching, or
    [Stats]. *)

val set_faults : world -> Mpicd_simnet.Fault.t option -> unit
(** Attach (or detach) a fault-injection plan to the world's transport:
    fragments may be dropped, corrupted, duplicated or delayed, links
    may flap, and ranks may crash, all deterministically from the
    plan's seed.  The transport recovers through a reliable-delivery
    protocol (sequence numbers, CRC-32, ack/nack, retransmission with
    exponential backoff on the virtual clock); unrecoverable failures
    surface as [Timeout], [Peer_failed] or [Data_corrupted] through the
    communicator's {!errhandler}.  With [None] (the default) behaviour
    is bit-identical to a fault-free build.  See docs/FAULTS.md. *)

val faults : world -> Mpicd_simnet.Fault.t option
(** The currently attached fault plan, if any. *)

val set_fault_tap :
  world -> (Mpicd_simnet.Fault.probe -> unit) option -> unit
(** Install (or clear) the explorer's probe tap on the attached plan's
    runtime (see {!Mpicd_ucx.Ucx.set_tap}).  Call after {!set_faults};
    no-op without a plan.  Taps observe, they never mutate simulation
    state. *)

(** Test-only seeded-bug switches used by the fault-space explorer's
    mutation self-check (docs/FAULTS.md): each flag re-introduces one
    historical bug so the explorer can prove it would have found it.
    All default to [false]; leaving them off is bit-identical to not
    having them. *)
module Mutation : sig
  val revoke_oneshot : bool ref
  (** Pre-PR-8 {!comm_revoke} bug: a rank already declared failed
      claims the one-shot broadcast flag it can never honor, starving
      the survivors' revoke and hanging ranks blocked on alive peers
      that abandoned the communication pattern. *)
end

val set_unpack_shuffle : world -> seed:int option -> unit
(** Test knob: when set, unpack fragments of custom datatypes created
    with [~inorder:false] are presented out of order (the paper's
    out-of-order optimization that the [inorder] flag would inhibit). *)

(** {1 Communication monitor}

    Passive observation hooks for the {!Mpicd_check} analyzers: every
    point-to-point operation posted on a monitored world is recorded
    with enough metadata (world ranks, tag-space coordinates,
    run-length-encoded type signature) that a MUST-style checker can
    replay the MPI matching semantics after the run — pairing sends with
    receives, flagging signature mismatches and truncation, and building
    a wait-for graph over whatever is left pending at a deadlock. *)

module Monitor : sig
  type op_kind = Send | Recv

  type dt_class = Dc_bytes | Dc_typed | Dc_custom
  (** Which buffer descriptor the operation used.  Custom datatypes are
      opaque to signature matching (the paper's API deliberately hides
      the layout behind callbacks), so checkers skip them. *)

  type op = {
    id : int;  (** unique per monitor, in posting order *)
    kind : op_kind;
    rank : int;  (** world rank of the posting rank *)
    peer : int;
        (** destination (sends) / expected source (recvs) as a world
            rank; [-1] means ANY_SOURCE *)
    tag : int;  (** user tag; [-1] means ANY_TAG *)
    cid : int;  (** communicator id *)
    channel_kind : int;
        (** tag-space kind code; [0] is user traffic, nonzero codes are
            library-internal channels (collectives, object messaging) *)
    dt_class : dt_class;
    signature : (Datatype.predefined * int) list;
        (** run-length-encoded type signature of the whole message;
            empty for custom datatypes and empty messages *)
    nbytes : int;  (** wire bytes (sends) / capacity (recvs); [-1] unknown *)
    blocking : bool;
    posted_at : float;  (** virtual time of posting *)
  }

  type outcome = {
    o_op : op;
    o_peer : int;  (** actual matched peer, as a world rank *)
    o_tag : int;  (** actual tag of the matched message *)
    o_len : int;
    o_error : string option;  (** truncation / callback failure, if any *)
  }

  type t

  val create : unit -> t

  val outcomes : t -> outcome list
  (** Operations that completed at the transport level (even if never
      waited on), in posting order. *)

  val pending : t -> op list
  (** Operations posted but not completed, in posting order: the raw
      material of the wait-for graph and unmatched-at-finalize checks. *)

  val rle_repeat : ('a * int) list -> int -> ('a * int) list
  (** Repeat a run-length-encoded sequence, keeping it canonical. *)
end

val set_monitor : world -> Monitor.t option -> unit
(** Attach a monitor; [None] detaches.  Monitoring records metadata at
    post time only and never perturbs matching, timing or data. *)

(** {1 Communicator queries} *)

val rank : comm -> int
val size : comm -> int
val world_of : comm -> world

val world_rank_of : comm -> int -> int
(** Translate a communicator rank to the underlying world rank. *)

val comm_split : comm -> color:int -> key:int -> comm
(** MPI_Comm_split (collective over the parent communicator): ranks
    with equal [color] form a new communicator, ordered by [(key, old
    rank)].  The new communicator's traffic lives in its own tag
    sub-space and cannot collide with the parent's. *)

val comm_dup : comm -> comm
(** MPI_Comm_dup: same group, fresh isolated tag space. *)

val any_source : int
val any_tag : int

(** {1 Buffers} *)

type buffer =
  | Bytes of Buf.t
  | Typed of { dt : Datatype.t; count : int; base : Buf.t }
  | Custom : { dt : 'o Custom.t; obj : 'o; count : int } -> buffer

val buffer_size : buffer -> int
(** Wire footprint of the buffer: byte length, packed datatype size, or
    packed size + region bytes for custom buffers (runs the query and
    region callbacks on a throwaway state). *)

(** {1 Errors and status} *)

type error =
  | Truncated of { expected : int; capacity : int }
  | Callback_failed of int
  | Timeout of { retries : int }
      (** reliable delivery gave up after [retries] retransmissions, or
          a rendezvous handshake timed out ([retries = 0]); only occurs
          with a fault plan attached (see {!set_faults}) *)
  | Peer_failed of { peer : int }
      (** the peer (world rank) crashed mid-transfer *)
  | Data_corrupted
      (** retries exhausted on checksum failures, or end-to-end
          verification failed after the packed-path fallback *)
  | Revoked
      (** the communicator was revoked with {!comm_revoke} (ULFM
          [MPI_ERR_REVOKED]); all pending and future operations on it
          complete with this error *)

exception Mpi_error of error

type errhandler =
  | Errors_raise  (** raise {!Mpi_error} at the waiting call (default) *)
  | Errors_abort  (** raise {!Aborted}: treat any error as rank-fatal *)
  | Errors_return
      (** MPI_ERRORS_RETURN: the waiting call returns a zero-length
          status; the error is available via {!last_error} *)

exception Aborted of { rank : int; error : error }

val set_errhandler : comm -> errhandler -> unit
(** Set how operations on this communicator surface transport errors.
    The handler is shared by all ranks of the communicator and is
    inherited by communicators derived via {!comm_split}/{!comm_dup}. *)

val get_errhandler : comm -> errhandler

val last_error : comm -> error option
(** Under [Errors_return]: the most recent error swallowed by a
    degraded completion on this communicator at this rank. *)

val clear_last_error : comm -> unit

type status = { source : int; tag : int; len : int }

(** {1 Point-to-point} *)

val send : comm -> dst:int -> tag:int -> buffer -> unit
val recv : comm -> ?source:int -> ?tag:int -> buffer -> status
(** [source]/[tag] default to {!any_source}/{!any_tag}. *)

type request

val isend : comm -> dst:int -> tag:int -> buffer -> request
val irecv : comm -> ?source:int -> ?tag:int -> buffer -> request
val wait : request -> status
val waitall : request list -> status list

val test : request -> status option
(** Non-blocking completion check (MPI_Test).  Returns the status once
    the operation completed; repeated calls after completion keep
    returning it. *)

val waitany : request list -> int * status
(** Block until some request completes; returns its index
    (MPI_Waitany).  As in MPI, the remaining requests stay outstanding
    and must eventually be completed with {!wait}/{!test} — a request
    that never completes leaves its progress fiber blocked and shows up
    as a deadlock when the simulation drains.
    @raise Invalid_argument on an empty list. *)

val sendrecv :
  comm ->
  dst:int ->
  send_tag:int ->
  buffer ->
  ?source:int ->
  ?recv_tag:int ->
  buffer ->
  status
(** Combined send + receive without deadlock (MPI_Sendrecv); returns
    the receive status. *)

(** {1 Explicit packing (MPI_Pack / MPI_Unpack)}

    The classic byte-stream escape hatch the paper's benchmarks call
    "mpi-pack-ddt": serialize typed data into a caller-provided buffer
    with an explicit position cursor, then send it as [Bytes]. *)

val pack :
  comm ->
  Datatype.t ->
  count:int ->
  src:Buf.t ->
  dst:Buf.t ->
  position:int ->
  int
(** [pack comm dt ~count ~src ~dst ~position] appends the packed bytes
    at [position] in [dst] and returns the new position.  Charges the
    datatype engine's costs to the calling rank's clock. *)

val unpack :
  comm ->
  Datatype.t ->
  count:int ->
  src:Buf.t ->
  position:int ->
  dst:Buf.t ->
  int
(** Inverse of {!pack}: consumes packed bytes from [src] at [position],
    scatters into the typed layout [dst], returns the new position. *)

val pack_size : Datatype.t -> count:int -> int
(** Upper bound on the packed size (MPI_Pack_size). *)

(** {1 Probing} *)

val iprobe : comm -> ?source:int -> ?tag:int -> unit -> status option
val probe : comm -> ?source:int -> ?tag:int -> unit -> status

type message

val improbe : comm -> ?source:int -> ?tag:int -> unit -> (status * message) option
val mprobe : comm -> ?source:int -> ?tag:int -> unit -> status * message
val mrecv : comm -> message -> buffer -> status

(** {1 Simple collectives}

    A minimal barrier lives here because the benchmark harness needs
    it; richer collectives (including over custom datatypes) are in
    {!Mpicd_collectives}. *)

val barrier : comm -> unit
(** Failure-aware: if a member of the communicator has been declared
    failed (or the communicator was revoked), every rank's call
    terminates — with [Peer_failed]/[Revoked] through the error handler
    — instead of hanging. *)

(** {1 Process-failure resilience (ULFM-style)}

    A miniature of the MPI User-Level Failure Mitigation proposal; see
    docs/RESILIENCE.md.  Failures are declared by the transport's
    heartbeat detector (or piggybacked on traffic; see
    {!Mpicd_ucx.Ucx.notify_failure}); a declared failure cancels every
    pending operation it makes undeliverable, so within a bounded
    amount of virtual time all victims observe [Peer_failed] rather
    than blocking forever.  Any-source receives with no failed explicit
    peer are left pending, as in ULFM. *)

val failed_ranks : comm -> int list
(** Members of this communicator declared failed so far, as comm ranks,
    ascending. *)

val comm_revoke : comm -> unit
(** ULFM [MPI_Comm_revoke]: immediately interrupt this rank's pending
    operations on the communicator with [Revoked] and propagate the
    revocation to every other member (one link latency later).  The
    propagation is reliable and idempotent; future operations on the
    communicator fail fast with [Revoked] at every rank that has seen
    it.  Typically called after an operation raised [Peer_failed], to
    flush peers out of a half-completed communication pattern before
    {!comm_shrink}. *)

val comm_revoked : comm -> bool
(** Has this rank seen a revocation of the communicator? *)

val comm_shrink : comm -> comm
(** ULFM [MPI_Comm_shrink]: collectively build a working communicator
    from the surviving members.  Participants agree fault-tolerantly on
    the union of observed failures; the survivor set, its renumbering
    (ordered by old comm rank) and the fresh communicator id are fixed
    once at agreement completion, so every caller gets a consistent
    view.  The death of a participant mid-shrink cannot block the
    others.  Raises [Mpi_error (Peer_failed _)] at a caller that was
    itself presumed dead.  The new communicator inherits the parent's
    error handler. *)

val comm_agree : comm -> flags:int -> int
(** ULFM [MPI_Comm_agree]: fault-tolerant agreement on the bitwise AND
    of every live member's [flags].  The result is uniform across
    survivors even if members fail mid-agreement.  If a member failed
    without contributing, the error handler is applied with
    [Peer_failed] at {e every} caller — unless every contributor had
    acknowledged that failure with {!comm_failure_ack} before calling.
    The error verdict is itself agreed (each contribution carries the
    caller's acknowledged set), so all callers reach the same
    conclusion; the returned value is still the agreed AND. *)

val comm_failure_ack : comm -> unit
(** Acknowledge (at this rank) every failure known so far on this
    communicator (ULFM [MPI_Comm_failure_ack]); see {!comm_agree}. *)

val comm_get_acked : comm -> int list
(** Comm ranks whose failure this rank has acknowledged
    (ULFM [MPI_Comm_failure_get_acked]). *)

(** {1 Internals shared with sibling libraries}

    Tag-space plumbing used by the collectives and object-messaging
    layers so their traffic cannot collide with user point-to-point
    messages (the multi-channel locking problem the paper discusses). *)

module Internal : sig
  type kind = User | Internal | Objmsg | Objmsg_aux | Restart
  (** [Restart] is the checkpoint/restart control channel (epoch
      markers and logged-envelope traffic from the lib/restart
      runtime).  Unlike [Internal], errors on this kind go through the
      communicator's error handler like user traffic — the recovery
      orchestrator observes failures as ordinary [Mpi_error]s. *)

  val send_k : comm -> kind -> dst:int -> tag:int -> buffer -> unit
  val recv_k : comm -> kind -> ?source:int -> ?tag:int -> buffer -> status
  val isend_k : comm -> kind -> dst:int -> tag:int -> buffer -> request
  val irecv_k : comm -> kind -> ?source:int -> ?tag:int -> buffer -> request
  val iprobe_k : comm -> kind -> ?source:int -> ?tag:int -> unit -> status option
  val probe_k : comm -> kind -> ?source:int -> ?tag:int -> unit -> status
  val mprobe_k : comm -> kind -> ?source:int -> ?tag:int -> unit -> status * message
  val mrecv_k : comm -> kind -> message -> buffer -> status

  val fresh_seq : comm -> int
  (** Per-communicator operation sequence number.  All ranks execute
      collectives in the same order (SPMD), so equal sequence numbers
      identify the same collective across ranks; used to build
      collision-free internal tag spaces. *)

  (** Failure plumbing for the collectives layer.  Operations posted
      through this module's [_k] functions on the [Internal] kind raise
      [Mpi_error] directly on error (bypassing the communicator's error
      handler): the collective must observe the failure itself, poison
      the operation for its peers, and then apply the handler once at
      the collective level. *)

  val collective_ready : comm -> error option
  (** The error dooming a collective on this communicator before it
      starts (seen revocation, earlier poisoned collective, or declared-
      failed member), if any. *)

  val poison_collective : comm -> error -> unit
  (** Mark the communicator broken for collectives and cancel peers'
      pending internal-channel operations on it (one link latency
      later), so no rank keeps waiting for a rank that already gave
      up. *)

  val collective_error : comm -> error -> unit
  (** Apply the communicator's error handler to a collective-level
      error: raise {!Mpi_error}, raise {!Aborted}, or stash it for
      {!last_error} and return. *)
end
