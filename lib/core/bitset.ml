(* 63 bits per limb (the native int width on 64-bit OCaml); rank [i]
   lives at bit [i mod 63] of limb [i / 63]. *)

type t = { bits : int array; n : int }

let limbs n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { bits = Array.make (max 1 (limbs n)) 0; n }

let capacity t = t.n

let check t i who =
  if i < 0 || i >= t.n then invalid_arg ("Bitset." ^ who ^ ": out of range")

let mem t i =
  check t i "mem";
  t.bits.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  check t i "add";
  t.bits.(i / 63) <- t.bits.(i / 63) lor (1 lsl (i mod 63))

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    add t i
  done;
  t

let is_empty t = Array.for_all (fun w -> w = 0) t.bits

let check_pair dst src who =
  if dst.n <> src.n then invalid_arg ("Bitset." ^ who ^ ": capacity mismatch")

let union_into dst src =
  check_pair dst src "union_into";
  for k = 0 to Array.length dst.bits - 1 do
    dst.bits.(k) <- dst.bits.(k) lor src.bits.(k)
  done

let inter_into dst src =
  check_pair dst src "inter_into";
  for k = 0 to Array.length dst.bits - 1 do
    dst.bits.(k) <- dst.bits.(k) land src.bits.(k)
  done

let of_list n members =
  let t = create n in
  List.iter (fun i -> add t i) members;
  t
