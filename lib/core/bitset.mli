(** Fixed-capacity bitsets over comm ranks.

    The agreement protocol ([Mpi.comm_agree]/[Mpi.comm_shrink]) tracks
    per-rank membership facts — who contributed, whose failure was
    acknowledged, who is known dead.  Plain [int] bitmasks cap the
    group at 62 ranks; these int-array bitsets remove the cap so
    agreement scales to thousands of ranks (63 ranks per limb, zero
    allocation per membership test). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val full : int -> t
(** [full n] has every member of [0 .. n-1] set. *)

val capacity : t -> int
(** The universe size [n] the set was created with. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val is_empty : t -> bool

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst <- dst ∪ src].  Capacities must
    match. @raise Invalid_argument otherwise. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] sets [dst <- dst ∩ src].  Capacities must
    match. @raise Invalid_argument otherwise. *)

val of_list : int -> int list -> t
(** [of_list n members] — members outside [0 .. n-1] raise. *)
