module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Rng = Mpicd_simnet.Rng
module Topology = Mpicd_simnet.Topology
module Datatype = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan
module Normalize = Mpicd_datatype.Normalize
module Ucx = Mpicd_ucx.Ucx
module Obs = Mpicd_obs.Obs
module Metrics = Mpicd_obs.Metrics

(* Observation layer for the communication checkers: every monitored
   point-to-point operation is recorded at post time together with a
   [peek] closure that reads its transport-level completion status.  The
   analyzers in Mpicd_check replay MPI matching semantics over these
   records (MUST-style), so the monitor itself stays passive: it never
   perturbs matching, timing, or data movement. *)
module Monitor = struct
  type op_kind = Send | Recv
  type dt_class = Dc_bytes | Dc_typed | Dc_custom

  type op = {
    id : int;
    kind : op_kind;
    rank : int;
    peer : int;
    tag : int;
    cid : int;
    channel_kind : int;
    dt_class : dt_class;
    signature : (Datatype.predefined * int) list;
    nbytes : int;
    blocking : bool;
    posted_at : float;
  }

  type outcome = {
    o_op : op;
    o_peer : int;
    o_tag : int;
    o_len : int;
    o_error : string option;
  }

  type entry = {
    e_op : op;
    e_peek : unit -> outcome option;
    mutable e_done : outcome option;
  }

  type t = { mutable next_id : int; mutable entries : entry list (* newest first *) }

  let create () = { next_id = 0; entries = [] }

  let fresh_id m =
    let id = m.next_id in
    m.next_id <- id + 1;
    id

  let add m op peek = m.entries <- { e_op = op; e_peek = peek; e_done = None } :: m.entries

  let sweep m =
    List.iter
      (fun e -> if e.e_done = None then e.e_done <- e.e_peek ())
      m.entries

  let outcomes m =
    sweep m;
    List.rev (List.filter_map (fun e -> e.e_done) m.entries)

  let pending m =
    sweep m;
    List.rev
      (List.filter_map
         (fun e -> if e.e_done = None then Some e.e_op else None)
         m.entries)

  (* RLE signature helpers: concatenation and repetition that keep the
     run-length encoding canonical (no two adjacent runs share a type). *)
  let rle_concat a b =
    match (List.rev a, b) with
    | (p, n) :: ra, (q, m) :: rb when p = q -> List.rev_append ra ((p, n + m) :: rb)
    | _ -> a @ b

  let rle_repeat s count =
    if count <= 0 then []
    else
      match s with
      | [] -> []
      | [ (p, n) ] -> [ (p, n * count) ]
      | _ ->
          let rec go acc k = if k = 0 then acc else go (rle_concat acc s) (k - 1) in
          go s (count - 1)
end

type error =
  | Truncated of { expected : int; capacity : int }
  | Callback_failed of int
  | Timeout of { retries : int }
  | Peer_failed of { peer : int }
  | Data_corrupted
  | Revoked

exception Mpi_error of error

(* MPI-style per-communicator error handling: raise (the default,
   MPI_ERRORS_ARE_FATAL in spirit but catchable), abort the rank, or
   return a degraded status and stash the error (MPI_ERRORS_RETURN). *)
type errhandler = Errors_raise | Errors_abort | Errors_return

exception Aborted of { rank : int; error : error }

(* An operation registered for failure-triggered cancellation: enough to
   decide whether a declared failure or a communicator revocation makes
   it undeliverable, plus the transport request to cancel. *)
type oentry = {
  oe_req : Ucx.request;
  oe_tag : int64;
  oe_cid : int;
  oe_rank : int;  (* world rank of the posting side *)
  oe_peer : int;  (* world rank of the peer; -1 for any-source receives *)
  oe_internal : bool;  (* posted on the Internal (collective) channel *)
}

(* Shared-state slot for the fault-tolerant agreement protocol behind
   [comm_agree] and [comm_shrink].  Each participant folds its
   contribution in and the slot completes once every group member has
   either contributed or been declared failed — so the death of a
   participant can never block the survivors. *)
type agree_slot = {
  s_group : int array;  (* comm rank -> world rank *)
  s_combine : int -> int -> int;
  s_shrink : bool;  (* completion allocates a cid and a survivor set *)
  mutable s_acc : int;  (* combined agreed value *)
  s_ack_acc : Bitset.t;
      (* intersection of the contributors' acknowledged-failure sets: a
         failed non-contributor raises [Peer_failed] at every caller
         unless every contributor had acknowledged it — an agreed,
         hence uniform, verdict (cf. ULFM MPI_Comm_agree) *)
  s_failed : Bitset.t;
      (* shrink only: union of the contributors' observed-failure sets;
         completion excludes these ranks from the survivor set *)
  s_contrib : Bitset.t;  (* comm ranks that contributed *)
  mutable s_result : int option;
      (* combined value; [s_contrib]/[s_ack_acc] are frozen once set
         (late contributors take the completed branch and never
         mutate them) *)
  mutable s_new_cid : int;  (* shrink only; -1 until completion *)
  mutable s_survivors : int array;  (* shrink only; comm ranks, at completion *)
  mutable s_waiters : int Engine.resumer list;
}

type world = {
  engine : Engine.t;
  config : Config.t;
  stats : Stats.t;
  ucx : Ucx.context;
  workers : Ucx.worker array;
  eps : (int * int, Ucx.endpoint) Hashtbl.t;
      (* (src, dst) -> endpoint, created on first use: a dense N^2
         array is prohibitive at thousands of ranks, and most pairs
         never talk (collectives are log- or ring-structured) *)
  mutable shuffle : Rng.t option;
  mutable next_cid : int;  (* communicator-id allocator (rank 0 side) *)
  mutable monitor : Monitor.t option;
  mutable obs : Obs.t;
  errh : (int, errhandler) Hashtbl.t;  (* cid -> handler; absent = raise *)
  last_errors : (int * int, error) Hashtbl.t;  (* (cid, comm rank) -> error *)
  (* --- resilience state (all empty on a healthy run) --- *)
  outstanding : (int, oentry list ref) Hashtbl.t;
      (* world rank -> its pending operations, for cancellation *)
  revoked : (int, float) Hashtbl.t;  (* cid -> first revoke time *)
  revoked_seen : (int * int, float) Hashtbl.t;
      (* (cid, world rank) -> when the revocation reached that rank *)
  col_poison : (int * int, error) Hashtbl.t;
      (* (cid, world rank): a collective on cid failed at that rank; the
         communicator is broken for collectives until shrunk *)
  acked : (int * int, int list) Hashtbl.t;
      (* (cid, world rank) -> comm ranks whose failure was acknowledged *)
  slots : (int * int * int, agree_slot) Hashtbl.t;
      (* (cid, opcode, per-rank call index) -> agreement slot *)
}

type comm = {
  w : world;
  c_rank : int;  (* rank within this communicator *)
  group : int array;  (* comm rank -> world rank *)
  cid : int;  (* communicator id, part of the tag space *)
  mutable bar_seq : int;
  mutable agree_seq : int;  (* per-rank [comm_agree] call index *)
  mutable shrink_seq : int;  (* per-rank [comm_shrink] call index *)
}

let alloc_cid w =
  let cid = w.next_cid in
  if cid > 63 (* = max_cid, defined with the tag encoding below *) then
    failwith "Mpi: communicator id space exhausted";
  w.next_cid <- cid + 1;
  cid

(* Cancel [owner]'s live registered operations matching [pred],
   completing each with [err].  Completed entries are pruned. *)
let cancel_outstanding w ~owner ~pred err =
  match Hashtbl.find_opt w.outstanding owner with
  | None -> ()
  | Some lr ->
      let live = List.filter (fun e -> not (Ucx.is_completed e.oe_req)) !lr in
      lr := live;
      List.iter
        (fun e ->
          if pred e then
            ignore (Ucx.try_cancel w.ucx e.oe_req ~tag:e.oe_tag err))
        live

let register_outstanding w (e : oentry) =
  if Ucx.is_completed e.oe_req then ()
  else begin
    let lr =
      match Hashtbl.find_opt w.outstanding e.oe_rank with
      | Some lr -> lr
      | None ->
          let lr = ref [] in
          Hashtbl.add w.outstanding e.oe_rank lr;
          lr
    in
    (* bound the list: drop completed entries once it grows *)
    if List.length !lr > 64 then
      lr := List.filter (fun e -> not (Ucx.is_completed e.oe_req)) !lr;
    lr := e :: !lr
  end

(* Complete an agreement slot if every group member has contributed or
   died; idempotent.  Called by each contributor and re-checked by the
   failure listener, so a participant crash can complete a slot. *)
let try_complete_slot w (slot : agree_slot) =
  match slot.s_result with
  | Some _ -> ()
  | None ->
      let n = Array.length slot.s_group in
      let all = ref true in
      for i = 0 to n - 1 do
        if
          (not (Bitset.mem slot.s_contrib i))
          && not (Ucx.is_failed w.ucx ~rank:slot.s_group.(i))
        then all := false
      done;
      if !all then begin
        if slot.s_shrink then begin
          Stats.record_comm_shrink w.stats;
          slot.s_new_cid <- alloc_cid w;
          (* survivor set, fixed once at completion time so every
             caller — however late — sees the same membership *)
          let surv = ref [] in
          for i = n - 1 downto 0 do
            if
              (not (Bitset.mem slot.s_failed i))
              && not (Ucx.is_failed w.ucx ~rank:slot.s_group.(i))
            then surv := i :: !surv
          done;
          slot.s_survivors <- Array.of_list !surv
        end
        else Stats.record_comm_agreement w.stats;
        let r = slot.s_acc in
        slot.s_result <- Some r;
        if Obs.enabled w.obs then
          Obs.instant w.obs ~time:(Engine.now w.engine) ~track:0
            ~cat:"resilience"
            ~args:[ ("value", Obs.Int slot.s_acc) ]
            (if slot.s_shrink then "shrink_complete" else "agree_complete");
        let ws = slot.s_waiters in
        slot.s_waiters <- [];
        List.iter (fun resume -> resume r) ws
      end

(* Failure listener: runs once per declared failure, from the detector
   fiber or the declaring send path.  Cancels every pending operation
   the failure makes undeliverable — the dead rank's own, and any other
   rank's operation directed at it (any-source receives are left
   pending, as in ULFM) — then re-checks agreement slots the dead rank
   may have been blocking. *)
let handle_rank_failure w ~rank ~time =
  if Obs.enabled w.obs then
    Obs.instant w.obs ~time ~track:rank ~cat:"resilience"
      ~args:[ ("rank", Obs.Int rank) ]
      "proc_failed";
  let err = Ucx.Peer_failed { peer = rank } in
  Hashtbl.iter
    (fun owner _ ->
      if owner = rank then
        cancel_outstanding w ~owner ~pred:(fun _ -> true) err
      else
        cancel_outstanding w ~owner ~pred:(fun e -> e.oe_peer = rank) err)
    w.outstanding;
  Hashtbl.iter (fun _ slot -> try_complete_slot w slot) w.slots

let create_world ?(config = Config.default) ?topology ~size () =
  if size < 1 then invalid_arg "Mpi.create_world: size must be >= 1";
  (match topology with
  | Some topo when Topology.nranks topo < size ->
      invalid_arg
        (Printf.sprintf
           "Mpi.create_world: topology has %d ranks but the world needs %d"
           (Topology.nranks topo) size)
  | _ -> ());
  let engine = Engine.create () in
  let stats = Stats.create () in
  Engine.set_stats engine stats;
  let ucx = Ucx.create_context ~engine ~config ~stats in
  Ucx.set_topology ucx topology;
  let workers = Array.init size (fun _ -> Ucx.create_worker ucx) in
  let eps = Hashtbl.create (4 * size) in
  let w =
    {
      engine;
      config;
      stats;
      ucx;
      workers;
      eps;
      shuffle = None;
      next_cid = 1;
      monitor = None;
      obs = Obs.null;
      errh = Hashtbl.create 8;
      last_errors = Hashtbl.create 8;
      outstanding = Hashtbl.create 8;
      revoked = Hashtbl.create 4;
      revoked_seen = Hashtbl.create 8;
      col_poison = Hashtbl.create 8;
      acked = Hashtbl.create 4;
      slots = Hashtbl.create 8;
    }
  in
  Ucx.on_failure ucx (fun ~rank ~time -> handle_rank_failure w ~rank ~time);
  w

(* Lazy endpoint cache: [Ucx.connect] is a pure pairing of workers, so
   creating an endpoint on first use is deterministic. *)
let endpoint w ~src ~dst =
  match Hashtbl.find_opt w.eps (src, dst) with
  | Some ep -> ep
  | None ->
      let ep = Ucx.connect w.workers.(src) w.workers.(dst) in
      Hashtbl.add w.eps (src, dst) ep;
      ep

let world_engine w = w.engine
let world_stats w = w.stats
let world_config w = w.config
let world_size w = Array.length w.workers
let set_unpack_shuffle w ~seed = w.shuffle <- Option.map Rng.create seed
let set_trace w t = Ucx.set_trace w.ucx t
let set_monitor w m = w.monitor <- m
let set_faults w p = Ucx.set_faults w.ucx p
let faults w = Ucx.faults w.ucx
let set_fault_tap w f = Ucx.set_tap w.ucx f

(* One sink observes every layer: MPI operations here, protocol phases
   in the transport, fiber scheduling in the engine. *)
let set_obs w o =
  w.obs <- o;
  Ucx.set_obs w.ucx o;
  Engine.set_obs w.engine o

let comm_for_rank w r =
  if r < 0 || r >= world_size w then invalid_arg "Mpi.comm_for_rank: bad rank";
  {
    w;
    c_rank = r;
    group = Array.init (world_size w) Fun.id;
    cid = 0;
    bar_seq = 0;
    agree_seq = 0;
    shrink_seq = 0;
  }

let set_errhandler c h = Hashtbl.replace c.w.errh c.cid h

let get_errhandler c =
  Option.value ~default:Errors_raise (Hashtbl.find_opt c.w.errh c.cid)

let last_error c = Hashtbl.find_opt c.w.last_errors (c.cid, c.c_rank)
let clear_last_error c = Hashtbl.remove c.w.last_errors (c.cid, c.c_rank)

let spawn_rank w r f =
  let comm = comm_for_rank w r in
  Engine.spawn w.engine ~name:(Printf.sprintf "rank%d" r) ~track:r (fun () ->
      f comm)

let run w f =
  for r = 0 to world_size w - 1 do
    spawn_rank w r f
  done;
  Engine.run w.engine

let rank c = c.c_rank
let size c = Array.length c.group
let world_of c = c.w
let world_rank_of c r = c.group.(r)

let any_source = -1
let any_tag = -1

(* --- tag encoding ---
   bit layout of the 64-bit transport tag:
     [62..48] source rank  (15 bits)
     [46..44] kind         (3 bits)
     [43..38] communicator (6 bits)
     [37..0]  user tag     (38 bits) *)

module Internal0 = struct
  type kind = User | Internal | Objmsg | Objmsg_aux | Restart
end

let kind_code : Internal0.kind -> int = function
  | User -> 0
  | Internal -> 1
  | Objmsg -> 2
  | Objmsg_aux -> 3
  | Restart -> 4

let src_shift = 48
let kind_shift = 44
let cid_shift = 38
let user_mask = 0x3F_FFFF_FFFFL (* 38 bits *)
let max_user_tag = 0x3F_FFFF_FFFF (* 2^38 - 1 *)

let encode_tag ~src ~kind ~cid ~utag =
  Int64.logor
    (Int64.shift_left (Int64.of_int src) src_shift)
    (Int64.logor
       (Int64.shift_left (Int64.of_int (kind_code kind)) kind_shift)
       (Int64.logor
          (Int64.shift_left (Int64.of_int cid) cid_shift)
          (Int64.of_int utag)))

let decode_source t64 = Int64.to_int (Int64.shift_right_logical t64 src_shift)
let decode_utag t64 = Int64.to_int (Int64.logand t64 user_mask)

let check_user_tag tag =
  if tag < 0 || tag > max_user_tag then
    invalid_arg (Printf.sprintf "Mpi: tag %d out of range" tag)

(* Receive-side tag and mask for a (source, tag) filter.  [source] is a
   WORLD rank here; communicator translation happens in the callers. *)
let recv_tag_mask ~kind ~cid ~source ~tag =
  let base_mask =
    Int64.logor
      (Int64.shift_left 7L kind_shift)
      (Int64.shift_left 0x3FL cid_shift)
  in
  let src_part, src_mask =
    if source = any_source then (0L, 0L)
    else
      ( Int64.shift_left (Int64.of_int source) src_shift,
        Int64.shift_left 0x7FFFL src_shift )
  in
  let tag_part, tag_mask =
    if tag = any_tag then (0L, 0L)
    else begin
      check_user_tag tag;
      (Int64.of_int tag, user_mask)
    end
  in
  let t =
    Int64.logor src_part
      (Int64.logor
         (Int64.shift_left (Int64.of_int (kind_code kind)) kind_shift)
         (Int64.logor (Int64.shift_left (Int64.of_int cid) cid_shift) tag_part))
  in
  let m = Int64.logor base_mask (Int64.logor src_mask tag_mask) in
  (t, m)

(* --- buffers --- *)

type buffer =
  | Bytes of Buf.t
  | Typed of { dt : Datatype.t; count : int; base : Buf.t }
  | Custom : { dt : 'o Custom.t; obj : 'o; count : int } -> buffer

type status = { source : int; tag : int; len : int }

let charge c t = Engine.sleep c.w.engine t
let cpu c = c.w.config.cpu

(* Wrap callback execution so Custom.Error surfaces as Mpi_error. *)
let guard f =
  try f () with Custom.Error code -> raise (Mpi_error (Callback_failed code))

let my_world_rank c = c.group.(c.c_rank)

(* Tile [n] per-callback spans uniformly across a phase interval and
   feed the per-callback cost histogram (cf. Ucx's internal helper). *)
let obs_tile c ~track ~t0 ~t1 ~n ~name ~hist ~parent =
  if Obs.enabled c.w.obs && n > 0 && t1 > t0 then begin
    let per = (t1 -. t0) /. float_of_int n in
    for i = 0 to n - 1 do
      let s0 = t0 +. (per *. float_of_int i) in
      ignore
        (Obs.span_complete c.w.obs ~track ~cat:"callback" ~t0:s0 ~t1:(s0 +. per)
           ~parent name)
    done;
    let h = Metrics.histogram (Obs.metrics c.w.obs) hist in
    for _ = 1 to n do
      Metrics.observe h per
    done
  end

(* Run the query (+ optional region) callbacks of a custom op, charging
   their fixed costs. *)
let custom_query c op =
  let psize = guard (fun () -> Custom.packed_size op) in
  Stats.record_query_cb c.w.stats;
  charge c (cpu c).pack_cb_overhead_ns;
  let regs =
    if guard (fun () -> Custom.region_count op) > 0 then begin
      Stats.record_region_query c.w.stats;
      charge c (cpu c).pack_cb_overhead_ns;
      guard (fun () -> Custom.regions op)
    end
    else [||]
  in
  (psize, regs)

(* Pack the packed part of a custom op into a fresh bounce buffer,
   fragment by fragment (exercising partial packing). *)
let custom_pack_bounce c op psize =
  let frag = c.w.config.link.frag_size in
  let b = Buf.create psize in
  Stats.record_alloc c.w.stats psize;
  charge c (Config.alloc_time (cpu c) psize);
  let t0 = Engine.now c.w.engine in
  let off = ref 0 and ncb = ref 0 in
  while !off < psize do
    let want = min frag (psize - !off) in
    let used =
      guard (fun () -> Custom.pack op ~offset:!off ~dst:(Buf.sub b ~pos:!off ~len:want))
    in
    Stats.record_pack_cb c.w.stats;
    incr ncb;
    if used <= 0 || used > want then
      raise (Mpi_error (Callback_failed (-1)));
    off := !off + used
  done;
  Stats.record_copy c.w.stats psize;
  charge c
    (Config.memcpy_time (cpu c) psize
    +. (float_of_int !ncb *. (cpu c).pack_cb_overhead_ns)
    +. (float_of_int (Custom.pack_pieces op) *. (cpu c).pack_piece_ns));
  if Obs.enabled c.w.obs then begin
    let t1 = Engine.now c.w.engine in
    let track = my_world_rank c in
    let sp =
      Obs.span_complete c.w.obs ~track ~cat:"proto" ~t0 ~t1
        ~args:[ ("bytes", Obs.Int psize) ]
        "custom_pack"
    in
    obs_tile c ~track ~t0 ~t1 ~n:!ncb ~name:"pack_cb" ~hist:"pack_cb_ns"
      ~parent:sp
  end;
  b

(* Unpack the packed part after receive, honouring the inorder flag. *)
let custom_unpack_bounce c op b =
  let psize = Buf.length b in
  let frag = c.w.config.link.frag_size in
  let nfrags = (psize + frag - 1) / frag in
  let order = Array.init nfrags (fun i -> i) in
  (match c.w.shuffle with
  | Some rng when not (Custom.op_inorder op) -> Rng.shuffle rng order
  | _ -> ());
  let t0 = Engine.now c.w.engine in
  Array.iter
    (fun i ->
      let off = i * frag in
      let len = min frag (psize - off) in
      guard (fun () -> Custom.unpack op ~offset:off ~src:(Buf.sub b ~pos:off ~len));
      Stats.record_unpack_cb c.w.stats)
    order;
  Stats.record_copy c.w.stats psize;
  charge c
    (Config.memcpy_time (cpu c) psize
    +. (float_of_int nfrags *. (cpu c).pack_cb_overhead_ns)
    +. (float_of_int (Custom.pack_pieces op) *. (cpu c).pack_piece_ns));
  if Obs.enabled c.w.obs then begin
    let t1 = Engine.now c.w.engine in
    let track = my_world_rank c in
    let sp =
      Obs.span_complete c.w.obs ~track ~cat:"proto" ~t0 ~t1
        ~args:[ ("bytes", Obs.Int psize) ]
        "custom_unpack"
    in
    obs_tile c ~track ~t0 ~t1 ~n:nfrags ~name:"unpack_cb" ~hist:"unpack_cb_ns"
      ~parent:sp
  end

(* Compiled pack plan for [dt], from the process-global memo cache.
   Records the hit/miss in [Stats] and, when a sink is attached, on the
   metrics registry — cache effectiveness is an observability signal.

   With [auto_normalize] on, the plan is compiled from the
   guideline-normalized form of the datatype (Normalize preserves the
   type map and bounds, so the packed stream is byte-identical); the
   original value still keys matching and signature checks.  Both the
   normalizer and the plan cache memoize on physical equality, so a
   committed datatype value is rewritten once, not per operation. *)
let plan_of c dt =
  let dt = if c.w.config.Config.auto_normalize then Normalize.get dt else dt in
  let plan, outcome = Plan.get_outcome ~stats:c.w.stats dt in
  if Obs.enabled c.w.obs then
    Metrics.inc
      (Metrics.counter (Obs.metrics c.w.obs)
         (match outcome with
         | Plan.Hit -> "plan_cache_hits_total"
         | Plan.Miss -> "plan_cache_misses_total"));
  plan

(* Virtual-time cost of the datatype engine: identical block count (and
   so identical charge) whether the host executes the interpreter or a
   compiled plan. *)
let typed_overheads c plan count =
  let blocks = Plan.block_count plan * count in
  Stats.record_ddt_blocks c.w.stats blocks;
  float_of_int blocks *. (cpu c).ddt_block_ns

let buffer_size = function
  | Bytes b -> Buf.length b
  | Typed { dt; count; _ } -> Datatype.packed_size dt ~count
  | Custom { dt; obj; count } ->
      let op = Custom.start dt obj ~count in
      let psize = Custom.packed_size op in
      let regs = if Custom.region_count op > 0 then Custom.regions op else [||] in
      let rbytes = Array.fold_left (fun a r -> a + Buf.length r) 0 regs in
      Custom.finish op;
      psize + rbytes

(* Build the transport descriptors.  Returns the descriptor plus a
   cleanup to run (in the waiting fiber) once the operation completes. *)
let make_send_dt c = function
  | Bytes b -> (Ucx.Sd_contig b, fun _ -> ())
  | Typed { dt; count; base } ->
      let plan = plan_of c dt in
      let psize = Plan.packed_size plan ~count in
      if psize = 0 || Plan.is_contiguous plan then
        (Ucx.Sd_contig (Buf.sub base ~pos:0 ~len:psize), fun _ -> ())
      else
        let overhead = typed_overheads c plan count in
        (* One cursor per descriptor: the transport produces fragments
           in stream order, so each pack resumes in O(1) where the
           previous one stopped. *)
        let cur = Plan.cursor plan in
        ( Ucx.Sd_generic
            {
              sg_packed_size = psize;
              sg_pack =
                (fun ~offset ~dst ->
                  Plan.pack_range ~cursor:cur plan ~count ~src:base
                    ~packed_off:offset ~dst);
              sg_finish = ignore;
              sg_overhead_ns = overhead;
            },
          fun _ -> () )
  | Custom { dt; obj; count } ->
      let op = Custom.start dt obj ~count in
      let psize, regs =
        try custom_query c op
        with e ->
          Custom.finish op;
          raise e
      in
      let packed =
        if psize > 0 then begin
          match custom_pack_bounce c op psize with
          | b -> [ b ]
          | exception e ->
              Custom.finish op;
              raise e
        end
        else []
      in
      let iov = packed @ Array.to_list regs in
      ( Ucx.Sd_iov iov,
        fun _ ->
          if psize > 0 then Stats.record_free c.w.stats psize;
          Custom.finish op )

let make_recv_dt c = function
  | Bytes b -> (Ucx.Rd_contig b, fun _ -> ())
  | Typed { dt; count; base } ->
      let plan = plan_of c dt in
      let psize = Plan.packed_size plan ~count in
      if psize = 0 || Plan.is_contiguous plan then
        (Ucx.Rd_contig (Buf.sub base ~pos:0 ~len:psize), fun _ -> ())
      else
        let overhead = typed_overheads c plan count in
        let cur = Plan.cursor plan in
        ( Ucx.Rd_generic
            {
              rg_capacity = psize;
              rg_unpack =
                (fun ~offset ~src ->
                  Plan.unpack_range ~cursor:cur plan ~count ~src
                    ~packed_off:offset ~dst:base);
              rg_finish = ignore;
              rg_overhead_ns = overhead;
            },
          fun _ -> () )
  | Custom { dt; obj; count } ->
      let op = Custom.start dt obj ~count in
      let psize, regs =
        try custom_query c op
        with e ->
          Custom.finish op;
          raise e
      in
      let packed =
        if psize > 0 then begin
          let b = Buf.create psize in
          Stats.record_alloc c.w.stats psize;
          charge c (Config.alloc_time (cpu c) psize);
          [ b ]
        end
        else []
      in
      let iov = packed @ Array.to_list regs in
      ( Ucx.Rd_iov iov,
        fun (st : Ucx.status) ->
          (match (st.error, packed) with
          | None, [ b ] -> custom_unpack_bounce c op b
          | _ -> ());
          if psize > 0 then Stats.record_free c.w.stats psize;
          Custom.finish op )

(* --- requests --- *)

type request = {
  ucx_req : Ucx.request;
  finalize : Ucx.status -> status;
  mutable outcome : (status, exn) result option;
      (* memoized finalization: cleanup and error handling run exactly
         once; a second wait/test replays the same status or exception *)
  r_engine : Engine.t;
  r_obs : Obs.t;
  r_track : int;  (* world rank of the posting side *)
}

let lift_error : Ucx.error -> error = function
  | Ucx.Truncated { expected; capacity } -> Truncated { expected; capacity }
  | Ucx.Callback_failed code -> Callback_failed code
  | Ucx.Timeout { retries } -> Timeout { retries }
  | Ucx.Peer_failed { peer } -> Peer_failed { peer }
  | Ucx.Data_corrupted -> Data_corrupted
  | Ucx.Revoked -> Revoked

let lower_error : error -> Ucx.error = function
  | Truncated { expected; capacity } -> Ucx.Truncated { expected; capacity }
  | Callback_failed code -> Ucx.Callback_failed code
  | Timeout { retries } -> Ucx.Timeout { retries }
  | Peer_failed { peer } -> Ucx.Peer_failed { peer }
  | Data_corrupted -> Ucx.Data_corrupted
  | Revoked -> Ucx.Revoked

(* Statuses report communicator-relative source ranks: translate the
   world rank in the wire tag back through the group. *)
let comm_source c world_rank =
  let n = Array.length c.group in
  let rec find i = if i >= n then -1 else if c.group.(i) = world_rank then i else find (i + 1) in
  find 0

let decode_status c (st : Ucx.status) =
  { source = comm_source c (decode_source st.tag); tag = decode_utag st.tag; len = st.len }

let finalize_once r (u : Ucx.status) =
  match r.finalize u with
  | s ->
      r.outcome <- Some (Ok s);
      s
  | exception e ->
      r.outcome <- Some (Error e);
      raise e

let wait r =
  match r.outcome with
  | Some (Ok s) -> s
  | Some (Error e) -> raise e
  | None ->
      (* A wait that actually blocks gets its own span; an immediately
         satisfied one stays invisible. *)
      let sp =
        if Obs.enabled r.r_obs && not (Ucx.is_completed r.ucx_req) then
          Obs.span_begin r.r_obs ~time:(Engine.now r.r_engine) ~track:r.r_track
            ~cat:"p2p" "wait"
        else Obs.null_span
      in
      let u = Ucx.wait r.ucx_req in
      let args =
        match Ucx.request_seq r.ucx_req with
        | -1 -> []
        | m -> [ ("mseq", Obs.Int m) ]
      in
      Obs.span_end r.r_obs ~time:(Engine.now r.r_engine) ~args sp;
      finalize_once r u

let waitall rs = List.map wait rs

let test r =
  match r.outcome with
  | Some (Ok s) -> Some s
  | Some (Error e) -> raise e
  | None -> (
      match Ucx.peek r.ucx_req with
      | None -> None
      | Some u -> Some (finalize_once r u))

let waitany rs =
  if rs = [] then invalid_arg "Mpi.waitany: empty request list";
  (* fast path: something already done *)
  let rec find i = function
    | [] -> None
    | r :: rest -> (
        match test r with Some s -> Some (i, s) | None -> find (i + 1) rest)
  in
  match find 0 rs with
  | Some hit -> hit
  | None ->
      (* race: one helper fiber per request; the first to complete
         resumes the caller, the others notice and stand down *)
      let engine = (List.hd rs).r_engine in
      let outcome =
        Engine.suspend engine (fun resume ->
            let fired = ref false in
            List.iteri
              (fun i r ->
                Engine.spawn engine ~name:"waitany" (fun () ->
                    let res =
                      match wait r with
                      | s -> Ok (i, s)
                      | exception e -> Error e
                    in
                    if not !fired then begin
                      fired := true;
                      resume res
                    end))
              rs)
      in
      (match outcome with Ok hit -> hit | Error e -> raise e)

let make_request ?span ?(force_raise = false) c ucx_req cleanup =
  {
    ucx_req;
    finalize =
      (fun (u : Ucx.status) ->
        (* Close the op span first so a cleanup/status exception still
           leaves a finished trace. *)
        (match span with
        | Some sp ->
            let args =
              ("len", Obs.Int u.len)
              ::
              (match Ucx.request_seq ucx_req with
              | -1 -> []
              | m -> [ ("mseq", Obs.Int m) ])
            in
            Obs.span_end c.w.obs ~time:(Engine.now c.w.engine) ~args sp
        | None -> ());
        cleanup u;
        match u.error with
        | Some e -> (
            let err = lift_error e in
            (* [force_raise] is set on the collectives' internal channel:
               the collective itself must observe the error (to poison
               the operation on its peers), so the communicator's error
               handler is applied by the collective wrapper, not here. *)
            if force_raise then raise (Mpi_error err)
            else
              match get_errhandler c with
              | Errors_raise -> raise (Mpi_error err)
              | Errors_abort -> raise (Aborted { rank = c.c_rank; error = err })
              | Errors_return ->
                  (* degraded continuation: stash the error for
                     [last_error] and hand back a zero-length status *)
                  Hashtbl.replace c.w.last_errors (c.cid, c.c_rank) err;
                  decode_status c u)
        | None -> decode_status c u);
    outcome = None;
    r_engine = c.w.engine;
    r_obs = c.w.obs;
    r_track = c.group.(c.c_rank);
  }

let check_dst c r name =
  if r < 0 || r >= size c then
    invalid_arg (Printf.sprintf "Mpi.%s: bad rank %d" name r)

(* Monitor-side classification of a buffer descriptor.  Custom types are
   opaque: running their query callbacks here would duplicate the state
   lifecycle, so the wire size is left unknown (-1) until completion. *)
let monitor_classify : buffer -> Monitor.dt_class * (Datatype.predefined * int) list * int
    = function
  | Bytes b ->
      let n = Buf.length b in
      (Monitor.Dc_bytes, (if n = 0 then [] else [ (Datatype.Byte, n) ]), n)
  | Typed { dt; count; _ } ->
      ( Monitor.Dc_typed,
        Monitor.rle_repeat (Datatype.rle_signature dt) count,
        Datatype.packed_size dt ~count )
  | Custom _ -> (Monitor.Dc_custom, [], -1)

let monitor_record c kind ~op_kind ~peer ~tag ~blocking buf (ureq : Ucx.request) =
  match c.w.monitor with
  | None -> ()
  | Some m ->
      let dt_class, signature, nbytes = monitor_classify buf in
      let op : Monitor.op =
        {
          id = Monitor.fresh_id m;
          kind = op_kind;
          rank = c.group.(c.c_rank);
          peer;
          tag;
          cid = c.cid;
          channel_kind = kind_code kind;
          dt_class;
          signature;
          nbytes;
          blocking;
          posted_at = Engine.now c.w.engine;
        }
      in
      let peek () =
        match Ucx.peek ureq with
        | None -> None
        | Some (u : Ucx.status) ->
            Some
              {
                Monitor.o_op = op;
                o_peer = decode_source u.tag;
                o_tag = decode_utag u.tag;
                o_len = u.len;
                o_error =
                  (match u.error with
                  | None -> None
                  | Some (Ucx.Truncated { expected; capacity }) ->
                      Some
                        (Printf.sprintf "truncated: expected %d bytes, capacity %d"
                           expected capacity)
                  | Some (Ucx.Callback_failed code) ->
                      Some (Printf.sprintf "callback failed with code %d" code)
                  | Some (Ucx.Timeout { retries }) ->
                      Some (Printf.sprintf "timeout after %d retries" retries)
                  | Some (Ucx.Peer_failed { peer }) ->
                      Some (Printf.sprintf "peer %d failed" peer)
                  | Some Ucx.Data_corrupted -> Some "data corrupted"
                  | Some Ucx.Revoked -> Some "communicator revoked");
              }
      in
      Monitor.add m op peek

(* Coarse datatype label for trace spans: the buffer's root shape, not
   the full tree.  Labels key the profiler's per-datatype aggregation
   buckets, so they must be short and low-cardinality. *)
let dt_label = function
  | Bytes _ -> "bytes"
  | Custom _ -> "custom"
  | Typed { dt; _ } -> (
      match Datatype.view dt with
      | Datatype.V_predefined _ -> Datatype.to_string dt
      | Datatype.V_contiguous _ -> "contig"
      | Datatype.V_hvector _ -> "hvector"
      | Datatype.V_hindexed _ -> "hindexed"
      | Datatype.V_struct _ -> "struct"
      | Datatype.V_resized _ -> "resized")

(* Wire size of a buffer descriptor without touching callback state.
   Custom types are opaque here — their query callbacks must not run
   twice — so their size stays unknown (-1) until completion reports
   ["len"]. *)
let buffer_wire_bytes = function
  | Bytes b -> Buf.length b
  | Typed { dt; count; _ } -> Datatype.packed_size dt ~count
  | Custom _ -> -1

(* One "p2p" span per operation, open from post to completion (closed in
   the request finalizer, i.e. at wait/test time).  [nest:false]: the
   span can outlive the posting fiber's call stack, so it must not
   capture later same-track spans as children — but it still nests under
   whatever is open at post time (e.g. a barrier span). *)
let op_span c ~blocking ~send ~peer ~tag buf =
  if Obs.enabled c.w.obs then
    let name =
      match (blocking, send) with
      | true, true -> "send"
      | false, true -> "isend"
      | true, false -> "recv"
      | false, false -> "irecv"
    in
    Some
      (Obs.span_begin c.w.obs ~time:(Engine.now c.w.engine)
         ~track:(my_world_rank c) ~cat:"p2p" ~nest:false
         ~args:
           [
             ("peer", Obs.Int peer);
             ("tag", Obs.Int tag);
             ("bytes", Obs.Int (buffer_wire_bytes buf));
             ("dt", Obs.Str (dt_label buf));
           ]
         name)
  else None

(* Fail-fast check run before posting: an operation on a communicator
   this rank knows is revoked, or directed at (or posted by) a declared-
   failed rank, completes immediately with the corresponding error — no
   descriptors are built, no callback state is started, nothing touches
   the wire.  [peer_world] is [-1] for any-source receives (which, as in
   ULFM, stay pending: a live sender may still match them). *)
let fail_fast c kind ~peer_world : Ucx.error option =
  let w = c.w in
  let me = c.group.(c.c_rank) in
  if Hashtbl.mem w.revoked_seen (c.cid, me) then Some Ucx.Revoked
  else
    match
      if kind_code kind = kind_code Internal0.Internal then
        Hashtbl.find_opt w.col_poison (c.cid, me)
      else None
    with
    | Some err -> Some (lower_error err)
    | None ->
        if Ucx.any_failures w.ucx then
          if Ucx.is_failed w.ucx ~rank:me then
            Some (Ucx.Peer_failed { peer = me })
          else if peer_world >= 0 && Ucx.is_failed w.ucx ~rank:peer_world then
            Some (Ucx.Peer_failed { peer = peer_world })
          else None
        else None

let force_raise_of kind = kind_code kind = kind_code Internal0.Internal

let isend_gen c kind ~blocking ~dst ~tag buf =
  check_dst c dst "isend";
  check_user_tag tag;
  let span = op_span c ~blocking ~send:true ~peer:dst ~tag buf in
  let me = c.group.(c.c_rank) and peer = c.group.(dst) in
  let t64 = encode_tag ~src:me ~kind ~cid:c.cid ~utag:tag in
  let force_raise = force_raise_of kind in
  match fail_fast c kind ~peer_world:peer with
  | Some err ->
      let req = Ucx.completed_request c.w.ucx ~tag:t64 err in
      monitor_record c kind ~op_kind:Monitor.Send ~peer ~tag ~blocking buf req;
      make_request ?span ~force_raise c req (fun _ -> ())
  | None ->
      let dt, cleanup = make_send_dt c buf in
      let req = Ucx.tag_send (endpoint c.w ~src:me ~dst:peer) ~tag:t64 dt in
      monitor_record c kind ~op_kind:Monitor.Send ~peer ~tag ~blocking buf req;
      register_outstanding c.w
        {
          oe_req = req;
          oe_tag = t64;
          oe_cid = c.cid;
          oe_rank = me;
          oe_peer = peer;
          oe_internal = force_raise;
        };
      make_request ?span ~force_raise c req cleanup

let irecv_gen c kind ~blocking ?(source = any_source) ?(tag = any_tag) buf =
  if source <> any_source then check_dst c source "irecv";
  let span = op_span c ~blocking ~send:false ~peer:source ~tag buf in
  let me = c.group.(c.c_rank) in
  let source = if source = any_source then any_source else c.group.(source) in
  let t64, mask = recv_tag_mask ~kind ~cid:c.cid ~source ~tag in
  let force_raise = force_raise_of kind in
  match fail_fast c kind ~peer_world:source with
  | Some err ->
      let req = Ucx.completed_request c.w.ucx ~tag:t64 err in
      monitor_record c kind ~op_kind:Monitor.Recv ~peer:source ~tag ~blocking
        buf req;
      make_request ?span ~force_raise c req (fun _ -> ())
  | None ->
      let dt, cleanup = make_recv_dt c buf in
      let req = Ucx.tag_recv c.w.workers.(me) ~tag:t64 ~mask dt in
      monitor_record c kind ~op_kind:Monitor.Recv ~peer:source ~tag ~blocking
        buf req;
      register_outstanding c.w
        {
          oe_req = req;
          oe_tag = t64;
          oe_cid = c.cid;
          oe_rank = me;
          oe_peer = source;
          oe_internal = force_raise;
        };
      make_request ?span ~force_raise c req cleanup

let isend_k c kind ~dst ~tag buf = isend_gen c kind ~blocking:false ~dst ~tag buf
let irecv_k c kind ?source ?tag buf = irecv_gen c kind ~blocking:false ?source ?tag buf
let send_k c kind ~dst ~tag buf =
  ignore (wait (isend_gen c kind ~blocking:true ~dst ~tag buf))
let recv_k c kind ?source ?tag buf =
  wait (irecv_gen c kind ~blocking:true ?source ?tag buf)

let isend c ~dst ~tag buf = isend_k c Internal0.User ~dst ~tag buf
let irecv c ?source ?tag buf = irecv_k c Internal0.User ?source ?tag buf
let send c ~dst ~tag buf = send_k c Internal0.User ~dst ~tag buf
let recv c ?source ?tag buf = recv_k c Internal0.User ?source ?tag buf

(* --- probing --- *)

type message = Ucx.message

let probe_status c (info : Ucx.probe_info) =
  {
    source = comm_source c (decode_source info.p_tag);
    tag = decode_utag info.p_tag;
    len = info.p_len;
  }

let probe_args c kind source tag =
  let source = if source = any_source then any_source else c.group.(source) in
  recv_tag_mask ~kind ~cid:c.cid ~source ~tag

let my_worker c = c.w.workers.(c.group.(c.c_rank))

let iprobe_k c kind ?(source = any_source) ?(tag = any_tag) () =
  let t64, mask = probe_args c kind source tag in
  Ucx.tag_probe (my_worker c) ~tag:t64 ~mask |> Option.map (probe_status c)

let probe_k c kind ?(source = any_source) ?(tag = any_tag) () =
  let t64, mask = probe_args c kind source tag in
  probe_status c (Ucx.tag_probe_wait (my_worker c) ~tag:t64 ~mask)

let improbe_k c kind ?(source = any_source) ?(tag = any_tag) () =
  let t64, mask = probe_args c kind source tag in
  Ucx.tag_mprobe (my_worker c) ~tag:t64 ~mask
  |> Option.map (fun (info, msg) -> (probe_status c info, msg))

let mprobe_k c kind ?(source = any_source) ?(tag = any_tag) () =
  let t64, mask = probe_args c kind source tag in
  let info, msg = Ucx.tag_mprobe_wait (my_worker c) ~tag:t64 ~mask in
  (probe_status c info, msg)

let mrecv_k c _kind msg buf =
  let dt, cleanup = make_recv_dt c buf in
  let req = Ucx.msg_recv (my_worker c) msg dt in
  wait (make_request c req cleanup)

let iprobe c ?source ?tag () = iprobe_k c Internal0.User ?source ?tag ()
let probe c ?source ?tag () = probe_k c Internal0.User ?source ?tag ()
let improbe c ?source ?tag () = improbe_k c Internal0.User ?source ?tag ()
let mprobe c ?source ?tag () = mprobe_k c Internal0.User ?source ?tag ()
let mrecv c msg buf = mrecv_k c Internal0.User msg buf

(* --- ULFM-style process-failure resilience ---

   See docs/RESILIENCE.md.  The operations below follow the User-Level
   Failure Mitigation proposal in miniature: failures are detected by
   the transport (heartbeat detector or piggybacked on traffic) and
   reported through the per-communicator error handlers; [comm_revoke]
   interrupts all communication on a communicator; [comm_agree] reaches
   agreement despite participant death; [comm_shrink] rebuilds a
   working communicator from the survivors. *)

let failed_ranks c =
  (* comm ranks of this communicator's members declared failed *)
  let acc = ref [] in
  for i = Array.length c.group - 1 downto 0 do
    if Ucx.is_failed c.w.ucx ~rank:c.group.(i) then acc := i :: !acc
  done;
  !acc

let comm_failure_ack c =
  Hashtbl.replace c.w.acked (c.cid, c.group.(c.c_rank)) (failed_ranks c)

let comm_get_acked c =
  Option.value ~default:[]
    (Hashtbl.find_opt c.w.acked (c.cid, c.group.(c.c_rank)))

(* Apply the communicator's error handler to a collective-level error:
   raise it, abort the rank, or stash it and continue degraded. *)
let collective_error c err =
  match get_errhandler c with
  | Errors_raise -> raise (Mpi_error err)
  | Errors_abort -> raise (Aborted { rank = c.c_rank; error = err })
  | Errors_return -> Hashtbl.replace c.w.last_errors (c.cid, c.c_rank) err

(* The error, if any, that dooms a collective on [c] before it starts:
   a seen revocation, an earlier poisoned collective, or a declared-
   failed member (ULFM requires collectives to fail across the whole
   communicator when any member has failed). *)
let collective_ready c =
  let w = c.w in
  let me = c.group.(c.c_rank) in
  if Hashtbl.mem w.revoked_seen (c.cid, me) then Some Revoked
  else
    match Hashtbl.find_opt w.col_poison (c.cid, me) with
    | Some err -> Some err
    | None ->
        if Ucx.any_failures w.ucx then
          if Ucx.is_failed w.ucx ~rank:me then Some (Peer_failed { peer = me })
          else
            let n = Array.length c.group in
            let rec chk i =
              if i >= n then None
              else if Ucx.is_failed w.ucx ~rank:c.group.(i) then
                Some (Peer_failed { peer = c.group.(i) })
              else chk (i + 1)
            in
            chk 0
        else None

(* A collective that observed [err] poisons the operation for its peers:
   their pending internal-channel operations on this communicator are
   cancelled (one link latency later — the time a failure notification
   takes to cross the wire) and the communicator is marked broken for
   future collectives, so no rank blocks on a peer that already gave
   up.  A rank that is itself declared failed poisons only locally: a
   dead rank cannot notify anyone. *)
let poison_collective c err =
  let w = c.w in
  let me = c.group.(c.c_rank) in
  let mark rank =
    if not (Hashtbl.mem w.col_poison (c.cid, rank)) then begin
      Hashtbl.replace w.col_poison (c.cid, rank) err;
      cancel_outstanding w ~owner:rank
        ~pred:(fun e -> e.oe_internal && e.oe_cid = c.cid)
        (lower_error err)
    end
  in
  mark me;
  if not (Ucx.is_failed w.ucx ~rank:me) then
    Array.iter
      (fun peer ->
        if peer <> me then
          Engine.at w.engine ~delay:w.config.link.latency_ns (fun () ->
              mark peer))
      c.group

(* Deliver a revocation to one rank: every pending operation that rank
   has on the communicator — any channel — completes with [Revoked],
   and all its future operations on it fail fast. *)
let deliver_revoke w ~cid ~rank =
  if not (Hashtbl.mem w.revoked_seen (cid, rank)) then begin
    Hashtbl.replace w.revoked_seen (cid, rank) (Engine.now w.engine);
    if Obs.enabled w.obs then
      Obs.instant w.obs ~time:(Engine.now w.engine) ~track:rank
        ~cat:"resilience"
        ~args:[ ("cid", Obs.Int cid) ]
        "revoked";
    cancel_outstanding w ~owner:rank
      ~pred:(fun e -> e.oe_cid = cid)
      Ucx.Revoked
  end

let comm_revoked c =
  Hashtbl.mem c.w.revoked_seen (c.cid, c.group.(c.c_rank))

(* Revoke the communicator (ULFM MPI_Comm_revoke).  Local effect is
   immediate; every other member learns of it one link latency later.
   The broadcast is modeled as reliable — revocation state lives in the
   shared simulation, so unlike a payload it cannot be lost — which is
   exactly the guarantee ULFM demands of the revoke algorithm.
   Idempotent; a revoked communicator stays revoked. *)
(* Test-only seeded-bug switches for the explorer's mutation
   self-check (docs/FAULTS.md).  Every flag defaults to [false] and is
   consulted nowhere else, so production behavior is identical while
   they stay off. *)
module Mutation = struct
  (* Re-introduces the pre-PR-8 comm_revoke bug: a rank already
     declared failed claims the one-shot broadcast flag it can never
     honor, starving the survivors' revoke. *)
  let revoke_oneshot = ref false
end

let comm_revoke c =
  let w = c.w in
  let me = c.group.(c.c_rank) in
  (* A rank already declared failed revokes only locally: a dead rank
     cannot notify anyone, and it must not claim the one-shot broadcast
     flag either — a survivor revoking later still owes its peers the
     notification. *)
  let alive = not (Ucx.is_failed w.ucx ~rank:me) in
  let first = not (Hashtbl.mem w.revoked c.cid) in
  if first && (alive || !Mutation.revoke_oneshot) then begin
    let t0 = Engine.now w.engine in
    Hashtbl.replace w.revoked c.cid t0;
    if alive then begin
      Stats.record_comm_revoke w.stats;
      if Obs.enabled w.obs then
        ignore
          (Obs.span_complete w.obs ~track:me ~cat:"resilience" ~t0
             ~t1:(t0 +. w.config.link.latency_ns)
             ~args:[ ("cid", Obs.Int c.cid) ]
             "revoke_propagation");
      Array.iter
        (fun peer ->
          if peer <> me then
            Engine.at w.engine ~delay:w.config.link.latency_ns (fun () ->
                deliver_revoke w ~cid:c.cid ~rank:peer))
        c.group
    end
  end;
  deliver_revoke w ~cid:c.cid ~rank:me

(* Shared engine of [comm_agree]/[comm_shrink]: contribute an integer
   into the slot for this call index, complete it if possible, and wait
   (or read) the combined result.  The virtual-time cost modeled after
   the ULFM agreement literature is two tree traversals.  Never blocks
   on a dead rank: the failure listener re-checks slots. *)
let agree_gen c ~opcode ~shrink ~init ~combine ~contribution ~ack ~failed =
  let w = c.w in
  let me = c.group.(c.c_rank) in
  let n = size c in
  if Ucx.is_failed w.ucx ~rank:me then
    raise (Mpi_error (Peer_failed { peer = me }));
  let seq =
    if shrink then begin
      let s = c.shrink_seq in
      c.shrink_seq <- s + 1;
      s
    end
    else begin
      let s = c.agree_seq in
      c.agree_seq <- s + 1;
      s
    end
  in
  let key = (c.cid, opcode, seq) in
  let slot =
    match Hashtbl.find_opt w.slots key with
    | Some s -> s
    | None ->
        let s =
          {
            s_group = c.group;
            s_combine = combine;
            s_shrink = shrink;
            s_acc = init;
            s_ack_acc = Bitset.full n;
            s_failed = Bitset.create n;
            s_contrib = Bitset.create n;
            s_result = None;
            s_new_cid = -1;
            s_survivors = [||];
            s_waiters = [];
          }
        in
        Hashtbl.add w.slots key s;
        s
  in
  (match slot.s_result with
  | Some _ -> ()  (* completed without us: we were presumed dead *)
  | None ->
      slot.s_acc <- combine slot.s_acc contribution;
      Bitset.inter_into slot.s_ack_acc ack;
      Bitset.union_into slot.s_failed failed;
      Bitset.add slot.s_contrib c.c_rank;
      try_complete_slot w slot);
  let result =
    match slot.s_result with
    | Some r -> r
    | None ->
        Engine.suspend w.engine (fun resume ->
            slot.s_waiters <- resume :: slot.s_waiters)
  in
  (* two traversals of a binomial tree over the group *)
  let rounds =
    let rec lg k acc = if k >= n then acc else lg (k * 2) (acc + 1) in
    max 1 (lg 1 0)
  in
  let l = w.config.link in
  charge c
    (2. *. float_of_int rounds *. (l.latency_ns +. l.per_msg_overhead_ns));
  (slot, result)

(* Fault-tolerant agreement on a bitmask (ULFM MPI_Comm_agree): returns
   the AND of every live contribution.  If a member failed without
   contributing, [Peer_failed] is reported through the error handler at
   {e every} caller — unless every contributor had acknowledged that
   failure beforehand ([comm_failure_ack]).  Both the value and the
   error verdict are derived from slot state frozen at completion, so
   they are uniform across all callers. *)
let comm_agree c ~flags =
  let n = size c in
  let ack_set = Bitset.of_list n (comm_get_acked c) in
  let slot, value =
    agree_gen c ~opcode:0 ~shrink:false ~init:(lnot 0) ~combine:( land )
      ~contribution:flags ~ack:ack_set ~failed:(Bitset.create n)
  in
  let unacked = ref [] in
  for i = n - 1 downto 0 do
    if (not (Bitset.mem slot.s_contrib i)) && not (Bitset.mem slot.s_ack_acc i)
    then unacked := i :: !unacked
  done;
  (match !unacked with
  | [] -> ()
  | i :: _ -> collective_error c (Peer_failed { peer = c.group.(i) }));
  value

(* Rebuild a working communicator from the survivors (ULFM
   MPI_Comm_shrink).  Participants agree — fault-tolerantly — on the
   union of the failures each has observed; the survivor set and the
   fresh communicator id are fixed once, at agreement completion, so
   every caller derives the same membership with consistent
   renumbering (ordered by old comm rank). *)
let comm_shrink c =
  let w = c.w in
  let me = c.group.(c.c_rank) in
  let n = size c in
  let known = Bitset.create n in
  Array.iteri
    (fun i wr -> if Ucx.is_failed w.ucx ~rank:wr then Bitset.add known i)
    c.group;
  let slot, _ =
    agree_gen c ~opcode:1 ~shrink:true ~init:0 ~combine:( lor )
      ~contribution:0 ~ack:(Bitset.full n) ~failed:known
  in
  let survivors = slot.s_survivors in
  let new_cid = slot.s_new_cid in
  if Obs.enabled w.obs then
    Obs.instant w.obs ~time:(Engine.now w.engine) ~track:me ~cat:"resilience"
      ~args:
        [ ("cid", Obs.Int c.cid); ("new_cid", Obs.Int new_cid);
          ("survivors", Obs.Int (Array.length survivors)) ]
      "comm_shrink";
  let my_new_rank = ref (-1) in
  Array.iteri (fun i cr -> if cr = c.c_rank then my_new_rank := i) survivors;
  if !my_new_rank < 0 then
    (* we were presumed dead (or revoked out): no seat in the new comm *)
    raise (Mpi_error (Peer_failed { peer = me }));
  (* the shrunk communicator inherits the parent's error handler *)
  (match Hashtbl.find_opt w.errh c.cid with
  | Some h -> Hashtbl.replace w.errh new_cid h
  | None -> ());
  {
    w;
    c_rank = !my_new_rank;
    group = Array.map (fun cr -> c.group.(cr)) survivors;
    cid = new_cid;
    bar_seq = 0;
    agree_seq = 0;
    shrink_seq = 0;
  }

(* --- barrier (linear; the harness only needs correctness) --- *)

let empty () = Bytes (Buf.create 0)

let fresh_seq c =
  let seq = c.bar_seq in
  c.bar_seq <- seq + 1;
  seq

let barrier c =
  (* the sequence number is consumed unconditionally so survivors of a
     failed barrier stay aligned with ranks that failed fast *)
  let seq = fresh_seq c in
  match collective_ready c with
  | Some err -> collective_error c err
  | None -> (
      let tag = seq * 16 in
      let sp =
        if Obs.enabled c.w.obs then
          Obs.span_begin c.w.obs ~time:(Engine.now c.w.engine)
            ~track:(my_world_rank c) ~cat:"p2p"
            ~args:[ ("seq", Obs.Int seq) ]
            "barrier"
        else Obs.null_span
      in
      let body () =
        if c.c_rank = 0 then begin
          for _ = 1 to size c - 1 do
            ignore (recv_k c Internal0.Internal ~tag (empty ()))
          done;
          for r = 1 to size c - 1 do
            send_k c Internal0.Internal ~dst:r ~tag:(tag + 1) (empty ())
          done
        end
        else begin
          send_k c Internal0.Internal ~dst:0 ~tag (empty ());
          ignore (recv_k c Internal0.Internal ~source:0 ~tag:(tag + 1) (empty ()))
        end
      in
      match body () with
      | () -> Obs.span_end c.w.obs ~time:(Engine.now c.w.engine) sp
      | exception Mpi_error err ->
          Obs.span_end c.w.obs ~time:(Engine.now c.w.engine) sp;
          poison_collective c err;
          collective_error c err)

(* --- communicator management --- *)

let comm_split c ~color ~key =
  let seq = fresh_seq c in
  let tag = (seq * 16) + 2 in
  let n = size c in
  let me = c.c_rank in
  (* phase 1: gather (color, key) at comm rank 0; phase 2: rank 0
     allocates one fresh cid per colour and broadcasts the full table *)
  let table = Array.make n (0, 0, 0) (* color, key, cid *) in
  if me = 0 then begin
    table.(0) <- (color, key, 0);
    for i = 1 to n - 1 do
      let b = Buf.create 16 in
      ignore (recv_k c Internal0.Internal ~source:i ~tag (Bytes b));
      table.(i) <-
        (Int64.to_int (Buf.get_i64 b 0), Int64.to_int (Buf.get_i64 b 8), 0)
    done;
    let colors =
      Array.to_list table |> List.map (fun (c, _, _) -> c) |> List.sort_uniq compare
    in
    let cid_of_color = List.map (fun col -> (col, alloc_cid c.w)) colors in
    Array.iteri
      (fun i (col, k, _) -> table.(i) <- (col, k, List.assoc col cid_of_color))
      table;
    let out = Buf.create (24 * n) in
    Array.iteri
      (fun i (col, k, cid) ->
        Buf.set_i64 out (24 * i) (Int64.of_int col);
        Buf.set_i64 out ((24 * i) + 8) (Int64.of_int k);
        Buf.set_i64 out ((24 * i) + 16) (Int64.of_int cid))
      table;
    for i = 1 to n - 1 do
      send_k c Internal0.Internal ~dst:i ~tag:(tag + 1) (Bytes out)
    done
  end
  else begin
    let b = Buf.create 16 in
    Buf.set_i64 b 0 (Int64.of_int color);
    Buf.set_i64 b 8 (Int64.of_int key);
    send_k c Internal0.Internal ~dst:0 ~tag (Bytes b);
    let inc = Buf.create (24 * n) in
    ignore (recv_k c Internal0.Internal ~source:0 ~tag:(tag + 1) (Bytes inc));
    for i = 0 to n - 1 do
      table.(i) <-
        ( Int64.to_int (Buf.get_i64 inc (24 * i)),
          Int64.to_int (Buf.get_i64 inc ((24 * i) + 8)),
          Int64.to_int (Buf.get_i64 inc ((24 * i) + 16)) )
    done
  end;
  (* members of my colour, ordered by (key, old rank) *)
  let my_color, _, my_cid = table.(me) in
  let members =
    Array.to_list (Array.mapi (fun i (col, k, _) -> (col, k, i)) table)
    |> List.filter (fun (col, _, _) -> col = my_color)
    |> List.sort (fun (_, k1, r1) (_, k2, r2) -> compare (k1, r1) (k2, r2))
    |> List.map (fun (_, _, r) -> r)
  in
  let group = Array.of_list (List.map (fun r -> c.group.(r)) members) in
  let new_rank =
    let rec idx i = function
      | [] -> assert false
      | r :: rest -> if r = me then i else idx (i + 1) rest
    in
    idx 0 members
  in
  (* child communicators inherit the parent's error handler *)
  (match Hashtbl.find_opt c.w.errh c.cid with
  | Some h -> Hashtbl.replace c.w.errh my_cid h
  | None -> ());
  {
    w = c.w;
    c_rank = new_rank;
    group;
    cid = my_cid;
    bar_seq = 0;
    agree_seq = 0;
    shrink_seq = 0;
  }

let comm_dup c = comm_split c ~color:0 ~key:c.c_rank

module Internal = struct
  include Internal0

  let send_k = send_k
  let recv_k = recv_k
  let isend_k = isend_k
  let irecv_k = irecv_k
  let iprobe_k = iprobe_k
  let probe_k = probe_k
  let mprobe_k = mprobe_k
  let mrecv_k = mrecv_k
  let fresh_seq = fresh_seq
  let collective_ready = collective_ready
  let poison_collective = poison_collective
  let collective_error = collective_error
end

let sendrecv c ~dst ~send_tag sbuf ?source ?recv_tag rbuf =
  let sreq = isend c ~dst ~tag:send_tag sbuf in
  let st = recv c ?source ?tag:recv_tag rbuf in
  ignore (wait sreq);
  st

(* --- explicit packing --- *)

let pack_size dt ~count = Datatype.packed_size dt ~count

let pack c dt ~count ~src ~dst ~position =
  let plan = plan_of c dt in
  let bytes = Plan.packed_size plan ~count in
  if position < 0 || position + bytes > Buf.length dst then
    invalid_arg "Mpi.pack: destination range";
  let n =
    Plan.pack plan ~count ~src ~dst:(Buf.sub dst ~pos:position ~len:bytes)
  in
  Stats.record_copy c.w.stats bytes;
  charge c
    (Config.memcpy_time (cpu c) bytes
    +. typed_overheads c plan count);
  position + n

let unpack c dt ~count ~src ~position ~dst =
  let plan = plan_of c dt in
  let bytes = Plan.packed_size plan ~count in
  if position < 0 || position + bytes > Buf.length src then
    invalid_arg "Mpi.unpack: source range";
  Plan.unpack plan ~count ~src:(Buf.sub src ~pos:position ~len:bytes) ~dst;
  Stats.record_copy c.w.stats bytes;
  charge c
    (Config.memcpy_time (cpu c) bytes
    +. typed_overheads c plan count);
  position + bytes
