(* Reference workloads the fault-space explorer drives.

   Each workload is a small SPMD program with a built-in oracle: run it
   under a fault plan and it reports a canonical per-rank outcome render
   (byte-compared across replays) plus the list of oracle violations.
   The oracles encode what resilience promises under each fault class —
   a hang, a damaged payload, a non-uniform commit, or an error without
   an excusing fault is always a counterexample; process-failure errors
   are legitimate exactly when the plan schedules a cause (crash,
   partition, or a straggler past the detector threshold). *)

module Buf = Mpicd_buf.Buf
module Config = Mpicd_simnet.Config
module Engine = Mpicd_simnet.Engine
module Fault = Mpicd_simnet.Fault
module Stats = Mpicd_simnet.Stats
module Mpi = Mpicd.Mpi
module Coll = Mpicd_collectives.Collectives

type result = { res_render : string; res_failures : string list }

type t = {
  wl_name : string;
  wl_descr : string;
  wl_size : int;
  wl_config : Config.t;
  wl_base : Fault.t;
  wl_run : ?tap:(Fault.probe -> unit) -> Fault.t -> result;
}

let error_name = function
  | Mpi.Truncated _ -> "truncated"
  | Mpi.Callback_failed c -> Printf.sprintf "callback_failed:%d" c
  | Mpi.Timeout { retries } -> Printf.sprintf "timeout:%d" retries
  | Mpi.Peer_failed { peer } -> Printf.sprintf "peer_failed:%d" peer
  | Mpi.Data_corrupted -> "data_corrupted"
  | Mpi.Revoked -> "revoked"

let is_error o = String.length o >= 4 && String.sub o 0 4 = "err:"
let is_damaged o = String.length o >= 8 && String.sub o 0 8 = "damaged:"

(* Which plans excuse an error outcome: anything that can legitimately
   kill or evict a rank.  A straggler is a cause only past the
   false-positive threshold of the heartbeat detector (the same rule
   [Ucx] applies). *)
let has_cause (cfg : Config.t) (plan : Fault.t) =
  let l = cfg.Config.link in
  plan.Fault.crashes <> []
  || plan.Fault.partitions <> []
  || plan.Fault.hb_period_ns > 0.
     && List.exists
          (fun (_, f) ->
            f *. 2. *. l.Config.latency_ns
            > plan.Fault.hb_period_ns +. (2. *. l.Config.latency_ns))
          plan.Fault.stragglers

(* The counters that distinguish outcomes; per-rank renders plus this
   line are what replays must reproduce byte-identically. *)
let stats_line (s : Stats.t) =
  Printf.sprintf
    "stats: retx=%d drops=%d parts=%d inj=%d timeouts=%d failures=%d \
     cancelled=%d revokes=%d shrinks=%d agreements=%d"
    s.Stats.retransmits s.Stats.frags_dropped s.Stats.partition_drops
    s.Stats.injections_fired s.Stats.delivery_timeouts
    s.Stats.failures_detected s.Stats.ops_cancelled s.Stats.comm_revokes
    s.Stats.comm_shrinks s.Stats.comm_agreements

let render ~outcomes ~hang ~stats =
  String.concat "\n"
    (Array.to_list (Array.mapi (fun r o -> Printf.sprintf "rank%d: %s" r o) outcomes)
    @ [ (if hang then "hang: yes" else "hang: no"); stats_line stats ])

(* Shared runner: build a world, attach plan (and tap), run [body] on
   every rank, convert a deadlock into the hang flag, and apply the
   baseline oracle rules every workload shares. *)
let run_world ~config ~size ~tap ~plan body ~extra_oracle =
  let w = Mpi.create_world ~config ~size () in
  Mpi.set_faults w (Some plan);
  (match tap with None -> () | Some _ -> Mpi.set_fault_tap w tap);
  let outcomes = Array.make size "none" in
  let hang = ref false in
  (try Mpi.run w (fun c -> body c outcomes) with
  | Engine.Deadlock _ -> hang := true
  | Mpi.Aborted _ -> hang := true);
  let stats = Mpi.world_stats w in
  let fails = ref [] in
  let addf m = fails := m :: !fails in
  if !hang then addf "hang: engine deadlocked";
  Array.iteri
    (fun r o ->
      if o = "none" then
        addf (Printf.sprintf "hang: rank %d recorded no outcome" r))
    outcomes;
  Array.iteri
    (fun r o ->
      if is_damaged o then addf (Printf.sprintf "conservation: rank %d %s" r o))
    outcomes;
  if not (has_cause config plan) then
    Array.iteri
      (fun r o ->
        if is_error o then
          addf (Printf.sprintf "error-without-cause: rank %d %s" r o))
      outcomes;
  extra_oracle ~plan ~outcomes ~addf;
  {
    res_render = render ~outcomes ~hang:!hang ~stats;
    res_failures = List.rev !fails;
  }

(* --- revoke-rescue ---

   The ULFM revoke-rescue pattern on a 4-rank dependency chain:

     rank 3: send A->2; recv B<-2
     rank 2: recv A<-3; ping-pong with 1; send B->3; send B->1
     rank 1: ping-pong with 2; recv B<-2... (via 2's final send); send B->0
     rank 0: recv B<-1

   Ranks 0 and 1 block on {e alive} peers, so when a failure makes an
   upstream rank abandon the pattern, only the comm_revoke broadcast of
   the first rank that observes the failure can release them.  This is
   exactly the pattern the historical comm_revoke one-shot-flag bug
   broke: a dead rank claiming the flag starved the survivors' revoke
   and ranks 0/1 deadlocked.  Every error handler revokes, as the ULFM
   recipe prescribes. *)

let payload_bytes = 1024
let pp_rounds = 30

let pattern ~src =
  let b = Buf.create payload_bytes in
  for i = 0 to payload_bytes - 1 do
    Buf.set_u8 b i ((src * 37) + i land 0xff)
  done;
  b

let check_pattern ~src b =
  let want = pattern ~src in
  let ok = ref true in
  for i = 0 to payload_bytes - 1 do
    if Buf.get_u8 b i <> Buf.get_u8 want i then ok := false
  done;
  !ok

let tag_a = 1
let tag_b = 2
let tag_pp = 3

let revoke_rescue_body c outcomes =
  let me = Mpi.rank c in
  let result = ref "ok" in
  let send_pat dst tag = Mpi.send c ~dst ~tag (Mpi.Bytes (pattern ~src:me)) in
  let recv_pat src tag =
    let b = Buf.create payload_bytes in
    ignore (Mpi.recv c ~source:src ~tag (Mpi.Bytes b));
    if not (check_pattern ~src b) then
      result := Printf.sprintf "damaged: from rank %d" src
  in
  (try
     (match me with
     | 3 ->
         send_pat 2 tag_a;
         recv_pat 2 tag_b
     | 2 ->
         recv_pat 3 tag_a;
         for _ = 1 to pp_rounds do
           recv_pat 1 tag_pp;
           send_pat 1 tag_pp
         done;
         send_pat 3 tag_b;
         send_pat 1 tag_b
     | 1 ->
         for _ = 1 to pp_rounds do
           send_pat 2 tag_pp;
           recv_pat 2 tag_pp
         done;
         recv_pat 2 tag_b;
         send_pat 0 tag_b
     | 0 -> recv_pat 1 tag_b
     | _ -> ());
     outcomes.(me) <- !result
   with Mpi.Mpi_error err ->
     outcomes.(me) <- "err:" ^ error_name err;
     (* the canonical ULFM rescue: whoever observes a failure revokes so
        ranks blocked on alive-but-aborted peers are released *)
     Mpi.comm_revoke c)

let revoke_rescue_base =
  Fault.make ~max_retries:4 ~rto_ns:5_000. ~hb_period_ns:50_000. ()

let revoke_rescue =
  let config = Config.default in
  let size = 4 in
  {
    wl_name = "revoke-rescue";
    wl_descr =
      "4-rank dependency chain where only a comm_revoke broadcast can \
       release downstream ranks blocked on alive peers";
    wl_size = size;
    wl_config = config;
    wl_base = revoke_rescue_base;
    wl_run =
      (fun ?tap plan ->
        run_world ~config ~size ~tap ~plan revoke_rescue_body
          ~extra_oracle:(fun ~plan:_ ~outcomes:_ ~addf:_ -> ()));
  }

(* --- resilient allreduce ---

   The canonical ack/agree/revoke/shrink retry loop over a float64 sum.
   Oracle: every committed rank reports the same digest (uniform
   commit); without faults the digest is the exact full-group sum; a
   rank that is neither crashed nor evicted must commit. *)

let allreduce_floats = 256

let allreduce_body c outcomes =
  let me = Mpi.rank c in
  let data =
    Array.init allreduce_floats (fun i -> float_of_int ((me * 1000) + i))
  in
  try
    let _c', attempts = Coll.resilient_allreduce_f64 c ~op:`Sum data in
    let digest =
      Array.fold_left (fun acc v -> (acc *. 31.) +. v) 0. data
    in
    outcomes.(me) <- Printf.sprintf "ok: digest=%h attempts=%d" digest attempts
  with Mpi.Mpi_error err -> outcomes.(me) <- "err:" ^ error_name err

let allreduce_expected_digest ~size =
  let sum i =
    let n = float_of_int size in
    (* sum over ranks r of (r*1000 + i) *)
    (n *. float_of_int i)
    +. (1000. *. (n -. 1.) *. n /. 2.)
  in
  let data = Array.init allreduce_floats sum in
  Array.fold_left (fun acc v -> (acc *. 31.) +. v) 0. data

let allreduce_oracle ~config ~size ~plan ~outcomes ~addf =
  let oks =
    Array.to_list outcomes
    |> List.filter (fun o -> String.length o >= 3 && String.sub o 0 3 = "ok:")
  in
  (match oks with
  | [] ->
      if Array.length outcomes > 0 then addf "recovery: no rank committed"
  | first :: rest ->
      let digest_of o =
        match String.index_opt o '=' with
        | Some i -> (
            let rest = String.sub o (i + 1) (String.length o - i - 1) in
            match String.index_opt rest ' ' with
            | Some j -> String.sub rest 0 j
            | None -> rest)
        | None -> o
      in
      List.iter
        (fun o ->
          if digest_of o <> digest_of first then
            addf
              (Printf.sprintf "uniformity: commits disagree (%s vs %s)" first o))
        rest);
  if not (has_cause config plan) then
    Array.iteri
      (fun r o ->
        let want =
          Printf.sprintf "digest=%h" (allreduce_expected_digest ~size)
        in
        let has_sub hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          nn = 0 || go 0
        in
        if String.length o >= 3 && String.sub o 0 3 = "ok:" && not (has_sub o want)
        then
          addf
            (Printf.sprintf "conservation: rank %d committed wrong sum (%s)" r o))
      outcomes;
  (* ranks with no scheduled cause must commit *)
  let l = config.Config.link in
  let declared_straggler r =
    plan.Fault.hb_period_ns > 0.
    && List.exists
         (fun (rr, f) ->
           rr = r
           && f *. 2. *. l.Config.latency_ns
              > plan.Fault.hb_period_ns +. (2. *. l.Config.latency_ns))
         plan.Fault.stragglers
  in
  Array.iteri
    (fun r o ->
      if
        is_error o
        && Fault.crash_time plan ~rank:r = None
        && not (declared_straggler r)
        && plan.Fault.partitions = []
      then
        addf
          (Printf.sprintf "recovery: surviving rank %d failed to commit (%s)" r
             o))
    outcomes

let allreduce =
  let config = Config.default in
  let size = 4 in
  let base = Fault.make ~max_retries:4 ~rto_ns:5_000. ~hb_period_ns:50_000. () in
  {
    wl_name = "allreduce";
    wl_descr =
      "resilient float64 sum in the canonical ULFM ack/agree/revoke/shrink \
       retry loop; commits must be uniform and conservative";
    wl_size = size;
    wl_config = config;
    wl_base = base;
    wl_run =
      (fun ?tap plan ->
        run_world ~config ~size ~tap ~plan allreduce_body
          ~extra_oracle:(allreduce_oracle ~config ~size));
  }

let all = [ revoke_rescue; allreduce ]
let find name = List.find_opt (fun w -> w.wl_name = name) all
