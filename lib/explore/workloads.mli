(** Reference workloads with built-in oracles for the fault-space
    explorer.

    A workload is a deterministic SPMD program over the simulator plus
    an oracle that judges one execution under a fault plan.  The
    explorer treats workloads as black boxes: it runs [wl_run] with
    candidate plans and asks only for the canonical render (to
    fingerprint and replay-compare executions byte-for-byte) and the
    oracle violations (to decide counterexample-hood).

    Shared oracle rules, applied by every workload:
    - a {e hang} (engine deadlock, or any rank that never records an
      outcome) is always a violation;
    - {e damaged} payload data is always a violation — fault recovery
      must never silently deliver wrong bytes;
    - an {e error} outcome is excused only when the plan schedules a
      cause that can legitimately kill or evict a rank: a crash, a
      partition, or a straggler past the heartbeat detector's
      false-positive threshold.  Drops and corruptions alone must be
      absorbed by the reliable protocol. *)

type result = {
  res_render : string;
      (** canonical render of the execution: one ["rankN: <outcome>"]
          line per rank, a ["hang: yes/no"] line, and a line of the
          discriminating {!Mpicd_simnet.Stats} counters.  Replaying the
          same plan must reproduce this byte-identically. *)
  res_failures : string list;
      (** oracle violations, each ["category: detail"]; empty means the
          execution satisfied the workload's contract *)
}

type t = {
  wl_name : string;
  wl_descr : string;  (** one-line description for [--list] output *)
  wl_size : int;  (** world size the workload runs at *)
  wl_config : Mpicd_simnet.Config.t;
  wl_base : Mpicd_simnet.Fault.t;
      (** base fault plan (retry budget, heartbeat period) the explorer
          extends with scheduled faults; running [wl_run wl_base] is the
          fault-free reference run *)
  wl_run : ?tap:(Mpicd_simnet.Fault.probe -> unit) -> Mpicd_simnet.Fault.t -> result;
      (** execute under a plan; [tap] observes every first-attempt
          fragment send and ack (see {!Mpicd_ucx.Ucx.set_tap}), which is
          how the explorer records injection points *)
}

val revoke_rescue : t
(** 4-rank dependency chain in the ULFM revoke-rescue pattern: ranks 0
    and 1 block on alive peers and can only be released by the
    comm_revoke broadcast of whichever rank first observes a failure.
    Sensitive to revocation-propagation bugs. *)

val allreduce : t
(** Resilient float64 sum ({!Mpicd_collectives.Collectives.resilient_allreduce_f64}):
    commits must be uniform across surviving ranks, exact when the run
    is fault-free, and every rank without a scheduled cause must
    commit. *)

val all : t list
val find : string -> t option

val has_cause : Mpicd_simnet.Config.t -> Mpicd_simnet.Fault.t -> bool
(** Does the plan schedule anything that can legitimately kill or evict
    a rank (crash, partition, or declared straggler)?  Exposed so the
    explorer can report why an error outcome was — or wasn't —
    excused. *)

val error_name : Mpicd.Mpi.error -> string
(** Stable short name of an error, as used in outcome renders. *)
