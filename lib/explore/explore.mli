(** Deterministic fault-space exploration with counterexample
    minimization.

    Pipeline: {!record} a fault-free reference run to enumerate
    injection points → {!search} schedules of up to [k] simultaneous
    faults (bounded-exhaustive with state-fingerprint pruning, or
    biased-random under a budget) → {!shrink} any failing schedule to a
    locally minimal one → {!replay} it for byte-identical determinism →
    emit a [repro.json] artifact ({!repro_to_json}) that
    [mpicd_chaos --replay] re-executes exactly.

    Every schedule is expressed in the {!Mpicd_simnet.Fault} plan
    grammar, so a counterexample is an ordinary fault plan: there is no
    separate replay engine to trust.  See docs/FAULTS.md. *)

(** One scheduled fault.  The constructors mirror the plan grammar:
    crashes ([crash=R\@T]), targeted single-shot injections
    ([inj=KIND:SRC.DST.MSEQ.FRAG]), network partitions
    ([part=GROUP\@START+DUR]) and stragglers ([straggle=R\@F]). *)
type fault =
  | F_crash of int * float
  | F_inject of Mpicd_simnet.Fault.injection
  | F_partition of Mpicd_simnet.Fault.partition
  | F_straggle of int * float

type kind = [ `Crash | `Drop | `Corrupt | `Partition | `Straggle ]

val all_kinds : kind list
val kind_of_fault : fault -> kind
val kind_of_string : string -> kind option

val fault_id : fault -> string
(** Stable human-readable ID of an injection point — the same string
    names the same event on every re-run of the same workload. *)

val plan_of_schedule : Mpicd_simnet.Fault.t -> fault list -> Mpicd_simnet.Fault.t
(** Extend a base plan with a schedule.  Schedules are treated as sets:
    faults are sorted by {!fault_id} first, so equal sets always build
    plans with equal renders. *)

val fingerprint : string -> string
(** CRC-32 (hex) of a canonical render; the state fingerprint used for
    equivalence-class pruning and replay comparison. *)

(** {1 Recording} *)

type timeline = {
  tl_points : fault list;  (** candidate single faults, stable order *)
  tl_t0 : float;  (** first probe time of the reference run *)
  tl_t1 : float;  (** last probe time of the reference run *)
  tl_reference : Workloads.result;  (** the fault-free run *)
}

val record : Workloads.t -> timeline
(** Run the workload fault-free under a probe tap and derive the
    injection-point set: drop/corrupt coordinates from first-attempt
    fragments, per-rank crash candidates at activity midpoints (plus one
    past the end), single-rank partition windows sized well inside the
    retry budget, and sub-threshold straggler factors.  Point counts are
    capped (evenly sampled) to keep bounded-exhaustive sweeps tractable.
    Raises [Invalid_argument] if the reference run itself violates the
    workload's oracle. *)

val retry_budget_ns : Mpicd_simnet.Config.t -> Mpicd_simnet.Fault.t -> float
(** Total clamped backoff sleep across a transfer's retry schedule: how
    long a partition can cut a link before a correct stack gives up. *)

(** {1 Search} *)

type cex = {
  cex_sched : fault list;
  cex_plan : Mpicd_simnet.Fault.t;
  cex_failures : string list;
  cex_render : string;
  cex_fingerprint : string;
}

type report = {
  rp_runs : int;
  rp_points : int;
  rp_classes : int;
  rp_pruned : int;
  rp_truncated : bool;
  rp_cexs : cex list;
}

type mode = Exhaustive | Random

val search :
  ?k:int ->
  ?budget:int ->
  ?kinds:kind list ->
  ?mode:mode ->
  ?seed:int ->
  Workloads.t ->
  timeline ->
  report
(** Explore schedules of up to [k] simultaneous faults drawn from the
    timeline's points (filtered to [kinds]), running at most [budget]
    executions.  [Exhaustive] sweeps every single fault, folds points
    with identical execution renders into fingerprint classes, then
    pairs class representatives at [k >= 2]; [Random] samples schedules
    with the seeded simulator RNG (deterministic per [seed]).
    [rp_truncated] reports an exhausted budget — never silently. *)

val category : string list -> string
(** Failure category of an oracle report: the prefix of its first
    violation (["hang"], ["conservation"], ...), used to decide that a
    shrunk schedule still exhibits {e the same} failure. *)

(** {1 Shrinking and replay} *)

val shrink : Workloads.t -> cex -> cex
(** Delta-debug to local minimality: greedily drop single faults while
    the same failure category persists, then canonicalize crash times
    onto a 1000 ns grid.  The result is 1-minimal — removing any one
    remaining fault makes the failure disappear. *)

val replay : Workloads.t -> Mpicd_simnet.Fault.t -> (Workloads.result, string) result
(** Run the plan twice; [Ok] with the result only if both executions
    render byte-identically. *)

(** {1 Repro artifacts} *)

val repro_version : string

val repro_to_json : wl:Workloads.t -> mutations:string list -> cex -> string
(** Serialize a counterexample as a [repro.json] document (validated
    against the strict parser before being returned).  [mutations]
    records any seeded-bug flags that were active, so a replay can
    restore them. *)

type repro = {
  rj_workload : string;
  rj_size : int;
  rj_plan : Mpicd_simnet.Fault.t;
  rj_failure : string;
  rj_fingerprint : string;
  rj_render : string;
  rj_mutations : string list;
}

val repro_of_json : string -> (repro, string) result
