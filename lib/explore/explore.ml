(* Deterministic fault-space exploration over the simulator.

   The explorer turns "does recovery work?" into a search problem:

   1. {e record} — run the workload fault-free with a probe tap and
      derive a finite set of injection points (fragment coordinates,
      crash windows, partition windows, straggler factors), each a
      stable ID that names the same event on every re-run;
   2. {e search} — bounded-exhaustive up to [k] simultaneous faults
      (or biased-random under a budget), pruning with state
      fingerprints: two single faults whose executions render
      identically are interchangeable, so only one representative per
      class is paired at k = 2;
   3. {e shrink} — delta-debug a failing schedule to a locally minimal
      one (no single fault can be removed, crash times canonicalized)
      that still fails in the same category;
   4. {e replay} — re-execute the shrunk plan twice and require
      byte-identical renders before emitting a repro.json artifact.

   Everything is driven by the virtual clock and seeded RNG streams, so
   a repro artifact re-executes exactly, on any machine. *)

module Buf = Mpicd_buf.Buf
module Config = Mpicd_simnet.Config
module Fault = Mpicd_simnet.Fault
module Rng = Mpicd_simnet.Rng
module Crc32 = Mpicd_ucx.Crc32
module Ucx = Mpicd_ucx.Ucx
module Json = Mpicd_obs.Json

type fault =
  | F_crash of int * float
  | F_inject of Fault.injection
  | F_partition of Fault.partition
  | F_straggle of int * float

type kind = [ `Crash | `Drop | `Corrupt | `Partition | `Straggle ]

let all_kinds : kind list = [ `Crash; `Drop; `Corrupt; `Partition; `Straggle ]

let kind_of_fault = function
  | F_crash _ -> `Crash
  | F_inject { Fault.inj_kind = Fault.Inj_drop; _ } -> `Drop
  | F_inject { Fault.inj_kind = Fault.Inj_corrupt; _ } -> `Corrupt
  | F_partition _ -> `Partition
  | F_straggle _ -> `Straggle

let kind_of_string = function
  | "crash" -> Some `Crash
  | "drop" -> Some `Drop
  | "corrupt" -> Some `Corrupt
  | "partition" -> Some `Partition
  | "straggle" -> Some `Straggle
  | _ -> None

(* Stable ID of an injection point: names the same event on every
   re-run of the same workload (coordinates, not wall positions). *)
let fault_id = function
  | F_crash (r, t) -> Printf.sprintf "crash:%d@%.0f" r t
  | F_inject i ->
      Printf.sprintf "inj:%s:%d.%d.%d.%d"
        (match i.Fault.inj_kind with
        | Fault.Inj_drop -> "drop"
        | Fault.Inj_corrupt -> "corrupt")
        i.Fault.inj_src i.Fault.inj_dst i.Fault.inj_mseq i.Fault.inj_frag
  | F_partition p ->
      Printf.sprintf "part:%s@%.0f+%.0f"
        (String.concat "." (List.map string_of_int p.Fault.part_group))
        p.Fault.part_start_ns p.Fault.part_dur_ns
  | F_straggle (r, f) -> Printf.sprintf "straggle:%d@%g" r f

(* Schedules are sets: sort by ID before building the plan so the same
   set always renders to the same plan string. *)
let plan_of_schedule (base : Fault.t) sched =
  let sched = List.sort (fun a b -> compare (fault_id a) (fault_id b)) sched in
  List.fold_left
    (fun p f ->
      match f with
      | F_crash (r, t) -> { p with Fault.crashes = p.Fault.crashes @ [ (r, t) ] }
      | F_inject i -> { p with Fault.injections = p.Fault.injections @ [ i ] }
      | F_partition pt ->
          { p with Fault.partitions = p.Fault.partitions @ [ pt ] }
      | F_straggle (r, f) ->
          { p with Fault.stragglers = p.Fault.stragglers @ [ (r, f) ] })
    base sched

let fingerprint render = Printf.sprintf "%08lx" (Crc32.digest (Buf.of_string render))

(* --- recording --- *)

type timeline = {
  tl_points : fault list;  (** candidate single faults, stable order *)
  tl_t0 : float;
  tl_t1 : float;
  tl_reference : Workloads.result;  (** the fault-free run *)
}

(* Evenly sample at most [cap] elements, keeping first and last. *)
let sample_cap cap xs =
  let n = List.length xs in
  if n <= cap then xs
  else
    let arr = Array.of_list xs in
    List.init cap (fun i -> arr.(i * (n - 1) / (cap - 1)))

let dedup_sorted cmp xs =
  let sorted = List.sort_uniq cmp xs in
  sorted

(* How long a transfer can be cut off and still complete within its
   retry budget: the sum of the (clamped) backoff sleeps.  Partition
   windows are sized well under this so a correct stack always rides
   them out. *)
let retry_budget_ns (cfg : Config.t) (plan : Fault.t) =
  let rec go a acc =
    if a >= plan.Fault.max_retries then acc
    else go (a + 1) (acc +. Ucx.retx_backoff_ns cfg plan ~attempt:a)
  in
  go 0 0.

let crash_cap_per_rank = 6
let drop_cap = 12
let corrupt_cap = 6

let record (wl : Workloads.t) =
  let probes = ref [] in
  let reference =
    wl.Workloads.wl_run ~tap:(fun p -> probes := p :: !probes)
      wl.Workloads.wl_base
  in
  if reference.Workloads.res_failures <> [] then
    invalid_arg
      ("Explore.record: reference run violates its own oracle: "
      ^ String.concat "; " reference.Workloads.res_failures);
  let probes = List.rev !probes in
  if probes = [] then invalid_arg "Explore.record: reference run sent nothing";
  let times = List.map (fun p -> p.Fault.pb_time) probes in
  let t0 = List.fold_left Float.min (List.hd times) times in
  let t1 = List.fold_left Float.max (List.hd times) times in
  let span = Float.max 1. (t1 -. t0) in
  (* crash candidates: midpoints between a rank's consecutive distinct
     activity times, plus one point past the end (a no-op crash that
     pins the "crash after completion is harmless" corner) *)
  let crash_points =
    List.concat_map
      (fun r ->
        let mine =
          List.filter_map
            (fun p ->
              if p.Fault.pb_src = r || p.Fault.pb_dst = r then
                Some p.Fault.pb_time
              else None)
            probes
          |> dedup_sorted compare
        in
        let rec mids = function
          | a :: (b :: _ as rest) ->
              if b -. a > 1. then ((a +. b) /. 2.) :: mids rest else mids rest
          | _ -> []
        in
        let cands =
          match mine with
          | [] -> []
          | _ ->
              mids mine
              @ [ List.fold_left Float.max (List.hd mine) mine +. 1_000. ]
        in
        List.map
          (fun t -> F_crash (r, Float.round t))
          (sample_cap crash_cap_per_rank cands))
      (List.init wl.Workloads.wl_size (fun r -> r))
  in
  (* fragment coordinates: every first-attempt wire fragment is a
     distinct drop/corrupt point *)
  let coords =
    List.filter_map
      (fun p ->
        match p.Fault.pb_kind with
        | Fault.Pb_frag ->
            Some (p.Fault.pb_src, p.Fault.pb_dst, p.Fault.pb_mseq, p.Fault.pb_frag)
        | Fault.Pb_ack -> None)
      probes
    |> dedup_sorted compare
  in
  let inject kind (src, dst, mseq, frag) =
    F_inject
      {
        Fault.inj_kind = kind;
        inj_src = src;
        inj_dst = dst;
        inj_mseq = mseq;
        inj_frag = frag;
      }
  in
  let drop_points = List.map (inject Fault.Inj_drop) (sample_cap drop_cap coords) in
  let corrupt_points =
    List.map (inject Fault.Inj_corrupt) (sample_cap corrupt_cap coords)
  in
  (* partition windows: isolate each rank at two offsets into the run,
     healing well inside every transfer's retry budget *)
  let budget = retry_budget_ns wl.Workloads.wl_config wl.Workloads.wl_base in
  let part_dur = Float.round (0.3 *. budget) in
  let part_points =
    List.concat_map
      (fun r ->
        List.map
          (fun q ->
            F_partition
              {
                Fault.part_group = [ r ];
                part_start_ns = Float.round (t0 +. (q *. span));
                part_dur_ns = part_dur;
              })
          [ 0.25; 0.6 ])
      (List.init wl.Workloads.wl_size (fun r -> r))
  in
  (* straggler factors kept under the detector's false-positive
     threshold: a correct stack must absorb them silently *)
  let l = wl.Workloads.wl_config.Config.link in
  let hb = wl.Workloads.wl_base.Fault.hb_period_ns in
  let sub_threshold f =
    hb <= 0.
    || f *. 2. *. l.Config.latency_ns <= hb +. (2. *. l.Config.latency_ns)
  in
  let straggle_points =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun f -> if sub_threshold f then Some (F_straggle (r, f)) else None)
          [ 4.; 16. ])
      (List.init wl.Workloads.wl_size (fun r -> r))
  in
  {
    tl_points =
      crash_points @ drop_points @ corrupt_points @ part_points
      @ straggle_points;
    tl_t0 = t0;
    tl_t1 = t1;
    tl_reference = reference;
  }

(* --- search --- *)

type cex = {
  cex_sched : fault list;
  cex_plan : Fault.t;
  cex_failures : string list;
  cex_render : string;
  cex_fingerprint : string;
}

type report = {
  rp_runs : int;  (** executions performed *)
  rp_points : int;  (** injection points recorded *)
  rp_classes : int;  (** distinct k=1 state fingerprints *)
  rp_pruned : int;  (** k=1 points folded into an existing class *)
  rp_truncated : bool;  (** true if the budget cut the sweep short *)
  rp_cexs : cex list;  (** counterexamples, in discovery order *)
}

let category failures =
  match failures with
  | [] -> "none"
  | f :: _ -> ( match String.index_opt f ':' with
      | Some i -> String.sub f 0 i
      | None -> f)

let run_sched (wl : Workloads.t) sched =
  let plan = plan_of_schedule wl.Workloads.wl_base sched in
  (plan, wl.Workloads.wl_run plan)

type mode = Exhaustive | Random

let search ?(k = 2) ?(budget = 400) ?(kinds = all_kinds) ?(mode = Exhaustive)
    ?(seed = 1) (wl : Workloads.t) (tl : timeline) =
  let points =
    List.filter (fun f -> List.mem (kind_of_fault f) kinds) tl.tl_points
  in
  let runs = ref 0 in
  let truncated = ref false in
  let cexs = ref [] in
  let exec sched =
    incr runs;
    let plan, res = run_sched wl sched in
    (if res.Workloads.res_failures <> [] then
       let c =
         {
           cex_sched = sched;
           cex_plan = plan;
           cex_failures = res.Workloads.res_failures;
           cex_render = res.Workloads.res_render;
           cex_fingerprint = fingerprint res.Workloads.res_render;
         }
       in
       cexs := c :: !cexs);
    res
  in
  let classes = Hashtbl.create 64 in
  let pruned = ref 0 in
  (match mode with
  | Exhaustive ->
      (* k = 1: every point, building fingerprint equivalence classes *)
      List.iter
        (fun f ->
          if !runs >= budget then truncated := true
          else
            let res = exec [ f ] in
            let fp = fingerprint res.Workloads.res_render in
            if Hashtbl.mem classes fp then incr pruned
            else Hashtbl.replace classes fp f)
        points;
      (* k = 2: pairs over class representatives only — two faults with
         identical k=1 renders are interchangeable for pairing *)
      if k >= 2 && not !truncated then begin
        let reps = Hashtbl.fold (fun _ f acc -> f :: acc) classes [] in
        let reps =
          List.sort (fun a b -> compare (fault_id a) (fault_id b)) reps
        in
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
              List.iter
                (fun b ->
                  if !runs >= budget then truncated := true
                  else ignore (exec [ a; b ]))
                rest;
              if not !truncated then pairs rest
        in
        pairs reps
      end
  | Random ->
      let rng = Rng.create seed in
      let arr = Array.of_list points in
      if Array.length arr > 0 then
        while !runs < budget do
          let n = 1 + Rng.int rng (Int.max 1 k) in
          let sched = ref [] in
          for _ = 1 to n do
            let f = arr.(Rng.int rng (Array.length arr)) in
            if not (List.exists (fun g -> fault_id g = fault_id f) !sched)
            then sched := f :: !sched
          done;
          ignore (exec !sched)
        done);
  {
    rp_runs = !runs;
    rp_points = List.length points;
    rp_classes = Hashtbl.length classes;
    rp_pruned = !pruned;
    rp_truncated = !truncated;
    rp_cexs = List.rev !cexs;
  }

(* --- shrinking --- *)

(* Delta-debug a failing schedule to local minimality: repeatedly try
   dropping each single fault, keeping any removal that still fails in
   the same category; then canonicalize crash times to the coarsest
   1000 ns grid that preserves the failure.  The result re-runs
   deterministically, so "locally minimal" is a checkable property:
   removing any one remaining fault makes the failure disappear. *)
let shrink (wl : Workloads.t) (c : cex) =
  let cat = category c.cex_failures in
  let fails sched =
    let _, res = run_sched wl sched in
    res.Workloads.res_failures <> [] && category res.Workloads.res_failures = cat
  in
  let rec drop_pass sched =
    let n = List.length sched in
    let rec try_at i =
      if i >= n then sched
      else
        let cand = List.filteri (fun j _ -> j <> i) sched in
        if fails cand then drop_pass cand else try_at (i + 1)
    in
    if n <= 1 then sched else try_at 0
  in
  let sched = drop_pass c.cex_sched in
  let canon_crash f =
    match f with
    | F_crash (r, t) ->
        let t' = Float.round (t /. 1000.) *. 1000. in
        if t' > 0. then F_crash (r, t') else f
    | _ -> f
  in
  let sched =
    List.mapi
      (fun i f ->
        let f' = canon_crash f in
        if f' = f then f
        else
          let cand = List.mapi (fun j g -> if j = i then f' else g) sched in
          if fails cand then f' else f)
      sched
  in
  (* re-run the final schedule to refresh the recorded execution *)
  let plan, res = run_sched wl sched in
  {
    cex_sched = sched;
    cex_plan = plan;
    cex_failures = res.Workloads.res_failures;
    cex_render = res.Workloads.res_render;
    cex_fingerprint = fingerprint res.Workloads.res_render;
  }

(* --- replay --- *)

let replay (wl : Workloads.t) (plan : Fault.t) =
  let r1 = wl.Workloads.wl_run plan in
  let r2 = wl.Workloads.wl_run plan in
  if r1.Workloads.res_render <> r2.Workloads.res_render then
    Error
      (Printf.sprintf "replay diverged:\n--- first\n%s\n--- second\n%s"
         r1.Workloads.res_render r2.Workloads.res_render)
  else Ok r1

(* --- repro artifacts --- *)

let repro_version = "mpicd-explore/1"

let repro_to_json ~(wl : Workloads.t) ~(mutations : string list) (c : cex) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str_list xs = String.concat ", " (List.map Json.quote xs) in
  add "{\n";
  add "  \"version\": %s,\n" (Json.quote repro_version);
  add "  \"workload\": %s,\n" (Json.quote wl.Workloads.wl_name);
  add "  \"size\": %s,\n" (Json.number (float_of_int wl.Workloads.wl_size));
  add "  \"plan\": %s,\n" (Json.quote (Fault.to_string c.cex_plan));
  add "  \"faults\": [%s],\n" (str_list (List.map fault_id c.cex_sched));
  add "  \"failure\": %s,\n" (Json.quote (category c.cex_failures));
  add "  \"failures\": [%s],\n" (str_list c.cex_failures);
  add "  \"fingerprint\": %s,\n" (Json.quote c.cex_fingerprint);
  add "  \"render\": %s,\n" (Json.quote c.cex_render);
  add "  \"mutations\": [%s]\n" (str_list mutations);
  add "}\n";
  let s = Buffer.contents b in
  match Json.parse s with
  | Ok _ -> s
  | Error e -> invalid_arg ("Explore.repro_to_json: emitted invalid JSON: " ^ e)

type repro = {
  rj_workload : string;
  rj_size : int;
  rj_plan : Fault.t;
  rj_failure : string;
  rj_fingerprint : string;
  rj_render : string;
  rj_mutations : string list;
}

let repro_of_json s =
  let ( let* ) r f = Result.bind r f in
  let* j = Json.parse s in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "repro.json: missing or bad %S" name)
  in
  let* version = field "version" Json.to_string in
  let* () =
    if version = repro_version then Ok ()
    else Error ("repro.json: unsupported version " ^ version)
  in
  let* workload = field "workload" Json.to_string in
  let* size = field "size" Json.to_number in
  let* plan_s = field "plan" Json.to_string in
  let* plan =
    match Fault.of_string plan_s with
    | Ok p -> Ok p
    | Error e -> Error ("repro.json: bad plan: " ^ e)
  in
  let* failure = field "failure" Json.to_string in
  let* fp = field "fingerprint" Json.to_string in
  let* render = field "render" Json.to_string in
  let* muts = field "mutations" Json.to_list in
  let mutations = List.filter_map Json.to_string muts in
  Ok
    {
      rj_workload = workload;
      rj_size = int_of_float size;
      rj_plan = plan;
      rj_failure = failure;
      rj_fingerprint = fp;
      rj_render = render;
      rj_mutations = mutations;
    }
