(* Additional DDTBench kernels beyond the paper's Fig. 10 subset,
   included for suite completeness: the FFT all-to-all column block and
   the SPECFEM3D outer-core gather. *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype

(* FFT2: 2-D transpose exchange — a block of [w] columns of an n x n
   complex (2 x f64 = 16 B) matrix: n medium-sized strided blocks. *)
module Fft2 = Kernel.Make (struct
  let name = "FFT2"
  let datatypes_desc = "strided vector"
  let loop_desc = "2 nested loops (non-contiguous)"
  let regions_sensible = true

  let n = 256
  let w = 16
  let c0 = 8 (* first column of the block *)
  let celem = 16
  let slab_bytes = n * n * celem

  let off ~row ~col = ((row * n) + col) * celem

  let blocks =
    Blocks.of_list (List.init n (fun row -> (off ~row ~col:c0, w * celem)))

  let manual_pack base ~dst =
    let pos = ref 0 in
    for row = 0 to n - 1 do
      for col = c0 to c0 + w - 1 do
        Buf.blit ~src:base ~src_pos:(off ~row ~col) ~dst ~dst_pos:!pos ~len:celem;
        pos := !pos + celem
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for row = 0 to n - 1 do
      for col = c0 to c0 + w - 1 do
        Buf.blit ~src ~src_pos:!pos ~dst:base ~dst_pos:(off ~row ~col) ~len:celem;
        pos := !pos + celem
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| c0 * celem |]
      (Datatype.hvector ~count:n ~blocklength:(w * 2) ~stride_bytes:(n * celem)
         Datatype.float64)
end)

(* SPECFEM3D_oc: the spectral-element outer-core coupling gathers
   single float32 values at an irregular index list — the worst case
   for everything except plain packing. *)
module Specfem3d_oc = Kernel.Make (struct
  let name = "SPECFEM3D_oc"
  let datatypes_desc = "indexed_block"
  let loop_desc = "single loop (irregular indices)"
  let regions_sensible = false

  let n = 262144
  let m = 16384
  let elem = 4
  let slab_bytes = n * elem

  (* deterministic scrambled-but-increasing index pattern *)
  let indices =
    Array.init m (fun i -> (i * 13 mod 16) + (i * (n / m)))

  let blocks =
    Blocks.of_list (Array.to_list (Array.map (fun i -> (i * elem, elem)) indices))

  let manual_pack base ~dst =
    let pos = ref 0 in
    Array.iter
      (fun i ->
        Buf.set_f32 dst !pos (Buf.get_f32 base (i * elem));
        pos := !pos + elem)
      indices

  let manual_unpack ~src base =
    let pos = ref 0 in
    Array.iter
      (fun i ->
        Buf.set_f32 base (i * elem) (Buf.get_f32 src !pos);
        pos := !pos + elem)
      indices

  let derived =
    Datatype.indexed_block ~blocklength:1 ~displacements:indices
      Datatype.float32
end)

(* SPECFEM3D_mt: the mantle coupling gather — 3-component float32
   vectors (displacement) at an irregular but blocked index list:
   indexed with blocklength 3, medium-sized block count. *)
module Specfem3d_mt = Kernel.Make (struct
  let name = "SPECFEM3D_mt"
  let datatypes_desc = "indexed_block (blocklength 3)"
  let loop_desc = "single loop (irregular indices)"
  let regions_sensible = false

  let n = 98304 (* 32768 grid points x 3 components *)
  let m = 8192 (* gathered points *)
  let elem = 4
  let slab_bytes = n * elem

  (* deterministic irregular point list; each point contributes its 3
     consecutive components.  The inter-point gap alternates (15, 15, 6
     elements) and always exceeds the blocklength, so blocks stay
     disjoint: the original (i*3)-based list made every third block
     byte-adjacent to its predecessor, which the guideline checker
     rightly flagged as a committed type slower than its coalesced
     normal form. *)
  let indices = Array.init m (fun i -> ((i * 4) + (i * 7 mod 3)) * 3)

  let blocks =
    Blocks.of_list
      (Array.to_list (Array.map (fun p -> (p * elem, 3 * elem)) indices))

  let manual_pack base ~dst =
    let pos = ref 0 in
    Array.iter
      (fun p ->
        for c = 0 to 2 do
          Buf.set_f32 dst !pos (Buf.get_f32 base ((p + c) * elem));
          pos := !pos + elem
        done)
      indices

  let manual_unpack ~src base =
    let pos = ref 0 in
    Array.iter
      (fun p ->
        for c = 0 to 2 do
          Buf.set_f32 base ((p + c) * elem) (Buf.get_f32 src !pos);
          pos := !pos + elem
        done)
      indices

  let derived =
    Datatype.indexed_block ~blocklength:3 ~displacements:indices
      Datatype.float32
end)

(* MILC su3_xdown: the x-direction face of the same lattice as
   su3_zdown, but with layout [t][y][z][x] every face site is an
   isolated 72-byte block — the many-small-regions counterpart to
   zdown's contiguous x-runs. *)
module Milc_su3_xdown = Kernel.Make (struct
  let name = "MILC_su3_xdown"
  let datatypes_desc = "strided vector"
  let loop_desc = "5 nested loops (non-unit stride)"
  let regions_sensible = true

  let site_bytes = 72
  let nx = 16
  let ny = 16
  let nz = 16
  let nt = 16
  let x0 = 1
  let slab_bytes = nt * ny * nz * nx * site_bytes

  let site_off ~t ~y ~z ~x = ((((t * ny) + y) * nz) + z) * nx + x

  let blocks =
    Blocks.of_list
      (List.concat_map
         (fun t ->
           List.concat_map
             (fun y ->
               List.init nz (fun z ->
                   (site_off ~t ~y ~z ~x:x0 * site_bytes, site_bytes)))
             (List.init ny Fun.id))
         (List.init nt Fun.id))

  let manual_pack base ~dst =
    let pos = ref 0 in
    for t = 0 to nt - 1 do
      for y = 0 to ny - 1 do
        for z = 0 to nz - 1 do
          let site = site_off ~t ~y ~z ~x:x0 * site_bytes in
          for f = 0 to 17 do
            Buf.set_f32 dst !pos (Buf.get_f32 base (site + (f * 4)));
            pos := !pos + 4
          done
        done
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for t = 0 to nt - 1 do
      for y = 0 to ny - 1 do
        for z = 0 to nz - 1 do
          let site = site_off ~t ~y ~z ~x:x0 * site_bytes in
          for f = 0 to 17 do
            Buf.set_f32 base (site + (f * 4)) (Buf.get_f32 src !pos);
            pos := !pos + 4
          done
        done
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| x0 * site_bytes |]
      (Datatype.hvector ~count:(nt * ny * nz) ~blocklength:18
         ~stride_bytes:(nx * site_bytes) Datatype.float32)
end)
