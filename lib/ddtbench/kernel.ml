module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan
module Custom = Mpicd.Custom

module type SPEC = sig
  val name : string
  val datatypes_desc : string
  val loop_desc : string
  val regions_sensible : bool
  val slab_bytes : int
  val blocks : Blocks.t
  val manual_pack : Buf.t -> dst:Buf.t -> unit
  val manual_unpack : src:Buf.t -> Buf.t -> unit
  val derived : Datatype.t
end

module type KERNEL = sig
  include SPEC

  val wire_bytes : int
  val plan : Plan.t
  val create : unit -> Buf.t
  val create_sink : unit -> Buf.t
  val equal : Buf.t -> Buf.t -> bool
  val custom_pack : Buf.t Custom.t
  val custom_regions : Buf.t Custom.t option
end

let fill b =
  for i = 0 to Buf.length b - 1 do
    Buf.set_u8 b i ((i * 131 + 17) land 0xff)
  done

let hindexed_bytes_of_blocks blocks =
  let n = Blocks.count blocks in
  let blocklengths = Array.make n 0 in
  let displacements_bytes = Array.make n 0 in
  let i = ref 0 in
  Blocks.iter blocks ~f:(fun ~off ~len ->
      blocklengths.(!i) <- len;
      displacements_bytes.(!i) <- off;
      incr i);
  Datatype.hindexed ~blocklengths ~displacements_bytes Datatype.byte

module Make (S : SPEC) : KERNEL = struct
  include S

  let wire_bytes = Blocks.total S.blocks
  let () =
    (* the derived datatype must describe the same packed stream *)
    if Datatype.size S.derived <> wire_bytes then
      invalid_arg
        (Printf.sprintf "Kernel %s: derived size %d <> blocks total %d" S.name
           (Datatype.size S.derived) wire_bytes)

  (* Compiled once per kernel (via the global memo cache) and shared by
     every operation; each operation gets its own cursor. *)
  let plan = Plan.get S.derived

  let create () =
    let b = Buf.create S.slab_bytes in
    fill b;
    b

  let create_sink () = Buf.create S.slab_bytes

  let equal a b = Blocks.equal_typed S.blocks a b

  (* Custom datatype, packing everything through resumable callbacks.
     The per-operation state is a plan cursor, so a transport that walks
     the stream fragment by fragment resumes each callback in O(1)
     instead of re-deriving the position (and, unlike the old
     Blocks-based callbacks, [count] now scales the stream instead of
     being silently ignored). *)
  let custom_pack : Buf.t Custom.t =
    Custom.create
      ~pack_pieces:(fun _ ~count:_ -> Blocks.count S.blocks)
      {
        state = (fun _ ~count:_ -> Plan.cursor plan);
        state_free = ignore;
        query = (fun _ _ ~count -> count * Blocks.total S.blocks);
        pack =
          (fun cur base ~count ~offset ~dst ->
            Plan.pack_range ~cursor:cur plan ~count ~src:base
              ~packed_off:offset ~dst);
        unpack =
          (fun cur base ~count ~offset ~src ->
            ignore
              (Plan.unpack_range ~cursor:cur plan ~count ~src
                 ~packed_off:offset ~dst:base));
        region_count = None;
        regions = None;
      }

  (* Custom datatype exposing every block as a zero-copy region. *)
  let custom_regions : Buf.t Custom.t option =
    if not S.regions_sensible then None
    else
      Some
        (Custom.create
           {
             state = (fun _ ~count:_ -> ());
             state_free = ignore;
             query = (fun () _ ~count:_ -> 0);
             pack = (fun () _ ~count:_ ~offset:_ ~dst:_ -> 0);
             unpack = (fun () _ ~count:_ ~offset:_ ~src:_ -> ());
             region_count = Some (fun () _ ~count:_ -> Blocks.count S.blocks);
             regions = Some (fun () base ~count:_ -> Blocks.regions S.blocks ~base);
           })
end

type kernel = (module KERNEL)
