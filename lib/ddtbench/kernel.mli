(** DDTBench kernel framework.

    Each kernel (cf. Schneider, Gerstenberger, Hoefler: "Micro-
    Applications for Communication Data Access Patterns and MPI
    Datatypes", EuroMPI'12) models the halo/boundary exchange of a real
    application on a slab of raw memory.  A kernel provides:

    - the exchange's {!Blocks.t} layout inside the slab,
    - hand-written [manual_pack]/[manual_unpack] loop nests (the
      "manual packing using C code" method),
    - a classic derived datatype equivalent (the "MPI datatypes"
      methods), and
    - via {!Make}, custom-API datatypes: [custom_pack] (pack/unpack
      callbacks resumable at any offset) and, where the paper marks
      memory regions as sensible, [custom_regions] (zero-copy iovecs).

    All methods move exactly the same bytes, which the tests verify. *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan
module Custom = Mpicd.Custom

(** What a concrete kernel defines. *)
module type SPEC = sig
  val name : string
  val datatypes_desc : string  (** Table I "MPI Datatypes" column *)

  val loop_desc : string  (** Table I "Loop Structure" column *)

  val regions_sensible : bool  (** Table I "Memory Regions" column *)

  val slab_bytes : int  (** size of the application's memory slab *)

  val blocks : Blocks.t  (** the exchange layout *)

  val manual_pack : Buf.t -> dst:Buf.t -> unit
  val manual_unpack : src:Buf.t -> Buf.t -> unit
  val derived : Datatype.t  (** equivalent derived datatype (count=1) *)
end

(** What the benchmarks consume. *)
module type KERNEL = sig
  include SPEC

  val wire_bytes : int

  val plan : Plan.t
      (** compiled pack plan of [derived], shared by all operations *)

  val create : unit -> Buf.t  (** pattern-filled slab *)

  val create_sink : unit -> Buf.t
  val equal : Buf.t -> Buf.t -> bool  (** compares exchange-covered bytes *)

  val custom_pack : Buf.t Custom.t
  val custom_regions : Buf.t Custom.t option
end

module Make (S : SPEC) : KERNEL

type kernel = (module KERNEL)

val fill : Buf.t -> unit
(** Deterministic test pattern used by [create]. *)

val hindexed_bytes_of_blocks : Blocks.t -> Datatype.t
(** Generic derived-datatype equivalent: an hindexed-of-bytes over the
    block list (used by kernels whose natural MPI type is
    indexed/struct rather than nested vectors). *)
