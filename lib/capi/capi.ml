module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom

module Univ = struct
  type t = exn

  let embed (type a) () =
    let module M = struct exception E of a end in
    ((fun x -> M.E x), function M.E x -> Some x | _ -> None)
end

let mpi_success = 0
let mpi_err_arg = 1
let mpi_err_truncate = 2
let mpi_err_type = 3
let mpi_err_other = 16

type count = int

type state_function =
  context:Univ.t option ->
  src:Buf.t ->
  src_count:count ->
  state:Univ.t option ref ->
  int

type state_free_function = state:Univ.t option -> int

type query_function =
  state:Univ.t option -> buf:Buf.t -> count:count -> packed_size:count ref -> int

type pack_function =
  state:Univ.t option ->
  buf:Buf.t ->
  count:count ->
  offset:count ->
  dst:Buf.t ->
  used:count ref ->
  int

type unpack_function =
  state:Univ.t option ->
  buf:Buf.t ->
  count:count ->
  offset:count ->
  src:Buf.t ->
  int

type region_count_function =
  state:Univ.t option -> buf:Buf.t -> count:count -> region_count:count ref -> int

type region_function =
  state:Univ.t option ->
  buf:Buf.t ->
  count:count ->
  region_count:count ->
  reg_bases:Buf.t option array ->
  reg_lens:count array ->
  int

type datatype = Byte | Custom_dt of Buf.t Custom.t | Freed

let mpi_byte = Byte

(* Convert a C-style status code into the exception the engine's
   callback plumbing expects. *)
let check code = if code <> mpi_success then raise (Custom.Error code)

let mpi_type_create_custom ~statefn ~freefn ~queryfn ~packfn ~unpackfn
    ~region_countfn ~regionfn ~context ~inorder out =
  match (region_countfn, regionfn) with
  | Some _, None | None, Some _ -> mpi_err_arg
  | _ ->
      let callbacks : (Buf.t, Univ.t option) Custom.callbacks =
        {
          state =
            (fun buf ~count ->
              let state = ref None in
              check (statefn ~context ~src:buf ~src_count:count ~state);
              !state);
          state_free = (fun state -> check (freefn ~state));
          query =
            (fun state buf ~count ->
              let packed_size = ref 0 in
              check (queryfn ~state ~buf ~count ~packed_size);
              !packed_size);
          pack =
            (fun state buf ~count ~offset ~dst ->
              let used = ref 0 in
              check (packfn ~state ~buf ~count ~offset ~dst ~used);
              !used);
          unpack =
            (fun state buf ~count ~offset ~src ->
              check (unpackfn ~state ~buf ~count ~offset ~src));
          region_count =
            Option.map
              (fun f state buf ~count ->
                let region_count = ref 0 in
                check (f ~state ~buf ~count ~region_count);
                !region_count)
              region_countfn;
          regions =
            (match (regionfn, region_countfn) with
            | Some rf, Some cf ->
                Some
                  (fun state buf ~count ->
                    let region_count = ref 0 in
                    check (cf ~state ~buf ~count ~region_count);
                    let n = !region_count in
                    let reg_bases = Array.make n None in
                    let reg_lens = Array.make n 0 in
                    check
                      (rf ~state ~buf ~count ~region_count:n ~reg_bases
                         ~reg_lens);
                    Array.mapi
                      (fun i base ->
                        match base with
                        | None -> raise (Custom.Error mpi_err_arg)
                        | Some b ->
                            if Buf.length b <> reg_lens.(i) then
                              raise (Custom.Error mpi_err_arg);
                            b)
                      reg_bases)
            | _ -> None);
        }
      in
      out := Custom_dt (Custom.create ~inorder:(inorder <> 0) callbacks);
      mpi_success

let mpi_type_free out =
  match !out with
  | Freed -> mpi_err_type
  | Byte | Custom_dt _ ->
      out := Freed;
      mpi_success

type mpi_status = {
  mutable st_source : int;
  mutable st_tag : int;
  mutable st_len : count;
  mutable st_error : int;
}

let mpi_status_ignore () =
  { st_source = -1; st_tag = -1; st_len = 0; st_error = mpi_success }

let buffer_of ~buf ~count = function
  | Byte ->
      if count > Buf.length buf then None
      else Some (Mpi.Bytes (Buf.sub buf ~pos:0 ~len:count))
  | Custom_dt dt -> Some (Mpi.Custom { dt; obj = buf; count })
  | Freed -> None

let code_of_error : Mpi.error -> int = function
  | Mpi.Truncated _ -> mpi_err_truncate
  | Mpi.Callback_failed c -> c
  | Mpi.Timeout _ | Mpi.Peer_failed _ | Mpi.Data_corrupted | Mpi.Revoked ->
      mpi_err_other

let mpi_send ~buf ~count ~datatype ~dest ~tag ~comm =
  match buffer_of ~buf ~count datatype with
  | None -> mpi_err_type
  | Some b -> (
      match Mpi.send comm ~dst:dest ~tag b with
      | () -> mpi_success
      | exception Mpi.Mpi_error e -> code_of_error e
      | exception Invalid_argument _ -> mpi_err_arg)

let mpi_recv ~buf ~count ~datatype ~source ~tag ~comm ~status =
  match buffer_of ~buf ~count datatype with
  | None -> mpi_err_type
  | Some b -> (
      match Mpi.recv comm ~source ~tag b with
      | st ->
          status.st_source <- st.source;
          status.st_tag <- st.tag;
          status.st_len <- st.len;
          status.st_error <- mpi_success;
          mpi_success
      | exception Mpi.Mpi_error e ->
          let code = code_of_error e in
          status.st_error <- code;
          code
      | exception Invalid_argument _ -> mpi_err_arg)

let mpi_comm_rank ~comm ~rank =
  rank := Mpi.rank comm;
  mpi_success

let mpi_comm_size ~comm ~size =
  size := Mpi.size comm;
  mpi_success

let mpi_barrier ~comm =
  Mpi.barrier comm;
  mpi_success

(* --- nonblocking operations --- *)

type mpi_request = Req_null | Req of Mpi.request

let mpi_request_null () = ref Req_null

let fill_status status (st : Mpi.status) =
  status.st_source <- st.source;
  status.st_tag <- st.tag;
  status.st_len <- st.len;
  status.st_error <- mpi_success

let mpi_isend ~buf ~count ~datatype ~dest ~tag ~comm ~request =
  match buffer_of ~buf ~count datatype with
  | None -> mpi_err_type
  | Some b -> (
      match Mpi.isend comm ~dst:dest ~tag b with
      | r ->
          request := Req r;
          mpi_success
      | exception Invalid_argument _ -> mpi_err_arg)

let mpi_irecv ~buf ~count ~datatype ~source ~tag ~comm ~request =
  match buffer_of ~buf ~count datatype with
  | None -> mpi_err_type
  | Some b -> (
      match Mpi.irecv comm ~source ~tag b with
      | r ->
          request := Req r;
          mpi_success
      | exception Invalid_argument _ -> mpi_err_arg)

let mpi_wait ~request ~status =
  match !request with
  | Req_null -> mpi_success
  | Req r -> (
      request := Req_null;
      match Mpi.wait r with
      | st ->
          fill_status status st;
          mpi_success
      | exception Mpi.Mpi_error e ->
          let code = code_of_error e in
          status.st_error <- code;
          code)

let mpi_test ~request ~flag ~status =
  match !request with
  | Req_null ->
      flag := 1;
      mpi_success
  | Req r -> (
      match Mpi.test r with
      | None ->
          flag := 0;
          mpi_success
      | Some st ->
          flag := 1;
          request := Req_null;
          fill_status status st;
          mpi_success
      | exception Mpi.Mpi_error e ->
          flag := 1;
          request := Req_null;
          let code = code_of_error e in
          status.st_error <- code;
          code)

let mpi_probe ~source ~tag ~comm ~status =
  match Mpi.probe comm ~source ~tag () with
  | st ->
      fill_status status st;
      mpi_success
  | exception Invalid_argument _ -> mpi_err_arg

let mpi_iprobe ~source ~tag ~comm ~flag ~status =
  match Mpi.iprobe comm ~source ~tag () with
  | Some st ->
      flag := 1;
      fill_status status st;
      mpi_success
  | None ->
      flag := 0;
      mpi_success
  | exception Invalid_argument _ -> mpi_err_arg
