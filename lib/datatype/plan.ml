(* Compiled pack plans: a datatype flattened once into displacement /
   length / prefix-sum arrays, executed without ever revisiting the
   datatype tree (TEMPI-style canonicalization, Pearson et al.).

   A plan is compiled per *element*; [count] elements tile the typed
   buffer with stride [elem_extent] and the packed stream with stride
   [elem_size], so plan memory is independent of [count].  Fragment
   entry points use binary search over the prefix sums (O(log B)) and a
   stateful cursor makes sequential fragment streams resume in O(1). *)

module Buf = Mpicd_buf.Buf
module Stats = Mpicd_simnet.Stats

type t = {
  elem_size : int;  (* packed bytes of one element *)
  elem_extent : int;  (* typed-layout stride between elements *)
  disps : int array;  (* typed byte displacement of block i, element-relative *)
  lens : int array;  (* byte length of block i *)
  prefix : int array;  (* prefix.(i) = packed offset of block i; length B+1 *)
  contiguous : bool;
}

let build dt =
  let rev_blocks = ref [] and n = ref 0 in
  Datatype.iter_blocks dt ~count:1 ~f:(fun ~disp ~len ->
      rev_blocks := (disp, len) :: !rev_blocks;
      incr n);
  let nb = !n in
  let disps = Array.make nb 0 and lens = Array.make nb 0 in
  let prefix = Array.make (nb + 1) 0 in
  let i = ref (nb - 1) in
  List.iter
    (fun (d, l) ->
      disps.(!i) <- d;
      lens.(!i) <- l;
      decr i)
    !rev_blocks;
  for j = 0 to nb - 1 do
    prefix.(j + 1) <- prefix.(j) + lens.(j)
  done;
  let elem_size = prefix.(nb) in
  let elem_extent = Datatype.extent dt in
  let contiguous =
    elem_size = elem_extent
    && Datatype.lb dt = 0
    && (nb = 0 || (nb = 1 && disps.(0) = 0))
  in
  { elem_size; elem_extent; disps; lens; prefix; contiguous }

let size p = p.elem_size
let extent p = p.elem_extent
let block_count p = Array.length p.lens
let is_contiguous p = p.contiguous
let packed_size p ~count = count * p.elem_size

(* --- memoization cache ---

   Keyed on *physical* equality of the datatype value: building the same
   shape twice compiles twice, but every send/recv/pack of one committed
   datatype value reuses a single plan.  Buckets hash with the bounded
   structural [Hashtbl.hash] (O(1) on deep trees) and resolve with
   [==].  The table is bounded: a workload creating unbounded fresh
   datatypes resets it rather than leaking. *)

let cache : (int, (Datatype.t * t) list) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let cache_entries = ref 0
let max_cache_entries = 1024
let hits = ref 0
let misses = ref 0

type outcome = Hit | Miss

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  cache_entries := 0;
  hits := 0;
  misses := 0;
  Mutex.unlock cache_lock

let cache_hits () = !hits
let cache_misses () = !misses

let get_outcome ?stats dt =
  let h = Hashtbl.hash dt in
  Mutex.lock cache_lock;
  let found =
    match Hashtbl.find_opt cache h with
    | None -> None
    | Some l -> List.find_opt (fun (k, _) -> k == dt) l
  in
  let result =
    match found with
    | Some (_, p) ->
        incr hits;
        (p, Hit)
    | None ->
        incr misses;
        (* compile outside any fancy locking subtlety: build is pure *)
        let p = build dt in
        if !cache_entries >= max_cache_entries then begin
          Hashtbl.reset cache;
          cache_entries := 0
        end;
        let bucket = Option.value ~default:[] (Hashtbl.find_opt cache h) in
        Hashtbl.replace cache h ((dt, p) :: bucket);
        incr cache_entries;
        (p, Miss)
  in
  Mutex.unlock cache_lock;
  (match (stats, snd result) with
  | Some s, Hit -> Stats.record_plan_hit s
  | Some s, Miss -> Stats.record_plan_miss s
  | None, _ -> ());
  result

let get ?stats dt = fst (get_outcome ?stats dt)

(* --- whole-stream pack/unpack --- *)

let record_block stats bytes =
  match stats with
  | None -> ()
  | Some s ->
      Stats.record_ddt_blocks s 1;
      Stats.record_copy s bytes

let pack ?stats p ~count ~src ~dst =
  let nb = Array.length p.lens in
  let pos = ref 0 in
  for e = 0 to count - 1 do
    let base = e * p.elem_extent in
    for i = 0 to nb - 1 do
      let len = p.lens.(i) in
      Buf.blit ~src ~src_pos:(base + p.disps.(i)) ~dst ~dst_pos:!pos ~len;
      record_block stats len;
      pos := !pos + len
    done
  done;
  !pos

let unpack ?stats p ~count ~src ~dst =
  let nb = Array.length p.lens in
  let pos = ref 0 in
  for e = 0 to count - 1 do
    let base = e * p.elem_extent in
    for i = 0 to nb - 1 do
      let len = p.lens.(i) in
      Buf.blit ~src ~src_pos:!pos ~dst ~dst_pos:(base + p.disps.(i)) ~len;
      record_block stats len;
      pos := !pos + len
    done
  done;
  let expected = packed_size p ~count in
  if !pos <> expected then
    invalid_arg
      (Printf.sprintf "Plan.unpack: consumed %d bytes, expected %d" !pos
         expected)

(* --- fragment entry points --- *)

(* Largest i with prefix.(i) <= r, for 0 <= r < elem_size. *)
let find_block p r =
  let lo = ref 0 and hi = ref (Array.length p.lens - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if p.prefix.(mid) <= r then lo := mid else hi := mid - 1
  done;
  !lo

type cursor = {
  c_plan : t;
  mutable c_next : int;  (* packed offset the cursor sits at *)
  mutable c_elem : int;  (* element index of c_next *)
  mutable c_block : int;  (* block index of c_next within the element *)
  mutable c_resumes : int;
  mutable c_reseeks : int;
}

let cursor p =
  { c_plan = p; c_next = 0; c_elem = 0; c_block = 0; c_resumes = 0; c_reseeks = 0 }

let cursor_resumes c = c.c_resumes
let cursor_reseeks c = c.c_reseeks

(* Position (elem, block) for packed offset [pos]; O(1) when the cursor
   already sits there (the sequential-stream fast path), O(log B)
   otherwise. *)
let seek cur pos =
  let p = cur.c_plan in
  if pos = cur.c_next then begin
    cur.c_resumes <- cur.c_resumes + 1;
    (cur.c_elem, cur.c_block)
  end
  else begin
    cur.c_reseeks <- cur.c_reseeks + 1;
    let elem = pos / p.elem_size in
    let r = pos mod p.elem_size in
    (elem, find_block p r)
  end

(* Shared walk for pack_range/unpack_range: apply [blit] to the
   sub-blocks overlapping [packed_off, packed_off + window) of a
   [count]-element stream, starting from (elem, block), and return the
   final (elem, block) after consuming [want] bytes. *)
let range_apply p ~elem ~block ~packed_off ~want ~blit =
  let nb = Array.length p.lens in
  let elem = ref elem and block = ref block in
  let done_ = ref 0 in
  while !done_ < want do
    let stream_pos = packed_off + !done_ in
    let r = stream_pos - (!elem * p.elem_size) in
    let within = r - p.prefix.(!block) in
    let n = min (want - !done_) (p.lens.(!block) - within) in
    blit
      ~typed_pos:((!elem * p.elem_extent) + p.disps.(!block) + within)
      ~stream_rel:!done_ ~len:n;
    done_ := !done_ + n;
    if within + n = p.lens.(!block) then begin
      incr block;
      if !block = nb then begin
        block := 0;
        incr elem
      end
    end
  done;
  (!elem, !block)

let range ?stats ?cursor:cur p ~count ~packed_off ~window ~blit =
  let total = packed_size p ~count in
  if packed_off >= total || window <= 0 then 0
  else begin
    let want = min window (total - packed_off) in
    let elem, block =
      match cur with
      | Some c -> seek c packed_off
      | None ->
          (packed_off / p.elem_size, find_block p (packed_off mod p.elem_size))
    in
    let blit ~typed_pos ~stream_rel ~len =
      blit ~typed_pos ~stream_rel ~len;
      record_block stats len
    in
    let elem', block' = range_apply p ~elem ~block ~packed_off ~want ~blit in
    (match cur with
    | Some c ->
        c.c_next <- packed_off + want;
        c.c_elem <- elem';
        c.c_block <- block'
    | None -> ());
    want
  end

let pack_range ?stats ?cursor p ~count ~src ~packed_off ~dst =
  range ?stats ?cursor p ~count ~packed_off ~window:(Buf.length dst)
    ~blit:(fun ~typed_pos ~stream_rel ~len ->
      Buf.blit ~src ~src_pos:typed_pos ~dst ~dst_pos:stream_rel ~len)

let unpack_range ?stats ?cursor p ~count ~src ~packed_off ~dst =
  range ?stats ?cursor p ~count ~packed_off ~window:(Buf.length src)
    ~blit:(fun ~typed_pos ~stream_rel ~len ->
      Buf.blit ~src ~src_pos:stream_rel ~dst ~dst_pos:typed_pos ~len)

(* --- iovec from the plan arrays ---

   Same merged-region structure as [Datatype.iovec] (blocks that touch
   across an element boundary coalesce), but assembled from the flat
   arrays with no tree walk. *)

let iovec p ~count ~base =
  let nb = Array.length p.lens in
  let acc = ref [] in
  let pending_disp = ref 0 and pending_len = ref 0 in
  let emit disp len =
    if len > 0 then
      if !pending_len > 0 && !pending_disp + !pending_len = disp then
        pending_len := !pending_len + len
      else begin
        if !pending_len > 0 then
          acc := Buf.sub base ~pos:!pending_disp ~len:!pending_len :: !acc;
        pending_disp := disp;
        pending_len := len
      end
  in
  for e = 0 to count - 1 do
    let eb = e * p.elem_extent in
    for i = 0 to nb - 1 do
      emit (eb + p.disps.(i)) p.lens.(i)
    done
  done;
  if !pending_len > 0 then
    acc := Buf.sub base ~pos:!pending_disp ~len:!pending_len :: !acc;
  List.rev !acc
