(** Classic MPI derived datatypes.

    This is a full reimplementation of the MPI-4.1 derived-datatype model
    (type maps of predefined types and byte displacements, built with the
    standard constructors) together with a pack/unpack engine.  It plays
    the role Open MPI's datatype engine plays in the paper: the baseline
    that the custom serialization API is compared against (RSMPI's
    [#\[derive(Equivalence)\]] lowers onto exactly these constructors).

    Datatypes are immutable values.  Displacements and strides follow the
    MPI conventions: [Vector]/[Indexed] count in multiples of the element
    extent, the [h*] variants count in bytes.

    The engine also reports how many contiguous blocks it touches; the
    simulator charges {!Mpicd_simnet.Config.cpu.ddt_block_ns} per block,
    reproducing the per-block overhead that makes gapped struct types
    slow in Open MPI (paper Figs. 5/6). *)

type predefined =
  | Byte
  | Char
  | Int8
  | Uint8
  | Int16
  | Int32
  | Int64
  | Float32
  | Float64

type t

(** {1 Constructors}

    All constructors validate their arguments and raise
    [Invalid_argument] on negative counts/blocklengths or mismatched
    array lengths. *)

val predefined : predefined -> t
val byte : t
val char : t
val int8 : t
val uint8 : t
val int16 : t
val int32 : t
val int64 : t
val float32 : t
val float64 : t

val contiguous : int -> t -> t
(** [contiguous count elem] — MPI_Type_contiguous. *)

val vector : count:int -> blocklength:int -> stride:int -> t -> t
(** MPI_Type_vector; [stride] in element extents. *)

val hvector : count:int -> blocklength:int -> stride_bytes:int -> t -> t
(** MPI_Type_create_hvector; stride in bytes. *)

val indexed : blocklengths:int array -> displacements:int array -> t -> t
(** MPI_Type_indexed; displacements in element extents. *)

val hindexed : blocklengths:int array -> displacements_bytes:int array -> t -> t
(** MPI_Type_create_hindexed; displacements in bytes. *)

val indexed_block : blocklength:int -> displacements:int array -> t -> t
(** MPI_Type_create_indexed_block. *)

val struct_ :
  blocklengths:int array -> displacements_bytes:int array -> types:t array -> t
(** MPI_Type_create_struct. *)

val resized : lb:int -> extent:int -> t -> t
(** MPI_Type_create_resized. *)

val subarray :
  sizes:int array ->
  subsizes:int array ->
  starts:int array ->
  order:[ `C | `Fortran ] ->
  t ->
  t
(** MPI_Type_create_subarray.  Lowered internally onto hvector/hindexed
    chains; the resulting type's extent covers the full array. *)

(** {1 Queries} *)

val size : t -> int
(** Number of data bytes (MPI_Type_size). *)

val extent : t -> int
(** MPI_Type_get_extent: ub - lb. *)

val lb : t -> int
val ub : t -> int

val predefined_size : predefined -> int

val is_contiguous : t -> bool
(** True iff one element occupies a single gap-free block starting at
    displacement 0 with extent = size (the case where Open MPI sends the
    user buffer directly, Fig. 6). *)

val blocks_per_element : t -> int
(** Number of maximal contiguous blocks the pack engine touches for one
    element (after merging adjacent blocks). *)

val signature : t -> predefined list
(** Type signature: the sequence of predefined types in typemap order.
    Two datatypes match for communication iff their signatures (times
    count) are equal.  Intended for tests and small types — the list is
    proportional to [size]. *)

val equal_signature : t -> t -> bool
(** Signature equality via the run-length-encoded form
    ({!rle_signature}), so comparing two large types costs memory
    proportional to the number of runs, not to [size]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Marshalling}

    Serialize a datatype description itself (cf. Kimpe, Goodell, Ross:
    "MPI datatype marshalling", EuroMPI'10) — lets a receiver
    reconstruct a sender's type at runtime, e.g. for validation. *)

exception Corrupt_datatype of string

val serialize : t -> Mpicd_buf.Buf.t
val deserialize : Mpicd_buf.Buf.t -> t
(** @raise Corrupt_datatype on malformed input. *)

val equal : t -> t -> bool
(** Structural equality of the (lowered) type representation — finer
    than {!equal_signature}, which ignores displacements. *)

(** {1 Structural view / type-map fold}

    Read-only access to the lowered representation, for analysis tools
    (the {!Mpicd_check} lints and normalizers).  The element-displacement
    constructors are already lowered at construction time, so a view
    exposes only the five byte-displacement shapes. *)

type view =
  | V_predefined of predefined
  | V_contiguous of int * t
  | V_hvector of { count : int; blocklength : int; stride_bytes : int; elem : t }
  | V_hindexed of {
      blocklengths : int array;
      displacements_bytes : int array;
      elem : t;
    }
  | V_struct of {
      blocklengths : int array;
      displacements_bytes : int array;
      types : t array;
    }
  | V_resized of { lb : int; extent : int; elem : t }

val view : t -> view

val iter_typemap : t -> f:(disp:int -> p:predefined -> unit) -> unit
(** The MPI type map of one element: every predefined leaf with its byte
    displacement, in typemap order, without block merging. *)

val typemap : t -> (int * predefined) list
(** {!iter_typemap} as a list of (displacement, predefined) pairs. *)

val rle_signature : t -> (predefined * int) list
(** Run-length-encoded {!signature}: compact even for large types, so
    checkers can compare send/recv signatures without materializing the
    full leaf list. *)

(** {1 Block iteration}

    One element of a datatype denotes a list of (byte displacement,
    byte length) blocks relative to the element base; [count] elements
    tile with stride [extent]. *)

val iter_blocks : t -> count:int -> f:(disp:int -> len:int -> unit) -> unit
(** Iterate the merged contiguous blocks of [count] elements in typemap
    order. *)

val block_list : t -> count:int -> (int * int) list
(** Blocks of [count] elements as (disp, len) pairs. *)

(** {1 Pack / unpack} *)

val packed_size : t -> count:int -> int
(** = [count * size t]. *)

val pack :
  ?stats:Mpicd_simnet.Stats.t -> t -> count:int -> src:Mpicd_buf.Buf.t ->
  dst:Mpicd_buf.Buf.t -> int
(** [pack t ~count ~src ~dst] gathers [count] elements from the typed
    layout in [src] into a contiguous stream in [dst]; returns the number
    of bytes written ([packed_size]).  [src] must cover
    [lb + count*extent] bytes and [dst] at least [packed_size] bytes. *)

val unpack :
  ?stats:Mpicd_simnet.Stats.t -> t -> count:int -> src:Mpicd_buf.Buf.t ->
  dst:Mpicd_buf.Buf.t -> unit
(** Inverse of {!pack}: scatter the contiguous stream [src] back into the
    typed layout in [dst]. *)

val pack_range :
  ?stats:Mpicd_simnet.Stats.t -> t -> count:int -> src:Mpicd_buf.Buf.t ->
  packed_off:int -> dst:Mpicd_buf.Buf.t -> int
(** Partial pack for fragmenting transports: write bytes
    [packed_off .. packed_off + length dst - 1] of the packed stream into
    [dst]; returns bytes written (short only at end of stream). *)

val unpack_range :
  ?stats:Mpicd_simnet.Stats.t -> t -> count:int -> src:Mpicd_buf.Buf.t ->
  packed_off:int -> dst:Mpicd_buf.Buf.t -> int
(** Partial unpack: scatter the fragment [src], which starts at virtual
    offset [packed_off] of the packed stream, into the typed layout
    [dst]; returns the number of bytes consumed, mirroring
    {!pack_range} (short only at end of stream). *)

val iovec : t -> count:int -> base:Mpicd_buf.Buf.t -> Mpicd_buf.Buf.t list
(** Zero-copy region list for [count] elements laid out in [base]: one
    slice per merged contiguous block (the MPICH-style datatype-to-iovec
    flattening the paper cites as the dual of its proposal). *)
