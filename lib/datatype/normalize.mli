(** Guideline-driven datatype normalizer.

    Rewrites a derived datatype into a provably-equivalent form that is
    never more expensive under the simulated cost model — the
    TEMPI-style canonicalization (Pearson et al.) that makes types fast
    by construction instead of relying on users to pick the cheapest
    constructor (Hunold/Carpen-Amarie/Träff's self-consistent
    performance guidelines).

    {b Equivalence.}  Every rule preserves the exact MPI type map
    {e and} the (lb, extent) bounds of the rewritten subterm.  Since the
    pack engine's merged-block sequence is a function of the type map
    (and [count] elements tile with stride [extent]), this guarantees
    byte-identical [pack]/[unpack]/[pack_range]/[iovec] streams for
    every count — checkable against {!Plan} with {!verify_bytes}.

    {b Cost.}  Type-map-preserving rewrites cannot change per-send pack
    cost (same merged blocks, same bytes); what they shrink is the
    descriptor itself — tree nodes and index-array entries — i.e. the
    commit / plan-compilation / kernel-parameter cost charged at
    {!Mpicd_simnet.Config.cpu.ddt_node_ns} per node.  Every rule's
    node+entry delta is non-negative, so the normalized form provably
    never loses. *)

(** {1 Rewrite rules} *)

type rule =
  | R_contig_of_one  (** [contiguous(1,e) → e] *)
  | R_contig_flatten  (** [contiguous(n, contiguous(m,e)) → contiguous(n*m,e)] *)
  | R_empty  (** any shape with an empty type map [→ contiguous(0,byte)] *)
  | R_hvector_count_one  (** [hvector(1,b,_,e) → contiguous(b,e)] *)
  | R_hvector_collapse
      (** [hvector(c,b,s,e) → contiguous(c*b,e)] when [s = b * extent e] *)
  | R_hindexed_drop_zero  (** drop zero-length blocks from an hindexed *)
  | R_hindexed_coalesce
      (** merge hindexed blocks [i,i+1] with [d(i+1) = d(i) + bl(i)*extent] *)
  | R_hindexed_contig  (** single-block hindexed at displacement 0 → contiguous *)
  | R_hindexed_vector
      (** uniform-blocklength, constant-stride hindexed → hvector (wrapped in a
          one-block hindexed when the first displacement is nonzero) *)
  | R_struct_homogeneous
      (** struct whose fields are all the same type → hindexed *)
  | R_resized_noop  (** resized matching the element's natural bounds → elem *)
  | R_resized_nested  (** [resized(resized(e)) → resized(e)] (outer wins) *)

val rule_id : rule -> string
(** Stable machine-readable identifier, e.g. ["hindexed-vector"]. *)

(** {1 Cost model} *)

type cost = {
  nodes : int;  (** descriptor tree nodes *)
  entries : int;
      (** scalar slots the descriptor carries: constructor parameters
          plus index-array entries (struct field types count too) *)
  blocks : int;  (** merged contiguous blocks per element *)
  commit_ns : float;  (** (nodes + entries) * ddt_node_ns *)
  pack_ns : float;  (** blocks * ddt_block_ns + memcpy(size) per element *)
  total_ns : float;  (** commit_ns + pack_ns *)
}

val cost : ?cpu:Mpicd_simnet.Config.cpu -> Datatype.t -> cost
(** Cost of committing and packing one element under the simnet CPU
    model (default {!Mpicd_simnet.Config.default_cpu}). *)

(** {1 Rewrite trace} *)

type step = {
  rule : rule;
  path : int list;  (** child indices from the root to the rewritten node *)
  before : string;  (** rendered subterm before the rewrite *)
  after : string;  (** rendered subterm after the rewrite *)
  nodes_delta : int;  (** nodes removed (>= 0) *)
  entries_delta : int;  (** array entries removed (>= 0 except wrapping) *)
  cost_delta_ns : float;  (** commit-cost reduction (>= 0) *)
}

type result = {
  original : Datatype.t;
  normalized : Datatype.t;
  steps : step list;  (** in application order *)
  original_cost : cost;
  normalized_cost : cost;
}

val run : ?cpu:Mpicd_simnet.Config.cpu -> Datatype.t -> result
(** Rewrite to fixpoint (bottom-up, then root rules to exhaustion).
    Raises [Invalid_argument] if a rewrite fails the internal
    bounds-preservation check — that would be a normalizer bug, never a
    property of the input. *)

val normalize : ?cpu:Mpicd_simnet.Config.cpu -> Datatype.t -> Datatype.t
(** [(run t).normalized]. *)

val changed : result -> bool
(** True iff at least one rewrite fired. *)

val json_of_result : result -> string
(** Machine-readable trace: rule ids, paths, before/after renderings and
    per-step cost deltas plus the original/normalized cost summaries. *)

(** {1 Verification} *)

val equivalent : Datatype.t -> Datatype.t -> bool
(** Full equivalence check: identical type maps and identical (lb, ub).
    O(size) — intended for tests and checkers, not hot paths. *)

val verify_bytes : ?count:int -> Datatype.t -> Datatype.t -> (unit, string) Result.t
(** Compile both types with {!Plan.build} and compare the packed streams
    (and round-trip unpack) of a deterministically-filled buffer for
    [count] elements (default 3).  [Ok ()] iff byte-identical. *)

(** {1 Memoization}

    Commit-time entry point: like {!Plan.get}, keyed on physical
    equality, process-global, thread-safe and bounded, so switching
    {!Mpicd_simnet.Config.t.auto_normalize} on costs one rewrite per
    committed datatype value, not one per operation. *)

val get : Datatype.t -> Datatype.t
val clear_cache : unit -> unit
