module Buf = Mpicd_buf.Buf
module Stats = Mpicd_simnet.Stats

type predefined =
  | Byte
  | Char
  | Int8
  | Uint8
  | Int16
  | Int32
  | Int64
  | Float32
  | Float64

(* Internal representation: the element-displacement constructors
   (vector, indexed, indexed_block, subarray) are lowered onto the
   byte-displacement forms at construction time, so the engine only ever
   walks five shapes. *)
type t =
  | Predefined of predefined
  | Contiguous of int * t
  | Hvector of { count : int; blocklength : int; stride_bytes : int; elem : t }
  | Hindexed of {
      blocklengths : int array;
      displacements_bytes : int array;
      elem : t;
    }
  | Struct of {
      blocklengths : int array;
      displacements_bytes : int array;
      types : t array;
    }
  | Resized of { lb : int; extent : int; elem : t }

let predefined_size = function
  | Byte | Char | Int8 | Uint8 -> 1
  | Int16 -> 2
  | Int32 | Float32 -> 4
  | Int64 | Float64 -> 8

let rec size = function
  | Predefined p -> predefined_size p
  | Contiguous (n, e) -> n * size e
  | Hvector { count; blocklength; elem; _ } -> count * blocklength * size elem
  | Hindexed { blocklengths; elem; _ } ->
      Array.fold_left (fun acc bl -> acc + (bl * size elem)) 0 blocklengths
  | Struct { blocklengths; types; _ } ->
      let acc = ref 0 in
      Array.iteri (fun i bl -> acc := !acc + (bl * size types.(i))) blocklengths;
      !acc
  | Resized { elem; _ } -> size elem

(* lb/ub of one element.  Empty types have lb = ub = 0. *)
let rec bounds = function
  | Predefined p -> (0, predefined_size p)
  | Contiguous (n, e) ->
      if n = 0 then (0, 0)
      else
        let l, u = bounds e in
        let ext = u - l in
        (l, ((n - 1) * ext) + u)
  | Hvector { count; blocklength; stride_bytes; elem } ->
      if count = 0 || blocklength = 0 then (0, 0)
      else
        let l, u = bounds elem in
        let ext = u - l in
        let min_base = min 0 ((count - 1) * stride_bytes) in
        let max_base = max 0 ((count - 1) * stride_bytes) in
        (min_base + l, max_base + ((blocklength - 1) * ext) + u)
  | Hindexed { blocklengths; displacements_bytes; elem } ->
      let l, u = bounds elem in
      let ext = u - l in
      let lo = ref max_int and hi = ref min_int and any = ref false in
      Array.iteri
        (fun i bl ->
          if bl > 0 then begin
            any := true;
            let d = displacements_bytes.(i) in
            if d + l < !lo then lo := d + l;
            let top = d + ((bl - 1) * ext) + u in
            if top > !hi then hi := top
          end)
        blocklengths;
      if !any then (!lo, !hi) else (0, 0)
  | Struct { blocklengths; displacements_bytes; types } ->
      let lo = ref max_int and hi = ref min_int and any = ref false in
      Array.iteri
        (fun i bl ->
          if bl > 0 then begin
            any := true;
            let l, u = bounds types.(i) in
            let ext = u - l in
            let d = displacements_bytes.(i) in
            if d + l < !lo then lo := d + l;
            let top = d + ((bl - 1) * ext) + u in
            if top > !hi then hi := top
          end)
        blocklengths;
      if !any then (!lo, !hi) else (0, 0)
  | Resized { lb; extent; _ } -> (lb, lb + extent)

let lb t = fst (bounds t)
let ub t = snd (bounds t)
let extent t =
  let l, u = bounds t in
  u - l

(* Constructors with validation. *)

let predefined p = Predefined p
let byte = Predefined Byte
let char = Predefined Char
let int8 = Predefined Int8
let uint8 = Predefined Uint8
let int16 = Predefined Int16
let int32 = Predefined Int32
let int64 = Predefined Int64
let float32 = Predefined Float32
let float64 = Predefined Float64

let check_nonneg name v =
  if v < 0 then invalid_arg (Printf.sprintf "Datatype.%s: negative argument" name)

let contiguous n e =
  check_nonneg "contiguous" n;
  Contiguous (n, e)

let hvector ~count ~blocklength ~stride_bytes e =
  check_nonneg "hvector" count;
  check_nonneg "hvector" blocklength;
  Hvector { count; blocklength; stride_bytes; elem = e }

let vector ~count ~blocklength ~stride e =
  check_nonneg "vector" count;
  check_nonneg "vector" blocklength;
  Hvector { count; blocklength; stride_bytes = stride * extent e; elem = e }

let hindexed ~blocklengths ~displacements_bytes e =
  if Array.length blocklengths <> Array.length displacements_bytes then
    invalid_arg "Datatype.hindexed: array length mismatch";
  Array.iter (check_nonneg "hindexed") blocklengths;
  Hindexed { blocklengths; displacements_bytes; elem = e }

let indexed ~blocklengths ~displacements e =
  let ext = extent e in
  hindexed ~blocklengths
    ~displacements_bytes:(Array.map (fun d -> d * ext) displacements)
    e

let indexed_block ~blocklength ~displacements e =
  check_nonneg "indexed_block" blocklength;
  indexed
    ~blocklengths:(Array.make (Array.length displacements) blocklength)
    ~displacements e

let struct_ ~blocklengths ~displacements_bytes ~types =
  let n = Array.length blocklengths in
  if Array.length displacements_bytes <> n || Array.length types <> n then
    invalid_arg "Datatype.struct_: array length mismatch";
  Array.iter (check_nonneg "struct_") blocklengths;
  Struct { blocklengths; displacements_bytes; types }

let resized ~lb ~extent e =
  if extent < 0 then invalid_arg "Datatype.resized: negative extent";
  Resized { lb; extent; elem = e }

let subarray ~sizes ~subsizes ~starts ~order e =
  let n = Array.length sizes in
  if n = 0 then invalid_arg "Datatype.subarray: zero dimensions";
  if Array.length subsizes <> n || Array.length starts <> n then
    invalid_arg "Datatype.subarray: array length mismatch";
  for i = 0 to n - 1 do
    if subsizes.(i) < 1 || starts.(i) < 0 || starts.(i) + subsizes.(i) > sizes.(i)
    then invalid_arg "Datatype.subarray: invalid sub-region"
  done;
  (* Normalise to C (row-major) dimension order. *)
  let rev a = Array.init n (fun i -> a.(n - 1 - i)) in
  let sizes, subsizes, starts =
    match order with
    | `C -> (sizes, subsizes, starts)
    | `Fortran -> (rev sizes, rev subsizes, rev starts)
  in
  let esize = extent e in
  (* stride.(i) = bytes between consecutive indices of dimension i. *)
  let stride = Array.make n esize in
  for i = n - 2 downto 0 do
    stride.(i) <- stride.(i + 1) * sizes.(i + 1)
  done;
  let inner = ref (contiguous subsizes.(n - 1) e) in
  for i = n - 2 downto 0 do
    inner :=
      hvector ~count:subsizes.(i) ~blocklength:1 ~stride_bytes:stride.(i) !inner
  done;
  let start_off = ref 0 in
  for i = 0 to n - 1 do
    start_off := !start_off + (starts.(i) * stride.(i))
  done;
  let placed =
    hindexed ~blocklengths:[| 1 |] ~displacements_bytes:[| !start_off |] !inner
  in
  let total = Array.fold_left ( * ) esize sizes in
  resized ~lb:0 ~extent:total placed

(* --- structural view / type-map fold --- *)

type view =
  | V_predefined of predefined
  | V_contiguous of int * t
  | V_hvector of { count : int; blocklength : int; stride_bytes : int; elem : t }
  | V_hindexed of {
      blocklengths : int array;
      displacements_bytes : int array;
      elem : t;
    }
  | V_struct of {
      blocklengths : int array;
      displacements_bytes : int array;
      types : t array;
    }
  | V_resized of { lb : int; extent : int; elem : t }

let view = function
  | Predefined p -> V_predefined p
  | Contiguous (n, e) -> V_contiguous (n, e)
  | Hvector { count; blocklength; stride_bytes; elem } ->
      V_hvector { count; blocklength; stride_bytes; elem }
  | Hindexed { blocklengths; displacements_bytes; elem } ->
      V_hindexed { blocklengths; displacements_bytes; elem }
  | Struct { blocklengths; displacements_bytes; types } ->
      V_struct { blocklengths; displacements_bytes; types }
  | Resized { lb; extent; elem } -> V_resized { lb; extent; elem }

let rec iter_typemap_at t ~base ~f =
  match t with
  | Predefined p -> f ~disp:base ~p
  | Contiguous (n, e) ->
      let ext = extent e in
      for i = 0 to n - 1 do
        iter_typemap_at e ~base:(base + (i * ext)) ~f
      done
  | Hvector { count; blocklength; stride_bytes; elem } ->
      let ext = extent elem in
      for i = 0 to count - 1 do
        let block_base = base + (i * stride_bytes) in
        for j = 0 to blocklength - 1 do
          iter_typemap_at elem ~base:(block_base + (j * ext)) ~f
        done
      done
  | Hindexed { blocklengths; displacements_bytes; elem } ->
      let ext = extent elem in
      Array.iteri
        (fun i bl ->
          let block_base = base + displacements_bytes.(i) in
          for j = 0 to bl - 1 do
            iter_typemap_at elem ~base:(block_base + (j * ext)) ~f
          done)
        blocklengths
  | Struct { blocklengths; displacements_bytes; types } ->
      Array.iteri
        (fun i bl ->
          let e = types.(i) in
          let ext = extent e in
          let block_base = base + displacements_bytes.(i) in
          for j = 0 to bl - 1 do
            iter_typemap_at e ~base:(block_base + (j * ext)) ~f
          done)
        blocklengths
  | Resized { elem; _ } -> iter_typemap_at elem ~base ~f

let iter_typemap t ~f = iter_typemap_at t ~base:0 ~f

let typemap t =
  let acc = ref [] in
  iter_typemap t ~f:(fun ~disp ~p -> acc := (disp, p) :: !acc);
  List.rev !acc

let rle_signature t =
  let acc = ref [] in
  iter_typemap t ~f:(fun ~disp:_ ~p ->
      match !acc with
      | (q, n) :: rest when q = p -> acc := (q, n + 1) :: rest
      | l -> acc := (p, 1) :: l);
  List.rev !acc

(* Raw (unmerged) block iteration for one element, in typemap order. *)
let rec iter_raw_blocks t ~base ~f =
  match t with
  | Predefined p -> f base (predefined_size p)
  | Contiguous (n, e) ->
      let ext = extent e in
      for i = 0 to n - 1 do
        iter_raw_blocks e ~base:(base + (i * ext)) ~f
      done
  | Hvector { count; blocklength; stride_bytes; elem } ->
      let ext = extent elem in
      for i = 0 to count - 1 do
        let block_base = base + (i * stride_bytes) in
        for j = 0 to blocklength - 1 do
          iter_raw_blocks elem ~base:(block_base + (j * ext)) ~f
        done
      done
  | Hindexed { blocklengths; displacements_bytes; elem } ->
      let ext = extent elem in
      Array.iteri
        (fun i bl ->
          let block_base = base + displacements_bytes.(i) in
          for j = 0 to bl - 1 do
            iter_raw_blocks elem ~base:(block_base + (j * ext)) ~f
          done)
        blocklengths
  | Struct { blocklengths; displacements_bytes; types } ->
      Array.iteri
        (fun i bl ->
          let e = types.(i) in
          let ext = extent e in
          let block_base = base + displacements_bytes.(i) in
          for j = 0 to bl - 1 do
            iter_raw_blocks e ~base:(block_base + (j * ext)) ~f
          done)
        blocklengths
  | Resized { elem; _ } -> iter_raw_blocks elem ~base ~f

(* Merging wrapper: coalesce blocks that are byte-adjacent. *)
let iter_blocks t ~count ~f =
  let ext = extent t in
  let pending_disp = ref 0 and pending_len = ref 0 in
  let emit disp len =
    if len > 0 then
      if !pending_len > 0 && !pending_disp + !pending_len = disp then
        pending_len := !pending_len + len
      else begin
        if !pending_len > 0 then f ~disp:!pending_disp ~len:!pending_len;
        pending_disp := disp;
        pending_len := len
      end
  in
  for i = 0 to count - 1 do
    iter_raw_blocks t ~base:(i * ext) ~f:emit
  done;
  if !pending_len > 0 then f ~disp:!pending_disp ~len:!pending_len

let block_list t ~count =
  let acc = ref [] in
  iter_blocks t ~count ~f:(fun ~disp ~len -> acc := (disp, len) :: !acc);
  List.rev !acc

let blocks_per_element t = List.length (block_list t ~count:1)

let is_contiguous t =
  size t = extent t && lb t = 0
  && match block_list t ~count:1 with
     | [ (0, len) ] -> len = size t
     | [] -> size t = 0
     | _ -> false

(* Single linear typemap walk: one cons per leaf, no intermediate
   per-constructor list concatenation. *)
let signature t =
  let acc = ref [] in
  iter_typemap t ~f:(fun ~disp:_ ~p -> acc := p :: !acc);
  List.rev !acc

(* Two signatures are equal iff their maximal run-length encodings are
   equal, so compare the compact form instead of materializing the full
   leaf lists (struct-of-vector comparisons were quadratic). *)
let equal_signature a b = rle_signature a = rle_signature b

let pp_predefined ppf p =
  Format.pp_print_string ppf
    (match p with
    | Byte -> "byte"
    | Char -> "char"
    | Int8 -> "i8"
    | Uint8 -> "u8"
    | Int16 -> "i16"
    | Int32 -> "i32"
    | Int64 -> "i64"
    | Float32 -> "f32"
    | Float64 -> "f64")

let rec pp ppf = function
  | Predefined p -> pp_predefined ppf p
  | Contiguous (n, e) -> Format.fprintf ppf "contig(%d,%a)" n pp e
  | Hvector { count; blocklength; stride_bytes; elem } ->
      Format.fprintf ppf "hvector(%d,%d,%dB,%a)" count blocklength stride_bytes
        pp elem
  | Hindexed { blocklengths; displacements_bytes; elem } ->
      (* Bounded summary: lint reports need the displacements to be
         actionable, but huge index lists must not explode the output. *)
      let n = Array.length blocklengths in
      let shown = min n 4 in
      let pp_disps ppf () =
        for i = 0 to shown - 1 do
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "%d:%dB" blocklengths.(i) displacements_bytes.(i)
        done;
        if n > shown then Format.fprintf ppf ",..+%d" (n - shown)
      in
      Format.fprintf ppf "hindexed(%d blocks[%a],%a)" n pp_disps () pp elem
  | Struct { blocklengths; types; _ } ->
      Format.fprintf ppf "struct(%d fields:%a)"
        (Array.length blocklengths)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
        (Array.to_list types)
  | Resized { lb; extent; elem } ->
      Format.fprintf ppf "resized(lb=%d,ext=%d,%a)" lb extent pp elem

let to_string t = Format.asprintf "%a" pp t

let packed_size t ~count = count * size t

let record_block stats bytes =
  match stats with
  | None -> ()
  | Some s ->
      Stats.record_ddt_blocks s 1;
      Stats.record_copy s bytes

let pack ?stats t ~count ~src ~dst =
  let pos = ref 0 in
  iter_blocks t ~count ~f:(fun ~disp ~len ->
      Buf.blit ~src ~src_pos:disp ~dst ~dst_pos:!pos ~len;
      record_block stats len;
      pos := !pos + len);
  !pos

let unpack ?stats t ~count ~src ~dst =
  let pos = ref 0 in
  iter_blocks t ~count ~f:(fun ~disp ~len ->
      Buf.blit ~src ~src_pos:!pos ~dst ~dst_pos:disp ~len;
      record_block stats len;
      pos := !pos + len);
  let expected = packed_size t ~count in
  if !pos <> expected then
    invalid_arg
      (Printf.sprintf "Datatype.unpack: consumed %d bytes, expected %d" !pos
         expected)

exception Done

(* Walk the packed stream and apply [f] to the sub-blocks overlapping
   [packed_off, packed_off + window). *)
let range_walk t ~count ~packed_off ~window ~f =
  let hi = packed_off + window in
  let pos = ref 0 in
  (try
     iter_blocks t ~count ~f:(fun ~disp ~len ->
         let block_lo = !pos and block_hi = !pos + len in
         if block_lo >= hi then raise Done;
         let lo = max block_lo packed_off and up = min block_hi hi in
         if lo < up then
           (* typed-side offset of the overlap start *)
           f ~disp:(disp + (lo - block_lo)) ~packed_pos:lo ~len:(up - lo);
         pos := block_hi)
   with Done -> ());
  min hi (packed_size t ~count) - packed_off |> max 0

let pack_range ?stats t ~count ~src ~packed_off ~dst =
  range_walk t ~count ~packed_off ~window:(Buf.length dst)
    ~f:(fun ~disp ~packed_pos ~len ->
      Buf.blit ~src ~src_pos:disp ~dst ~dst_pos:(packed_pos - packed_off) ~len;
      record_block stats len)

let unpack_range ?stats t ~count ~src ~packed_off ~dst =
  range_walk t ~count ~packed_off ~window:(Buf.length src)
    ~f:(fun ~disp ~packed_pos ~len ->
      Buf.blit ~src ~src_pos:(packed_pos - packed_off) ~dst ~dst_pos:disp ~len;
      record_block stats len)

let iovec t ~count ~base =
  let acc = ref [] in
  iter_blocks t ~count ~f:(fun ~disp ~len ->
      acc := Buf.sub base ~pos:disp ~len :: !acc);
  List.rev !acc

(* --- marshalling (Kimpe et al. style) --- *)

exception Corrupt_datatype of string

let predefined_code = function
  | Byte -> 0
  | Char -> 1
  | Int8 -> 2
  | Uint8 -> 3
  | Int16 -> 4
  | Int32 -> 5
  | Int64 -> 6
  | Float32 -> 7
  | Float64 -> 8

let predefined_of_code = function
  | 0 -> Byte
  | 1 -> Char
  | 2 -> Int8
  | 3 -> Uint8
  | 4 -> Int16
  | 5 -> Int32
  | 6 -> Int64
  | 7 -> Float32
  | 8 -> Float64
  | c -> raise (Corrupt_datatype (Printf.sprintf "bad predefined code %d" c))

let serialize t =
  let b = Buffer.create 64 in
  let u8 v = Buffer.add_char b (Char.chr (v land 0xff)) in
  let i64 v =
    let v = Int64.of_int v in
    for k = 0 to 7 do
      u8 (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
    done
  in
  let int_array a =
    i64 (Array.length a);
    Array.iter i64 a
  in
  let rec go = function
    | Predefined p ->
        u8 0;
        u8 (predefined_code p)
    | Contiguous (n, e) ->
        u8 1;
        i64 n;
        go e
    | Hvector { count; blocklength; stride_bytes; elem } ->
        u8 2;
        i64 count;
        i64 blocklength;
        i64 stride_bytes;
        go elem
    | Hindexed { blocklengths; displacements_bytes; elem } ->
        u8 3;
        int_array blocklengths;
        int_array displacements_bytes;
        go elem
    | Struct { blocklengths; displacements_bytes; types } ->
        u8 4;
        int_array blocklengths;
        int_array displacements_bytes;
        Array.iter go types
    | Resized { lb; extent; elem } ->
        u8 5;
        i64 lb;
        i64 extent;
        go elem
  in
  go t;
  Mpicd_buf.Buf.of_string (Buffer.contents b)

let deserialize buf =
  let module Buf = Mpicd_buf.Buf in
  let pos = ref 0 in
  let u8 () =
    if !pos >= Buf.length buf then raise (Corrupt_datatype "truncated");
    let v = Buf.get_u8 buf !pos in
    incr pos;
    v
  in
  let i64 () =
    let v = ref 0L in
    for k = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 ())) (8 * k))
    done;
    Int64.to_int !v
  in
  let int_array () =
    let n = i64 () in
    if n < 0 || n > 1 lsl 30 then raise (Corrupt_datatype "bad array length");
    Array.init n (fun _ -> i64 ())
  in
  let rec go () =
    match u8 () with
    | 0 -> Predefined (predefined_of_code (u8 ()))
    | 1 ->
        let n = i64 () in
        if n < 0 then raise (Corrupt_datatype "negative count");
        Contiguous (n, go ())
    | 2 ->
        let count = i64 () in
        let blocklength = i64 () in
        let stride_bytes = i64 () in
        if count < 0 || blocklength < 0 then
          raise (Corrupt_datatype "negative hvector field");
        Hvector { count; blocklength; stride_bytes; elem = go () }
    | 3 ->
        let blocklengths = int_array () in
        let displacements_bytes = int_array () in
        if Array.length blocklengths <> Array.length displacements_bytes then
          raise (Corrupt_datatype "hindexed arity mismatch");
        Hindexed { blocklengths; displacements_bytes; elem = go () }
    | 4 ->
        let blocklengths = int_array () in
        let displacements_bytes = int_array () in
        if Array.length blocklengths <> Array.length displacements_bytes then
          raise (Corrupt_datatype "struct arity mismatch");
        let types = Array.map (fun _ -> go ()) blocklengths in
        Struct { blocklengths; displacements_bytes; types }
    | 5 ->
        let lb = i64 () in
        let extent = i64 () in
        if extent < 0 then raise (Corrupt_datatype "negative extent");
        Resized { lb; extent; elem = go () }
    | c -> raise (Corrupt_datatype (Printf.sprintf "bad constructor tag %d" c))
  in
  let t = go () in
  if !pos <> Buf.length buf then raise (Corrupt_datatype "trailing bytes");
  t

let equal a b = a = b
