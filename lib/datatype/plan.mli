(** Compiled pack plans.

    A plan is a datatype flattened once into displacement / length
    arrays plus a prefix sum of packed offsets — the TEMPI-style
    canonical representation (Pearson et al.) that lets the pack engine
    run straight array loops instead of re-interpreting the datatype
    tree on every call.

    Plans are compiled per {e element}: [count] elements tile the typed
    buffer with stride {!extent} and the packed stream with stride
    {!size}, so plan memory never depends on [count].  Fragment entry
    points ({!pack_range}/{!unpack_range}) locate the starting block by
    binary search over the prefix sums (O(log B)); a {!cursor} turns a
    sequential fragment stream into amortized O(1) resumes.

    Plans only change host-side execution.  The simulator's
    virtual-time cost model keeps charging per interpreter-equivalent
    block, so simulation results are bit-identical to the interpreter
    path. *)

type t

val build : Datatype.t -> t
(** Flatten one element of the datatype (merged contiguous blocks, in
    typemap order) into a fresh plan, bypassing the cache. *)

(** {1 Memoization}

    Plans are cached per datatype {e value}, keyed on physical equality:
    committing a datatype once and reusing it hits the cache on every
    subsequent operation.  The cache is process-global, thread-safe and
    bounded. *)

type outcome = Hit | Miss

val get : ?stats:Mpicd_simnet.Stats.t -> Datatype.t -> t
(** Cached {!build}.  When [stats] is given, records a
    plan-cache hit or miss ({!Mpicd_simnet.Stats.record_plan_hit}). *)

val get_outcome : ?stats:Mpicd_simnet.Stats.t -> Datatype.t -> t * outcome

val clear_cache : unit -> unit
(** Drop all cached plans and zero the global hit/miss counters
    (test isolation). *)

val cache_hits : unit -> int
val cache_misses : unit -> int

(** {1 Queries} — same values as the corresponding [Datatype] queries
    on the source datatype. *)

val size : t -> int
val extent : t -> int
val packed_size : t -> count:int -> int

val block_count : t -> int
(** Merged contiguous blocks per element (= [Datatype.blocks_per_element]). *)

val is_contiguous : t -> bool

(** {1 Pack / unpack}

    Byte-for-byte identical to the [Datatype] interpreter engine,
    including the per-block [stats] accounting
    ([record_ddt_blocks] + [record_copy]). *)

val pack :
  ?stats:Mpicd_simnet.Stats.t -> t -> count:int -> src:Mpicd_buf.Buf.t ->
  dst:Mpicd_buf.Buf.t -> int

val unpack :
  ?stats:Mpicd_simnet.Stats.t -> t -> count:int -> src:Mpicd_buf.Buf.t ->
  dst:Mpicd_buf.Buf.t -> unit

(** {1 Fragment streams} *)

type cursor
(** Mutable resume point for a fragment stream over one (plan, count)
    pair.  Passing the cursor to {!pack_range}/{!unpack_range} makes a
    fragment that starts where the previous one ended resume in O(1);
    any other offset re-seeks by binary search.  A cursor must not be
    shared between concurrent streams. *)

val cursor : t -> cursor

val cursor_resumes : cursor -> int
(** Fragments that resumed in O(1) (diagnostics/tests). *)

val cursor_reseeks : cursor -> int
(** Fragments that needed a binary-search re-seek. *)

val pack_range :
  ?stats:Mpicd_simnet.Stats.t -> ?cursor:cursor -> t -> count:int ->
  src:Mpicd_buf.Buf.t -> packed_off:int -> dst:Mpicd_buf.Buf.t -> int
(** Write bytes [packed_off .. packed_off + length dst - 1] of the
    packed stream into [dst]; returns bytes written (short only at end
    of stream). *)

val unpack_range :
  ?stats:Mpicd_simnet.Stats.t -> ?cursor:cursor -> t -> count:int ->
  src:Mpicd_buf.Buf.t -> packed_off:int -> dst:Mpicd_buf.Buf.t -> int
(** Scatter the fragment [src] (virtual offset [packed_off] of the
    packed stream) into the typed layout [dst]; returns bytes consumed,
    mirroring {!pack_range}. *)

val iovec : t -> count:int -> base:Mpicd_buf.Buf.t -> Mpicd_buf.Buf.t list
(** Zero-copy region list; entry-for-entry identical to
    [Datatype.iovec] (including cross-element merging). *)
