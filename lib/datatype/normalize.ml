module Dt = Datatype
module Config = Mpicd_simnet.Config
module Buf = Mpicd_buf.Buf

type rule =
  | R_contig_of_one
  | R_contig_flatten
  | R_empty
  | R_hvector_count_one
  | R_hvector_collapse
  | R_hindexed_drop_zero
  | R_hindexed_coalesce
  | R_hindexed_contig
  | R_hindexed_vector
  | R_struct_homogeneous
  | R_resized_noop
  | R_resized_nested

let rule_id = function
  | R_contig_of_one -> "contig-of-one"
  | R_contig_flatten -> "contig-flatten"
  | R_empty -> "empty"
  | R_hvector_count_one -> "hvector-count-one"
  | R_hvector_collapse -> "hvector-collapse"
  | R_hindexed_drop_zero -> "hindexed-drop-zero"
  | R_hindexed_coalesce -> "hindexed-coalesce"
  | R_hindexed_contig -> "hindexed-contig"
  | R_hindexed_vector -> "hindexed-vector"
  | R_struct_homogeneous -> "struct-homogeneous"
  | R_resized_noop -> "resized-noop"
  | R_resized_nested -> "resized-nested"

(* --- descriptor complexity ---

   (nodes, entries): tree nodes plus the scalar slots each node carries
   (constructor parameters and index-array entries).  Struct fields
   count blocklength + displacement + type slot (3 per field) and each
   field type's subtree is counted once per field, matching what a
   commit-time walk actually visits; hindexed counts 2 per block over a
   single shared element subtree. *)

let rec complexity t =
  match Dt.view t with
  | Dt.V_predefined _ -> (1, 0)
  | Dt.V_contiguous (_, e) ->
      let n, a = complexity e in
      (n + 1, a + 1)
  | Dt.V_hvector { elem = e; _ } ->
      let n, a = complexity e in
      (n + 1, a + 3)
  | Dt.V_hindexed { blocklengths; elem; _ } ->
      let n, a = complexity elem in
      (n + 1, a + (2 * Array.length blocklengths))
  | Dt.V_struct { blocklengths; types; _ } ->
      let acc_n = ref 1 and acc_a = ref (3 * Array.length blocklengths) in
      Array.iter
        (fun e ->
          let n, a = complexity e in
          acc_n := !acc_n + n;
          acc_a := !acc_a + a)
        types;
      (!acc_n, !acc_a)
  | Dt.V_resized { elem; _ } ->
      let n, a = complexity elem in
      (n + 1, a + 2)

type cost = {
  nodes : int;
  entries : int;
  blocks : int;
  commit_ns : float;
  pack_ns : float;
  total_ns : float;
}

let cost ?(cpu = Config.default_cpu) t =
  let nodes, entries = complexity t in
  let blocks = Dt.blocks_per_element t in
  let commit_ns = float_of_int (nodes + entries) *. cpu.Config.ddt_node_ns in
  let pack_ns =
    (float_of_int blocks *. cpu.Config.ddt_block_ns)
    +. Config.memcpy_time cpu (Dt.size t)
  in
  { nodes; entries; blocks; commit_ns; pack_ns; total_ns = commit_ns +. pack_ns }

type step = {
  rule : rule;
  path : int list;
  before : string;
  after : string;
  nodes_delta : int;
  entries_delta : int;
  cost_delta_ns : float;
}

type result = {
  original : Dt.t;
  normalized : Dt.t;
  steps : step list;
  original_cost : cost;
  normalized_cost : cost;
}

let changed r = r.steps <> []

(* --- the rewrite rules ---

   Every rule preserves the subterm's exact type map and its (lb, ub)
   bounds; [apply_checked] enforces the bounds half at runtime (cheap)
   while the type-map half is proved per rule and re-checked wholesale
   by {!equivalent} in the test suite. *)

let empty_canon = Dt.contiguous 0 Dt.byte

let all_equal_blocks blocklengths displacements_bytes =
  (* uniform blocklength + constant stride over >= 2 blocks *)
  let n = Array.length blocklengths in
  if n < 2 then None
  else
    let bl = blocklengths.(0) in
    let stride = displacements_bytes.(1) - displacements_bytes.(0) in
    let ok = ref true in
    for i = 0 to n - 1 do
      if blocklengths.(i) <> bl then ok := false;
      if
        i > 0
        && displacements_bytes.(i) - displacements_bytes.(i - 1) <> stride
      then ok := false
    done;
    if !ok then Some (bl, stride) else None

let coalesce_adjacent ~ext blocklengths displacements_bytes =
  (* one left-to-right pass merging every byte-adjacent run *)
  let n = Array.length blocklengths in
  let bls = ref [] and ds = ref [] and merged = ref false in
  for i = 0 to n - 1 do
    match (!bls, !ds) with
    | bl :: bls', d :: _ when d + (bl * ext) = displacements_bytes.(i) ->
        bls := (bl + blocklengths.(i)) :: bls';
        merged := true
    | _ ->
        bls := blocklengths.(i) :: !bls;
        ds := displacements_bytes.(i) :: !ds
  done;
  if !merged then
    Some
      ( Array.of_list (List.rev !bls),
        Array.of_list (List.rev !ds) )
  else None

(* One root rewrite attempt; children are assumed already normalized. *)
let weight t =
  let n, a = complexity t in
  n + a

let try_root t =
  if
    Dt.size t = 0 && Dt.lb t = 0 && Dt.ub t = 0
    && (not (Dt.equal t empty_canon))
    (* canonicalizing an empty type must not grow the descriptor (an
       empty hindexed over a predefined is already smaller than the
       canonical empty) *)
    && weight t >= weight empty_canon
  then Some (R_empty, empty_canon)
  else
    match Dt.view t with
    | Dt.V_contiguous (1, e) -> Some (R_contig_of_one, e)
    | Dt.V_contiguous (n, e) -> (
        match Dt.view e with
        | Dt.V_contiguous (m, e2) ->
            Some (R_contig_flatten, Dt.contiguous (n * m) e2)
        | _ -> None)
    | Dt.V_hvector { count = 1; blocklength; elem; _ } ->
        Some (R_hvector_count_one, Dt.contiguous blocklength elem)
    | Dt.V_hvector { count; blocklength; stride_bytes; elem }
      when stride_bytes = blocklength * Dt.extent elem ->
        Some (R_hvector_collapse, Dt.contiguous (count * blocklength) elem)
    | Dt.V_hvector _ -> None
    | Dt.V_hindexed { blocklengths; displacements_bytes; elem } -> (
        if Array.exists (fun bl -> bl = 0) blocklengths then
          let keep = ref [] in
          Array.iteri
            (fun i bl -> if bl > 0 then keep := i :: !keep)
            blocklengths;
          let keep = Array.of_list (List.rev !keep) in
          Some
            ( R_hindexed_drop_zero,
              Dt.hindexed
                ~blocklengths:(Array.map (fun i -> blocklengths.(i)) keep)
                ~displacements_bytes:
                  (Array.map (fun i -> displacements_bytes.(i)) keep)
                elem )
        else
          match
            coalesce_adjacent ~ext:(Dt.extent elem) blocklengths
              displacements_bytes
          with
          | Some (bls, ds) ->
              Some
                (R_hindexed_coalesce, Dt.hindexed ~blocklengths:bls
                   ~displacements_bytes:ds elem)
          | None -> (
              match (blocklengths, displacements_bytes) with
              | [| bl |], [| 0 |] ->
                  Some (R_hindexed_contig, Dt.contiguous bl elem)
              | _ -> (
                  match all_equal_blocks blocklengths displacements_bytes with
                  | Some (bl, stride) ->
                      let count = Array.length blocklengths in
                      let hv =
                        Dt.hvector ~count ~blocklength:bl ~stride_bytes:stride
                          elem
                      in
                      let d0 = displacements_bytes.(0) in
                      if d0 = 0 then Some (R_hindexed_vector, hv)
                      else if count >= 3 then
                        (* the extra wrapper node pays for itself only
                           once it replaces >= 3 index entries *)
                        Some
                          ( R_hindexed_vector,
                            Dt.hindexed ~blocklengths:[| 1 |]
                              ~displacements_bytes:[| d0 |] hv )
                      else None
                  | None -> None)))
    | Dt.V_struct { blocklengths; displacements_bytes; types } ->
        (* the types of zero-length fields contribute nothing to the
           type map or bounds, so homogeneity only ranges over bl > 0 *)
        let rep = ref None and homogeneous = ref true in
        Array.iteri
          (fun i bl ->
            if bl > 0 then
              match !rep with
              | None -> rep := Some types.(i)
              | Some r -> if not (Dt.equal r types.(i)) then homogeneous := false)
          blocklengths;
        (match (!rep, !homogeneous) with
        | Some elem, true ->
            Some
              ( R_struct_homogeneous,
                Dt.hindexed ~blocklengths ~displacements_bytes elem )
        | _ -> None)
    | Dt.V_resized { lb; extent; elem } -> (
        if lb = Dt.lb elem && lb + extent = Dt.ub elem then
          Some (R_resized_noop, elem)
        else
          match Dt.view elem with
          | Dt.V_resized { elem = inner; _ } ->
              Some (R_resized_nested, Dt.resized ~lb ~extent inner)
          | _ -> None)
    | Dt.V_predefined _ -> None

let run ?(cpu = Config.default_cpu) t0 =
  let steps = ref [] in
  let apply_checked rule ~rpath before after =
    if Dt.lb before <> Dt.lb after || Dt.ub before <> Dt.ub after then
      invalid_arg
        (Printf.sprintf "Normalize: rule %s changed bounds of %s" (rule_id rule)
           (Dt.to_string before));
    let bn, ba = complexity before and an, aa = complexity after in
    steps :=
      {
        rule;
        path = List.rev rpath;
        before = Dt.to_string before;
        after = Dt.to_string after;
        nodes_delta = bn - an;
        entries_delta = ba - aa;
        cost_delta_ns =
          float_of_int (bn + ba - an - aa) *. cpu.Config.ddt_node_ns;
      }
      :: !steps;
    after
  in
  let rec root_fix rpath t =
    match try_root t with
    | None -> t
    | Some (rule, t') -> root_fix rpath (apply_checked rule ~rpath t t')
  in
  let rec norm rpath t =
    let t =
      match Dt.view t with
      | Dt.V_predefined _ -> t
      | Dt.V_contiguous (n, e) ->
          let e' = norm (0 :: rpath) e in
          if e' == e then t else Dt.contiguous n e'
      | Dt.V_hvector { count; blocklength; stride_bytes; elem } ->
          let elem' = norm (0 :: rpath) elem in
          if elem' == elem then t
          else Dt.hvector ~count ~blocklength ~stride_bytes elem'
      | Dt.V_hindexed { blocklengths; displacements_bytes; elem } ->
          let elem' = norm (0 :: rpath) elem in
          if elem' == elem then t
          else Dt.hindexed ~blocklengths ~displacements_bytes elem'
      | Dt.V_struct { blocklengths; displacements_bytes; types } ->
          let same = ref true in
          let types' =
            Array.mapi
              (fun i e ->
                let e' = norm (i :: rpath) e in
                if e' != e then same := false;
                e')
              types
          in
          if !same then t
          else Dt.struct_ ~blocklengths ~displacements_bytes ~types:types'
      | Dt.V_resized { lb; extent; elem } ->
          let elem' = norm (0 :: rpath) elem in
          if elem' == elem then t else Dt.resized ~lb ~extent elem'
    in
    root_fix rpath t
  in
  let normalized = norm [] t0 in
  {
    original = t0;
    normalized;
    steps = List.rev !steps;
    original_cost = cost ~cpu t0;
    normalized_cost = cost ~cpu normalized;
  }

let normalize ?cpu t = (run ?cpu t).normalized

(* --- verification --- *)

let equivalent a b =
  Dt.lb a = Dt.lb b && Dt.ub a = Dt.ub b && Dt.typemap a = Dt.typemap b

let verify_bytes ?(count = 3) a b =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if Dt.lb a <> Dt.lb b then fail "lb differs: %d vs %d" (Dt.lb a) (Dt.lb b)
  else if Dt.ub a <> Dt.ub b then
    fail "ub differs: %d vs %d" (Dt.ub a) (Dt.ub b)
  else if Dt.size a <> Dt.size b then
    fail "size differs: %d vs %d" (Dt.size a) (Dt.size b)
  else
    (* shift negative-lb layouts into buffer range; the same shift on
       both sides preserves relative equivalence *)
    let shift t =
      if Dt.lb t >= 0 then t
      else
        Dt.hindexed ~blocklengths:[| 1 |]
          ~displacements_bytes:[| -Dt.lb t |]
          t
    in
    let a = shift a and b = shift b in
    let pa = Plan.build a and pb = Plan.build b in
    let src_len = max 1 (Dt.ub a + ((count - 1) * Dt.extent a)) in
    let src = Buf.create src_len in
    for i = 0 to src_len - 1 do
      Buf.set_u8 src i (((i * 7) + 13) land 0xff)
    done;
    let packed = Dt.packed_size a ~count in
    let da = Buf.create (max 1 packed) and db = Buf.create (max 1 packed) in
    let wrote_a = Plan.pack pa ~count ~src ~dst:da in
    let wrote_b = Plan.pack pb ~count ~src ~dst:db in
    if wrote_a <> wrote_b then
      fail "packed sizes differ: %d vs %d" wrote_a wrote_b
    else if not (Buf.equal da db) then fail "packed streams differ"
    else
      let ua = Buf.create src_len and ub_ = Buf.create src_len in
      Plan.unpack pa ~count ~src:da ~dst:ua;
      Plan.unpack pb ~count ~src:db ~dst:ub_;
      if not (Buf.equal ua ub_) then fail "unpacked layouts differ"
      else Ok ()

(* --- JSON trace --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_cost c =
  Printf.sprintf
    "{\"nodes\":%d,\"entries\":%d,\"blocks\":%d,\"commit_ns\":%.3f,\"pack_ns\":%.3f,\"total_ns\":%.3f}"
    c.nodes c.entries c.blocks c.commit_ns c.pack_ns c.total_ns

let json_of_step s =
  Printf.sprintf
    "{\"rule\":\"%s\",\"path\":[%s],\"before\":\"%s\",\"after\":\"%s\",\"nodes_delta\":%d,\"entries_delta\":%d,\"cost_delta_ns\":%.3f}"
    (rule_id s.rule)
    (String.concat "," (List.map string_of_int s.path))
    (json_escape s.before) (json_escape s.after) s.nodes_delta s.entries_delta
    s.cost_delta_ns

let json_of_result r =
  Printf.sprintf
    "{\"original\":\"%s\",\"normalized\":\"%s\",\"changed\":%b,\"original_cost\":%s,\"normalized_cost\":%s,\"steps\":[%s]}"
    (json_escape (Dt.to_string r.original))
    (json_escape (Dt.to_string r.normalized))
    (changed r)
    (json_of_cost r.original_cost)
    (json_of_cost r.normalized_cost)
    (String.concat "," (List.map json_of_step r.steps))

(* --- memo cache (same physical-equality scheme as Plan) --- *)

let cache : (int, (Dt.t * Dt.t) list) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let cache_entries = ref 0
let max_cache_entries = 1024

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  cache_entries := 0;
  Mutex.unlock cache_lock

let get dt =
  let h = Hashtbl.hash dt in
  Mutex.lock cache_lock;
  let found =
    match Hashtbl.find_opt cache h with
    | None -> None
    | Some l -> List.find_opt (fun (k, _) -> k == dt) l
  in
  let result =
    match found with
    | Some (_, n) -> n
    | None ->
        let n = normalize dt in
        if !cache_entries >= max_cache_entries then begin
          Hashtbl.reset cache;
          cache_entries := 0
        end;
        let bucket = Option.value ~default:[] (Hashtbl.find_opt cache h) in
        Hashtbl.replace cache h ((dt, n) :: bucket);
        incr cache_entries;
        n
  in
  Mutex.unlock cache_lock;
  result
