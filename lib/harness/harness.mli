(** Benchmark driver: OSU-style ping-pong measurements on the simulated
    two-node cluster.

    Each measurement builds a fresh deterministic world, runs [warmup]
    unmeasured rounds, then [reps] measured rounds, and reports the
    average one-way latency (half the round-trip) on the virtual clock
    together with the derived bandwidth — the methodology of the
    paper's §V benchmarks. *)

module Buf = Mpicd_buf.Buf
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Mpi = Mpicd.Mpi

type impl = {
  send : Mpi.comm -> dst:int -> tag:int -> unit;
  recv : Mpi.comm -> source:int -> tag:int -> unit;
}
(** One transfer method: how to send one message and how to receive
    one.  Both run inside rank fibers and may block. *)

type result = {
  bytes : int;  (** payload bytes per one-way transfer *)
  latency_us : float;  (** average one-way latency, microseconds *)
  bandwidth_mib_s : float;  (** bytes / latency, MiB/s *)
  stats : Stats.t;  (** counters accumulated over the measured rounds *)
}

val pingpong :
  ?config:Config.t ->
  ?warmup:int ->
  ?reps:int ->
  ?obs:Mpicd_obs.Obs.t ->
  ?faults:Mpicd_simnet.Fault.t ->
  bytes:int ->
  (unit -> impl) ->
  result
(** [pingpong ~bytes make] measures [make ()] (a fresh impl with its own
    buffers per measurement).  Defaults: warmup 2, reps 10.  [obs], if
    given, is attached to the measurement world (see [Mpi.set_obs]);
    attaching it never changes the measured result.  [faults], if given,
    attaches a fault-injection plan (see [Mpi.set_faults]): the measured
    latency then includes retransmissions and recovery, and the result's
    [stats] carry the reliability counters. *)

val pingpong_profiled :
  ?config:Config.t ->
  ?warmup:int ->
  ?reps:int ->
  ?faults:Mpicd_simnet.Fault.t ->
  bytes:int ->
  (unit -> impl) ->
  result * Mpicd_obs.Profile.t
(** [pingpong] with a fresh observability sink attached and the trace
    run through {!Mpicd_obs.Profile.analyze}: the measurement result
    (identical to the unprofiled run — attaching the sink never changes
    the virtual clock) plus the wait-state / critical-path profile of
    the whole run, warmup rounds included. *)

(** {1 Large-communicator workloads}

    Scale runs exercise the engine and (optionally) a shared-link
    topology with thousands of rank fibers; the paper's two-node
    ping-pong methodology doesn't stress either. *)

type scale_result = {
  ranks : int;
  topology : string;  (** ["flat"], ["switch"], ["fattree"], ["dragonfly"] *)
  sim_time_ns : float;  (** virtual time at completion *)
  events : int;  (** engine events scheduled over the whole run *)
  pooled : int;  (** of those, served from the event-node pool *)
  max_live : int;  (** peak simultaneously queued events *)
  congestion_events : int;  (** sends that waited for a busy link *)
  congestion_wait_ns : float;  (** total virtual time spent so waiting *)
  checksum : float;  (** rank 0's [data.(0)] after the last allreduce *)
}

val scale_allreduce :
  ?config:Config.t ->
  ?topology:Mpicd_simnet.Topology.t ->
  ?iters:int ->
  ?elems:int ->
  ranks:int ->
  unit ->
  scale_result
(** Build a fresh [ranks]-rank world (over [topology] if given), run
    [iters] (default 1) binomial-tree [allreduce_f64] sums of [elems]
    (default 8) float64s per rank plus a closing barrier, and report
    virtual time together with the engine/congestion counters.
    Deterministic: same arguments, same result — bench drivers measure
    host wall-clock around this call. *)

(** {1 Cost-charging helpers for benchmark implementations}

    Benchmark code that does its own packing (the paper's
    [manual-pack]) uses these so its CPU work is charged to the virtual
    clock like everything else. *)

val charged_alloc : Mpi.comm -> int -> Buf.t
(** Allocate a buffer, recording and charging allocation cost. *)

val charged_free : Mpi.comm -> Buf.t -> unit

val charge_copy : Mpi.comm -> int -> unit
(** Charge a [bytes]-sized CPU copy (call after performing it). *)

val charge_pieces : Mpi.comm -> int -> unit
(** Charge the per-piece cost of a pack loop that touched [n]
    contiguous blocks. *)

val charge_ddt_blocks : Mpi.comm -> int -> unit
(** Charge the classic datatype engine's per-block cost for [n] blocks
    (used by the explicit MPI_Pack-style benchmark method). *)

val charge_ns : Mpi.comm -> float -> unit
(** Charge an arbitrary CPU duration. *)
