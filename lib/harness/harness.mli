(** Benchmark driver: OSU-style ping-pong measurements on the simulated
    two-node cluster.

    Each measurement builds a fresh deterministic world, runs [warmup]
    unmeasured rounds, then [reps] measured rounds, and reports the
    average one-way latency (half the round-trip) on the virtual clock
    together with the derived bandwidth — the methodology of the
    paper's §V benchmarks. *)

module Buf = Mpicd_buf.Buf
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Mpi = Mpicd.Mpi

type impl = {
  send : Mpi.comm -> dst:int -> tag:int -> unit;
  recv : Mpi.comm -> source:int -> tag:int -> unit;
}
(** One transfer method: how to send one message and how to receive
    one.  Both run inside rank fibers and may block. *)

type result = {
  bytes : int;  (** payload bytes per one-way transfer *)
  latency_us : float;  (** average one-way latency, microseconds *)
  bandwidth_mib_s : float;  (** bytes / latency, MiB/s *)
  stats : Stats.t;  (** counters accumulated over the measured rounds *)
}

val pingpong :
  ?config:Config.t ->
  ?warmup:int ->
  ?reps:int ->
  ?obs:Mpicd_obs.Obs.t ->
  ?faults:Mpicd_simnet.Fault.t ->
  bytes:int ->
  (unit -> impl) ->
  result
(** [pingpong ~bytes make] measures [make ()] (a fresh impl with its own
    buffers per measurement).  Defaults: warmup 2, reps 10.  [obs], if
    given, is attached to the measurement world (see [Mpi.set_obs]);
    attaching it never changes the measured result.  [faults], if given,
    attaches a fault-injection plan (see [Mpi.set_faults]): the measured
    latency then includes retransmissions and recovery, and the result's
    [stats] carry the reliability counters. *)

val pingpong_profiled :
  ?config:Config.t ->
  ?warmup:int ->
  ?reps:int ->
  ?faults:Mpicd_simnet.Fault.t ->
  bytes:int ->
  (unit -> impl) ->
  result * Mpicd_obs.Profile.t
(** [pingpong] with a fresh observability sink attached and the trace
    run through {!Mpicd_obs.Profile.analyze}: the measurement result
    (identical to the unprofiled run — attaching the sink never changes
    the virtual clock) plus the wait-state / critical-path profile of
    the whole run, warmup rounds included. *)

(** {1 Cost-charging helpers for benchmark implementations}

    Benchmark code that does its own packing (the paper's
    [manual-pack]) uses these so its CPU work is charged to the virtual
    clock like everything else. *)

val charged_alloc : Mpi.comm -> int -> Buf.t
(** Allocate a buffer, recording and charging allocation cost. *)

val charged_free : Mpi.comm -> Buf.t -> unit

val charge_copy : Mpi.comm -> int -> unit
(** Charge a [bytes]-sized CPU copy (call after performing it). *)

val charge_pieces : Mpi.comm -> int -> unit
(** Charge the per-piece cost of a pack loop that touched [n]
    contiguous blocks. *)

val charge_ddt_blocks : Mpi.comm -> int -> unit
(** Charge the classic datatype engine's per-block cost for [n] blocks
    (used by the explicit MPI_Pack-style benchmark method). *)

val charge_ns : Mpi.comm -> float -> unit
(** Charge an arbitrary CPU duration. *)
