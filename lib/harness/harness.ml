module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Mpi = Mpicd.Mpi
module Obs = Mpicd_obs.Obs
module Profile = Mpicd_obs.Profile

type impl = {
  send : Mpi.comm -> dst:int -> tag:int -> unit;
  recv : Mpi.comm -> source:int -> tag:int -> unit;
}

type result = {
  bytes : int;
  latency_us : float;
  bandwidth_mib_s : float;
  stats : Stats.t;
}

let charge comm t = Engine.sleep (Mpi.world_engine (Mpi.world_of comm)) t

let charged_alloc comm n =
  let b = Buf.create n in
  Stats.record_alloc (Mpi.world_stats (Mpi.world_of comm)) n;
  charge comm (Config.alloc_time (Mpi.world_config (Mpi.world_of comm)).cpu n);
  b

let charged_free comm b =
  Stats.record_free (Mpi.world_stats (Mpi.world_of comm)) (Buf.length b)

let charge_copy comm n =
  Stats.record_copy (Mpi.world_stats (Mpi.world_of comm)) n;
  charge comm (Config.memcpy_time (Mpi.world_config (Mpi.world_of comm)).cpu n)

let charge_pieces comm n =
  charge comm
    (float_of_int n *. (Mpi.world_config (Mpi.world_of comm)).cpu.pack_piece_ns)

let charge_ddt_blocks comm n =
  Stats.record_ddt_blocks (Mpi.world_stats (Mpi.world_of comm)) n;
  charge comm
    (float_of_int n *. (Mpi.world_config (Mpi.world_of comm)).cpu.ddt_block_ns)

let charge_ns comm ns = charge comm ns

let pingpong ?(config = Config.default) ?(warmup = 2) ?(reps = 10) ?obs ?faults
    ~bytes make =
  let w = Mpi.create_world ~config ~size:2 () in
  (match obs with Some o -> Mpi.set_obs w o | None -> ());
  (match faults with Some _ -> Mpi.set_faults w faults | None -> ());
  let impl = make () in
  let measured = ref 0. in
  let base_stats = ref (Stats.create ()) in
  Mpi.run w (fun comm ->
      let engine = Mpi.world_engine w in
      let rounds measured_rounds start_round =
        for round = start_round to start_round + measured_rounds - 1 do
          if Mpi.rank comm = 0 then begin
            impl.send comm ~dst:1 ~tag:round;
            impl.recv comm ~source:1 ~tag:round
          end
          else begin
            impl.recv comm ~source:0 ~tag:round;
            impl.send comm ~dst:0 ~tag:round
          end
        done
      in
      rounds warmup 0;
      Mpi.barrier comm;
      if Mpi.rank comm = 0 then base_stats := Stats.snapshot (Mpi.world_stats w);
      let t0 = Engine.now engine in
      rounds reps warmup;
      if Mpi.rank comm = 0 then measured := Engine.now engine -. t0);
  let one_way_ns = !measured /. float_of_int (2 * reps) in
  let stats = Stats.diff ~after:(Mpi.world_stats w) ~before:!base_stats in
  {
    bytes;
    latency_us = one_way_ns /. 1000.;
    bandwidth_mib_s =
      (if one_way_ns <= 0. then 0.
       else float_of_int bytes /. (one_way_ns /. 1e9) /. (1024. *. 1024.));
    stats;
  }

let pingpong_profiled ?config ?warmup ?reps ?faults ~bytes make =
  let obs = Obs.create () in
  let result = pingpong ?config ?warmup ?reps ~obs ?faults ~bytes make in
  (result, Profile.analyze obs)

(* --- large-communicator workloads --- *)

module Topology = Mpicd_simnet.Topology
module Collectives = Mpicd_collectives.Collectives

type scale_result = {
  ranks : int;
  topology : string;
  sim_time_ns : float;
  events : int;
  pooled : int;
  max_live : int;
  congestion_events : int;
  congestion_wait_ns : float;
  checksum : float;
}

let scale_allreduce ?(config = Config.default) ?topology ?(iters = 1)
    ?(elems = 8) ~ranks () =
  if ranks < 1 then invalid_arg "Harness.scale_allreduce: ranks must be >= 1";
  if iters < 1 then invalid_arg "Harness.scale_allreduce: iters must be >= 1";
  let w = Mpi.create_world ~config ?topology ~size:ranks () in
  let checksum = ref 0. in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let data = Array.init elems (fun i -> float_of_int (me + i)) in
      for _ = 1 to iters do
        Collectives.allreduce_f64 comm ~op:`Sum data
      done;
      Collectives.barrier comm;
      if me = 0 then checksum := data.(0));
  let stats = Mpi.world_stats w in
  {
    ranks;
    topology =
      (match topology with
      | None -> "flat"
      | Some topo -> Topology.kind_name topo);
    sim_time_ns = Engine.now (Mpi.world_engine w);
    events = stats.Stats.events_scheduled_total;
    pooled = stats.Stats.events_pooled_reuses;
    max_live = stats.Stats.max_live_events;
    congestion_events =
      (match topology with
      | None -> 0
      | Some topo -> Topology.congestion_events topo);
    congestion_wait_ns =
      (match topology with
      | None -> 0.
      | Some topo -> Topology.congestion_wait_ns topo);
    checksum = !checksum;
  }
