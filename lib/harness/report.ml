type series = { label : string; points : (int * float) list }

let human_bytes n =
  if n >= 1 lsl 30 && n mod (1 lsl 30) = 0 then
    Printf.sprintf "%dG" (n lsr 30)
  else if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then
    Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%dK" (n lsr 10)
  else string_of_int n

let merged_rows series =
  let xs =
    series
    |> List.concat_map (fun s -> List.map fst s.points)
    |> List.sort_uniq compare
  in
  List.map
    (fun x ->
      (x, List.map (fun s -> List.assoc_opt x s.points) series))
    xs

let fmt_y = function
  | None -> "-"
  | Some y ->
      if Float.abs y >= 1000. then Printf.sprintf "%.0f" y
      else if Float.abs y >= 10. then Printf.sprintf "%.1f" y
      else Printf.sprintf "%.3f" y

let pad width s =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

let render ?ylabel ~title ~xlabel series =
  let buf = Buffer.create 1024 in
  let rows = merged_rows series in
  let headers = xlabel :: List.map (fun s -> s.label) series in
  let cells =
    List.map
      (fun (x, ys) -> human_bytes x :: List.map fmt_y ys)
      rows
  in
  let ncols = List.length headers in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length (List.nth headers i))
          cells)
  in
  let line row =
    String.concat "  " (List.mapi (fun i c -> pad (List.nth widths i) c) row)
  in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" title);
  (match ylabel with
  | Some y -> Buffer.add_string buf (Printf.sprintf "(values: %s)\n" y)
  | None -> ());
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (line headers)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    cells;
  Buffer.contents buf

let print ?ylabel ~title ~xlabel series =
  print_string (render ?ylabel ~title ~xlabel series);
  print_newline ()

let to_csv ~path ~xlabel series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (String.concat "," (xlabel :: List.map (fun s -> s.label) series));
      output_char oc '\n';
      List.iter
        (fun (x, ys) ->
          let cells =
            string_of_int x
            :: List.map
                 (function None -> "" | Some y -> Printf.sprintf "%.6f" y)
                 ys
          in
          output_string oc (String.concat "," cells);
          output_char oc '\n')
        (merged_rows series))

let print_kv_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc row ->
            max acc (String.length (try List.nth row i with _ -> "")))
          0 all)
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i c ->
           let w = List.nth widths i in
           c ^ String.make (max 0 (w - String.length c)) ' ')
         row)
  in
  Printf.printf "=== %s ===\n%s\n%s\n" title (line header)
    (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows;
  print_newline ()

let fmt_metric v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v

let print_metrics ?(title = "metrics") mx =
  let module M = Mpicd_obs.Metrics in
  let rows =
    List.map
      (fun (name, view) ->
        match view with
        | M.V_counter n -> [ name; "counter"; string_of_int n; ""; ""; ""; "" ]
        | M.V_gauge { value; vmax } ->
            [ name; "gauge"; fmt_metric value; "max=" ^ fmt_metric vmax; ""; ""; "" ]
        | M.V_hist { count; mean; p50; p95; p99; _ } ->
            [
              name;
              "hist";
              string_of_int count;
              "mean=" ^ fmt_metric mean;
              "p50=" ^ fmt_metric p50;
              "p95=" ^ fmt_metric p95;
              "p99=" ^ fmt_metric p99;
            ])
      (M.dump mx)
  in
  if rows <> [] then
    print_kv_table ~title
      ~header:[ "name"; "kind"; "count/value"; ""; ""; ""; "" ]
      rows
