(** Rendering of benchmark output: one aligned text table per paper
    figure (x column + one column per series), plus optional CSV dumps
    for external plotting. *)

type series = { label : string; points : (int * float) list }
(** [points] are (x, y); x is usually a message size in bytes. *)

val human_bytes : int -> string
(** 1024 -> "1K", 1048576 -> "1M", 3000 -> "3000". *)

val render :
  ?ylabel:string -> title:string -> xlabel:string -> series list -> string
(** Merge the series on their x values (rows sorted ascending; missing
    points shown as "-") and render an aligned table with a title
    banner. *)

val print : ?ylabel:string -> title:string -> xlabel:string -> series list -> unit

val to_csv : path:string -> xlabel:string -> series list -> unit
(** Write the merged table as CSV. *)

val print_kv_table : title:string -> header:string list -> string list list -> unit
(** Free-form table (used for Table I). *)

val print_metrics : ?title:string -> Mpicd_obs.Metrics.t -> unit
(** One row per metric (counters, gauges with high-water marks,
    histograms with count/mean/p50/p95/p99).  Prints nothing when the
    registry is empty. *)
