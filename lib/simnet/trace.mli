(** Bounded event trace for simulation debugging.

    When attached to a transport context, protocol decisions (eager vs
    rendezvous, matches, unexpected arrivals, completions) are recorded
    with their virtual timestamps.  The buffer is a ring: old events are
    dropped, never reallocated, so tracing is safe to leave enabled in
    long simulations. *)

type t

type event = { time : float; category : string; message : string }

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events. *)

val record : t -> time:float -> category:string -> string -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val find : t -> category:string -> event list

val counts : t -> (string * int) list
(** Retained events per category, sorted by category name — a cheap
    protocol-decision summary (eager vs rendezvous vs unexpected) for
    reports. *)

val length : t -> int
val dropped : t -> int
(** Events lost to the ring bound. *)

val dropped_by_category : t -> (string * int) list
(** Events lost to the ring bound, per category, sorted by category —
    so a truncated trace shows {e what} it lost (e.g. all the early
    ["send"] decisions) instead of being silently partial.  [pp]
    includes this breakdown in its trailer line. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
