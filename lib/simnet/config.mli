(** Cost-model parameters for the simulated testbed.

    Defaults are calibrated to the paper's platform: two Dell R7525
    servers (EPYC 7232P) with ConnectX-5 InfiniBand at 100 Gb/s, UCX
    1.12 (16 KiB eager/rendezvous switch).  Every parameter is a plain
    field so benchmarks can sweep them for ablation studies. *)

type link = {
  latency_ns : float;  (** one-way wire latency *)
  ns_per_byte : float;  (** inverse bandwidth of the link *)
  per_msg_overhead_ns : float;  (** CPU posting cost per message per side *)
  eager_limit : int;  (** bytes; above this, contiguous sends use rendezvous *)
  rndv_handshake_ns : float;  (** extra RTS/CTS round-trip cost *)
  rndv_reg_ns : float;  (** memory-registration cost per rendezvous *)
  iov_entry_ns : float;  (** per scatter/gather entry overhead *)
  iov_max_entries : int;  (** hardware SGE list limit; longer lists chunk *)
  frag_size : int;  (** pipeline fragment size for GENERIC packing *)
}

type cpu = {
  memcpy_ns_per_byte : float;  (** pack/unpack/copy streaming rate *)
  alloc_base_ns : float;  (** fixed malloc cost *)
  alloc_ns_per_byte : float;  (** first-touch page-fault cost *)
  pack_cb_overhead_ns : float;  (** fixed cost of one pack/unpack callback *)
  pack_piece_ns : float;
      (** per-contiguous-piece cost of CPU pack/unpack loops (gathering
          many small blocks is slower than one streaming copy) *)
  ddt_block_ns : float;
      (** per-typemap-block cost of the classic datatype engine; this is
          what penalises gapped struct types (paper Fig. 5 vs Fig. 6) *)
  ddt_node_ns : float;
      (** per-descriptor-node (tree node or index-array entry) cost of
          committing / compiling a datatype; this is what the
          {!Mpicd_datatype.Normalize} rewrites reduce *)
  object_visit_ns : float;  (** per-object cost of the pickle traversal *)
}

type gpu = {
  pcie_ns_per_byte : float;  (** host<->device staging bandwidth *)
  kernel_launch_ns : float;  (** fixed cost of launching a pack kernel *)
  hbm_ns_per_byte : float;  (** on-device pack/copy streaming rate *)
  gpu_piece_ns : float;  (** per-contiguous-piece cost of a device pack kernel *)
}
(** Accelerator-memory model for the §VI device-buffer extension. *)

type t = {
  link : link;
  cpu : cpu;
  gpu : gpu;
  auto_normalize : bool;
      (** when true, typed sends/receives and pack/unpack commit the
          {!Mpicd_datatype.Normalize}d form of every datatype (TEMPI-style
          canonicalization); default [false] so baseline runs are
          bit-identical to the unnormalized engine *)
  retx_jitter : bool;
      (** when true, the reliable-delivery retransmit backoff applies
          decorrelated jitter (AWS-style: each sleep is drawn uniformly
          from [rto, 3 x previous sleep], capped at the deterministic
          exponential schedule's ceiling) from a dedicated RNG stream
          seeded by the fault plan, so concurrent retry storms
          de-synchronize while a given (seed, plan) replay stays
          deterministic; default [false] so fixed-seed replays are
          bit-identical to the fixed-backoff engine *)
  retx_backoff_max_ns : float;
      (** ceiling on a single retransmit-backoff sleep: the exponential
          schedule [rto * backoff^attempt] (jittered or not) is clamped
          to this value so long retry chains — straggler-stretched runs,
          large [backoff] exponents — cannot balloon or overflow virtual
          time; default [1e9] (1 s), far above any default schedule so
          existing replays are bit-identical *)
}

val default : t

val default_link : link
val default_cpu : cpu
val default_gpu : gpu

(** {1 Derived cost helpers} *)

val wire_time : link -> int -> float
(** [wire_time l bytes] = serialization time of [bytes] on the link
    (excluding base latency). *)

val memcpy_time : cpu -> int -> float
val alloc_time : cpu -> int -> float

val pp : Format.formatter -> t -> unit
