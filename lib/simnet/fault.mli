(** Deterministic, seed-driven fault injection for the simulated
    interconnect.

    A fault {e plan} describes what can go wrong on the wire — per-link
    drop / duplicate / corruption probabilities, extra delay (reorder
    pressure), periodic link flaps, and rank crashes at fixed virtual
    times — plus the reliability-protocol parameters the transport uses
    to recover (retransmission timeout, exponential backoff, retry cap).

    Plans are pure data: the same [(config, plan)] pair always replays
    the same faults, because every random decision is drawn from a
    dedicated splitmix64 stream seeded by the plan ([seed]) and {e not}
    from any generator the fault-free simulation uses.  Enabling faults
    therefore never perturbs the timing or ordering of the fault-free
    portions of a run. *)

(** Per-link misbehaviour.  All probabilities are in [0, 1] and apply
    independently to each wire fragment. *)
type link_plan = {
  drop_p : float;  (** fragment is lost in flight *)
  corrupt_p : float;  (** one bit of the fragment flips in flight *)
  dup_p : float;  (** fragment is delivered twice *)
  delay_p : float;  (** fragment suffers extra latency *)
  delay_ns : float;  (** maximum extra latency when delayed *)
  flap_period_ns : float;
      (** link availability period; [0.] means the link never flaps *)
  flap_down_ns : float;
      (** down-window at the start of each period (the link is down
          during [[k*period, k*period + down)] for every [k >= 0]) *)
}

val clean_link : link_plan
(** A perfectly reliable link (all probabilities and windows zero). *)

(** A targeted single-shot fault: the first wire attempt of one exact
    fragment of one exact message suffers the given kind.  The
    injection-point coordinate [(src, dst, mseq, frag)] is stable across
    runs because [mseq] is the context-wide message sequence number
    allocated deterministically at send time — the explorer derives
    these coordinates from a reference run's probe tap. *)
type inject_kind = Inj_drop | Inj_corrupt

type injection = {
  inj_kind : inject_kind;
  inj_src : int;  (** sending worker id *)
  inj_dst : int;  (** receiving worker id *)
  inj_mseq : int;  (** context-wide message sequence number *)
  inj_frag : int;  (** fragment index within the message ([0]-based) *)
}

(** A network partition: the ranks in [part_group] are cut off from the
    rest of the world during [[part_start_ns, part_start_ns +
    part_dur_ns)]; fragments crossing the boundary in either direction
    are dropped (and retried by the reliability protocol), links inside
    either side are untouched.  The cut heals by itself when the window
    closes. *)
type partition = {
  part_group : int list;
  part_start_ns : float;
  part_dur_ns : float;
}

type t = {
  seed : int;  (** seed of the dedicated fault-decision RNG stream *)
  link : link_plan;  (** default plan for every link *)
  overrides : ((int * int) * link_plan) list;
      (** per-[(src, dst)] worker-pair overrides of [link] *)
  crashes : (int * float) list;
      (** [(rank, t)]: worker [rank] is dead from virtual time [t] on *)
  injections : injection list;
      (** targeted single-shot faults at exact injection points *)
  partitions : partition list;  (** healing link-set cuts *)
  stragglers : (int * float) list;
      (** [(rank, factor)]: persistent CPU slowdown, [factor >= 1.];
          the rank stays alive but all its compute (pack, unpack,
          per-message overhead) takes [factor] times longer, stressing
          heartbeat / rendezvous / backoff timeouts *)
  max_retries : int;  (** retransmission attempts per fragment *)
  rto_ns : float;  (** initial retransmission timeout *)
  backoff : float;  (** RTO multiplier per successive retry *)
  rndv_timeout_ns : float;
      (** rendezvous-handshake timeout: a sent RTS that stays unmatched
          this long fails with [Timeout]; [0.] disables the timer *)
  hb_period_ns : float;
      (** failure-detector heartbeat period: a crashed rank is declared
          failed at the first heartbeat boundary after its crash time
          plus two link latencies (probe + missing reply); [0.] disables
          the detector (crashes then only surface through retry
          exhaustion on in-flight traffic) *)
}

val default : t
(** No faults, [seed = 1], [max_retries = 8], [rto_ns = 50_000.]
    (50 us), [backoff = 2.], handshake timeout disabled, heartbeat
    period 100 us. *)

val make :
  ?seed:int ->
  ?link:link_plan ->
  ?overrides:((int * int) * link_plan) list ->
  ?crashes:(int * float) list ->
  ?injections:injection list ->
  ?partitions:partition list ->
  ?stragglers:(int * float) list ->
  ?max_retries:int ->
  ?rto_ns:float ->
  ?backoff:float ->
  ?rndv_timeout_ns:float ->
  ?hb_period_ns:float ->
  unit ->
  t
(** [make ()] is {!default}; keyword arguments override fields. *)

val link_plan : t -> src:int -> dst:int -> link_plan
(** The effective plan for one direction of a worker pair. *)

val rto : t -> attempt:int -> float
(** [rto_ns *. backoff ^ attempt]: the wait before retransmission
    number [attempt + 1]. *)

val up_at : t -> src:int -> dst:int -> now:float -> float
(** Earliest virtual time [>= now] at which the link is up ([now]
    itself when the link is not flapping or currently up). *)

val crashed : t -> rank:int -> now:float -> bool
(** Linear scan of the plan's crash list.  Hot paths should use
    {!crashed_rt} on a started runtime instead, which answers from a
    per-rank schedule precomputed at {!start}. *)

val earliest_crashes : t -> (int * float) list
(** [(rank, time)] of each rank's earliest crash, ordered by time (ties
    by rank): the schedule the failure detector walks. *)

val crash_time : t -> rank:int -> float option
(** Earliest crash time of [rank] under this plan, if it crashes. *)

val partitioned : t -> src:int -> dst:int -> now:float -> bool
(** Whether the [src -> dst] link is cut by an active partition at
    [now] (exactly one endpoint inside the isolated group). *)

val straggle_factor : t -> rank:int -> float
(** The rank's CPU slowdown factor; exactly [1.] for non-stragglers, so
    multiplying by it is bit-identical to not multiplying at all. *)

val injected :
  t -> src:int -> dst:int -> mseq:int -> frag:int -> inject_kind option
(** The targeted fault registered for this exact fragment, if any.
    Applies only to a fragment's first wire attempt; retransmissions
    are never re-injected. *)

(** {1 Runtime: plan + dedicated decision stream} *)

(** The fate of one wire fragment.  Decisions are mutually independent;
    the transport applies them in the order drop > corrupt > dup. *)
type fate = {
  f_drop : bool;
  f_corrupt : bool;
  f_dup : bool;
  f_delay_ns : float;  (** extra in-flight latency, [0.] if none *)
}

(** One observed fault-injectable wire event, reported through the
    probe tap of a reference run.  [(pb_src, pb_dst, pb_mseq, pb_frag)]
    is the stable injection-point coordinate {!injection} targets;
    [pb_time] anchors crash / partition candidate windows. *)
type probe_kind = Pb_frag  (** first wire attempt of a data fragment *)
  | Pb_ack  (** acknowledgement completing a reliable transfer *)

type probe = {
  pb_kind : probe_kind;
  pb_src : int;
  pb_dst : int;
  pb_mseq : int;
  pb_frag : int;  (** [-1] for {!Pb_ack} *)
  pb_len : int;
  pb_time : float;
}

type runtime
(** A plan paired with its decision stream.  Two runtimes started from
    equal plans draw identical decision sequences. *)

val start : t -> runtime
val plan : runtime -> t

val set_tap : runtime -> (probe -> unit) option -> unit
(** Install (or clear) the probe tap.  The transport reports every
    first-attempt fragment send and every completing ack through it;
    taps observe, they must not mutate simulation state. *)

val notify_tap : runtime -> probe -> unit
(** Used by the transport; no-op when no tap is installed. *)

val crashed_rt : runtime -> rank:int -> now:float -> bool
(** O(1) equivalent of {!crashed}, answering from the per-rank earliest
    crash schedule built once at {!start}. *)

val fate : runtime -> src:int -> dst:int -> fate
(** Draw the fate of the next fragment on [src -> dst].  Always
    consumes the same number of stream values regardless of outcome, so
    decision sequences are stable under plan-probability changes. *)

val corrupt_bit : runtime -> len:int -> int * int
(** [(byte, bit)] position of an in-flight single-bit flip in a
    fragment of [len] bytes ([len >= 1]). *)

(** {1 Plan strings}

    The [--faults] CLI flag and the chaos runner describe plans as
    comma-separated [key=value] lists, e.g.
    ["seed=42,drop=0.05,corrupt=0.01,retries=8,rto=50000"].  Keys:
    [seed], [drop], [corrupt], [dup], [delay_p], [delay] (ns),
    [flap=PERIOD/DOWN] (ns), [crash=RANK\@TIME] (repeatable),
    [part=R1.R2\@START+DUR] (repeatable; ranks [R1.R2...] isolated
    during [[START, START+DUR)]), [straggle=RANK\@FACTOR] (repeatable,
    [FACTOR >= 1]), [inj=KIND:SRC.DST.MSEQ.FRAG] (repeatable,
    [KIND in {drop, corrupt}]; targeted first-attempt fault at one
    injection point), [retries], [rto] (ns), [backoff], [rndv_timeout]
    (ns), [hb] (ns, the failure-detector heartbeat period).  Per-link
    overrides have no string syntax; build them with {!make}. *)

val of_string : string -> (t, string) result
val to_string : t -> string
(** Canonical plan string; [of_string (to_string t) = Ok t] for plans
    without overrides. *)

val pp : Format.formatter -> t -> unit
