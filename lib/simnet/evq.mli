(** High-throughput event queue for the simulation engine.

    A calendar queue (Brown 1988) over parallel unboxed arrays,
    ordered by [(time, seq)] — the same total order as the reference
    binary heap in {!Heap}: the sequence number breaks ties so that
    events scheduled earlier at the same timestamp pop first.  Equal
    times always hash to the same bucket and in-bucket lists are
    totally ordered, so the pop order of any push/pop interleaving is
    {e identical} to {!Heap}'s — the differential property pinned in
    [test_simnet.ml].

    Performance contract (the reason this module exists — see
    [docs/PERFORMANCE.md], "Engine internals & topology model"):
    - O(1) amortized push and pop: events hash by timestamp into
      buckets about one event wide, so a push is usually a tail append
      (the simulation schedules forward in time) and a pop scans about
      one bucket — no O(log n) sift at all;
    - keys live in a [float array], so they are stored unboxed and
      compared with contiguous loads ({!Heap} chases
      option → record → boxed-float indirections per comparison and
      allocates on every push {e and} pop);
    - entry ids are recycled in place: a steady-state simulation
      (push/pop balanced) allocates nothing on the hot path — the
      arrays only grow on resize, they never churn;
    - {!min_time} / {!pop_min} allocate nothing (no option or tuple
      boxing), unlike the compatibility {!pop}; a {!min_time}
      immediately followed by {!pop_min} performs a single bucket
      scan (the located entry is cached).

    Times must be non-negative and finite — the engine guarantees this
    (the virtual clock starts at zero and delays are validated).

    (A pooled pairing heap and an implicit 4-ary heap were prototyped
    first; the pairing heap {e lost} to the seed binary heap on hold
    workloads — cache-hostile pointer chasing and per-node boxed keys
    — and the 4-ary heap plateaued at ~3x, stuck on data-dependent
    branch mispredicts in the child scan.  The calendar queue's
    branches are predictable, which is where the rest of the speedup
    comes from; [bench/bench_sim.ml] guards the resulting
    throughput.) *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert; O(1) amortized (a tail append into the target bucket for
    keys at or past the bucket's horizon — the common case),
    allocation-free unless the backing arrays must grow or the bucket
    calendar resizes. *)

val min_time : 'a t -> float
(** Time of the minimum entry without removing it; non-allocating.
    @raise Invalid_argument on an empty queue. *)

val pop_min : 'a t -> 'a
(** Remove the minimum entry and return its value; non-allocating in
    steady state (the freed entry is reused by later pushes).
    @raise Invalid_argument on an empty queue. *)

val pop : 'a t -> (float * int * 'a) option
(** Compatibility interface matching {!Heap.pop}; allocates the result
    box.  Tests and the differential property use this. *)

val peek_time : 'a t -> float option
(** Compatibility interface matching {!Heap.peek_time}. *)

(** {1 Engine-overhead accounting}

    Monotone counters over the queue's lifetime, feeding the
    [events_scheduled_total] / [events_pooled_reuses] /
    [max_live_events] Stats counters and Obs metrics. *)

val pushes : 'a t -> int
(** Total number of [push] calls. *)

val reuses : 'a t -> int
(** How many pushes were served by already-allocated entry storage
    (everything except the pushes that forced the backing arrays to
    grow). *)

val max_live : 'a t -> int
(** High-water mark of simultaneously queued events. *)
