type link_plan = {
  drop_p : float;
  corrupt_p : float;
  dup_p : float;
  delay_p : float;
  delay_ns : float;
  flap_period_ns : float;
  flap_down_ns : float;
}

let clean_link =
  {
    drop_p = 0.;
    corrupt_p = 0.;
    dup_p = 0.;
    delay_p = 0.;
    delay_ns = 0.;
    flap_period_ns = 0.;
    flap_down_ns = 0.;
  }

type inject_kind = Inj_drop | Inj_corrupt

type injection = {
  inj_kind : inject_kind;
  inj_src : int;
  inj_dst : int;
  inj_mseq : int;
  inj_frag : int;
}

type partition = {
  part_group : int list;
  part_start_ns : float;
  part_dur_ns : float;
}

type t = {
  seed : int;
  link : link_plan;
  overrides : ((int * int) * link_plan) list;
  crashes : (int * float) list;
  injections : injection list;
  partitions : partition list;
  stragglers : (int * float) list;
  max_retries : int;
  rto_ns : float;
  backoff : float;
  rndv_timeout_ns : float;
  hb_period_ns : float;
}

let default =
  {
    seed = 1;
    link = clean_link;
    overrides = [];
    crashes = [];
    injections = [];
    partitions = [];
    stragglers = [];
    max_retries = 8;
    rto_ns = 50_000.;
    backoff = 2.;
    rndv_timeout_ns = 0.;
    hb_period_ns = 100_000.;
  }

let make ?(seed = default.seed) ?(link = default.link) ?(overrides = [])
    ?(crashes = []) ?(injections = []) ?(partitions = []) ?(stragglers = [])
    ?(max_retries = default.max_retries) ?(rto_ns = default.rto_ns)
    ?(backoff = default.backoff)
    ?(rndv_timeout_ns = default.rndv_timeout_ns)
    ?(hb_period_ns = default.hb_period_ns) () =
  {
    seed;
    link;
    overrides;
    crashes;
    injections;
    partitions;
    stragglers;
    max_retries;
    rto_ns;
    backoff;
    rndv_timeout_ns;
    hb_period_ns;
  }

let link_plan t ~src ~dst =
  match List.assoc_opt (src, dst) t.overrides with
  | Some lp -> lp
  | None -> t.link

let rto t ~attempt = t.rto_ns *. (t.backoff ** float_of_int attempt)

let up_at t ~src ~dst ~now =
  let lp = link_plan t ~src ~dst in
  if lp.flap_period_ns <= 0. || lp.flap_down_ns <= 0. then now
  else
    let phase = Float.rem now lp.flap_period_ns in
    if phase < lp.flap_down_ns then now -. phase +. lp.flap_down_ns else now

let crashed t ~rank ~now =
  List.exists (fun (r, t0) -> r = rank && now >= t0) t.crashes

(* Earliest crash time per rank, ordered by time (ties by rank).  A rank
   listed twice dies at its earliest entry; later entries are redundant. *)
let earliest_crashes t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r, t0) ->
      match Hashtbl.find_opt tbl r with
      | Some t1 when t1 <= t0 -> ()
      | _ -> Hashtbl.replace tbl r t0)
    t.crashes;
  Hashtbl.fold (fun r t0 acc -> (r, t0) :: acc) tbl []
  |> List.sort (fun (r1, t1) (r2, t2) -> compare (t1, r1) (t2, r2))

let crash_time t ~rank =
  List.assoc_opt rank (earliest_crashes t)

(* A partition cuts every link whose endpoints fall on opposite sides of
   the group boundary; traffic inside the isolated group (and inside the
   rest of the world) is untouched.  Partitions are deterministic drops,
   not flap-style waits, so they burn retransmission attempts and stress
   the backoff schedule the way a real cut would. *)
let partitioned t ~src ~dst ~now =
  t.partitions <> []
  && List.exists
       (fun p ->
         now >= p.part_start_ns
         && now < p.part_start_ns +. p.part_dur_ns
         && List.mem src p.part_group <> List.mem dst p.part_group)
       t.partitions

(* Per-rank CPU slowdown factor; exactly [1.] when the rank is not a
   straggler so fault-free arithmetic is bit-identical ([x *. 1. = x]). *)
let straggle_factor t ~rank =
  match List.assoc_opt rank t.stragglers with Some f -> f | None -> 1.

let injected t ~src ~dst ~mseq ~frag =
  if t.injections = [] then None
  else
    List.find_map
      (fun i ->
        if
          i.inj_src = src && i.inj_dst = dst && i.inj_mseq = mseq
          && i.inj_frag = frag
        then Some i.inj_kind
        else None)
      t.injections

type fate = {
  f_drop : bool;
  f_corrupt : bool;
  f_dup : bool;
  f_delay_ns : float;
}

type probe_kind = Pb_frag | Pb_ack

type probe = {
  pb_kind : probe_kind;
  pb_src : int;
  pb_dst : int;
  pb_mseq : int;
  pb_frag : int;
  pb_len : int;
  pb_time : float;
}

type runtime = {
  r_plan : t;
  r_rng : Rng.t;
  r_crash : (int, float) Hashtbl.t;
      (* per-rank earliest crash time, precomputed at [start] so the
         per-fragment liveness check is O(1) instead of O(plan crashes) *)
  mutable r_tap : (probe -> unit) option;
}

let start p =
  let r_crash = Hashtbl.create (List.length p.crashes) in
  List.iter (fun (r, t0) -> Hashtbl.replace r_crash r t0) (earliest_crashes p);
  { r_plan = p; r_rng = Rng.create p.seed; r_crash; r_tap = None }

let set_tap r f = r.r_tap <- f
let notify_tap r pb = match r.r_tap with None -> () | Some f -> f pb

let plan r = r.r_plan

let crashed_rt r ~rank ~now =
  match Hashtbl.find_opt r.r_crash rank with
  | Some t0 -> now >= t0
  | None -> false

(* Always five draws per fragment so the decision sequence stays
   aligned whichever branches fire. *)
let fate r ~src ~dst =
  let lp = link_plan r.r_plan ~src ~dst in
  let d_drop = Rng.float r.r_rng 1.0 in
  let d_corrupt = Rng.float r.r_rng 1.0 in
  let d_dup = Rng.float r.r_rng 1.0 in
  let d_delay = Rng.float r.r_rng 1.0 in
  let d_mag = Rng.float r.r_rng 1.0 in
  {
    f_drop = d_drop < lp.drop_p;
    f_corrupt = d_corrupt < lp.corrupt_p;
    f_dup = d_dup < lp.dup_p;
    f_delay_ns = (if d_delay < lp.delay_p then d_mag *. lp.delay_ns else 0.);
  }

let corrupt_bit r ~len = (Rng.int r.r_rng (max 1 len), Rng.int r.r_rng 8)

(* --- plan strings --- *)

let to_string t =
  let b = Buffer.create 128 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "seed=%d" t.seed;
  let l = t.link in
  if l.drop_p > 0. then addf ",drop=%g" l.drop_p;
  if l.corrupt_p > 0. then addf ",corrupt=%g" l.corrupt_p;
  if l.dup_p > 0. then addf ",dup=%g" l.dup_p;
  if l.delay_p > 0. then addf ",delay_p=%g" l.delay_p;
  if l.delay_ns > 0. then addf ",delay=%g" l.delay_ns;
  if l.flap_period_ns > 0. then
    addf ",flap=%g/%g" l.flap_period_ns l.flap_down_ns;
  List.iter (fun (r, at) -> addf ",crash=%d@%g" r at) t.crashes;
  List.iter
    (fun p ->
      addf ",part=%s@%g+%g"
        (String.concat "." (List.map string_of_int p.part_group))
        p.part_start_ns p.part_dur_ns)
    t.partitions;
  List.iter (fun (r, f) -> addf ",straggle=%d@%g" r f) t.stragglers;
  List.iter
    (fun i ->
      addf ",inj=%s:%d.%d.%d.%d"
        (match i.inj_kind with Inj_drop -> "drop" | Inj_corrupt -> "corrupt")
        i.inj_src i.inj_dst i.inj_mseq i.inj_frag)
    t.injections;
  addf ",retries=%d" t.max_retries;
  addf ",rto=%g" t.rto_ns;
  addf ",backoff=%g" t.backoff;
  if t.rndv_timeout_ns > 0. then addf ",rndv_timeout=%g" t.rndv_timeout_ns;
  if t.hb_period_ns <> default.hb_period_ns then addf ",hb=%g" t.hb_period_ns;
  Buffer.contents b

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_float key v =
    match float_of_string_opt v with
    | Some f when f >= 0. -> Ok f
    | _ -> err "fault plan: %s expects a non-negative number, got %S" key v
  in
  let parse_int key v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> err "fault plan: %s expects an integer, got %S" key v
  in
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  List.fold_left
    (fun acc field ->
      let* t = acc in
      match String.index_opt field '=' with
      | None -> err "fault plan: expected key=value, got %S" field
      | Some i -> (
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          let set_link f = Ok { t with link = f t.link } in
          match key with
          | "seed" ->
              let* n = parse_int key v in
              Ok { t with seed = n }
          | "drop" ->
              let* p = parse_float key v in
              set_link (fun l -> { l with drop_p = p })
          | "corrupt" ->
              let* p = parse_float key v in
              set_link (fun l -> { l with corrupt_p = p })
          | "dup" ->
              let* p = parse_float key v in
              set_link (fun l -> { l with dup_p = p })
          | "delay_p" ->
              let* p = parse_float key v in
              set_link (fun l -> { l with delay_p = p })
          | "delay" ->
              let* ns = parse_float key v in
              set_link (fun l -> { l with delay_ns = ns })
          | "flap" -> (
              match String.split_on_char '/' v with
              | [ p; d ] ->
                  let* period = parse_float "flap period" p in
                  let* down = parse_float "flap down" d in
                  if down > period then
                    err "fault plan: flap down-window %g exceeds period %g" down
                      period
                  else
                    set_link (fun l ->
                        { l with flap_period_ns = period; flap_down_ns = down })
              | _ -> err "fault plan: flap expects PERIOD/DOWN, got %S" v)
          | "crash" -> (
              match String.index_opt v '@' with
              | None -> err "fault plan: crash expects RANK@TIME, got %S" v
              | Some j ->
                  let* rank = parse_int "crash rank" (String.sub v 0 j) in
                  let* at =
                    parse_float "crash time"
                      (String.sub v (j + 1) (String.length v - j - 1))
                  in
                  Ok { t with crashes = t.crashes @ [ (rank, at) ] })
          | "part" -> (
              (* part=R1.R2@START+DUR: ranks R1.R2... are cut off from
                 the rest of the world during [START, START+DUR). *)
              match String.index_opt v '@' with
              | None -> err "fault plan: part expects GROUP@START+DUR, got %S" v
              | Some j -> (
                  let group_s = String.sub v 0 j in
                  let win = String.sub v (j + 1) (String.length v - j - 1) in
                  match String.index_opt win '+' with
                  | None ->
                      err "fault plan: part expects GROUP@START+DUR, got %S" v
                  | Some k ->
                      let* start =
                        parse_float "part start" (String.sub win 0 k)
                      in
                      let* dur =
                        parse_float "part duration"
                          (String.sub win (k + 1) (String.length win - k - 1))
                      in
                      let members =
                        String.split_on_char '.' group_s
                        |> List.filter (fun m -> m <> "")
                      in
                      if members = [] then
                        err "fault plan: part group is empty in %S" v
                      else
                        let* group =
                          List.fold_left
                            (fun acc m ->
                              let* rs = acc in
                              let* r = parse_int "part rank" m in
                              Ok (rs @ [ r ]))
                            (Ok []) members
                        in
                        Ok
                          {
                            t with
                            partitions =
                              t.partitions
                              @ [
                                  {
                                    part_group = group;
                                    part_start_ns = start;
                                    part_dur_ns = dur;
                                  };
                                ];
                          }))
          | "straggle" -> (
              match String.index_opt v '@' with
              | None -> err "fault plan: straggle expects RANK@FACTOR, got %S" v
              | Some j ->
                  let* rank = parse_int "straggle rank" (String.sub v 0 j) in
                  let* f =
                    parse_float "straggle factor"
                      (String.sub v (j + 1) (String.length v - j - 1))
                  in
                  if f < 1. then
                    err "fault plan: straggle factor must be >= 1, got %g" f
                  else
                    Ok { t with stragglers = t.stragglers @ [ (rank, f) ] })
          | "inj" -> (
              match String.index_opt v ':' with
              | None ->
                  err "fault plan: inj expects KIND:SRC.DST.MSEQ.FRAG, got %S" v
              | Some j -> (
                  let* kind =
                    match String.sub v 0 j with
                    | "drop" -> Ok Inj_drop
                    | "corrupt" -> Ok Inj_corrupt
                    | k -> err "fault plan: unknown injection kind %S" k
                  in
                  let coords = String.sub v (j + 1) (String.length v - j - 1) in
                  match String.split_on_char '.' coords with
                  | [ s; d; m; f ] ->
                      let* src = parse_int "inj src" s in
                      let* dst = parse_int "inj dst" d in
                      let* mseq = parse_int "inj mseq" m in
                      let* frag = parse_int "inj frag" f in
                      Ok
                        {
                          t with
                          injections =
                            t.injections
                            @ [
                                {
                                  inj_kind = kind;
                                  inj_src = src;
                                  inj_dst = dst;
                                  inj_mseq = mseq;
                                  inj_frag = frag;
                                };
                              ];
                        }
                  | _ ->
                      err
                        "fault plan: inj expects KIND:SRC.DST.MSEQ.FRAG, got %S"
                        v))
          | "retries" ->
              let* n = parse_int key v in
              if n < 0 then err "fault plan: retries must be >= 0"
              else Ok { t with max_retries = n }
          | "rto" ->
              let* ns = parse_float key v in
              Ok { t with rto_ns = ns }
          | "backoff" ->
              let* f = parse_float key v in
              if f < 1. then err "fault plan: backoff must be >= 1"
              else Ok { t with backoff = f }
          | "rndv_timeout" ->
              let* ns = parse_float key v in
              Ok { t with rndv_timeout_ns = ns }
          | "hb" ->
              let* ns = parse_float key v in
              Ok { t with hb_period_ns = ns }
          | _ -> err "fault plan: unknown key %S" key))
    (Ok default) fields

let pp ppf t = Format.pp_print_string ppf (to_string t)
