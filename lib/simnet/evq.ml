(* Calendar queue (Brown 1988) over parallel unboxed arrays.

   Time is hashed into an array of buckets, each [width] wide in
   virtual time: an event at time [T] lives in bucket
   [floor(T / width) mod nbuckets], in a singly-linked list kept
   sorted by [(time, seq)].  A pop scans forward from the current
   virtual bucket [cur_vb]; bucket windows partition the time axis, so
   the first head found inside its window is the global minimum.  Both
   operations are O(1) amortized: pushes land at the list tail in the
   common case (the simulation schedules forward in time, and within a
   timestamp [seq] is increasing), and pops scan
   ~[nbuckets / len] buckets, which resizing keeps near one.

   Storage is parallel arrays indexed by entry id — [times] (flat
   float storage: a comparison is two contiguous loads), [seqs]
   (tie-break), [nexts] (intrusive list link), [slots] (the values).
   Entry ids are recycled through [free_stack]; a steady-state
   simulation (push/pop balanced) allocates nothing on the hot path.

   Comparison loops are written out inline rather than factored into
   helpers: without cross-module inlining the native compiler boxes
   float arguments at every call boundary, so a helper taking the key
   being inserted would allocate on each call — measured at 3x
   whole-queue throughput on the hold benchmark.  Keys stay in local
   float variables (registers) instead.

   Resizing: when [len] outgrows [2 * nbuckets] (or falls below
   [nbuckets / 8]) the bucket array is rebuilt at ~[len] buckets with
   [width] re-estimated as the live events' time span divided by their
   count — so a pop's forward scan meets about one event per bucket
   regardless of scale.  Far-future outliers (e.g. timeout sentinels)
   would widen that estimate; they are clamped to a terminal virtual
   bucket and recovered by the direct-search fallback, which also
   bounds any pop at O(nbuckets) when the window scan wraps a whole
   year without finding a head.

   Determinism: bucket selection is a pure function of the key and the
   (deterministically evolved) width, in-bucket lists are totally
   ordered by [(time, seq)], and equal times always share a bucket —
   so the pop order of any push/pop interleaving is identical to the
   reference binary heap's, which the differential property in
   [test_simnet.ml] pins.

   Safety of the [unsafe_get]/[unsafe_set] accesses: entry ids are
   bounded by [nfree + len = nslots <= Array.length times] (all five
   entry arrays grow in lockstep), bucket indices are masked by
   [nbuckets - 1], and list links are entry ids or -1 (checked before
   use). *)

type 'a t = {
  (* entry storage, indexed by entry id *)
  mutable times : float array;  (* key: virtual time *)
  mutable seqs : int array;  (* key: scheduling order, breaks ties *)
  mutable nexts : int array;  (* intrusive bucket-list link; -1 = end *)
  mutable slots : 'a array;  (* stable value storage *)
  mutable free_stack : int array;  (* recycled entry ids *)
  mutable nfree : int;
  mutable nslots : int;  (* entry ids ever handed out *)
  (* calendar *)
  mutable heads : int array;  (* first entry id per bucket; -1 = empty *)
  mutable tails : int array;  (* last entry id per bucket; -1 = empty *)
  mutable nbuckets : int;  (* power of two *)
  mutable mask : int;  (* nbuckets - 1 *)
  mutable width : float;  (* bucket width in virtual time *)
  mutable inv_width : float;  (* 1. /. width *)
  mutable cur_vb : int;  (* scan cursor: current virtual bucket *)
  mutable len : int;
  mutable peeked : int;  (* entry found by the last scan; -1 = stale *)
  mutable peeked_b : int;  (* its bucket index *)
  (* counters *)
  mutable pushes : int;
  mutable reuses : int;
  mutable max_live : int;
}

let initial_capacity = 256
let initial_buckets = 256

(* Clamp for the virtual-bucket computation: beyond this the
   float-to-int conversion could overflow, so everything maps to one
   terminal bucket and is found by the direct-search fallback. *)
let max_vbf = 4.0e15

let vbucket t time =
  let vbf = time *. t.inv_width in
  if vbf >= max_vbf then int_of_float max_vbf else int_of_float vbf

let create () =
  {
    times = Array.make initial_capacity 0.;
    seqs = Array.make initial_capacity 0;
    nexts = Array.make initial_capacity (-1);
    slots = Array.make initial_capacity (Obj.magic 0);
    free_stack = Array.make initial_capacity 0;
    nfree = 0;
    nslots = 0;
    heads = Array.make initial_buckets (-1);
    tails = Array.make initial_buckets (-1);
    nbuckets = initial_buckets;
    mask = initial_buckets - 1;
    width = 1.0;
    inv_width = 1.0;
    cur_vb = 0;
    len = 0;
    peeked = -1;
    peeked_b = -1;
    pushes = 0;
    reuses = 0;
    max_live = 0;
  }

let is_empty t = t.len = 0
let size t = t.len
let pushes t = t.pushes
let reuses t = t.reuses
let max_live t = t.max_live

let grow_entries t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let seqs = Array.make (2 * cap) 0 in
  let nexts = Array.make (2 * cap) (-1) in
  let slots = Array.make (2 * cap) (Obj.magic 0) in
  let free_stack = Array.make (2 * cap) 0 in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.nexts 0 nexts 0 cap;
  Array.blit t.slots 0 slots 0 cap;
  Array.blit t.free_stack 0 free_stack 0 t.nfree;
  t.times <- times;
  t.seqs <- seqs;
  t.nexts <- nexts;
  t.slots <- slots;
  t.free_stack <- free_stack

(* Link entry [e] (with key [time], [seq]) into bucket [b], keeping
   the list sorted by [(time, seq)].  The tail check comes first: the
   engine schedules forward in time, so appends dominate. *)
let bucket_insert t b e time seq =
  let tl = Array.unsafe_get t.tails b in
  if tl < 0 then begin
    Array.unsafe_set t.heads b e;
    Array.unsafe_set t.tails b e
  end
  else begin
    let tt = Array.unsafe_get t.times tl in
    if time > tt || (time = tt && seq > Array.unsafe_get t.seqs tl) then begin
      Array.unsafe_set t.nexts tl e;
      Array.unsafe_set t.tails b e
    end
    else begin
      let hd = Array.unsafe_get t.heads b in
      let ht = Array.unsafe_get t.times hd in
      if time < ht || (time = ht && seq < Array.unsafe_get t.seqs hd) then begin
        Array.unsafe_set t.nexts e hd;
        Array.unsafe_set t.heads b e
      end
      else begin
        (* walk to the last node whose key precedes [(time, seq)] *)
        let p = ref hd in
        let continue = ref true in
        while !continue do
          let nx = Array.unsafe_get t.nexts !p in
          if nx < 0 then continue := false
          else begin
            let nt = Array.unsafe_get t.times nx in
            if nt > time || (nt = time && Array.unsafe_get t.seqs nx > seq)
            then continue := false
            else p := nx
          end
        done;
        Array.unsafe_set t.nexts e (Array.unsafe_get t.nexts !p);
        Array.unsafe_set t.nexts !p e
      end
    end
  end

(* Rebuild the bucket array at ~[len] buckets, re-estimating [width]
   from the live events' span.  O(len + nbuckets); the thresholds in
   [push]/[pop_min] make it amortized O(1). *)
let resize t =
  let n = t.len in
  let entries = Array.make (max n 1) 0 in
  let k = ref 0 in
  let tmin = ref infinity and tmax = ref neg_infinity in
  for b = 0 to t.nbuckets - 1 do
    let e = ref t.heads.(b) in
    while !e >= 0 do
      entries.(!k) <- !e;
      incr k;
      let tt = t.times.(!e) in
      if tt < !tmin then tmin := tt;
      if tt > !tmax then tmax := tt;
      e := t.nexts.(!e)
    done
  done;
  let nb = ref initial_buckets in
  while !nb < n do
    nb := !nb * 2
  done;
  t.nbuckets <- !nb;
  t.mask <- !nb - 1;
  t.heads <- Array.make !nb (-1);
  t.tails <- Array.make !nb (-1);
  let span = !tmax -. !tmin in
  let w = if n <= 1 || span <= 0. then 1.0 else span /. float_of_int n in
  let w = if w < 1e-9 then 1e-9 else w in
  t.width <- w;
  t.inv_width <- 1. /. w;
  let entries = Array.sub entries 0 n in
  let cmp a b =
    let c = compare t.times.(a) t.times.(b) in
    if c <> 0 then c else compare t.seqs.(a) t.seqs.(b)
  in
  (* reinsert in sorted order so every insert is a tail append *)
  Array.sort cmp entries;
  if n > 0 then t.cur_vb <- vbucket t t.times.(entries.(0));
  Array.iter
    (fun e ->
      t.nexts.(e) <- -1;
      let time = t.times.(e) in
      bucket_insert t (vbucket t time land t.mask) e time t.seqs.(e))
    entries

let push t ~time ~seq v =
  if t.nfree = 0 && t.nslots = Array.length t.times then begin
    grow_entries t;
    t.pushes <- t.pushes + 1
  end
  else begin
    t.pushes <- t.pushes + 1;
    t.reuses <- t.reuses + 1
  end;
  t.peeked <- -1;
  let e =
    if t.nfree > 0 then begin
      t.nfree <- t.nfree - 1;
      Array.unsafe_get t.free_stack t.nfree
    end
    else begin
      let s = t.nslots in
      t.nslots <- s + 1;
      s
    end
  in
  Array.unsafe_set t.times e time;
  Array.unsafe_set t.seqs e seq;
  Array.unsafe_set t.nexts e (-1);
  Array.unsafe_set t.slots e v;
  let vb = vbucket t time in
  bucket_insert t (vb land t.mask) e time seq;
  (* an event behind the scan cursor must pull it back, or it would be
     missed until a year wrap forces the direct search *)
  if t.len = 0 || vb < t.cur_vb then t.cur_vb <- vb;
  t.len <- t.len + 1;
  if t.len > t.max_live then t.max_live <- t.len;
  if t.len > 2 * t.nbuckets then resize t

(* Locate the minimum entry; caches it in [peeked]/[peeked_b] so a
   [min_time] followed by [pop_min] scans once. *)
let scan t =
  let found = ref (-1) and fb = ref (-1) in
  let scanned = ref 0 in
  while !found < 0 do
    if !scanned > t.nbuckets then begin
      (* wrapped a whole year without a head in its window: fall back
         to a direct search over bucket heads (each is its bucket's
         minimum, so the least head is the global minimum) *)
      let best = ref (-1) and best_b = ref (-1) in
      for b = 0 to t.nbuckets - 1 do
        let h = t.heads.(b) in
        if h >= 0 then
          if !best < 0 then begin
            best := h;
            best_b := b
          end
          else begin
            let ht = t.times.(h) and bt = t.times.(!best) in
            if ht < bt || (ht = bt && t.seqs.(h) < t.seqs.(!best)) then begin
              best := h;
              best_b := b
            end
          end
      done;
      t.cur_vb <- vbucket t t.times.(!best);
      found := !best;
      fb := !best_b
    end
    else begin
      let b = t.cur_vb land t.mask in
      let h = Array.unsafe_get t.heads b in
      (* a head inside the cursor's window is the global minimum:
         windows below [cur_vb] have been drained (or the cursor was
         pulled back by [push]), and within a window only this bucket
         can hold events *)
      if
        h >= 0
        && Array.unsafe_get t.times h < float_of_int (t.cur_vb + 1) *. t.width
      then begin
        found := h;
        fb := b
      end
      else begin
        t.cur_vb <- t.cur_vb + 1;
        incr scanned
      end
    end
  done;
  t.peeked <- !found;
  t.peeked_b <- !fb

let min_time t =
  if t.len = 0 then invalid_arg "Evq.min_time: empty queue";
  if t.peeked < 0 then scan t;
  Array.unsafe_get t.times t.peeked

let pop_min t =
  if t.len = 0 then invalid_arg "Evq.pop_min: empty queue";
  if t.peeked < 0 then scan t;
  let e = t.peeked and b = t.peeked_b in
  t.peeked <- -1;
  let nx = Array.unsafe_get t.nexts e in
  Array.unsafe_set t.heads b nx;
  if nx < 0 then Array.unsafe_set t.tails b (-1);
  let v = Array.unsafe_get t.slots e in
  Array.unsafe_set t.slots e (Obj.magic 0);
  Array.unsafe_set t.free_stack t.nfree e;
  t.nfree <- t.nfree + 1;
  t.len <- t.len - 1;
  if t.len * 8 < t.nbuckets && t.nbuckets > initial_buckets then resize t;
  v

let pop t =
  if t.len = 0 then None
  else begin
    if t.peeked < 0 then scan t;
    let time = t.times.(t.peeked) and seq = t.seqs.(t.peeked) in
    let v = pop_min t in
    Some (time, seq, v)
  end

let peek_time t = if t.len = 0 then None else Some (min_time t)
