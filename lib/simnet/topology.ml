(* Link graphs with deterministic routing and per-link serialization
   horizons.  See the interface for the model; the layout here packs
   every directed link into one flat [busy] array:

     [0 .. n-1]        rank up-links   (NIC -> first switch)
     [n .. 2n-1]       rank down-links (last switch -> NIC)
     [2n ..]           fabric links, per kind:
       fat-tree:  leaf l up-port p   at 2n + l*uplinks + p
                  leaf l down-port p at 2n + (nleaves + l)*uplinks + p
       dragonfly: global link k of ordered group pair (gs, gd)
                  at 2n + (gs*ngroups + gd)*global_links + k

   Routes cross at most four links, so the serialize path is a handful
   of array reads and writes — no per-message allocation. *)

type kind =
  | Switch
  | Fat_tree of { leaf_arity : int; uplinks : int }
  | Dragonfly of { group_size : int; global_links : int }

type t = {
  kind : kind;
  nranks : int;
  busy : float array;  (* per-link serialization horizon, virtual ns *)
  mutable congestion_events : int;
  mutable congestion_wait_ns : float;
}

let fabric_links kind ~nranks =
  match kind with
  | Switch -> 0
  | Fat_tree { leaf_arity; uplinks } ->
      let nleaves = (nranks + leaf_arity - 1) / leaf_arity in
      2 * nleaves * uplinks
  | Dragonfly { group_size; global_links } ->
      let ngroups = (nranks + group_size - 1) / group_size in
      ngroups * ngroups * global_links

let create kind ~nranks =
  if nranks < 1 then invalid_arg "Topology.create: nranks must be >= 1";
  (match kind with
  | Switch -> ()
  | Fat_tree { leaf_arity; uplinks } ->
      if leaf_arity < 1 || uplinks < 1 then
        invalid_arg "Topology.create: fat-tree needs leaf_arity, uplinks >= 1"
  | Dragonfly { group_size; global_links } ->
      if group_size < 1 || global_links < 1 then
        invalid_arg
          "Topology.create: dragonfly needs group_size, global_links >= 1");
  {
    kind;
    nranks;
    busy = Array.make ((2 * nranks) + fabric_links kind ~nranks) 0.;
    congestion_events = 0;
    congestion_wait_ns = 0.;
  }

let switch ~nranks = create Switch ~nranks

let fat_tree ?(leaf_arity = 16) ?(uplinks = 4) ~nranks () =
  create (Fat_tree { leaf_arity; uplinks }) ~nranks

let dragonfly ?(group_size = 32) ?(global_links = 2) ~nranks () =
  create (Dragonfly { group_size; global_links }) ~nranks

let of_string s ~nranks =
  match String.lowercase_ascii s with
  | "switch" -> switch ~nranks
  | "fattree" | "fat-tree" | "fat_tree" -> fat_tree ~nranks ()
  | "dragonfly" -> dragonfly ~nranks ()
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Topology.of_string: %S (expected switch, fattree or dragonfly)" s)

let kind t = t.kind

let kind_name t =
  match t.kind with
  | Switch -> "switch"
  | Fat_tree _ -> "fattree"
  | Dragonfly _ -> "dragonfly"

let nranks t = t.nranks
let links t = Array.length t.busy
let congestion_events t = t.congestion_events
let congestion_wait_ns t = t.congestion_wait_ns

let reset_counters t =
  t.congestion_events <- 0;
  t.congestion_wait_ns <- 0.

let check_rank t r who =
  if r < 0 || r >= t.nranks then
    invalid_arg
      (Printf.sprintf "Topology: %s rank %d outside modeled set [0..%d]" who r
         (t.nranks - 1))

(* The route as up to four link ids ([-1] = unused slot) plus the
   latency scale of its longest hop.  Pure in [(src, dst)]. *)
let route t ~src ~dst =
  let n = t.nranks in
  let up = src and down = n + dst in
  match t.kind with
  | Switch -> (up, down, -1, -1, 1.)
  | Fat_tree { leaf_arity; uplinks } ->
      let ls = src / leaf_arity and ld = dst / leaf_arity in
      if ls = ld then (up, down, -1, -1, 1.)
      else
        let nleaves = (n + leaf_arity - 1) / leaf_arity in
        let port = (src + dst) mod uplinks in
        let lup = (2 * n) + (ls * uplinks) + port in
        let ldown = (2 * n) + ((nleaves + ld) * uplinks) + port in
        (up, lup, ldown, down, 2.)
  | Dragonfly { group_size; global_links } ->
      let gs = src / group_size and gd = dst / group_size in
      if gs = gd then (up, down, -1, -1, 1.)
      else
        let ngroups = (n + group_size - 1) / group_size in
        let k = (src + dst) mod global_links in
        let glob = (2 * n) + (((gs * ngroups) + gd) * global_links) + k in
        (up, glob, down, -1, 3.)

let path_hops t ~src ~dst =
  check_rank t src "source";
  check_rank t dst "destination";
  if src = dst then 0
  else
    let _, _, l3, l4, _ = route t ~src ~dst in
    2 + (if l3 >= 0 then 1 else 0) + if l4 >= 0 then 1 else 0

let path_latency t ~latency_ns ~src ~dst =
  check_rank t src "source";
  check_rank t dst "destination";
  if src = dst then latency_ns
  else
    let _, _, _, _, scale = route t ~src ~dst in
    latency_ns *. scale

let serialize t ~ns_per_byte ~src ~dst ~bytes ~now =
  check_rank t src "source";
  check_rank t dst "destination";
  let ser = ns_per_byte *. float_of_int bytes in
  if src = dst then ser
  else begin
    let l1, l2, l3, l4, _ = route t ~src ~dst in
    let busy = t.busy in
    let horizon = Float.max busy.(l1) busy.(l2) in
    let horizon = if l3 >= 0 then Float.max horizon busy.(l3) else horizon in
    let horizon = if l4 >= 0 then Float.max horizon busy.(l4) else horizon in
    let start = Float.max now horizon in
    let fin = start +. ser in
    busy.(l1) <- fin;
    busy.(l2) <- fin;
    if l3 >= 0 then busy.(l3) <- fin;
    if l4 >= 0 then busy.(l4) <- fin;
    let wait = start -. now in
    if wait > 0. then begin
      t.congestion_events <- t.congestion_events + 1;
      t.congestion_wait_ns <- t.congestion_wait_ns +. wait
    end;
    wait +. ser
  end
