type t = {
  mutable messages_sent : int;
  mutable bytes_on_wire : int;
  mutable eager_messages : int;
  mutable rndv_messages : int;
  mutable iov_entries : int;
  mutable memcpys : int;
  mutable bytes_copied : int;
  mutable allocs : int;
  mutable bytes_allocated : int;
  mutable live_alloc_bytes : int;
  mutable peak_alloc_bytes : int;
  mutable pack_callbacks : int;
  mutable unpack_callbacks : int;
  mutable query_callbacks : int;
  mutable region_queries : int;
  mutable ddt_blocks_processed : int;
  mutable probes : int;
  (* reliability counters: all stay 0 unless a fault plan is attached *)
  mutable retransmits : int;
  mutable frags_dropped : int;
  mutable frags_corrupted : int;
  mutable frags_duplicated : int;
  mutable acks : int;
  mutable nacks : int;
  mutable iov_fallbacks : int;
  mutable flap_waits : int;
  mutable delivery_timeouts : int;
  mutable failures_detected : int;
  (* resilience counters: driven by explicit ULFM-style operations
     (revoke/shrink/agree) and by failure-triggered cancellation *)
  mutable ops_cancelled : int;
  mutable comm_revokes : int;
  mutable comm_shrinks : int;
  mutable comm_agreements : int;
  (* datatype pack-plan counters: compilation cache traffic and
     bounce-buffer recycling.  Host-side only — they never feed the
     virtual-time cost model. *)
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
  mutable bounce_reuses : int;
  (* checkpoint/restart counters: driven by the lib/restart runtime
     (plan-serialized snapshots, sender-based message logging, recovery
     rounds).  All stay 0 unless a checkpoint runtime is in use. *)
  mutable checkpoints_taken : int;
  mutable checkpoint_bytes : int;
  mutable buffers_restored : int;
  mutable msgs_logged : int;
  mutable msgs_replayed : int;
  mutable dups_suppressed : int;
  mutable recoveries : int;
  (* decorrelated-jitter draws on the retransmit backoff; stays 0
     unless [Config.retx_jitter] is on *)
  mutable jittered_backoffs : int;
  (* explorer fault-model counters: deterministic partition cuts and
     targeted single-shot injections; both stay 0 unless a plan with
     partitions/injections is attached *)
  mutable partition_drops : int;
  mutable injections_fired : int;
  (* engine counters: event-queue traffic of the simulation engine
     itself, for attributing scheduler overhead.  Populated only when a
     Stats sink is attached to the engine ([Engine.set_stats]). *)
  mutable events_scheduled_total : int;
  mutable events_pooled_reuses : int;
  mutable max_live_events : int;
}

let create () =
  {
    messages_sent = 0;
    bytes_on_wire = 0;
    eager_messages = 0;
    rndv_messages = 0;
    iov_entries = 0;
    memcpys = 0;
    bytes_copied = 0;
    allocs = 0;
    bytes_allocated = 0;
    live_alloc_bytes = 0;
    peak_alloc_bytes = 0;
    pack_callbacks = 0;
    unpack_callbacks = 0;
    query_callbacks = 0;
    region_queries = 0;
    ddt_blocks_processed = 0;
    probes = 0;
    retransmits = 0;
    frags_dropped = 0;
    frags_corrupted = 0;
    frags_duplicated = 0;
    acks = 0;
    nacks = 0;
    iov_fallbacks = 0;
    flap_waits = 0;
    delivery_timeouts = 0;
    failures_detected = 0;
    ops_cancelled = 0;
    comm_revokes = 0;
    comm_shrinks = 0;
    comm_agreements = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    bounce_reuses = 0;
    checkpoints_taken = 0;
    checkpoint_bytes = 0;
    buffers_restored = 0;
    msgs_logged = 0;
    msgs_replayed = 0;
    dups_suppressed = 0;
    recoveries = 0;
    jittered_backoffs = 0;
    partition_drops = 0;
    injections_fired = 0;
    events_scheduled_total = 0;
    events_pooled_reuses = 0;
    max_live_events = 0;
  }

let reset t =
  t.messages_sent <- 0;
  t.bytes_on_wire <- 0;
  t.eager_messages <- 0;
  t.rndv_messages <- 0;
  t.iov_entries <- 0;
  t.memcpys <- 0;
  t.bytes_copied <- 0;
  t.allocs <- 0;
  t.bytes_allocated <- 0;
  t.live_alloc_bytes <- 0;
  t.peak_alloc_bytes <- 0;
  t.pack_callbacks <- 0;
  t.unpack_callbacks <- 0;
  t.query_callbacks <- 0;
  t.region_queries <- 0;
  t.ddt_blocks_processed <- 0;
  t.probes <- 0;
  t.retransmits <- 0;
  t.frags_dropped <- 0;
  t.frags_corrupted <- 0;
  t.frags_duplicated <- 0;
  t.acks <- 0;
  t.nacks <- 0;
  t.iov_fallbacks <- 0;
  t.flap_waits <- 0;
  t.delivery_timeouts <- 0;
  t.failures_detected <- 0;
  t.ops_cancelled <- 0;
  t.comm_revokes <- 0;
  t.comm_shrinks <- 0;
  t.comm_agreements <- 0;
  t.plan_cache_hits <- 0;
  t.plan_cache_misses <- 0;
  t.bounce_reuses <- 0;
  t.checkpoints_taken <- 0;
  t.checkpoint_bytes <- 0;
  t.buffers_restored <- 0;
  t.msgs_logged <- 0;
  t.msgs_replayed <- 0;
  t.dups_suppressed <- 0;
  t.recoveries <- 0;
  t.jittered_backoffs <- 0;
  t.partition_drops <- 0;
  t.injections_fired <- 0;
  t.events_scheduled_total <- 0;
  t.events_pooled_reuses <- 0;
  t.max_live_events <- 0

let record_message t ~eager ~wire_bytes =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_on_wire <- t.bytes_on_wire + wire_bytes;
  if eager then t.eager_messages <- t.eager_messages + 1
  else t.rndv_messages <- t.rndv_messages + 1

let record_iov_entries t n = t.iov_entries <- t.iov_entries + n

let record_copy t bytes =
  t.memcpys <- t.memcpys + 1;
  t.bytes_copied <- t.bytes_copied + bytes

let record_alloc t bytes =
  t.allocs <- t.allocs + 1;
  t.bytes_allocated <- t.bytes_allocated + bytes;
  t.live_alloc_bytes <- t.live_alloc_bytes + bytes;
  if t.live_alloc_bytes > t.peak_alloc_bytes then
    t.peak_alloc_bytes <- t.live_alloc_bytes

let record_free t bytes =
  t.live_alloc_bytes <- t.live_alloc_bytes - bytes

let record_pack_cb t = t.pack_callbacks <- t.pack_callbacks + 1
let record_unpack_cb t = t.unpack_callbacks <- t.unpack_callbacks + 1
let record_query_cb t = t.query_callbacks <- t.query_callbacks + 1
let record_region_query t = t.region_queries <- t.region_queries + 1

let record_ddt_blocks t n =
  t.ddt_blocks_processed <- t.ddt_blocks_processed + n

let record_probe t = t.probes <- t.probes + 1

let record_retransmit t = t.retransmits <- t.retransmits + 1
let record_frag_drop t = t.frags_dropped <- t.frags_dropped + 1
let record_frag_corrupt t = t.frags_corrupted <- t.frags_corrupted + 1
let record_frag_dup t = t.frags_duplicated <- t.frags_duplicated + 1
let record_ack t = t.acks <- t.acks + 1
let record_nack t = t.nacks <- t.nacks + 1
let record_iov_fallback t = t.iov_fallbacks <- t.iov_fallbacks + 1
let record_flap_wait t = t.flap_waits <- t.flap_waits + 1
let record_delivery_timeout t = t.delivery_timeouts <- t.delivery_timeouts + 1
let record_failure_detected t = t.failures_detected <- t.failures_detected + 1
let record_op_cancelled t = t.ops_cancelled <- t.ops_cancelled + 1
let record_comm_revoke t = t.comm_revokes <- t.comm_revokes + 1
let record_comm_shrink t = t.comm_shrinks <- t.comm_shrinks + 1
let record_comm_agreement t = t.comm_agreements <- t.comm_agreements + 1
let record_plan_hit t = t.plan_cache_hits <- t.plan_cache_hits + 1
let record_plan_miss t = t.plan_cache_misses <- t.plan_cache_misses + 1
let record_bounce_reuse t = t.bounce_reuses <- t.bounce_reuses + 1

let record_checkpoint t ~bytes =
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  t.checkpoint_bytes <- t.checkpoint_bytes + bytes

let record_restore t = t.buffers_restored <- t.buffers_restored + 1
let record_msg_logged t = t.msgs_logged <- t.msgs_logged + 1
let record_msg_replayed t = t.msgs_replayed <- t.msgs_replayed + 1
let record_dup_suppressed t = t.dups_suppressed <- t.dups_suppressed + 1
let record_recovery t = t.recoveries <- t.recoveries + 1
let record_jittered_backoff t = t.jittered_backoffs <- t.jittered_backoffs + 1
let record_partition_drop t = t.partition_drops <- t.partition_drops + 1
let record_injection_fired t = t.injections_fired <- t.injections_fired + 1

let record_event_scheduled t ~reused ~live =
  t.events_scheduled_total <- t.events_scheduled_total + 1;
  if reused then t.events_pooled_reuses <- t.events_pooled_reuses + 1;
  if live > t.max_live_events then t.max_live_events <- live

let snapshot t = { t with messages_sent = t.messages_sent }

let diff ~after ~before =
  {
    messages_sent = after.messages_sent - before.messages_sent;
    bytes_on_wire = after.bytes_on_wire - before.bytes_on_wire;
    eager_messages = after.eager_messages - before.eager_messages;
    rndv_messages = after.rndv_messages - before.rndv_messages;
    iov_entries = after.iov_entries - before.iov_entries;
    memcpys = after.memcpys - before.memcpys;
    bytes_copied = after.bytes_copied - before.bytes_copied;
    allocs = after.allocs - before.allocs;
    bytes_allocated = after.bytes_allocated - before.bytes_allocated;
    live_alloc_bytes = after.live_alloc_bytes;
    peak_alloc_bytes = after.peak_alloc_bytes;
    pack_callbacks = after.pack_callbacks - before.pack_callbacks;
    unpack_callbacks = after.unpack_callbacks - before.unpack_callbacks;
    query_callbacks = after.query_callbacks - before.query_callbacks;
    region_queries = after.region_queries - before.region_queries;
    ddt_blocks_processed =
      after.ddt_blocks_processed - before.ddt_blocks_processed;
    probes = after.probes - before.probes;
    retransmits = after.retransmits - before.retransmits;
    frags_dropped = after.frags_dropped - before.frags_dropped;
    frags_corrupted = after.frags_corrupted - before.frags_corrupted;
    frags_duplicated = after.frags_duplicated - before.frags_duplicated;
    acks = after.acks - before.acks;
    nacks = after.nacks - before.nacks;
    iov_fallbacks = after.iov_fallbacks - before.iov_fallbacks;
    flap_waits = after.flap_waits - before.flap_waits;
    delivery_timeouts = after.delivery_timeouts - before.delivery_timeouts;
    failures_detected = after.failures_detected - before.failures_detected;
    ops_cancelled = after.ops_cancelled - before.ops_cancelled;
    comm_revokes = after.comm_revokes - before.comm_revokes;
    comm_shrinks = after.comm_shrinks - before.comm_shrinks;
    comm_agreements = after.comm_agreements - before.comm_agreements;
    plan_cache_hits = after.plan_cache_hits - before.plan_cache_hits;
    plan_cache_misses = after.plan_cache_misses - before.plan_cache_misses;
    bounce_reuses = after.bounce_reuses - before.bounce_reuses;
    checkpoints_taken = after.checkpoints_taken - before.checkpoints_taken;
    checkpoint_bytes = after.checkpoint_bytes - before.checkpoint_bytes;
    buffers_restored = after.buffers_restored - before.buffers_restored;
    msgs_logged = after.msgs_logged - before.msgs_logged;
    msgs_replayed = after.msgs_replayed - before.msgs_replayed;
    dups_suppressed = after.dups_suppressed - before.dups_suppressed;
    recoveries = after.recoveries - before.recoveries;
    jittered_backoffs = after.jittered_backoffs - before.jittered_backoffs;
    partition_drops = after.partition_drops - before.partition_drops;
    injections_fired = after.injections_fired - before.injections_fired;
    events_scheduled_total =
      after.events_scheduled_total - before.events_scheduled_total;
    events_pooled_reuses =
      after.events_pooled_reuses - before.events_pooled_reuses;
    (* like [peak_alloc_bytes]: a high-water mark, not a delta *)
    max_live_events = after.max_live_events;
  }

(* Derived metrics: memory amplification is how many bytes the CPU
   copied per byte that crossed the wire (1.0 = one full staging copy;
   0.0 = pure zero-copy); mean iov entries shows how fragmented the
   average message's scatter/gather list was. *)
let memory_amplification t =
  if t.bytes_on_wire = 0 then 0.
  else float_of_int t.bytes_copied /. float_of_int t.bytes_on_wire

let mean_iov_entries t =
  if t.messages_sent = 0 then 0.
  else float_of_int t.iov_entries /. float_of_int t.messages_sent

let reliability_events t =
  t.retransmits + t.frags_dropped + t.frags_corrupted + t.frags_duplicated
  + t.acks + t.nacks + t.iov_fallbacks + t.flap_waits + t.delivery_timeouts
  + t.failures_detected + t.partition_drops + t.injections_fired

let resilience_events t =
  t.ops_cancelled + t.comm_revokes + t.comm_shrinks + t.comm_agreements

let plan_events t = t.plan_cache_hits + t.plan_cache_misses + t.bounce_reuses

let ckpt_events t =
  t.checkpoints_taken + t.buffers_restored + t.msgs_logged + t.msgs_replayed
  + t.dups_suppressed + t.recoveries

let pp ppf t =
  Format.fprintf ppf
    "@[<v>msgs=%d (eager %d, rndv %d) wire=%dB iov_entries=%d@,\
     memcpys=%d copied=%dB allocs=%d allocated=%dB peak=%dB@,\
     callbacks: pack=%d unpack=%d query=%d regions=%d ddt_blocks=%d \
     probes=%d@,\
     derived: mem_amplification=%.2f mean_iov_per_msg=%.2f"
    t.messages_sent t.eager_messages t.rndv_messages t.bytes_on_wire
    t.iov_entries t.memcpys t.bytes_copied t.allocs t.bytes_allocated
    t.peak_alloc_bytes t.pack_callbacks t.unpack_callbacks t.query_callbacks
    t.region_queries t.ddt_blocks_processed t.probes
    (memory_amplification t) (mean_iov_entries t);
  (* The reliability line appears only when something fired, so the
     rendering of fault-free runs is byte-identical to the pre-fault
     format. *)
  if reliability_events t > 0 then
    Format.fprintf ppf
      "@,reliability: retx=%d drops=%d corrupt=%d dups=%d acks=%d nacks=%d \
       iov_fallbacks=%d flap_waits=%d timeouts=%d failures=%d"
      t.retransmits t.frags_dropped t.frags_corrupted t.frags_duplicated
      t.acks t.nacks t.iov_fallbacks t.flap_waits t.delivery_timeouts
      t.failures_detected;
  (* Appended separately so plans without the explorer fault kinds
     render exactly as before. *)
  if t.partition_drops > 0 || t.injections_fired > 0 then
    Format.fprintf ppf " parts=%d inj=%d" t.partition_drops t.injections_fired;
  if resilience_events t > 0 then
    Format.fprintf ppf
      "@,resilience: cancelled=%d revokes=%d shrinks=%d agreements=%d"
      t.ops_cancelled t.comm_revokes t.comm_shrinks t.comm_agreements;
  (* Like the reliability line: only rendered when plans were in play,
     so byte-only workloads print exactly as before. *)
  if plan_events t > 0 then
    Format.fprintf ppf "@,plans: cache_hits=%d cache_misses=%d bounce_reuses=%d"
      t.plan_cache_hits t.plan_cache_misses t.bounce_reuses;
  (* Rendered only when a checkpoint runtime (or jitter) was in play, so
     every pre-restart workload prints exactly as before. *)
  if ckpt_events t > 0 || t.jittered_backoffs > 0 then
    Format.fprintf ppf
      "@,ckpt: taken=%d bytes=%d restored=%d logged=%d replayed=%d \
       dups=%d recoveries=%d jittered=%d"
      t.checkpoints_taken t.checkpoint_bytes t.buffers_restored t.msgs_logged
      t.msgs_replayed t.dups_suppressed t.recoveries t.jittered_backoffs;
  (* Rendered only when the engine has a Stats sink attached
     ([Engine.set_stats]), so every pre-existing workload prints exactly
     as before. *)
  if t.events_scheduled_total > 0 then
    Format.fprintf ppf "@,engine: events=%d pooled=%d max_live=%d"
      t.events_scheduled_total t.events_pooled_reuses t.max_live_events;
  Format.fprintf ppf "@]"
