type event = { time : float; category : string; message : string }

type t = {
  ring : event option array;
  mutable next : int;  (* total events ever recorded *)
  dropped_by_cat : (string, int) Hashtbl.t;
      (* events overwritten by the ring bound, per category *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0; dropped_by_cat = Hashtbl.create 8 }

let record t ~time ~category message =
  let slot = t.next mod Array.length t.ring in
  (match t.ring.(slot) with
  | Some old ->
      Hashtbl.replace t.dropped_by_cat old.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.dropped_by_cat old.category))
  | None -> ());
  t.ring.(slot) <- Some { time; category; message };
  t.next <- t.next + 1

let length t = min t.next (Array.length t.ring)
let dropped t = max 0 (t.next - Array.length t.ring)

let dropped_by_category t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.dropped_by_cat []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let events t =
  let cap = Array.length t.ring in
  let n = length t in
  let start = if t.next > cap then t.next mod cap else 0 in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let find t ~category =
  List.filter (fun e -> e.category = category) (events t)

let counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.category)))
    (events t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  Hashtbl.reset t.dropped_by_cat

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%12.1f  %-12s %s@." e.time e.category e.message)
    (events t);
  if dropped t > 0 then begin
    let per_cat =
      dropped_by_category t
      |> List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n)
      |> String.concat ", "
    in
    Format.fprintf ppf "(... %d earlier events dropped: %s)@." (dropped t)
      per_cat
  end
