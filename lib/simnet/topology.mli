(** Topology-aware network model: link graphs, deterministic routing and
    per-link bandwidth sharing.

    The default transport model is a flat, infinitely-switched wire:
    every message pays [latency_ns + wire_time] regardless of who else
    is talking.  That hides exactly the effects that shift datatype
    crossover points at scale — shared up-links, oversubscribed spines,
    long global hops.  A [Topology.t] models the cluster as a graph of
    half-duplex directed links, each with its own serialization horizon,
    so concurrent transfers that share a link queue behind one another
    (congestion-aware serialization) while disjoint paths proceed in
    parallel.

    Three families are provided:
    - {b switch}: every rank hangs off one big crossbar.  Paths are
      [NIC up-link -> NIC down-link]; congestion only arises on a
      rank's own links (endpoint contention).
    - {b fat-tree}: ranks are grouped [leaf_arity] per leaf switch with
      [uplinks] up-ports per leaf.  Intra-leaf traffic stays local;
      inter-leaf traffic crosses [leaf up-port -> spine -> leaf
      down-port], chosen deterministically as [(src + dst) mod uplinks]
      — an oversubscribed leaf therefore serializes its flows.
    - {b dragonfly}: ranks are grouped [group_size] per group with
      [global_links] long links per ordered group pair.  Inter-group
      traffic pays an extra latency factor for the long hop and shares
      the narrow global links.

    Routing is a pure function of [(src, dst)], so a topology-attached
    simulation is exactly as deterministic and replayable as a flat
    one.  All state lives in per-link [busy_until] horizons: a transfer
    starting at [now] begins serializing at [max now (busy of path)],
    occupies every path link for its serialization time, and the caller
    is charged the queueing wait plus the serialization.

    Attaching a topology is opt-in ({!Mpicd_ucx.Ucx.set_topology});
    with none attached every code path reduces to the flat model,
    keeping existing virtual-time results bit-identical. *)

type kind =
  | Switch
  | Fat_tree of { leaf_arity : int; uplinks : int }
  | Dragonfly of { group_size : int; global_links : int }

type t

val create : kind -> nranks:int -> t
(** @raise Invalid_argument on a non-positive rank count or degenerate
    shape parameters. *)

val switch : nranks:int -> t

val fat_tree : ?leaf_arity:int -> ?uplinks:int -> nranks:int -> unit -> t
(** Defaults: 16 ranks per leaf, 4 up-links per leaf (4:1
    oversubscription). *)

val dragonfly : ?group_size:int -> ?global_links:int -> nranks:int -> unit -> t
(** Defaults: 32 ranks per group, 2 global links per ordered group
    pair. *)

val of_string : string -> nranks:int -> t
(** Parse a CLI name: ["switch"], ["fattree"] or ["dragonfly"] (default
    shape parameters).
    @raise Invalid_argument on anything else. *)

val kind : t -> kind
val kind_name : t -> string
val nranks : t -> int
val links : t -> int
(** Number of directed links in the graph. *)

val path_hops : t -> src:int -> dst:int -> int
(** Number of links the [(src, dst)] route crosses (0 for self-sends). *)

val path_latency : t -> latency_ns:float -> src:int -> dst:int -> float
(** Propagation latency of the route: [latency_ns] for local (same
    switch / leaf / group) paths — identical to the flat model — scaled
    up for spine crossings (2x) and dragonfly global hops (3x). *)

val serialize :
  t -> ns_per_byte:float -> src:int -> dst:int -> bytes:int -> now:float -> float
(** [serialize t ~ns_per_byte ~src ~dst ~bytes ~now] claims every link
    on the route from the time the last of them is free: returns
    [wait + ser] where [ser = ns_per_byte * bytes] and [wait] is the
    queueing delay behind transfers already occupying the path.
    Advances each path link's horizon to [start + ser].  Self-sends
    touch no links and return just [ser].
    @raise Invalid_argument if [src] or [dst] is outside the modeled
    rank set. *)

val congestion_events : t -> int
(** Transfers that had to wait behind a busy link. *)

val congestion_wait_ns : t -> float
(** Total queueing delay accumulated by {!serialize}. *)

val reset_counters : t -> unit
