(** Per-simulation counters.

    The transport and datatype layers report what they do here; tests use
    the counters to assert zero-copy behaviour (e.g. "the custom path
    performed no full-payload memcpy") and benchmarks report memory
    amplification alongside time. *)

type t = {
  mutable messages_sent : int;
  mutable bytes_on_wire : int;
  mutable eager_messages : int;
  mutable rndv_messages : int;
  mutable iov_entries : int;
  mutable memcpys : int;
  mutable bytes_copied : int;
  mutable allocs : int;
  mutable bytes_allocated : int;
  mutable live_alloc_bytes : int;
  mutable peak_alloc_bytes : int;
  mutable pack_callbacks : int;
  mutable unpack_callbacks : int;
  mutable query_callbacks : int;
  mutable region_queries : int;
  mutable ddt_blocks_processed : int;
  mutable probes : int;
  (* Reliability counters (see docs/FAULTS.md): all remain 0 unless a
     fault plan is attached to the transport. *)
  mutable retransmits : int;
  mutable frags_dropped : int;
  mutable frags_corrupted : int;
  mutable frags_duplicated : int;
  mutable acks : int;
  mutable nacks : int;
  mutable iov_fallbacks : int;
  mutable flap_waits : int;
  mutable delivery_timeouts : int;
  mutable failures_detected : int;
      (** ranks declared failed by the liveness detector (or by retry
          exhaustion against a crashed peer); 0 without a crash plan *)
  (* Resilience counters (see docs/RESILIENCE.md): driven by explicit
     ULFM-style operations and failure-triggered cancellation. *)
  mutable ops_cancelled : int;
      (** pending operations completed early with [Peer_failed]/[Revoked] *)
  mutable comm_revokes : int;
  mutable comm_shrinks : int;
  mutable comm_agreements : int;
  (* Datatype pack-plan counters (see docs/PERFORMANCE.md): host-side
     bookkeeping only, never part of the virtual-time cost model. *)
  mutable plan_cache_hits : int;
      (** typed operations that found a compiled pack plan in the cache *)
  mutable plan_cache_misses : int;
      (** typed operations that had to flatten a datatype into a plan *)
  mutable bounce_reuses : int;
      (** eager/rendezvous bounce fragments served from the transport
          pool instead of a fresh allocation *)
  (* Checkpoint/restart counters (see docs/RESILIENCE.md): driven by the
     lib/restart runtime.  All remain 0 unless a checkpoint runtime is
     in use. *)
  mutable checkpoints_taken : int;
      (** plan-serialized buffer snapshots written to the store *)
  mutable checkpoint_bytes : int;
      (** total snapshot bytes written (headers + packed payloads) *)
  mutable buffers_restored : int;
      (** registered buffers plan-decoded back from snapshots *)
  mutable msgs_logged : int;
      (** application envelopes recorded by the sender-based message log *)
  mutable msgs_replayed : int;
      (** re-executed sends verified byte-identical against the log *)
  mutable dups_suppressed : int;
      (** duplicate/stale envelopes discarded by the receive-side filter *)
  mutable recoveries : int;  (** recovery rounds run by the orchestrator *)
  mutable jittered_backoffs : int;
      (** retransmit sleeps drawn with decorrelated jitter; 0 unless
          [Config.retx_jitter] is on *)
  mutable partition_drops : int;
      (** fragments dropped by an active network partition (counted in
          addition to [frags_dropped]); 0 without a partition plan *)
  mutable injections_fired : int;
      (** targeted single-shot injections that hit their exact
          [(src, dst, mseq, frag)] coordinate; 0 without injections *)
  (* Engine counters (see docs/PERFORMANCE.md, "Engine internals"):
     event-queue traffic of the simulation engine, for attributing
     scheduler overhead.  All remain 0 unless a Stats sink is attached
     to the engine ([Engine.set_stats], done by [Mpi.create_world]). *)
  mutable events_scheduled_total : int;
      (** events pushed into the engine's queue (sleeps, resumptions,
          deliveries, spawns) *)
  mutable events_pooled_reuses : int;
      (** pushes served from the event-node pool instead of a fresh
          allocation; [total - reuses] is the engine's allocation count *)
  mutable max_live_events : int;
      (** high-water mark of simultaneously queued events *)
}

val create : unit -> t
val reset : t -> unit

val record_message : t -> eager:bool -> wire_bytes:int -> unit
val record_iov_entries : t -> int -> unit
val record_copy : t -> int -> unit
val record_alloc : t -> int -> unit
val record_free : t -> int -> unit
val record_pack_cb : t -> unit
val record_unpack_cb : t -> unit
val record_query_cb : t -> unit
val record_region_query : t -> unit
val record_ddt_blocks : t -> int -> unit
val record_probe : t -> unit

(** {1 Reliability events} (recorded by the transport's reliable-delivery
    protocol; see docs/FAULTS.md) *)

val record_retransmit : t -> unit
val record_frag_drop : t -> unit
val record_frag_corrupt : t -> unit
val record_frag_dup : t -> unit
val record_ack : t -> unit
val record_nack : t -> unit
val record_iov_fallback : t -> unit
val record_flap_wait : t -> unit
val record_delivery_timeout : t -> unit
val record_failure_detected : t -> unit
val record_partition_drop : t -> unit
val record_injection_fired : t -> unit

(** {1 Resilience events} (recorded by the ULFM-style layer;
    see docs/RESILIENCE.md) *)

val record_op_cancelled : t -> unit
val record_comm_revoke : t -> unit
val record_comm_shrink : t -> unit
val record_comm_agreement : t -> unit

(** {1 Pack-plan events} (recorded by the datatype plan cache and the
    transport bounce-buffer pool; see docs/PERFORMANCE.md) *)

val record_plan_hit : t -> unit
val record_plan_miss : t -> unit
val record_bounce_reuse : t -> unit

(** {1 Checkpoint/restart events} (recorded by the lib/restart runtime;
    see docs/RESILIENCE.md) *)

val record_event_scheduled : t -> reused:bool -> live:int -> unit
(** One engine event pushed; [reused] if its node came from the pool,
    [live] the queue depth after the push (feeds [max_live_events]). *)

val record_checkpoint : t -> bytes:int -> unit
val record_restore : t -> unit
val record_msg_logged : t -> unit
val record_msg_replayed : t -> unit
val record_dup_suppressed : t -> unit
val record_recovery : t -> unit
val record_jittered_backoff : t -> unit

val ckpt_events : t -> int
(** Sum of the checkpoint/restart counters (excluding
    [jittered_backoffs], which belongs to the transport); 0 iff no
    checkpoint runtime touched this world. *)

val plan_events : t -> int
(** Sum of the pack-plan counters; 0 iff no typed traffic used the
    compiled-plan machinery. *)

val reliability_events : t -> int
(** Sum of all reliability counters (including [failures_detected]);
    0 iff the run was fault-free. *)

val resilience_events : t -> int
(** Sum of the resilience counters.  Unlike {!reliability_events} these
    can be nonzero without a fault plan (an application may revoke a
    communicator on a healthy system). *)

val snapshot : t -> t
(** Independent copy of the current counters. *)

val diff : after:t -> before:t -> t
(** Field-wise subtraction, for measuring a single operation.  The
    [live_alloc_bytes]/[peak_alloc_bytes] fields of the result carry the
    [after] values. *)

val memory_amplification : t -> float
(** [bytes_copied / bytes_on_wire]: CPU bytes copied per wire byte
    (0 when nothing crossed the wire).  1.0 means one full staging
    copy; 0.0 is the zero-copy ideal. *)

val mean_iov_entries : t -> float
(** [iov_entries / messages_sent]: average scatter/gather list length
    per message (0 when no messages were sent). *)

val pp : Format.formatter -> t -> unit
(** Includes the derived metrics above on a trailing line. *)
