module Obs = Mpicd_obs.Obs
module Metrics = Mpicd_obs.Metrics

type t = {
  mutable clock : float;
  events : (unit -> unit) Evq.t;
  mutable seq : int;
  mutable live : int;
  mutable suspended_names : (int * string) list;
  mutable fiber_ids : int;
  mutable obs : Obs.t;
  mutable stats : Stats.t option;
      (* engine-overhead accounting ([events_scheduled_total] etc.);
         [None] (the default) keeps the hot path to one branch *)
  mutable metric_handles : (Metrics.counter * Metrics.counter * Metrics.gauge) option;
      (* cached (scheduled, pooled, live) handles: interned once at
         [set_obs] so the per-event path never does a name lookup *)
}

exception Deadlock of string

type 'a resumer = 'a -> unit

type _ Effect.t +=
  | Sleep : t * float -> unit Effect.t
  | Suspend : t * ('a resumer -> unit) -> 'a Effect.t

let create () =
  {
    clock = 0.;
    events = Evq.create ();
    seq = 0;
    live = 0;
    suspended_names = [];
    fiber_ids = 0;
    obs = Obs.null;
    stats = None;
    metric_handles = None;
  }

let now t = t.clock

let set_obs t o =
  t.obs <- o;
  t.metric_handles <-
    (if Obs.enabled o then begin
       let m = Obs.metrics o in
       Some
         ( Metrics.counter m "events_scheduled_total",
           Metrics.counter m "events_pooled_reuses",
           Metrics.gauge m "live_events" )
     end
     else None)

let set_stats t s = t.stats <- Some s

(* Virtual-time hardening: a NaN delay would silently poison the clock
   and every comparison downstream, so it is rejected at the door.
   Negative finite delays are clamped to zero (the documented "yield"
   semantics callers such as jittered channels rely on); [-infinity]
   is rejected with NaN since clamping it would mask a real arithmetic
   bug upstream. *)
let check_delay ~who delay =
  if Float.is_nan delay then invalid_arg (who ^ ": NaN delay")
  else if delay = Float.neg_infinity then
    invalid_arg (who ^ ": -infinity delay")

let schedule t ~delay f =
  check_delay ~who:"Engine.schedule" delay;
  t.seq <- t.seq + 1;
  let reused_before = Evq.reuses t.events in
  Evq.push t.events ~time:(t.clock +. Float.max 0. delay) ~seq:t.seq f;
  (match t.stats with
  | None -> ()
  | Some s ->
      Stats.record_event_scheduled s
        ~reused:(Evq.reuses t.events > reused_before)
        ~live:(Evq.size t.events));
  match t.metric_handles with
  | None -> ()
  | Some (c_sched, c_pool, g_live) ->
      Metrics.inc c_sched;
      if Evq.reuses t.events > reused_before then Metrics.inc c_pool;
      Metrics.set g_live (float_of_int (Evq.size t.events))

let sleep t d =
  (* A fiber's sleep is always a duration it computed itself: negative
     values are arithmetic bugs, not scheduling idioms, so they are
     rejected rather than clamped (NaN likewise, via [schedule]). *)
  if Float.is_nan d then invalid_arg "Engine.sleep: NaN duration"
  else if d < 0. then invalid_arg "Engine.sleep: negative duration";
  Effect.perform (Sleep (t, d))
let suspend t register = Effect.perform (Suspend (t, register))

let mark_suspended t id name =
  t.suspended_names <- (id, name) :: t.suspended_names

let mark_resumed t id =
  t.suspended_names <- List.filter (fun (i, _) -> i <> id) t.suspended_names

let exec_fiber t ~id ~name ~track f =
  let open Effect.Deep in
  (* Observability: one span per fiber lifetime, plus suspend/resume
     instants.  All recording is guarded so a detached sink costs a
     single branch and allocates nothing. *)
  let fiber_span =
    if Obs.enabled t.obs then
      Obs.span_begin t.obs ~time:t.clock ~track ~cat:"fiber"
        ~args:[ ("id", Obs.Int id) ]
        name
    else Obs.null_span
  in
  let fiber_instant what =
    if Obs.enabled t.obs then
      Obs.instant t.obs ~time:t.clock ~track ~cat:"fiber"
        ~args:[ ("fiber", Obs.Str (Printf.sprintf "%s#%d" name id)) ]
        what
  in
  match_with f ()
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          Obs.span_end t.obs ~time:t.clock fiber_span);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep (t', d) when t' == t ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule t ~delay:d (fun () -> continue k ()))
          | Suspend (t', register) when t' == t ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  mark_suspended t id name;
                  fiber_instant "suspend";
                  let resume v =
                    if !resumed then
                      invalid_arg "Engine: resumer invoked twice";
                    resumed := true;
                    mark_resumed t id;
                    fiber_instant "resume";
                    schedule t ~delay:0. (fun () -> continue k v)
                  in
                  register resume)
          | _ -> None);
    }

let spawn t ?(name = "fiber") ?track f =
  t.live <- t.live + 1;
  t.fiber_ids <- t.fiber_ids + 1;
  let id = t.fiber_ids in
  let track = match track with Some r -> r | None -> -id in
  schedule t ~delay:0. (fun () -> exec_fiber t ~id ~name ~track f)

let at t ~delay f = schedule t ~delay f

let live_fibers t = t.live

let run t =
  (* Hot loop: non-allocating peek/pop (no option or tuple boxing) —
     the engine itself allocates nothing per event in steady state. *)
  let rec loop () =
    if Evq.is_empty t.events then begin
      if t.live > 0 then begin
        let names =
          t.suspended_names
          |> List.map (fun (id, n) -> Printf.sprintf "%s#%d" n id)
          |> String.concat ", "
        in
        raise
          (Deadlock
             (Printf.sprintf
                "simulation deadlock: %d fiber(s) still blocked [%s]"
                t.live names))
      end
    end
    else begin
      let time = Evq.min_time t.events in
      let f = Evq.pop_min t.events in
      if time > t.clock then t.clock <- time;
      f ();
      loop ()
    end
  in
  loop ()

module Waitq = struct
  type nonrec engine = t
  type 'a t = ('a resumer) Queue.t

  let create () = Queue.create ()

  let wait (e : engine) t = suspend e (fun resume -> Queue.push resume t)

  let signal t v =
    match Queue.take_opt t with
    | None -> false
    | Some resume ->
        resume v;
        true

  let broadcast t v =
    let n = Queue.length t in
    for _ = 1 to n do
      match Queue.take_opt t with
      | Some resume -> resume v
      | None -> ()
    done;
    n

  let waiters t = Queue.length t
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; readers : 'a Waitq.t }

  let create () = { items = Queue.create (); readers = Waitq.create () }

  let send t v = if not (Waitq.signal t.readers v) then Queue.push v t.items

  let recv e t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None -> Waitq.wait e t.readers

  let try_recv t = Queue.take_opt t.items
  let length t = Queue.length t.items
end

module Mutex = struct
  type t = { mutable locked : bool; waiters : unit Waitq.t }

  let create () = { locked = false; waiters = Waitq.create () }

  let lock e t =
    if t.locked then Waitq.wait e t.waiters
    else t.locked <- true

  let unlock t =
    if not t.locked then invalid_arg "Mutex.unlock: not locked"
    else if not (Waitq.signal t.waiters ()) then t.locked <- false
  (* when a waiter is resumed the mutex stays locked: FIFO handoff *)

  let with_lock e t f =
    lock e t;
    Fun.protect ~finally:(fun () -> unlock t) f

  let is_locked t = t.locked
end

module Ivar = struct
  type 'a t = { mutable value : 'a option; readers : 'a Waitq.t }

  let create () = { value = None; readers = Waitq.create () }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
        t.value <- Some v;
        ignore (Waitq.broadcast t.readers v)

  let read e t =
    match t.value with Some v -> v | None -> Waitq.wait e t.readers

  let peek t = t.value
  let is_filled t = Option.is_some t.value
end
