(** Deterministic discrete-event simulation engine.

    The engine runs a set of cooperative fibers against a virtual clock
    measured in nanoseconds.  Fibers are implemented with OCaml 5
    effects: a fiber may {!sleep} (advance its own timeline) or
    {!suspend} (block until some other fiber or scheduled event resumes
    it).  Every MPI rank in the simulated cluster is one fiber; network
    deliveries are plain scheduled events.

    Determinism — the [(time, seq)] tie-break contract: every scheduled
    event carries its target virtual time plus a strictly increasing
    sequence number, and the event queue pops in [(time, seq)]
    lexicographic order.  Events with equal timestamps therefore run in
    scheduling order (FIFO), so a simulation with the same inputs always
    produces the same trace — including at large scale, where float
    accumulation makes exact timestamp collisions common (thousands of
    ranks charging identical modeled costs land on bitwise-equal
    times).  Correctness of every replay oracle in the tree rests on
    this order being total; the event queue ({!Evq}) is pinned against
    the reference binary heap ({!Heap}) by a differential property in
    [test_simnet.ml].  Wall-clock time never enters the model.

    Virtual-time hardening: NaN delays (and [-infinity]) are rejected
    with [Invalid_argument] everywhere — a NaN timestamp would poison
    every comparison downstream and silently break the total order.
    {!sleep} additionally rejects negative durations (a fiber's sleep
    is a duration it computed; negative means an arithmetic bug), while
    {!at}/event scheduling clamp negative finite delays to zero, the
    documented "yield" semantics jittered channels rely on. *)

type t

exception Deadlock of string
(** Raised by {!run} when suspended fibers remain but no future event can
    resume them. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in nanoseconds. *)

val set_obs : t -> Mpicd_obs.Obs.t -> unit
(** Attach an observability sink: each fiber gets a ["fiber"]-category
    lifetime span and suspend/resume instants, and the engine interns
    [events_scheduled_total] / [events_pooled_reuses] counters plus a
    [live_events] gauge in the sink's metrics registry (handles are
    cached here, so the per-event path never does a name lookup).
    Detached (the default, {!Mpicd_obs.Obs.null}) costs one branch per
    site and records nothing; attaching never perturbs timing or
    scheduling order. *)

val set_stats : t -> Stats.t -> unit
(** Attach a {!Stats} sink: every scheduled event updates
    [events_scheduled_total], [events_pooled_reuses] and
    [max_live_events], attributing engine overhead alongside the
    transport counters.  Without a sink (the default) the per-event
    cost is a single branch. *)

val spawn : t -> ?name:string -> ?track:int -> (unit -> unit) -> unit
(** [spawn t f] registers a fiber that starts at the current virtual
    time.  May be called before [run] or from inside a running fiber.
    [track] is the observability track its spans are recorded on
    (callers that model ranks pass the rank); defaults to a per-fiber
    negative id. *)

val sleep : t -> float -> unit
(** [sleep t d] advances this fiber's clock by [d] ns.  Must be called
    from inside a fiber.  Zero durations yield (letting same-time
    events interleave deterministically).
    @raise Invalid_argument on NaN or negative durations. *)

type 'a resumer = 'a -> unit
(** One-shot: calling a resumer twice raises [Invalid_argument]. *)

val suspend : t -> ('a resumer -> unit) -> 'a
(** [suspend t register] blocks the current fiber.  [register] receives a
    resumer which, when invoked (from another fiber or an event), reschedules
    this fiber at the then-current virtual time with the given value. *)

val at : t -> delay:float -> (unit -> unit) -> unit
(** [at t ~delay f] schedules callback [f] to run at [now t +. delay].
    Callbacks run outside any fiber and must not perform effects; they
    typically resume suspended fibers or spawn new ones. *)

val run : t -> unit
(** Execute events until none remain.  @raise Deadlock if fibers are
    still suspended when the queue drains. *)

val live_fibers : t -> int
(** Number of fibers spawned but not yet finished. *)

(** {1 Blocking primitives built on [suspend]} *)

module Waitq : sig
  (** A queue of parked fibers, each waiting for a value: the building
      block for completion queues and condition variables. *)

  type engine := t
  type 'a t

  val create : unit -> 'a t
  val wait : engine -> 'a t -> 'a
  val signal : 'a t -> 'a -> bool
  (** Resume the oldest waiter with the value; [false] if nobody waits. *)

  val broadcast : 'a t -> 'a -> int
  (** Resume all current waiters; returns how many were resumed. *)

  val waiters : 'a t -> int
end

module Mailbox : sig
  (** Unbounded FIFO channel between fibers. *)

  type engine := t
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : engine -> 'a t -> 'a
  (** Blocks until a value is available. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

module Mutex : sig
  (** Mutual exclusion between fibers — models the higher-level locks
      language bindings must take around multi-message operations. *)

  type engine := t
  type t

  val create : unit -> t
  val lock : engine -> t -> unit
  (** Blocks until the mutex is free; FIFO handoff. *)

  val unlock : t -> unit
  (** @raise Invalid_argument if the mutex is not locked. *)

  val with_lock : engine -> t -> (unit -> 'a) -> 'a
  val is_locked : t -> bool
end

module Ivar : sig
  (** Write-once cell; readers block until it is filled. *)

  type engine := t
  type 'a t

  val create : unit -> 'a t
  val fill : 'a t -> 'a -> unit
  (** @raise Invalid_argument if already filled. *)

  val read : engine -> 'a t -> 'a
  val peek : 'a t -> 'a option
  val is_filled : 'a t -> bool
end
