type link = {
  latency_ns : float;
  ns_per_byte : float;
  per_msg_overhead_ns : float;
  eager_limit : int;
  rndv_handshake_ns : float;
  rndv_reg_ns : float;
  iov_entry_ns : float;
  iov_max_entries : int;
  frag_size : int;
}

type cpu = {
  memcpy_ns_per_byte : float;
  alloc_base_ns : float;
  alloc_ns_per_byte : float;
  pack_cb_overhead_ns : float;
  pack_piece_ns : float;
  ddt_block_ns : float;
  ddt_node_ns : float;
  object_visit_ns : float;
}

type gpu = {
  pcie_ns_per_byte : float;
  kernel_launch_ns : float;
  hbm_ns_per_byte : float;
  gpu_piece_ns : float;
}

type t = {
  link : link;
  cpu : cpu;
  gpu : gpu;
  auto_normalize : bool;
  retx_jitter : bool;
  retx_backoff_max_ns : float;
}

(* 100 Gb/s = 12.5 GB/s raw; ~11.5 GB/s effective after protocol
   headers -> 0.087 ns/B.  Base latency ~1.3 us as measured for small
   RDMA messages on ConnectX-5. *)
let default_link =
  {
    latency_ns = 1300.;
    ns_per_byte = 0.087;
    per_msg_overhead_ns = 250.;
    eager_limit = 30_000;
    (* just under the 2^15-byte sample of the paper's sweeps: the
       manual-pack bandwidth dip lands on the same x position *)
    rndv_handshake_ns = 5000.;
    rndv_reg_ns = 400.;
    iov_entry_ns = 120.;
    iov_max_entries = 64;
    frag_size = 8192;
  }

(* EPYC 7232P single-thread copy ~20 GB/s for message-sized buffers
   -> 0.05 ns/B (kept below the neutral eager/rendezvous point so the
   protocol switch shows the bandwidth dip the paper observes);
   fresh large allocations fault pages in at ~12 GB/s -> 0.08 ns/B,
   which is what makes buffer-doubling methods pay at scale. *)
let default_cpu =
  {
    memcpy_ns_per_byte = 0.05;
    alloc_base_ns = 180.;
    alloc_ns_per_byte = 0.08;
    pack_cb_overhead_ns = 80.;
    pack_piece_ns = 1.;
    ddt_block_ns = 18.;
    (* commit-time cost of visiting one descriptor tree node or index
       array entry: type_commit flattening, plan compilation, and (on
       device paths) kernel-parameter marshalling all walk the
       descriptor, so deep or index-heavy trees pay this per node. *)
    ddt_node_ns = 25.;
    object_visit_ns = 120.;
  }

(* PCIe gen4 x16 ~25 GB/s staging; ~3 us kernel launch; HBM2e pack
   kernels stream at ~200 GB/s effective with massive parallelism over
   small pieces. *)
let default_gpu =
  {
    pcie_ns_per_byte = 0.04;
    kernel_launch_ns = 3000.;
    hbm_ns_per_byte = 0.005;
    gpu_piece_ns = 0.05;
  }

let default =
  {
    link = default_link;
    cpu = default_cpu;
    gpu = default_gpu;
    auto_normalize = false;
    retx_jitter = false;
    (* 1 s ceiling: far above every schedule a sane plan produces (the
       default plan tops out at 12.8 ms) so existing replays are
       bit-identical, yet bounding straggler-stretched or large-backoff
       chains that would otherwise balloon (or overflow to [infinity])
       virtual time. *)
    retx_backoff_max_ns = 1e9;
  }

let wire_time (l : link) bytes = l.ns_per_byte *. float_of_int bytes
let memcpy_time (c : cpu) bytes = c.memcpy_ns_per_byte *. float_of_int bytes

let alloc_time (c : cpu) bytes =
  c.alloc_base_ns +. (c.alloc_ns_per_byte *. float_of_int bytes)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>link: latency=%.0fns bw=%.3fns/B eager<=%dB rndv=+%.0fns \
     iov=%.0fns/entry(max %d) frag=%dB@,\
     cpu: memcpy=%.3fns/B alloc=%.0f+%.3fns/B packcb=%.0fns piece=%.1fns \
     ddtblock=%.0fns ddtnode=%.0fns objvisit=%.0fns@,\
     auto_normalize=%b retx_jitter=%b retx_backoff_max=%gns@]"
    t.link.latency_ns t.link.ns_per_byte t.link.eager_limit
    t.link.rndv_handshake_ns t.link.iov_entry_ns t.link.iov_max_entries
    t.link.frag_size t.cpu.memcpy_ns_per_byte t.cpu.alloc_base_ns
    t.cpu.alloc_ns_per_byte t.cpu.pack_cb_overhead_ns t.cpu.pack_piece_ns
    t.cpu.ddt_block_ns t.cpu.ddt_node_ns t.cpu.object_visit_ns
    t.auto_normalize t.retx_jitter t.retx_backoff_max_ns
