(** Coordinated checkpoint/restart with sender-based message logging
    and a ULFM-composing recovery orchestrator.

    The runtime snapshots registered application buffers through their
    committed datatypes' compiled pack plans ({!Snapshot}), coordinates
    epoch cuts with Chandy–Lamport-style markers flushed through the
    reliable-delivery transport on the dedicated [Restart] channel
    kind, logs every application envelope on the sender side so
    re-execution is checkable for determinism, and recovers from
    process failure either {e in place} (ack / revoke / shrink / agree
    on the latest globally-complete epoch / restore / resume — the
    survivor path) or by {e respawning} a fresh simulated world that
    restores from the host-persistent {!Store} (the
    replacement-job path, which converges byte-identically to the
    fault-free run).  See docs/RESILIENCE.md.

    {2 Epoch protocol}

    Epochs number the committed cuts: epoch 0 is the initial state,
    committed right after {!register}ing buffers; epoch [e] is
    committed by the [e]-th call to {!commit} after the application
    quiesced its interval-[e] communication.  A {!commit}:

    + exchanges an epoch marker with every peer on the [Restart]
      channel (per-channel FIFO makes the marker a cut: every pre-cut
      envelope is already at the receiver when its marker arrives);
    + plan-packs each registered buffer into a {!Snapshot} and writes
      it to the store under [<job>/ckpt/e<epoch>/r<world-rank>/<name>];
    + runs the failure-aware barrier;
    + writes the rank's completion marker.  An epoch is {e globally
      complete} when every member's completion marker is present;
      because the marker is written unconditionally right after the
      barrier returns, the minimum locally-committed epoch across
      survivors is always globally complete.

    {2 Message log}

    {!send} assigns a per-destination sequence number, packs typed
    payloads through the same plan engine as the wire, and persists
    [(tag, epoch, seq, payload)] to the store before sending
    [(incarnation, epoch, seq, payload)] on the wire.  When a send is
    re-executed after recovery at full group size, the logged entry
    must match byte-for-byte — {!Replay_diverged} otherwise.  {!recv}
    suppresses duplicate and stale envelopes by sequence number (the
    per-peer cursors are themselves checkpointed, riding in a hidden
    registered buffer, so restores rewind them consistently). *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi

type t

exception Replay_diverged of string
(** Re-executed communication failed the determinism check against the
    sender-based message log (or a sequence gap was observed). *)

val create :
  ?obs:Mpicd_obs.Obs.t -> store:Store.t -> job:string -> Mpi.comm -> t
(** Per-rank runtime.  [comm] must be the job's full initial
    communicator; [job] namespaces this job's snapshots and logs inside
    the store.  Spans and instants are recorded under the ["ckpt"]
    category on the given sink. *)

val comm : t -> Mpi.comm
(** The current communicator: the initial one until a recovery
    shrinks it.  Applications must route all communication for a step
    through this (or through {!send}/{!recv}). *)

val epoch : t -> int
(** Last locally-committed epoch; [-1] before the first {!commit}. *)

val incarnation : t -> int
val set_incarnation : t -> int -> unit
val store : t -> Store.t

val register : t -> name:string -> dt:Dt.t -> count:int -> Buf.t -> unit
(** Register an application buffer for checkpointing: [count] elements
    of [dt] laid out in the (live, aliased) buffer.  Registering an
    existing [name] replaces its entry.  Restores decode {e into} the
    registered buffer. *)

val registered : t -> (string * Buf.t) list
(** Registered buffers in registration order (excluding the runtime's
    hidden sequence-cursor buffer). *)

(** {1 Logged point-to-point} *)

val send : t -> dst:int -> tag:int -> Mpi.buffer -> unit
(** Send on the [Restart] channel with an [(incarnation, epoch, seq)]
    header, logging the envelope.  [dst] is a rank of {!comm}; [tag]
    must be below [0x3E_0000_0000] (the marker sub-space).  [Bytes] and
    [Typed] buffers only. *)

val recv : t -> source:int -> tag:int -> Mpi.buffer -> Mpi.status
(** Matching receive: unwraps the header, drops duplicate/stale
    envelopes ([seq] below the expected cursor — counted in
    [Stats.dups_suppressed]) and returns the payload's status.
    @raise Replay_diverged on a sequence gap. *)

(** {1 Epochs} *)

val commit : t -> unit
(** Commit epoch [epoch t + 1] (collective).  Failures surface as
    [Mpi_error] through the communicator's error handler; the epoch
    counter only advances on success. *)

val restore_to : t -> epoch:int -> unit
(** Plan-decode every registered buffer from this rank's epoch-[epoch]
    snapshots, failing closed ({!Snapshot.Corrupt_snapshot}) on any
    damaged or missing image.  Rewinds {!epoch} and the message-log
    cursors. *)

val latest_complete_epoch : Store.t -> job:string -> nranks:int -> int
(** Highest epoch whose completion markers are present for all
    [nranks] world ranks; [-1] if none. *)

val prune_log : t -> upto:int -> unit
(** Drop this rank's logged envelopes for epochs [<= upto] (they can
    never be replayed once [upto] is globally complete). *)

(** {1 Recovery orchestration} *)

val recover : t -> int
(** In-world recovery round, composing the ULFM primitives:
    acknowledge failures, revoke the current communicator (flushing
    peers out of half-completed patterns), shrink to the survivors,
    agree on the latest globally-complete epoch (bitmask-encoded
    through the AND-agreement), restore the registered buffers from it
    and bump the incarnation.  Returns the restored epoch, [-1] when
    no epoch was complete (caller must re-initialize).  May itself
    raise [Mpi_error] if members keep failing; call again. *)

type app = {
  epochs : int;  (** number of computation intervals to run *)
  init : t -> unit;
      (** register buffers with their initial values; re-invoked when
          recovery lands before epoch 0 *)
  step : t -> epoch:int -> unit;
      (** compute interval [epoch] ([1..epochs]), quiescing all
          communication before returning; must route traffic through
          {!comm}/{!send}/{!recv} *)
}

val run_protected : ?max_recoveries:int -> t -> app -> unit
(** Run the app under the in-world orchestrator: commit epoch 0 after
    [init], then step/commit each interval, running {!recover} rounds
    on [Mpi_error] and resuming from the restored epoch instead of
    from zero.  Gives up (re-raising) after [max_recoveries]
    (default 8) recovery rounds. *)

type job_report = {
  worlds_used : int;  (** simulated worlds (original + respawns) *)
  completed : bool;  (** all ranks finished all epochs *)
  start_epochs : int list;
      (** restore epoch per world, oldest first; [-1] = fresh start *)
}

val run_job :
  ?config:Mpicd_simnet.Config.t ->
  ?plan:Mpicd_simnet.Fault.t ->
  ?obs:Mpicd_obs.Obs.t ->
  ?max_worlds:int ->
  store:Store.t ->
  job:string ->
  size:int ->
  app ->
  job_report
(** Cross-world orchestrator (respawn-as-simulated-replacement): run
    the app in a fresh world; if any rank fails to finish (crash plan,
    retry exhaustion, deadlock), spawn a replacement world whose ranks
    restore from the latest globally-complete epoch in the
    host-persistent [store], with already-fired crashes stripped from
    the plan, until the job completes or [max_worlds] (default 8) is
    exhausted.  Because re-execution from the restored epoch is
    deterministic (enforced by the message-log byte-identity check),
    the completed job's final state is byte-identical to a fault-free
    run.  A crash plan must carry a heartbeat period ([hb=]) so blocked
    survivors observe failures in bounded time.
    @raise Invalid_argument on a crash plan without heartbeats. *)
