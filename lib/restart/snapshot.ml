module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Plan = Mpicd_datatype.Plan
module Crc32 = Mpicd_ucx.Crc32

type meta = {
  epoch : int;
  rank : int;
  cid : int;
  count : int;
  sig_crc : int32;
  payload_len : int;
}

type error =
  | Too_short of { need : int; got : int }
  | Bad_magic of int32
  | Bad_version of int
  | Header_crc_mismatch
  | Truncated_payload of { expected : int; got : int }
  | Payload_crc_mismatch
  | Signature_mismatch of { stored : int32; expected : int32 }
  | Count_mismatch of { stored : int; expected : int }

exception Corrupt_snapshot of error

let pp_error ppf = function
  | Too_short { need; got } ->
      Format.fprintf ppf "snapshot too short: need %d bytes, got %d" need got
  | Bad_magic m -> Format.fprintf ppf "bad snapshot magic 0x%08lx" m
  | Bad_version v -> Format.fprintf ppf "unsupported snapshot version %d" v
  | Header_crc_mismatch -> Format.fprintf ppf "snapshot header CRC mismatch"
  | Truncated_payload { expected; got } ->
      Format.fprintf ppf "truncated snapshot payload: expected %dB, got %dB"
        expected got
  | Payload_crc_mismatch -> Format.fprintf ppf "snapshot payload CRC mismatch"
  | Signature_mismatch { stored; expected } ->
      Format.fprintf ppf
        "snapshot type-signature mismatch: stored 0x%08lx, decoding as 0x%08lx"
        stored expected
  | Count_mismatch { stored; expected } ->
      Format.fprintf ppf "snapshot count mismatch: stored %d, decoding as %d"
        stored expected

let error_to_string e = Format.asprintf "%a" pp_error e

let () =
  Printexc.register_printer (function
    | Corrupt_snapshot e ->
        Some (Format.asprintf "Corrupt_snapshot: %a" pp_error e)
    | _ -> None)

let header_size = 64
let magic = 0x4d434b50l (* "MCKP" *)
let version = 1

let predefined_code : Dt.predefined -> int = function
  | Byte -> 0
  | Char -> 1
  | Int8 -> 2
  | Uint8 -> 3
  | Int16 -> 4
  | Int32 -> 5
  | Int64 -> 6
  | Float32 -> 7
  | Float64 -> 8

(* Digest of the RLE type signature: one (code, run-length) record per
   run.  Signature-equal types produce equal digests by construction
   ([rle_signature] is canonical), however the layout tree was built. *)
let signature_crc dt =
  let rle = Dt.rle_signature dt in
  let b = Buf.create (9 * List.length rle) in
  List.iteri
    (fun i (p, n) ->
      Buf.set_u8 b (9 * i) (predefined_code p);
      Buf.set_i64 b ((9 * i) + 1) (Int64.of_int n))
    rle;
  Crc32.digest b

let encoded_size dt ~count = header_size + Dt.packed_size dt ~count

let encode ?stats ~epoch ~rank ~cid ~dt ~count ~src () =
  let plan = Plan.get ?stats dt in
  let payload_len = Plan.packed_size plan ~count in
  let b = Buf.create (header_size + payload_len) in
  if payload_len > 0 then begin
    let dst = Buf.sub b ~pos:header_size ~len:payload_len in
    ignore (Plan.pack ?stats plan ~count ~src ~dst : int)
  end;
  Buf.set_i32 b 0 magic;
  Buf.set_i32 b 4 (Int32.of_int version);
  Buf.set_i64 b 8 (Int64.of_int epoch);
  Buf.set_i64 b 16 (Int64.of_int rank);
  Buf.set_i64 b 24 (Int64.of_int cid);
  Buf.set_i64 b 32 (Int64.of_int count);
  Buf.set_i32 b 40 (signature_crc dt);
  Buf.set_i32 b 44 0l;
  Buf.set_i64 b 48 (Int64.of_int payload_len);
  Buf.set_i32 b 56 (Crc32.digest_sub b ~pos:header_size ~len:payload_len);
  Buf.set_i32 b 60 (Crc32.digest_sub b ~pos:0 ~len:60);
  b

let read_meta b =
  let got = Buf.length b in
  if got < header_size then Error (Too_short { need = header_size; got })
  else if Buf.get_i32 b 0 <> magic then Error (Bad_magic (Buf.get_i32 b 0))
  else if Int32.to_int (Buf.get_i32 b 4) <> version then
    Error (Bad_version (Int32.to_int (Buf.get_i32 b 4)))
  else if Buf.get_i32 b 60 <> Crc32.digest_sub b ~pos:0 ~len:60 then
    Error Header_crc_mismatch
  else
    Ok
      {
        epoch = Int64.to_int (Buf.get_i64 b 8);
        rank = Int64.to_int (Buf.get_i64 b 16);
        cid = Int64.to_int (Buf.get_i64 b 24);
        count = Int64.to_int (Buf.get_i64 b 32);
        sig_crc = Buf.get_i32 b 40;
        payload_len = Int64.to_int (Buf.get_i64 b 48);
      }

let ( let* ) = Result.bind

let decode ?stats ~dt ~count ~dst b =
  let* m = read_meta b in
  let plan = Plan.get ?stats dt in
  let expected_len = Plan.packed_size plan ~count in
  let got_payload = Buf.length b - header_size in
  if m.payload_len > got_payload then
    Error (Truncated_payload { expected = m.payload_len; got = got_payload })
  else if
    Buf.get_i32 b 56
    <> Crc32.digest_sub b ~pos:header_size ~len:m.payload_len
  then Error Payload_crc_mismatch
  else
    let expected_sig = signature_crc dt in
    if m.sig_crc <> expected_sig then
      Error
        (Signature_mismatch { stored = m.sig_crc; expected = expected_sig })
    else if m.count <> count then
      Error (Count_mismatch { stored = m.count; expected = count })
    else if m.payload_len <> expected_len then
      (* signature and count match, so a length mismatch means the
         header lies about the payload *)
      Error (Truncated_payload { expected = expected_len; got = m.payload_len })
    else begin
      if m.payload_len > 0 then
        Plan.unpack ?stats plan ~count
          ~src:(Buf.sub b ~pos:header_size ~len:m.payload_len)
          ~dst;
      Ok m
    end

let decode_exn ?stats ~dt ~count ~dst b =
  match decode ?stats ~dt ~count ~dst b with
  | Ok m -> m
  | Error e -> raise (Corrupt_snapshot e)
