(** Plan-serialized buffer snapshots.

    A snapshot is the checkpoint image of one registered application
    buffer: a fixed 64-byte versioned header followed by the buffer's
    packed representation, produced by the compiled
    {!Mpicd_datatype.Plan} engine — so the payload is byte-for-byte
    identical to what a wire transfer of the same (datatype, count)
    would carry (the qcheck property in [test_restart.ml] proves this
    against {!Mpicd_datatype.Datatype.pack}).

    Header layout (little-endian):
    {v
      [ 0..3 ]  magic "MCKP"
      [ 4..7 ]  format version (1)
      [ 8..15]  epoch
      [16..23]  world rank
      [24..31]  communicator id
      [32..39]  element count
      [40..43]  CRC-32 of the datatype's RLE type signature
      [44..47]  reserved (zero)
      [48..55]  payload length in bytes
      [56..59]  CRC-32 of the payload
      [60..63]  CRC-32 of header bytes [0..59]
    v}

    Decoding fails closed: every validation step returns a typed
    {!error} instead of scattering garbage into the destination
    buffer.  The payload is only unpacked after the header CRC, the
    payload CRC, the type-signature digest and the element count have
    all checked out. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype

type meta = {
  epoch : int;
  rank : int;  (** world rank that wrote the snapshot *)
  cid : int;  (** communicator id the buffer was registered under *)
  count : int;
  sig_crc : int32;  (** digest of the writer's RLE type signature *)
  payload_len : int;
}

type error =
  | Too_short of { need : int; got : int }
      (** shorter than the fixed header (or empty) *)
  | Bad_magic of int32
  | Bad_version of int
  | Header_crc_mismatch
      (** header bytes corrupted; none of the fields can be trusted *)
  | Truncated_payload of { expected : int; got : int }
      (** header intact but payload bytes are missing (or do not match
          the plan's packed size for the stored count) *)
  | Payload_crc_mismatch
  | Signature_mismatch of { stored : int32; expected : int32 }
      (** decoding against a datatype whose type signature differs from
          the writer's *)
  | Count_mismatch of { stored : int; expected : int }

exception Corrupt_snapshot of error

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val header_size : int

val signature_crc : Dt.t -> int32
(** CRC-32 of the canonical encoding of [Dt.rle_signature]: equal for
    signature-equal types, regardless of how the layout was built. *)

val encoded_size : Dt.t -> count:int -> int
(** Exact byte size of [encode]'s result. *)

val encode :
  ?stats:Mpicd_simnet.Stats.t ->
  epoch:int ->
  rank:int ->
  cid:int ->
  dt:Dt.t ->
  count:int ->
  src:Buf.t ->
  unit ->
  Buf.t
(** Snapshot [count] elements of [dt] laid out in [src] (offset 0).
    Packs through the compiled plan cache ([stats] feeds the plan
    cache counters, exactly like a typed send). *)

val read_meta : Buf.t -> (meta, error) result
(** Validate and parse the header only (magic, version, header CRC). *)

val decode :
  ?stats:Mpicd_simnet.Stats.t ->
  dt:Dt.t ->
  count:int ->
  dst:Buf.t ->
  Buf.t ->
  (meta, error) result
(** Validate the full image against [(dt, count)] and, only if every
    check passes, unpack the payload into [dst] (which must hold the
    type's extent footprint).  On [Error _], [dst] is untouched. *)

val decode_exn :
  ?stats:Mpicd_simnet.Stats.t -> dt:Dt.t -> count:int -> dst:Buf.t -> Buf.t -> meta
(** [decode], raising {!Corrupt_snapshot} on validation failure. *)
