module Buf = Mpicd_buf.Buf

type t = { tbl : (string, Buf.t) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let write t path b = Hashtbl.replace t.tbl path (Buf.copy b)
let read t path = Option.map Buf.copy (Hashtbl.find_opt t.tbl path)
let mem t path = Hashtbl.mem t.tbl path
let delete t path = Hashtbl.remove t.tbl path

let list t ~prefix =
  Hashtbl.fold
    (fun path _ acc ->
      if String.starts_with ~prefix path then path :: acc else acc)
    t.tbl []
  |> List.sort String.compare

let files t = Hashtbl.length t.tbl
let total_bytes t = Hashtbl.fold (fun _ b n -> n + Buf.length b) t.tbl 0
let clear t = Hashtbl.reset t.tbl

let get_exn t path =
  match Hashtbl.find_opt t.tbl path with
  | Some b -> b
  | None -> raise Not_found

let truncate t path ~len =
  let b = get_exn t path in
  let len = max 0 (min len (Buf.length b)) in
  Hashtbl.replace t.tbl path (Buf.copy (Buf.sub b ~pos:0 ~len))

let corrupt_bit t path ~pos ~bit =
  let b = get_exn t path in
  Buf.set_u8 b pos (Buf.get_u8 b pos lxor (1 lsl (bit land 7)))
