(** In-memory virtual filesystem for checkpoint images and message
    logs.

    The store is a host-side value, deliberately independent of any
    world or engine: it survives the simulated "machine" that wrote it,
    which is what lets the recovery orchestrator respawn a fresh world
    (a simulated replacement job) and restore state checkpointed by the
    previous one.  Paths are flat strings with ['/'] separators by
    convention ([list] filters on a prefix).

    Writes and reads copy, so later mutation of a caller's buffer can
    never silently alter stored state.  [truncate] and [corrupt_bit]
    exist for the fail-closed tests: they damage stored images the way
    a torn or bit-rotted file would. *)

module Buf = Mpicd_buf.Buf

type t

val create : unit -> t

val write : t -> string -> Buf.t -> unit
(** Stores a copy; overwrites. *)

val read : t -> string -> Buf.t option
(** Returns an independent copy. *)

val mem : t -> string -> bool

val delete : t -> string -> unit
(** No-op when absent. *)

val list : t -> prefix:string -> string list
(** Paths with the given prefix, sorted. *)

val files : t -> int
val total_bytes : t -> int
val clear : t -> unit

(** {1 Damage injection (tests)} *)

val truncate : t -> string -> len:int -> unit
(** Keep only the first [len] bytes.  @raise Not_found if absent. *)

val corrupt_bit : t -> string -> pos:int -> bit:int -> unit
(** Flip one bit of the stored image.  @raise Not_found if absent. *)
