module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Obs = Mpicd_obs.Obs
module Crc32 = Mpicd_ucx.Crc32
module Mpi = Mpicd.Mpi

exception Replay_diverged of string

let () =
  Printexc.register_printer (function
    | Replay_diverged m -> Some ("Replay_diverged: " ^ m)
    | _ -> None)

(* Marker sub-space of the Restart channel's 38-bit tag range:
   application tags live below, epoch markers at [marker_base + epoch]. *)
let marker_base = 0x3E_0000_0000

type reg = { r_name : string; r_dt : Dt.t; r_count : int; r_buf : Buf.t }

type t = {
  mutable comm : Mpi.comm;
  store : Store.t;
  obs : Obs.t;
  job : string;
  nranks : int;  (* full group size at job start *)
  gid : int;  (* digest of the initial group's world ranks *)
  mutable regs : reg list;  (* registration order *)
  mutable epoch : int;
  mutable incarnation : int;
  seqs : Buf.t;
      (* per-world-rank message-log cursors: [16r] next send seq to r,
         [16r+8] next expected recv seq from r.  Registered as a hidden
         buffer so checkpoints rewind the cursors with the data. *)
}

(* --- small accessors --- *)

let comm rt = rt.comm
let epoch rt = rt.epoch
let incarnation rt = rt.incarnation
let set_incarnation rt i = rt.incarnation <- i
let store rt = rt.store
let world rt = Mpi.world_of rt.comm
let engine rt = Mpi.world_engine (world rt)
let stats rt = Mpi.world_stats (world rt)
let wrank rt = Mpi.world_rank_of rt.comm (Mpi.rank rt.comm)

let get_send_seq rt r = Int64.to_int (Buf.get_i64 rt.seqs (16 * r))
let set_send_seq rt r v = Buf.set_i64 rt.seqs (16 * r) (Int64.of_int v)
let get_recv_seq rt r = Int64.to_int (Buf.get_i64 rt.seqs ((16 * r) + 8))
let set_recv_seq rt r v = Buf.set_i64 rt.seqs ((16 * r) + 8) (Int64.of_int v)

let inst rt name args =
  if Obs.enabled rt.obs then
    Obs.instant rt.obs ~time:(Engine.now (engine rt)) ~track:(wrank rt)
      ~cat:"ckpt" ~args name

let span rt name f =
  if Obs.enabled rt.obs then begin
    let t0 = Engine.now (engine rt) in
    let r = f () in
    ignore
      (Obs.span_complete rt.obs ~track:(wrank rt) ~cat:"ckpt" ~t0
         ~t1:(Engine.now (engine rt)) name
        : Obs.span);
    r
  end
  else f ()

(* Model the CPU cost of moving a snapshot/log image: one streaming
   copy of its bytes, charged to this rank's virtual clock. *)
let charge rt bytes =
  let cfg = Mpi.world_config (world rt) in
  Engine.sleep (engine rt) (Config.memcpy_time cfg.Config.cpu bytes)

(* --- store paths --- *)

let snap_path ~job ~epoch ~rank name =
  Printf.sprintf "%s/ckpt/e%04d/r%03d/%s" job epoch rank name

let commit_path ~job ~epoch ~rank =
  Printf.sprintf "%s/ckpt/e%04d/commit/r%03d" job epoch rank

let log_path ~job ~src ~dst seq =
  Printf.sprintf "%s/log/r%03d/d%03d/s%08d" job src dst seq

let group_digest c =
  let n = Mpi.size c in
  let b = Buf.create (8 * n) in
  for r = 0 to n - 1 do
    Buf.set_i64 b (8 * r) (Int64.of_int (Mpi.world_rank_of c r))
  done;
  Int32.to_int (Crc32.digest b) land 0x3FFF_FFFF

(* --- registration --- *)

let register rt ~name ~dt ~count buf =
  let need = if count = 0 then 0 else Dt.extent dt * count in
  if Buf.length buf < need then
    invalid_arg
      (Printf.sprintf "Restart.register %S: buffer %dB < footprint %dB" name
         (Buf.length buf) need);
  let r = { r_name = name; r_dt = dt; r_count = count; r_buf = buf } in
  if List.exists (fun x -> x.r_name = name) rt.regs then
    rt.regs <- List.map (fun x -> if x.r_name = name then r else x) rt.regs
  else rt.regs <- rt.regs @ [ r ]

let seqs_name = "__seqs"

let registered rt =
  List.filter_map
    (fun r -> if r.r_name = seqs_name then None else Some (r.r_name, r.r_buf))
    rt.regs

let create ?(obs = Obs.null) ~store ~job c =
  let nranks = Mpi.size c in
  let seqs = Buf.create (16 * nranks) in
  let rt =
    {
      comm = c;
      store;
      obs;
      job;
      nranks;
      gid = group_digest c;
      regs = [];
      epoch = -1;
      incarnation = 0;
      seqs;
    }
  in
  register rt ~name:seqs_name ~dt:(Dt.contiguous (2 * nranks) Dt.int64)
    ~count:1 seqs;
  rt

(* --- logged point-to-point --- *)

let payload_of rt = function
  | Mpi.Bytes b -> b
  | Mpi.Typed { dt; count; base } ->
      let dst = Buf.create (Mpi.pack_size dt ~count) in
      ignore (Mpi.pack rt.comm dt ~count ~src:base ~dst ~position:0 : int);
      dst
  | Mpi.Custom _ ->
      invalid_arg "Restart.send: Custom buffers cannot be logged"

(* Log entry: [tag i64 | epoch i64 | seq i64 | payload].  The wire
   envelope carries [incarnation i64 | epoch i64 | seq i64 | payload]
   instead: the incarnation is deliberately NOT part of the logged
   image, so a replacement incarnation's re-executed send can be
   compared byte-for-byte against what the previous life sent. *)
let header_size = 24

let send rt ~dst ~tag buf =
  if tag < 0 || tag >= marker_base then
    invalid_arg "Restart.send: tag collides with the epoch-marker sub-space";
  let c = rt.comm in
  let st = stats rt in
  let wdst = Mpi.world_rank_of c dst in
  let seq = get_send_seq rt wdst in
  set_send_seq rt wdst (seq + 1);
  let e = rt.epoch + 1 in
  let payload = payload_of rt buf in
  let plen = Buf.length payload in
  let entry = Buf.create (header_size + plen) in
  Buf.set_i64 entry 0 (Int64.of_int tag);
  Buf.set_i64 entry 8 (Int64.of_int e);
  Buf.set_i64 entry 16 (Int64.of_int seq);
  Buf.blit ~src:payload ~src_pos:0 ~dst:entry ~dst_pos:header_size ~len:plen;
  let path = log_path ~job:rt.job ~src:(wrank rt) ~dst:wdst seq in
  (match Store.read rt.store path with
  | Some prev when Mpi.size c = rt.nranks ->
      (* re-execution at full group size: the logged envelope from the
         previous life must be regenerated byte-identically *)
      if not (Buf.equal prev entry) then
        raise
          (Replay_diverged
             (Printf.sprintf
                "send %d->%d seq=%d epoch=%d: payload differs from logged \
                 envelope"
                (wrank rt) wdst seq e));
      Stats.record_msg_replayed st;
      inst rt "log_replay_verified"
        [ ("dst", Obs.Int wdst); ("seq", Obs.Int seq) ]
  | _ ->
      Store.write rt.store path entry;
      Stats.record_msg_logged st;
      charge rt (Buf.length entry));
  let env = Buf.create (header_size + plen) in
  Buf.set_i64 env 0 (Int64.of_int rt.incarnation);
  Buf.set_i64 env 8 (Int64.of_int e);
  Buf.set_i64 env 16 (Int64.of_int seq);
  Buf.blit ~src:payload ~src_pos:0 ~dst:env ~dst_pos:header_size ~len:plen;
  Mpi.Internal.send_k c Restart ~dst ~tag (Mpi.Bytes env)

let recv rt ~source ~tag buf =
  let c = rt.comm in
  let st = stats rt in
  let wsrc = Mpi.world_rank_of c source in
  let scratch = Buf.create (header_size + Mpi.buffer_size buf) in
  let rec loop () =
    let status =
      Mpi.Internal.recv_k c Restart ~source ~tag (Mpi.Bytes scratch)
    in
    let env_inc = Int64.to_int (Buf.get_i64 scratch 0) in
    let seq = Int64.to_int (Buf.get_i64 scratch 16) in
    let expected = get_recv_seq rt wsrc in
    if seq < expected then begin
      (* duplicate (or stale pre-recovery) envelope: deterministic
         re-execution already delivered this sequence number *)
      Stats.record_dup_suppressed st;
      inst rt "dup_suppressed"
        [
          ("src", Obs.Int wsrc);
          ("seq", Obs.Int seq);
          ("incarnation", Obs.Int env_inc);
        ];
      loop ()
    end
    else if seq > expected then
      raise
        (Replay_diverged
           (Printf.sprintf "recv %d<-%d: sequence gap (got %d, expected %d)"
              (wrank rt) wsrc seq expected))
    else begin
      set_recv_seq rt wsrc (expected + 1);
      let plen = status.Mpi.len - header_size in
      (match buf with
      | Mpi.Bytes b ->
          Buf.blit ~src:scratch ~src_pos:header_size ~dst:b ~dst_pos:0
            ~len:plen
      | Mpi.Typed { dt; count; base } ->
          ignore
            (Mpi.unpack c dt ~count
               ~src:(Buf.sub scratch ~pos:header_size ~len:plen)
               ~position:0 ~dst:base
              : int)
      | Mpi.Custom _ ->
          invalid_arg "Restart.recv: Custom buffers cannot be logged");
      { status with Mpi.len = plen }
    end
  in
  loop ()

(* --- epochs --- *)

let snapshot_one rt ~epoch reg =
  let st = stats rt in
  let img =
    Snapshot.encode ~stats:st ~epoch ~rank:(wrank rt) ~cid:rt.gid
      ~dt:reg.r_dt ~count:reg.r_count ~src:reg.r_buf ()
  in
  Store.write rt.store
    (snap_path ~job:rt.job ~epoch ~rank:(wrank rt) reg.r_name)
    img;
  Stats.record_checkpoint st ~bytes:(Buf.length img);
  charge rt (Buf.length img)

let commit rt =
  let c = rt.comm in
  let n = Mpi.size c in
  let me = Mpi.rank c in
  let e = rt.epoch + 1 in
  span rt "commit" (fun () ->
      (* 1. Chandy–Lamport cut: exchange epoch markers on the Restart
         channel.  Per-channel FIFO means that once peer p's marker is
         in, every interval-[e] envelope p sent us has been delivered
         (the application consumed them before calling commit). *)
      let tag = marker_base + e in
      let marker = Buf.create 16 in
      Buf.set_i64 marker 0 (Int64.of_int e);
      Buf.set_i64 marker 8 (Int64.of_int rt.incarnation);
      let sends = ref [] in
      for p = 0 to n - 1 do
        if p <> me then
          sends :=
            Mpi.Internal.isend_k c Restart ~dst:p ~tag (Mpi.Bytes marker)
            :: !sends
      done;
      let scratch = Buf.create 16 in
      for p = 0 to n - 1 do
        if p <> me then begin
          ignore
            (Mpi.Internal.recv_k c Restart ~source:p ~tag (Mpi.Bytes scratch)
              : Mpi.status);
          inst rt "epoch_marker"
            [
              ("from", Obs.Int (Mpi.world_rank_of c p)); ("epoch", Obs.Int e);
            ]
        end
      done;
      ignore (Mpi.waitall !sends : Mpi.status list);
      (* 2. Snapshot every registered buffer through its pack plan. *)
      List.iter (fun reg -> snapshot_one rt ~epoch:e reg) rt.regs;
      (* 3. Completion: the failure-aware barrier proves every member
         wrote its snapshots; the completion marker lands right after
         the barrier returns (no operation in between can fail), so
         the minimum locally-committed epoch across survivors is
         always globally complete. *)
      Mpi.barrier c;
      (* The persisted marker carries only the epoch: the incarnation
         is a property of the world that happened to write it, and a
         recovered run's store must converge byte-identically with the
         fault-free run's. *)
      let done_marker = Buf.create 8 in
      Buf.set_i64 done_marker 0 (Int64.of_int e);
      Store.write rt.store
        (commit_path ~job:rt.job ~epoch:e ~rank:(wrank rt))
        done_marker;
      rt.epoch <- e;
      inst rt "epoch_complete" [ ("epoch", Obs.Int e) ])

let restore_to rt ~epoch =
  span rt "restore" (fun () ->
      let st = stats rt in
      List.iter
        (fun reg ->
          let path =
            snap_path ~job:rt.job ~epoch ~rank:(wrank rt) reg.r_name
          in
          let img =
            match Store.read rt.store path with
            | Some b -> b
            | None ->
                (* a missing image fails closed exactly like a
                   zero-length one *)
                raise
                  (Snapshot.Corrupt_snapshot
                     (Snapshot.Too_short
                        { need = Snapshot.header_size; got = 0 }))
          in
          ignore
            (Snapshot.decode_exn ~stats:st ~dt:reg.r_dt ~count:reg.r_count
               ~dst:reg.r_buf img
              : Snapshot.meta);
          Stats.record_restore st;
          charge rt (Buf.length img))
        rt.regs;
      rt.epoch <- epoch;
      inst rt "restored" [ ("epoch", Obs.Int epoch) ])

let parse_commit_path ~job path =
  let prefix = job ^ "/ckpt/e" in
  if not (String.starts_with ~prefix path) then None
  else
    try
      Scanf.sscanf
        (String.sub path (String.length prefix)
           (String.length path - String.length prefix))
        "%4d/commit/r%3d%!"
        (fun e r -> Some (e, r))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let latest_complete_epoch store ~job ~nranks =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match parse_commit_path ~job p with
      | Some (e, _) ->
          Hashtbl.replace counts e
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts e))
      | None -> ())
    (Store.list store ~prefix:(job ^ "/ckpt/"));
  Hashtbl.fold
    (fun e n best -> if n >= nranks && e > best then e else best)
    counts (-1)

let prune_log rt ~upto =
  let prefix = Printf.sprintf "%s/log/r%03d/" rt.job (wrank rt) in
  List.iter
    (fun path ->
      match Store.read rt.store path with
      | Some b
        when Buf.length b >= header_size
             && Int64.to_int (Buf.get_i64 b 8) <= upto ->
          Store.delete rt.store path
      | _ -> ())
    (Store.list rt.store ~prefix)

(* --- recovery orchestration --- *)

let rec floor_log2 n = if n <= 1 then 0 else 1 + floor_log2 (n lsr 1)

(* Epoch [e] (>= -1) encoded for the AND-agreement as "bits [0..e+1]
   set": the AND across survivors keeps exactly the bits every member
   has, whose highest set bit therefore encodes the minimum — i.e. the
   latest globally-complete — epoch. *)
let epoch_mask e = (1 lsl (min e 58 + 2)) - 1

let recover rt =
  let st = stats rt in
  Stats.record_recovery st;
  span rt "recovery" (fun () ->
      let c = rt.comm in
      inst rt "recovery_begin"
        [ ("epoch", Obs.Int rt.epoch); ("incarnation", Obs.Int rt.incarnation) ];
      Mpi.comm_failure_ack c;
      Mpi.comm_revoke c;
      let c' = Mpi.comm_shrink c in
      rt.comm <- c';
      Mpi.comm_failure_ack c';
      let agreed = Mpi.comm_agree c' ~flags:(epoch_mask rt.epoch) in
      let restore_e = floor_log2 agreed - 1 in
      rt.incarnation <- rt.incarnation + 1;
      if restore_e >= 0 then begin
        restore_to rt ~epoch:restore_e;
        prune_log rt ~upto:restore_e
      end
      else begin
        (* nothing globally complete: rewind the log cursors; the
           caller re-initializes application state *)
        Buf.fill rt.seqs '\000';
        rt.epoch <- -1
      end;
      inst rt "recovery_complete"
        [
          ("epoch", Obs.Int restore_e);
          ("survivors", Obs.Int (Mpi.size c'));
        ];
      restore_e)

type app = { epochs : int; init : t -> unit; step : t -> epoch:int -> unit }

let run_protected ?(max_recoveries = 8) rt app =
  let recoveries = ref 0 in
  app.init rt;
  if rt.epoch < 0 then commit rt;
  let rec recover_loop () =
    match recover rt with
    | e -> e
    | exception Mpi.Mpi_error _ when !recoveries < max_recoveries ->
        incr recoveries;
        recover_loop ()
  in
  let rec loop () =
    if rt.epoch < app.epochs then begin
      (try
         app.step rt ~epoch:(rt.epoch + 1);
         commit rt
       with Mpi.Mpi_error _ when !recoveries < max_recoveries ->
         incr recoveries;
         let e = recover_loop () in
         if e < 0 then begin
           app.init rt;
           commit rt
         end);
      loop ()
    end
  in
  loop ()

type job_report = {
  worlds_used : int;
  completed : bool;
  start_epochs : int list;
}

let run_job ?(config = Config.default) ?plan ?obs ?(max_worlds = 8) ~store
    ~job ~size app =
  (match plan with
  | Some p when p.Fault.crashes <> [] && p.Fault.hb_period_ns <= 0. ->
      invalid_arg "Restart.run_job: a crash plan needs heartbeats (hb=)"
  | _ -> ());
  let starts = ref [] in
  let rec attempt k plan_opt =
    if k >= max_worlds then
      { worlds_used = k; completed = false; start_epochs = List.rev !starts }
    else begin
      let w = Mpi.create_world ~config ~size () in
      Mpi.set_faults w plan_opt;
      (match obs with Some o -> Mpi.set_obs w o | None -> ());
      let finished = Array.make size false in
      let start_e = latest_complete_epoch store ~job ~nranks:size in
      starts := start_e :: !starts;
      let body c =
        let rt = create ?obs ~store ~job c in
        rt.incarnation <- k;
        app.init rt;
        if start_e >= 0 then restore_to rt ~epoch:start_e else commit rt;
        for e = rt.epoch + 1 to app.epochs do
          app.step rt ~epoch:e;
          commit rt
        done;
        finished.(Mpi.rank c) <- true
      in
      (try
         Mpi.run w (fun c ->
             try body c with Mpi.Mpi_error _ | Mpi.Aborted _ -> ())
       with Engine.Deadlock _ -> ());
      if Array.for_all Fun.id finished then
        {
          worlds_used = k + 1;
          completed = true;
          start_epochs = List.rev !starts;
        }
      else begin
        (* respawn as a simulated replacement: crashes that already
           fired in this life are stripped — the replacement rank does
           not die again — while timing faults keep their schedule *)
        let now = Engine.now (Mpi.world_engine w) in
        let plan' =
          Option.map
            (fun p ->
              {
                p with
                Fault.crashes =
                  List.filter (fun (_, t) -> t > now) p.Fault.crashes;
              })
            plan_opt
        in
        attempt (k + 1) plan'
      end
    end
  in
  attempt 0 plan
