(** Collective operations over mpicd buffers — including custom
    datatypes.

    The paper leaves "integration with collective operations as future
    work, which we acknowledge as a requirement for standardization"
    (§VIII) and notes that collectives would need boundaries between
    minimum chunks of data processed by the callbacks (§VI).  This
    module implements that future work in a simplified form: every
    collective treats one {!Mpi.buffer} as an indivisible chunk, so all
    algorithms (binomial trees, dissemination barrier, rounds of
    broadcasts) only ever forward whole buffers — which is exactly the
    chunk-boundary discipline the paper asks for.

    Collectives are SPMD: every rank of the communicator must call the
    same operation in the same order.  All traffic runs in the internal
    tag space and cannot collide with user point-to-point messages. *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi

val barrier : Mpi.comm -> unit
(** Dissemination barrier: ceil(log2 n) rounds (the linear
    {!Mpi.barrier} is kept for comparison in the ablation bench). *)

val bcast : Mpi.comm -> root:int -> Mpi.buffer -> unit
(** Binomial-tree broadcast.  At the root the buffer supplies the data;
    at other ranks it receives it.  Works for [Bytes], [Typed] and
    [Custom] buffers: intermediate tree nodes receive into their buffer
    and forward from it. *)

val gather : Mpi.comm -> root:int -> send:Mpi.buffer -> recv:(int -> Mpi.buffer) -> unit
(** Linear gather.  At the root, [recv i] must yield the buffer for
    rank [i]'s contribution, for every [i <> root]; the root's own
    contribution stays in place (as in MPI_IN_PLACE).  [recv] is not
    called on non-root ranks. *)

val scatter : Mpi.comm -> root:int -> send:(int -> Mpi.buffer) -> recv:Mpi.buffer -> unit
(** Linear scatter, dual of {!gather}. *)

val allgather : Mpi.comm -> send:Mpi.buffer -> recv:(int -> Mpi.buffer) -> unit
(** Every rank contributes [send] and receives every other rank's
    contribution into [recv i].  ([recv] is not called for the caller's
    own rank.)  Implemented as n-1 rounds of a ring exchange. *)

val alltoall : Mpi.comm -> send:(int -> Mpi.buffer) -> recv:(int -> Mpi.buffer) -> unit
(** Personalized all-to-all: rank i's [send j] buffer is delivered into
    rank j's [recv i] buffer.  Neither function is called for the
    caller's own rank (local data stays in place). *)

val reduce_f64 :
  Mpi.comm -> root:int -> op:[ `Sum | `Max | `Min ] -> float array -> unit
(** Binomial-tree reduction of a float64 vector; the result replaces
    the root's array contents.  Non-root arrays are used as scratch. *)

val allreduce_f64 :
  Mpi.comm -> op:[ `Sum | `Max | `Min ] -> float array -> unit
(** {!reduce_f64} to rank 0 followed by {!bcast}. *)

val resilient_allreduce_f64 :
  ?max_attempts:int ->
  ?on_shrink:(Mpi.comm -> unit) ->
  Mpi.comm ->
  op:[ `Sum | `Max | `Min ] ->
  float array ->
  Mpi.comm * int
(** Fault-tolerant {!allreduce_f64} in the canonical ULFM recovery
    loop: after every attempt the members agree fault-tolerantly
    ({!Mpi.comm_agree}) on whether {e all} of them succeeded — so the
    decision to commit or retry is uniform even when a failure
    interrupted only some ranks — and on failure the communicator is
    revoked, shrunk to the survivors ({!Mpi.comm_shrink}), the local
    contribution restored from a pristine copy and the reduction
    retried on the new communicator.  Returns the communicator the
    reduction finally succeeded on (the input one if no failure
    occurred) and the number of shrinks performed.  The result in
    [data] is the reduction over the members of the {e returned}
    communicator; note that a rank crashing {e after} the reduction
    completed leaves the committed result including its contribution,
    exactly as in MPI.  [on_shrink] is invoked with each replacement
    communicator right after a shrink, so callers that anchor state to
    the communicator (e.g. the checkpoint runtime in
    [Mpicd_restart.Restart]) can re-anchor before the retry.  Raises [Mpi_error (Peer_failed _)] at a caller
    that is itself presumed dead, and re-raises the last error after
    [max_attempts] attempts (default: the initial group size + 2 —
    process failures shrink the group so only non-crash errors such as
    [Timeout] on a hopeless link can repeat).  Works under
    [Errors_raise] and [Errors_return] handlers. *)
