module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module K = Mpi.Internal

(* Internal tag layout: seq * 4096 + opcode * 1024 + round.  Sequence
   numbers come from the shared per-communicator counter, so SPMD
   ordering keeps all ranks in agreement; per-channel FIFO matching
   makes residual numeric collisions harmless. *)
let op_barrier = 0
let op_bcast = 1
let op_move = 2 (* gather / scatter / allgather rounds *)
let op_reduce = 3

let tag_of ~seq ~op ~round =
  (* Rounds wrap modulo the 10-bit field: the ring allgather posts one
     round per peer, so worlds past 1025 ranks reuse round tags — but
     reuse happens in posting order on a single (src, dst, kind)
     channel, where FIFO matching keeps it unambiguous.  For n <= 1025
     the encoding is unchanged. *)
  (seq * 4096) + (op * 1024) + (round land 1023)

(* Failure protection shared by every collective.  The sequence number
   must already have been taken (so ranks that fail fast stay aligned
   with ranks that run the body).  [body] receives a [track] function it
   must apply to every nonblocking send it posts; when any internal
   operation raises, we poison the collective for our peers, then drain
   the tracked requests — [Mpi.wait] on an already-finalized request
   replays its memoized outcome, so datatype callback state is released
   exactly once even on abort — and finally surface the error through
   the communicator's error handler. *)
let protected comm body =
  match K.collective_ready comm with
  | Some err -> K.collective_error comm err
  | None -> (
      let tracked = ref [] in
      let track r =
        tracked := r :: !tracked;
        r
      in
      try body track
      with Mpi.Mpi_error err ->
        K.poison_collective comm err;
        List.iter
          (fun r -> match Mpi.wait r with _ -> () | exception _ -> ())
          !tracked;
        K.collective_error comm err)

let barrier comm =
  let n = Mpi.size comm and me = Mpi.rank comm in
  let seq = K.fresh_seq comm in
  protected comm @@ fun track ->
  if n > 1 then begin
    let empty () = Mpi.Bytes (Buf.create 0) in
    let round = ref 0 in
    let dist = ref 1 in
    while !dist < n do
      let to_ = (me + !dist) mod n in
      let from = (me - !dist + n) mod n in
      let tag = tag_of ~seq ~op:op_barrier ~round:!round in
      let s = track (K.isend_k comm K.Internal ~dst:to_ ~tag (empty ())) in
      ignore (K.recv_k comm K.Internal ~source:from ~tag (empty ()));
      ignore (Mpi.wait s);
      incr round;
      dist := !dist * 2
    done
  end

let bcast comm ~root buf =
  let n = Mpi.size comm and me = Mpi.rank comm in
  if root < 0 || root >= n then invalid_arg "Collectives.bcast: bad root";
  let seq = K.fresh_seq comm in
  protected comm @@ fun _track ->
  if n > 1 then begin
    let tag = tag_of ~seq ~op:op_bcast ~round:0 in
    let vrank = (me - root + n) mod n in
    (* find the lowest set bit of vrank (or the first power >= n for
       the root), receiving from the parent on the way *)
    let mask = ref 1 in
    while !mask < n && vrank land !mask = 0 do
      mask := !mask * 2
    done;
    if vrank <> 0 then begin
      let parent = (vrank - !mask + root) mod n in
      ignore (K.recv_k comm K.Internal ~source:parent ~tag buf)
    end;
    (* forward to children *)
    mask := !mask / 2;
    while !mask >= 1 do
      let vchild = vrank + !mask in
      if vchild < n then begin
        let child = (vchild + root) mod n in
        K.send_k comm K.Internal ~dst:child ~tag buf
      end;
      mask := !mask / 2
    done
  end

let gather comm ~root ~send ~recv =
  let n = Mpi.size comm and me = Mpi.rank comm in
  if root < 0 || root >= n then invalid_arg "Collectives.gather: bad root";
  let seq = K.fresh_seq comm in
  protected comm @@ fun _track ->
  let tag = tag_of ~seq ~op:op_move ~round:0 in
  if me = root then
    for i = 0 to n - 1 do
      if i <> root then ignore (K.recv_k comm K.Internal ~source:i ~tag (recv i))
    done
  else K.send_k comm K.Internal ~dst:root ~tag send

let scatter comm ~root ~send ~recv =
  let n = Mpi.size comm and me = Mpi.rank comm in
  if root < 0 || root >= n then invalid_arg "Collectives.scatter: bad root";
  let seq = K.fresh_seq comm in
  protected comm @@ fun _track ->
  let tag = tag_of ~seq ~op:op_move ~round:0 in
  if me = root then
    for i = 0 to n - 1 do
      if i <> root then K.send_k comm K.Internal ~dst:i ~tag (send i)
    done
  else ignore (K.recv_k comm K.Internal ~source:root ~tag recv)

let allgather comm ~send ~recv =
  let n = Mpi.size comm and me = Mpi.rank comm in
  let seq = K.fresh_seq comm in
  protected comm @@ fun track ->
  if n > 1 then begin
    let right = (me + 1) mod n and left = (me - 1 + n) mod n in
    (* ring: in round s we forward the contribution of rank
       (me - s) mod n and receive that of (me - s - 1) mod n *)
    for s = 0 to n - 2 do
      let tag = tag_of ~seq ~op:op_move ~round:s in
      let outgoing_owner = (me - s + n) mod n in
      let incoming_owner = (me - s - 1 + n) mod n in
      let out = if outgoing_owner = me then send else recv outgoing_owner in
      let inc = recv incoming_owner in
      let sreq = track (K.isend_k comm K.Internal ~dst:right ~tag out) in
      ignore (K.recv_k comm K.Internal ~source:left ~tag inc);
      ignore (Mpi.wait sreq)
    done
  end

let alltoall comm ~send ~recv =
  let n = Mpi.size comm and me = Mpi.rank comm in
  let seq = K.fresh_seq comm in
  protected comm @@ fun track ->
  let tag = tag_of ~seq ~op:op_move ~round:1 in
  (* pairwise exchange schedule: in round r, partner = me xor r (for
     power-of-two sizes) falling back to shifted pairing otherwise *)
  let reqs = ref [] in
  for peer = 0 to n - 1 do
    if peer <> me then
      reqs :=
        track (K.isend_k comm K.Internal ~dst:peer ~tag (send peer)) :: !reqs
  done;
  for peer = 0 to n - 1 do
    if peer <> me then
      ignore (K.irecv_k comm K.Internal ~source:peer ~tag (recv peer) |> Mpi.wait)
  done;
  List.iter (fun r -> ignore (Mpi.wait r)) !reqs

(* --- float64 reductions --- *)

let buf_of_floats fs =
  let b = Buf.create (8 * Array.length fs) in
  Array.iteri (fun i v -> Buf.set_f64 b (8 * i) v) fs;
  b

let floats_into b fs =
  for i = 0 to Array.length fs - 1 do
    fs.(i) <- Buf.get_f64 b (8 * i)
  done

let apply_op op a incoming =
  let f =
    match op with
    | `Sum -> ( +. )
    | `Max -> Float.max
    | `Min -> Float.min
  in
  for i = 0 to Array.length a - 1 do
    a.(i) <- f a.(i) incoming.(i)
  done

let reduce_f64 comm ~root ~op data =
  let n = Mpi.size comm and me = Mpi.rank comm in
  if root < 0 || root >= n then invalid_arg "Collectives.reduce_f64: bad root";
  let seq = K.fresh_seq comm in
  protected comm @@ fun _track ->
  if n > 1 then begin
    let vrank = (me - root + n) mod n in
    (* Receive-side staging, shared by every child message of this call
       and allocated only when the first one arrives — leaf ranks (half
       the tree) send immediately and never pay for it. *)
    let scratch = lazy (Array.make (Array.length data) 0.) in
    let inbuf = lazy (Buf.create (8 * Array.length data)) in
    let mask = ref 1 in
    let continue = ref true in
    while !continue && !mask < n do
      if vrank land !mask = 0 then begin
        let vchild = vrank + !mask in
        if vchild < n then begin
          let child = (vchild + root) mod n in
          let tag = tag_of ~seq ~op:op_reduce ~round:0 in
          let inbuf = Lazy.force inbuf and scratch = Lazy.force scratch in
          ignore (K.recv_k comm K.Internal ~source:child ~tag (Mpi.Bytes inbuf));
          floats_into inbuf scratch;
          apply_op op data scratch
        end
      end
      else begin
        let parent = ((vrank - !mask) + root) mod n in
        let tag = tag_of ~seq ~op:op_reduce ~round:0 in
        K.send_k comm K.Internal ~dst:parent ~tag (Mpi.Bytes (buf_of_floats data));
        continue := false
      end;
      mask := !mask * 2
    done
  end

let allreduce_f64 comm ~op data =
  reduce_f64 comm ~root:0 ~op data;
  (* Only the root's reduced values travel: non-root ranks receive into
     the staging buffer, so serializing their scratch data into it
     first would be wasted work. *)
  let b =
    if Mpi.rank comm = 0 then buf_of_floats data
    else Buf.create (8 * Array.length data)
  in
  bcast comm ~root:0 (Mpi.Bytes b);
  floats_into b data

(* --- fault-tolerant allreduce --- *)

let process_failure = function
  | Mpi.Peer_failed _ | Mpi.Revoked | Mpi.Timeout _ | Mpi.Data_corrupted ->
      true
  | _ -> false

let resilient_allreduce_f64 ?max_attempts ?(on_shrink = fun _ -> ()) comm ~op
    data =
  let max_attempts =
    match max_attempts with Some m -> m | None -> Mpi.size comm + 2
  in
  (* Keep a pristine copy of the local contribution: a failed attempt
     may have partially reduced [data] (non-root ranks use it as
     scratch), so every retry restarts from the original values. *)
  let orig = Array.copy data in
  (* A stashed process failure, under [Errors_return]. *)
  let stashed comm =
    match Mpi.last_error comm with
    | Some err when process_failure err ->
        Mpi.clear_last_error comm;
        Some err
    | _ -> None
  in
  let rec attempt comm shrinks attempts =
    Array.blit orig 0 data 0 (Array.length orig);
    let failed =
      match allreduce_f64 comm ~op data with
      | () -> stashed comm
      | exception Mpi.Mpi_error err when process_failure err -> Some err
    in
    (* Commit or retry must be decided uniformly: a rank whose attempt
       happened to complete before a peer died would otherwise return
       while the others shrink — and the shrink agreement would wait
       for it forever.  So every attempt ends with a fault-tolerant
       agreement on collective success (the canonical ULFM loop).
       Failures already known locally are acknowledged first, so a
       crash that only interrupted {e other} ranks' attempts does not
       turn the agreement itself into an error here. *)
    Mpi.comm_failure_ack comm;
    let ok =
      match Mpi.comm_agree comm ~flags:(if failed = None then 1 else 0) with
      | v -> ( match stashed comm with Some _ -> false | None -> v land 1 = 1)
      | exception Mpi.Mpi_error err when process_failure err -> false
    in
    if ok then (comm, shrinks)
    else if attempts >= max_attempts then
      raise
        (Mpi.Mpi_error
           (match failed with Some err -> err | None -> Mpi.Revoked))
    else begin
      (* Flush every member out of the broken pattern, then rebuild on
         the survivors and retry.  A process failure shrinks the group,
         so progress is guaranteed; [max_attempts] only guards against
         non-crash errors (e.g. [Timeout] on a hopeless link) repeating
         on an undiminished group. *)
      Mpi.comm_revoke comm;
      let comm' = Mpi.comm_shrink comm in
      on_shrink comm';
      attempt comm' (shrinks + 1) (attempts + 1)
    end
  in
  attempt comm 0 1
