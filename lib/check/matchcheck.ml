module Mpi = Mpicd.Mpi
module Monitor = Mpicd.Mpi.Monitor
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Trace = Mpicd_simnet.Trace

let analyzer = "comm-match"

(* A channel is the matching domain of MPI point-to-point traffic:
   messages between one (source, destination) pair on one communicator
   with one tag preserve order, so within a channel pairing is FIFO. *)
type channel = {
  ch_src : int;
  ch_dst : int;
  ch_cid : int;
  ch_kind : int;
  ch_tag : int;
}

let describe_op (o : Monitor.op) =
  Printf.sprintf "%s by rank %d (peer %s, tag %s, cid %d)"
    (match o.kind with Monitor.Send -> "send" | Monitor.Recv -> "recv")
    o.rank
    (if o.peer < 0 then "ANY" else string_of_int o.peer)
    (if o.tag < 0 then "ANY" else string_of_int o.tag)
    o.cid

let pp_rle s =
  if s = [] then "<empty>"
  else
    String.concat "+"
      (List.map
         (fun (p, n) ->
           Printf.sprintf "%s x%d"
             (Mpicd_datatype.Datatype.to_string
                (Mpicd_datatype.Datatype.predefined p))
             n)
         s)

(* [prefix_rest send recv] checks that the send signature is a prefix of
   the receive signature (MPI allows receiving into a bigger type);
   returns [None] on mismatch. *)
let rec prefix_rest send recv =
  match (send, recv) with
  | [], r -> Some r
  | _ :: _, [] -> None
  | (p, n) :: s', (q, m) :: r' ->
      if p <> q then None
      else if n < m then if s' = [] then Some ((q, m - n) :: r') else None
      else if n = m then prefix_rest s' r'
      else prefix_rest ((p, n - m) :: s') r'

let analyze ~subject ~world_size ~deadlocked (m : Monitor.t) =
  let acc = ref [] in
  let add ?suggestion ~id ~severity msg =
    acc := Finding.make ?suggestion ~id ~severity ~analyzer ~subject msg :: !acc
  in
  let outcomes = Monitor.outcomes m in
  let pending = Monitor.pending m in
  (* --- transport-reported errors on completed operations --- *)
  List.iter
    (fun (o : Monitor.outcome) ->
      match o.o_error with
      | None -> ()
      | Some err ->
          let id =
            if String.length err >= 8 && String.sub err 0 8 = "callback" then
              "MATCH-CALLBACK-FAILED"
            else "MATCH-TRUNCATION"
          in
          let suggestion =
            if id = "MATCH-TRUNCATION" then
              Some
                "size the receive buffer for the largest message the sender \
                 may produce; probe/mprobe when the size is dynamic"
            else None
          in
          add ~id ~severity:Finding.Error ?suggestion
            (Printf.sprintf "%s failed: %s" (describe_op o.o_op) err))
    outcomes;
  (* --- pair completed sends and receives per channel, FIFO --- *)
  let module CM = Map.Make (struct
    type t = channel

    let compare = compare
  end) in
  let push key o map =
    CM.update key
      (function None -> Some [ o ] | Some l -> Some (o :: l))
      map
  in
  let sends, recvs =
    List.fold_left
      (fun (s, r) (o : Monitor.outcome) ->
        let op = o.o_op in
        match op.kind with
        | Monitor.Send ->
            let key =
              {
                ch_src = op.rank;
                ch_dst = op.peer;
                ch_cid = op.cid;
                ch_kind = op.channel_kind;
                ch_tag = op.tag;
              }
            in
            (push key o s, r)
        | Monitor.Recv ->
            (* completed receives know their true source and tag *)
            let key =
              {
                ch_src = o.o_peer;
                ch_dst = op.rank;
                ch_cid = op.cid;
                ch_kind = op.channel_kind;
                ch_tag = o.o_tag;
              }
            in
            (s, push key o r))
      (CM.empty, CM.empty) outcomes
  in
  CM.iter
    (fun key sl ->
      let rl = try CM.find key recvs with Not_found -> [] in
      let rec pair = function
        | [], _ | _, [] -> ()
        | (s : Monitor.outcome) :: sl', (r : Monitor.outcome) :: rl' ->
            (if s.o_error = None && r.o_error = None then
               let sop = s.o_op and rop = r.o_op in
               if key.ch_kind = 0 then
                 match (sop.dt_class, rop.dt_class) with
                 | Monitor.Dc_custom, _ | _, Monitor.Dc_custom ->
                     () (* custom layouts are opaque by design *)
                 | Monitor.Dc_typed, Monitor.Dc_typed -> (
                     match prefix_rest sop.signature rop.signature with
                     | Some _ -> ()
                     | None ->
                         add ~id:"MATCH-TYPE-MISMATCH" ~severity:Finding.Error
                           ~suggestion:
                             "sender and receiver must use type signatures \
                              where the send signature is a prefix of the \
                              receive signature (MPI 3.1 §3.3.1)"
                           (Printf.sprintf
                              "%s carries signature %s but the matching %s \
                               expects %s"
                              (describe_op sop) (pp_rle sop.signature)
                              (describe_op rop) (pp_rle rop.signature)))
                 | _ ->
                     if
                       (sop.dt_class = Monitor.Dc_bytes)
                       <> (rop.dt_class = Monitor.Dc_bytes)
                     then
                       add ~id:"MATCH-TYPE-MISMATCH" ~severity:Finding.Warning
                         ~suggestion:
                           "mixing raw byte buffers with typed buffers is \
                            only portable when the byte side really is the \
                            serialized form of the typed side"
                         (Printf.sprintf "%s is raw bytes but the matching %s is typed"
                            (describe_op
                               (if sop.dt_class = Monitor.Dc_bytes then sop
                                else rop))
                            (describe_op
                               (if sop.dt_class = Monitor.Dc_bytes then rop
                                else sop))));
            pair (sl', rl')
      in
      pair (List.rev sl, List.rev rl))
    sends;
  (* --- wait-for graph over pending operations --- *)
  if deadlocked then begin
    (* rank r waits for rank p if r has a pending blocking op whose peer
       is p; ANY_SOURCE receives wait for everyone. *)
    let edges = Array.make world_size [] in
    List.iter
      (fun (o : Monitor.op) ->
        if o.rank >= 0 && o.rank < world_size then
          let peers =
            if o.peer >= 0 then [ o.peer ]
            else List.init world_size (fun i -> i)
          in
          List.iter
            (fun p ->
              if p <> o.rank && not (List.mem_assoc p edges.(o.rank)) then
                edges.(o.rank) <- (p, o) :: edges.(o.rank))
            peers)
      pending;
    (* DFS cycle detection; report the first cycle found *)
    let color = Array.make world_size 0 (* 0 white, 1 grey, 2 black *) in
    let cycle = ref None in
    let rec dfs path r =
      if !cycle = None then
        if color.(r) = 1 then begin
          (* found: slice the path from the first occurrence of r *)
          let rec cut = function
            | (r', _) :: _ as l when r' = r -> l
            | _ :: tl -> cut tl
            | [] -> []
          in
          cycle := Some (cut (List.rev path))
        end
        else if color.(r) = 0 then begin
          color.(r) <- 1;
          List.iter (fun (p, o) -> dfs ((r, o) :: path) p) edges.(r);
          color.(r) <- 2
        end
    in
    for r = 0 to world_size - 1 do
      dfs [] r
    done;
    (match !cycle with
    | Some ((_ :: _ :: _ | [ _ ]) as cyc) ->
        let desc =
          String.concat "; "
            (List.map
               (fun (r, (o : Monitor.op)) ->
                 Printf.sprintf "rank %d blocked in %s" r (describe_op o))
               cyc)
        in
        add ~id:"MATCH-DEADLOCK" ~severity:Finding.Error
          ~suggestion:
            "break the cycle: reorder one rank's send/recv, or switch one \
             side to a nonblocking operation completed after both are posted"
          (Printf.sprintf "wait-for cycle among %d rank(s): %s"
             (List.length cyc) desc)
    | _ ->
        add ~id:"MATCH-DEADLOCK" ~severity:Finding.Error
          (Printf.sprintf
             "simulation deadlocked with %d operation(s) pending but no \
              wait-for cycle among monitored point-to-point operations \
              (likely a collective or internal channel)"
             (List.length pending)))
  end
  else
    (* --- unmatched at finalize --- *)
    List.iter
      (fun (o : Monitor.op) ->
        let id, what =
          match o.kind with
          | Monitor.Send -> ("MATCH-UNMATCHED-SEND", "never received")
          | Monitor.Recv -> ("MATCH-UNMATCHED-RECV", "never satisfied")
        in
        add ~id ~severity:Finding.Warning
          ~suggestion:
            "every posted operation should be matched and completed before \
             finalize; cancel or match it"
          (Printf.sprintf "%s was %s" (describe_op o) what))
      pending;
  List.rev !acc

type result = {
  findings : Finding.t list;
  deadlocked : bool;
  trace_counts : (string * int) list;
}

let run ~subject ~size ?(config = Config.default) f =
  let world = Mpi.create_world ~config ~size () in
  let monitor = Monitor.create () in
  Mpi.set_monitor world (Some monitor);
  let trace = Trace.create () in
  Mpi.set_trace world (Some trace);
  let aborted = ref None in
  let deadlocked = ref false in
  (try
     Mpi.run world (fun comm ->
         try f comm
         with
         | Engine.Deadlock _ as e -> raise e
         | e -> if !aborted = None then aborted := Some e)
   with
  | Engine.Deadlock _ -> deadlocked := true
  | e -> if !aborted = None then aborted := Some e);
  let findings =
    analyze ~subject ~world_size:size ~deadlocked:!deadlocked monitor
  in
  let findings =
    match !aborted with
    | None -> findings
    | Some e ->
        Finding.make ~id:"MATCH-ABORTED" ~severity:Finding.Error ~analyzer
          ~subject
          (Printf.sprintf "a rank raised %s; analysis covers operations \
                           posted before the abort"
             (Printexc.to_string e))
        :: findings
  in
  { findings; deadlocked = !deadlocked; trace_counts = Trace.counts trace }
