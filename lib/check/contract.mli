(** Contract checker for custom-datatype callback sets.

    Exercises a {!Mpicd.Custom.t} through the same engine-side interface
    the transport uses (paper Listings 3–5) and verifies the invariants
    the pack engine relies on:

    - [query] is deterministic and non-negative;
    - [pack] fragments tile exactly [\[0, query)]: every return value [n]
      satisfies [0 < n <= min (length dst) remaining] while the stream is
      not exhausted;
    - the packed bytes do not depend on where fragment boundaries fall
      (driven by deterministic boundary fuzzing seeded from
      {!Mpicd_simnet.Rng});
    - re-packing an arbitrary mid-stream window reproduces the original
      bytes — required for correctness under the reliable-delivery
      protocol, which re-packs fragments when retransmitting them
      (docs/FAULTS.md);
    - [unpack ∘ pack] round-trips bytewise (and, when an object equality
      is supplied, object-wise);
    - regions are non-overlapping, agree with [region_count], and
      packed bytes + region bytes account for the declared wire size.

    Rule catalogue: docs/CHECKS.md. *)

val analyzer : string

type 'obj spec = {
  name : string;  (** subject used in findings *)
  dt : 'obj Mpicd.Custom.t;
  make : unit -> 'obj;  (** fresh source object *)
  make_sink : (unit -> 'obj) option;
      (** fresh destination object for round-trip checks; when [None]
          the unpack/round-trip phases are skipped *)
  equal : ('obj -> 'obj -> bool) option;
      (** semantic equality of source and round-tripped sink *)
  count : int;
  expected_wire : int option;
      (** declared total wire bytes (packed + regions), if known *)
}

val check : ?seed:int -> ?rounds:int -> 'obj spec -> Finding.t list
(** [check spec] runs the full battery; [rounds] (default 8) is the
    number of fragment-boundary fuzz rounds, derived deterministically
    from [seed].  Findings are deduplicated by rule id. *)
