(** Communication matching and deadlock analysis.

    Replays MPI matching semantics over the operations recorded by
    {!Mpicd.Mpi.Monitor} (MUST-style): sends and receives are paired per
    channel (source, destination, communicator, tag) in the order the
    simulator's non-overtaking rule guarantees, then checked for

    - type-signature mismatches between matched pairs,
    - truncation and callback failures,
    - operations left unmatched at finalize, and
    - wait-for cycles over whatever is pending when the simulation
      deadlocks.

    Rule catalogue: docs/CHECKS.md. *)

val analyzer : string

val analyze :
  subject:string ->
  world_size:int ->
  deadlocked:bool ->
  Mpicd.Mpi.Monitor.t ->
  Finding.t list
(** Post-mortem analysis of a monitored run.  [deadlocked] states
    whether the run ended in {!Mpicd_simnet.Engine.Deadlock}. *)

type result = {
  findings : Finding.t list;
  deadlocked : bool;
  trace_counts : (string * int) list;
      (** transport protocol-event histogram of the run *)
}

val run :
  subject:string ->
  size:int ->
  ?config:Mpicd_simnet.Config.t ->
  (Mpicd.Mpi.comm -> unit) ->
  result
(** Convenience driver: create a world of [size] ranks, attach a monitor
    and a trace, run the SPMD program, and analyze.  A deadlock is
    caught and analyzed rather than propagated; any other exception
    escaping a rank is reported as a [MATCH-ABORTED] finding. *)
