type section = {
  title : string;
  findings : Finding.t list;
  notes : (string * string) list;
}

let section ?(notes = []) title findings = { title; findings; notes }

let problem_count sections =
  List.fold_left
    (fun a s -> a + List.length (List.filter Finding.is_problem s.findings))
    0 sections

let total_count sections =
  List.fold_left (fun a s -> a + List.length s.findings) 0 sections

let summary_line sections =
  let problems = problem_count sections in
  let hints = total_count sections - problems in
  Printf.sprintf "%d problem(s), %d hint(s) across %d analyzer run(s)" problems
    hints (List.length sections)

let render_text sections =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string b s.title;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (String.length s.title) '-');
      Buffer.add_char b '\n';
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %s: %s\n" k v))
        s.notes;
      if s.findings = [] then Buffer.add_string b "  clean\n"
      else
        List.iter
          (fun f ->
            Buffer.add_string b "  ";
            Buffer.add_string b (Finding.to_string f);
            Buffer.add_char b '\n')
          s.findings;
      Buffer.add_char b '\n')
    sections;
  Buffer.add_string b (summary_line sections);
  Buffer.add_char b '\n';
  Buffer.contents b

let render_json sections =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"sections\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    { \"title\": %s,\n      \"notes\": {"
           (Finding.json_string s.title));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "%s: %s" (Finding.json_string k)
               (Finding.json_string v)))
        s.notes;
      Buffer.add_string b "},\n      \"findings\": [";
      List.iteri
        (fun j f ->
          if j > 0 then Buffer.add_string b ",";
          Buffer.add_string b "\n        ";
          Buffer.add_string b (Finding.json f))
        s.findings;
      if s.findings <> [] then Buffer.add_string b "\n      ";
      Buffer.add_string b "]\n    }")
    sections;
  Buffer.add_string b
    (Printf.sprintf "\n  ],\n  \"problems\": %d,\n  \"findings\": %d\n}\n"
       (problem_count sections) (total_count sections));
  Buffer.contents b
