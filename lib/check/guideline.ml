module Dt = Mpicd_datatype.Datatype
module Normalize = Mpicd_datatype.Normalize
module Config = Mpicd_simnet.Config

let analyzer = "guideline"
let default_threshold_ns = 500.

let check ?(config = Config.default) ?(threshold_ns = default_threshold_ns)
    ~subject t =
  let cpu = config.Config.cpu in
  let r = Normalize.run ~cpu t in
  if not (Normalize.changed r) then []
  else
    (* re-prove rather than trust the rewrite engine: full type-map
       equivalence plus plan-compiled byte identity *)
    let verified =
      if not (Normalize.equivalent r.Normalize.original r.Normalize.normalized)
      then Error "type maps or bounds differ"
      else Normalize.verify_bytes r.Normalize.original r.Normalize.normalized
    in
    match verified with
    | Error why ->
        [
          Finding.make ~id:"GL-VERIFY-FAILED" ~severity:Finding.Error ~analyzer
            ~subject
            (Printf.sprintf
               "normalizer produced a non-equivalent rewrite (%s): %s -> %s; \
                refusing to suggest it"
               why
               (Dt.to_string r.Normalize.original)
               (Dt.to_string r.Normalize.normalized));
        ]
    | Ok () ->
        let saving =
          r.Normalize.original_cost.Normalize.total_ns
          -. r.Normalize.normalized_cost.Normalize.total_ns
        in
        let steps = List.length r.Normalize.steps in
        let rules =
          List.map (fun s -> Normalize.rule_id s.Normalize.rule) r.Normalize.steps
          |> List.sort_uniq compare |> String.concat ", "
        in
        let rewrite =
          {
            Finding.rw_rule =
              (match r.Normalize.steps with
              | [ s ] -> Normalize.rule_id s.Normalize.rule
              | _ -> "normalize");
            rw_path = "";
            rw_replacement = r.Normalize.normalized;
            rw_steps = steps;
          }
        in
        let suggestion =
          Printf.sprintf "commit %s instead (verified byte-identical)"
            (Dt.to_string r.Normalize.normalized)
        in
        if saving >= threshold_ns then
          [
            Finding.make ~id:"GL-NORM-SLOWER" ~severity:Finding.Error ~analyzer
              ~subject ~suggestion ~cost_delta_ns:saving ~rewrite
              (Printf.sprintf
                 "guideline violation: the committed type is predicted %.0f ns \
                  slower per element than its normalized form (%d rewrite \
                  step(s): %s; threshold %.0f ns)"
                 saving steps rules threshold_ns);
          ]
        else
          [
            Finding.make ~id:"GL-NORM-AVAILABLE" ~severity:Finding.Hint ~analyzer
              ~subject ~suggestion ~cost_delta_ns:saving ~rewrite
              (Printf.sprintf
                 "a provably-equivalent normalization exists (%d rewrite \
                  step(s): %s; predicted saving %.0f ns, below the %.0f ns \
                  threshold)"
                 steps rules saving threshold_ns);
          ]
