(** Performance-guideline analyzer for derived datatypes.

    Implements the checkable core of Hunold/Carpen-Amarie/Träff's
    self-consistent performance guidelines: {e a derived datatype must
    never be slower than its normalized equivalent}.  The analyzer runs
    {!Mpicd_datatype.Normalize} on the type, verifies the rewrite is
    byte-identical (plan-compiled pack streams), and compares the two
    forms under the simnet cost model.

    Rules (catalogue: docs/CHECKS.md):

    - [GL-NORM-SLOWER] ([Error]) — the committed type is measurably
      slower than its normalized form: the predicted commit+pack saving
      exceeds [threshold_ns].  Carries the full rewrite payload.
    - [GL-NORM-AVAILABLE] ([Hint]) — a normalization exists but its
      saving is below the threshold.
    - [GL-VERIFY-FAILED] ([Error]) — the normalizer produced a
      non-equivalent type (internal invariant violation; should never
      fire, but the guideline checker re-proves rather than trusts). *)

val analyzer : string

val default_threshold_ns : float
(** Savings at or above this are guideline violations ([Error]);
    currently 500 ns of predicted commit+pack cost per element. *)

val check :
  ?config:Mpicd_simnet.Config.t ->
  ?threshold_ns:float ->
  subject:string ->
  Mpicd_datatype.Datatype.t ->
  Finding.t list
(** Guideline findings for one datatype.  Every finding about an
    available normalization carries [cost_delta_ns] (predicted saving)
    and a typed [rewrite] payload whose replacement is the fully
    normalized type. *)
