module Buf = Mpicd_buf.Buf
module Custom = Mpicd.Custom
module Rng = Mpicd_simnet.Rng

let analyzer = "callback-contract"

type 'obj spec = {
  name : string;
  dt : 'obj Mpicd.Custom.t;
  make : unit -> 'obj;
  make_sink : (unit -> 'obj) option;
  equal : ('obj -> 'obj -> bool) option;
  count : int;
  expected_wire : int option;
}

(* Drive the pack callback over the whole stream with caller-chosen
   fragment sizes, validating every return value.  The fragment is a
   scratch buffer so an overrun claim (n > room) is observable rather
   than masked by a blit failure. *)
type pack_fault =
  | Pf_raised of exn * int  (* offset *)
  | Pf_short of { offset : int; room : int; ret : int }
  | Pf_over of { offset : int; room : int; ret : int }
  | Pf_overstream of { offset : int; remaining : int; ret : int }

let drive_pack op ~total ~frag_size =
  let dst = Buf.create total in
  let off = ref 0 in
  let fault = ref None in
  while !fault = None && !off < total do
    let remaining = total - !off in
    let room = max 1 (frag_size ~offset:!off ~remaining) in
    let frag = Buf.create room in
    (match Custom.pack op ~offset:!off ~dst:frag with
    | exception e -> fault := Some (Pf_raised (e, !off))
    | n ->
        if n <= 0 then fault := Some (Pf_short { offset = !off; room; ret = n })
        else if n > room then fault := Some (Pf_over { offset = !off; room; ret = n })
        else if n > remaining then
          fault := Some (Pf_overstream { offset = !off; remaining; ret = n })
        else begin
          Buf.blit ~src:frag ~src_pos:0 ~dst ~dst_pos:!off ~len:n;
          off := !off + n
        end)
  done;
  match !fault with None -> Ok dst | Some f -> Error f

let pack_fault_finding ~subject = function
  | Pf_raised (e, offset) ->
      Finding.make ~id:"CB-CALLBACK-RAISED" ~severity:Finding.Error ~analyzer
        ~subject
        (Printf.sprintf "pack callback raised %s at offset %d"
           (Printexc.to_string e) offset)
  | Pf_short { offset; room; ret } ->
      Finding.make ~id:"CB-SHORT-PACK" ~severity:Finding.Error ~analyzer ~subject
        ~suggestion:
          "while the stream is not exhausted, pack must produce at least one \
           byte per fragment (paper Listing 4)"
        (Printf.sprintf
           "pack returned %d at offset %d with %d bytes of room: the engine \
            would loop forever"
           ret offset room)
  | Pf_over { offset; room; ret } ->
      Finding.make ~id:"CB-OVERRUN" ~severity:Finding.Error ~analyzer ~subject
        ~suggestion:"pack must return at most the destination length"
        (Printf.sprintf
           "pack returned %d at offset %d but the destination holds only %d \
            bytes: the claimed tail was never written"
           ret offset room)
  | Pf_overstream { offset; remaining; ret } ->
      Finding.make ~id:"CB-OVERRUN" ~severity:Finding.Error ~analyzer ~subject
        ~suggestion:"pack must not claim bytes past the queried stream size"
        (Printf.sprintf
           "pack returned %d at offset %d with only %d bytes left in the \
            stream"
           ret offset remaining)

let check ?(seed = 0x5eed) ?(rounds = 8) s =
  let subject = s.name in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let addf ?suggestion ~id ~severity fmt =
    Printf.ksprintf
      (fun msg -> add (Finding.make ?suggestion ~id ~severity ~analyzer ~subject msg))
      fmt
  in
  let rng = Rng.create seed in
  (try
     let obj = s.make () in
     let op = Custom.start s.dt obj ~count:s.count in
     Fun.protect
       ~finally:(fun () -> Custom.finish op)
       (fun () ->
         let q1 = Custom.packed_size op in
         let q2 = Custom.packed_size op in
         if q1 <> q2 then
           addf ~id:"CB-QUERY-UNSTABLE" ~severity:Finding.Error
             "query returned %d then %d for the same operation state" q1 q2;
         if q1 < 0 then begin
           addf ~id:"CB-QUERY-NEGATIVE" ~severity:Finding.Error
             "query returned a negative packed size (%d)" q1;
           raise Exit
         end;
         (* --- regions --- *)
         let rc = Custom.region_count op in
         let regs = Custom.regions op in
         if rc <> Array.length regs then
           addf ~id:"CB-REGION-COUNT" ~severity:Finding.Error
             "region_count promised %d regions but the region callback \
              produced %d"
             rc (Array.length regs);
         (try
            Array.iteri
              (fun i ri ->
                Array.iteri
                  (fun j rj ->
                    if j > i && Buf.length ri > 0 && Buf.length rj > 0
                       && Buf.overlaps ri rj
                    then begin
                      addf ~id:"CB-REGION-OVERLAP" ~severity:Finding.Error
                        ~suggestion:
                          "regions are gathered/scattered independently by the \
                           transport; aliasing ranges make the result depend \
                           on delivery order"
                        "regions %d and %d share bytes of the same underlying \
                         memory"
                        i j;
                      raise Exit
                    end)
                  regs)
              regs
          with Exit -> ());
         let rbytes = Array.fold_left (fun a r -> a + Buf.length r) 0 regs in
         (match s.expected_wire with
         | Some w when q1 + rbytes <> w ->
             addf ~id:"CB-WIRE-MISMATCH" ~severity:Finding.Error
               "query (%d) + region bytes (%d) = %d, but the type declares %d \
                wire bytes"
               q1 rbytes (q1 + rbytes) w
         | _ -> ());
         (* --- reference pack: one maximal fragment per call --- *)
         let reference =
           match drive_pack op ~total:q1 ~frag_size:(fun ~offset:_ ~remaining -> remaining) with
           | Ok b -> Some b
           | Error f ->
               add (pack_fault_finding ~subject f);
               None
         in
         (* --- fragment-boundary fuzzing --- *)
         (match reference with
         | None -> ()
         | Some reference ->
             (try
                for _round = 1 to rounds do
                  (* fragment sizes drawn small to force many boundaries;
                     occasionally larger than the remaining stream to
                     check the end-of-stream contract *)
                  let frag_size ~offset:_ ~remaining =
                    1 + Rng.int rng (min (remaining + 8) 64)
                  in
                  match drive_pack op ~total:q1 ~frag_size with
                  | Ok fuzzed ->
                      if not (Buf.equal fuzzed reference) then begin
                        addf ~id:"CB-FRAG-INCONSISTENT" ~severity:Finding.Error
                          ~suggestion:
                            "pack must produce the same packed stream for \
                             every fragmentation: it may only depend on \
                             (offset, length), never on call history"
                          "packed bytes differ between fragmentations of the \
                           same object";
                        raise Exit
                      end
                  | Error f ->
                      add (pack_fault_finding ~subject f);
                      raise Exit
                done
              with Exit -> ());
             (* --- retransmission idempotence: a lossy transport may
                re-pack an arbitrary window of the stream when a
                fragment is retransmitted (see docs/FAULTS.md); the
                re-packed bytes must equal the original stream --- *)
             (try
                for _round = 1 to rounds do
                  if q1 > 0 then begin
                    let offset = Rng.int rng q1 in
                    let room = 1 + Rng.int rng (min (q1 - offset) 64) in
                    let frag = Buf.create room in
                    match Custom.pack op ~offset ~dst:frag with
                    | exception e ->
                        addf ~id:"CB-REPACK-NONIDEMPOTENT"
                          ~severity:Finding.Error
                          "re-packing offset %d for a retransmission raised %s"
                          offset (Printexc.to_string e);
                        raise Exit
                    | n when n > 0 && n <= room && offset + n <= q1 ->
                        if
                          not
                            (Buf.equal
                               (Buf.sub frag ~pos:0 ~len:n)
                               (Buf.sub reference ~pos:offset ~len:n))
                        then begin
                          addf ~id:"CB-REPACK-NONIDEMPOTENT"
                            ~severity:Finding.Error
                            ~suggestion:
                              "retransmitted fragments are re-packed from the \
                               same offset; pack must be a pure function of \
                               (offset, length), never of call history"
                            "re-packing the window at offset %d produced \
                             bytes that differ from the original stream"
                            offset;
                          raise Exit
                        end
                    | _ -> ()
                  end
                done
              with Exit -> ());
             (* --- round trip through a sink object --- *)
             match s.make_sink with
             | None -> ()
             | Some mk ->
                 let sink = mk () in
                 let sop = Custom.start s.dt sink ~count:s.count in
                 Fun.protect
                   ~finally:(fun () -> Custom.finish sop)
                   (fun () ->
                     let sq = Custom.packed_size sop in
                     if sq <> q1 then
                       addf ~id:"CB-QUERY-UNSTABLE" ~severity:Finding.Warning
                         "sink object queries %d packed bytes where the source \
                          queried %d"
                         sq q1;
                     (* feed the reference stream in fuzzed fragments *)
                     (try
                        let off = ref 0 in
                        while !off < q1 do
                          let len = 1 + Rng.int rng (min (q1 - !off) 64) in
                          (match
                             Custom.unpack sop ~offset:!off
                               ~src:(Buf.sub reference ~pos:!off ~len)
                           with
                          | () -> ()
                          | exception e ->
                              addf ~id:"CB-CALLBACK-RAISED" ~severity:Finding.Error
                                "unpack callback raised %s at offset %d"
                                (Printexc.to_string e) !off;
                              raise Exit);
                          off := !off + len
                        done;
                        (* region transfer: sender regions -> sink regions *)
                        let sregs = Custom.regions sop in
                        if
                          Array.length sregs <> Array.length regs
                          || Array.exists2
                               (fun a b -> Buf.length a <> Buf.length b)
                               sregs regs
                        then
                          addf ~id:"CB-REGION-SHAPE" ~severity:Finding.Error
                            "sender and receiver region lists disagree in \
                             count or lengths; the transport cannot scatter \
                             the gathered bytes"
                        else
                          Array.iteri
                            (fun i r ->
                              Buf.blit ~src:regs.(i) ~src_pos:0 ~dst:r ~dst_pos:0
                                ~len:(Buf.length r))
                            sregs;
                        (* bytewise: re-packing the sink must reproduce the
                           reference stream *)
                        (match
                           drive_pack sop ~total:q1
                             ~frag_size:(fun ~offset:_ ~remaining -> remaining)
                         with
                        | Ok repacked ->
                            if not (Buf.equal repacked reference) then
                              addf ~id:"CB-ROUNDTRIP" ~severity:Finding.Error
                                ~suggestion:
                                  "unpack must be the exact inverse of pack: \
                                   every packed byte lands back where pack \
                                   read it from"
                                "re-packing the unpacked sink does not \
                                 reproduce the packed stream"
                        | Error f -> add (pack_fault_finding ~subject f));
                        match s.equal with
                        | Some eq when not (eq obj sink) ->
                            addf ~id:"CB-ROUNDTRIP" ~severity:Finding.Error
                              "sink object differs from the source after \
                               unpack∘pack plus region transfer"
                        | _ -> ()
                      with Exit -> ()))))
   with
  | Exit -> ()
  | Custom.Error code ->
      addf ~id:"CB-CALLBACK-RAISED" ~severity:Finding.Error
        "callback raised Custom.Error %d during contract checking" code
  | e ->
      addf ~id:"CB-CALLBACK-RAISED" ~severity:Finding.Error
        "callback raised %s during contract checking" (Printexc.to_string e));
  (* dedupe by rule id, keep first occurrence, restore order *)
  let seen = Hashtbl.create 8 in
  List.rev !findings
  |> List.filter (fun (f : Finding.t) ->
         if Hashtbl.mem seen f.id then false
         else begin
           Hashtbl.add seen f.id ();
           true
         end)
