(** Run the datatype lint and the callback contract checker over every
    kernel in {!Mpicd_ddtbench.Registry}. *)

val lint_kernels : ?config:Mpicd_simnet.Config.t -> unit -> Finding.t list
(** {!Dt_lint.lint} over each kernel's derived datatype. *)

val guideline_kernels :
  ?config:Mpicd_simnet.Config.t ->
  ?threshold_ns:float ->
  unit ->
  Finding.t list
(** {!Guideline.check} over each kernel's derived datatype: the
    DDTBench guideline sweep. *)

val contract_kernels : ?seed:int -> ?rounds:int -> unit -> Finding.t list
(** {!Contract.check} over each kernel's [custom_pack] callback set and,
    where defined, its [custom_regions] set. *)
