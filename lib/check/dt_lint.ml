module Dt = Mpicd_datatype.Datatype
module Config = Mpicd_simnet.Config

let analyzer = "datatype-lint"

(* Two types are provably the same layout iff their (unmerged) type maps
   are equal: same predefined leaves at the same byte displacements in
   the same order.  This is the test behind every normalization hint, so
   a hint is never a guess. *)
let same_typemap a b = Dt.typemap a = Dt.typemap b

let shifted_typemap d0 t = List.map (fun (disp, p) -> (disp + d0, p)) (Dt.typemap t)

let arithmetic_delta (a : int array) =
  if Array.length a < 2 then None
  else
    let d = a.(1) - a.(0) in
    let ok = ref true in
    for i = 2 to Array.length a - 1 do
      if a.(i) - a.(i - 1) <> d then ok := false
    done;
    if !ok then Some d else None

let lint ?(config = Config.default) ~subject t =
  let acc = ref [] in
  let add ?suggestion ?cost_delta_ns ?rewrite ~id ~severity msg =
    acc :=
      Finding.make ?suggestion ?cost_delta_ns ?rewrite ~id ~severity ~analyzer
        ~subject msg
      :: !acc
  in
  (* structured, mechanically-applicable counterpart of a NORM hint's
     prose suggestion; only attached to typemap-preserving rewrites *)
  let rewrite_term ~rule ~path replacement =
    {
      Finding.rw_rule = rule;
      rw_path = path;
      rw_replacement = replacement;
      rw_steps = 1;
    }
  in
  let cpu = config.Config.cpu in
  let block_delta_ns before after =
    float_of_int (before - after) *. cpu.ddt_block_ns
  in
  let at path = if path = "" then "" else Printf.sprintf " at %s" path in
  (* --- structural walk: zero blocks + normalization opportunities --- *)
  let rec walk path sub =
    match Dt.view sub with
    | Dt.V_predefined _ -> ()
    | Dt.V_contiguous (n, e) ->
        if n = 0 then
          add ~id:"DT-ZERO-BLOCK" ~severity:Finding.Warning
            (Printf.sprintf "contiguous count is 0%s: the type contributes no data"
               (at path));
        walk (path ^ "[elem]") e
    | Dt.V_hvector { count; blocklength; stride_bytes; elem } ->
        if count = 0 || blocklength = 0 then
          add ~id:"DT-ZERO-BLOCK" ~severity:Finding.Warning
            (Printf.sprintf
               "vector with count=%d blocklength=%d%s contributes no data" count
               blocklength (at path));
        if count >= 1 && blocklength >= 1 then begin
          let rewrite = Dt.contiguous (count * blocklength) elem in
          if same_typemap sub rewrite then
            add ~id:"DT-NORM-CONTIG" ~severity:Finding.Hint
              ~suggestion:
                (Printf.sprintf "rewrite as contiguous(%d, %s)"
                   (count * blocklength) (Dt.to_string elem))
              ~rewrite:(rewrite_term ~rule:"hvector-collapse" ~path rewrite)
              ~cost_delta_ns:
                (block_delta_ns
                   (Dt.blocks_per_element sub)
                   (Dt.blocks_per_element rewrite))
              (Printf.sprintf
                 "vector%s has stride (%dB) equal to its block footprint: it is \
                  provably contiguous"
                 (at path) stride_bytes)
        end;
        walk (path ^ "[elem]") elem
    | Dt.V_hindexed { blocklengths; displacements_bytes; elem } ->
        Array.iteri
          (fun i bl ->
            if bl = 0 then
              add ~id:"DT-ZERO-BLOCK" ~severity:Finding.Warning
                (Printf.sprintf "indexed block %d%s has length 0" i (at path)))
          blocklengths;
        let n = Array.length blocklengths in
        let uniform =
          n >= 2
          && Array.for_all (fun bl -> bl = blocklengths.(0)) blocklengths
          && blocklengths.(0) > 0
        in
        (match (uniform, arithmetic_delta displacements_bytes) with
        | true, Some d when d > 0 ->
            let bl = blocklengths.(0) in
            let rewrite =
              Dt.hvector ~count:n ~blocklength:bl ~stride_bytes:d elem
            in
            let d0 = displacements_bytes.(0) in
            if Dt.typemap sub = shifted_typemap d0 rewrite then
              if d0 = 0 && Dt.is_contiguous rewrite then
                add ~id:"DT-NORM-CONTIG" ~severity:Finding.Hint
                  ~suggestion:
                    (Printf.sprintf "rewrite as contiguous(%d, %s)" (n * bl)
                       (Dt.to_string elem))
                  ~rewrite:
                    (rewrite_term ~rule:"hindexed-contig" ~path
                       (Dt.contiguous (n * bl) elem))
                  ~cost_delta_ns:
                    (block_delta_ns
                       (Dt.blocks_per_element sub)
                       (Dt.blocks_per_element rewrite))
                  (Printf.sprintf
                     "indexed type%s has uniform blocks tiling without gaps: it \
                      is provably contiguous"
                     (at path))
              else
                add ~id:"DT-NORM-VECTOR" ~severity:Finding.Hint
                  ~suggestion:
                    (Printf.sprintf
                       "rewrite as hvector(count=%d, blocklength=%d, \
                        stride=%dB)%s: O(1) descriptor instead of O(%d) arrays"
                       n bl d
                       (if d0 = 0 then ""
                        else Printf.sprintf " at base offset %dB" d0)
                       n)
                  ~rewrite:
                    (rewrite_term ~rule:"hindexed-vector" ~path
                       (if d0 = 0 then rewrite
                        else
                          Dt.hindexed ~blocklengths:[| 1 |]
                            ~displacements_bytes:[| d0 |] rewrite))
                  ~cost_delta_ns:
                    (block_delta_ns
                       (Dt.blocks_per_element sub)
                       (Dt.blocks_per_element rewrite))
                  (Printf.sprintf
                     "indexed type%s has uniform block lengths and a constant \
                      displacement stride: it is provably a vector"
                     (at path))
        | _ -> ());
        walk (path ^ "[elem]") elem
    | Dt.V_struct { blocklengths; displacements_bytes; types } ->
        Array.iteri
          (fun i bl ->
            if bl = 0 then
              add ~id:"DT-ZERO-BLOCK" ~severity:Finding.Warning
                (Printf.sprintf "struct field %d%s has blocklength 0" i (at path)))
          blocklengths;
        let n = Array.length types in
        if n >= 2 && Array.for_all (fun ty -> Dt.equal ty types.(0)) types then
          add ~id:"DT-NORM-HOMOGENEOUS" ~severity:Finding.Hint
            ~suggestion:"rewrite as hindexed over the common element type"
            ~rewrite:
              (rewrite_term ~rule:"struct-homogeneous" ~path
                 (Dt.hindexed ~blocklengths ~displacements_bytes types.(0)))
            (Printf.sprintf
               "struct%s has %d fields of one identical type: hindexed \
                expresses it without the per-field type array"
               (at path) n);
        Array.iteri (fun i ty -> walk (Printf.sprintf "%s.field[%d]" path i) ty) types
    | Dt.V_resized { lb = _; extent = _; elem } -> walk (path ^ "[elem]") elem
  in
  walk "" t;
  (* --- whole-type checks over the merged block list and type map --- *)
  let size = Dt.size t in
  if size = 0 then
    add ~id:"DT-EMPTY" ~severity:Finding.Hint
      "type has zero size: operations using it move no data"
  else begin
    let overlap_in blocks =
      let sorted = List.sort compare blocks in
      let rec scan = function
        | (d1, l1) :: ((d2, l2) :: _ as rest) ->
            if d1 + l1 > d2 then Some ((d1, l1), (d2, l2)) else scan rest
        | _ -> None
      in
      scan sorted
    in
    let within = overlap_in (Dt.block_list t ~count:1) in
    (match within with
    | Some ((d1, l1), (d2, l2)) ->
        add ~id:"DT-OVERLAP" ~severity:Finding.Error
          ~suggestion:
            "remove the aliased range: receiving into overlapping blocks is \
             undefined (send order decides which bytes survive)"
          (Printf.sprintf
             "blocks [%d,%d) and [%d,%d) of one element overlap" d1 (d1 + l1) d2
             (d2 + l2))
    | None -> (
        match overlap_in (Dt.block_list t ~count:2) with
        | Some ((d1, l1), (d2, l2)) ->
            add ~id:"DT-OVERLAP" ~severity:Finding.Error
              ~suggestion:
                (Printf.sprintf
                   "resize the type so its extent (%dB) covers the element \
                    footprint before using count > 1"
                   (Dt.extent t))
              (Printf.sprintf
                 "consecutive elements overlap when count >= 2: blocks [%d,%d) \
                  and [%d,%d) alias"
                 d1 (d1 + l1) d2 (d2 + l2))
        | None -> ()));
    (* misaligned predefined leaves *)
    let mis = ref [] and nmis = ref 0 in
    Dt.iter_typemap t ~f:(fun ~disp ~p ->
        let align = Dt.predefined_size p in
        if align > 1 && disp mod align <> 0 then begin
          incr nmis;
          if List.length !mis < 3 then mis := (disp, p) :: !mis
        end);
    if !nmis > 0 then begin
      let examples =
        List.rev_map
          (fun (disp, p) ->
            Printf.sprintf "%s at byte %d"
              (Dt.to_string (Dt.predefined p))
              disp)
          !mis
        |> String.concat ", "
      in
      add ~id:"DT-MISALIGNED" ~severity:Finding.Warning
        ~suggestion:
          "pad displacements to the elements' natural alignment (compilers do \
           this for C structs; hand-built displacement arrays often forget)"
        (Printf.sprintf
           "%d predefined element(s) sit at displacements not multiple of \
            their natural alignment (%s)"
           !nmis examples)
    end;
    (* extent / true-extent traps *)
    let blocks = Dt.block_list t ~count:1 in
    let span =
      List.fold_left (fun hi (d, l) -> max hi (d + l)) min_int blocks
      - List.fold_left (fun lo (d, _) -> min lo d) max_int blocks
    in
    let ext = Dt.extent t in
    if ext < span then
      add ~id:"DT-EXTENT-SHRUNK" ~severity:Finding.Hint
        ~suggestion:
          "double-check count > 1 uses: interleaving is legal for sends but a \
           frequent source of silent corruption on receives"
        (Printf.sprintf
           "extent (%dB) is smaller than the element footprint (%dB): \
            consecutive elements interleave"
           ext span);
    if Dt.lb t <> 0 then
      add ~id:"DT-LB-NONZERO" ~severity:Finding.Hint
        (Printf.sprintf
           "lower bound is %dB, not 0: buffer addressing starts before/after \
            the base pointer, which many callers do not expect"
           (Dt.lb t));
    (* single gap-free block that the engine still cannot send zero-copy *)
    (match blocks with
    | [ (d0, len) ] when len = size && not (Dt.is_contiguous t) ->
        add ~id:"DT-NORM-OFFSET-CONTIG" ~severity:Finding.Hint
          ~suggestion:
            (Printf.sprintf
               "send contiguous(%d, byte) from base+%dB instead: the transport \
                then uses the zero-copy contiguous path"
               len d0)
          ~cost_delta_ns:
            (Config.memcpy_time cpu size
            +. (float_of_int (Dt.blocks_per_element t) *. cpu.ddt_block_ns))
          (Printf.sprintf
             "the type is one gap-free %dB block at offset %dB, but extent/lb \
              bookkeeping forces it through the pack pipeline"
             len d0)
    | _ -> ())
  end;
  List.rev !acc
