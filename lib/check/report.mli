(** Text and JSON rendering of analysis results. *)

type section = {
  title : string;  (** analyzer / scenario heading *)
  findings : Finding.t list;
  notes : (string * string) list;
      (** free-form key/value context (e.g. protocol-event counts) *)
}

val section : ?notes:(string * string) list -> string -> Finding.t list -> section

val problem_count : section list -> int
(** Number of Error/Warning findings across all sections (hints are
    informational and never fail a run). *)

val render_text : section list -> string
val render_json : section list -> string
val summary_line : section list -> string
