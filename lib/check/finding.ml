type severity = Error | Warning | Hint

type t = {
  id : string;
  severity : severity;
  analyzer : string;
  subject : string;
  message : string;
  suggestion : string option;
  cost_delta_ns : float option;
}

let make ?suggestion ?cost_delta_ns ~id ~severity ~analyzer ~subject message =
  { id; severity; analyzer; subject; message; suggestion; cost_delta_ns }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let is_problem f = match f.severity with Error | Warning -> true | Hint -> false

let pp ppf f =
  Format.fprintf ppf "[%s] %s %s: %s" (severity_label f.severity) f.id f.subject
    f.message;
  (match f.suggestion with
  | Some s -> Format.fprintf ppf "@\n    suggestion: %s" s
  | None -> ());
  match f.cost_delta_ns with
  | Some d -> Format.fprintf ppf "@\n    predicted saving: %.1f ns/element" d
  | None -> ()

let to_string f = Format.asprintf "%a" pp f

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let json f =
  let field name v = Printf.sprintf "\"%s\":\"%s\"" name (json_escape v) in
  let opt = function
    | [] -> ""
    | parts -> "," ^ String.concat "," parts
  in
  Printf.sprintf "{%s,%s,%s,%s,%s%s}"
    (field "id" f.id)
    (field "severity" (severity_label f.severity))
    (field "analyzer" f.analyzer)
    (field "subject" f.subject)
    (field "message" f.message)
    (opt
       ((match f.suggestion with
        | Some s -> [ field "suggestion" s ]
        | None -> [])
       @
       match f.cost_delta_ns with
       | Some d -> [ Printf.sprintf "\"cost_delta_ns\":%.3f" d ]
       | None -> []))
