module Dt = Mpicd_datatype.Datatype

type severity = Error | Warning | Hint

type rewrite = {
  rw_rule : string;
  rw_path : string;
  rw_replacement : Dt.t;
  rw_steps : int;
}

type t = {
  id : string;
  severity : severity;
  analyzer : string;
  subject : string;
  message : string;
  suggestion : string option;
  cost_delta_ns : float option;
  rewrite : rewrite option;
}

let make ?suggestion ?cost_delta_ns ?rewrite ~id ~severity ~analyzer ~subject
    message =
  { id; severity; analyzer; subject; message; suggestion; cost_delta_ns; rewrite }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let is_problem f = match f.severity with Error | Warning -> true | Hint -> false

let pp ppf f =
  Format.fprintf ppf "[%s] %s %s: %s" (severity_label f.severity) f.id f.subject
    f.message;
  (match f.suggestion with
  | Some s -> Format.fprintf ppf "@\n    suggestion: %s" s
  | None -> ());
  (match f.rewrite with
  | Some r ->
      Format.fprintf ppf "@\n    rewrite [%s]%s: %s" r.rw_rule
        (if r.rw_path = "" then "" else " at " ^ r.rw_path)
        (Dt.to_string r.rw_replacement)
  | None -> ());
  match f.cost_delta_ns with
  | Some d -> Format.fprintf ppf "@\n    predicted saving: %.1f ns/element" d
  | None -> ()

let to_string f = Format.asprintf "%a" pp f

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let json f =
  let field name v = Printf.sprintf "\"%s\":\"%s\"" name (json_escape v) in
  let opt = function
    | [] -> ""
    | parts -> "," ^ String.concat "," parts
  in
  Printf.sprintf "{%s,%s,%s,%s,%s%s}"
    (field "id" f.id)
    (field "severity" (severity_label f.severity))
    (field "analyzer" f.analyzer)
    (field "subject" f.subject)
    (field "message" f.message)
    (opt
       ((match f.suggestion with
        | Some s -> [ field "suggestion" s ]
        | None -> [])
       @ (match f.cost_delta_ns with
         | Some d -> [ Printf.sprintf "\"cost_delta_ns\":%.3f" d ]
         | None -> [])
       @
       (* new key, appended last: readers of the pre-rewrite schema see
          only extra data, never a changed field *)
       match f.rewrite with
       | Some r ->
           [
             Printf.sprintf "\"rewrite\":{%s,%s,%s,\"steps\":%d}"
               (field "rule" r.rw_rule)
               (field "path" r.rw_path)
               (field "replacement" (Dt.to_string r.rw_replacement))
               r.rw_steps;
           ]
       | None -> []))
