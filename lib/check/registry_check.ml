module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel

let lint_kernels ?config () =
  List.concat_map
    (fun k ->
      let module K = (val k : Kernel.KERNEL) in
      Dt_lint.lint ?config ~subject:("ddtbench/" ^ K.name) K.derived)
    Registry.all

let guideline_kernels ?config ?threshold_ns () =
  List.concat_map
    (fun k ->
      let module K = (val k : Kernel.KERNEL) in
      Guideline.check ?config ?threshold_ns
        ~subject:("ddtbench/" ^ K.name)
        K.derived)
    Registry.all

let spec_of k dt : _ Contract.spec =
  let module K = (val k : Kernel.KERNEL) in
  {
    Contract.name = "";
    dt;
    make = K.create;
    make_sink = Some K.create_sink;
    equal = Some K.equal;
    count = 1;
    expected_wire = Some K.wire_bytes;
  }

let contract_kernels ?seed ?rounds () =
  List.concat_map
    (fun k ->
      let module K = (val k : Kernel.KERNEL) in
      let check name dt =
        Contract.check ?seed ?rounds { (spec_of k dt) with Contract.name }
      in
      check ("ddtbench/" ^ K.name ^ "/pack") K.custom_pack
      @
      match K.custom_regions with
      | None -> []
      | Some dt -> check ("ddtbench/" ^ K.name ^ "/regions") dt)
    Registry.all
