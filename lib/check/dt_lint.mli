(** Static lint over classic derived datatypes.

    Folds over a {!Mpicd_datatype.Datatype.t}'s lowered representation
    and its type map to flag constructs that are wrong (overlapping
    blocks in a receive type), almost certainly wrong (zero-length
    blocks, misaligned predefined elements), or needlessly slow
    (normalization opportunities in the spirit of TEMPI's datatype
    canonicalization: an indexed that is provably a vector, a vector
    that is provably contiguous).  Performance hints carry the predicted
    per-element saving under the simnet cost model
    ({!Mpicd_simnet.Config.cpu.ddt_block_ns} per typemap block).

    Rule catalogue: docs/CHECKS.md. *)

val analyzer : string

val lint :
  ?config:Mpicd_simnet.Config.t ->
  subject:string ->
  Mpicd_datatype.Datatype.t ->
  Finding.t list
(** All findings for one datatype, stable order.  [subject] names the
    type in reports (e.g. the kernel that owns it). *)
