(** Findings produced by the [Mpicd_check] analyzers.

    A finding is one diagnosable fact about a datatype, a custom-callback
    set, or a communication pattern.  Severities follow lint convention:

    - [Error] — violates MPI semantics or the custom-datatype contract;
      the construct will corrupt data, deadlock, or fail at runtime.
    - [Warning] — legal but almost certainly a bug (zero-length blocks,
      misaligned elements, messages left unmatched at finalize).
    - [Hint] — correct as written; a rewrite would be faster or simpler
      (normalization opportunities, extent traps).  Hints never fail a
      check run. *)

type severity = Error | Warning | Hint

type rewrite = {
  rw_rule : string;
      (** machine-readable rule id: a {!Mpicd_datatype.Normalize.rule_id}
          or ["normalize"] for a composed multi-step rewrite *)
  rw_path : string;
      (** which subterm to replace, in the lint walk's path notation
          (["" ] = the whole type) *)
  rw_replacement : Mpicd_datatype.Datatype.t;
      (** equivalent replacement type — same type map and bounds, so a
          tool can substitute it mechanically *)
  rw_steps : int;  (** normalizer steps composing the rewrite *)
}
(** Typed, mechanically-applicable version of {!t.suggestion}. *)

type t = {
  id : string;  (** stable rule id, e.g. ["DT-OVERLAP"] (docs/CHECKS.md) *)
  severity : severity;
  analyzer : string;  (** which analyzer produced it *)
  subject : string;  (** what was analyzed (kernel, scenario, type name) *)
  message : string;
  suggestion : string option;  (** suggested rewrite / fix, if any *)
  cost_delta_ns : float option;
      (** predicted per-element saving of the suggested rewrite under the
          simnet cost model (positive = rewrite is cheaper) *)
  rewrite : rewrite option;
      (** typed rewrite payload; rendered in JSON as an additional
          ["rewrite"] key, so the pre-existing schema stays valid *)
}

val make :
  ?suggestion:string ->
  ?cost_delta_ns:float ->
  ?rewrite:rewrite ->
  id:string ->
  severity:severity ->
  analyzer:string ->
  subject:string ->
  string ->
  t

val severity_label : severity -> string

val is_problem : t -> bool
(** [Error] or [Warning]: counts toward a non-zero exit of the checker. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val json : t -> string
(** The finding as one JSON object (stable field names). *)

val json_string : string -> string
(** Quote and escape an arbitrary string as a JSON string literal
    (shared by the report renderer). *)
