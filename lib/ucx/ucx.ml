module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Obs = Mpicd_obs.Obs
module Metrics = Mpicd_obs.Metrics

exception Callback_error of int

type send_generic = {
  sg_packed_size : int;
  sg_pack : offset:int -> dst:Buf.t -> int;
  sg_finish : unit -> unit;
  sg_overhead_ns : float;
}

type recv_generic = {
  rg_capacity : int;
  rg_unpack : offset:int -> src:Buf.t -> unit;
  rg_finish : unit -> unit;
  rg_overhead_ns : float;
}

type send_dt =
  | Sd_contig of Buf.t
  | Sd_iov of Buf.t list
  | Sd_generic of send_generic

type recv_dt =
  | Rd_contig of Buf.t
  | Rd_iov of Buf.t list
  | Rd_generic of recv_generic

type error =
  | Truncated of { expected : int; capacity : int }
  | Callback_failed of int

type status = { len : int; tag : int64; error : error option }

type request = { ivar : status Engine.Ivar.t; r_engine : Engine.t }

type payload =
  | P_eager of Buf.t list  (* snapshot fragments *)
  | P_rndv of rndv

and rndv = {
  r_dt : send_dt;
  r_request : request;  (* sender request, completed when transfer ends *)
}

type envelope = {
  e_tag : int64;
  e_total : int;
  e_src : int;
  e_payload : payload;
  mutable e_unexpected_alloc : int;
      (* receiver bytes allocated to hold this envelope while unexpected *)
  e_sent_at : float;  (* virtual send-post time, for latency histograms *)
  mutable e_queued_at : float;
      (* when it entered the unexpected queue; NaN if never queued *)
}

type posted = { pr_tag : int64; pr_mask : int64; pr_dt : recv_dt; pr_req : request }

type probe_info = { p_tag : int64; p_len : int; p_src_worker : int }

type message = envelope

type worker = {
  id : int;
  ctx : context;
  mutable posted : posted list;  (* in post order *)
  mutable unexpected : envelope list;  (* in arrival order *)
  mutable probe_waiters : (int64 * int64 * probe_info Engine.resumer) list;
  mutable mprobe_waiters :
    (int64 * int64 * (probe_info * message) Engine.resumer) list;
}

and context = {
  engine : Engine.t;
  config : Config.t;
  stats : Stats.t;
  mutable next_worker : int;
  channels : (int * int, float ref) Hashtbl.t;
      (* per (src,dst) pair: earliest next delivery time, for FIFO order *)
  mutable jitter : (unit -> float) option;
  mutable trace : Mpicd_simnet.Trace.t option;
  mutable obs : Obs.t;
}

type endpoint = { ep_src : worker; ep_dst : worker }

let create_context ~engine ~config ~stats =
  {
    engine;
    config;
    stats;
    next_worker = 0;
    channels = Hashtbl.create 16;
    jitter = None;
    trace = None;
    obs = Obs.null;
  }

let engine c = c.engine
let config c = c.config
let stats c = c.stats
let set_channel_jitter c j = c.jitter <- j
let set_trace c t = c.trace <- t
let set_obs c o = c.obs <- o

(* With no trace attached, skip the Format machinery entirely
   (ikfprintf consumes the arguments without building the string);
   the guard must come before formatting, not after. *)
let trace ctx category fmt =
  match ctx.trace with
  | None -> Printf.ikfprintf (fun () -> ()) () fmt
  | Some t ->
      Printf.ksprintf
        (fun msg ->
          Mpicd_simnet.Trace.record t ~time:(Engine.now ctx.engine) ~category msg)
        fmt

(* --- observability helpers ---

   All span durations below are *derived* from the same modeled delays
   the simulation charges elsewhere; recording never advances the clock
   or touches [Stats], so an attached sink observes an unchanged run. *)

let obs_on ctx = Obs.enabled ctx.obs

let observe ctx name v =
  if obs_on ctx then Metrics.observe (Metrics.histogram (Obs.metrics ctx.obs) name) v

(* Tile [n] per-callback spans uniformly across a phase's modeled
   interval, attributing the phase's virtual time to its callback
   invocations, and feed the per-callback cost histogram. *)
let tile_callbacks ctx ~track ~t0 ~t1 ~n ~name ~hist ?parent () =
  if obs_on ctx && n > 0 && t1 > t0 then begin
    let per = (t1 -. t0) /. float_of_int n in
    for i = 0 to n - 1 do
      let s0 = t0 +. (per *. float_of_int i) in
      ignore
        (Obs.span_complete ctx.obs ~track ~cat:"callback" ~t0:s0 ~t1:(s0 +. per)
           ?parent name)
    done;
    let h = Metrics.histogram (Obs.metrics ctx.obs) hist in
    for _ = 1 to n do
      Metrics.observe h per
    done
  end

let create_worker ctx =
  let id = ctx.next_worker in
  ctx.next_worker <- id + 1;
  {
    id;
    ctx;
    posted = [];
    unexpected = [];
    probe_waiters = [];
    mprobe_waiters = [];
  }

let worker_id w = w.id
let worker_context w = w.ctx

let connect src dst = { ep_src = src; ep_dst = dst }

let send_dt_size = function
  | Sd_contig b -> Buf.length b
  | Sd_iov bs -> List.fold_left (fun a b -> a + Buf.length b) 0 bs
  | Sd_generic g -> g.sg_packed_size

let recv_dt_capacity = function
  | Rd_contig b -> Buf.length b
  | Rd_iov bs -> List.fold_left (fun a b -> a + Buf.length b) 0 bs
  | Rd_generic g -> g.rg_capacity

(* --- cost helpers --- *)

let link c = c.config.link
let cpu c = c.config.cpu

let iov_cost c entries =
  let l = link c in
  let chunks = (entries + l.iov_max_entries - 1) / l.iov_max_entries in
  (float_of_int entries *. l.iov_entry_ns)
  +. (float_of_int (max 0 (chunks - 1)) *. l.per_msg_overhead_ns)

(* --- fragment-wise generic packing (executes the callbacks) --- *)

(* Pack the whole stream into fresh fragment buffers of [frag_size].
   Returns the fragments and the number of callback invocations. *)
let pack_fragments ctx (g : send_generic) =
  let frag_size = (link ctx).frag_size in
  let total = g.sg_packed_size in
  let frags = ref [] in
  let ncb = ref 0 in
  let off = ref 0 in
  while !off < total do
    let want = min frag_size (total - !off) in
    let dst = Buf.create want in
    let used = g.sg_pack ~offset:!off ~dst in
    incr ncb;
    Stats.record_pack_cb ctx.stats;
    (* Contract (paper Listing 4): while the stream is not exhausted a
       pack callback must produce 0 < n <= length dst.  A zero/negative
       return would loop forever; a long return would claim bytes that
       were never written and silently corrupt the packed stream. *)
    if used <= 0 || used > want then
      raise (Callback_error (-1))
    else begin
      frags := (if used = want then dst else Buf.sub dst ~pos:0 ~len:used) :: !frags;
      off := !off + used
    end
  done;
  (List.rev !frags, !ncb)

(* Unpack a list of fragments through the receive callbacks. *)
let unpack_fragments ctx (g : recv_generic) frags =
  let off = ref 0 in
  List.iter
    (fun frag ->
      g.rg_unpack ~offset:!off ~src:frag;
      Stats.record_unpack_cb ctx.stats;
      off := !off + Buf.length frag)
    frags;
  g.rg_finish ()

(* Copy a contiguous byte stream (as fragments) into a region list,
   crossing region boundaries as needed. *)
let scatter_fragments frags regions =
  let regions = ref regions in
  let reg_off = ref 0 in
  List.iter
    (fun frag ->
      let fpos = ref 0 in
      while !fpos < Buf.length frag do
        match !regions with
        | [] -> invalid_arg "Ucx: payload exceeds receive regions"
        | r :: rest ->
            let room = Buf.length r - !reg_off in
            let n = min room (Buf.length frag - !fpos) in
            Buf.blit ~src:frag ~src_pos:!fpos ~dst:r ~dst_pos:!reg_off ~len:n;
            fpos := !fpos + n;
            reg_off := !reg_off + n;
            if !reg_off = Buf.length r then begin
              regions := rest;
              reg_off := 0
            end
      done)
    frags

(* Gather a send descriptor's bytes into fresh snapshot fragments (used
   by the rendezvous transfer to move data; models the RDMA engine). *)
let materialize ctx (dt : send_dt) =
  match dt with
  | Sd_contig b -> ([ Buf.copy b ], 0)
  | Sd_iov bs -> ([ Buf.concat bs ], 0)
  | Sd_generic g ->
      let frags, ncb = pack_fragments ctx g in
      g.sg_finish ();
      (frags, ncb)

(* Deliver packed fragments into a receive descriptor.  Returns the
   receiver CPU time consumed. *)
let deposit ctx (dt : recv_dt) frags ~zcopy =
  let c = cpu ctx in
  let total = List.fold_left (fun a b -> a + Buf.length b) 0 frags in
  match dt with
  | Rd_contig b ->
      scatter_fragments frags [ b ];
      if zcopy then 0.
      else begin
        Stats.record_copy ctx.stats total;
        Config.memcpy_time c total
      end
  | Rd_iov regions ->
      scatter_fragments frags regions;
      if zcopy then 0.
      else begin
        Stats.record_copy ctx.stats total;
        Config.memcpy_time c total
      end
  | Rd_generic g ->
      let ncb = List.length frags in
      unpack_fragments ctx g frags;
      Stats.record_copy ctx.stats total;
      Config.memcpy_time c total
      +. (float_of_int ncb *. c.pack_cb_overhead_ns)
      +. g.rg_overhead_ns

(* --- matching --- *)

let tag_matches ~tag ~mask env_tag =
  Int64.logand env_tag mask = Int64.logand tag mask

let complete req status = Engine.Ivar.fill req.ivar status
let make_request e = { ivar = Engine.Ivar.create (); r_engine = e }

(* Process a matched (posted, envelope) pair at the current virtual
   time.  All data movement happens here; completions are scheduled
   after the modeled processing delay. *)
let process_match w (pr : posted) (env : envelope) =
  let ctx = w.ctx in
  let e = ctx.engine in
  let capacity = recv_dt_capacity pr.pr_dt in
  let finish_recv ~delay status =
    Engine.at e ~delay (fun () -> complete pr.pr_req status)
  in
  (* How long the envelope sat in the unexpected queue before a
     matching receive arrived. *)
  if not (Float.is_nan env.e_queued_at) then
    observe ctx "unexpected_residency_ns" (Engine.now e -. env.e_queued_at);
  if env.e_total > capacity then begin
    if obs_on ctx then
      Obs.instant ctx.obs ~time:(Engine.now e) ~track:w.id ~cat:"proto"
        ~args:[ ("expected", Obs.Int env.e_total); ("capacity", Obs.Int capacity) ]
        "truncated";
    (* Truncation: no data is delivered; sender completes normally
       (it either already did, for eager, or completes now). *)
    (match env.e_payload with
    | P_eager _ -> ()
    | P_rndv r ->
        complete r.r_request { len = env.e_total; tag = env.e_tag; error = None });
    finish_recv ~delay:0.
      {
        len = 0;
        tag = env.e_tag;
        error = Some (Truncated { expected = env.e_total; capacity });
      }
  end
  else
    match env.e_payload with
    | P_eager frags -> (
        (* Data already arrived in bounce buffers; receiver copies or
           unpacks it into place.  If it sat in the unexpected queue we
           also pay the allocation that buffered it. *)
        let alloc_delay =
          if env.e_unexpected_alloc > 0 then begin
            Stats.record_free ctx.stats env.e_unexpected_alloc;
            Config.alloc_time (cpu ctx) env.e_unexpected_alloc
          end
          else 0.
        in
        match deposit ctx pr.pr_dt frags ~zcopy:false with
        | cpu_time ->
            let delay = alloc_delay +. cpu_time in
            if obs_on ctx then begin
              let t0 = Engine.now e in
              if delay > 0. then begin
                let sp =
                  Obs.span_complete ctx.obs ~track:w.id ~cat:"proto" ~t0
                    ~t1:(t0 +. delay)
                    ~args:[ ("bytes", Obs.Int env.e_total) ]
                    "unpack"
                in
                match pr.pr_dt with
                | Rd_generic _ ->
                    tile_callbacks ctx ~track:w.id ~t0:(t0 +. alloc_delay)
                      ~t1:(t0 +. delay) ~n:(List.length frags) ~name:"unpack_cb"
                      ~hist:"unpack_cb_ns" ~parent:sp ()
                | Rd_contig _ | Rd_iov _ -> ()
              end;
              observe ctx "msg_latency_ns_eager" (t0 +. delay -. env.e_sent_at)
            end;
            finish_recv ~delay
              { len = env.e_total; tag = env.e_tag; error = None }
        | exception Callback_error code ->
            finish_recv ~delay:alloc_delay
              { len = 0; tag = env.e_tag; error = Some (Callback_failed code) })
    | P_rndv r -> (
        let l = link ctx in
        let size = env.e_total in
        let wire =
          Config.wire_time l size
          +.
          match r.r_dt with
          | Sd_iov bufs -> iov_cost ctx (List.length bufs)
          | Sd_contig _ | Sd_generic _ -> 0.
        in
        let fail code =
          (* A callback failure poisons both sides of the transfer. *)
          complete r.r_request
            { len = 0; tag = env.e_tag; error = Some (Callback_failed code) };
          finish_recv ~delay:0.
            { len = 0; tag = env.e_tag; error = Some (Callback_failed code) }
        in
        match materialize ctx r.r_dt with
        | exception Callback_error code -> fail code
        | frags, send_cbs -> (
            let cpu_send =
              match r.r_dt with
              | Sd_generic g ->
                  (* pipelined pack: one bounce fragment is reused *)
                  Config.alloc_time (cpu ctx) l.frag_size
                  +. Config.memcpy_time (cpu ctx) size
                  +. (float_of_int send_cbs *. (cpu ctx).pack_cb_overhead_ns)
                  +. g.sg_overhead_ns
              | Sd_contig _ | Sd_iov _ -> 0.
            in
            (match r.r_dt with
            | Sd_generic _ -> Stats.record_copy ctx.stats size
            | Sd_contig _ | Sd_iov _ -> ());
            let zcopy =
              match (r.r_dt, pr.pr_dt) with
              | (Sd_contig _ | Sd_iov _), (Rd_contig _ | Rd_iov _) -> true
              | Sd_generic _, (Rd_contig _ | Rd_iov _) ->
                  (* packed stream lands directly in receiver memory *)
                  true
              | _, Rd_generic _ -> false
            in
            match deposit ctx pr.pr_dt frags ~zcopy with
            | cpu_recv ->
                let duration =
                  l.rndv_handshake_ns +. l.rndv_reg_ns
                  +. Float.max wire (Float.max cpu_send cpu_recv)
                in
                (* Phase spans for the rendezvous: handshake, then the
                   wire transfer overlapped with sender pack and
                   receiver unpack — the same decomposition the
                   duration formula above models. *)
                if obs_on ctx then begin
                  let t0 = Engine.now e in
                  let sp =
                    Obs.span_complete ctx.obs ~track:w.id ~cat:"proto" ~t0
                      ~t1:(t0 +. duration)
                      ~args:
                        [ ("bytes", Obs.Int size); ("src", Obs.Int env.e_src) ]
                      "rndv"
                  in
                  let hs_end = t0 +. l.rndv_handshake_ns +. l.rndv_reg_ns in
                  ignore
                    (Obs.span_complete ctx.obs ~track:w.id ~cat:"proto" ~t0
                       ~t1:hs_end ~parent:sp "handshake");
                  if wire > 0. then
                    ignore
                      (Obs.span_complete ctx.obs ~track:env.e_src ~cat:"proto"
                         ~t0:hs_end ~t1:(hs_end +. wire)
                         ~args:[ ("bytes", Obs.Int size) ]
                         ~parent:sp "wire");
                  if cpu_send > 0. then begin
                    let sp_pack =
                      Obs.span_complete ctx.obs ~track:env.e_src ~cat:"proto"
                        ~t0:hs_end ~t1:(hs_end +. cpu_send) ~parent:sp "pack"
                    in
                    tile_callbacks ctx ~track:env.e_src ~t0:hs_end
                      ~t1:(hs_end +. cpu_send) ~n:send_cbs ~name:"pack_cb"
                      ~hist:"pack_cb_ns" ~parent:sp_pack ()
                  end;
                  if cpu_recv > 0. then begin
                    let sp_un =
                      Obs.span_complete ctx.obs ~track:w.id ~cat:"proto"
                        ~t0:hs_end ~t1:(hs_end +. cpu_recv) ~parent:sp "unpack"
                    in
                    match pr.pr_dt with
                    | Rd_generic _ ->
                        tile_callbacks ctx ~track:w.id ~t0:hs_end
                          ~t1:(hs_end +. cpu_recv) ~n:(List.length frags)
                          ~name:"unpack_cb" ~hist:"unpack_cb_ns" ~parent:sp_un
                          ()
                    | Rd_contig _ | Rd_iov _ -> ()
                  end;
                  observe ctx "msg_latency_ns_rndv"
                    (t0 +. duration -. env.e_sent_at)
                end;
                Engine.at e ~delay:duration (fun () ->
                    complete r.r_request
                      { len = size; tag = env.e_tag; error = None };
                    complete pr.pr_req
                      { len = size; tag = env.e_tag; error = None })
            | exception Callback_error code -> fail code))

(* Try to match a new envelope against posted receives / probe waiters;
   otherwise queue it as unexpected. *)
let deliver w env =
  trace w.ctx "arrive" "worker %d <- src %d tag=%Lx %dB" w.id env.e_src
    env.e_tag env.e_total;
  let rec find_posted acc = function
    | [] -> None
    | pr :: rest ->
        if tag_matches ~tag:pr.pr_tag ~mask:pr.pr_mask env.e_tag then begin
          w.posted <- List.rev_append acc rest;
          Some pr
        end
        else find_posted (pr :: acc) rest
  in
  match find_posted [] w.posted with
  | Some pr ->
      trace w.ctx "match" "worker %d matched posted recv tag=%Lx" w.id env.e_tag;
      if obs_on w.ctx then
        Obs.instant w.ctx.obs ~time:(Engine.now w.ctx.engine) ~track:w.id
          ~cat:"proto"
          ~args:[ ("src", Obs.Int env.e_src); ("bytes", Obs.Int env.e_total) ]
          "match";
      process_match w pr env
  | None ->
      trace w.ctx "unexpected" "worker %d queued tag=%Lx %dB" w.id env.e_tag
        env.e_total;
      (* Buffer it.  Eager payloads consume receiver memory. *)
      (match env.e_payload with
      | P_eager _ ->
          env.e_unexpected_alloc <- env.e_total;
          Stats.record_alloc w.ctx.stats env.e_total
      | P_rndv _ -> ());
      env.e_queued_at <- Engine.now w.ctx.engine;
      w.unexpected <- w.unexpected @ [ env ];
      if obs_on w.ctx then begin
        let mx = Obs.metrics w.ctx.obs in
        Obs.instant w.ctx.obs ~time:env.e_queued_at ~track:w.id ~cat:"proto"
          ~args:[ ("src", Obs.Int env.e_src); ("bytes", Obs.Int env.e_total) ]
          "unexpected";
        Metrics.inc (Metrics.counter mx "unexpected_total");
        Metrics.set
          (Metrics.gauge mx (Printf.sprintf "unexpected_depth.w%d" w.id))
          (float_of_int (List.length w.unexpected))
      end;
      let info =
        { p_tag = env.e_tag; p_len = env.e_total; p_src_worker = env.e_src }
      in
      (* Wake blocking probes (peek: envelope stays queued). *)
      let wake, keep =
        List.partition
          (fun (tag, mask, _) -> tag_matches ~tag ~mask env.e_tag)
          w.probe_waiters
      in
      w.probe_waiters <- keep;
      List.iter (fun (_, _, resume) -> resume info) wake;
      (* Wake at most one blocking mprobe (take: envelope dequeued). *)
      let rec wake_mprobe acc = function
        | [] -> ()
        | ((tag, mask, resume) as waiter) :: rest ->
            if
              tag_matches ~tag ~mask env.e_tag
              && List.memq env w.unexpected
            then begin
              w.mprobe_waiters <- List.rev_append acc rest;
              w.unexpected <- List.filter (fun x -> x != env) w.unexpected;
              resume (info, env)
            end
            else wake_mprobe (waiter :: acc) rest
    in
      wake_mprobe [] w.mprobe_waiters

(* Schedule envelope arrival over the link, preserving per-channel
   FIFO ordering. *)
let ship ep ~after env =
  let ctx = ep.ep_src.ctx in
  let e = ctx.engine in
  let jitter = match ctx.jitter with None -> 0. | Some f -> f () in
  let key = (ep.ep_src.id, ep.ep_dst.id) in
  let chan =
    match Hashtbl.find_opt ctx.channels key with
    | Some r -> r
    | None ->
        let r = ref 0. in
        Hashtbl.add ctx.channels key r;
        r
  in
  let arrival = Float.max (Engine.now e +. after +. jitter) !chan in
  chan := arrival;
  if obs_on ctx then begin
    (* Eager payload bytes ride this delivery; a rendezvous only ships
       its RTS control message here (data moves at match time). *)
    let name = match env.e_payload with P_eager _ -> "wire" | P_rndv _ -> "rts" in
    ignore
      (Obs.span_complete ctx.obs ~track:ep.ep_src.id ~cat:"proto"
         ~t0:(Engine.now e) ~t1:arrival
         ~args:[ ("dst", Obs.Int ep.ep_dst.id); ("bytes", Obs.Int env.e_total) ]
         name)
  end;
  Engine.at e ~delay:(arrival -. Engine.now e) (fun () -> deliver ep.ep_dst env)

let tag_send ep ~tag dt =
  let ctx = ep.ep_src.ctx in
  let e = ctx.engine in
  let l = link ctx in
  let c = cpu ctx in
  let req = make_request e in
  Engine.sleep e l.per_msg_overhead_ns;
  let total = send_dt_size dt in
  (match dt with
  | Sd_iov bufs ->
      (* iovec path: always a single zero-copy rendezvous-style
         transfer; never switches protocol with size. *)
      let entries = List.length bufs in
      trace ctx "send" "worker %d iov tag=%Lx %dB in %d entries"
        ep.ep_src.id tag total entries;
      Stats.record_message ctx.stats ~eager:false ~wire_bytes:total;
      Stats.record_iov_entries ctx.stats entries;
      observe ctx "msg_bytes_iov" (float_of_int total);
      let env =
        {
          e_tag = tag;
          e_total = total;
          e_src = ep.ep_src.id;
          e_payload = P_rndv { r_dt = dt; r_request = req };
          e_unexpected_alloc = 0;
          e_sent_at = Engine.now e;
          e_queued_at = Float.nan;
        }
      in
      ship ep ~after:l.latency_ns env
  | Sd_contig _ | Sd_generic _ ->
      if total <= l.eager_limit then begin
        (* Eager: snapshot/pack synchronously, then fire and forget. *)
        match
          match dt with
          | Sd_contig b ->
              (* eager-zcopy: the NIC reads the registered user buffer
                 directly; the snapshot below exists only so the
                 simulated sender may reuse its buffer immediately. *)
              (([ Buf.copy b ], 0), 0.)
          | Sd_generic g ->
              let frags, ncb = pack_fragments ctx g in
              g.sg_finish ();
              Stats.record_copy ctx.stats total;
              ( (frags, ncb),
                Config.alloc_time c total
                +. Config.memcpy_time c total
                +. (float_of_int ncb *. c.pack_cb_overhead_ns)
                +. g.sg_overhead_ns )
          | Sd_iov _ -> assert false
        with
        | (frags, ncb), cpu_time ->
            Engine.sleep e cpu_time;
            trace ctx "send" "worker %d eager tag=%Lx %dB" ep.ep_src.id tag total;
            Stats.record_message ctx.stats ~eager:true ~wire_bytes:total;
            if obs_on ctx then begin
              observe ctx "msg_bytes_eager" (float_of_int total);
              (* The sleep above charged the pack cost; the span covers
                 exactly that interval. *)
              if cpu_time > 0. then begin
                let t1 = Engine.now e in
                let sp =
                  Obs.span_complete ctx.obs ~track:ep.ep_src.id ~cat:"proto"
                    ~t0:(t1 -. cpu_time) ~t1
                    ~args:[ ("bytes", Obs.Int total) ]
                    "pack"
                in
                tile_callbacks ctx ~track:ep.ep_src.id ~t0:(t1 -. cpu_time) ~t1
                  ~n:ncb ~name:"pack_cb" ~hist:"pack_cb_ns" ~parent:sp ()
              end
            end;
            let env =
              {
                e_tag = tag;
                e_total = total;
                e_src = ep.ep_src.id;
                e_payload = P_eager frags;
                e_unexpected_alloc = 0;
                e_sent_at = Engine.now e;
                e_queued_at = Float.nan;
              }
            in
            ship ep ~after:(l.latency_ns +. Config.wire_time l total) env;
            complete req { len = total; tag; error = None }
        | exception Callback_error code ->
            complete req { len = 0; tag; error = Some (Callback_failed code) }
      end
      else begin
        (* Rendezvous: only the RTS travels now. *)
        trace ctx "send" "worker %d rndv tag=%Lx %dB" ep.ep_src.id tag total;
        Stats.record_message ctx.stats ~eager:false ~wire_bytes:total;
        observe ctx "msg_bytes_rndv" (float_of_int total);
        let env =
          {
            e_tag = tag;
            e_total = total;
            e_src = ep.ep_src.id;
            e_payload = P_rndv { r_dt = dt; r_request = req };
            e_unexpected_alloc = 0;
            e_sent_at = Engine.now e;
            e_queued_at = Float.nan;
          }
        in
        ship ep ~after:l.latency_ns env
      end);
  req

let tag_recv w ~tag ~mask dt =
  let req = make_request w.ctx.engine in
  let pr = { pr_tag = tag; pr_mask = mask; pr_dt = dt; pr_req = req } in
  (* Match against the unexpected queue in arrival order. *)
  let rec find acc = function
    | [] -> None
    | env :: rest ->
        if tag_matches ~tag ~mask env.e_tag then begin
          w.unexpected <- List.rev_append acc rest;
          Some env
        end
        else find (env :: acc) rest
  in
  (match find [] w.unexpected with
  | Some env -> process_match w pr env
  | None ->
      w.posted <- w.posted @ [ pr ];
      if obs_on w.ctx then
        Metrics.set
          (Metrics.gauge (Obs.metrics w.ctx.obs)
             (Printf.sprintf "posted_depth.w%d" w.id))
          (float_of_int (List.length w.posted)));
  req

let wait (req : request) = Engine.Ivar.read req.r_engine req.ivar

let tag_probe w ~tag ~mask =
  Stats.record_probe w.ctx.stats;
  List.find_opt (fun env -> tag_matches ~tag ~mask env.e_tag) w.unexpected
  |> Option.map (fun env ->
         { p_tag = env.e_tag; p_len = env.e_total; p_src_worker = env.e_src })

let tag_probe_wait w ~tag ~mask =
  match tag_probe w ~tag ~mask with
  | Some info -> info
  | None ->
      Engine.suspend w.ctx.engine (fun resume ->
          w.probe_waiters <- w.probe_waiters @ [ (tag, mask, resume) ])

let tag_mprobe w ~tag ~mask =
  Stats.record_probe w.ctx.stats;
  let rec find acc = function
    | [] -> None
    | env :: rest ->
        if tag_matches ~tag ~mask env.e_tag then begin
          w.unexpected <- List.rev_append acc rest;
          Some
            ( {
                p_tag = env.e_tag;
                p_len = env.e_total;
                p_src_worker = env.e_src;
              },
              env )
        end
        else find (env :: acc) rest
  in
  find [] w.unexpected

let tag_mprobe_wait w ~tag ~mask =
  match tag_mprobe w ~tag ~mask with
  | Some r -> r
  | None ->
      Engine.suspend w.ctx.engine (fun resume ->
          w.mprobe_waiters <- w.mprobe_waiters @ [ (tag, mask, resume) ])

let msg_recv w (env : message) dt =
  let req = make_request w.ctx.engine in
  let pr = { pr_tag = env.e_tag; pr_mask = -1L; pr_dt = dt; pr_req = req } in
  process_match w pr env;
  req

let is_completed (req : request) = Engine.Ivar.is_filled req.ivar
let peek (req : request) = Engine.Ivar.peek req.ivar
