module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Topology = Mpicd_simnet.Topology
module Obs = Mpicd_obs.Obs
module Metrics = Mpicd_obs.Metrics

exception Callback_error of int

type send_generic = {
  sg_packed_size : int;
  sg_pack : offset:int -> dst:Buf.t -> int;
  sg_finish : unit -> unit;
  sg_overhead_ns : float;
}

type recv_generic = {
  rg_capacity : int;
  rg_unpack : offset:int -> src:Buf.t -> int;
      (* returns bytes consumed; must equal the fragment length (every
         delivered fragment lies wholly inside the packed stream) *)
  rg_finish : unit -> unit;
  rg_overhead_ns : float;
}

type send_dt =
  | Sd_contig of Buf.t
  | Sd_iov of Buf.t list
  | Sd_generic of send_generic

type recv_dt =
  | Rd_contig of Buf.t
  | Rd_iov of Buf.t list
  | Rd_generic of recv_generic

type error =
  | Truncated of { expected : int; capacity : int }
  | Callback_failed of int
  | Timeout of { retries : int }
  | Peer_failed of { peer : int }
  | Data_corrupted
  | Revoked

type status = { len : int; tag : int64; error : error option }

type request = {
  ivar : status Engine.Ivar.t;
  r_engine : Engine.t;
  mutable r_seq : int;
      (* per-context message sequence number ("mseq") of the message this
         request sends or received; -1 until known.  Purely diagnostic:
         it joins send and receive spans across ranks in trace
         analysis and never influences matching or timing. *)
}

type payload =
  | P_eager of Buf.t list  (* snapshot fragments *)
  | P_rndv of rndv
  | P_nack of error
      (* poison envelope: a failed transfer notifying the receiver, so a
         posted receive completes with an error instead of deadlocking *)

and rndv = {
  r_dt : send_dt;
  r_request : request;  (* sender request, completed when transfer ends *)
  mutable r_done : bool;
      (* send-descriptor state released (packed or aborted); guards the
         exactly-once [sg_finish] guarantee when an RTS is withdrawn *)
}

type envelope = {
  e_tag : int64;
  e_total : int;
  e_src : int;
  e_seq : int;  (* context-wide message sequence number, for trace joins *)
  e_payload : payload;
  mutable e_unexpected_alloc : int;
      (* receiver bytes allocated to hold this envelope while unexpected *)
  e_sent_at : float;  (* virtual send-post time, for latency histograms *)
  mutable e_queued_at : float;
      (* when it entered the unexpected queue; NaN if never queued *)
  mutable e_matched : bool;
      (* set by [process_match]; guards the rendezvous-handshake timer *)
}

type posted = { pr_tag : int64; pr_mask : int64; pr_dt : recv_dt; pr_req : request }

type probe_info = { p_tag : int64; p_len : int; p_src_worker : int }

type message = envelope

type worker = {
  id : int;
  ctx : context;
  mutable posted : posted list;  (* in post order *)
  mutable unexpected : envelope list;  (* in arrival order *)
  mutable probe_waiters : (int64 * int64 * probe_info Engine.resumer) list;
  mutable mprobe_waiters :
    (int64 * int64 * (probe_info * message) Engine.resumer) list;
}

and context = {
  engine : Engine.t;
  config : Config.t;
  stats : Stats.t;
  mutable next_worker : int;
  mutable next_mseq : int;  (* message sequence allocator (see [e_seq]) *)
  mutable workers_list : worker list;  (* newest first; for cancellation *)
  channels : (int * int, float ref) Hashtbl.t;
      (* per (src,dst) pair: earliest next delivery time, for FIFO order *)
  mutable jitter : (unit -> float) option;
  mutable trace : Mpicd_simnet.Trace.t option;
  mutable obs : Obs.t;
  mutable faults : Fault.runtime option;
      (* [None] (the default) leaves every fault-free code path exactly
         as it was: the reliable-delivery protocol only engages when a
         plan is attached *)
  mutable retx_rng : Mpicd_simnet.Rng.t option;
      (* dedicated decorrelated-jitter stream for retransmit backoff
         ([Config.retx_jitter]); separate from the fault-decision stream
         so enabling jitter never perturbs drop/corrupt fates *)
  failed : (int, float) Hashtbl.t;  (* worker id -> detection time *)
  mutable any_failed : bool;  (* cheap guard for fail-fast checks *)
  mutable fail_listeners : (rank:int -> time:float -> unit) list;
  mutable bounce_pool : Buf.t list;
      (* recycled full-size pack bounce fragments (fault-free path only:
         the reliable protocol may still reference frags after deposit,
         so pooling there could perturb exact replays) *)
  mutable bounce_pool_len : int;
  mutable topology : Topology.t option;
      (* [None] (the default) is the flat wire: every path helper below
         reduces exactly to [latency_ns] / [wire_time], so existing
         virtual-time results are bit-identical.  With a topology
         attached, message motion routes over its links and shares
         their bandwidth *)
}

type endpoint = { ep_src : worker; ep_dst : worker }

let create_context ~engine ~config ~stats =
  {
    engine;
    config;
    stats;
    next_worker = 0;
    next_mseq = 0;
    workers_list = [];
    channels = Hashtbl.create 16;
    jitter = None;
    trace = None;
    obs = Obs.null;
    faults = None;
    retx_rng = None;
    failed = Hashtbl.create 8;
    any_failed = false;
    fail_listeners = [];
    bounce_pool = [];
    bounce_pool_len = 0;
    topology = None;
  }

let engine c = c.engine
let config c = c.config
let stats c = c.stats
let set_channel_jitter c j = c.jitter <- j
let set_topology c topo = c.topology <- topo
let topology c = c.topology
let set_trace c t = c.trace <- t
let set_obs c o = c.obs <- o
let faults c = Option.map Fault.plan c.faults

(* With no trace attached, skip the Format machinery entirely
   (ikfprintf consumes the arguments without building the string);
   the guard must come before formatting, not after. *)
let trace ctx category fmt =
  match ctx.trace with
  | None -> Printf.ikfprintf (fun () -> ()) () fmt
  | Some t ->
      Printf.ksprintf
        (fun msg ->
          Mpicd_simnet.Trace.record t ~time:(Engine.now ctx.engine) ~category msg)
        fmt

(* --- observability helpers ---

   All span durations below are *derived* from the same modeled delays
   the simulation charges elsewhere; recording never advances the clock
   or touches [Stats], so an attached sink observes an unchanged run. *)

let obs_on ctx = Obs.enabled ctx.obs

let observe ctx name v =
  if obs_on ctx then Metrics.observe (Metrics.histogram (Obs.metrics ctx.obs) name) v

(* Tile [n] per-callback spans uniformly across a phase's modeled
   interval, attributing the phase's virtual time to its callback
   invocations, and feed the per-callback cost histogram. *)
let tile_callbacks ctx ~track ~t0 ~t1 ~n ~name ~hist ?parent () =
  if obs_on ctx && n > 0 && t1 > t0 then begin
    let per = (t1 -. t0) /. float_of_int n in
    for i = 0 to n - 1 do
      let s0 = t0 +. (per *. float_of_int i) in
      ignore
        (Obs.span_complete ctx.obs ~track ~cat:"callback" ~t0:s0 ~t1:(s0 +. per)
           ?parent name)
    done;
    let h = Metrics.histogram (Obs.metrics ctx.obs) hist in
    for _ = 1 to n do
      Metrics.observe h per
    done
  end

let create_worker ctx =
  let id = ctx.next_worker in
  ctx.next_worker <- id + 1;
  let w =
    {
      id;
      ctx;
      posted = [];
      unexpected = [];
      probe_waiters = [];
      mprobe_waiters = [];
    }
  in
  ctx.workers_list <- w :: ctx.workers_list;
  w

let worker_id w = w.id
let worker_context w = w.ctx

let connect src dst = { ep_src = src; ep_dst = dst }

let send_dt_size = function
  | Sd_contig b -> Buf.length b
  | Sd_iov bs -> List.fold_left (fun a b -> a + Buf.length b) 0 bs
  | Sd_generic g -> g.sg_packed_size

let recv_dt_capacity = function
  | Rd_contig b -> Buf.length b
  | Rd_iov bs -> List.fold_left (fun a b -> a + Buf.length b) 0 bs
  | Rd_generic g -> g.rg_capacity

(* --- cost helpers --- *)

let link c = c.config.link
let cpu c = c.config.cpu

let iov_cost c entries =
  let l = link c in
  let chunks = (entries + l.iov_max_entries - 1) / l.iov_max_entries in
  (float_of_int entries *. l.iov_entry_ns)
  +. (float_of_int (max 0 (chunks - 1)) *. l.per_msg_overhead_ns)

(* Topology-aware path costs.  Every timing site that moves message
   payload (or a control message standing in for one) between two
   workers goes through these two helpers, so eager, rendezvous and
   retransmitted traffic all route over the same links and congestion
   composes with faults.  With no topology attached, both reduce
   exactly to the flat formulas — [latency_ns] and [wire_time] — so
   default-topology runs are bit-identical to the pre-topology
   engine. *)
let path_latency c ~src ~dst =
  match c.topology with
  | None -> (link c).latency_ns
  | Some topo -> Topology.path_latency topo ~latency_ns:(link c).latency_ns ~src ~dst

let path_serialize c ~src ~dst bytes =
  match c.topology with
  | None -> Config.wire_time (link c) bytes
  | Some topo ->
      Topology.serialize topo ~ns_per_byte:(link c).ns_per_byte ~src ~dst
        ~bytes ~now:(Engine.now c.engine)

(* --- bounce-buffer pool ---

   The generic pack path allocates one bounce buffer per fragment; on a
   long stream that is pure allocator/GC churn because every fragment
   dies as soon as [deposit] consumes it.  Full-size fragments cycle
   through a small per-context free list instead.  Recycled buffers are
   re-zeroed so a reuse is indistinguishable from a fresh [Buf.create].
   The pool stays out of fault-mode runs: the reliable protocol copies
   and reslices streams on its own schedule, and exact fixed-seed
   replays must not depend on buffer recycling. *)

let max_bounce_pool = 64

let bounce_acquire ctx len =
  match ctx.bounce_pool with
  | b :: rest when Option.is_none ctx.faults && len = (link ctx).frag_size ->
      ctx.bounce_pool <- rest;
      ctx.bounce_pool_len <- ctx.bounce_pool_len - 1;
      Stats.record_bounce_reuse ctx.stats;
      Buf.fill b '\000';
      b
  | _ -> Buf.create len

(* Return deposited fragments to the pool.  Only buffers of exactly
   [frag_size] qualify: a short tail fragment is a [Buf.sub] view of a
   larger allocation and must not be handed out as if it were whole. *)
let bounce_recycle ctx frags =
  if Option.is_none ctx.faults then begin
    let frag_size = (link ctx).frag_size in
    List.iter
      (fun b ->
        if Buf.length b = frag_size && ctx.bounce_pool_len < max_bounce_pool
        then begin
          ctx.bounce_pool <- b :: ctx.bounce_pool;
          ctx.bounce_pool_len <- ctx.bounce_pool_len + 1
        end)
      frags
  end

(* --- fragment-wise generic packing (executes the callbacks) --- *)

(* Pack the whole stream into fragment buffers of [frag_size] (fresh or
   recycled).  Returns the fragments and the number of callback
   invocations. *)
let pack_fragments ctx (g : send_generic) =
  let frag_size = (link ctx).frag_size in
  let total = g.sg_packed_size in
  let frags = ref [] in
  let ncb = ref 0 in
  let off = ref 0 in
  while !off < total do
    let want = min frag_size (total - !off) in
    let dst = bounce_acquire ctx want in
    let used = g.sg_pack ~offset:!off ~dst in
    incr ncb;
    Stats.record_pack_cb ctx.stats;
    (* Contract (paper Listing 4): while the stream is not exhausted a
       pack callback must produce 0 < n <= length dst.  A zero/negative
       return would loop forever; a long return would claim bytes that
       were never written and silently corrupt the packed stream. *)
    if used <= 0 || used > want then
      raise (Callback_error (-1))
    else begin
      frags := (if used = want then dst else Buf.sub dst ~pos:0 ~len:used) :: !frags;
      off := !off + used
    end
  done;
  (List.rev !frags, !ncb)

(* Unpack a list of fragments through the receive callbacks. *)
let unpack_fragments ctx (g : recv_generic) frags =
  let off = ref 0 in
  List.iter
    (fun frag ->
      let used = g.rg_unpack ~offset:!off ~src:frag in
      Stats.record_unpack_cb ctx.stats;
      (* Contract (mirror of the pack-side check): a delivered fragment
         lies wholly inside the packed stream, so the callback must
         consume exactly its length — anything else means receiver state
         has silently diverged from the wire stream. *)
      if used <> Buf.length frag then raise (Callback_error (-2));
      off := !off + Buf.length frag)
    frags;
  g.rg_finish ()

(* Copy a contiguous byte stream (as fragments) into a region list,
   crossing region boundaries as needed. *)
let scatter_fragments frags regions =
  let regions = ref regions in
  let reg_off = ref 0 in
  List.iter
    (fun frag ->
      let fpos = ref 0 in
      while !fpos < Buf.length frag do
        match !regions with
        | [] -> invalid_arg "Ucx: payload exceeds receive regions"
        | r :: rest ->
            let room = Buf.length r - !reg_off in
            let n = min room (Buf.length frag - !fpos) in
            Buf.blit ~src:frag ~src_pos:!fpos ~dst:r ~dst_pos:!reg_off ~len:n;
            fpos := !fpos + n;
            reg_off := !reg_off + n;
            if !reg_off = Buf.length r then begin
              regions := rest;
              reg_off := 0
            end
      done)
    frags

(* Gather a send descriptor's bytes into fresh snapshot fragments (used
   by the rendezvous transfer to move data; models the RDMA engine). *)
let materialize ctx (dt : send_dt) =
  match dt with
  | Sd_contig b -> ([ Buf.copy b ], 0)
  | Sd_iov bs -> ([ Buf.concat bs ], 0)
  | Sd_generic g -> (
      (* [sg_finish] runs exactly once whether the pack stream completes
         or a callback fails partway through *)
      match pack_fragments ctx g with
      | frags, ncb ->
          g.sg_finish ();
          (frags, ncb)
      | exception exn ->
          g.sg_finish ();
          raise exn)

(* Deliver packed fragments into a receive descriptor.  Returns the
   receiver CPU time consumed. *)
let deposit ctx (dt : recv_dt) frags ~zcopy =
  let c = cpu ctx in
  let total = List.fold_left (fun a b -> a + Buf.length b) 0 frags in
  let cpu_time =
    match dt with
    | Rd_contig b ->
        scatter_fragments frags [ b ];
        if zcopy then 0.
        else begin
          Stats.record_copy ctx.stats total;
          Config.memcpy_time c total
        end
    | Rd_iov regions ->
        scatter_fragments frags regions;
        if zcopy then 0.
        else begin
          Stats.record_copy ctx.stats total;
          Config.memcpy_time c total
        end
    | Rd_generic g ->
        let ncb = List.length frags in
        unpack_fragments ctx g frags;
        Stats.record_copy ctx.stats total;
        Config.memcpy_time c total
        +. (float_of_int ncb *. c.pack_cb_overhead_ns)
        +. g.rg_overhead_ns
  in
  (* The fragments are fully consumed: full-size bounce buffers go back
     to the pool for the next pack.  (On a callback error we fall
     through without recycling — ownership is unclear mid-unpack.) *)
  bounce_recycle ctx frags;
  cpu_time

(* --- matching --- *)

let tag_matches ~tag ~mask env_tag =
  Int64.logand env_tag mask = Int64.logand tag mask

let complete req status = Engine.Ivar.fill req.ivar status

(* Fault paths can race a completion against a timeout timer; whichever
   fires second must not double-fill the ivar. *)
let complete_if_pending req status =
  if not (Engine.Ivar.is_filled req.ivar) then complete req status

let make_request e = { ivar = Engine.Ivar.create (); r_engine = e; r_seq = -1 }
let request_seq (req : request) = req.r_seq

(* --- reliable delivery (engaged only when a fault plan is attached) ---

   With a fault plan attached the wire is lossy, so payload and control
   streams move through a stop-and-wait-per-fragment protocol: the
   stream is cut into [frag_size] wire fragments, each carrying a
   sequence number and (on checksummed paths) a CRC32; the receiver
   acks the window cumulatively, nacks CRC mismatches, and suppresses
   duplicates by sequence number.  The sending fiber sleeps through
   serialization, retransmission timeouts and the final ack round trip,
   so every recovery costs virtual time and shows up in [Stats]/[Obs].
   Both endpoints live in one address space, so the receiver half of
   the state machine is evaluated inline at each fragment's modeled
   arrival time — the virtual clock still charges both directions. *)

let fault_instant ctx ~track ~time name args =
  if obs_on ctx then begin
    Obs.instant ctx.obs ~time ~track ~cat:"fault" ~args name;
    Metrics.inc (Metrics.counter (Obs.metrics ctx.obs) ("fault." ^ name))
  end

(* Per-rank straggler slowdown: multiplies every CPU cost (posting
   overhead, pack, unpack, staging) charged to [rank].  Exactly [1.]
   without a plan or for non-stragglers, so the fault-free path is
   bit-identical ([x *. 1. = x] in IEEE arithmetic). *)
let straggle ctx rank =
  match ctx.faults with
  | None -> 1.
  | Some fr -> Fault.straggle_factor (Fault.plan fr) ~rank

(* --- process-failure detection and operation cancellation ---

   A crashed rank is *declared* failed either by the heartbeat detector
   (a fiber walking the plan's crash schedule at heartbeat granularity)
   or piggybacked on normal traffic (retry exhaustion against a crashed
   peer).  Declaration is idempotent; listeners installed by the upper
   layer cancel the victims' pending operations so nothing waits on a
   dead rank forever. *)

(* Release the callback state held by an aborted send descriptor.  The
   paper's serialization contract promises the application's [free]
   (here [sg_finish]) runs exactly once per started send, even when the
   transfer never moves data. *)
let dispose_send_dt = function
  | Sd_generic g -> g.sg_finish ()
  | Sd_contig _ | Sd_iov _ -> ()

let dispose_rndv (r : rndv) =
  if not r.r_done then begin
    r.r_done <- true;
    dispose_send_dt r.r_dt
  end

let dispose_recv_dt = function
  | Rd_generic g -> g.rg_finish ()
  | Rd_contig _ | Rd_iov _ -> ()

let is_failed ctx ~rank = Hashtbl.mem ctx.failed rank
let any_failures ctx = ctx.any_failed

let failed_ranks ctx =
  Hashtbl.fold (fun r _ acc -> r :: acc) ctx.failed []
  |> List.sort compare

let on_failure ctx f = ctx.fail_listeners <- f :: ctx.fail_listeners

let notify_failure ctx ~rank =
  if not (Hashtbl.mem ctx.failed rank) then begin
    let now = Engine.now ctx.engine in
    Hashtbl.replace ctx.failed rank now;
    ctx.any_failed <- true;
    Stats.record_failure_detected ctx.stats;
    trace ctx "fault" "rank %d declared failed" rank;
    fault_instant ctx ~track:rank ~time:now "rank_failed"
      [ ("rank", Obs.Int rank) ];
    (* detection latency relative to the plan's crash instant *)
    (match ctx.faults with
    | Some fr -> (
        match Fault.crash_time (Fault.plan fr) ~rank with
        | Some t0 -> observe ctx "failure_detect_latency_ns" (now -. t0)
        | None -> ())
    | None -> ());
    List.iter (fun f -> f ~rank ~time:now) ctx.fail_listeners
  end

(* A request that is already complete with [error] — what a fail-fast
   operation on a revoked/broken communicator returns. *)
let completed_request ctx ~tag error =
  let req = make_request ctx.engine in
  complete req { len = 0; tag; error = Some error };
  req

(* Complete a pending request early with [error] and withdraw any
   transport state referring to it (posted receives, queued RTS
   envelopes), releasing descriptor callback state exactly once.
   Returns false if the request had already completed. *)
let try_cancel ctx (req : request) ~tag error =
  if Engine.Ivar.is_filled req.ivar then false
  else begin
    complete req { len = 0; tag; error = Some error };
    Stats.record_op_cancelled ctx.stats;
    List.iter
      (fun w ->
        let mine, rest = List.partition (fun pr -> pr.pr_req == req) w.posted in
        if mine <> [] then begin
          w.posted <- rest;
          List.iter (fun pr -> dispose_recv_dt pr.pr_dt) mine
        end;
        let gone, keep =
          List.partition
            (fun env ->
              match env.e_payload with
              | P_rndv r -> r.r_request == req
              | P_eager _ | P_nack _ -> false)
            w.unexpected
        in
        if gone <> [] then begin
          w.unexpected <- keep;
          List.iter
            (fun env ->
              match env.e_payload with
              | P_rndv r -> dispose_rndv r
              | P_eager _ | P_nack _ -> ())
            gone
        end)
      ctx.workers_list;
    true
  end

(* Heartbeat liveness detector: each rank probes its peers every
   [hb_period_ns]; a crashed rank misses the first heartbeat boundary
   after its crash time and is declared failed once the probe and its
   missing reply have had time to cross the link (two latencies).  The
   fiber walks the precomputed crash schedule and exits, so it never
   keeps the engine alive once every crash has been declared. *)
(* A straggler is falsely declared failed when its probe reply cannot
   cross the link within the reply budget of one heartbeat round: reply
   time [factor * 2 * latency] against budget [period + 2 * latency] —
   the classic slow-vs-dead ambiguity of timeout detectors.  Below that
   threshold a straggler is never declared, which the partition /
   straggler test oracles pin. *)
let straggler_declared (l : Config.link) plan (factor : float) =
  factor *. 2. *. l.latency_ns > plan.Fault.hb_period_ns +. (2. *. l.latency_ns)

let detector_events ctx plan =
  let l = link ctx in
  let period = plan.Fault.hb_period_ns in
  List.map
    (fun (rank, t0) ->
      let detect_at =
        ((Float.floor (t0 /. period) +. 1.) *. period) +. (2. *. l.latency_ns)
      in
      (detect_at, rank))
    (Fault.earliest_crashes plan)
  @ List.filter_map
      (fun (rank, factor) ->
        if straggler_declared l plan factor then
          Some (period +. (factor *. 2. *. l.latency_ns), rank)
        else None)
      plan.Fault.stragglers
  |> List.sort compare

let spawn_detector ctx events =
  let e = ctx.engine in
  Engine.spawn e ~name:"fail_detector" (fun () ->
      List.iter
        (fun (detect_at, rank) ->
          let now = Engine.now e in
          if detect_at > now then Engine.sleep e (detect_at -. now);
          notify_failure ctx ~rank)
        events)

let set_faults c p =
  c.faults <- Option.map Fault.start p;
  (* The jitter stream reseeds with the plan so a given (plan, seed)
     replay is deterministic even with jitter enabled.  XOR'd constant:
     keeps it distinct from the fault-decision stream of the same seed. *)
  c.retx_rng <-
    (match p with
    | Some plan when c.config.Config.retx_jitter ->
        Some (Mpicd_simnet.Rng.create (plan.Fault.seed lxor 0x4a69_7474))
    | _ -> None);
  match p with
  | Some plan when plan.Fault.hb_period_ns > 0. -> (
      match detector_events c plan with
      | [] -> ()
      | events -> spawn_detector c events)
  | _ -> ()

(* Install the explorer's probe tap on the attached plan runtime; call
   after [set_faults] (a later [set_faults] replaces the runtime and
   drops the tap).  No-op without a plan. *)
let set_tap c f =
  match c.faults with Some fr -> Fault.set_tap fr f | None -> ()

(* Wire-fragment lengths of a [total]-byte stream; control messages
   (total = 0) still occupy one zero-length fragment. *)
let wire_frag_sizes (l : Config.link) total =
  if total <= 0 then [ 0 ]
  else
    let rec go off acc =
      if off >= total then List.rev acc
      else
        let n = min l.frag_size (total - off) in
        go (off + n) (n :: acc)
    in
    go 0 []

(* Cut a stream into fragment-sized slices (zero-copy subs), so
   deposit-side callback counts match the fault-free protocol. *)
let reslice (l : Config.link) stream =
  let total = Buf.length stream in
  let rec go off acc =
    if off >= total then List.rev acc
    else
      let n = min l.frag_size (total - off) in
      go (off + n) (Buf.sub stream ~pos:off ~len:n :: acc)
  in
  go 0 []

type xfer = {
  x_lag : float;
      (* delivery lag: the last fragment lands [x_lag] ns after the
         transfer call returns (its latency + any extra fault delay) *)
  x_delivered : Buf.t;  (* the receiver's view of the stream *)
  x_dirty : bool;
      (* delivered <> sent: corruption slipped through; only possible
         when [checksum] was false (zero-copy DMA path) *)
}

(* The deterministic backoff sleep before retransmission [attempt + 1]:
   the plan's exponential schedule clamped at the config ceiling, so
   straggler-stretched or large-exponent chains can't balloon (or
   overflow to [infinity]) virtual time.  Pure so tests can pin the
   clamp boundary exactly. *)
let retx_backoff_ns (cfg : Config.t) plan ~attempt =
  Float.min cfg.Config.retx_backoff_max_ns (Fault.rto plan ~attempt)

(* Move [stream] from [src_id] to [dst_id] under the attached fault
   plan.  Must run in a fiber; returns once the last fragment has been
   serialized (the caller schedules delivery [x_lag] later and the
   cumulative ack one link latency after that). *)
let reliable_transfer ctx fr ~mseq ~src_id ~dst_id ~stream ~checksum =
  let e = ctx.engine in
  let l = link ctx in
  let plan = Fault.plan fr in
  let t_start = Engine.now e in
  let delivered = Buf.copy stream in
  let dirty = ref false in
  let retx = ref 0 in
  let failure = ref None in
  let frag_sizes = wire_frag_sizes l (Buf.length stream) in
  let last_lag = ref (path_latency ctx ~src:src_id ~dst:dst_id) in
  (* decorrelated-jitter state: previous backoff sleep of THIS transfer
     (each transfer de-correlates independently, which is what breaks
     synchronized retry storms across concurrent flows) *)
  let prev_sleep = ref plan.Fault.rto_ns in
  let clamp_ns = ctx.config.Config.retx_backoff_max_ns in
  let backoff_sleep attempt =
    match ctx.retx_rng with
    | None -> retx_backoff_ns ctx.config plan ~attempt
    | Some rng ->
        (* sleep ~ U[rto, min(cap, 3 x previous)], after AWS's
           "decorrelated jitter"; the cap is the ceiling of the
           deterministic exponential schedule so jitter never waits
           longer than the fixed backoff would at retry exhaustion *)
        let base = Float.min clamp_ns plan.Fault.rto_ns in
        let cap = retx_backoff_ns ctx.config plan ~attempt:plan.Fault.max_retries in
        let hi = Float.min cap (Float.max (base +. 1.) (3. *. !prev_sleep)) in
        let s = base +. Mpicd_simnet.Rng.float rng (Float.max 0. (hi -. base)) in
        let s = Float.min clamp_ns s in
        prev_sleep := s;
        Stats.record_jittered_backoff ctx.stats;
        s
  in
  let rec send_frag seq off len attempt =
    let now = Engine.now e in
    (* link flap: wait for the link to come back up *)
    let up = Fault.up_at plan ~src:src_id ~dst:dst_id ~now in
    if up > now then begin
      Stats.record_flap_wait ctx.stats;
      trace ctx "fault" "link %d->%d down, waiting %.0fns" src_id dst_id
        (up -. now);
      fault_instant ctx ~track:src_id ~time:now "link_down"
        [ ("until", Obs.Float up) ];
      Engine.sleep e (up -. now)
    end;
    let now = Engine.now e in
    let dead =
      Fault.crashed_rt fr ~rank:dst_id ~now
      || Fault.crashed_rt fr ~rank:src_id ~now
    in
    (* The fate is always drawn first so the decision stream stays
       aligned whether or not a targeted injection or partition
       overrides it below. *)
    let fate = Fault.fate fr ~src:src_id ~dst:dst_id in
    let injected =
      if attempt = 0 then
        Fault.injected plan ~src:src_id ~dst:dst_id ~mseq ~frag:seq
      else None
    in
    let cut = Fault.partitioned plan ~src:src_id ~dst:dst_id ~now in
    if attempt = 0 then
      Fault.notify_tap fr
        {
          Fault.pb_kind = Fault.Pb_frag;
          pb_src = src_id;
          pb_dst = dst_id;
          pb_mseq = mseq;
          pb_frag = seq;
          pb_len = len;
          pb_time = now;
        };
    let retry cause =
      if attempt >= plan.Fault.max_retries then begin
        Stats.record_delivery_timeout ctx.stats;
        fault_instant ctx ~track:src_id ~time:(Engine.now e)
          "delivery_timeout"
          [ ("seq", Obs.Int seq); ("attempts", Obs.Int (attempt + 1)) ];
        let now = Engine.now e in
        failure :=
          Some
            (if Fault.crashed_rt fr ~rank:dst_id ~now then begin
               (* piggybacked detection: exhausting retries against a
                  crashed peer declares it failed without waiting for
                  the heartbeat detector *)
               notify_failure ctx ~rank:dst_id;
               Peer_failed { peer = dst_id }
             end
             else if Fault.crashed_rt fr ~rank:src_id ~now then begin
               notify_failure ctx ~rank:src_id;
               Peer_failed { peer = src_id }
             end
             else
               match cause with
               | `Corrupt -> Data_corrupted
               | `Drop -> Timeout { retries = attempt })
      end
      else begin
        Engine.sleep e (backoff_sleep attempt);
        incr retx;
        Stats.record_retransmit ctx.stats;
        trace ctx "fault" "retransmit seq=%d attempt=%d %d->%d" seq
          (attempt + 1) src_id dst_id;
        fault_instant ctx ~track:src_id ~time:(Engine.now e) "retransmit"
          [ ("seq", Obs.Int seq); ("attempt", Obs.Int (attempt + 1)) ];
        send_frag seq off len (attempt + 1)
      end
    in
    let f_drop =
      fate.Fault.f_drop
      || injected = Some Fault.Inj_drop
      || (cut && not dead)
    in
    let f_corrupt = fate.Fault.f_corrupt || injected = Some Fault.Inj_corrupt in
    if injected <> None then begin
      Stats.record_injection_fired ctx.stats;
      trace ctx "fault" "targeted injection mseq=%d frag=%d %d->%d" mseq seq
        src_id dst_id;
      fault_instant ctx ~track:src_id ~time:now "injection"
        [ ("mseq", Obs.Int mseq); ("frag", Obs.Int seq) ]
    end;
    if dead || f_drop then begin
      if cut && not dead && not fate.Fault.f_drop then begin
        Stats.record_partition_drop ctx.stats;
        trace ctx "fault" "partition cut %d->%d seq=%d" src_id dst_id seq;
        fault_instant ctx ~track:src_id ~time:now "partition_drop"
          [ ("seq", Obs.Int seq) ]
      end;
      Stats.record_frag_drop ctx.stats;
      trace ctx "fault" "drop seq=%d %d->%d" seq src_id dst_id;
      fault_instant ctx ~track:src_id ~time:now "frag_drop"
        [ ("seq", Obs.Int seq) ];
      retry `Drop
    end
    else if f_corrupt && checksum && len > 0 then begin
      (* The fragment arrives with one bit flipped; its CRC32 no longer
         matches, so the receiver nacks and the sender retransmits. *)
      Stats.record_frag_corrupt ctx.stats;
      let sent_crc = Crc32.digest_sub stream ~pos:off ~len in
      let byte, bit = Fault.corrupt_bit fr ~len in
      let corrupted = Buf.copy (Buf.sub stream ~pos:off ~len) in
      Buf.set_u8 corrupted byte (Buf.get_u8 corrupted byte lxor (1 lsl bit));
      assert (Crc32.digest corrupted <> sent_crc);
      let fly =
        path_serialize ctx ~src:src_id ~dst:dst_id len
        +. path_latency ctx ~src:src_id ~dst:dst_id
        +. fate.Fault.f_delay_ns
      in
      Stats.record_nack ctx.stats;
      trace ctx "fault" "corrupt seq=%d %d->%d: crc mismatch, nack" seq src_id
        dst_id;
      fault_instant ctx ~track:dst_id ~time:(now +. fly) "nack"
        [ ("seq", Obs.Int seq) ];
      (* wait out the corrupted flight plus the nack's return leg *)
      Engine.sleep e (fly +. path_latency ctx ~src:dst_id ~dst:src_id);
      retry `Corrupt
    end
    else begin
      (* Delivered.  On non-checksummed (zero-copy DMA) paths a corrupt
         fate slips through into the receiver's copy. *)
      if f_corrupt && len > 0 then begin
        Stats.record_frag_corrupt ctx.stats;
        let byte, bit = Fault.corrupt_bit fr ~len in
        Buf.set_u8 delivered (off + byte)
          (Buf.get_u8 delivered (off + byte) lxor (1 lsl bit));
        dirty := true;
        trace ctx "fault" "corrupt seq=%d %d->%d passed unchecked" seq src_id
          dst_id;
        fault_instant ctx ~track:dst_id ~time:now "frag_corrupt"
          [ ("seq", Obs.Int seq) ]
      end;
      if fate.Fault.f_dup then begin
        (* the second copy is delivered and suppressed by seq number *)
        Stats.record_frag_dup ctx.stats;
        trace ctx "fault" "dup seq=%d %d->%d suppressed" seq src_id dst_id;
        fault_instant ctx ~track:dst_id ~time:now "dup_suppressed"
          [ ("seq", Obs.Int seq) ]
      end;
      (* pipelined serialization: the sender occupies the wire (every
         link of the path, under a topology) for the fragment's
         serialization time; the flight latency overlaps the next
         fragment and is reported as [x_lag] for the last one *)
      Engine.sleep e (path_serialize ctx ~src:src_id ~dst:dst_id len);
      last_lag :=
        path_latency ctx ~src:src_id ~dst:dst_id +. fate.Fault.f_delay_ns
    end
  in
  (let rec loop seq off = function
     | [] -> ()
     | len :: rest ->
         send_frag seq off len 0;
         if !failure = None then loop (seq + 1) (off + len) rest
   in
   loop 0 0 frag_sizes);
  match !failure with
  | Some err -> Error err
  | None ->
      (* cumulative ack for the whole window *)
      Stats.record_ack ctx.stats;
      Fault.notify_tap fr
        {
          Fault.pb_kind = Fault.Pb_ack;
          pb_src = src_id;
          pb_dst = dst_id;
          pb_mseq = mseq;
          pb_frag = -1;
          pb_len = Buf.length stream;
          pb_time = Engine.now e +. !last_lag;
        };
      fault_instant ctx ~track:dst_id ~time:(Engine.now e +. !last_lag) "ack"
        [ ("bytes", Obs.Int (Buf.length stream)) ];
      if obs_on ctx then
        ignore
          (Obs.span_complete ctx.obs ~track:src_id ~cat:"proto" ~t0:t_start
             ~t1:(Engine.now e +. !last_lag)
             ~args:
               (( "bytes", Obs.Int (Buf.length stream) )
               :: ("frags", Obs.Int (List.length frag_sizes))
               :: ("retx", Obs.Int !retx)
               :: ("dst", Obs.Int dst_id)
               :: (if mseq >= 0 then [ ("mseq", Obs.Int mseq) ] else []))
             "rel_xfer");
      Ok { x_lag = !last_lag; x_delivered = delivered; x_dirty = !dirty }

(* Fault-mode rendezvous data movement.  Runs in its own fiber because
   the reliable protocol sleeps; timing is phase-serial (handshake,
   pack, wire + recovery, unpack) rather than the fault-free overlapped
   model — reliability changes the clock by design. *)
let process_match_faulty w (pr : posted) (env : envelope) (r : rndv) fr =
  let ctx = w.ctx in
  let e = ctx.engine in
  let l = link ctx in
  let c = cpu ctx in
  let size = env.e_total in
  let fail_both err =
    complete_if_pending r.r_request { len = 0; tag = env.e_tag; error = Some err };
    complete_if_pending pr.pr_req { len = 0; tag = env.e_tag; error = Some err }
  in
  Engine.spawn e ~name:"rel_rndv" ~track:env.e_src (fun () ->
      Engine.sleep e (l.rndv_handshake_ns +. l.rndv_reg_ns);
      r.r_done <- true (* materialize owns descriptor disposal from here *);
      match materialize ctx r.r_dt with
      | exception Callback_error code -> fail_both (Callback_failed code)
      | frags, send_cbs -> (
          (* sender-side staging CPU, as in the fault-free model *)
          let cpu_send =
            match r.r_dt with
            | Sd_generic g ->
                Config.alloc_time c l.frag_size
                +. Config.memcpy_time c size
                +. (float_of_int send_cbs *. c.pack_cb_overhead_ns)
                +. g.sg_overhead_ns
            | Sd_iov bufs ->
                (* per-entry scatter/gather setup, as in the fault-free
                   wire-time formula *)
                iov_cost ctx (List.length bufs)
            | Sd_contig _ -> 0.
          in
          let cpu_send = cpu_send *. straggle ctx env.e_src in
          (match r.r_dt with
          | Sd_generic _ -> Stats.record_copy ctx.stats size
          | Sd_contig _ | Sd_iov _ -> ());
          Engine.sleep e cpu_send;
          let stream = Buf.concat frags in
          (* Per-fragment CRC32 protects bounce-buffer streams (generic
             pack) and plain contiguous RDMA (NIC-level ICRC).  The iov
             scatter/gather DMA validates only an end-to-end digest
             after the scatter, so its corruption is detected too late
             to nack a fragment — that is what triggers the one-shot
             packed-path fallback below. *)
          let checksum =
            match r.r_dt with
            | Sd_iov _ -> false
            | Sd_contig _ | Sd_generic _ -> true
          in
          let final =
            match
              reliable_transfer ctx fr ~mseq:env.e_seq ~src_id:env.e_src
                ~dst_id:w.id ~stream ~checksum
            with
            | Error _ as err -> err
            | Ok x when not x.x_dirty -> Ok (x, false)
            | Ok x -> (
                (* End-to-end digest mismatch on the zero-copy path:
                   fall back — exactly once — to the CRC-protected
                   packed path before surfacing an error. *)
                Engine.sleep e x.x_lag (* the bad data had to land first *);
                Stats.record_iov_fallback ctx.stats;
                trace ctx "fault"
                  "iov e2e digest mismatch %d->%d: falling back to packed path"
                  env.e_src w.id;
                fault_instant ctx ~track:w.id ~time:(Engine.now e)
                  "iov_fallback"
                  [ ("bytes", Obs.Int size) ];
                (* the retry stages through a packed bounce buffer *)
                Stats.record_copy ctx.stats size;
                Engine.sleep e
                  ((Config.alloc_time c size +. Config.memcpy_time c size)
                  *. straggle ctx env.e_src);
                match
                  reliable_transfer ctx fr ~mseq:env.e_seq ~src_id:env.e_src
                    ~dst_id:w.id ~stream ~checksum:true
                with
                | Error _ as err -> err
                | Ok x2 -> Ok (x2, true))
          in
          match final with
          | Error err ->
              trace ctx "fault" "rndv %d->%d failed" env.e_src w.id;
              fail_both err
          | Ok (x, fell_back) -> (
              Engine.sleep e x.x_lag (* data lands *);
              let zcopy =
                if fell_back then
                  match pr.pr_dt with
                  | Rd_generic _ -> false
                  | Rd_contig _ | Rd_iov _ -> true
                else
                  match (r.r_dt, pr.pr_dt) with
                  | (Sd_contig _ | Sd_iov _), (Rd_contig _ | Rd_iov _) -> true
                  | Sd_generic _, (Rd_contig _ | Rd_iov _) -> true
                  | _, Rd_generic _ -> false
              in
              match deposit ctx pr.pr_dt (reslice l x.x_delivered) ~zcopy with
              | exception Callback_error code ->
                  fail_both (Callback_failed code)
              | cpu_recv ->
                  Engine.sleep e (cpu_recv *. straggle ctx w.id);
                  complete_if_pending pr.pr_req
                    { len = size; tag = env.e_tag; error = None };
                  (* the sender completes when the final ack crosses back *)
                  Engine.at e ~delay:(path_latency ctx ~src:w.id ~dst:env.e_src)
                    (fun () ->
                      complete_if_pending r.r_request
                        { len = size; tag = env.e_tag; error = None }))))

(* Process a matched (posted, envelope) pair at the current virtual
   time.  All data movement happens here; completions are scheduled
   after the modeled processing delay. *)
let process_match w (pr : posted) (env : envelope) =
  let ctx = w.ctx in
  let e = ctx.engine in
  env.e_matched <- true;
  pr.pr_req.r_seq <- env.e_seq;
  let capacity = recv_dt_capacity pr.pr_dt in
  let finish_recv ~delay status =
    Engine.at e ~delay (fun () -> complete_if_pending pr.pr_req status)
  in
  (* How long the envelope sat in the unexpected queue before a
     matching receive arrived. *)
  if not (Float.is_nan env.e_queued_at) then
    observe ctx "unexpected_residency_ns" (Engine.now e -. env.e_queued_at);
  if env.e_total > capacity then begin
    if obs_on ctx then
      Obs.instant ctx.obs ~time:(Engine.now e) ~track:w.id ~cat:"proto"
        ~args:[ ("expected", Obs.Int env.e_total); ("capacity", Obs.Int capacity) ]
        "truncated";
    (* Truncation: no data is delivered; sender completes normally
       (it either already did, for eager, or completes now).  The data
       never moves, so the send descriptor is disposed here. *)
    (match env.e_payload with
    | P_eager _ | P_nack _ -> ()
    | P_rndv r ->
        dispose_rndv r;
        complete_if_pending r.r_request
          { len = env.e_total; tag = env.e_tag; error = None });
    finish_recv ~delay:0.
      {
        len = 0;
        tag = env.e_tag;
        error = Some (Truncated { expected = env.e_total; capacity });
      }
  end
  else
    match env.e_payload with
    | P_nack err ->
        (* Poison envelope: the sender's transfer failed after the
           receive was (or would be) matched; complete the receive with
           the sender-side error instead of leaving it pending. *)
        finish_recv ~delay:0. { len = 0; tag = env.e_tag; error = Some err }
    | P_rndv r when Option.is_some ctx.faults ->
        process_match_faulty w pr env r (Option.get ctx.faults)
    | P_eager frags -> (
        (* Data already arrived in bounce buffers; receiver copies or
           unpacks it into place.  If it sat in the unexpected queue we
           also pay the allocation that buffered it. *)
        let alloc_delay =
          if env.e_unexpected_alloc > 0 then begin
            Stats.record_free ctx.stats env.e_unexpected_alloc;
            Config.alloc_time (cpu ctx) env.e_unexpected_alloc
          end
          else 0.
        in
        match deposit ctx pr.pr_dt frags ~zcopy:false with
        | cpu_time ->
            let sf = straggle ctx w.id in
            let alloc_delay = alloc_delay *. sf in
            let cpu_time = cpu_time *. sf in
            let delay = alloc_delay +. cpu_time in
            if obs_on ctx then begin
              let t0 = Engine.now e in
              if delay > 0. then begin
                let sp =
                  Obs.span_complete ctx.obs ~track:w.id ~cat:"proto" ~t0
                    ~t1:(t0 +. delay)
                    ~args:
                      [
                        ("bytes", Obs.Int env.e_total);
                        ("src", Obs.Int env.e_src);
                        ("mseq", Obs.Int env.e_seq);
                      ]
                    "unpack"
                in
                match pr.pr_dt with
                | Rd_generic _ ->
                    tile_callbacks ctx ~track:w.id ~t0:(t0 +. alloc_delay)
                      ~t1:(t0 +. delay) ~n:(List.length frags) ~name:"unpack_cb"
                      ~hist:"unpack_cb_ns" ~parent:sp ()
                | Rd_contig _ | Rd_iov _ -> ()
              end;
              observe ctx "msg_latency_ns_eager" (t0 +. delay -. env.e_sent_at)
            end;
            finish_recv ~delay
              { len = env.e_total; tag = env.e_tag; error = None }
        | exception Callback_error code ->
            finish_recv ~delay:alloc_delay
              { len = 0; tag = env.e_tag; error = Some (Callback_failed code) })
    | P_rndv r -> (
        let l = link ctx in
        let size = env.e_total in
        let wire =
          path_serialize ctx ~src:env.e_src ~dst:w.id size
          +.
          match r.r_dt with
          | Sd_iov bufs -> iov_cost ctx (List.length bufs)
          | Sd_contig _ | Sd_generic _ -> 0.
        in
        let fail code =
          (* A callback failure poisons both sides of the transfer. *)
          complete_if_pending r.r_request
            { len = 0; tag = env.e_tag; error = Some (Callback_failed code) };
          finish_recv ~delay:0.
            { len = 0; tag = env.e_tag; error = Some (Callback_failed code) }
        in
        r.r_done <- true (* materialize owns descriptor disposal from here *);
        match materialize ctx r.r_dt with
        | exception Callback_error code -> fail code
        | frags, send_cbs -> (
            let cpu_send =
              match r.r_dt with
              | Sd_generic g ->
                  (* pipelined pack: one bounce fragment is reused *)
                  Config.alloc_time (cpu ctx) l.frag_size
                  +. Config.memcpy_time (cpu ctx) size
                  +. (float_of_int send_cbs *. (cpu ctx).pack_cb_overhead_ns)
                  +. g.sg_overhead_ns
              | Sd_contig _ | Sd_iov _ -> 0.
            in
            (match r.r_dt with
            | Sd_generic _ -> Stats.record_copy ctx.stats size
            | Sd_contig _ | Sd_iov _ -> ());
            let zcopy =
              match (r.r_dt, pr.pr_dt) with
              | (Sd_contig _ | Sd_iov _), (Rd_contig _ | Rd_iov _) -> true
              | Sd_generic _, (Rd_contig _ | Rd_iov _) ->
                  (* packed stream lands directly in receiver memory *)
                  true
              | _, Rd_generic _ -> false
            in
            match deposit ctx pr.pr_dt frags ~zcopy with
            | cpu_recv ->
                let duration =
                  l.rndv_handshake_ns +. l.rndv_reg_ns
                  +. Float.max wire (Float.max cpu_send cpu_recv)
                in
                (* Phase spans for the rendezvous: handshake, then the
                   wire transfer overlapped with sender pack and
                   receiver unpack — the same decomposition the
                   duration formula above models. *)
                if obs_on ctx then begin
                  let t0 = Engine.now e in
                  let sp =
                    Obs.span_complete ctx.obs ~track:w.id ~cat:"proto" ~t0
                      ~t1:(t0 +. duration)
                      ~args:
                        [
                          ("bytes", Obs.Int size);
                          ("src", Obs.Int env.e_src);
                          ("mseq", Obs.Int env.e_seq);
                        ]
                      "rndv"
                  in
                  let hs_end = t0 +. l.rndv_handshake_ns +. l.rndv_reg_ns in
                  ignore
                    (Obs.span_complete ctx.obs ~track:w.id ~cat:"proto" ~t0
                       ~t1:hs_end ~parent:sp "handshake");
                  if wire > 0. then
                    ignore
                      (Obs.span_complete ctx.obs ~track:env.e_src ~cat:"proto"
                         ~t0:hs_end ~t1:(hs_end +. wire)
                         ~args:[ ("bytes", Obs.Int size) ]
                         ~parent:sp "wire");
                  if cpu_send > 0. then begin
                    let sp_pack =
                      Obs.span_complete ctx.obs ~track:env.e_src ~cat:"proto"
                        ~t0:hs_end ~t1:(hs_end +. cpu_send) ~parent:sp "pack"
                    in
                    tile_callbacks ctx ~track:env.e_src ~t0:hs_end
                      ~t1:(hs_end +. cpu_send) ~n:send_cbs ~name:"pack_cb"
                      ~hist:"pack_cb_ns" ~parent:sp_pack ()
                  end;
                  if cpu_recv > 0. then begin
                    let sp_un =
                      Obs.span_complete ctx.obs ~track:w.id ~cat:"proto"
                        ~t0:hs_end ~t1:(hs_end +. cpu_recv) ~parent:sp "unpack"
                    in
                    match pr.pr_dt with
                    | Rd_generic _ ->
                        tile_callbacks ctx ~track:w.id ~t0:hs_end
                          ~t1:(hs_end +. cpu_recv) ~n:(List.length frags)
                          ~name:"unpack_cb" ~hist:"unpack_cb_ns" ~parent:sp_un
                          ()
                    | Rd_contig _ | Rd_iov _ -> ()
                  end;
                  observe ctx "msg_latency_ns_rndv"
                    (t0 +. duration -. env.e_sent_at)
                end;
                Engine.at e ~delay:duration (fun () ->
                    complete_if_pending r.r_request
                      { len = size; tag = env.e_tag; error = None };
                    complete_if_pending pr.pr_req
                      { len = size; tag = env.e_tag; error = None })
            | exception Callback_error code -> fail code))

(* Try to match a new envelope against posted receives / probe waiters;
   otherwise queue it as unexpected. *)
let deliver w env =
  trace w.ctx "arrive" "worker %d <- src %d tag=%Lx %dB" w.id env.e_src
    env.e_tag env.e_total;
  let rec find_posted acc = function
    | [] -> None
    | pr :: rest ->
        if tag_matches ~tag:pr.pr_tag ~mask:pr.pr_mask env.e_tag then begin
          w.posted <- List.rev_append acc rest;
          Some pr
        end
        else find_posted (pr :: acc) rest
  in
  match find_posted [] w.posted with
  | Some pr ->
      trace w.ctx "match" "worker %d matched posted recv tag=%Lx" w.id env.e_tag;
      if obs_on w.ctx then
        Obs.instant w.ctx.obs ~time:(Engine.now w.ctx.engine) ~track:w.id
          ~cat:"proto"
          ~args:
            [
              ("src", Obs.Int env.e_src);
              ("bytes", Obs.Int env.e_total);
              ("mseq", Obs.Int env.e_seq);
            ]
          "match";
      process_match w pr env
  | None ->
      trace w.ctx "unexpected" "worker %d queued tag=%Lx %dB" w.id env.e_tag
        env.e_total;
      (* Buffer it.  Eager payloads consume receiver memory. *)
      (match env.e_payload with
      | P_eager _ ->
          env.e_unexpected_alloc <- env.e_total;
          Stats.record_alloc w.ctx.stats env.e_total
      | P_rndv _ | P_nack _ -> ());
      env.e_queued_at <- Engine.now w.ctx.engine;
      w.unexpected <- w.unexpected @ [ env ];
      if obs_on w.ctx then begin
        let mx = Obs.metrics w.ctx.obs in
        Obs.instant w.ctx.obs ~time:env.e_queued_at ~track:w.id ~cat:"proto"
          ~args:
            [
              ("src", Obs.Int env.e_src);
              ("bytes", Obs.Int env.e_total);
              ("mseq", Obs.Int env.e_seq);
            ]
          "unexpected";
        Metrics.inc (Metrics.counter mx "unexpected_total");
        Metrics.set
          (Metrics.gauge mx (Printf.sprintf "unexpected_depth.w%d" w.id))
          (float_of_int (List.length w.unexpected))
      end;
      let info =
        { p_tag = env.e_tag; p_len = env.e_total; p_src_worker = env.e_src }
      in
      (* Wake blocking probes (peek: envelope stays queued). *)
      let wake, keep =
        List.partition
          (fun (tag, mask, _) -> tag_matches ~tag ~mask env.e_tag)
          w.probe_waiters
      in
      w.probe_waiters <- keep;
      List.iter (fun (_, _, resume) -> resume info) wake;
      (* Wake at most one blocking mprobe (take: envelope dequeued). *)
      let rec wake_mprobe acc = function
        | [] -> ()
        | ((tag, mask, resume) as waiter) :: rest ->
            if
              tag_matches ~tag ~mask env.e_tag
              && List.memq env w.unexpected
            then begin
              w.mprobe_waiters <- List.rev_append acc rest;
              w.unexpected <- List.filter (fun x -> x != env) w.unexpected;
              resume (info, env)
            end
            else wake_mprobe (waiter :: acc) rest
    in
      wake_mprobe [] w.mprobe_waiters

(* Schedule envelope arrival over the link, preserving per-channel
   FIFO ordering. *)
let ship ep ~after env =
  let ctx = ep.ep_src.ctx in
  let e = ctx.engine in
  let jitter = match ctx.jitter with None -> 0. | Some f -> f () in
  let key = (ep.ep_src.id, ep.ep_dst.id) in
  let chan =
    match Hashtbl.find_opt ctx.channels key with
    | Some r -> r
    | None ->
        let r = ref 0. in
        Hashtbl.add ctx.channels key r;
        r
  in
  let arrival = Float.max (Engine.now e +. after +. jitter) !chan in
  chan := arrival;
  if obs_on ctx then begin
    (* Eager payload bytes ride this delivery; a rendezvous only ships
       its RTS control message here (data moves at match time). *)
    let name =
      match env.e_payload with
      | P_eager _ -> "wire"
      | P_rndv _ -> "rts"
      | P_nack _ -> "nack"
    in
    ignore
      (Obs.span_complete ctx.obs ~track:ep.ep_src.id ~cat:"proto"
         ~t0:(Engine.now e) ~t1:arrival
         ~args:
           [
             ("dst", Obs.Int ep.ep_dst.id);
             ("bytes", Obs.Int env.e_total);
             ("mseq", Obs.Int env.e_seq);
           ]
         name)
  end;
  Engine.at e ~delay:(arrival -. Engine.now e) (fun () -> deliver ep.ep_dst env)

(* Fault-mode RTS shipping: the rendezvous control message itself
   traverses the reliable protocol (it can be dropped and
   retransmitted), and an optional handshake timer abandons the send if
   no matching receive turns up in time. *)
let ship_rts_reliable ep fr (env : envelope) (req : request) =
  let ctx = ep.ep_src.ctx in
  let e = ctx.engine in
  let plan = Fault.plan fr in
  Engine.spawn e ~name:"rel_rts" ~track:ep.ep_src.id (fun () ->
      match
        reliable_transfer ctx fr ~mseq:env.e_seq ~src_id:ep.ep_src.id
          ~dst_id:ep.ep_dst.id ~stream:(Buf.create 0) ~checksum:true
      with
      | Ok x ->
          ship ep ~after:x.x_lag env;
          if plan.Fault.rndv_timeout_ns > 0. then
            Engine.at e ~delay:(x.x_lag +. plan.Fault.rndv_timeout_ns)
              (fun () ->
                if
                  (not env.e_matched)
                  && not (Engine.Ivar.is_filled req.ivar)
                then begin
                  Stats.record_delivery_timeout ctx.stats;
                  trace ctx "fault" "rndv handshake timeout %d->%d tag=%Lx"
                    ep.ep_src.id ep.ep_dst.id env.e_tag;
                  fault_instant ctx ~track:ep.ep_src.id ~time:(Engine.now e)
                    "rndv_timeout"
                    [ ("dst", Obs.Int ep.ep_dst.id) ];
                  (* withdraw the RTS so a late receive cannot match it,
                     and release the send-descriptor state it carried *)
                  ep.ep_dst.unexpected <-
                    List.filter (fun x -> x != env) ep.ep_dst.unexpected;
                  (match env.e_payload with
                  | P_rndv r -> dispose_rndv r
                  | P_eager _ | P_nack _ -> ());
                  complete req
                    {
                      len = 0;
                      tag = env.e_tag;
                      error = Some (Timeout { retries = 0 });
                    }
                end)
      | Error err ->
          (* the RTS never arrived: the data never moves either *)
          (match env.e_payload with
          | P_rndv r -> dispose_rndv r
          | P_eager _ | P_nack _ -> ());
          complete_if_pending req { len = 0; tag = env.e_tag; error = Some err };
          (* poison the receiver so a posted receive completes too *)
          ship ep ~after:(path_latency ctx ~src:ep.ep_src.id ~dst:ep.ep_dst.id)
            {
              e_tag = env.e_tag;
              e_total = 0;
              e_src = ep.ep_src.id;
              e_seq = env.e_seq;
              e_payload = P_nack err;
              e_unexpected_alloc = 0;
              e_sent_at = Engine.now e;
              e_queued_at = Float.nan;
              e_matched = false;
            })

let tag_send ep ~tag dt =
  let ctx = ep.ep_src.ctx in
  let e = ctx.engine in
  let l = link ctx in
  let c = cpu ctx in
  let req = make_request e in
  (* Allocate the message sequence number unconditionally (not only when
     a sink is attached) so attaching observability never changes any
     program-visible state. *)
  let mseq = ctx.next_mseq in
  ctx.next_mseq <- mseq + 1;
  req.r_seq <- mseq;
  Engine.sleep e (l.per_msg_overhead_ns *. straggle ctx ep.ep_src.id);
  let total = send_dt_size dt in
  (match dt with
  | Sd_iov bufs ->
      (* iovec path: always a single zero-copy rendezvous-style
         transfer; never switches protocol with size. *)
      let entries = List.length bufs in
      trace ctx "send" "worker %d iov tag=%Lx %dB in %d entries"
        ep.ep_src.id tag total entries;
      Stats.record_message ctx.stats ~eager:false ~wire_bytes:total;
      Stats.record_iov_entries ctx.stats entries;
      observe ctx "msg_bytes_iov" (float_of_int total);
      let env =
        {
          e_tag = tag;
          e_total = total;
          e_src = ep.ep_src.id;
          e_seq = mseq;
          e_payload = P_rndv { r_dt = dt; r_request = req; r_done = false };
          e_unexpected_alloc = 0;
          e_sent_at = Engine.now e;
          e_queued_at = Float.nan;
          e_matched = false;
        }
      in
      (match ctx.faults with
      | None ->
          ship ep ~after:(path_latency ctx ~src:ep.ep_src.id ~dst:ep.ep_dst.id) env
      | Some fr -> ship_rts_reliable ep fr env req)
  | Sd_contig _ | Sd_generic _ ->
      if total <= l.eager_limit then begin
        (* Eager: snapshot/pack synchronously, then fire and forget. *)
        match
          match dt with
          | Sd_contig b ->
              (* eager-zcopy: the NIC reads the registered user buffer
                 directly; the snapshot below exists only so the
                 simulated sender may reuse its buffer immediately. *)
              (([ Buf.copy b ], 0), 0.)
          | Sd_generic g ->
              let frags, ncb =
                match pack_fragments ctx g with
                | r ->
                    g.sg_finish ();
                    r
                | exception exn ->
                    g.sg_finish ();
                    raise exn
              in
              Stats.record_copy ctx.stats total;
              ( (frags, ncb),
                Config.alloc_time c total
                +. Config.memcpy_time c total
                +. (float_of_int ncb *. c.pack_cb_overhead_ns)
                +. g.sg_overhead_ns )
          | Sd_iov _ -> assert false
        with
        | (frags, ncb), cpu_time ->
            let cpu_time = cpu_time *. straggle ctx ep.ep_src.id in
            Engine.sleep e cpu_time;
            trace ctx "send" "worker %d eager tag=%Lx %dB" ep.ep_src.id tag total;
            Stats.record_message ctx.stats ~eager:true ~wire_bytes:total;
            if obs_on ctx then begin
              observe ctx "msg_bytes_eager" (float_of_int total);
              (* The sleep above charged the pack cost; the span covers
                 exactly that interval. *)
              if cpu_time > 0. then begin
                let t1 = Engine.now e in
                let sp =
                  Obs.span_complete ctx.obs ~track:ep.ep_src.id ~cat:"proto"
                    ~t0:(t1 -. cpu_time) ~t1
                    ~args:
                      [
                        ("bytes", Obs.Int total);
                        ("dst", Obs.Int ep.ep_dst.id);
                        ("mseq", Obs.Int mseq);
                      ]
                    "pack"
                in
                tile_callbacks ctx ~track:ep.ep_src.id ~t0:(t1 -. cpu_time) ~t1
                  ~n:ncb ~name:"pack_cb" ~hist:"pack_cb_ns" ~parent:sp ()
              end
            end;
            (match ctx.faults with
            | None ->
                let env =
                  {
                    e_tag = tag;
                    e_total = total;
                    e_src = ep.ep_src.id;
                    e_seq = mseq;
                    e_payload = P_eager frags;
                    e_unexpected_alloc = 0;
                    e_sent_at = Engine.now e;
                    e_queued_at = Float.nan;
                    e_matched = false;
                  }
                in
                ship ep
                  ~after:
                    (path_latency ctx ~src:ep.ep_src.id ~dst:ep.ep_dst.id
                    +. path_serialize ctx ~src:ep.ep_src.id ~dst:ep.ep_dst.id
                         total)
                  env;
                complete_if_pending req { len = total; tag; error = None }
            | Some fr ->
                (* Reliable eager: fragments traverse the protocol and
                   the send completes only at the final ack, so retry
                   exhaustion can surface Timeout to the sender. *)
                Engine.spawn e ~name:"rel_eager" ~track:ep.ep_src.id
                  (fun () ->
                    let stream = Buf.concat frags in
                    match
                      reliable_transfer ctx fr ~mseq ~src_id:ep.ep_src.id
                        ~dst_id:ep.ep_dst.id ~stream ~checksum:true
                    with
                    | Ok x ->
                        let env =
                          {
                            e_tag = tag;
                            e_total = total;
                            e_src = ep.ep_src.id;
                            e_seq = mseq;
                            e_payload = P_eager (reslice l x.x_delivered);
                            e_unexpected_alloc = 0;
                            e_sent_at = Engine.now e;
                            e_queued_at = Float.nan;
                            e_matched = false;
                          }
                        in
                        ship ep ~after:x.x_lag env;
                        Engine.sleep e x.x_lag;
                        complete_if_pending req { len = total; tag; error = None }
                    | Error err ->
                        complete_if_pending req
                          { len = 0; tag; error = Some err };
                        ship ep
                          ~after:
                            (path_latency ctx ~src:ep.ep_src.id
                               ~dst:ep.ep_dst.id)
                          {
                            e_tag = tag;
                            e_total = 0;
                            e_src = ep.ep_src.id;
                            e_seq = mseq;
                            e_payload = P_nack err;
                            e_unexpected_alloc = 0;
                            e_sent_at = Engine.now e;
                            e_queued_at = Float.nan;
                            e_matched = false;
                          }))
        | exception Callback_error code ->
            let err = Callback_failed code in
            complete_if_pending req { len = 0; tag; error = Some err };
            (* A failed pack must not leave the peer's posted receive
               pending forever: notify it with a poison envelope. *)
            Stats.record_nack ctx.stats;
            ship ep
              ~after:(path_latency ctx ~src:ep.ep_src.id ~dst:ep.ep_dst.id)
              {
                e_tag = tag;
                e_total = 0;
                e_src = ep.ep_src.id;
                e_seq = mseq;
                e_payload = P_nack err;
                e_unexpected_alloc = 0;
                e_sent_at = Engine.now e;
                e_queued_at = Float.nan;
                e_matched = false;
              }
      end
      else begin
        (* Rendezvous: only the RTS travels now. *)
        trace ctx "send" "worker %d rndv tag=%Lx %dB" ep.ep_src.id tag total;
        Stats.record_message ctx.stats ~eager:false ~wire_bytes:total;
        observe ctx "msg_bytes_rndv" (float_of_int total);
        let env =
          {
            e_tag = tag;
            e_total = total;
            e_src = ep.ep_src.id;
            e_seq = mseq;
            e_payload = P_rndv { r_dt = dt; r_request = req; r_done = false };
            e_unexpected_alloc = 0;
            e_sent_at = Engine.now e;
            e_queued_at = Float.nan;
            e_matched = false;
          }
        in
        (match ctx.faults with
        | None ->
            ship ep
              ~after:(path_latency ctx ~src:ep.ep_src.id ~dst:ep.ep_dst.id)
              env
        | Some fr -> ship_rts_reliable ep fr env req)
      end);
  req

let tag_recv w ~tag ~mask dt =
  let req = make_request w.ctx.engine in
  let pr = { pr_tag = tag; pr_mask = mask; pr_dt = dt; pr_req = req } in
  (* Match against the unexpected queue in arrival order. *)
  let rec find acc = function
    | [] -> None
    | env :: rest ->
        if tag_matches ~tag ~mask env.e_tag then begin
          w.unexpected <- List.rev_append acc rest;
          Some env
        end
        else find (env :: acc) rest
  in
  (match find [] w.unexpected with
  | Some env ->
      (* An unexpected-queue hit is still a match event; record it so
         trace analysis sees a match instant for every joined message. *)
      if obs_on w.ctx then
        Obs.instant w.ctx.obs ~time:(Engine.now w.ctx.engine) ~track:w.id
          ~cat:"proto"
          ~args:
            [
              ("src", Obs.Int env.e_src);
              ("bytes", Obs.Int env.e_total);
              ("mseq", Obs.Int env.e_seq);
            ]
          "match";
      process_match w pr env
  | None ->
      w.posted <- w.posted @ [ pr ];
      if obs_on w.ctx then
        Metrics.set
          (Metrics.gauge (Obs.metrics w.ctx.obs)
             (Printf.sprintf "posted_depth.w%d" w.id))
          (float_of_int (List.length w.posted)));
  req

let wait (req : request) = Engine.Ivar.read req.r_engine req.ivar

let tag_probe w ~tag ~mask =
  Stats.record_probe w.ctx.stats;
  List.find_opt (fun env -> tag_matches ~tag ~mask env.e_tag) w.unexpected
  |> Option.map (fun env ->
         { p_tag = env.e_tag; p_len = env.e_total; p_src_worker = env.e_src })

let tag_probe_wait w ~tag ~mask =
  match tag_probe w ~tag ~mask with
  | Some info -> info
  | None ->
      Engine.suspend w.ctx.engine (fun resume ->
          w.probe_waiters <- w.probe_waiters @ [ (tag, mask, resume) ])

let tag_mprobe w ~tag ~mask =
  Stats.record_probe w.ctx.stats;
  let rec find acc = function
    | [] -> None
    | env :: rest ->
        if tag_matches ~tag ~mask env.e_tag then begin
          w.unexpected <- List.rev_append acc rest;
          Some
            ( {
                p_tag = env.e_tag;
                p_len = env.e_total;
                p_src_worker = env.e_src;
              },
              env )
        end
        else find (env :: acc) rest
  in
  find [] w.unexpected

let tag_mprobe_wait w ~tag ~mask =
  match tag_mprobe w ~tag ~mask with
  | Some r -> r
  | None ->
      Engine.suspend w.ctx.engine (fun resume ->
          w.mprobe_waiters <- w.mprobe_waiters @ [ (tag, mask, resume) ])

let msg_recv w (env : message) dt =
  let req = make_request w.ctx.engine in
  let pr = { pr_tag = env.e_tag; pr_mask = -1L; pr_dt = dt; pr_req = req } in
  process_match w pr env;
  req

let is_completed (req : request) = Engine.Ivar.is_filled req.ivar
let peek (req : request) = Engine.Ivar.peek req.ivar
