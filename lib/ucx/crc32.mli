(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over {!Buf}
    slices.

    The reliable-delivery protocol stamps every wire fragment with this
    checksum; any single-bit in-flight corruption is guaranteed to
    change the digest, which is what lets the receiver nack a corrupted
    fragment instead of depositing garbage. *)

val digest : Mpicd_buf.Buf.t -> int32

val digest_sub : Mpicd_buf.Buf.t -> pos:int -> len:int -> int32
(** Digest of the slice [\[pos, pos+len)].
    @raise Invalid_argument if the range does not fit. *)
