module Buf = Mpicd_buf.Buf

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Buf.length b then
    invalid_arg "Crc32.digest_sub";
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      (Int32.to_int !crc lxor Buf.get_u8 b i) land 0xff
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let digest b = digest_sub b ~pos:0 ~len:(Buf.length b)
