(** UCP-like tag-matching transport over the simulated interconnect.

    This layer plays the role UCX/UCP plays under the paper's prototype:
    it exposes tagged sends and receives with three datatype classes —

    - {e contiguous} ([Sd_contig]/[Rd_contig], cf. [UCP_DATATYPE_CONTIG]);
    - {e iovec} ([Sd_iov]/[Rd_iov], cf. [UCP_DATATYPE_IOV]): a
      scatter/gather list of memory regions transferred zero-copy;
    - {e generic} ([Sd_generic]/[Rd_generic], cf. [UCP_DATATYPE_GENERIC]):
      the transport drives application callbacks to pack/unpack the data
      fragment by fragment, exactly the mechanism the paper's custom
      datatype API plugs into.

    Protocols, following UCX behaviour on the paper's testbed:
    - contiguous/generic messages up to [Config.link.eager_limit] use the
      {e eager} protocol: the payload is copied through bounce buffers on
      both sides and an unexpected arrival allocates receiver memory;
    - larger contiguous/generic messages use {e rendezvous}: an RTS
      envelope is matched first, then data moves zero-copy (contiguous)
      or through a pipelined pack/unpack (generic);
    - iovec messages always use a single zero-copy rendezvous-style
      transfer with a per-entry gather cost and {e no} eager/rendezvous
      switchover — this is why the paper's custom path shows no dip at
      the 2^15-byte protocol boundary (Fig. 7) while paying a fixed
      handshake at small sizes (Figs. 1, 3).

    Messages between a given pair of workers are delivered in send order
    (MPI non-overtaking holds per channel). *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats

exception Callback_error of int
(** Pack/unpack callbacks signal failure by raising this; the error code
    is propagated through the request status (the paper's
    return-value-based error handling). *)

type context

val create_context :
  engine:Engine.t -> config:Config.t -> stats:Stats.t -> context

val engine : context -> Engine.t
val config : context -> Config.t
val stats : context -> Stats.t

type worker

val create_worker : context -> worker
val worker_id : worker -> int
val worker_context : worker -> context

type endpoint

val connect : worker -> worker -> endpoint
(** [connect src dst] — an endpoint for sending from [src] to [dst]. *)

(** {1 Datatypes} *)

type send_generic = {
  sg_packed_size : int;  (** total packed bytes (query callback result) *)
  sg_pack : offset:int -> dst:Buf.t -> int;
      (** pack bytes at virtual offset [offset] of the packed stream into
          [dst]; returns the number of bytes produced (may be short only
          at end of stream). *)
  sg_finish : unit -> unit;  (** called once the send payload is built *)
  sg_overhead_ns : float;
      (** extra CPU time the pack callbacks consume beyond the byte-rate
          cost (e.g. the datatype engine's per-block overhead) *)
}

type recv_generic = {
  rg_capacity : int;  (** maximum acceptable packed bytes *)
  rg_unpack : offset:int -> src:Buf.t -> int;
      (** scatter the fragment [src] (virtual offset [offset] of the
          packed stream) into place; returns the number of bytes
          consumed.  Every delivered fragment lies wholly inside the
          stream, so the transport raises {!Callback_error} if the
          return differs from [length src]. *)
  rg_finish : unit -> unit;
  rg_overhead_ns : float;  (** extra receiver CPU time (cf. [sg_overhead_ns]) *)
}

type send_dt =
  | Sd_contig of Buf.t
  | Sd_iov of Buf.t list
  | Sd_generic of send_generic

type recv_dt =
  | Rd_contig of Buf.t
  | Rd_iov of Buf.t list
  | Rd_generic of recv_generic

val send_dt_size : send_dt -> int
val recv_dt_capacity : recv_dt -> int

(** {1 Requests} *)

type error =
  | Truncated of { expected : int; capacity : int }
  | Callback_failed of int
  | Timeout of { retries : int }
      (** the reliable-delivery protocol gave up after [retries]
          retransmissions (or a rendezvous handshake timed out, with
          [retries = 0]) *)
  | Peer_failed of { peer : int }
      (** the destination (or source) worker crashed mid-transfer *)
  | Data_corrupted
      (** retries exhausted with checksum failures, or end-to-end
          verification failed after the packed-path fallback *)
  | Revoked
      (** the operation's communicator was revoked (ULFM
          [MPI_ERR_REVOKED]); set by the upper layer through
          {!try_cancel}/{!completed_request} *)

type status = { len : int; tag : int64; error : error option }

type request

val wait : request -> status
(** Block the calling fiber until the request completes. *)

val is_completed : request -> bool
val peek : request -> status option

val request_seq : request -> int
(** The context-wide message sequence number ("mseq") of the message
    this request sent or received, or [-1] if none was ever associated
    (e.g. {!completed_request}, or a receive that never matched).  The
    same mseq appears as an ["mseq"] arg on the transport's trace spans,
    so offline analysis can join send- and receive-side spans of one
    message across ranks.  Purely diagnostic: never affects matching or
    timing. *)

(** {1 Tagged communication} *)

val tag_send : endpoint -> tag:int64 -> send_dt -> request
(** Post a send.  Must be called from a fiber (posting charges CPU
    time).  The request completes when the payload has been taken out of
    the source buffers (eager) or when the transfer finishes
    (rendezvous/iov). *)

val tag_recv : worker -> tag:int64 -> mask:int64 -> recv_dt -> request
(** Post a receive matching envelopes with [(env_tag land mask) = (tag
    land mask)].  Posted receives match in post order; unexpected
    messages match in arrival order. *)

(** {1 Probing} *)

type probe_info = { p_tag : int64; p_len : int; p_src_worker : int }

val tag_probe : worker -> tag:int64 -> mask:int64 -> probe_info option
(** Non-blocking probe of the unexpected queue (does not dequeue). *)

val tag_probe_wait : worker -> tag:int64 -> mask:int64 -> probe_info
(** Blocking probe: waits until a matching envelope arrives. *)

type message
(** A matched-and-dequeued envelope (MPI_Mprobe semantics). *)

val tag_mprobe : worker -> tag:int64 -> mask:int64 -> (probe_info * message) option
val tag_mprobe_wait : worker -> tag:int64 -> mask:int64 -> probe_info * message
val msg_recv : worker -> message -> recv_dt -> request
(** Receive a previously mprobed message. *)

(** {1 Observability} *)

val set_trace : context -> Mpicd_simnet.Trace.t option -> unit
(** Attach an event trace: protocol decisions (eager/rndv/iov), matches,
    unexpected arrivals and completions are recorded with virtual
    timestamps. *)

val set_obs : context -> Mpicd_obs.Obs.t -> unit
(** Attach a structured span/metrics sink.  Protocol phases (pack, wire,
    rts, rendezvous handshake, unpack) become ["proto"] spans on the
    worker's track, individual pack/unpack callback invocations become
    ["callback"] spans tiled across their phase, and message-size /
    latency / queue-depth metrics are recorded in the sink's registry.
    Pass [Mpicd_obs.Obs.null] to detach; recording never perturbs the
    simulation. *)

(** {1 Fault injection} *)

val set_faults : context -> Mpicd_simnet.Fault.t option -> unit
(** Attach (or detach, with [None]) a fault plan.  With a plan attached
    every payload fragment — eager data, rendezvous data, and the RTS
    control message — traverses a reliable-delivery protocol: fragments
    carry sequence numbers and CRC-32 checksums, the receiver acks/nacks
    them, and the sender retransmits with exponential backoff on the
    virtual clock, so recovery costs simulated time and shows up in
    {!Stats} and the attached {!Mpicd_obs.Obs} sink.  Retry exhaustion
    surfaces [Timeout], [Peer_failed] or [Data_corrupted] through the
    request status on {e both} sides of the transfer.  The iovec path
    models scatter/gather DMA whose corruption is only detected
    end-to-end: a dirty iov transfer falls back — once — to the
    CRC-protected packed path before any error is surfaced.

    With no plan attached ([None], the default) every code path is the
    pre-fault one: timing, statistics and traces are bit-identical to a
    build without fault injection.  See docs/FAULTS.md. *)

val faults : context -> Mpicd_simnet.Fault.t option
(** The currently attached fault plan, if any. *)

val set_tap : context -> (Mpicd_simnet.Fault.probe -> unit) option -> unit
(** Install (or clear) a probe tap on the attached plan's runtime: the
    transport reports every first-attempt fragment send and every
    completing ack through it, which is how the explorer enumerates the
    injection points of a reference run.  Call {e after} {!set_faults}
    (re-attaching a plan replaces the runtime and drops the tap); no-op
    without a plan.  Taps observe — they must not mutate simulation
    state. *)

val retx_backoff_ns :
  Mpicd_simnet.Config.t -> Mpicd_simnet.Fault.t -> attempt:int -> float
(** The deterministic backoff sleep before retransmission
    [attempt + 1]: the plan's exponential schedule
    [rto_ns * backoff^attempt] clamped at
    [Config.retx_backoff_max_ns].  This is exactly what the reliable
    path sleeps when [Config.retx_jitter] is off (jittered sleeps are
    clamped at the same ceiling), exposed pure so tests can pin the
    clamp boundary. *)

(** {1 Process-failure detection (ULFM building blocks)}

    A heartbeat liveness detector runs whenever the attached plan
    schedules crashes and has a nonzero [hb_period_ns]: each crashed
    rank is declared failed at the first heartbeat boundary after its
    crash time plus two link latencies, so detection latency is bounded
    by [hb_period_ns + 2 * latency_ns] of virtual time.  Failure is
    also detected sooner, piggybacked on normal traffic, when the
    reliable protocol exhausts retries against a crashed peer.
    An extreme straggler whose probe reply cannot cross the link within
    one heartbeat round — slowdown factor [f] with
    [f * 2 * latency_ns > hb_period_ns + 2 * latency_ns] — is {e
    falsely} declared failed at [hb_period_ns + f * 2 * latency_ns]
    (the classic slow-vs-dead ambiguity of timeout detectors); below
    that threshold a straggler is never declared.  Partitions never
    trigger declarations: the detector walks the plan's schedule, not
    the wire.  Declaration is idempotent and recorded in
    {!Stats}.[failures_detected], the ["fault.rank_failed"] counter and
    the ["failure_detect_latency_ns"] histogram.  See
    docs/RESILIENCE.md. *)

val notify_failure : context -> rank:int -> unit
(** Declare a worker failed (idempotent).  Runs the registered failure
    listeners on first declaration. *)

val is_failed : context -> rank:int -> bool
val any_failures : context -> bool
val failed_ranks : context -> int list
(** Ranks declared failed so far, sorted ascending. *)

val on_failure : context -> (rank:int -> time:float -> unit) -> unit
(** Register a listener called exactly once per declared failure, at
    declaration time (from the detector fiber or the declaring send
    path). *)

(** {1 Operation cancellation} *)

val completed_request : context -> tag:int64 -> error -> request
(** A request born complete with [error]: what fail-fast operations on
    a revoked or failure-poisoned communicator return without touching
    the wire. *)

val try_cancel : context -> request -> tag:int64 -> error -> bool
(** Complete a pending request early with [error], withdrawing any
    transport state that refers to it (posted receives, queued
    rendezvous envelopes) and releasing datatype callback state
    ([sg_finish]/[rg_finish]) exactly once.  Returns [false] — and does
    nothing — if the request had already completed.  In-flight transfer
    fibers for a cancelled request still run to completion on the
    virtual clock; their late completions are discarded. *)

(** {1 Topology} *)

val set_topology : context -> Mpicd_simnet.Topology.t option -> unit
(** Attach a network topology: all message motion (eager payloads,
    rendezvous transfers, retransmitted fragments, nack/poison control
    messages) routes over its links, paying path-scaled latency and
    sharing per-link bandwidth with concurrent transfers.  [None] (the
    default) is the flat wire — every cost reduces exactly to
    [latency_ns] / [wire_time], so detaching reproduces pre-topology
    runs bit-identically.  Heartbeat probing and failure-detection
    timing stay on the flat model (control plane).  Worker ids must lie
    inside the topology's rank set. *)

val topology : context -> Mpicd_simnet.Topology.t option

(** {1 Test-only knobs} *)

val set_channel_jitter : context -> (unit -> float) option -> unit
(** Install a per-message extra-delay generator (still respecting
    per-channel FIFO ordering).  Used by tests to perturb timing. *)
