type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of string

(* --- escaping (used by the exporters when writing) --- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

(* Render a float so that it parses back: JSON has no NaN/infinity. *)
let number f =
  if Float.is_nan f then "null"
  else if f = infinity then "1e308"
  else if f = neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* --- parsing --- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let error st msg = raise (Fail (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> error st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                (* decode to UTF-8 (surrogate pairs not recombined) *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> error st "bad escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
      | _ -> error st "expected ',' or '}'"
    in
    Obj (members [])
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec items acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          items (v :: acc)
      | Some ']' ->
          advance st;
          List.rev (v :: acc)
      | _ -> error st "expected ',' or ']'"
    in
    List (items [])
  end

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_number = function Num f -> Some f | _ -> None
