(** Exporters for {!Obs} sinks and {!Metrics} registries.

    {!chrome_trace} emits Chrome-trace-event JSON (the ["traceEvents"]
    array format) that loads directly into Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing]: virtual
    nanoseconds map to the format's microsecond timestamps, each rank is
    one process, and span categories become that process's named thread
    rows. *)

val chrome_trace : Obs.t -> string
(** Closed spans become ["X"] complete events, still-open spans ["B"]
    begin events, instants ["i"] events; process/thread name metadata is
    included.  Output is strict JSON ({!Json.parse} accepts it). *)

val timeline : Obs.t -> string
(** Human-readable per-track listing, nesting shown by indentation. *)

val metrics_json : Metrics.t -> string
val metrics_csv : Metrics.t -> string

val write_file : string -> string -> unit
(** [write_file path contents] (truncating). *)
