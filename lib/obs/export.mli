(** Exporters for {!Obs} sinks and {!Metrics} registries.

    {!chrome_trace} emits Chrome-trace-event JSON (the ["traceEvents"]
    array format) that loads directly into Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing]: virtual
    nanoseconds map to the format's microsecond timestamps, each rank is
    one process, and span categories become that process's named thread
    rows. *)

val chrome_trace : Obs.t -> string
(** Closed spans become ["X"] complete events, still-open spans ["B"]
    begin events, instants ["i"] events; process/thread name metadata is
    included.  Messages whose send-side and recv-side ["p2p"] spans are
    both closed and carry a matching ["mseq"] arg additionally produce a
    paired flow event (["s"] at the send's start, ["f"] with
    [bp = "e"] at the receive's end) so Perfetto draws message arrows.
    Output is strict JSON ({!Json.parse} accepts it). *)

val timeline : Obs.t -> string
(** Human-readable per-track listing, nesting shown by indentation. *)

val metrics_json : ?buckets:bool -> Metrics.t -> string
(** With [~buckets:true] each histogram additionally carries a
    ["buckets"] array of [[lo, hi, count]] triples (the non-empty
    log-scale buckets, half-open value ranges, ascending) so external
    tooling can re-aggregate the full distribution.  Default [false]. *)

val metrics_csv : ?buckets:bool -> Metrics.t -> string
(** With [~buckets:true] each histogram row is followed by one
    [kind = "bucket"] row per non-empty bucket, with the bucket count in
    the [count] column and its bounds in [min]/[max].  Default
    [false]. *)

val write_file : string -> string -> unit
(** [write_file path contents] (truncating). *)
