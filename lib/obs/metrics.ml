type counter = { mutable c_val : int }

type gauge = { mutable g_val : float; mutable g_max : float; mutable g_seen : bool }

(* Log-scaled histogram: bucket 0 holds values < 1; bucket i (1 <= i <=
   max_bucket) holds [2^((i-1)/4), 2^(i/4)), i.e. quarter-powers of two,
   a <= 9% relative error per bucket.  Exact count/sum/min/max ride
   alongside so means and extremes are not quantized. *)
type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let max_bucket = 256 (* covers up to 2^64 *)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let intern t name make cast =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match cast m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name m)))
  | None ->
      let m, v = make () in
      Hashtbl.add t.tbl name m;
      v

let counter t name =
  intern t name
    (fun () ->
      let c = { c_val = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  intern t name
    (fun () ->
      let g = { g_val = 0.; g_max = neg_infinity; g_seen = false } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  intern t name
    (fun () ->
      let h =
        {
          buckets = Array.make (max_bucket + 1) 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let inc ?(by = 1) c = c.c_val <- c.c_val + by
let counter_value c = c.c_val

let set g v =
  g.g_val <- v;
  g.g_seen <- true;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g_val
let gauge_max g = if g.g_seen then g.g_max else 0.

let bucket_of v =
  if not (v >= 1.) then 0 (* catches negatives and NaN too *)
  else
    let i = 1 + int_of_float (Float.floor (Float.log2 v *. 4.)) in
    if i < 1 then 1 else if i > max_bucket then max_bucket else i

(* Geometric midpoint of bucket [i]'s bounds. *)
let representative = function
  | 0 -> 0.
  | i -> Float.pow 2. ((float_of_int i -. 0.5) /. 4.)

(* Bucket [i]'s half-open value range [lo, hi).  Bucket 0 catches
   everything below 1 (including negatives and NaN). *)
let bucket_bounds = function
  | 0 -> (0., 1.)
  | i ->
      ( Float.pow 2. (float_of_int (i - 1) /. 4.),
        Float.pow 2. (float_of_int i /. 4.) )

let observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let count h = h.h_count
let sum h = h.h_sum
let mean h = if h.h_count = 0 then Float.nan else h.h_sum /. float_of_int h.h_count
let minimum h = if h.h_count = 0 then Float.nan else h.h_min
let maximum h = if h.h_count = 0 then Float.nan else h.h_max

let percentile h p =
  if h.h_count = 0 then Float.nan
  else begin
    let rank =
      Float.max 1. (Float.round (p /. 100. *. float_of_int h.h_count))
    in
    let rec walk i acc =
      if i > max_bucket then h.h_max
      else
        let acc = acc + h.buckets.(i) in
        if float_of_int acc >= rank then
          Float.min h.h_max (Float.max h.h_min (representative i))
        else walk (i + 1) acc
    in
    walk 0 0
  end

type view =
  | V_counter of int
  | V_gauge of { value : float; vmax : float }
  | V_hist of {
      count : int;
      sum : float;
      mean : float;
      vmin : float;
      vmax : float;
      p50 : float;
      p95 : float;
      p99 : float;
      hbuckets : (float * float * int) list;
    }

let view_of = function
  | Counter c -> V_counter c.c_val
  | Gauge g -> V_gauge { value = g.g_val; vmax = gauge_max g }
  | Histogram h ->
      V_hist
        {
          count = count h;
          sum = sum h;
          mean = mean h;
          vmin = minimum h;
          vmax = maximum h;
          p50 = percentile h 50.;
          p95 = percentile h 95.;
          p99 = percentile h 99.;
          hbuckets =
            (let acc = ref [] in
             for i = max_bucket downto 0 do
               if h.buckets.(i) > 0 then
                 let lo, hi = bucket_bounds i in
                 acc := (lo, hi, h.buckets.(i)) :: !acc
             done;
             !acc);
        }

let dump t =
  Hashtbl.fold (fun name m acc -> (name, view_of m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let is_empty t = Hashtbl.length t.tbl = 0
