(** Named-metrics registry: counters, gauges and log-scaled histograms.

    Metrics are interned by name on first use, so instrumentation sites
    can look their handles up cheaply and independently.  Histograms use
    quarter-power-of-two buckets (<= 9% relative error) with exact
    count/sum/min/max kept alongside, which is enough for the p50/p95/p99
    summaries the benchmark reports print.  Recording never allocates
    after interning and never touches the virtual clock. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Intern (or retrieve) the counter named [name].
    @raise Invalid_argument if the name is taken by another kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
(** Set the current value, tracking the high-water mark. *)

val gauge_value : gauge -> float
val gauge_max : gauge -> float

val observe : histogram -> float -> unit
val count : histogram -> int
val sum : histogram -> float
val mean : histogram -> float
val minimum : histogram -> float
val maximum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0..100]; NaN on an empty histogram.
    Accuracy is bounded by the log-bucket width (<= ~9%) and clamped to
    the observed min/max. *)

(** {1 Export view} *)

type view =
  | V_counter of int
  | V_gauge of { value : float; vmax : float }
  | V_hist of {
      count : int;
      sum : float;
      mean : float;
      vmin : float;
      vmax : float;
      p50 : float;
      p95 : float;
      p99 : float;
      hbuckets : (float * float * int) list;
          (** Non-empty buckets as [(lo, hi, count)] with the half-open
              value range [lo, hi), in increasing order.  Lets external
              tooling re-aggregate the full distribution. *)
    }

val dump : t -> (string * view) list
(** All metrics, sorted by name. *)

val is_empty : t -> bool
