type attr = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sid : int;
  track : int;
  cat : string;
  name : string;
  t0 : float;
  mutable t1 : float; (* NaN while the span is open *)
  parent : int; (* sid of the enclosing span, or -1 *)
  mutable args : (string * attr) list;
}

type instant = {
  i_time : float;
  i_track : int;
  i_cat : string;
  i_name : string;
  i_args : (string * attr) list;
}

type t = {
  on : bool;
  mx : Metrics.t;
  max_events : int;
  mutable n_events : int;
  mutable rev_spans : span list;
  mutable rev_instants : instant list;
  mutable next_sid : int;
  stacks : (int, span list ref) Hashtbl.t; (* track -> open nested spans *)
  mutable n_dropped : int;
}

let null_span =
  { sid = -1; track = 0; cat = ""; name = ""; t0 = 0.; t1 = 0.; parent = -1; args = [] }

let make on max_events =
  {
    on;
    mx = Metrics.create ();
    max_events;
    n_events = 0;
    rev_spans = [];
    rev_instants = [];
    next_sid = 0;
    stacks = Hashtbl.create 8;
    n_dropped = 0;
  }

let null = make false 0
let create ?(max_events = 1_000_000) () = make true max_events
let enabled t = t.on
let metrics t = t.mx

let stack_for t track =
  match Hashtbl.find_opt t.stacks track with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.stacks track r;
      r

(* Admission control: the sink is bounded so a forgotten attach cannot
   exhaust memory on a long simulation; everything past the bound is
   counted, not silently lost. *)
let room t =
  if t.n_events >= t.max_events then begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end
  else begin
    t.n_events <- t.n_events + 1;
    true
  end

let fresh_sid t =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  sid

let current_parent t track =
  match !(stack_for t track) with [] -> -1 | p :: _ -> p.sid

let span_begin t ~time ~track ~cat ?(nest = true) ?(args = []) name =
  if not t.on || not (room t) then null_span
  else begin
    let sp =
      {
        sid = fresh_sid t;
        track;
        cat;
        name;
        t0 = time;
        t1 = Float.nan;
        parent = current_parent t track;
        args;
      }
    in
    t.rev_spans <- sp :: t.rev_spans;
    if nest then begin
      let st = stack_for t track in
      st := sp :: !st
    end;
    sp
  end

let span_end t ~time ?(args = []) sp =
  if t.on && sp != null_span then begin
    sp.t1 <- time;
    if args <> [] then sp.args <- sp.args @ args;
    let st = stack_for t sp.track in
    st := List.filter (fun s -> s != sp) !st
  end

let span_complete t ~track ~cat ~t0 ~t1 ?parent ?(args = []) name =
  if not t.on || not (room t) then null_span
  else begin
    let parent =
      match parent with
      | Some p when p != null_span -> p.sid
      | _ -> current_parent t track
    in
    let sp = { sid = fresh_sid t; track; cat; name; t0; t1; parent; args } in
    t.rev_spans <- sp :: t.rev_spans;
    sp
  end

let instant t ~time ~track ~cat ?(args = []) name =
  if t.on && room t then
    t.rev_instants <-
      { i_time = time; i_track = track; i_cat = cat; i_name = name; i_args = args }
      :: t.rev_instants

let by_start a b = if a.t0 = b.t0 then compare a.sid b.sid else compare a.t0 b.t0

let spans t = List.sort by_start t.rev_spans

let instants t =
  List.stable_sort
    (fun a b -> compare a.i_time b.i_time)
    (List.rev t.rev_instants)

let span_count t = List.length t.rev_spans
let instant_count t = List.length t.rev_instants
let dropped t = t.n_dropped

let find t sid = List.find_opt (fun s -> s.sid = sid) t.rev_spans

let is_open sp = Float.is_nan sp.t1

let categories t =
  List.sort_uniq compare
    (List.rev_append
       (List.rev_map (fun s -> s.cat) t.rev_spans)
       (List.map (fun i -> i.i_cat) t.rev_instants))

let tracks t =
  List.sort_uniq compare
    (List.rev_append
       (List.rev_map (fun s -> s.track) t.rev_spans)
       (List.map (fun i -> i.i_track) t.rev_instants))

let clear t =
  t.rev_spans <- [];
  t.rev_instants <- [];
  t.n_events <- 0;
  t.n_dropped <- 0;
  Hashtbl.reset t.stacks
