(** Structured observability sink: typed spans and instants over the
    virtual clock.

    This module deliberately depends on nothing else in the tree so that
    every layer — including the simulation engine itself — can be
    instrumented with it.  Timestamps are plain floats supplied by the
    caller (virtual nanoseconds from [Engine.now]).

    The sink is attach-on-demand: code holds an {!t} that is {!null} by
    default, and every recording entry point is a no-op on a disabled
    sink.  Recording never advances the virtual clock, never perturbs
    scheduling order, and never touches [Stats] — attaching or detaching
    observability cannot change a simulation's result (the zero-overhead
    test in [test_obs.ml] asserts exactly this).

    Span conventions used across the tree:
    - category ["p2p"]: MPI-level operations (send/isend/recv/irecv/
      wait/barrier), one span per operation from post to completion;
    - category ["proto"]: transport protocol phases (pack, wire, rts,
      rendezvous handshake, unpack);
    - category ["callback"]: individual pack/unpack callback
      invocations, tiled across their phase's modeled duration;
    - category ["fiber"]: scheduler fiber lifetimes plus
      suspend/resume instants;
    - category ["ckpt"]: checkpoint/restart activity from
      [Mpicd_restart] (commit/restore/recovery spans; epoch-marker,
      snapshot-completion, duplicate-suppression and log-replay
      instants).

    Tracks are small ints: rank/worker ids for ranks ([>= 0]), negative
    fiber ids for engine-internal fibers. *)

type t

type attr = Int of int | Float of float | Str of string | Bool of bool

type span = private {
  sid : int;
  track : int;
  cat : string;
  name : string;
  t0 : float;
  mutable t1 : float;  (** NaN while open *)
  parent : int;  (** sid of the enclosing span at begin time, or -1 *)
  mutable args : (string * attr) list;
}

type instant = private {
  i_time : float;
  i_track : int;
  i_cat : string;
  i_name : string;
  i_args : (string * attr) list;
}

val null : t
(** The shared disabled sink: every recording call on it is a no-op.
    Instrumentation sites should guard any argument construction with
    {!enabled} so the disabled path does no work at all. *)

val create : ?max_events:int -> unit -> t
(** A live sink.  [max_events] bounds retained spans+instants (default
    1e6); excess events are counted in {!dropped}, not stored. *)

val enabled : t -> bool

val metrics : t -> Metrics.t
(** The sink's metrics registry ([null] has an inert one). *)

val null_span : span
(** Returned by {!span_begin} on a disabled or full sink; {!span_end}
    ignores it. *)

val span_begin :
  t ->
  time:float ->
  track:int ->
  cat:string ->
  ?nest:bool ->
  ?args:(string * attr) list ->
  string ->
  span
(** Open a span.  Its parent is the innermost span currently open (via
    [nest:true]) on the same track.  [nest] (default true) pushes the
    new span onto the track's nesting stack; pass [nest:false] for
    spans that outlive their fiber's stack discipline (e.g. an
    operation completed by a later scheduled event). *)

val span_end : t -> time:float -> ?args:(string * attr) list -> span -> unit
(** Close a span (appending [args] if given).  Tolerates out-of-LIFO
    ends. *)

val span_complete :
  t ->
  track:int ->
  cat:string ->
  t0:float ->
  t1:float ->
  ?parent:span ->
  ?args:(string * attr) list ->
  string ->
  span
(** Record an already-finished span, e.g. a phase whose modeled duration
    is known up front.  [parent] overrides the nesting-stack parent. *)

val instant :
  t ->
  time:float ->
  track:int ->
  cat:string ->
  ?args:(string * attr) list ->
  string ->
  unit

(** {1 Reading the sink} *)

val spans : t -> span list
(** All spans (open ones have NaN [t1]), sorted by (t0, sid). *)

val instants : t -> instant list
(** Sorted by time, stable on recording order. *)

val is_open : span -> bool
val find : t -> int -> span option
(** Lookup by sid (linear; for tests and exporters). *)

val categories : t -> string list
val tracks : t -> int list
val span_count : t -> int
val instant_count : t -> int

val dropped : t -> int
(** Events discarded because the sink was full. *)

val clear : t -> unit
