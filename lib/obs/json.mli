(** Minimal JSON: escaping helpers for the exporters and a strict parser
    used to validate emitted traces (the repo deliberately has no JSON
    dependency). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val quote : string -> string
(** [escape] plus surrounding quotes. *)

val number : float -> string
(** Render a float as a JSON number; NaN becomes [null], infinities are
    clamped so the output always parses back. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document. *)

(** {1 Accessors} *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_string : t -> string option
val to_number : t -> float option
