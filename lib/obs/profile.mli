(** Scalasca-style automatic trace analysis over a finished {!Obs} sink.

    [analyze] reconstructs per-rank timelines from the recorded spans,
    joins each message's send-side and recv-side spans through their
    ["mseq"] args into a cross-rank dependency graph, classifies wait
    states, computes the critical path of the run, and attributes both
    total and critical-path time to phases per rank and per datatype.

    {2 Attribution model}

    Time is attributed on an integer {e picosecond} grid ([1 ns] =
    [1000 ps], timestamps rounded once on entry), so per-rank phase
    sums are {e exactly} conservative: for every rank,
    [pack + wire + unpack + wait + callback + other = total] holds as
    an [Int64] equality, with no floating-point slack.

    Every rank's window is the global trace window.  Each elementary
    interval of a rank's timeline is charged to exactly one phase — the
    highest-priority span covering it:

    + ["callback"] spans (individual pack/unpack callback invocations);
    + pack/unpack protocol phases (["pack"], ["custom_pack"],
      ["unpack"], ["custom_unpack"]);
    + wire protocol phases (["wire"], ["rts"], ["nack"], ["rel_xfer"],
      ["handshake"], and any other ["proto"] span);
    + the ["rndv"] umbrella span (counts as wire);
    + ["p2p"] operation spans — uncovered operation time is {e wait};
    + nothing: idle time ({!Other}).

    {2 Wait-state taxonomy}

    Wait intervals are classified through the message join:
    - {!Late_sender}: a receive-side wait before the message's match
      instant — the sender had not arrived yet;
    - {!Late_receiver}: a send-side wait before the match — the
      receiver had not posted yet (rendezvous sender stalled on RTS);
    - {!Barrier_wait}: waiting inside a barrier (detected through span
      ancestry);
    - {!Rndv_stall}: post-match waiting for the rendezvous
      handshake/transfer to drain;
    - {!Retransmit_stall}: a fault-recovery instant (retransmit, drop,
      nack, backoff, link-down, delivery timeout) on either endpoint
      overlaps the wait;
    - {!Wait_other}: no join (e.g. the message never completed).

    {2 Critical path}

    The critical path walks backward from the end of the trace window:
    work segments are charged to the rank executing them; when the walk
    reaches a wait segment it charges the wait to the {e waiting} rank's
    wait class and jumps to the peer that caused it.  Charged segments
    tile the window exactly, so critical-path time also sums to the
    window length as an [Int64] equality. *)

type phase = Pack | Wire | Unpack | Wait | Callback | Other

type wait_class =
  | Late_sender
  | Late_receiver
  | Barrier_wait
  | Rndv_stall
  | Retransmit_stall
  | Wait_other

type phase_totals = {
  pack : int64;
  wire : int64;
  unpack : int64;
  wait : int64;
  callback : int64;
  other : int64;
}
(** Picoseconds per phase. *)

type wait_totals = {
  late_sender : int64;
  late_receiver : int64;
  barrier : int64;
  rndv_stall : int64;
  retransmit_stall : int64;
  wait_other : int64;
}
(** Picoseconds per wait class; sums to the [wait] phase total. *)

type rank_profile = {
  rank : int;
  total_ps : int64;  (** the global window length *)
  phases : phase_totals;  (** sums exactly to [total_ps] *)
  waits : wait_totals;  (** sums exactly to [phases.wait] *)
  cb_pack_ps : int64;
      (** the subset of [phases.callback] spent in pack callbacks *)
  cb_unpack_ps : int64;  (** ... and in unpack callbacks *)
  cp_phases : phase_totals;  (** critical-path time through this rank *)
  cp_waits : wait_totals;
}

type t = {
  window_ps : int64;  (** trace window length *)
  window_t0_ns : float;  (** window start on the virtual clock *)
  ranks : rank_profile list;  (** ascending by rank *)
  messages_total : int;  (** distinct message sequence numbers seen *)
  messages_joined : int;  (** messages with both send and recv spans *)
  datatypes : (string * phase_totals) list;
      (** time covered by a ["p2p"] op span, bucketed by the op's ["dt"]
          label, ascending by label *)
}

val analyze : Obs.t -> t
(** Offline analysis of a finished sink.  Read-only: never mutates the
    sink, never touches the virtual clock. *)

val phase_name : phase -> string
val wait_class_name : wait_class -> string

val ns_of_ps : int64 -> float

val total_ns : t -> float
(** Summed rank time (= ranks x window). *)

val phase_ns : t -> phase -> float
(** A phase's total across all ranks, in virtual ns. *)

val wait_class_ns : t -> wait_class -> float

val pack_share : t -> float
(** Fraction of total rank time spent packing: the [Pack] and [Unpack]
    phases plus their callback time, over the summed window.  0 on an
    empty profile. *)

val wait_share : t -> float
(** Fraction of total rank time spent in the [Wait] phase. *)

val to_json : t -> string
(** The [profile.json] document (schema ["mpicd-profile/1"]):
    window/per-rank phase and wait-state attribution, critical path,
    message-join counts and per-datatype breakdown.  Strict JSON;
    {!Json.parse} accepts it. *)

val report : ?top:int -> t -> string
(** Human-readable top-N report: per-rank phase table, wait-state
    breakdown, critical-path summary and the [top] most expensive
    datatypes (default 5). *)

val folded : t -> string
(** Flamegraph-collapsed stacks ([semicolon-separated;stack value]
    lines, value in integer ns): per-rank phase/wait-class stacks under
    [rank N;...] plus critical-path stacks under [critical-path;...].
    Feed to [flamegraph.pl] or speedscope. *)
