(* Exporters for the observability sink: Chrome-trace-event JSON
   (loadable in Perfetto / chrome://tracing), a plain-text per-track
   timeline, and metrics dumps.

   Chrome-trace mapping: virtual nanoseconds map to the format's
   microsecond [ts]/[dur] fields; each rank becomes one process (pid =
   rank) whose threads are the span categories, so a rank's p2p
   operations, protocol phases, callbacks and fiber lifetime stack as
   separate rows under one process group.  Engine-internal fibers
   (negative tracks) live in a synthetic "engine" process. *)

let engine_pid = 1000

let tid_of_cat = function
  | "p2p" -> 0
  | "proto" -> 1
  | "callback" -> 2
  | "fiber" -> 3
  | _ -> 4

let tid_name = function
  | 0 -> "p2p ops"
  | 1 -> "protocol"
  | 2 -> "callbacks"
  | 3 -> "fiber"
  | _ -> "misc"

let pid_of_track track = if track >= 0 then track else engine_pid

let tid_of ~track ~cat = if track >= 0 then tid_of_cat cat else -track

let attr_json (k, v) =
  Json.quote k ^ ":"
  ^
  match (v : Obs.attr) with
  | Obs.Int i -> string_of_int i
  | Obs.Float f -> Json.number f
  | Obs.Str s -> Json.quote s
  | Obs.Bool b -> string_of_bool b

let args_json = function
  | [] -> ""
  | args -> ",\"args\":{" ^ String.concat "," (List.map attr_json args) ^ "}"

let us t = t /. 1000.

let chrome_trace obs =
  let b = Buffer.create 65536 in
  let emit_first = ref true in
  let emit s =
    if !emit_first then emit_first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  (* Process/thread naming metadata. *)
  let seen_pids = Hashtbl.create 8 and seen_tids = Hashtbl.create 16 in
  let name_track ~track ~cat =
    let pid = pid_of_track track and tid = tid_of ~track ~cat in
    if not (Hashtbl.mem seen_pids pid) then begin
      Hashtbl.add seen_pids pid ();
      let pname = if pid = engine_pid then "engine" else Printf.sprintf "rank %d" pid in
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}"
           pid (Json.quote pname))
    end;
    if not (Hashtbl.mem seen_tids (pid, tid)) then begin
      Hashtbl.add seen_tids (pid, tid) ();
      let tname =
        if pid = engine_pid then Printf.sprintf "fiber %d" tid else tid_name tid
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}"
           pid tid (Json.quote tname))
    end;
    (pid, tid)
  in
  List.iter
    (fun (sp : Obs.span) ->
      let pid, tid = name_track ~track:sp.track ~cat:sp.cat in
      if Obs.is_open sp then
        emit
          (Printf.sprintf
             "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"cat\":%s,\"name\":%s%s}"
             pid tid
             (Json.number (us sp.t0))
             (Json.quote sp.cat) (Json.quote sp.name) (args_json sp.args))
      else
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"cat\":%s,\"name\":%s%s}"
             pid tid
             (Json.number (us sp.t0))
             (Json.number (us (sp.t1 -. sp.t0)))
             (Json.quote sp.cat) (Json.quote sp.name) (args_json sp.args)))
    (Obs.spans obs);
  List.iter
    (fun (i : Obs.instant) ->
      let pid, tid = name_track ~track:i.i_track ~cat:i.i_cat in
      emit
        (Printf.sprintf
           "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"cat\":%s,\"name\":%s%s}"
           pid tid
           (Json.number (us i.i_time))
           (Json.quote i.i_cat) (Json.quote i.i_name) (args_json i.i_args)))
    (Obs.instants obs);
  (* Flow events: join each message's send-side and recv-side p2p spans
     by their "mseq" arg so Perfetto draws an arrow from the send's
     start to the matching receive's end.  Only closed spans on both
     sides produce a flow, so every "s" emitted here has its "f". *)
  let mseq_of (sp : Obs.span) =
    List.fold_left
      (fun acc (k, v) ->
        match (k, v) with "mseq", Obs.Int n when n >= 0 -> Some n | _ -> acc)
      None sp.args
  in
  let sends = Hashtbl.create 64 and recvs = Hashtbl.create 64 in
  List.iter
    (fun (sp : Obs.span) ->
      if sp.cat = "p2p" && not (Obs.is_open sp) then
        match mseq_of sp with
        | None -> ()
        | Some m -> (
            match sp.name with
            | "send" | "isend" ->
                if not (Hashtbl.mem sends m) then Hashtbl.add sends m sp
            | "recv" | "irecv" ->
                if not (Hashtbl.mem recvs m) then Hashtbl.add recvs m sp
            | _ -> ()))
    (Obs.spans obs);
  Hashtbl.fold (fun m sp acc -> (m, sp) :: acc) sends []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (m, (snd_sp : Obs.span)) ->
      match Hashtbl.find_opt recvs m with
      | None -> ()
      | Some (rcv_sp : Obs.span) ->
          emit
            (Printf.sprintf
               "{\"ph\":\"s\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%s,\"cat\":\"flow\",\"name\":\"msg\"}"
               m (pid_of_track snd_sp.track)
               (tid_of ~track:snd_sp.track ~cat:snd_sp.cat)
               (Json.number (us snd_sp.t0)));
          emit
            (Printf.sprintf
               "{\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%s,\"cat\":\"flow\",\"name\":\"msg\"}"
               m (pid_of_track rcv_sp.track)
               (tid_of ~track:rcv_sp.track ~cat:rcv_sp.cat)
               (Json.number (us rcv_sp.t1))));
  Buffer.add_string b "\n]}";
  Buffer.contents b

(* --- plain-text per-track timeline --- *)

let attr_text (k, v) =
  k ^ "="
  ^
  match (v : Obs.attr) with
  | Obs.Int i -> string_of_int i
  | Obs.Float f -> Printf.sprintf "%g" f
  | Obs.Str s -> s
  | Obs.Bool b -> string_of_bool b

let args_text = function
  | [] -> ""
  | args -> " [" ^ String.concat " " (List.map attr_text args) ^ "]"

let timeline obs =
  let b = Buffer.create 16384 in
  let spans = Obs.spans obs in
  (* depth = distance to the root through parent links *)
  let depth_tbl = Hashtbl.create 256 in
  List.iter
    (fun (sp : Obs.span) ->
      let d =
        match Hashtbl.find_opt depth_tbl sp.parent with
        | Some pd -> pd + 1
        | None -> 0
      in
      Hashtbl.add depth_tbl sp.sid d)
    spans;
  List.iter
    (fun track ->
      let mine = List.filter (fun (s : Obs.span) -> s.track = track) spans in
      if mine <> [] then begin
        let label =
          if track >= 0 then Printf.sprintf "rank %d" track
          else Printf.sprintf "engine fiber %d" (-track)
        in
        Buffer.add_string b (Printf.sprintf "== %s ==\n" label);
        List.iter
          (fun (sp : Obs.span) ->
            let indent = String.make (2 * (Hashtbl.find depth_tbl sp.sid)) ' ' in
            if Obs.is_open sp then
              Buffer.add_string b
                (Printf.sprintf "%12.1f %12s  %s%s/%s%s (open)\n" sp.t0 "-"
                   indent sp.cat sp.name (args_text sp.args))
            else
              Buffer.add_string b
                (Printf.sprintf "%12.1f %12.1f  %s%s/%s%s\n" sp.t0 sp.t1 indent
                   sp.cat sp.name (args_text sp.args)))
          mine
      end)
    (Obs.tracks obs);
  if Obs.dropped obs > 0 then
    Buffer.add_string b
      (Printf.sprintf "(... %d events dropped: sink full)\n" (Obs.dropped obs));
  Buffer.contents b

(* --- metrics dumps --- *)

let metrics_json ?(buckets = false) mx =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, view) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (Json.quote name);
      Buffer.add_string b ": ";
      (match (view : Metrics.view) with
      | Metrics.V_counter v ->
          Buffer.add_string b
            (Printf.sprintf "{\"kind\":\"counter\",\"value\":%d}" v)
      | Metrics.V_gauge { value; vmax } ->
          Buffer.add_string b
            (Printf.sprintf "{\"kind\":\"gauge\",\"value\":%s,\"max\":%s}"
               (Json.number value) (Json.number vmax))
      | Metrics.V_hist { count; sum; mean; vmin; vmax; p50; p95; p99; hbuckets }
        ->
          let bucket_field =
            if not buckets then ""
            else
              Printf.sprintf ",\"buckets\":[%s]"
                (String.concat ","
                   (List.map
                      (fun (lo, hi, n) ->
                        Printf.sprintf "[%s,%s,%d]" (Json.number lo)
                          (Json.number hi) n)
                      hbuckets))
          in
          Buffer.add_string b
            (Printf.sprintf
               "{\"kind\":\"histogram\",\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s%s}"
               count (Json.number sum) (Json.number mean) (Json.number vmin)
               (Json.number vmax) (Json.number p50) (Json.number p95)
               (Json.number p99) bucket_field)))
    (Metrics.dump mx);
  Buffer.add_string b "\n}";
  Buffer.contents b

let csv_num f = if Float.is_nan f then "" else Printf.sprintf "%g" f

let metrics_csv ?(buckets = false) mx =
  let b = Buffer.create 4096 in
  Buffer.add_string b "name,kind,count,value,sum,mean,min,max,p50,p95,p99\n";
  List.iter
    (fun (name, view) ->
      match (view : Metrics.view) with
      | Metrics.V_counter v ->
          Buffer.add_string b (Printf.sprintf "%s,counter,,%d,,,,,,,\n" name v)
      | Metrics.V_gauge { value; vmax } ->
          Buffer.add_string b
            (Printf.sprintf "%s,gauge,,%s,,,,%s,,,\n" name (csv_num value)
               (csv_num vmax))
      | Metrics.V_hist { count; sum; mean; vmin; vmax; p50; p95; p99; hbuckets }
        ->
          Buffer.add_string b
            (Printf.sprintf "%s,histogram,%d,,%s,%s,%s,%s,%s,%s,%s\n" name count
               (csv_num sum) (csv_num mean) (csv_num vmin) (csv_num vmax)
               (csv_num p50) (csv_num p95) (csv_num p99));
          if buckets then
            List.iter
              (fun (lo, hi, n) ->
                Buffer.add_string b
                  (Printf.sprintf "%s,bucket,%d,,,,%s,%s,,,\n" name n
                     (csv_num lo) (csv_num hi)))
              hbuckets)
    (Metrics.dump mx);
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
