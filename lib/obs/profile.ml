(* Offline Scalasca-style trace analyzer.  See profile.mli for the
   attribution model, wait-state taxonomy and critical-path definition.

   All arithmetic runs on an integer picosecond grid: float timestamps
   are rounded exactly once on entry ([ps_of_ns], monotone), after which
   every charge is an Int64 add.  That is what makes the conservation
   property (phases sum to the window, per rank, exactly) testable as an
   equality rather than a tolerance. *)

type phase = Pack | Wire | Unpack | Wait | Callback | Other

type wait_class =
  | Late_sender
  | Late_receiver
  | Barrier_wait
  | Rndv_stall
  | Retransmit_stall
  | Wait_other

type phase_totals = {
  pack : int64;
  wire : int64;
  unpack : int64;
  wait : int64;
  callback : int64;
  other : int64;
}

type wait_totals = {
  late_sender : int64;
  late_receiver : int64;
  barrier : int64;
  rndv_stall : int64;
  retransmit_stall : int64;
  wait_other : int64;
}

type rank_profile = {
  rank : int;
  total_ps : int64;
  phases : phase_totals;
  waits : wait_totals;
  cb_pack_ps : int64;
  cb_unpack_ps : int64;
  cp_phases : phase_totals;
  cp_waits : wait_totals;
}

type t = {
  window_ps : int64;
  window_t0_ns : float;
  ranks : rank_profile list;
  messages_total : int;
  messages_joined : int;
  datatypes : (string * phase_totals) list;
}

let ps_of_ns f = Int64.of_float (Float.round (f *. 1000.))
let ns_of_ps ps = Int64.to_float ps /. 1000.

let phase_name = function
  | Pack -> "pack"
  | Wire -> "wire"
  | Unpack -> "unpack"
  | Wait -> "wait"
  | Callback -> "callback"
  | Other -> "other"

let wait_class_name = function
  | Late_sender -> "late_sender"
  | Late_receiver -> "late_receiver"
  | Barrier_wait -> "barrier"
  | Rndv_stall -> "rndv_stall"
  | Retransmit_stall -> "retransmit_stall"
  | Wait_other -> "other"

let phase_idx = function
  | Pack -> 0
  | Wire -> 1
  | Unpack -> 2
  | Wait -> 3
  | Callback -> 4
  | Other -> 5

let wait_idx = function
  | Late_sender -> 0
  | Late_receiver -> 1
  | Barrier_wait -> 2
  | Rndv_stall -> 3
  | Retransmit_stall -> 4
  | Wait_other -> 5

let all_phases = [ Pack; Wire; Unpack; Wait; Callback; Other ]

let all_wait_classes =
  [
    Late_sender;
    Late_receiver;
    Barrier_wait;
    Rndv_stall;
    Retransmit_stall;
    Wait_other;
  ]

let pt_of a =
  {
    pack = a.(0);
    wire = a.(1);
    unpack = a.(2);
    wait = a.(3);
    callback = a.(4);
    other = a.(5);
  }

let wt_of a =
  {
    late_sender = a.(0);
    late_receiver = a.(1);
    barrier = a.(2);
    rndv_stall = a.(3);
    retransmit_stall = a.(4);
    wait_other = a.(5);
  }

let pt_get pt = function
  | Pack -> pt.pack
  | Wire -> pt.wire
  | Unpack -> pt.unpack
  | Wait -> pt.wait
  | Callback -> pt.callback
  | Other -> pt.other

let wt_get wt = function
  | Late_sender -> wt.late_sender
  | Late_receiver -> wt.late_receiver
  | Barrier_wait -> wt.barrier
  | Rndv_stall -> wt.rndv_stall
  | Retransmit_stall -> wt.retransmit_stall
  | Wait_other -> wt.wait_other

let add a i d = a.(i) <- Int64.add a.(i) d

(* --- span/instant arg accessors --- *)

let mseq_of args =
  List.fold_left
    (fun acc (k, v) ->
      match (k, v) with
      | "mseq", Obs.Int n when n >= 0 -> Some n
      | _ -> acc)
    None args

let dt_of args =
  List.fold_left
    (fun acc (k, v) ->
      match (k, v) with "dt", Obs.Str s -> Some s | _ -> acc)
    None args

(* Fault instants that mean "this endpoint is stuck in wire-level
   recovery" — anything overlapping a wait turns it into a
   retransmit/backoff stall. *)
let is_recovery_instant = function
  | "retransmit" | "frag_drop" | "frag_corrupt" | "nack" | "delivery_timeout"
  | "link_down" | "iov_fallback" | "rndv_timeout" ->
      true
  | _ -> false

(* Sweep item: one span projected onto its rank's timeline.  Phase
   priority decides which span owns an elementary interval when several
   overlap (see profile.mli). *)
type item = { ia : int64; ib : int64; prio : int; iphase : phase; isp : Obs.span }

let item_of (sp : Obs.span) ~a ~b =
  match sp.Obs.cat with
  | "callback" -> Some { ia = a; ib = b; prio = 5; iphase = Callback; isp = sp }
  | "proto" ->
      let prio, iphase =
        match sp.Obs.name with
        | "pack" | "custom_pack" -> (4, Pack)
        | "unpack" | "custom_unpack" -> (4, Unpack)
        | "rndv" -> (2, Wire)
        | _ -> (3, Wire)
        (* wire, rts, nack, rel_xfer, handshake, future phases *)
      in
      Some { ia = a; ib = b; prio; iphase; isp = sp }
  | "p2p" -> Some { ia = a; ib = b; prio = 1; iphase = Wait; isp = sp }
  | _ -> None (* fault/resilience/other categories are transparent *)

(* Per-rank elementary interval, the unit the critical-path walk
   consumes.  [vpeer] is the cross-rank jump target for waits (-1 when
   the wait has no joined peer). *)
type iv = {
  va : int64;
  vb : int64;
  vphase : phase;
  vwait : wait_class;
  vpeer : int;
}

let analyze obs =
  let all_spans = Obs.spans obs in
  let sid_tbl = Hashtbl.create 256 in
  List.iter (fun (sp : Obs.span) -> Hashtbl.replace sid_tbl sp.sid sp) all_spans;
  let spans =
    List.filter
      (fun (sp : Obs.span) ->
        sp.track >= 0 && sp.cat <> "fiber" && not (Obs.is_open sp))
      all_spans
  in
  let instants =
    List.filter
      (fun (i : Obs.instant) -> i.i_track >= 0 && i.i_cat <> "fiber")
      (Obs.instants obs)
  in
  (* ranks and global window *)
  let rank_set = Hashtbl.create 16 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  List.iter
    (fun (sp : Obs.span) ->
      Hashtbl.replace rank_set sp.track ();
      if sp.t0 < !t_min then t_min := sp.t0;
      if sp.t1 > !t_max then t_max := sp.t1)
    spans;
  List.iter
    (fun (i : Obs.instant) ->
      Hashtbl.replace rank_set i.i_track ();
      if i.i_time < !t_min then t_min := i.i_time;
      if i.i_time > !t_max then t_max := i.i_time)
    instants;
  let ranks =
    Hashtbl.fold (fun r () acc -> r :: acc) rank_set [] |> List.sort compare
  in
  if ranks = [] || not (!t_max > !t_min) then
    {
      window_ps = 0L;
      window_t0_ns = 0.;
      ranks =
        List.map
          (fun rank ->
            {
              rank;
              total_ps = 0L;
              phases = pt_of (Array.make 6 0L);
              waits = wt_of (Array.make 6 0L);
              cb_pack_ps = 0L;
              cb_unpack_ps = 0L;
              cp_phases = pt_of (Array.make 6 0L);
              cp_waits = wt_of (Array.make 6 0L);
            })
          ranks;
      messages_total = 0;
      messages_joined = 0;
      datatypes = [];
    }
  else begin
    let w0 = ps_of_ns !t_min and w1 = ps_of_ns !t_max in
    let window_ps = Int64.sub w1 w0 in
    (* --- message join tables --- *)
    let send_tbl = Hashtbl.create 64 (* mseq -> send-side op span *)
    and recv_tbl = Hashtbl.create 64 (* mseq -> recv-side op span *)
    and match_tbl = Hashtbl.create 64 (* mseq -> earliest match time (ps) *)
    and mseq_set = Hashtbl.create 64 in
    List.iter
      (fun (sp : Obs.span) ->
        if sp.cat = "p2p" then
          match mseq_of sp.args with
          | None -> ()
          | Some m -> (
              Hashtbl.replace mseq_set m ();
              match sp.name with
              | "send" | "isend" ->
                  if not (Hashtbl.mem send_tbl m) then Hashtbl.add send_tbl m sp
              | "recv" | "irecv" ->
                  if not (Hashtbl.mem recv_tbl m) then Hashtbl.add recv_tbl m sp
              | _ -> ()))
      spans;
    (* recovery instants per track, and match instants per message *)
    let fault_tbl = Hashtbl.create 16 in
    List.iter
      (fun (i : Obs.instant) ->
        (match (i.i_cat, i.i_name) with
        | "proto", "match" -> (
            match mseq_of i.i_args with
            | None -> ()
            | Some m ->
                Hashtbl.replace mseq_set m ();
                let t = ps_of_ns i.i_time in
                let best =
                  match Hashtbl.find_opt match_tbl m with
                  | Some prev -> min prev t
                  | None -> t
                in
                Hashtbl.replace match_tbl m best)
        | _ -> ());
        if i.i_cat = "fault" && is_recovery_instant i.i_name then
          let t = ps_of_ns i.i_time in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt fault_tbl i.i_track)
          in
          Hashtbl.replace fault_tbl i.i_track (t :: prev))
      instants;
    let fault_overlap tr ~a ~b =
      match Hashtbl.find_opt fault_tbl tr with
      | None -> false
      | Some ts -> List.exists (fun t -> t >= a && t < b) ts
    in
    let rec under_barrier sid =
      if sid < 0 then false
      else
        match Hashtbl.find_opt sid_tbl sid with
        | None -> false
        | Some (sp : Obs.span) -> sp.name = "barrier" || under_barrier sp.parent
    in
    (* Classify one wait interval [a,b) owned by p2p span [owner] on
       [rank]; returns the class and the peer to jump to on the critical
       path (-1: stay on this rank). *)
    let classify_wait ~rank ~a ~b (owner : Obs.span) =
      let barrier = owner.name = "barrier" || under_barrier owner.parent in
      match mseq_of owner.args with
      | None -> ((if barrier then Barrier_wait else Wait_other), -1)
      | Some m -> (
          let send_sp = Hashtbl.find_opt send_tbl m
          and recv_sp = Hashtbl.find_opt recv_tbl m in
          let side =
            match owner.name with
            | "send" | "isend" -> `Send
            | "recv" | "irecv" -> `Recv
            | _ -> (
                match (send_sp, recv_sp) with
                | Some s, _ when s.track = rank -> `Send
                | _, Some r when r.track = rank -> `Recv
                | _ -> `Unknown)
          in
          let peer =
            match side with
            | `Send -> (
                match recv_sp with Some r -> r.track | None -> -1)
            | `Recv -> (
                match send_sp with Some s -> s.track | None -> -1)
            | `Unknown -> -1
          in
          let peer = if peer = rank then -1 else peer in
          if barrier then (Barrier_wait, peer)
          else if fault_overlap rank ~a ~b || (peer >= 0 && fault_overlap peer ~a ~b)
          then (Retransmit_stall, peer)
          else
            match Hashtbl.find_opt match_tbl m with
            | None -> (Wait_other, peer)
            | Some mt -> (
                match side with
                | `Recv -> ((if a < mt then Late_sender else Rndv_stall), peer)
                | `Send ->
                    ((if a < mt then Late_receiver else Rndv_stall), peer)
                | `Unknown -> (Wait_other, peer)))
    in
    (* Extra sweep boundaries: each joined message's match time lands on
       both endpoints so waits split exactly at the match (that edge is
       the late-sender/rendezvous-stall frontier). *)
    let extra_bounds = Hashtbl.create 16 in
    let push_bound tr t =
      let prev = Option.value ~default:[] (Hashtbl.find_opt extra_bounds tr) in
      Hashtbl.replace extra_bounds tr (t :: prev)
    in
    Hashtbl.iter
      (fun m mt ->
        (match Hashtbl.find_opt send_tbl m with
        | Some (s : Obs.span) -> push_bound s.track mt
        | None -> ());
        match Hashtbl.find_opt recv_tbl m with
        | Some (r : Obs.span) -> push_bound r.track mt
        | None -> ())
      match_tbl;
    (* --- per-rank sweep --- *)
    let rank_phases = Hashtbl.create 16
    and rank_waits = Hashtbl.create 16
    and rank_cb = Hashtbl.create 16
    and rank_ivs = Hashtbl.create 16
    and rank_last = Hashtbl.create 16 (* latest closed-span end, for CP start *)
    and dt_tbl = Hashtbl.create 16 in
    List.iter
      (fun rank ->
        let items =
          List.filter_map
            (fun (sp : Obs.span) ->
              if sp.track <> rank then None
              else
                let a = ps_of_ns sp.t0 and b = ps_of_ns sp.t1 in
                if b <= a then None else item_of sp ~a ~b)
            spans
        in
        let bounds =
          List.concat
            [
              [ w0; w1 ];
              List.concat_map (fun it -> [ it.ia; it.ib ]) items;
              Option.value ~default:[] (Hashtbl.find_opt extra_bounds rank);
            ]
          |> List.filter (fun t -> t >= w0 && t <= w1)
          |> List.sort_uniq Int64.compare
        in
        let items_sorted =
          List.sort (fun x y -> Int64.compare x.ia y.ia) items
        in
        let phases = Array.make 6 0L
        and waits = Array.make 6 0L
        and cb = Array.make 2 0L
        and ivs = ref [] in
        let pending = ref items_sorted and active = ref [] in
        let rec bounds_loop = function
          | a :: (b :: _ as rest) ->
              (* admit items starting at or before [a], expire the done *)
              let rec admit () =
                match !pending with
                | it :: more when it.ia <= a ->
                    pending := more;
                    active := it :: !active;
                    admit ()
                | _ -> ()
              in
              admit ();
              active := List.filter (fun it -> it.ib > a) !active;
              let d = Int64.sub b a in
              if d > 0L then begin
                let top =
                  List.fold_left
                    (fun best it ->
                      match best with
                      | None -> Some it
                      | Some bi ->
                          if
                            it.prio > bi.prio
                            || (it.prio = bi.prio
                               && (it.ia, it.isp.Obs.sid)
                                  > (bi.ia, bi.isp.Obs.sid))
                          then Some it
                          else best)
                    None !active
                in
                let innermost_p2p =
                  List.fold_left
                    (fun best it ->
                      if it.prio <> 1 then best
                      else
                        match best with
                        | None -> Some it
                        | Some bi ->
                            if
                              (it.ia, it.isp.Obs.sid) > (bi.ia, bi.isp.Obs.sid)
                            then Some it
                            else best)
                    None !active
                in
                let phase, wclass, peer =
                  match top with
                  | None -> (Other, Wait_other, -1)
                  | Some it when it.prio = 1 ->
                      let owner =
                        match innermost_p2p with
                        | Some o -> o.isp
                        | None -> it.isp
                      in
                      let wc, peer = classify_wait ~rank ~a ~b owner in
                      (Wait, wc, peer)
                  | Some it -> (it.iphase, Wait_other, -1)
                in
                add phases (phase_idx phase) d;
                if phase = Wait then add waits (wait_idx wclass) d;
                (match top with
                | Some it when phase = Callback -> (
                    match it.isp.Obs.name with
                    | "pack_cb" -> add cb 0 d
                    | "unpack_cb" -> add cb 1 d
                    | _ -> ())
                | _ -> ());
                (* per-datatype attribution: the innermost covering p2p
                   op that carries a "dt" label *)
                (match
                   List.filter (fun it -> it.prio = 1) !active
                   |> List.sort (fun x y ->
                          compare (y.ia, y.isp.Obs.sid) (x.ia, x.isp.Obs.sid))
                   |> List.find_opt (fun it -> dt_of it.isp.Obs.args <> None)
                 with
                | Some it ->
                    let dt = Option.get (dt_of it.isp.Obs.args) in
                    let arr =
                      match Hashtbl.find_opt dt_tbl dt with
                      | Some arr -> arr
                      | None ->
                          let arr = Array.make 6 0L in
                          Hashtbl.add dt_tbl dt arr;
                          arr
                    in
                    add arr (phase_idx phase) d
                | None -> ());
                ivs := { va = a; vb = b; vphase = phase; vwait = wclass; vpeer = peer } :: !ivs
              end;
              bounds_loop rest
          | _ -> ()
        in
        bounds_loop bounds;
        Hashtbl.replace rank_phases rank phases;
        Hashtbl.replace rank_waits rank waits;
        Hashtbl.replace rank_cb rank cb;
        Hashtbl.replace rank_ivs rank
          (Array.of_list (List.rev !ivs));
        let last =
          List.fold_left
            (fun acc (sp : Obs.span) ->
              if sp.track = rank then max acc (ps_of_ns sp.t1) else acc)
            w0 spans
        in
        Hashtbl.replace rank_last rank last)
      ranks;
    (* --- critical path: backward walk from the window's end --- *)
    let cp_phases = Hashtbl.create 16 and cp_waits = Hashtbl.create 16 in
    List.iter
      (fun r ->
        Hashtbl.replace cp_phases r (Array.make 6 0L);
        Hashtbl.replace cp_waits r (Array.make 6 0L))
      ranks;
    let start_rank =
      List.fold_left
        (fun best r ->
          match best with
          | None -> Some r
          | Some b ->
              let lb = Hashtbl.find rank_last b and lr = Hashtbl.find rank_last r in
              if lr > lb then Some r else best)
        None ranks
      |> Option.get
    in
    (* find the interval of [ivs] containing (t - epsilon): the last
       interval with va < t.  The interval arrays tile [w0, w1]. *)
    let find_iv (ivs : iv array) t =
      let lo = ref 0 and hi = ref (Array.length ivs - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if ivs.(mid).va < t then lo := mid else hi := mid - 1
      done;
      ivs.(!lo)
    in
    let rank_mem = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace rank_mem r ()) ranks;
    let cur_rank = ref start_rank and cur_t = ref w1 in
    while !cur_t > w0 do
      let ivs = Hashtbl.find rank_ivs !cur_rank in
      if Array.length ivs = 0 then begin
        (* no activity recorded: charge the remainder as idle *)
        add (Hashtbl.find cp_phases !cur_rank) (phase_idx Other)
          (Int64.sub !cur_t w0);
        cur_t := w0
      end
      else begin
        let iv = find_iv ivs !cur_t in
        let seg = Int64.sub !cur_t iv.va in
        add (Hashtbl.find cp_phases !cur_rank) (phase_idx iv.vphase) seg;
        if iv.vphase = Wait then
          add (Hashtbl.find cp_waits !cur_rank) (wait_idx iv.vwait) seg;
        cur_t := iv.va;
        if iv.vphase = Wait && iv.vpeer >= 0 && Hashtbl.mem rank_mem iv.vpeer
        then cur_rank := iv.vpeer
      end
    done;
    let messages_total = Hashtbl.length mseq_set in
    let messages_joined =
      Hashtbl.fold
        (fun m () acc ->
          if Hashtbl.mem send_tbl m && Hashtbl.mem recv_tbl m then acc + 1
          else acc)
        mseq_set 0
    in
    {
      window_ps;
      window_t0_ns = !t_min;
      ranks =
        List.map
          (fun rank ->
            let cb = Hashtbl.find rank_cb rank in
            {
              rank;
              total_ps = window_ps;
              phases = pt_of (Hashtbl.find rank_phases rank);
              waits = wt_of (Hashtbl.find rank_waits rank);
              cb_pack_ps = cb.(0);
              cb_unpack_ps = cb.(1);
              cp_phases = pt_of (Hashtbl.find cp_phases rank);
              cp_waits = wt_of (Hashtbl.find cp_waits rank);
            })
          ranks;
      messages_total;
      messages_joined;
      datatypes =
        Hashtbl.fold (fun dt arr acc -> (dt, pt_of arr) :: acc) dt_tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
    }
  end

(* --- aggregates --- *)

let total_ns t =
  ns_of_ps (Int64.mul (Int64.of_int (List.length t.ranks)) t.window_ps)

let phase_ns t ph =
  ns_of_ps
    (List.fold_left
       (fun acc r -> Int64.add acc (pt_get r.phases ph))
       0L t.ranks)

let wait_class_ns t wc =
  ns_of_ps
    (List.fold_left (fun acc r -> Int64.add acc (wt_get r.waits wc)) 0L t.ranks)

let pack_share t =
  let tot = total_ns t in
  if tot <= 0. then 0.
  else
    let cb =
      List.fold_left
        (fun acc r -> Int64.add acc (Int64.add r.cb_pack_ps r.cb_unpack_ps))
        0L t.ranks
    in
    (phase_ns t Pack +. phase_ns t Unpack +. ns_of_ps cb) /. tot

let wait_share t =
  let tot = total_ns t in
  if tot <= 0. then 0. else phase_ns t Wait /. tot

(* --- exports --- *)

(* Exact decimal rendering of a ps quantity in ns (no float round
   trip): the JSON stays faithful to the Int64 attribution. *)
let ns_str ps = Printf.sprintf "%Ld.%03Ld" (Int64.div ps 1000L) (Int64.rem ps 1000L)

let phases_json pt =
  Printf.sprintf
    "{\"pack\":%s,\"wire\":%s,\"unpack\":%s,\"wait\":%s,\"callback\":%s,\"other\":%s}"
    (ns_str pt.pack) (ns_str pt.wire) (ns_str pt.unpack) (ns_str pt.wait)
    (ns_str pt.callback) (ns_str pt.other)

let waits_json wt =
  Printf.sprintf
    "{\"late_sender\":%s,\"late_receiver\":%s,\"barrier\":%s,\"rndv_stall\":%s,\"retransmit_stall\":%s,\"other\":%s}"
    (ns_str wt.late_sender) (ns_str wt.late_receiver) (ns_str wt.barrier)
    (ns_str wt.rndv_stall) (ns_str wt.retransmit_stall) (ns_str wt.wait_other)

let pt_add a b =
  {
    pack = Int64.add a.pack b.pack;
    wire = Int64.add a.wire b.wire;
    unpack = Int64.add a.unpack b.unpack;
    wait = Int64.add a.wait b.wait;
    callback = Int64.add a.callback b.callback;
    other = Int64.add a.other b.other;
  }

let wt_add a b =
  {
    late_sender = Int64.add a.late_sender b.late_sender;
    late_receiver = Int64.add a.late_receiver b.late_receiver;
    barrier = Int64.add a.barrier b.barrier;
    rndv_stall = Int64.add a.rndv_stall b.rndv_stall;
    retransmit_stall = Int64.add a.retransmit_stall b.retransmit_stall;
    wait_other = Int64.add a.wait_other b.wait_other;
  }

let pt_zero =
  { pack = 0L; wire = 0L; unpack = 0L; wait = 0L; callback = 0L; other = 0L }

let wt_zero =
  {
    late_sender = 0L;
    late_receiver = 0L;
    barrier = 0L;
    rndv_stall = 0L;
    retransmit_stall = 0L;
    wait_other = 0L;
  }

let pt_sum pts = List.fold_left pt_add pt_zero pts
let wt_sum wts = List.fold_left wt_add wt_zero wts

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"mpicd-profile/1\"";
  Buffer.add_string b
    (Printf.sprintf ",\"window_ns\":%s,\"window_t0_ns\":%s" (ns_str t.window_ps)
       (Json.number t.window_t0_ns));
  Buffer.add_string b ",\"ranks\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rank\":%d,\"total_ns\":%s,\"phases\":%s,\"waits\":%s,\"cb_pack_ns\":%s,\"cb_unpack_ns\":%s,\"critical_path\":{\"phases\":%s,\"waits\":%s}}"
           r.rank (ns_str r.total_ps) (phases_json r.phases)
           (waits_json r.waits) (ns_str r.cb_pack_ps) (ns_str r.cb_unpack_ps)
           (phases_json r.cp_phases) (waits_json r.cp_waits)))
    t.ranks;
  Buffer.add_string b "]";
  let cp_pt = pt_sum (List.map (fun r -> r.cp_phases) t.ranks)
  and cp_wt = wt_sum (List.map (fun r -> r.cp_waits) t.ranks) in
  let cp_total =
    Int64.add cp_pt.pack
      (Int64.add cp_pt.wire
         (Int64.add cp_pt.unpack
            (Int64.add cp_pt.wait (Int64.add cp_pt.callback cp_pt.other))))
  in
  Buffer.add_string b
    (Printf.sprintf
       ",\"critical_path\":{\"total_ns\":%s,\"phases\":%s,\"waits\":%s}"
       (ns_str cp_total) (phases_json cp_pt) (waits_json cp_wt));
  Buffer.add_string b
    (Printf.sprintf ",\"messages\":{\"total\":%d,\"joined\":%d}"
       t.messages_total t.messages_joined);
  Buffer.add_string b ",\"datatypes\":[";
  List.iteri
    (fun i (dt, pt) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"dt\":%s,\"phases\":%s}" (Json.quote dt)
           (phases_json pt)))
    t.datatypes;
  Buffer.add_string b "]}";
  Buffer.contents b

let pct part whole =
  if Int64.compare whole 0L <= 0 then 0.
  else 100. *. Int64.to_float part /. Int64.to_float whole

let report ?(top = 5) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "trace window: %.3f us, %d rank(s), %d message(s) (%d joined)\n"
       (ns_of_ps t.window_ps /. 1000.)
       (List.length t.ranks) t.messages_total t.messages_joined);
  Buffer.add_string b
    "\nper-rank phase attribution (% of rank time):\n\
    \  rank      pack      wire    unpack      wait  callback     other\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %4d  %7.2f%%  %7.2f%%  %7.2f%%  %7.2f%%  %7.2f%%  %7.2f%%\n"
           r.rank
           (pct r.phases.pack r.total_ps)
           (pct r.phases.wire r.total_ps)
           (pct r.phases.unpack r.total_ps)
           (pct r.phases.wait r.total_ps)
           (pct r.phases.callback r.total_ps)
           (pct r.phases.other r.total_ps)))
    t.ranks;
  let wt = wt_sum (List.map (fun r -> r.waits) t.ranks) in
  let wait_total =
    List.fold_left (fun acc r -> Int64.add acc r.phases.wait) 0L t.ranks
  in
  Buffer.add_string b "\nwait states (% of total wait time):\n";
  List.iter
    (fun wc ->
      let v = wt_get wt wc in
      if v > 0L then
        Buffer.add_string b
          (Printf.sprintf "  %-18s %10.3f us  %6.2f%%\n" (wait_class_name wc)
             (ns_of_ps v /. 1000.) (pct v wait_total)))
    all_wait_classes;
  if wait_total = 0L then Buffer.add_string b "  (no wait time)\n";
  let cp_pt = pt_sum (List.map (fun r -> r.cp_phases) t.ranks) in
  Buffer.add_string b "\ncritical path (% of window):\n";
  List.iter
    (fun ph ->
      let v = pt_get cp_pt ph in
      if v > 0L then
        Buffer.add_string b
          (Printf.sprintf "  %-18s %10.3f us  %6.2f%%\n" (phase_name ph)
             (ns_of_ps v /. 1000.) (pct v t.window_ps)))
    all_phases;
  Buffer.add_string b "\nper-rank critical-path share:\n";
  List.iter
    (fun r ->
      let v =
        Int64.add r.cp_phases.pack
          (Int64.add r.cp_phases.wire
             (Int64.add r.cp_phases.unpack
                (Int64.add r.cp_phases.wait
                   (Int64.add r.cp_phases.callback r.cp_phases.other))))
      in
      if v > 0L then
        Buffer.add_string b
          (Printf.sprintf "  rank %-4d %10.3f us  %6.2f%%\n" r.rank
             (ns_of_ps v /. 1000.) (pct v t.window_ps)))
    t.ranks;
  (* top-N datatypes by attributed op time *)
  let dt_cost (_, pt) =
    Int64.add pt.pack
      (Int64.add pt.wire
         (Int64.add pt.unpack
            (Int64.add pt.wait (Int64.add pt.callback pt.other))))
  in
  let dts =
    List.sort (fun a b -> Int64.compare (dt_cost b) (dt_cost a)) t.datatypes
  in
  if dts <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\ntop %d datatypes by attributed time:\n"
         (min top (List.length dts)));
    List.iteri
      (fun i ((dt, pt) as entry) ->
        if i < top then
          Buffer.add_string b
            (Printf.sprintf
               "  %-12s %10.3f us (pack %.3f us, wire %.3f us, wait %.3f us)\n"
               dt
               (ns_of_ps (dt_cost entry) /. 1000.)
               (ns_of_ps (Int64.add pt.pack pt.callback) /. 1000.)
               (ns_of_ps pt.wire /. 1000.)
               (ns_of_ps pt.wait /. 1000.)))
      dts
  end;
  Buffer.contents b

(* Integer-ns weight for flamegraph-collapsed output; flamegraph.pl
   wants integral sample counts. *)
let fold_w ps = Int64.div (Int64.add ps 500L) 1000L

let folded t =
  let b = Buffer.create 4096 in
  let line stack ps =
    let w = fold_w ps in
    if w > 0L then Buffer.add_string b (Printf.sprintf "%s %Ld\n" stack w)
  in
  List.iter
    (fun r ->
      List.iter
        (fun ph ->
          match ph with
          | Wait ->
              List.iter
                (fun wc ->
                  line
                    (Printf.sprintf "rank %d;wait;%s" r.rank
                       (wait_class_name wc))
                    (wt_get r.waits wc))
                all_wait_classes
          | _ ->
              line
                (Printf.sprintf "rank %d;%s" r.rank (phase_name ph))
                (pt_get r.phases ph))
        all_phases)
    t.ranks;
  List.iter
    (fun r ->
      List.iter
        (fun ph ->
          match ph with
          | Wait ->
              List.iter
                (fun wc ->
                  line
                    (Printf.sprintf "critical-path;rank %d;wait;%s" r.rank
                       (wait_class_name wc))
                    (wt_get r.cp_waits wc))
                all_wait_classes
          | _ ->
              line
                (Printf.sprintf "critical-path;rank %d;%s" r.rank
                   (phase_name ph))
                (pt_get r.cp_phases ph))
        all_phases)
    t.ranks;
  Buffer.contents b
