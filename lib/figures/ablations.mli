(** Ablation benchmarks: each sweeps one cost-model parameter or
    algorithm choice and shows the corresponding paper effect moving
    with it (see EXPERIMENTS.md, A1–A7). *)

module Report = Mpicd_harness.Report

val eager_limit_sweep : unit -> Report.series list
(** A1: the Fig. 7 manual-pack dip follows the eager→rendezvous
    switch point. *)

val iov_entry_sweep : unit -> Report.series list
(** A2: the Fig. 1 subvector-size crossover is created by the
    per-iov-entry cost. *)

val ddt_block_sweep : unit -> Report.series list
(** A3: the Fig. 5 derived-datatype gap scales with the per-typemap-
    block cost. *)

val barrier_scaling : unit -> Report.series list
(** A4: linear vs dissemination barrier over world sizes. *)

val objmsg_costs : unit -> int * string list list
(** A5: per-strategy message counts, peak memory and copy
    amplification for one large Python object. *)

val print_objmsg_costs : unit -> unit

val print_threading : unit -> unit
(** A6: §VI's multithreaded tag-space hazard and locking overhead. *)

val print_device : unit -> unit
(** A7: §VI's accelerator-memory staging vs device pack kernels. *)

val profile_shares : ?kernel:string -> unit -> string * string list list
(** A8: per-method phase attribution from the wait-state profiler
    ({!Mpicd_obs.Profile}) on one DDTBench kernel (default
    [NAS_MG_x]): bandwidth, pack-time share, wait-time share and the
    dominant wait classes.  Returns the kernel name and table rows. *)

val print_profile_shares : unit -> unit

val all : (string * string * string * (unit -> Report.series list)) list
