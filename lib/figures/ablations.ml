(* Ablation benchmarks for the design choices DESIGN.md calls out:
   each sweeps one cost-model parameter or algorithm choice and shows
   how the headline effects move with it. *)

module Buf = Mpicd_buf.Buf
module Config = Mpicd_simnet.Config
module Engine = Mpicd_simnet.Engine
module Mpi = Mpicd.Mpi
module Coll = Mpicd_collectives.Collectives
module P = Mpicd_pickle.Pickle
module Objmsg = Mpicd_objmsg.Objmsg
module H = Mpicd_harness.Harness
module Report = Mpicd_harness.Report
module B = Mpicd_bench_types.Bench_types

let reps = 4

(* A1: the Fig. 7 dip is the eager->rendezvous switch: sweeping the
   eager limit moves the dip. *)
let eager_limit_sweep () =
  let sizes = List.init 10 (fun i -> 1 lsl (i + 12)) in
  List.map
    (fun limit ->
      let config =
        { Config.default with link = { Config.default.link with eager_limit = limit } }
      in
      {
        Report.label = Printf.sprintf "manual-pack(eager<=%s)" (Report.human_bytes limit);
        points =
          List.map
            (fun n ->
              let count = B.Struct_simple.count_for_packed_bytes n in
              let bytes = count * B.Struct_simple.packed_elem_size in
              ( n,
                (H.pingpong ~config ~reps ~bytes
                   (Methods.st_manual (module B.Struct_simple) ~count))
                  .bandwidth_mib_s ))
            sizes;
      })
    [ 8 * 1024; 32 * 1024; 128 * 1024 ]

(* A2: the custom path's sensitivity to the per-iov-entry cost (the
   Fig. 1 small-subvector penalty). *)
let iov_entry_sweep () =
  let total = 1 lsl 20 in
  let subvecs = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  List.map
    (fun entry_ns ->
      let config =
        {
          Config.default with
          link = { Config.default.link with iov_entry_ns = float_of_int entry_ns };
        }
      in
      {
        Report.label = Printf.sprintf "custom(iov=%dns/entry)" entry_ns;
        points =
          List.map
            (fun subvec ->
              ( subvec,
                (H.pingpong ~config ~reps ~bytes:total
                   (Methods.dv_custom ~subvec ~total))
                  .bandwidth_mib_s ))
            subvecs;
      })
    [ 0; 120; 480 ]

(* A3: the per-typemap-block cost drives the Fig. 5 gap between the
   derived-datatype baseline and everything else. *)
let ddt_block_sweep () =
  let sizes = List.init 9 (fun i -> 1 lsl (i + 8)) in
  List.map
    (fun block_ns ->
      let config =
        {
          Config.default with
          cpu = { Config.default.cpu with ddt_block_ns = float_of_int block_ns };
        }
      in
      {
        Report.label = Printf.sprintf "rsmpi(ddt=%dns/block)" block_ns;
        points =
          List.map
            (fun n ->
              let count = B.Struct_simple.count_for_packed_bytes n in
              let bytes = count * B.Struct_simple.packed_elem_size in
              ( n,
                (H.pingpong ~config ~reps ~bytes
                   (Methods.st_rsmpi (module B.Struct_simple) ~count))
                  .latency_us ))
            sizes;
      })
    [ 0; 5; 18; 45 ]

(* A4: barrier algorithms across world sizes. *)
let barrier_scaling () =
  let time_of nranks f =
    let w = Mpi.create_world ~size:nranks () in
    let t = ref 0. in
    Mpi.run w (fun comm ->
        (* warm up, then time one barrier *)
        f comm;
        let t0 = Engine.now (Mpi.world_engine w) in
        f comm;
        if Mpi.rank comm = 0 then t := Engine.now (Mpi.world_engine w) -. t0);
    !t /. 1000.
  in
  let ranks = [ 2; 4; 8; 16; 32; 64 ] in
  [
    {
      Report.label = "linear-barrier";
      points = List.map (fun n -> (n, time_of n Mpi.barrier)) ranks;
    };
    {
      Report.label = "dissemination-barrier";
      points = List.map (fun n -> (n, time_of n Coll.barrier)) ranks;
    };
  ]

(* A5: message counts and peak memory per object strategy (the §VI
   discussion quantified). *)
let objmsg_costs () =
  let obj_of bytes =
    P.List
      (List.init (max 1 (bytes / (128 * 1024))) (fun _ ->
           P.Ndarray (P.ndarray ~dtype:P.U8 [| 128 * 1024 |])))
  in
  let strategies =
    [ Objmsg.Pickle_basic; Objmsg.Pickle_oob; Objmsg.Pickle_oob_cdt ]
  in
  let bytes = 8 * 1024 * 1024 in
  let rows =
    List.map
      (fun strategy ->
        let w = Mpi.create_world ~size:2 () in
        let obj = obj_of bytes in
        Mpi.run w (fun comm ->
            if Mpi.rank comm = 0 then Objmsg.send strategy comm ~dst:1 ~tag:0 obj
            else ignore (Objmsg.recv strategy comm ~source:0 ~tag:0 ()));
        let stats = Mpi.world_stats w in
        [
          Objmsg.strategy_name strategy;
          string_of_int stats.messages_sent;
          Printf.sprintf "%.2f"
            (float_of_int stats.peak_alloc_bytes /. float_of_int bytes);
          Printf.sprintf "%.2f"
            (float_of_int stats.bytes_copied /. float_of_int bytes);
        ])
      strategies
  in
  (bytes, rows)

(* A6: the §VI multithreading claim, quantified: per-communicator
   locking vs the single-operation custom datatype path. *)
let print_threading () =
  let module T = Mpicd_objmsg.Threaded in
  let run mode nthreads =
    T.run mode ~nthreads ~objects_per_thread:8 ~arrays_per_object:4
      ~chunk_bytes:4096
  in
  let rows =
    List.concat_map
      (fun nthreads ->
        List.map
          (fun mode ->
            let o = run mode nthreads in
            [
              string_of_int nthreads;
              T.mode_name mode;
              Printf.sprintf "%.1f" o.T.elapsed_us;
              string_of_int o.T.corrupted;
              string_of_int o.T.messages;
            ])
          [ T.Oob_locked; T.Oob_unlocked; T.Cdt_tagged ])
      [ 1; 2; 4; 8 ]
  in
  Report.print_kv_table
    ~title:
      "Ablation A6: multithreaded senders (8 objects/thread, 4x4KiB arrays)"
    ~header:[ "threads"; "mode"; "elapsed us"; "corrupted"; "messages" ]
    rows

(* A7: device-resident buffers (§VI accelerator discussion): host
   staging vs device pack kernels vs direct NIC access, on real kernel
   layouts. *)
let print_device () =
  let module D = Mpicd_device.Device in
  let module Kernel = Mpicd_ddtbench.Kernel in
  let kernels = [ "NAS_LU_x"; "NAS_LU_y"; "NAS_MG_x"; "NAS_MG_y" ] in
  let rows =
    List.filter_map
      (fun name ->
        Option.map
          (fun (module K : Kernel.KERNEL) ->
            let bw m =
              (H.pingpong ~reps ~bytes:K.wire_bytes
                 (D.exchange_impl m ~blocks:K.blocks ~slab_bytes:K.slab_bytes))
                .H.bandwidth_mib_s
            in
            name
            :: Report.human_bytes K.wire_bytes
            :: List.map
                 (fun m -> Printf.sprintf "%.0f" (bw m))
                 [ D.Staged_host_pack; D.Device_pack_staged; D.Device_pack_direct ])
          (Mpicd_ddtbench.Registry.find name))
      kernels
  in
  Report.print_kv_table
    ~title:"Ablation A7: device-resident halo exchange (MiB/s)"
    ~header:
      [ "kernel"; "size"; "staged-host-pack"; "device-pack-staged"; "device-pack-direct" ]
    rows

(* A8: where the time actually goes per transfer method, from the
   wait-state profiler: pack-time share (pack + unpack phases plus
   their callback time) and wait-time share of total rank time, plus
   the dominant wait classes, all on one DDTBench kernel. *)
let profile_shares ?(kernel = "NAS_MG_x") () =
  let module Kernel = Mpicd_ddtbench.Kernel in
  let module Profile = Mpicd_obs.Profile in
  match Mpicd_ddtbench.Registry.find kernel with
  | None -> (kernel, [])
  | Some (module K : Kernel.KERNEL) ->
      let k = (module K : Kernel.KERNEL) in
      let methods =
        [
          ("reference", Some (Methods.k_reference k));
          ("manual-pack", Some (Methods.k_manual k));
          ("mpi-ddt", Some (Methods.k_ddt_direct k));
          ("mpi-pack-ddt", Some (Methods.k_ddt_pack k));
          ("custom-pack", Some (Methods.k_custom_pack k));
          ( "custom-regions",
            match Methods.k_custom_regions k () with
            | None -> None
            | Some _ ->
                Some (fun () -> Option.get (Methods.k_custom_regions k ())) );
        ]
      in
      ( K.name,
        List.map
          (fun (name, make) ->
            match make with
            | None -> [ name; "-"; "-"; "-"; "-"; "-" ]
            | Some make ->
                let r, p = H.pingpong_profiled ~reps ~bytes:K.wire_bytes make in
                [
                  name;
                  Printf.sprintf "%.0f" r.H.bandwidth_mib_s;
                  Printf.sprintf "%.1f%%" (100. *. Profile.pack_share p);
                  Printf.sprintf "%.1f%%" (100. *. Profile.wait_share p);
                  Printf.sprintf "%.1f"
                    (Profile.wait_class_ns p Profile.Late_sender /. 1000.);
                  Printf.sprintf "%.1f"
                    (Profile.wait_class_ns p Profile.Rndv_stall /. 1000.);
                ])
          methods )

let print_profile_shares () =
  let kernel, rows = profile_shares () in
  Report.print_kv_table
    ~title:
      (Printf.sprintf
         "Ablation A8: per-method time attribution on %s (wait-state profiler)"
         kernel)
    ~header:
      [ "method"; "MiB/s"; "pack share"; "wait share"; "late-sender us"; "rndv-stall us" ]
    rows

let print_objmsg_costs () =
  let bytes, rows = objmsg_costs () in
  Report.print_kv_table
    ~title:
      (Printf.sprintf
         "Ablation A5: per-strategy costs for one %s Python object"
         (Report.human_bytes bytes))
    ~header:[ "strategy"; "MPI messages"; "peak mem / payload"; "copies / payload" ]
    rows

let all : (string * string * string * (unit -> Report.series list)) list =
  [
    ("ablation-eager", "Ablation A1: eager-limit sweep (struct-simple manual-pack)", "MiB/s", eager_limit_sweep);
    ("ablation-iov", "Ablation A2: iov entry cost vs subvector size (double-vec custom, 1 MiB)", "MiB/s", iov_entry_sweep);
    ("ablation-ddt", "Ablation A3: ddt per-block cost (struct-simple rsmpi latency)", "latency us", ddt_block_sweep);
    ("ablation-barrier", "Ablation A4: barrier scaling (time per barrier)", "us", barrier_scaling);
  ]
