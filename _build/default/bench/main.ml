(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (plus the ablations), and optionally runs Bechamel
   micro-benchmarks of the real CPU-side packing work.

   Usage:
     bench/main.exe                 run everything (Table I, Figs 1-10, ablations)
     bench/main.exe fig3 fig10      run selected artifacts
     bench/main.exe micro           run the Bechamel pack/unpack micro-benches
     bench/main.exe --csv DIR ...   also write CSVs into DIR *)

module Report = Mpicd_harness.Report
module Figures = Mpicd_figures.Fig_rust
module Python = Mpicd_figures.Fig_python
module Ddt = Mpicd_figures.Fig_ddtbench
module Ablations = Mpicd_figures.Ablations

let series_figures = Figures.all @ Python.all @ Ablations.all

let run_series ?csv_dir (key, title, ylabel, f) =
  let series = f () in
  Report.print ~ylabel ~title ~xlabel:"size" series;
  match csv_dir with
  | None -> ()
  | Some dir ->
      Report.to_csv ~path:(Filename.concat dir (key ^ ".csv")) ~xlabel:"size"
        series

let run_one ?csv_dir key =
  match key with
  | "table1" -> Ddt.print_table1 ()
  | "fig10" ->
      Ddt.print_fig10 ();
      Option.iter
        (fun dir -> Ddt.fig10_csv ~path:(Filename.concat dir "fig10.csv") ())
        csv_dir
  | "fig10-extras" ->
      Ddt.print_fig10 ~kernels:Mpicd_ddtbench.Registry.extra_kernels ()
  | "ablation-objmsg" -> Ablations.print_objmsg_costs ()
  | "ablation-threads" -> Ablations.print_threading ()
  | "ablation-device" -> Ablations.print_device ()
  | key -> (
      match List.find_opt (fun (k, _, _, _) -> k = key) series_figures with
      | Some fig -> run_series ?csv_dir fig
      | None ->
          Printf.eprintf "unknown benchmark %S\n" key;
          exit 2)

let all_keys =
  [ "table1" ]
  @ List.map (fun (k, _, _, _) -> k) (Figures.all @ Python.all)
  @ [ "fig10"; "fig10-extras" ]
  @ List.map (fun (k, _, _, _) -> k) Ablations.all
  @ [ "ablation-objmsg"; "ablation-threads"; "ablation-device" ]

(* --- Bechamel micro-benchmarks of the real (host CPU) packing work:
   one Test.make per serialization path, run on actual buffers. *)

let micro_tests () =
  let open Bechamel in
  let module B = Mpicd_bench_types.Bench_types in
  let module Buf = Mpicd_buf.Buf in
  let module Dt = Mpicd_datatype.Datatype in
  let module Blocks = Mpicd_ddtbench.Blocks in
  let count = 64 in
  let src = B.Struct_simple.generate ~count in
  let packed = Buf.create (count * B.Struct_simple.packed_elem_size) in
  let sv_src = B.Struct_vec.generate ~count:4 in
  let sv_packed = Buf.create (4 * B.Struct_vec.packed_elem_size) in
  let dv = B.Double_vec.generate ~subvec_bytes:1024 ~total_bytes:(64 * 1024) in
  let dv_packed = Buf.create (B.Double_vec.manual_pack_size dv) in
  let module LU = (val Option.get (Mpicd_ddtbench.Registry.find "NAS_LU_y")) in
  let lu_src = LU.create () in
  let lu_dst = Buf.create LU.wire_bytes in
  let obj =
    Mpicd_pickle.Pickle.(
      List (List.init 8 (fun _ -> Ndarray (ndarray ~dtype:U8 [| 4096 |]))))
  in
  Test.make_grouped ~name:"pack" ~fmt:"%s/%s"
    [
      Test.make ~name:"struct-simple-manual"
        (Staged.stage (fun () -> B.Struct_simple.manual_pack src ~count ~dst:packed));
      Test.make ~name:"struct-simple-ddt"
        (Staged.stage (fun () ->
             ignore (Dt.pack B.Struct_simple.derived ~count ~src ~dst:packed)));
      Test.make ~name:"struct-vec-manual"
        (Staged.stage (fun () ->
             B.Struct_vec.manual_pack sv_src ~count:4 ~dst:sv_packed));
      Test.make ~name:"double-vec-manual"
        (Staged.stage (fun () -> B.Double_vec.manual_pack dv ~dst:dv_packed));
      Test.make ~name:"nas-lu-y-manual"
        (Staged.stage (fun () -> LU.manual_pack lu_src ~dst:lu_dst));
      Test.make ~name:"nas-lu-y-cursor"
        (Staged.stage (fun () ->
             ignore (Blocks.pack_range LU.blocks ~base:lu_src ~offset:0 ~dst:lu_dst)));
      Test.make ~name:"pickle-dumps-inband"
        (Staged.stage (fun () -> ignore (Mpicd_pickle.Pickle.dumps obj)));
      Test.make ~name:"pickle-dumps-oob"
        (Staged.stage (fun () -> ignore (Mpicd_pickle.Pickle.dumps_oob obj)));
    ]

let micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-36s %14s\n" "micro-benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 52 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (est :: _) -> Printf.printf "%-36s %14.1f\n" name est
         | _ -> Printf.printf "%-36s %14s\n" name "n/a")

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let csv_dir = ref None in
  let keys = ref [] in
  let rec parse = function
    | [] -> ()
    | "--csv" :: dir :: rest ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        csv_dir := Some dir;
        parse rest
    | k :: rest ->
        keys := k :: !keys;
        parse rest
  in
  parse args;
  match List.rev !keys with
  | [ "micro" ] -> micro ()
  | [] ->
      Printf.printf "mpicd benchmark suite — regenerating all paper artifacts\n";
      Format.printf "(cost model: %a)@.@." Mpicd_simnet.Config.pp
        Mpicd_simnet.Config.default;
      List.iter (fun k -> run_one ?csv_dir:!csv_dir k) all_keys;
      micro ()
  | keys -> List.iter (fun k -> run_one ?csv_dir:!csv_dir k) keys
