(* Tests for the paper's §V-A benchmark types. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module B = Mpicd_bench_types.Bench_types

let check_int = Alcotest.(check int)

(* --- double-vec --- *)

let test_dv_generate_shapes () =
  let t = B.Double_vec.generate ~subvec_bytes:1024 ~total_bytes:4096 in
  check_int "four subvectors" 4 (Array.length t);
  check_int "total" 4096 (B.Double_vec.total_bytes t);
  (* message smaller than subvector: single subvector of message size *)
  let small = B.Double_vec.generate ~subvec_bytes:1024 ~total_bytes:256 in
  check_int "one subvector" 1 (Array.length small);
  check_int "of message size" 256 (Buf.length small.(0))

let test_dv_manual_roundtrip () =
  let t = B.Double_vec.generate ~subvec_bytes:100 ~total_bytes:700 in
  let packed = Buf.create (B.Double_vec.manual_pack_size t) in
  B.Double_vec.manual_pack t ~dst:packed;
  let sink = B.Double_vec.make_sink ~subvec_bytes:100 ~total_bytes:700 in
  B.Double_vec.manual_unpack ~src:packed sink;
  Alcotest.(check bool) "equal" true (B.Double_vec.equal t sink)

let test_dv_manual_shape_mismatch () =
  let t = B.Double_vec.generate ~subvec_bytes:100 ~total_bytes:300 in
  let packed = Buf.create (B.Double_vec.manual_pack_size t) in
  B.Double_vec.manual_pack t ~dst:packed;
  let wrong = B.Double_vec.make_sink ~subvec_bytes:100 ~total_bytes:200 in
  match B.Double_vec.manual_unpack ~src:packed wrong with
  | () -> Alcotest.fail "expected mismatch"
  | exception Invalid_argument _ -> ()

let test_dv_custom_over_mpi () =
  let w = Mpi.create_world ~size:2 () in
  let src = B.Double_vec.generate ~subvec_bytes:512 ~total_bytes:8192 in
  let sink = B.Double_vec.make_sink ~subvec_bytes:512 ~total_bytes:8192 in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0
          (Mpi.Custom { dt = B.Double_vec.custom_dt; obj = src; count = 1 })
      else begin
        let st =
          Mpi.recv comm
            (Mpi.Custom { dt = B.Double_vec.custom_dt; obj = sink; count = 1 })
        in
        (* 16 subvectors: 64B header + 8192B regions *)
        check_int "wire bytes" (64 + 8192) st.len
      end);
  Alcotest.(check bool) "delivered" true (B.Double_vec.equal src sink)

let test_dv_custom_zero_copy () =
  let w = Mpi.create_world ~size:2 () in
  let stats = Mpi.world_stats w in
  let total = 1 lsl 20 in
  let src = B.Double_vec.generate ~subvec_bytes:4096 ~total_bytes:total in
  let sink = B.Double_vec.make_sink ~subvec_bytes:4096 ~total_bytes:total in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0
          (Mpi.Custom { dt = B.Double_vec.custom_dt; obj = src; count = 1 })
      else
        ignore
          (Mpi.recv comm
             (Mpi.Custom { dt = B.Double_vec.custom_dt; obj = sink; count = 1 })));
  Alcotest.(check bool) "payload not CPU-copied" true
    (stats.bytes_copied < total / 100)

(* --- struct types (generic checks over the three modules) --- *)

let struct_cases : (string * (module B.STRUCT)) list =
  [
    ("struct-vec", (module B.Struct_vec));
    ("struct-simple", (module B.Struct_simple));
    ("struct-simple-no-gap", (module B.Struct_simple_no_gap));
  ]

let test_struct_sizes () =
  check_int "struct-vec sizeof" 8216 B.Struct_vec.sizeof;
  check_int "struct-vec packed" 8212 B.Struct_vec.packed_elem_size;
  check_int "struct-simple sizeof" 24 B.Struct_simple.sizeof;
  check_int "struct-simple packed" 20 B.Struct_simple.packed_elem_size;
  check_int "no-gap sizeof" 16 B.Struct_simple_no_gap.sizeof;
  check_int "no-gap packed" 16 B.Struct_simple_no_gap.packed_elem_size

let test_struct_manual_roundtrip () =
  List.iter
    (fun (name, (module S : B.STRUCT)) ->
      let count = 5 in
      let src = S.generate ~count in
      let packed = Buf.create (count * S.packed_elem_size) in
      S.manual_pack src ~count ~dst:packed;
      let sink = S.make_sink ~count in
      S.manual_unpack ~src:packed sink ~count;
      Alcotest.(check bool) (name ^ " manual roundtrip") true
        (S.equal_elems src sink ~count))
    struct_cases

let test_struct_custom_over_mpi () =
  List.iter
    (fun (name, (module S : B.STRUCT)) ->
      let count = 3 in
      let w = Mpi.create_world ~size:2 () in
      let src = S.generate ~count in
      let sink = S.make_sink ~count in
      Mpi.run w (fun comm ->
          if Mpi.rank comm = 0 then
            Mpi.send comm ~dst:1 ~tag:0
              (Mpi.Custom { dt = S.custom_dt; obj = src; count })
          else
            ignore
              (Mpi.recv comm (Mpi.Custom { dt = S.custom_dt; obj = sink; count })));
      Alcotest.(check bool) (name ^ " custom roundtrip") true
        (S.equal_elems src sink ~count))
    struct_cases

let test_struct_derived_over_mpi () =
  List.iter
    (fun (name, (module S : B.STRUCT)) ->
      let count = 4 in
      let w = Mpi.create_world ~size:2 () in
      let src = S.generate ~count in
      let sink = S.make_sink ~count in
      Mpi.run w (fun comm ->
          if Mpi.rank comm = 0 then
            Mpi.send comm ~dst:1 ~tag:0
              (Mpi.Typed { dt = S.derived; count; base = src })
          else
            ignore
              (Mpi.recv comm (Mpi.Typed { dt = S.derived; count; base = sink })));
      Alcotest.(check bool) (name ^ " derived roundtrip") true
        (S.equal_elems src sink ~count))
    struct_cases

let test_methods_agree_on_wire_content () =
  (* custom and manual-pack must deliver the same element bytes *)
  let count = 2 in
  let src = B.Struct_simple.generate ~count in
  let packed = Buf.create (count * B.Struct_simple.packed_elem_size) in
  B.Struct_simple.manual_pack src ~count ~dst:packed;
  let sink1 = B.Struct_simple.make_sink ~count in
  B.Struct_simple.manual_unpack ~src:packed sink1 ~count;
  let w = Mpi.create_world ~size:2 () in
  let sink2 = B.Struct_simple.make_sink ~count in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0
          (Mpi.Custom { dt = B.Struct_simple.custom_dt; obj = src; count })
      else
        ignore
          (Mpi.recv comm
             (Mpi.Custom { dt = B.Struct_simple.custom_dt; obj = sink2; count })));
  Alcotest.(check bool) "agree" true
    (B.Struct_simple.equal_elems sink1 sink2 ~count)

let test_no_gap_custom_needs_no_packing () =
  (* whole-region type: a send must invoke zero pack callbacks *)
  let w = Mpi.create_world ~size:2 () in
  let stats = Mpi.world_stats w in
  let count = 10 in
  let src = B.Struct_simple_no_gap.generate ~count in
  let sink = B.Struct_simple_no_gap.make_sink ~count in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0
          (Mpi.Custom { dt = B.Struct_simple_no_gap.custom_dt; obj = src; count })
      else
        ignore
          (Mpi.recv comm
             (Mpi.Custom
                { dt = B.Struct_simple_no_gap.custom_dt; obj = sink; count })));
  check_int "no pack callbacks" 0 stats.pack_callbacks;
  Alcotest.(check bool) "delivered" true
    (B.Struct_simple_no_gap.equal_elems src sink ~count)

let test_count_for_packed_bytes () =
  check_int "struct-vec at 32K" 3 (B.Struct_vec.count_for_packed_bytes (1 lsl 15));
  check_int "at least 1" 1 (B.Struct_vec.count_for_packed_bytes 10)

(* --- harness --- *)

module H = Mpicd_harness.Harness
module Report = Mpicd_harness.Report

let bytes_impl n () =
  let src = Buf.create n and dst = Buf.create n in
  {
    H.send = (fun comm ~dst:d ~tag -> Mpi.send comm ~dst:d ~tag (Mpi.Bytes src));
    H.recv =
      (fun comm ~source ~tag ->
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes dst)));
  }

let test_harness_pingpong () =
  let r = H.pingpong ~bytes:4096 (bytes_impl 4096) in
  Alcotest.(check bool) "latency positive" true (r.latency_us > 0.);
  Alcotest.(check bool) "bandwidth positive" true (r.bandwidth_mib_s > 0.);
  check_int "bytes recorded" 4096 r.bytes

let test_harness_deterministic () =
  let a = H.pingpong ~bytes:1024 (bytes_impl 1024) in
  let b = H.pingpong ~bytes:1024 (bytes_impl 1024) in
  Alcotest.(check (float 0.)) "same latency" a.latency_us b.latency_us

let test_harness_monotone () =
  let small = H.pingpong ~bytes:64 (bytes_impl 64) in
  let big = H.pingpong ~bytes:(1 lsl 20) (bytes_impl (1 lsl 20)) in
  Alcotest.(check bool) "bigger is slower" true
    (big.latency_us > small.latency_us)

let test_report_render () =
  let s1 = { Report.label = "custom"; points = [ (64, 1.5); (128, 2.0) ] } in
  let s2 = { Report.label = "packed"; points = [ (64, 1.7) ] } in
  let out = Report.render ~title:"Fig" ~xlabel:"size" [ s1; s2 ] in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has title" true (contains "=== Fig ===");
  Alcotest.(check bool) "has labels" true (contains "custom" && contains "packed");
  Alcotest.(check bool) "missing point dashed" true (contains "-")

let test_csv_roundtrip () =
  let s1 = { Report.label = "a"; points = [ (64, 1.5); (128, 2.25) ] } in
  let s2 = { Report.label = "b"; points = [ (128, 3.5) ] } in
  let path = Filename.temp_file "mpicd" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.to_csv ~path ~xlabel:"size" [ s1; s2 ];
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      match List.rev !lines with
      | [ header; r1; r2 ] ->
          Alcotest.(check string) "header" "size,a,b" header;
          Alcotest.(check bool) "row 64" true
            (String.length r1 > 0 && String.sub r1 0 3 = "64,");
          Alcotest.(check bool) "row 128 has both" true
            (String.split_on_char ',' r2 |> List.length = 3)
      | _ -> Alcotest.fail "expected 3 lines")

let test_human_bytes () =
  Alcotest.(check string) "1K" "1K" (Report.human_bytes 1024);
  Alcotest.(check string) "1M" "1M" (Report.human_bytes (1 lsl 20));
  Alcotest.(check string) "odd" "3000" (Report.human_bytes 3000);
  Alcotest.(check string) "64" "64" (Report.human_bytes 64)

let suite =
  let tc = Alcotest.test_case in
  ( "bench_types",
    [
      tc "double-vec shapes" `Quick test_dv_generate_shapes;
      tc "double-vec manual roundtrip" `Quick test_dv_manual_roundtrip;
      tc "double-vec manual shape mismatch" `Quick test_dv_manual_shape_mismatch;
      tc "double-vec custom over MPI" `Quick test_dv_custom_over_mpi;
      tc "double-vec custom zero copy" `Quick test_dv_custom_zero_copy;
      tc "struct sizes match paper" `Quick test_struct_sizes;
      tc "struct manual roundtrips" `Quick test_struct_manual_roundtrip;
      tc "struct custom over MPI" `Quick test_struct_custom_over_mpi;
      tc "struct derived over MPI" `Quick test_struct_derived_over_mpi;
      tc "methods agree on content" `Quick test_methods_agree_on_wire_content;
      tc "no-gap custom needs no packing" `Quick test_no_gap_custom_needs_no_packing;
      tc "count_for_packed_bytes" `Quick test_count_for_packed_bytes;
      tc "harness pingpong" `Quick test_harness_pingpong;
      tc "harness deterministic" `Quick test_harness_deterministic;
      tc "harness monotone" `Quick test_harness_monotone;
      tc "report render" `Quick test_report_render;
      tc "csv roundtrip" `Quick test_csv_roundtrip;
      tc "human bytes" `Quick test_human_bytes;
    ] )
