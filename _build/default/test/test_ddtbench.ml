(* Tests for the DDTBench kernels: every kernel, every transfer method,
   same bytes. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module Blocks = Mpicd_ddtbench.Blocks
module Kernel = Mpicd_ddtbench.Kernel
module Registry = Mpicd_ddtbench.Registry

let check_int = Alcotest.(check int)

(* --- Blocks --- *)

let sample_blocks = Blocks.of_list [ (10, 4); (20, 8); (3, 2); (40, 1) ]

let test_blocks_total () =
  check_int "total" 15 (Blocks.total sample_blocks);
  check_int "count" 4 (Blocks.count sample_blocks)

let test_blocks_pack_matches_manual () =
  let base = Buf.create 64 in
  for i = 0 to 63 do
    Buf.set_u8 base i i
  done;
  let dst = Buf.create 15 in
  ignore (Blocks.pack_range sample_blocks ~base ~offset:0 ~dst);
  let expect = [ 10; 11; 12; 13; 20; 21; 22; 23; 24; 25; 26; 27; 3; 4; 40 ] in
  List.iteri (fun i v -> check_int "byte" v (Buf.get_u8 dst i)) expect

let test_blocks_fragmented_equals_whole () =
  let base = Buf.create 64 in
  Mpicd_ddtbench.Kernel.fill base;
  let whole = Buf.create 15 in
  ignore (Blocks.pack_range sample_blocks ~base ~offset:0 ~dst:whole);
  for frag = 1 to 15 do
    let out = Buf.create 15 in
    let off = ref 0 in
    while !off < 15 do
      let len = min frag (15 - !off) in
      let n =
        Blocks.pack_range sample_blocks ~base ~offset:!off
          ~dst:(Buf.sub out ~pos:!off ~len)
      in
      assert (n = len);
      off := !off + len
    done;
    Alcotest.(check bool)
      (Printf.sprintf "frag=%d" frag)
      true (Buf.equal whole out)
  done

let test_blocks_unpack_roundtrip () =
  let base = Buf.create 64 in
  Mpicd_ddtbench.Kernel.fill base;
  let packed = Buf.create 15 in
  ignore (Blocks.pack_range sample_blocks ~base ~offset:0 ~dst:packed);
  let sink = Buf.create 64 in
  (* unpack in awkward fragments *)
  let off = ref 0 in
  while !off < 15 do
    let len = min 4 (15 - !off) in
    Blocks.unpack_range sample_blocks ~base:sink ~offset:!off
      ~src:(Buf.sub packed ~pos:!off ~len);
    off := !off + len
  done;
  Alcotest.(check bool) "typed equal" true
    (Blocks.equal_typed sample_blocks base sink)

let test_blocks_past_end () =
  let base = Buf.create 64 in
  check_int "zero past end" 0
    (Blocks.pack_range sample_blocks ~base ~offset:15 ~dst:(Buf.create 8))

let test_blocks_regions_alias () =
  let base = Buf.create 64 in
  let regs = Blocks.regions sample_blocks ~base in
  check_int "count" 4 (Array.length regs);
  Array.iter
    (fun r -> Alcotest.(check bool) "aliases slab" true (Buf.overlaps r base))
    regs

(* --- kernels: exhaustive per-kernel method agreement --- *)

let for_each_kernel f =
  List.iter (fun (module K : Kernel.KERNEL) -> f (module K : Kernel.KERNEL)) Registry.all

let test_manual_roundtrip () =
  for_each_kernel (fun (module K) ->
      let src = K.create () in
      let packed = Buf.create K.wire_bytes in
      K.manual_pack src ~dst:packed;
      let sink = K.create_sink () in
      K.manual_unpack ~src:packed sink;
      Alcotest.(check bool) (K.name ^ " manual roundtrip") true (K.equal src sink))

let test_manual_matches_blocks () =
  (* The hand-written loop nests must produce the same packed stream as
     the block cursor (and hence the custom pack callbacks). *)
  for_each_kernel (fun (module K) ->
      let src = K.create () in
      let manual = Buf.create K.wire_bytes in
      K.manual_pack src ~dst:manual;
      let cursor = Buf.create K.wire_bytes in
      ignore (Blocks.pack_range K.blocks ~base:src ~offset:0 ~dst:cursor);
      Alcotest.(check bool) (K.name ^ " manual = cursor") true
        (Buf.equal manual cursor))

let test_derived_matches_manual () =
  (* The derived datatype's pack must match the manual pack stream. *)
  for_each_kernel (fun (module K) ->
      let src = K.create () in
      let manual = Buf.create K.wire_bytes in
      K.manual_pack src ~dst:manual;
      let viaddt = Buf.create K.wire_bytes in
      ignore (Dt.pack K.derived ~count:1 ~src ~dst:viaddt);
      Alcotest.(check bool) (K.name ^ " ddt = manual") true
        (Buf.equal manual viaddt))

let test_derived_over_mpi () =
  for_each_kernel (fun (module K) ->
      let w = Mpi.create_world ~size:2 () in
      let src = K.create () and sink = K.create_sink () in
      Mpi.run w (fun comm ->
          if Mpi.rank comm = 0 then
            Mpi.send comm ~dst:1 ~tag:0
              (Mpi.Typed { dt = K.derived; count = 1; base = src })
          else
            ignore
              (Mpi.recv comm (Mpi.Typed { dt = K.derived; count = 1; base = sink })));
      Alcotest.(check bool) (K.name ^ " derived over MPI") true (K.equal src sink))

let test_custom_pack_over_mpi () =
  for_each_kernel (fun (module K) ->
      let w = Mpi.create_world ~size:2 () in
      let src = K.create () and sink = K.create_sink () in
      Mpi.run w (fun comm ->
          if Mpi.rank comm = 0 then
            Mpi.send comm ~dst:1 ~tag:0
              (Mpi.Custom { dt = K.custom_pack; obj = src; count = 1 })
          else
            ignore
              (Mpi.recv comm
                 (Mpi.Custom { dt = K.custom_pack; obj = sink; count = 1 })));
      Alcotest.(check bool) (K.name ^ " custom-pack over MPI") true
        (K.equal src sink))

let test_custom_regions_over_mpi () =
  for_each_kernel (fun (module K) ->
      match K.custom_regions with
      | None ->
          Alcotest.(check bool)
            (K.name ^ " regions not sensible")
            false K.regions_sensible
      | Some dt ->
          let w = Mpi.create_world ~size:2 () in
          let src = K.create () and sink = K.create_sink () in
          Mpi.run w (fun comm ->
              if Mpi.rank comm = 0 then
                Mpi.send comm ~dst:1 ~tag:0 (Mpi.Custom { dt; obj = src; count = 1 })
              else
                ignore (Mpi.recv comm (Mpi.Custom { dt; obj = sink; count = 1 })));
          Alcotest.(check bool) (K.name ^ " custom-regions over MPI") true
            (K.equal src sink);
          (* regions must be zero-copy *)
          let stats = Mpi.world_stats w in
          Alcotest.(check bool) (K.name ^ " zero copies") true
            (stats.bytes_copied < K.wire_bytes / 10))

let test_wire_sizes_sane () =
  for_each_kernel (fun (module K) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s wire (%d) fits slab (%d)" K.name K.wire_bytes
           K.slab_bytes)
        true
        (K.wire_bytes > 0 && K.wire_bytes <= K.slab_bytes);
      check_int (K.name ^ " derived size") K.wire_bytes (Dt.size K.derived))

let test_expected_block_granularity () =
  (* The properties the paper's Fig. 10 analysis relies on. *)
  let count name =
    match Registry.find name with
    | Some (module K) -> Blocks.count K.blocks
    | None -> Alcotest.failf "kernel %s missing" name
  in
  (* contiguous exchanges: a single region *)
  check_int "NAS_LU_x one region" 1 (count "NAS_LU_x");
  (* NAS_LU_y: many small regions *)
  Alcotest.(check bool) "NAS_LU_y many regions" true (count "NAS_LU_y" >= 1024);
  (* MG_x tiny blocks vastly outnumber MG_y's row blocks *)
  Alcotest.(check bool) "MG_x >> MG_y" true
    (count "NAS_MG_x" > 100 * count "NAS_MG_y");
  (* MILC: a small number of fairly large regions *)
  Alcotest.(check bool) "MILC few regions" true (count "MILC_su3_zdown" <= 512)

let test_registry () =
  check_int "paper kernels" 8 (List.length Registry.paper_kernels);
  Alcotest.(check bool) "extras present" true
    (List.length Registry.extra_kernels >= 4);
  Alcotest.(check bool) "find works" true
    (Option.is_some (Registry.find "LAMMPS_full"));
  Alcotest.(check bool) "find missing" true (Registry.find "nope" = None)

let test_table1_contents () =
  let rows = Registry.table1 Registry.paper_kernels in
  check_int "eight rows" 8 (List.length rows);
  let name, dts, loops, regions = List.hd rows in
  Alcotest.(check string) "first is LAMMPS" "LAMMPS_full" name;
  Alcotest.(check string) "datatypes" "indexed, struct" dts;
  Alcotest.(check bool) "loop structure mentions arrays" true
    (String.length loops > 0);
  Alcotest.(check string) "lammps: no regions" "" regions;
  let checkmarks =
    List.filter (fun (_, _, _, r) -> r = "yes") rows |> List.length
  in
  (* MILC, NAS_LU_x, NAS_LU_y, NAS_MG_x, NAS_MG_y carry the checkmark *)
  check_int "five region rows" 5 checkmarks

let prop_blocks_random_fragmentation =
  QCheck.Test.make ~name:"ddtbench: random kernel x fragment size packs equal"
    ~count:60
    QCheck.(pair (int_range 0 (List.length Registry.all - 1)) (int_range 1 65536))
    (fun (ki, frag) ->
      let (module K : Kernel.KERNEL) = List.nth Registry.all ki in
      let src = K.create () in
      let whole = Buf.create K.wire_bytes in
      ignore (Blocks.pack_range K.blocks ~base:src ~offset:0 ~dst:whole);
      let out = Buf.create K.wire_bytes in
      let off = ref 0 in
      while !off < K.wire_bytes do
        let len = min frag (K.wire_bytes - !off) in
        ignore
          (Blocks.pack_range K.blocks ~base:src ~offset:!off
             ~dst:(Buf.sub out ~pos:!off ~len));
        off := !off + len
      done;
      Buf.equal whole out)

let suite =
  let tc = Alcotest.test_case in
  ( "ddtbench",
    [
      tc "blocks total/count" `Quick test_blocks_total;
      tc "blocks pack order" `Quick test_blocks_pack_matches_manual;
      tc "blocks fragmented = whole" `Quick test_blocks_fragmented_equals_whole;
      tc "blocks unpack roundtrip" `Quick test_blocks_unpack_roundtrip;
      tc "blocks past end" `Quick test_blocks_past_end;
      tc "blocks regions alias slab" `Quick test_blocks_regions_alias;
      tc "all kernels: manual roundtrip" `Quick test_manual_roundtrip;
      tc "all kernels: manual = cursor stream" `Quick test_manual_matches_blocks;
      tc "all kernels: derived = manual stream" `Quick test_derived_matches_manual;
      tc "all kernels: derived over MPI" `Slow test_derived_over_mpi;
      tc "all kernels: custom-pack over MPI" `Slow test_custom_pack_over_mpi;
      tc "all kernels: custom-regions over MPI" `Slow test_custom_regions_over_mpi;
      tc "all kernels: wire sizes sane" `Quick test_wire_sizes_sane;
      tc "block granularity matches paper analysis" `Quick
        test_expected_block_granularity;
      tc "registry" `Quick test_registry;
      tc "Table I contents" `Quick test_table1_contents;
      QCheck_alcotest.to_alcotest prop_blocks_random_fragmentation;
    ] )
