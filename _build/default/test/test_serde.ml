(* Tests for the serde-style schema layer. *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module S = Mpicd_serde.Serde

let check_int = Alcotest.(check int)

let rt schema v = S.decode schema (S.encode schema v)

let rt_oob schema v =
  let header, buffers = S.encode_oob schema v in
  S.decode_oob schema header ~buffers

let test_primitives () =
  Alcotest.(check unit) "unit" () (rt S.unit ());
  Alcotest.(check bool) "bool t" true (rt S.bool true);
  Alcotest.(check bool) "bool f" false (rt S.bool false);
  check_int "int" 42 (rt S.int 42);
  check_int "int neg" (-7) (rt S.int (-7));
  check_int "int max" max_int (rt S.int max_int);
  check_int "int min" min_int (rt S.int min_int);
  Alcotest.(check (float 0.)) "float" 3.25 (rt S.float 3.25);
  Alcotest.(check string) "string" "héllo\x00world" (rt S.string "héllo\x00world");
  Alcotest.(check string) "empty string" "" (rt S.string "")

let test_combinators () =
  Alcotest.(check (pair int string)) "pair" (1, "x") (rt S.(pair int string) (1, "x"));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (rt S.(list int) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty list" [] (rt S.(list int) []);
  Alcotest.(check (array bool)) "array" [| true; false |] (rt S.(array bool) [| true; false |]);
  Alcotest.(check (option int)) "some" (Some 9) (rt S.(option int) (Some 9));
  Alcotest.(check (option int)) "none" None (rt S.(option int) None);
  (match rt S.(result ~ok:int ~error:string) (Error "boom") with
  | Error "boom" -> ()
  | _ -> Alcotest.fail "result");
  let x, y, z = rt S.(triple int float string) (1, 2.5, "z") in
  check_int "triple.1" 1 x;
  Alcotest.(check (float 0.)) "triple.2" 2.5 y;
  Alcotest.(check string) "triple.3" "z" z

type point = { px : int; py : float }

let point_schema =
  S.map (fun p -> (p.px, p.py)) (fun (px, py) -> { px; py }) S.(pair int float)

let test_record_map () =
  let p = rt point_schema { px = 3; py = 4.5 } in
  check_int "px" 3 p.px;
  Alcotest.(check (float 0.)) "py" 4.5 p.py

type tree = Leaf | Node of tree * int * tree

let tree_schema =
  S.fix (fun self ->
      S.map
        (function Leaf -> None | Node (l, v, r) -> Some (l, v, r))
        (function None -> Leaf | Some (l, v, r) -> Node (l, v, r))
        S.(option (triple self int self)))

let test_recursive () =
  let t = Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Node (Leaf, 4, Leaf))) in
  let rec eq a b =
    match (a, b) with
    | Leaf, Leaf -> true
    | Node (l1, v1, r1), Node (l2, v2, r2) -> v1 = v2 && eq l1 l2 && eq r1 r2
    | _ -> false
  in
  Alcotest.(check bool) "tree roundtrip" true (eq t (rt tree_schema t))

let test_buf_inband () =
  let b = Buf.of_string "payload-bytes" in
  let got = rt S.buf b in
  Alcotest.(check bool) "equal contents" true (Buf.equal b got);
  Alcotest.(check bool) "in-band decode copies" false (Buf.same_memory b got)

let test_buf_oob_zero_copy () =
  let b = Buf.of_string "zero-copy-payload" in
  let header, buffers = S.encode_oob S.buf b in
  (match buffers with
  | [ x ] -> Alcotest.(check bool) "send side aliases" true (Buf.same_memory x b)
  | _ -> Alcotest.fail "expected one oob buffer");
  Alcotest.(check bool) "header excludes payload" true (Buf.length header < 16);
  let got = S.decode_oob S.buf header ~buffers in
  Alcotest.(check bool) "recv side aliases" true
    (Buf.same_memory got (List.hd buffers))

let test_mixed_structure_oob () =
  let schema = S.(pair string (list (pair int buf))) in
  let v =
    ( "mesh",
      [ (1, Buf.of_string "aaaa"); (2, Buf.of_string "bbbbbbbb"); (3, Buf.create 0) ] )
  in
  let name, items = rt_oob schema v in
  Alcotest.(check string) "name" "mesh" name;
  check_int "items" 3 (List.length items);
  List.iter2
    (fun (i1, b1) (i2, b2) ->
      check_int "idx" i1 i2;
      Alcotest.(check bool) "payload" true (Buf.equal b1 b2))
    (snd v) items;
  check_int "oob count" 3 (List.length (S.oob_buffers schema v))

let test_decode_errors () =
  let expect_err f =
    match f () with
    | _ -> Alcotest.fail "expected Decode_error"
    | exception S.Decode_error _ -> ()
  in
  expect_err (fun () -> S.decode S.int (Buf.create 3));
  expect_err (fun () -> S.decode S.bool (Buf.of_string "\x05"));
  (* trailing bytes *)
  expect_err (fun () ->
      S.decode S.bool (Buf.of_string "\x01\x00"));
  (* missing oob buffer *)
  let header, _ = S.encode_oob S.buf (Buf.create 100) in
  expect_err (fun () -> S.decode_oob S.buf header ~buffers:[]);
  (* wrong-size oob buffer *)
  expect_err (fun () -> S.decode_oob S.buf header ~buffers:[ Buf.create 99 ]);
  (* unused oob buffer *)
  expect_err (fun () ->
      S.decode_oob S.int (S.encode S.int 1) ~buffers:[ Buf.create 1 ])

let test_encoded_size () =
  check_int "int is 8 bytes" 8 (S.encoded_size S.int 5);
  check_int "pair adds up" 16 (S.encoded_size S.(pair int int) (1, 2));
  check_int "string is 8 + len" 13 (S.encoded_size S.string "hello")

(* --- custom datatype bridge over MPI --- *)

type field = { name : string; step : int; data : Buf.t }

let field_schema =
  S.map
    (fun f -> (f.name, f.step, f.data))
    (fun (name, step, data) -> { name; step; data })
    S.(triple string int buf)

let test_to_custom_over_mpi () =
  let w = Mpi.create_world ~size:2 () in
  let payload = Buf.of_string (String.init 4096 (fun i -> Char.chr (i land 0xff))) in
  let sent = { name = "temperature"; step = 17; data = payload } in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        Mpi.send comm ~dst:1 ~tag:0
          (Mpi.Custom { dt = S.to_custom field_schema; obj = sent; count = 1 })
      else begin
        (* the receiver posts a structurally matching value *)
        let posted = { name = "temperature"; step = 0; data = Buf.create 4096 } in
        let cell = ref posted in
        ignore
          (Mpi.recv comm
             (Mpi.Custom
                { dt = S.receive_into field_schema cell; obj = cell; count = 1 }));
        let got = !cell in
        Alcotest.(check string) "name" "temperature" got.name;
        check_int "step decoded from sender" 17 got.step;
        Alcotest.(check bool) "payload" true (Buf.equal payload got.data);
        Alcotest.(check bool) "zero-copy region receive" true
          (Buf.same_memory got.data posted.data)
      end)

let test_to_custom_structure_mismatch () =
  (* receiver posts a different payload size: decode fails with error 1 *)
  let w = Mpi.create_world ~size:2 () in
  let saw = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let sent = { name = "x"; step = 1; data = Buf.create 100 } in
        (* sender completes or errors depending on matching; use isend +
           wait wrapped since receiver may kill the transfer *)
        match
          Mpi.send comm ~dst:1 ~tag:0
            (Mpi.Custom { dt = S.to_custom field_schema; obj = sent; count = 1 })
        with
        | () -> ()
        | exception Mpi.Mpi_error _ -> ()
      end
      else begin
        let posted = { name = "x"; step = 0; data = Buf.create 64 } in
        let cell = ref posted in
        match
          Mpi.recv comm
            (Mpi.Custom
               { dt = S.receive_into field_schema cell; obj = cell; count = 1 })
        with
        | _ -> Alcotest.fail "expected structure mismatch"
        | exception Mpi.Mpi_error (Mpi.Truncated _) -> saw := true
        | exception Mpi.Mpi_error (Mpi.Callback_failed 1) -> saw := true
      end);
  Alcotest.(check bool) "mismatch detected" true !saw

(* property: random nested values roundtrip both ways *)
let gen_value =
  QCheck.Gen.(
    map
      (fun (s, xs, ob) ->
        (s, List.map (fun (i, n) -> (i, Buf.create (n mod 64))) xs, ob))
      (triple (string_size (0 -- 16)) (list_size (0 -- 6) (pair int small_nat))
         (opt bool)))

let value_schema = S.(triple string (list (pair int buf)) (option bool))

let prop_roundtrip =
  QCheck.Test.make ~name:"serde: in-band roundtrip" ~count:300
    (QCheck.make gen_value)
    (fun v ->
      let s, items, ob = rt value_schema v in
      let s0, items0, ob0 = v in
      s = s0 && ob = ob0
      && List.for_all2 (fun (i, b) (j, c) -> i = j && Buf.equal b c) items items0)

let prop_roundtrip_oob =
  QCheck.Test.make ~name:"serde: oob roundtrip" ~count:300 (QCheck.make gen_value)
    (fun v ->
      let s, items, ob = rt_oob value_schema v in
      let s0, items0, ob0 = v in
      s = s0 && ob = ob0
      && List.for_all2 (fun (i, b) (j, c) -> i = j && Buf.equal b c) items items0)

let suite =
  let tc = Alcotest.test_case in
  ( "serde",
    [
      tc "primitives" `Quick test_primitives;
      tc "combinators" `Quick test_combinators;
      tc "record via map" `Quick test_record_map;
      tc "recursive schema" `Quick test_recursive;
      tc "buf in-band" `Quick test_buf_inband;
      tc "buf oob zero-copy" `Quick test_buf_oob_zero_copy;
      tc "mixed structure oob" `Quick test_mixed_structure_oob;
      tc "decode errors" `Quick test_decode_errors;
      tc "encoded size" `Quick test_encoded_size;
      tc "custom datatype over MPI" `Quick test_to_custom_over_mpi;
      tc "structure mismatch detected" `Quick test_to_custom_structure_mismatch;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip_oob;
    ] )
