(* Tests for the collectives extension (paper §VIII future work). *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Coll = Mpicd_collectives.Collectives
module B = Mpicd_bench_types.Bench_types

let check_int = Alcotest.(check int)

let sizes = [ 1; 2; 3; 4; 5; 8 ]

let test_barrier_sync () =
  List.iter
    (fun n ->
      let w = Mpi.create_world ~size:n () in
      let arrived = ref 0 in
      let min_seen = ref max_int in
      Mpi.run w (fun comm ->
          incr arrived;
          Coll.barrier comm;
          min_seen := min !min_seen !arrived;
          Coll.barrier comm);
      check_int (Printf.sprintf "all %d arrived before release" n) n !min_seen)
    sizes

let test_bcast_bytes () =
  List.iter
    (fun n ->
      List.iter
        (fun root ->
          if root < n then begin
            let w = Mpi.create_world ~size:n () in
            let payload = "broadcast-payload" in
            let deliveries = ref 0 in
            Mpi.run w (fun comm ->
                let buf =
                  if Mpi.rank comm = root then Buf.of_string payload
                  else Buf.create (String.length payload)
                in
                Coll.bcast comm ~root (Mpi.Bytes buf);
                Alcotest.(check string)
                  (Printf.sprintf "n=%d root=%d rank=%d" n root (Mpi.rank comm))
                  payload (Buf.to_string buf);
                incr deliveries);
            check_int "every rank checked" n !deliveries
          end)
        [ 0; 1; 3 ])
    sizes

let test_bcast_custom_datatype () =
  (* Broadcasting a custom-datatype buffer: intermediate binomial-tree
     nodes receive into their structure and forward from it. *)
  let n = 8 in
  let w = Mpi.create_world ~size:n () in
  let total = 64 * 1024 in
  let reference = B.Double_vec.generate ~subvec_bytes:4096 ~total_bytes:total in
  Mpi.run w (fun comm ->
      let mine =
        if Mpi.rank comm = 0 then reference
        else B.Double_vec.make_sink ~subvec_bytes:4096 ~total_bytes:total
      in
      Coll.bcast comm ~root:0
        (Mpi.Custom { dt = B.Double_vec.custom_dt; obj = mine; count = 1 });
      Alcotest.(check bool)
        (Printf.sprintf "rank %d payload" (Mpi.rank comm))
        true
        (B.Double_vec.equal reference mine))

let test_gather () =
  List.iter
    (fun n ->
      let root = min 1 (n - 1) in
      let w = Mpi.create_world ~size:n () in
      let received = Array.make n "" in
      Mpi.run w (fun comm ->
          let me = Mpi.rank comm in
          let mine = Buf.of_string (Printf.sprintf "r%02d" me) in
          let sinks = Array.init n (fun _ -> Buf.create 3) in
          Coll.gather comm ~root ~send:(Mpi.Bytes mine)
            ~recv:(fun i -> Mpi.Bytes sinks.(i));
          if me = root then begin
            received.(root) <- Printf.sprintf "r%02d" root;
            for i = 0 to n - 1 do
              if i <> root then received.(i) <- Buf.to_string sinks.(i)
            done
          end);
      Array.iteri
        (fun i got ->
          Alcotest.(check string)
            (Printf.sprintf "n=%d contribution %d" n i)
            (Printf.sprintf "r%02d" i) got)
        received)
    sizes

let test_scatter () =
  let n = 6 in
  let root = 2 in
  let w = Mpi.create_world ~size:n () in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let parts = Array.init n (fun i -> Buf.of_string (Printf.sprintf "p%02d" i)) in
      let mine = Buf.create 3 in
      Coll.scatter comm ~root
        ~send:(fun i -> Mpi.Bytes parts.(i))
        ~recv:(Mpi.Bytes mine);
      let expect = Printf.sprintf "p%02d" me in
      let got = if me = root then Buf.to_string parts.(root) else Buf.to_string mine in
      Alcotest.(check string) (Printf.sprintf "rank %d" me) expect got)

let test_allgather () =
  List.iter
    (fun n ->
      let w = Mpi.create_world ~size:n () in
      Mpi.run w (fun comm ->
          let me = Mpi.rank comm in
          let mine = Buf.of_string (Printf.sprintf "a%02d" me) in
          let sinks = Array.init n (fun _ -> Buf.create 3) in
          Coll.allgather comm ~send:(Mpi.Bytes mine)
            ~recv:(fun i -> Mpi.Bytes sinks.(i));
          for i = 0 to n - 1 do
            if i <> me then
              Alcotest.(check string)
                (Printf.sprintf "n=%d rank=%d sees %d" n me i)
                (Printf.sprintf "a%02d" i)
                (Buf.to_string sinks.(i))
          done))
    sizes

let test_reduce_sum () =
  List.iter
    (fun n ->
      let w = Mpi.create_world ~size:n () in
      let result = ref [||] in
      Mpi.run w (fun comm ->
          let me = Mpi.rank comm in
          let data = Array.init 16 (fun i -> float_of_int ((me + 1) * (i + 1))) in
          Coll.reduce_f64 comm ~root:0 ~op:`Sum data;
          if me = 0 then result := data);
      let tri = n * (n + 1) / 2 in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "n=%d elt %d" n i)
            (float_of_int (tri * (i + 1)))
            v)
        !result)
    sizes

let test_reduce_max_min () =
  let n = 5 in
  let w = Mpi.create_world ~size:n () in
  let got_max = ref 0. and got_min = ref 0. in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let a = [| float_of_int me |] in
      Coll.reduce_f64 comm ~root:0 ~op:`Max a;
      if me = 0 then got_max := a.(0);
      let b = [| float_of_int me |] in
      Coll.reduce_f64 comm ~root:0 ~op:`Min b;
      if me = 0 then got_min := b.(0));
  Alcotest.(check (float 0.)) "max" 4. !got_max;
  Alcotest.(check (float 0.)) "min" 0. !got_min

let test_allreduce () =
  let n = 7 in
  let w = Mpi.create_world ~size:n () in
  let checks = ref 0 in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let data = [| float_of_int me; 1.0 |] in
      Coll.allreduce_f64 comm ~op:`Sum data;
      Alcotest.(check (float 1e-9)) "sum of ranks" 21. data.(0);
      Alcotest.(check (float 1e-9)) "count" (float_of_int n) data.(1);
      incr checks);
  check_int "all ranks verified" n !checks

let test_alltoall () =
  List.iter
    (fun n ->
      let w = Mpi.create_world ~size:n () in
      Mpi.run w (fun comm ->
          let me = Mpi.rank comm in
          let outs =
            Array.init n (fun j -> Buf.of_string (Printf.sprintf "%02d>%02d" me j))
          in
          let ins = Array.init n (fun _ -> Buf.create 5) in
          Coll.alltoall comm
            ~send:(fun j -> Mpi.Bytes outs.(j))
            ~recv:(fun i -> Mpi.Bytes ins.(i));
          for i = 0 to n - 1 do
            if i <> me then
              Alcotest.(check string)
                (Printf.sprintf "n=%d %d->%d" n i me)
                (Printf.sprintf "%02d>%02d" i me)
                (Buf.to_string ins.(i))
          done))
    [ 2; 3; 4; 7 ]

let test_gather_custom_buffers () =
  (* gather where every contribution is a custom datatype buffer *)
  let n = 4 in
  let w = Mpi.create_world ~size:n () in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let mine =
        B.Double_vec.generate ~subvec_bytes:256 ~total_bytes:(1024 * (me + 1))
      in
      let sinks =
        Array.init n (fun i ->
            B.Double_vec.make_sink ~subvec_bytes:256 ~total_bytes:(1024 * (i + 1)))
      in
      Coll.gather comm ~root:0
        ~send:(Mpi.Custom { dt = B.Double_vec.custom_dt; obj = mine; count = 1 })
        ~recv:(fun i ->
          Mpi.Custom { dt = B.Double_vec.custom_dt; obj = sinks.(i); count = 1 });
      if me = 0 then
        for i = 1 to n - 1 do
          let expect =
            B.Double_vec.generate ~subvec_bytes:256 ~total_bytes:(1024 * (i + 1))
          in
          Alcotest.(check bool)
            (Printf.sprintf "contribution %d" i)
            true
            (B.Double_vec.equal expect sinks.(i))
        done)

let test_back_to_back_collectives () =
  (* Sequence-number separation: consecutive collectives on the same
     communicator must not cross-match. *)
  let n = 4 in
  let w = Mpi.create_world ~size:n () in
  Mpi.run w (fun comm ->
      for round = 0 to 9 do
        let b =
          if Mpi.rank comm = 0 then Buf.of_string (Printf.sprintf "%04d" round)
          else Buf.create 4
        in
        Coll.bcast comm ~root:0 (Mpi.Bytes b);
        Alcotest.(check string) "round payload" (Printf.sprintf "%04d" round)
          (Buf.to_string b);
        Coll.barrier comm
      done)

let test_bad_root () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      match Coll.bcast comm ~root:7 (Mpi.Bytes (Buf.create 1)) with
      | () -> Alcotest.fail "bad root accepted"
      | exception Invalid_argument _ -> ())

let test_barrier_faster_than_linear () =
  (* dissemination barrier should beat the linear one on wide worlds *)
  let time_of f =
    let w = Mpi.create_world ~size:32 () in
    let t = ref 0. in
    Mpi.run w (fun comm ->
        f comm;
        if Mpi.rank comm = 0 then t := Mpicd_simnet.Engine.now (Mpi.world_engine w));
    !t
  in
  let linear = time_of Mpi.barrier in
  let dissem = time_of Coll.barrier in
  Alcotest.(check bool)
    (Printf.sprintf "dissemination (%.0fns) < linear (%.0fns)" dissem linear)
    true (dissem < linear)

let prop_bcast_random =
  QCheck.Test.make ~name:"collectives: bcast delivers for random sizes/roots"
    ~count:25
    QCheck.(triple (int_range 1 9) (int_range 0 8) (int_range 0 200_000))
    (fun (n, root, bytes) ->
      let root = root mod n in
      let w = Mpi.create_world ~size:n () in
      let payload = Buf.create bytes in
      Mpicd_ddtbench.Kernel.fill payload;
      let ok = ref true in
      Mpi.run w (fun comm ->
          let mine =
            if Mpi.rank comm = root then Buf.copy payload else Buf.create bytes
          in
          Coll.bcast comm ~root (Mpi.Bytes mine);
          if not (Buf.equal mine payload) then ok := false);
      !ok)

let prop_allreduce_random =
  QCheck.Test.make ~name:"collectives: allreduce sum matches sequential"
    ~count:20
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 8) (float_bound_inclusive 100.)))
    (fun (n, base) ->
      let base = Array.of_list base in
      let w = Mpi.create_world ~size:n () in
      let expect =
        Array.map (fun v -> v *. float_of_int (n * (n + 1) / 2)) base
      in
      let ok = ref true in
      Mpi.run w (fun comm ->
          let mine =
            Array.map (fun v -> v *. float_of_int (Mpi.rank comm + 1)) base
          in
          Coll.allreduce_f64 comm ~op:`Sum mine;
          Array.iteri
            (fun i v -> if Float.abs (v -. expect.(i)) > 1e-6 then ok := false)
            mine);
      !ok)

let suite =
  let tc = Alcotest.test_case in
  ( "collectives",
    [
      tc "barrier synchronizes" `Quick test_barrier_sync;
      tc "bcast bytes (all sizes/roots)" `Quick test_bcast_bytes;
      tc "bcast custom datatype through tree" `Quick test_bcast_custom_datatype;
      tc "gather" `Quick test_gather;
      tc "scatter" `Quick test_scatter;
      tc "allgather" `Quick test_allgather;
      tc "reduce sum" `Quick test_reduce_sum;
      tc "reduce max/min" `Quick test_reduce_max_min;
      tc "allreduce" `Quick test_allreduce;
      tc "alltoall" `Quick test_alltoall;
      tc "gather of custom buffers" `Quick test_gather_custom_buffers;
      tc "back-to-back collectives" `Quick test_back_to_back_collectives;
      tc "bad root" `Quick test_bad_root;
      tc "dissemination beats linear barrier" `Quick test_barrier_faster_than_linear;
      QCheck_alcotest.to_alcotest prop_bcast_random;
      QCheck_alcotest.to_alcotest prop_allreduce_random;
    ] )
