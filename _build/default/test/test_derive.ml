(* Tests for the RSMPI-style Equivalence derive layer. *)

module Dt = Mpicd_datatype.Datatype
module Derive = Mpicd_derive.Derive

let check_int = Alcotest.(check int)

(* The paper's struct-simple: { a,b,c: i32; d: f64 } — C layout inserts
   a 4-byte gap before d (Listing 7). *)
let struct_simple =
  Derive.c_layout
    [
      Derive.field "a" Dt.Int32;
      Derive.field "b" Dt.Int32;
      Derive.field "c" Dt.Int32;
      Derive.field "d" Dt.Float64;
    ]

(* struct-simple-no-gap: { a,b: i32; c: f64 } (Listing 8). *)
let struct_no_gap =
  Derive.c_layout
    [ Derive.field "a" Dt.Int32; Derive.field "b" Dt.Int32; Derive.field "c" Dt.Float64 ]

(* struct-vec: adds data: [i32; 2048] (Listing 6). *)
let struct_vec =
  Derive.c_layout
    [
      Derive.field "a" Dt.Int32;
      Derive.field "b" Dt.Int32;
      Derive.field "c" Dt.Int32;
      Derive.field "d" Dt.Float64;
      Derive.field "data" ~count:2048 Dt.Int32;
    ]

let test_struct_simple_layout () =
  check_int "sizeof" 24 (Derive.size_of struct_simple);
  check_int "packed" 20 (Derive.packed_size_of struct_simple);
  Alcotest.(check bool) "has gap" true (Derive.has_padding struct_simple);
  check_int "offsetof a" 0 (Derive.offset_of struct_simple "a");
  check_int "offsetof b" 4 (Derive.offset_of struct_simple "b");
  check_int "offsetof c" 8 (Derive.offset_of struct_simple "c");
  check_int "offsetof d" 16 (Derive.offset_of struct_simple "d")

let test_struct_no_gap_layout () =
  check_int "sizeof" 16 (Derive.size_of struct_no_gap);
  check_int "packed" 16 (Derive.packed_size_of struct_no_gap);
  Alcotest.(check bool) "no gap" false (Derive.has_padding struct_no_gap)

let test_struct_vec_layout () =
  (* 24 header bytes + 8192 array bytes = 8216 *)
  check_int "sizeof" 8216 (Derive.size_of struct_vec);
  check_int "offsetof data" 24 (Derive.offset_of struct_vec "data");
  check_int "packed" (12 + 8 + 8192) (Derive.packed_size_of struct_vec)

let test_trailing_padding () =
  (* { a: f64; b: i32 } -> trailing pad to 16 *)
  let l = Derive.c_layout [ Derive.field "a" Dt.Float64; Derive.field "b" Dt.Int32 ] in
  check_int "sizeof rounds to alignment" 16 (Derive.size_of l);
  Alcotest.(check bool) "padded" true (Derive.has_padding l)

let test_equivalence_datatype () =
  let dt = Derive.equivalence struct_simple in
  check_int "size" 20 (Dt.size dt);
  check_int "extent" 24 (Dt.extent dt);
  Alcotest.(check bool) "gap -> not contiguous" false (Dt.is_contiguous dt);
  check_int "two blocks/element" 2 (Dt.blocks_per_element dt)

let test_equivalence_no_gap_contiguous () =
  let dt = Derive.equivalence struct_no_gap in
  Alcotest.(check bool) "contiguous" true (Dt.is_contiguous dt);
  check_int "one block" 1 (Dt.blocks_per_element dt)

let test_equivalence_cached () =
  let a = Derive.equivalence struct_vec in
  let b = Derive.equivalence struct_vec in
  Alcotest.(check bool) "same datatype value (rsmpi caching)" true (a == b)

let test_unknown_field () =
  Alcotest.check_raises "Not_found" Not_found (fun () ->
      ignore (Derive.offset_of struct_simple "nope"))

let test_empty_struct () =
  Alcotest.check_raises "empty" (Invalid_argument "Derive.c_layout: empty struct")
    (fun () -> ignore (Derive.c_layout []))

let test_bad_count () =
  Alcotest.check_raises "count 0"
    (Invalid_argument "Derive.field: count must be >= 1") (fun () ->
      ignore (Derive.field "x" ~count:0 Dt.Int32))

let prop_layout_monotone =
  QCheck.Test.make ~name:"derive: offsets strictly increase, fit in size"
    ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 8)
        (oneofl [ Dt.Int8; Dt.Int16; Dt.Int32; Dt.Int64; Dt.Float32; Dt.Float64 ]))
    (fun tys ->
      let fields = List.mapi (fun i ty -> Derive.field (string_of_int i) ty) tys in
      let l = Derive.c_layout fields in
      let infos = Derive.fields_of l in
      let rec mono = function
        | (_, o1, s1) :: ((_, o2, _) :: _ as rest) ->
            o1 + s1 <= o2 && mono rest
        | [ (_, o, s) ] -> o + s <= Derive.size_of l
        | [] -> true
      in
      mono infos && Dt.size (Derive.equivalence l) = Derive.packed_size_of l
      && Dt.extent (Derive.equivalence l) = Derive.size_of l)

let suite =
  let tc = Alcotest.test_case in
  ( "derive",
    [
      tc "struct-simple layout (paper Listing 7)" `Quick test_struct_simple_layout;
      tc "struct-simple-no-gap layout (Listing 8)" `Quick test_struct_no_gap_layout;
      tc "struct-vec layout (Listing 6)" `Quick test_struct_vec_layout;
      tc "trailing padding" `Quick test_trailing_padding;
      tc "equivalence datatype" `Quick test_equivalence_datatype;
      tc "no-gap equivalence is contiguous" `Quick test_equivalence_no_gap_contiguous;
      tc "equivalence cached" `Quick test_equivalence_cached;
      tc "unknown field" `Quick test_unknown_field;
      tc "empty struct" `Quick test_empty_struct;
      tc "bad field count" `Quick test_bad_count;
      QCheck_alcotest.to_alcotest prop_layout_monotone;
    ] )
