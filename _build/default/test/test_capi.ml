(* Tests for the C-ABI-shaped façade (paper Listings 2–5). *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Capi = Mpicd_capi.Capi

let check_int = Alcotest.(check int)

let test_univ () =
  let inj, prj = Capi.Univ.embed () in
  let u = inj 42 in
  Alcotest.(check (option int)) "roundtrip" (Some 42) (prj u);
  let inj2, prj2 = Capi.Univ.embed () in
  let u2 = inj2 "hello" in
  Alcotest.(check (option string)) "second type" (Some "hello") (prj2 u2);
  Alcotest.(check (option int)) "cross projection fails" None (prj u2)

(* A C-style custom datatype that byte-swaps pairs, with a state object
   counting callback invocations. *)
let make_counting_dt () =
  let inj, prj = Capi.Univ.embed () in
  let counts = ref (0, 0, 0, 0) in
  (* (state_calls, free_calls, pack_calls, unpack_calls) *)
  let statefn ~context:_ ~src:_ ~src_count:_ ~state =
    let a, b, c, d = !counts in
    counts := (a + 1, b, c, d);
    state := Some (inj "state");
    Capi.mpi_success
  in
  let freefn ~state =
    match Option.bind state prj with
    | Some "state" ->
        let a, b, c, d = !counts in
        counts := (a, b + 1, c, d);
        Capi.mpi_success
    | _ -> Capi.mpi_err_other
  in
  let queryfn ~state:_ ~buf ~count ~packed_size =
    packed_size := Buf.length buf * count;
    Capi.mpi_success
  in
  let packfn ~state:_ ~buf ~count:_ ~offset ~dst ~used =
    let len = min (Buf.length dst) (Buf.length buf - offset) in
    Buf.blit ~src:buf ~src_pos:offset ~dst ~dst_pos:0 ~len;
    used := len;
    let a, b, c, d = !counts in
    counts := (a, b, c + 1, d);
    Capi.mpi_success
  in
  let unpackfn ~state:_ ~buf ~count:_ ~offset ~src =
    Buf.blit ~src ~src_pos:0 ~dst:buf ~dst_pos:offset ~len:(Buf.length src);
    let a, b, c, d = !counts in
    counts := (a, b, c, d + 1);
    Capi.mpi_success
  in
  let dt = ref Capi.mpi_byte in
  let rc =
    Capi.mpi_type_create_custom ~statefn ~freefn ~queryfn ~packfn ~unpackfn
      ~region_countfn:None ~regionfn:None ~context:None ~inorder:1 dt
  in
  (rc, dt, counts)

let test_create_custom () =
  let rc, _, _ = make_counting_dt () in
  check_int "create succeeds" Capi.mpi_success rc

let test_create_mismatched_region_fns () =
  let rc, dt, _ = make_counting_dt () in
  check_int "setup" Capi.mpi_success rc;
  let rcf ~state:_ ~buf:_ ~count:_ ~region_count =
    region_count := 0;
    Capi.mpi_success
  in
  let rc2 =
    Capi.mpi_type_create_custom
      ~statefn:(fun ~context:_ ~src:_ ~src_count:_ ~state:_ -> Capi.mpi_success)
      ~freefn:(fun ~state:_ -> Capi.mpi_success)
      ~queryfn:(fun ~state:_ ~buf:_ ~count:_ ~packed_size:_ -> Capi.mpi_success)
      ~packfn:(fun ~state:_ ~buf:_ ~count:_ ~offset:_ ~dst:_ ~used:_ ->
        Capi.mpi_success)
      ~unpackfn:(fun ~state:_ ~buf:_ ~count:_ ~offset:_ ~src:_ -> Capi.mpi_success)
      ~region_countfn:(Some rcf) ~regionfn:None ~context:None ~inorder:1 dt
  in
  check_int "region fns must come in pairs" Capi.mpi_err_arg rc2

let test_send_recv_bytes () =
  let w = Mpi.create_world ~size:2 () in
  let src = Buf.of_string "capi-bytes" in
  let dst = Buf.create 10 in
  Mpi.run w (fun comm ->
      let rank = ref (-1) in
      check_int "rank rc" Capi.mpi_success (Capi.mpi_comm_rank ~comm ~rank);
      let size = ref 0 in
      check_int "size rc" Capi.mpi_success (Capi.mpi_comm_size ~comm ~size);
      check_int "size" 2 !size;
      if !rank = 0 then
        check_int "send rc" Capi.mpi_success
          (Capi.mpi_send ~buf:src ~count:10 ~datatype:Capi.mpi_byte ~dest:1
             ~tag:3 ~comm)
      else begin
        let status = Capi.mpi_status_ignore () in
        check_int "recv rc" Capi.mpi_success
          (Capi.mpi_recv ~buf:dst ~count:10 ~datatype:Capi.mpi_byte ~source:0
             ~tag:3 ~comm ~status);
        check_int "status source" 0 status.st_source;
        check_int "status tag" 3 status.st_tag;
        check_int "status len" 10 status.st_len;
        Alcotest.(check string) "payload" "capi-bytes" (Buf.to_string dst)
      end)

let test_send_recv_custom () =
  let rc, dt, counts = make_counting_dt () in
  check_int "create" Capi.mpi_success rc;
  let rc2, dt2, _ = make_counting_dt () in
  check_int "create recv" Capi.mpi_success rc2;
  let w = Mpi.create_world ~size:2 () in
  let src = Buf.of_string "0123456789abcdef" in
  let dst = Buf.create 16 in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        check_int "send rc" Capi.mpi_success
          (Capi.mpi_send ~buf:src ~count:1 ~datatype:!dt ~dest:1 ~tag:0 ~comm)
      else begin
        let status = Capi.mpi_status_ignore () in
        check_int "recv rc" Capi.mpi_success
          (Capi.mpi_recv ~buf:dst ~count:1 ~datatype:!dt2 ~source:0 ~tag:0 ~comm
             ~status);
        Alcotest.(check string) "payload" "0123456789abcdef" (Buf.to_string dst)
      end);
  let s, f, p, _ = !counts in
  check_int "statefn ran once" 1 s;
  check_int "freefn ran once" 1 f;
  Alcotest.(check bool) "packfn ran" true (p >= 1)

let test_custom_with_regions () =
  (* header + one region, C style *)
  let statefn ~context:_ ~src:_ ~src_count:_ ~state:_ = Capi.mpi_success in
  let freefn ~state:_ = Capi.mpi_success in
  let queryfn ~state:_ ~buf:_ ~count:_ ~packed_size =
    packed_size := 4;
    Capi.mpi_success
  in
  let packfn ~state:_ ~buf ~count:_ ~offset:_ ~dst ~used =
    Buf.set_i32 dst 0 (Int32.of_int (Buf.length buf - 4));
    used := 4;
    Capi.mpi_success
  in
  let unpackfn ~state:_ ~buf ~count:_ ~offset:_ ~src =
    if Int32.to_int (Buf.get_i32 src 0) <> Buf.length buf - 4 then
      Capi.mpi_err_other
    else Capi.mpi_success
  in
  let region_countfn ~state:_ ~buf:_ ~count:_ ~region_count =
    region_count := 1;
    Capi.mpi_success
  in
  let regionfn ~state:_ ~buf ~count:_ ~region_count:_ ~reg_bases ~reg_lens =
    reg_bases.(0) <- Some (Buf.sub buf ~pos:4 ~len:(Buf.length buf - 4));
    reg_lens.(0) <- Buf.length buf - 4;
    Capi.mpi_success
  in
  let dt = ref Capi.mpi_byte in
  check_int "create" Capi.mpi_success
    (Capi.mpi_type_create_custom ~statefn ~freefn ~queryfn ~packfn ~unpackfn
       ~region_countfn:(Some region_countfn) ~regionfn:(Some regionfn)
       ~context:None ~inorder:1 dt);
  let w = Mpi.create_world ~size:2 () in
  let src = Buf.of_string "lenghello-region" in
  let dst = Buf.create 16 in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        check_int "send" Capi.mpi_success
          (Capi.mpi_send ~buf:src ~count:1 ~datatype:!dt ~dest:1 ~tag:0 ~comm)
      else begin
        let status = Capi.mpi_status_ignore () in
        check_int "recv" Capi.mpi_success
          (Capi.mpi_recv ~buf:dst ~count:1 ~datatype:!dt ~source:0 ~tag:0 ~comm
             ~status)
      end);
  Alcotest.(check string) "region delivered" "hello-region"
    (Buf.to_string (Buf.sub dst ~pos:4 ~len:12))

let test_callback_error_code_surfaces () =
  let statefn ~context:_ ~src:_ ~src_count:_ ~state:_ = Capi.mpi_success in
  let freefn ~state:_ = Capi.mpi_success in
  let queryfn ~state:_ ~buf:_ ~count:_ ~packed_size =
    packed_size := 8;
    Capi.mpi_success
  in
  let packfn ~state:_ ~buf:_ ~count:_ ~offset:_ ~dst:_ ~used:_ = 77 in
  let unpackfn ~state:_ ~buf:_ ~count:_ ~offset:_ ~src:_ = Capi.mpi_success in
  let dt = ref Capi.mpi_byte in
  check_int "create" Capi.mpi_success
    (Capi.mpi_type_create_custom ~statefn ~freefn ~queryfn ~packfn ~unpackfn
       ~region_countfn:None ~regionfn:None ~context:None ~inorder:1 dt);
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let rc =
          Capi.mpi_send ~buf:(Buf.create 8) ~count:1 ~datatype:!dt ~dest:1
            ~tag:0 ~comm
        in
        check_int "pack error code returned" 77 rc;
        (* unblock receiver *)
        ignore
          (Capi.mpi_send ~buf:(Buf.create 8) ~count:8 ~datatype:Capi.mpi_byte
             ~dest:1 ~tag:0 ~comm)
      end
      else begin
        let status = Capi.mpi_status_ignore () in
        ignore
          (Capi.mpi_recv ~buf:(Buf.create 8) ~count:8 ~datatype:Capi.mpi_byte
             ~source:0 ~tag:0 ~comm ~status)
      end)

let test_truncation_code () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        ignore
          (Capi.mpi_send ~buf:(Buf.create 100) ~count:100 ~datatype:Capi.mpi_byte
             ~dest:1 ~tag:0 ~comm)
      else begin
        let status = Capi.mpi_status_ignore () in
        let rc =
          Capi.mpi_recv ~buf:(Buf.create 10) ~count:10 ~datatype:Capi.mpi_byte
            ~source:0 ~tag:0 ~comm ~status
        in
        check_int "truncate code" Capi.mpi_err_truncate rc;
        check_int "status error" Capi.mpi_err_truncate status.st_error
      end)

let test_type_free () =
  let _, dt, _ = make_counting_dt () in
  check_int "free ok" Capi.mpi_success (Capi.mpi_type_free dt);
  check_int "double free rejected" Capi.mpi_err_type (Capi.mpi_type_free dt);
  let w = Mpi.create_world ~size:1 () in
  Mpi.run w (fun comm ->
      check_int "use after free rejected" Capi.mpi_err_type
        (Capi.mpi_send ~buf:(Buf.create 4) ~count:1 ~datatype:!dt ~dest:0 ~tag:0
           ~comm))

let test_nonblocking () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let req = Capi.mpi_request_null () in
        check_int "isend rc" Capi.mpi_success
          (Capi.mpi_isend ~buf:(Buf.of_string "async") ~count:5
             ~datatype:Capi.mpi_byte ~dest:1 ~tag:4 ~comm ~request:req);
        let status = Capi.mpi_status_ignore () in
        check_int "wait rc" Capi.mpi_success (Capi.mpi_wait ~request:req ~status);
        (* waiting on the (now null) request is a no-op *)
        check_int "wait null rc" Capi.mpi_success
          (Capi.mpi_wait ~request:req ~status)
      end
      else begin
        (* probe first, then nonblocking receive + test loop *)
        let pstatus = Capi.mpi_status_ignore () in
        check_int "probe rc" Capi.mpi_success
          (Capi.mpi_probe ~source:0 ~tag:4 ~comm ~status:pstatus);
        check_int "probed len" 5 pstatus.st_len;
        let dst = Buf.create 5 in
        let req = Capi.mpi_request_null () in
        check_int "irecv rc" Capi.mpi_success
          (Capi.mpi_irecv ~buf:dst ~count:5 ~datatype:Capi.mpi_byte ~source:0
             ~tag:4 ~comm ~request:req);
        let status = Capi.mpi_status_ignore () in
        let flag = ref 0 in
        while !flag = 0 do
          check_int "test rc" Capi.mpi_success
            (Capi.mpi_test ~request:req ~flag ~status);
          (* polling must yield to the progress engine *)
          if !flag = 0 then
            Mpicd_simnet.Engine.sleep
              (Mpi.world_engine (Mpi.world_of comm))
              100.
        done;
        Alcotest.(check string) "payload" "async" (Buf.to_string dst)
      end)

let test_iprobe_empty () =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 1 then begin
        let flag = ref 1 in
        let status = Capi.mpi_status_ignore () in
        check_int "iprobe rc" Capi.mpi_success
          (Capi.mpi_iprobe ~source:0 ~tag:0 ~comm ~flag ~status);
        check_int "no message" 0 !flag
      end)

let test_barrier () =
  let w = Mpi.create_world ~size:4 () in
  Mpi.run w (fun comm -> check_int "rc" Capi.mpi_success (Capi.mpi_barrier ~comm))

let suite =
  let tc = Alcotest.test_case in
  ( "capi",
    [
      tc "univ values" `Quick test_univ;
      tc "type_create_custom" `Quick test_create_custom;
      tc "region fns must pair" `Quick test_create_mismatched_region_fns;
      tc "send/recv bytes" `Quick test_send_recv_bytes;
      tc "send/recv custom + state lifecycle" `Quick test_send_recv_custom;
      tc "custom with regions" `Quick test_custom_with_regions;
      tc "callback error code surfaces" `Quick test_callback_error_code_surfaces;
      tc "truncation code" `Quick test_truncation_code;
      tc "type free semantics" `Quick test_type_free;
      tc "nonblocking isend/irecv/test/probe" `Quick test_nonblocking;
      tc "iprobe empty" `Quick test_iprobe_empty;
      tc "barrier" `Quick test_barrier;
    ] )
