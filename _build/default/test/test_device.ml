(* Tests for the accelerator-memory extension. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Blocks = Mpicd_ddtbench.Blocks
module Mpi = Mpicd.Mpi
module D = Mpicd_device.Device
module H = Mpicd_harness.Harness

let check_int = Alcotest.(check int)

(* a sparse strided layout: 16 KiB of halo data scattered through a
   256 KiB slab (staging the whole slab is 16x the useful bytes) *)
let blocks =
  Blocks.of_list (List.init 64 (fun i -> (i * 4096, 256)))

let slab_bytes = 256 * 1024

let in_world f =
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm -> if Mpi.rank comm = 0 then f comm);
  w

let test_transfer_roundtrip () =
  ignore
    (in_world (fun comm ->
         let d = D.create D.Device 1000 in
         Mpicd_ddtbench.Kernel.fill (D.data d);
         let h = D.create D.Host 1000 in
         D.transfer comm ~src:d ~dst:h;
         Alcotest.(check bool) "D2H" true (Buf.equal (D.data d) (D.data h));
         let d2 = D.create D.Device 1000 in
         D.transfer comm ~src:h ~dst:d2;
         Alcotest.(check bool) "H2D" true (Buf.equal (D.data h) (D.data d2))))

let test_transfer_length_mismatch () =
  ignore
    (in_world (fun comm ->
         match
           D.transfer comm ~src:(D.create D.Host 4) ~dst:(D.create D.Host 8)
         with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()))

let test_pack_kernel_correct () =
  ignore
    (in_world (fun comm ->
         let src = D.create D.Device slab_bytes in
         Mpicd_ddtbench.Kernel.fill (D.data src);
         let packed = D.create D.Device (Blocks.total blocks) in
         D.pack_kernel comm blocks ~src ~dst:packed;
         (* reference pack on plain memory *)
         let expect = Buf.create (Blocks.total blocks) in
         ignore (Blocks.pack_range blocks ~base:(D.data src) ~offset:0 ~dst:expect);
         Alcotest.(check bool) "device pack = reference" true
           (Buf.equal expect (D.data packed));
         (* scatter back into a fresh slab *)
         let sink = D.create D.Device slab_bytes in
         D.unpack_kernel comm blocks ~src:packed ~dst:sink;
         Alcotest.(check bool) "roundtrip" true
           (Blocks.equal_typed blocks (D.data src) (D.data sink))))

let test_space_mismatch () =
  ignore
    (in_world (fun comm ->
         let src = D.create D.Device slab_bytes in
         let dst = D.create D.Host (Blocks.total blocks) in
         match D.pack_kernel comm blocks ~src ~dst with
         | () -> Alcotest.fail "expected Space_mismatch"
         | exception D.Space_mismatch _ -> ()))

let test_cost_ordering () =
  (* PCIe staging is slower than HBM, which is slower than nothing *)
  let time_of f =
    let w = Mpi.create_world ~size:1 () in
    let t = ref 0. in
    Mpi.run w (fun comm ->
        let t0 = Engine.now (Mpi.world_engine w) in
        f comm;
        t := Engine.now (Mpi.world_engine w) -. t0);
    !t
  in
  let n = 1 lsl 20 in
  let d2h =
    time_of (fun comm ->
        D.transfer comm ~src:(D.create D.Device n) ~dst:(D.create D.Host n))
  in
  let d2d =
    time_of (fun comm ->
        D.transfer comm ~src:(D.create D.Device n) ~dst:(D.create D.Device n))
  in
  Alcotest.(check bool)
    (Printf.sprintf "PCIe (%.0fns) slower than HBM (%.0fns)" d2h d2d)
    true (d2h > 2. *. d2d)

let method_bw m =
  (H.pingpong ~reps:3 ~bytes:(Blocks.total blocks)
     (D.exchange_impl m ~blocks ~slab_bytes))
    .H.bandwidth_mib_s

let test_methods_ordering () =
  (* sparse layout (6% dense): staging the whole slab loses to device
     packing; skipping the D2H staging of packed bytes is best *)
  let staged = method_bw D.Staged_host_pack in
  let dev_staged = method_bw D.Device_pack_staged in
  let direct = method_bw D.Device_pack_direct in
  Alcotest.(check bool)
    (Printf.sprintf "device pack (%.0f) beats host staging (%.0f)" dev_staged
       staged)
    true (dev_staged > staged);
  Alcotest.(check bool)
    (Printf.sprintf "direct (%.0f) beats staged (%.0f)" direct dev_staged)
    true (direct > dev_staged)

let test_exchange_delivers () =
  (* replicate the send/recv paths with separate buffers and verify the
     typed bytes arrive on the peer's device *)
  let w = Mpi.create_world ~size:2 () in
  let reference = Buf.create slab_bytes in
  Mpicd_ddtbench.Kernel.fill reference;
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let src = D.create D.Device slab_bytes in
        Buf.blit ~src:reference ~src_pos:0 ~dst:(D.data src) ~dst_pos:0
          ~len:slab_bytes;
        let packed = D.create D.Device (Blocks.total blocks) in
        D.pack_kernel comm blocks ~src ~dst:packed;
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (D.data packed))
      end
      else begin
        let packed = D.create D.Device (Blocks.total blocks) in
        ignore (Mpi.recv comm ~source:0 ~tag:0 (Mpi.Bytes (D.data packed)));
        let sink = D.create D.Device slab_bytes in
        D.unpack_kernel comm blocks ~src:packed ~dst:sink;
        Alcotest.(check bool) "typed bytes on peer device" true
          (Blocks.equal_typed blocks reference (D.data sink))
      end)

let suite =
  let tc = Alcotest.test_case in
  ( "device",
    [
      tc "transfer roundtrips across spaces" `Quick test_transfer_roundtrip;
      tc "transfer length mismatch" `Quick test_transfer_length_mismatch;
      tc "pack kernel correct" `Quick test_pack_kernel_correct;
      tc "space mismatch rejected" `Quick test_space_mismatch;
      tc "cost ordering PCIe vs HBM" `Quick test_cost_ordering;
      tc "method ordering (sparse layout)" `Quick test_methods_ordering;
      tc "device exchange delivers" `Quick test_exchange_delivers;
    ] )
