(* Integration tests asserting the paper's qualitative claims — the
   shapes EXPERIMENTS.md documents — at reduced scale so they run in
   the test suite. *)

module Config = Mpicd_simnet.Config
module Mpi = Mpicd.Mpi
module H = Mpicd_harness.Harness
module B = Mpicd_bench_types.Bench_types
module Methods = Mpicd_figures.Methods
module Objmsg = Mpicd_objmsg.Objmsg
module P = Mpicd_pickle.Pickle
module Registry = Mpicd_ddtbench.Registry
module Kernel = Mpicd_ddtbench.Kernel

let reps = 3

let lat ~bytes make = (H.pingpong ~reps ~bytes make).H.latency_us
let bw ~bytes make = (H.pingpong ~reps ~bytes make).H.bandwidth_mib_s

let check_order name slower faster =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%.2f should exceed %.2f)" name slower faster)
    true (slower > faster)

(* Fig. 1: at a fixed 64 KiB message, custom beats manual-pack for
   large subvectors and loses for tiny ones; crossover near 2^9. *)
let test_fig1_shape () =
  let total = 64 * 1024 in
  let custom subvec = lat ~bytes:total (Methods.dv_custom ~subvec ~total) in
  let manual = lat ~bytes:total (Methods.dv_manual ~subvec:1024 ~total) in
  let baseline = lat ~bytes:total (Methods.bytes_baseline ~total) in
  check_order "custom-64 worse than manual-pack" (custom 64) manual;
  check_order "manual-pack worse than custom-4K" manual (custom 4096);
  check_order "custom-4K worse than raw baseline" (custom 4096) baseline;
  check_order "custom improves with subvector size" (custom 64) (custom 1024)

(* Fig. 2: at large sizes the custom method's zero-copy regions beat
   manual packing; the raw-bytes baseline beats both. *)
let test_fig2_shape () =
  let total = 4 * 1024 * 1024 in
  let custom = bw ~bytes:total (Methods.dv_custom ~subvec:1024 ~total) in
  let manual = bw ~bytes:total (Methods.dv_manual ~subvec:1024 ~total) in
  let baseline = bw ~bytes:total (Methods.bytes_baseline ~total) in
  check_order "custom > manual-pack" custom manual;
  check_order "baseline > custom" baseline custom;
  Alcotest.(check bool) "custom wins by a meaningful factor" true
    (custom > manual *. 1.15)

(* Fig. 3: custom latency is higher than the derived datatype for a
   single small struct-vec element, and converges at large counts. *)
let test_fig3_shape () =
  let one = B.Struct_vec.packed_elem_size in
  let custom1 = lat ~bytes:one (Methods.st_custom (module B.Struct_vec) ~count:1) in
  let rsmpi1 = lat ~bytes:one (Methods.st_rsmpi (module B.Struct_vec) ~count:1) in
  check_order "custom worse at small size" custom1 rsmpi1;
  let count = 64 in
  let bytes = count * one in
  let custom = lat ~bytes (Methods.st_custom (module B.Struct_vec) ~count) in
  let rsmpi = lat ~bytes (Methods.st_rsmpi (module B.Struct_vec) ~count) in
  let manual = lat ~bytes (Methods.st_manual (module B.Struct_vec) ~count) in
  Alcotest.(check bool) "custom within 40% of rsmpi at 512K" true
    (custom < rsmpi *. 1.4);
  check_order "manual-pack worst at 512K" manual custom

(* Fig. 5 vs Fig. 6: the C-layout gap is what makes the derived
   datatype slow; removing it restores Open MPI's performance. *)
let test_fig5_fig6_shape () =
  let count = 1600 (* 32 KB packed *) in
  let bytes = count * B.Struct_simple.packed_elem_size in
  let rsmpi_gap = lat ~bytes (Methods.st_rsmpi (module B.Struct_simple) ~count) in
  let custom_gap = lat ~bytes (Methods.st_custom (module B.Struct_simple) ~count) in
  let manual_gap = lat ~bytes (Methods.st_manual (module B.Struct_simple) ~count) in
  check_order "Fig5: rsmpi much worse than custom" rsmpi_gap (custom_gap *. 1.5);
  check_order "Fig5: rsmpi much worse than manual" rsmpi_gap (manual_gap *. 1.5);
  let count = 2048 and one = B.Struct_simple_no_gap.packed_elem_size in
  let bytes = count * one in
  let rsmpi_ng =
    lat ~bytes (Methods.st_rsmpi (module B.Struct_simple_no_gap) ~count)
  in
  let manual_ng =
    lat ~bytes (Methods.st_manual (module B.Struct_simple_no_gap) ~count)
  in
  check_order "Fig6: without the gap rsmpi beats manual packing" manual_ng
    rsmpi_ng

(* Fig. 7: manual-pack (a contiguous byte-stream send) dips at the
   eager->rendezvous switch; the custom iov path does not. *)
let test_fig7_dip () =
  let limit = Config.default.link.eager_limit in
  let below_count = limit / B.Struct_simple.packed_elem_size in
  let above_count = below_count + 64 in
  let m count =
    bw
      ~bytes:(count * B.Struct_simple.packed_elem_size)
      (Methods.st_manual (module B.Struct_simple) ~count)
  in
  let c count =
    bw
      ~bytes:(count * B.Struct_simple.packed_elem_size)
      (Methods.st_custom (module B.Struct_simple) ~count)
  in
  check_order "manual-pack dips just above the eager limit" (m below_count)
    (m above_count);
  Alcotest.(check bool) "custom does not dip" true
    (c above_count >= c below_count *. 0.98)

(* Figs. 8/9: out-of-band strategies beat basic pickle for large
   objects; nobody reaches the roofline (receive-side allocation). *)
let python_shape make_obj total =
  let payload = P.payload_bytes (make_obj ()) in
  let strat s () =
    let obj = make_obj () in
    {
      H.send = (fun comm ~dst ~tag -> Objmsg.send s comm ~dst ~tag obj);
      H.recv =
        (fun comm ~source ~tag -> ignore (Objmsg.recv s comm ~source ~tag ()));
    }
  in
  let basic = bw ~bytes:payload (strat Objmsg.Pickle_basic) in
  let oob = bw ~bytes:payload (strat Objmsg.Pickle_oob) in
  let cdt = bw ~bytes:payload (strat Objmsg.Pickle_oob_cdt) in
  let roofline = bw ~bytes:payload (Methods.bytes_baseline ~total:payload) in
  ignore total;
  check_order "oob-cdt > basic" cdt basic;
  check_order "oob > basic" oob basic;
  check_order "roofline above cdt" roofline cdt;
  check_order "roofline above oob" roofline oob

let test_fig8_shape () =
  let n = 4 * 1024 * 1024 in
  python_shape (fun () -> P.Ndarray (P.ndarray ~dtype:P.U8 [| n |])) n

let test_fig9_shape () =
  let n = 4 * 1024 * 1024 in
  python_shape
    (fun () ->
      P.List
        (List.init (n / (128 * 1024)) (fun _ ->
             P.Ndarray (P.ndarray ~dtype:P.U8 [| 128 * 1024 |]))))
    n

(* Fig. 9 detail: oob-cdt needs 2 messages where plain oob needs one
   per buffer — and both still beat basic at the largest sizes. *)
let test_fig9_message_counts () =
  let obj =
    P.List
      (List.init 16 (fun _ -> P.Ndarray (P.ndarray ~dtype:P.U8 [| 128 * 1024 |])))
  in
  Alcotest.(check int) "oob messages" 18
    (Objmsg.messages_per_object Objmsg.Pickle_oob obj);
  Alcotest.(check int) "cdt messages" 2
    (Objmsg.messages_per_object Objmsg.Pickle_oob_cdt obj)

(* Fig. 10 shapes: where regions help and where they hurt. *)
let kernel_bw name method_ =
  match Registry.find name with
  | None -> Alcotest.failf "missing kernel %s" name
  | Some (module K : Kernel.KERNEL) ->
      let k = (module K : Kernel.KERNEL) in
      let make =
        match method_ with
        | `Reference -> Methods.k_reference k
        | `Manual -> Methods.k_manual k
        | `Ddt -> Methods.k_ddt_direct k
        | `Custom_pack -> Methods.k_custom_pack k
        | `Custom_regions ->
            fun () -> Option.get (Methods.k_custom_regions k ())
      in
      bw ~bytes:K.wire_bytes make

let test_fig10_regions_win_for_large_blocks () =
  (* few/large regions: MILC, NAS_LU_x, NAS_MG_y *)
  List.iter
    (fun name ->
      check_order
        (name ^ ": regions beat packing")
        (kernel_bw name `Custom_regions)
        (kernel_bw name `Custom_pack))
    [ "MILC_su3_zdown"; "NAS_LU_x"; "NAS_MG_y" ]

let test_fig10_regions_lose_for_small_blocks () =
  (* many/small regions: NAS_LU_y, NAS_MG_x *)
  List.iter
    (fun name ->
      check_order
        (name ^ ": packing beats regions")
        (kernel_bw name `Custom_pack)
        (kernel_bw name `Custom_regions))
    [ "NAS_LU_y"; "NAS_MG_x" ]

let test_fig10_custom_competitive () =
  (* custom packing is competitive with the datatype engine for LAMMPS
     and NAS_MG_x (paper: "provides competitive performance") *)
  List.iter
    (fun name ->
      let custom = kernel_bw name `Custom_pack in
      let ddt = kernel_bw name `Ddt in
      Alcotest.(check bool)
        (Printf.sprintf "%s: custom-pack >= 0.9x mpi-ddt (%.0f vs %.0f)" name
           custom ddt)
        true
        (custom >= 0.9 *. ddt))
    [ "LAMMPS_full"; "NAS_MG_x" ]

let test_fig10_reference_fastest () =
  List.iter
    (fun (module K : Kernel.KERNEL) ->
      let r = kernel_bw K.name `Reference in
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (K.name ^ ": reference is an upper bound")
            true
            (r >= kernel_bw K.name m *. 0.99))
        [ `Manual; `Ddt; `Custom_pack ])
    Registry.paper_kernels

let suite =
  let tc = Alcotest.test_case in
  ( "figures",
    [
      tc "Fig1 shape: subvector-size crossover" `Slow test_fig1_shape;
      tc "Fig2 shape: custom wins at scale" `Slow test_fig2_shape;
      tc "Fig3 shape: custom handicap then convergence" `Slow test_fig3_shape;
      tc "Fig5/6 shape: the gap penalty" `Slow test_fig5_fig6_shape;
      tc "Fig7 shape: eager->rndv dip" `Slow test_fig7_dip;
      tc "Fig8 shape: single array strategies" `Slow test_fig8_shape;
      tc "Fig9 shape: complex object strategies" `Slow test_fig9_shape;
      tc "Fig9 message counts" `Quick test_fig9_message_counts;
      tc "Fig10: regions win for large blocks" `Slow
        test_fig10_regions_win_for_large_blocks;
      tc "Fig10: regions lose for small blocks" `Slow
        test_fig10_regions_lose_for_small_blocks;
      tc "Fig10: custom-pack competitive" `Slow test_fig10_custom_competitive;
      tc "Fig10: reference is upper bound" `Slow test_fig10_reference_fastest;
    ] )
