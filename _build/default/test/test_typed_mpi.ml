(* Tests for the type-validated messaging layer. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module T = Mpicd_typed_mpi.Typed_mpi

let check_int = Alcotest.(check int)

let pattern n =
  let b = Buf.create n in
  for i = 0 to n - 1 do
    Buf.set_u8 b i ((i * 11 + 3) land 0xff)
  done;
  b

let test_fingerprint_roundtrip () =
  let dt = Dt.vector ~count:3 ~blocklength:2 ~stride:5 Dt.float64 in
  let fp = T.fingerprint dt ~count:7 in
  let fp2 = T.fingerprint dt ~count:7 in
  Alcotest.(check bool) "deterministic" true (Buf.equal fp fp2);
  let fp3 = T.fingerprint dt ~count:8 in
  Alcotest.(check bool) "count matters" false (Buf.equal fp fp3)

let test_matching_types () =
  let w = Mpi.create_world ~size:2 () in
  let dt = Dt.vector ~count:4 ~blocklength:1 ~stride:2 Dt.int32 in
  let src = pattern (Dt.extent dt * 3) in
  let dst = Buf.create (Dt.extent dt * 3) in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then T.send comm ~dst:1 ~tag:5 dt ~count:3 src
      else begin
        let st = T.recv comm ~source:0 ~tag:5 dt ~count:3 dst in
        check_int "len" (Dt.size dt * 3) st.len;
        Dt.iter_blocks dt ~count:3 ~f:(fun ~disp ~len ->
            for i = disp to disp + len - 1 do
              if Buf.get_u8 src i <> Buf.get_u8 dst i then
                Alcotest.failf "byte %d differs" i
            done)
      end)

let test_mismatch_detected () =
  let w = Mpi.create_world ~size:2 () in
  let send_dt = Dt.contiguous 4 Dt.float64 in
  let recv_dt = Dt.contiguous 8 Dt.int32 in
  let saw = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        T.send comm ~dst:1 ~tag:0 send_dt ~count:1 (pattern 32);
        (* channel must remain usable after the mismatch *)
        T.send comm ~dst:1 ~tag:1 recv_dt ~count:1 (pattern 32)
      end
      else begin
        (match
           T.recv comm ~source:0 ~tag:0 recv_dt ~count:1 (Buf.create 32)
         with
        | _ -> Alcotest.fail "expected Type_mismatch"
        | exception T.Type_mismatch { expected; got } ->
            saw := true;
            Alcotest.(check bool) "describes both" true
              (String.length expected > 0 && String.length got > 0
              && expected <> got));
        (* second message has the right type *)
        ignore (T.recv comm ~source:0 ~tag:1 recv_dt ~count:1 (Buf.create 32))
      end);
  Alcotest.(check bool) "mismatch seen" true !saw

let test_count_mismatch_detected () =
  let w = Mpi.create_world ~size:2 () in
  let dt = Dt.contiguous 4 Dt.int32 in
  let saw = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then T.send comm ~dst:1 ~tag:0 dt ~count:2 (pattern 32)
      else
        match T.recv comm ~source:0 ~tag:0 dt ~count:3 (Buf.create 48) with
        | _ -> Alcotest.fail "expected Type_mismatch"
        | exception T.Type_mismatch _ -> saw := true);
  Alcotest.(check bool) "seen" true !saw

let test_recv_any () =
  let w = Mpi.create_world ~size:2 () in
  let dt = Dt.vector ~count:5 ~blocklength:1 ~stride:3 Dt.int16 in
  let src = pattern (Dt.extent dt * 2) in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then T.send comm ~dst:1 ~tag:9 dt ~count:2 src
      else begin
        let got_dt, count, base, st = T.recv_any comm ~source:0 () in
        Alcotest.(check bool) "datatype reconstructed" true (Dt.equal got_dt dt);
        check_int "count" 2 count;
        check_int "tag" 9 st.tag;
        Dt.iter_blocks dt ~count:2 ~f:(fun ~disp ~len ->
            for i = disp to disp + len - 1 do
              if Buf.get_u8 src i <> Buf.get_u8 base i then
                Alcotest.failf "byte %d differs" i
            done)
      end)

let test_interleaved_typed_and_plain () =
  (* fingerprints in the aux tag space don't disturb plain messages *)
  let w = Mpi.create_world ~size:2 () in
  let dt = Dt.contiguous 2 Dt.int64 in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (pattern 8));
        T.send comm ~dst:1 ~tag:0 dt ~count:1 (pattern 16);
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Bytes (pattern 4))
      end
      else begin
        let b8 = Buf.create 8 in
        check_int "plain 8" 8 (Mpi.recv comm ~source:0 ~tag:0 (Mpi.Bytes b8)).len;
        ignore (T.recv comm ~source:0 ~tag:0 dt ~count:1 (Buf.create 16));
        let b4 = Buf.create 4 in
        check_int "plain 4" 4 (Mpi.recv comm ~source:0 ~tag:0 (Mpi.Bytes b4)).len
      end)

let gen_dt =
  let open QCheck.Gen in
  let pred = oneofl [ Dt.byte; Dt.int16; Dt.int32; Dt.int64; Dt.float64 ] in
  let rec go depth =
    if depth = 0 then pred
    else
      frequency
        [
          (2, pred);
          (2, map2 (fun n e -> Dt.contiguous n e) (1 -- 5) (go (depth - 1)));
          ( 2,
            map2
              (fun (c, b) e -> Dt.vector ~count:c ~blocklength:b ~stride:(b + 1) e)
              (pair (1 -- 4) (1 -- 3))
              (go (depth - 1)) );
        ]
  in
  go 2

let prop_fingerprint_sound =
  QCheck.Test.make
    ~name:"typed_mpi: equal fingerprints iff structurally equal types"
    ~count:200
    (QCheck.make QCheck.Gen.(pair gen_dt gen_dt))
    (fun (a, b) ->
      let fa = T.fingerprint a ~count:1 and fb = T.fingerprint b ~count:1 in
      Buf.equal fa fb = Dt.equal a b)

let suite =
  let tc = Alcotest.test_case in
  ( "typed_mpi",
    [
      tc "fingerprint roundtrip" `Quick test_fingerprint_roundtrip;
      tc "matching types deliver" `Quick test_matching_types;
      tc "type mismatch detected" `Quick test_mismatch_detected;
      tc "count mismatch detected" `Quick test_count_mismatch_detected;
      tc "recv_any reconstructs the type" `Quick test_recv_any;
      tc "typed and plain traffic interleave" `Quick test_interleaved_typed_and_plain;
      QCheck_alcotest.to_alcotest prop_fingerprint_sound;
    ] )
