(* Tests for the pickle-like serializer. *)

module Buf = Mpicd_buf.Buf
module P = Mpicd_pickle.Pickle

let check_int = Alcotest.(check int)

let roundtrip v = P.loads (P.dumps v)

let roundtrip_oob ?oob_threshold v =
  let header, buffers = P.dumps_oob ?oob_threshold v in
  P.loads ~buffers header

let check_rt name v =
  Alcotest.(check bool) (name ^ " (in-band)") true (P.equal v (roundtrip v));
  Alcotest.(check bool) (name ^ " (oob)") true (P.equal v (roundtrip_oob v))

let test_scalars () =
  check_rt "none" P.None_;
  check_rt "true" (P.Bool true);
  check_rt "false" (P.Bool false);
  check_rt "int" (P.Int 123456789L);
  check_rt "negative int" (P.Int (-42L));
  check_rt "int64 extremes" (P.Int Int64.min_int);
  check_rt "float" (P.Float 3.14159);
  check_rt "float special" (P.Float infinity);
  check_rt "str" (P.Str "hello \xc3\xa9\xc3\xa0");
  check_rt "empty str" (P.Str "")

let test_containers () =
  check_rt "list" (P.List [ P.Int 1L; P.Str "two"; P.Float 3.0 ]);
  check_rt "empty list" (P.List []);
  check_rt "tuple" (P.Tuple [ P.Bool true; P.None_ ]);
  check_rt "dict"
    (P.Dict [ (P.Str "k", P.Int 1L); (P.Int 2L, P.List [ P.None_ ]) ]);
  check_rt "nested"
    (P.Dict
       [
         ( P.Str "data",
           P.List [ P.Tuple [ P.Int 1L; P.Dict [ (P.Str "x", P.Float 0.5) ] ] ]
         );
       ])

let test_bytes_roundtrip () =
  let b = Buf.of_string "binary\x00data\xff" in
  check_rt "bytes" (P.Bytes b)

let test_ndarray_roundtrip () =
  let a = P.ndarray_of_floats [| 1.0; 2.5; -3.0; 4.25 |] in
  check_rt "1d f64" (P.Ndarray a);
  let m = P.ndarray ~dtype:P.I32 [| 3; 4 |] in
  for i = 0 to 11 do
    Buf.set_i32 m.data (4 * i) (Int32.of_int (i * i))
  done;
  check_rt "2d i32" (P.Ndarray m);
  check_rt "0-dim edge" (P.Ndarray (P.ndarray [||]))

let test_float_array_helpers () =
  let fs = [| 1.5; -2.0; 0.0; 99.75 |] in
  Alcotest.(check (array (float 0.))) "floats roundtrip" fs
    (P.floats_of_ndarray (P.ndarray_of_floats fs))

let test_header_small_for_oob () =
  (* The paper: array metadata header ~120 bytes regardless of payload. *)
  let small = P.Ndarray (P.ndarray [| 16 |]) in
  let big = P.Ndarray (P.ndarray [| 1024 * 1024 |]) in
  let h1, _ = P.dumps_oob small in
  let h2, _ = P.dumps_oob big in
  Alcotest.(check bool) "headers tiny and size-independent" true
    (Buf.length h1 = Buf.length h2 && Buf.length h1 < 128)

let test_oob_zero_copy_send () =
  let a = P.ndarray [| 1000 |] in
  let _, buffers = P.dumps_oob (P.Ndarray a) in
  match buffers with
  | [ b ] ->
      Alcotest.(check bool) "oob buffer aliases array data" true
        (Buf.same_memory b a.data)
  | _ -> Alcotest.fail "expected exactly one oob buffer"

let test_oob_zero_copy_recv () =
  let a = P.ndarray_of_floats (Array.init 256 float_of_int) in
  let header, buffers = P.dumps_oob (P.Ndarray a) in
  match (P.loads ~buffers header, buffers) with
  | P.Ndarray got, [ b ] ->
      Alcotest.(check bool) "reconstructed array aliases supplied buffer" true
        (Buf.same_memory got.data b)
  | _ -> Alcotest.fail "unexpected shape"

let test_oob_threshold () =
  let small = P.Bytes (Buf.create 10) in
  let big = P.Bytes (Buf.create 4096) in
  let _, b1 = P.dumps_oob ~oob_threshold:1024 small in
  let _, b2 = P.dumps_oob ~oob_threshold:1024 big in
  check_int "small bytes stay in-band" 0 (List.length b1);
  check_int "big bytes go oob" 1 (List.length b2)

let test_inband_has_no_buffers () =
  let v = P.List [ P.Ndarray (P.ndarray [| 5000 |]); P.Bytes (Buf.create 5000) ] in
  let stream = P.dumps v in
  Alcotest.(check bool) "stream carries the payload" true
    (Buf.length stream > 2 * 5000)

let test_multiple_oob_buffers_order () =
  let arrays = List.init 5 (fun i -> P.ndarray [| 100 * (i + 1) |]) in
  List.iteri (fun i a -> Buf.fill a.P.data (Char.chr (i + 65))) arrays;
  let v = P.List (List.map (fun a -> P.Ndarray a) arrays) in
  let header, buffers = P.dumps_oob v in
  check_int "five buffers" 5 (List.length buffers);
  (* order matches traversal order *)
  List.iteri
    (fun i b -> check_int (Printf.sprintf "buffer %d size" i) (800 * (i + 1)) (Buf.length b))
    buffers;
  Alcotest.(check bool) "roundtrip" true (P.equal v (P.loads ~buffers header))

let test_corrupt_stream () =
  let check_corrupt name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Corrupt")
    | exception P.Corrupt _ -> ()
  in
  check_corrupt "empty" (fun () -> P.loads (Buf.create 0));
  check_corrupt "bad opcode" (fun () -> P.loads (Buf.of_string "\x01"));
  check_corrupt "truncated int" (fun () -> P.loads (Buf.of_string "\x49\x01"));
  (let good = P.dumps (P.Str "hello") in
   let cut = Buf.sub good ~pos:0 ~len:(Buf.length good - 2) in
   check_corrupt "truncated str" (fun () -> P.loads cut));
  (* missing oob buffer *)
  let header, _ = P.dumps_oob (P.Ndarray (P.ndarray [| 4096 |])) in
  check_corrupt "missing buffers" (fun () -> P.loads header);
  (* wrong buffer length *)
  check_corrupt "wrong buffer size" (fun () ->
      P.loads ~buffers:[ Buf.create 3 ] header)

let test_missing_stop () =
  let good = P.dumps (P.Int 5L) in
  let cut = Buf.sub good ~pos:0 ~len:(Buf.length good - 1) in
  match P.loads cut with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception P.Corrupt _ -> ()

let test_visit_count () =
  check_int "scalar" 1 (P.visit_count (P.Int 0L));
  check_int "list of 3" 4 (P.visit_count (P.List [ P.Int 0L; P.Int 1L; P.Int 2L ]));
  check_int "dict" 3 (P.visit_count (P.Dict [ (P.Str "k", P.Int 0L) ]))

let test_payload_bytes () =
  let v =
    P.List [ P.Ndarray (P.ndarray [| 100 |]); P.Bytes (Buf.create 36); P.Int 1L ]
  in
  check_int "payload bytes" (800 + 36) (P.payload_bytes v)

(* property: random object graphs roundtrip under both protocols *)
let gen_pickle =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return P.None_;
        map (fun b -> P.Bool b) bool;
        map (fun i -> P.Int (Int64.of_int i)) int;
        map (fun f -> P.Float f) (float_bound_inclusive 1e6);
        map (fun s -> P.Str s) (string_size (0 -- 20));
        map (fun n -> P.Ndarray (P.ndarray [| n |])) (0 -- 64);
      ]
  in
  let rec go depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> P.List l) (list_size (0 -- 4) (go (depth - 1))));
          (1, map (fun l -> P.Tuple l) (list_size (0 -- 4) (go (depth - 1))));
          ( 1,
            map
              (fun l -> P.Dict (List.mapi (fun i v -> (P.Int (Int64.of_int i), v)) l))
              (list_size (0 -- 3) (go (depth - 1))) );
        ]
  in
  go 3

let prop_roundtrip_inband =
  QCheck.Test.make ~name:"pickle: in-band roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" P.pp) gen_pickle)
    (fun v -> P.equal v (P.loads (P.dumps v)))

let prop_roundtrip_oob =
  QCheck.Test.make ~name:"pickle: oob roundtrip (threshold 16)" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" P.pp) gen_pickle)
    (fun v ->
      let header, buffers = P.dumps_oob ~oob_threshold:16 v in
      P.equal v (P.loads ~buffers header))

let suite =
  let tc = Alcotest.test_case in
  ( "pickle",
    [
      tc "scalars" `Quick test_scalars;
      tc "containers" `Quick test_containers;
      tc "bytes" `Quick test_bytes_roundtrip;
      tc "ndarray" `Quick test_ndarray_roundtrip;
      tc "float array helpers" `Quick test_float_array_helpers;
      tc "oob header small & size-independent" `Quick test_header_small_for_oob;
      tc "oob zero-copy on send" `Quick test_oob_zero_copy_send;
      tc "oob zero-copy on receive" `Quick test_oob_zero_copy_recv;
      tc "oob threshold" `Quick test_oob_threshold;
      tc "in-band stream carries payload" `Quick test_inband_has_no_buffers;
      tc "multiple oob buffers in order" `Quick test_multiple_oob_buffers_order;
      tc "corrupt streams rejected" `Quick test_corrupt_stream;
      tc "missing stop rejected" `Quick test_missing_stop;
      tc "visit_count" `Quick test_visit_count;
      tc "payload_bytes" `Quick test_payload_bytes;
      QCheck_alcotest.to_alcotest prop_roundtrip_inband;
      QCheck_alcotest.to_alcotest prop_roundtrip_oob;
    ] )
