(* Unit and property tests for Mpicd_buf.Buf. *)

module Buf = Mpicd_buf.Buf

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_create_zeroed () =
  let b = Buf.create 17 in
  check_int "length" 17 (Buf.length b);
  for i = 0 to 16 do
    check_int "zero" 0 (Buf.get_u8 b i)
  done

let test_create_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Buf.create: negative length")
    (fun () -> ignore (Buf.create (-1)))

let test_set_get () =
  let b = Buf.create 8 in
  Buf.set b 3 'x';
  Alcotest.(check char) "get" 'x' (Buf.get b 3);
  Buf.set_u8 b 4 0x1ff;
  check_int "u8 masked" 0xff (Buf.get_u8 b 4)

let test_bounds () =
  let b = Buf.create 4 in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Buf.get b 4);
  expect_invalid (fun () -> Buf.get b (-1));
  expect_invalid (fun () -> Buf.get_i32 b 1);
  expect_invalid (fun () -> Buf.set_i64 b 0 1L);
  expect_invalid (fun () -> Buf.sub b ~pos:2 ~len:3);
  expect_invalid (fun () -> Buf.sub b ~pos:(-1) ~len:2)

let test_i32_roundtrip () =
  let b = Buf.create 16 in
  let values = [ 0l; 1l; -1l; Int32.max_int; Int32.min_int; 0x12345678l ] in
  List.iter
    (fun v ->
      Buf.set_i32 b 5 v;
      Alcotest.(check int32) "i32" v (Buf.get_i32 b 5))
    values

let test_i32_little_endian () =
  let b = Buf.create 4 in
  Buf.set_i32 b 0 0x04030201l;
  check_int "byte0" 1 (Buf.get_u8 b 0);
  check_int "byte1" 2 (Buf.get_u8 b 1);
  check_int "byte2" 3 (Buf.get_u8 b 2);
  check_int "byte3" 4 (Buf.get_u8 b 3)

let test_i64_roundtrip () =
  let b = Buf.create 16 in
  let values =
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x0123456789ABCDEFL ]
  in
  List.iter
    (fun v ->
      Buf.set_i64 b 7 v;
      Alcotest.(check int64) "i64" v (Buf.get_i64 b 7))
    values

let test_f64_roundtrip () =
  let b = Buf.create 8 in
  let values = [ 0.; 1.5; -3.25; Float.max_float; Float.min_float; infinity ] in
  List.iter
    (fun v ->
      Buf.set_f64 b 0 v;
      Alcotest.(check (float 0.)) "f64" v (Buf.get_f64 b 0))
    values;
  Buf.set_f64 b 0 nan;
  Alcotest.(check bool) "nan" true (Float.is_nan (Buf.get_f64 b 0))

let test_f32_roundtrip () =
  let b = Buf.create 4 in
  List.iter
    (fun v ->
      Buf.set_f32 b 0 v;
      Alcotest.(check (float 0.)) "f32" v (Buf.get_f32 b 0))
    [ 0.; 1.5; -2.25; 1024.0 ]

let test_sub_aliases () =
  let b = Buf.create 10 in
  let s = Buf.sub b ~pos:2 ~len:4 in
  Buf.set s 0 'a';
  Alcotest.(check char) "aliased write" 'a' (Buf.get b 2);
  check_int "sub length" 4 (Buf.length s);
  Alcotest.(check bool) "overlaps" true (Buf.overlaps b s);
  Alcotest.(check bool) "not same memory" false (Buf.same_memory b s);
  Alcotest.(check bool) "same memory reflexive" true (Buf.same_memory s s)

let test_blit () =
  let src = Buf.of_string "hello world" in
  let dst = Buf.create 11 in
  Buf.blit ~src ~src_pos:0 ~dst ~dst_pos:0 ~len:11;
  check_str "full blit" "hello world" (Buf.to_string dst);
  Buf.blit ~src ~src_pos:6 ~dst ~dst_pos:0 ~len:5;
  check_str "partial blit" "world world" (Buf.to_string dst)

let test_blit_overlapping () =
  let b = Buf.of_string "abcdef" in
  Buf.blit ~src:b ~src_pos:0 ~dst:b ~dst_pos:2 ~len:4;
  check_str "memmove forward" "ababcd" (Buf.to_string b);
  let b2 = Buf.of_string "abcdef" in
  Buf.blit ~src:b2 ~src_pos:2 ~dst:b2 ~dst_pos:0 ~len:4;
  check_str "memmove backward" "cdefef" (Buf.to_string b2)

let test_fill_copy_equal () =
  let a = Buf.create 5 in
  Buf.fill a 'z';
  check_str "fill" "zzzzz" (Buf.to_string a);
  let b = Buf.copy a in
  Alcotest.(check bool) "equal" true (Buf.equal a b);
  Buf.set b 0 'y';
  Alcotest.(check bool) "not equal after write" false (Buf.equal a b);
  Alcotest.(check bool) "copy is fresh memory" false (Buf.overlaps a b)

let test_equal_length_mismatch () =
  let a = Buf.of_string "abc" and b = Buf.of_string "abcd" in
  Alcotest.(check bool) "different lengths" false (Buf.equal a b)

let test_concat () =
  let parts = [ Buf.of_string "ab"; Buf.create 0; Buf.of_string "cde" ] in
  check_str "concat" "abcde" (Buf.to_string (Buf.concat parts));
  check_int "concat empty" 0 (Buf.length (Buf.concat []))

let test_string_roundtrip () =
  let s = "The quick brown fox \x00\x01\xff" in
  check_str "roundtrip" s (Buf.to_string (Buf.of_string s))

let test_blit_from_string () =
  let dst = Buf.create 6 in
  Buf.blit_from_string "xxhellozz" ~src_pos:2 ~dst ~dst_pos:1 ~len:5;
  check_str "from string" "\000hello" (Buf.to_string dst)

let test_blit_to_bytes () =
  let src = Buf.of_string "abcdef" in
  let dst = Bytes.make 4 '.' in
  Buf.blit_to_bytes ~src ~src_pos:1 ~dst ~dst_pos:1 ~len:3;
  check_str "to bytes" ".bcd" (Bytes.to_string dst)

let test_hexdump () =
  let b = Buf.of_string "AB" in
  let dump = Buf.hexdump b in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "hex bytes shown" true (contains dump "41 42");
  Alcotest.(check bool) "ascii shown" true (contains dump "AB");
  let big = Buf.create 1000 in
  Alcotest.(check bool) "truncation note" true
    (contains (Buf.hexdump ~max_bytes:32 big) "more bytes")

(* Property tests *)

let prop_blit_roundtrip =
  QCheck.Test.make ~name:"buf: string->buf->string roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 512))
    (fun s -> Buf.to_string (Buf.of_string s) = s)

let prop_sub_consistent =
  QCheck.Test.make ~name:"buf: sub matches String.sub" ~count:200
    QCheck.(
      pair (string_of_size Gen.(1 -- 256)) (pair small_nat small_nat))
    (fun (s, (a, b)) ->
      let n = String.length s in
      let pos = a mod n in
      let len = b mod (n - pos + 1) in
      Buf.to_string (Buf.sub (Buf.of_string s) ~pos ~len) = String.sub s pos len)

let prop_i64_any =
  QCheck.Test.make ~name:"buf: i64 roundtrip" ~count:500 QCheck.int64
    (fun v ->
      let b = Buf.create 8 in
      Buf.set_i64 b 0 v;
      Buf.get_i64 b 0 = v)

let prop_concat_length =
  QCheck.Test.make ~name:"buf: concat length is sum" ~count:100
    QCheck.(list (string_of_size Gen.(0 -- 64)))
    (fun parts ->
      let bufs = List.map Buf.of_string parts in
      Buf.length (Buf.concat bufs)
      = List.fold_left (fun acc s -> acc + String.length s) 0 parts)

let suite =
  let tc = Alcotest.test_case in
  ( "buf",
    [
      tc "create zeroed" `Quick test_create_zeroed;
      tc "create negative" `Quick test_create_negative;
      tc "set/get" `Quick test_set_get;
      tc "bounds checking" `Quick test_bounds;
      tc "i32 roundtrip" `Quick test_i32_roundtrip;
      tc "i32 little-endian layout" `Quick test_i32_little_endian;
      tc "i64 roundtrip" `Quick test_i64_roundtrip;
      tc "f64 roundtrip" `Quick test_f64_roundtrip;
      tc "f32 roundtrip" `Quick test_f32_roundtrip;
      tc "sub aliases storage" `Quick test_sub_aliases;
      tc "blit" `Quick test_blit;
      tc "blit overlapping" `Quick test_blit_overlapping;
      tc "fill/copy/equal" `Quick test_fill_copy_equal;
      tc "equal length mismatch" `Quick test_equal_length_mismatch;
      tc "concat" `Quick test_concat;
      tc "string roundtrip" `Quick test_string_roundtrip;
      tc "blit_from_string" `Quick test_blit_from_string;
      tc "blit_to_bytes" `Quick test_blit_to_bytes;
      tc "hexdump" `Quick test_hexdump;
      QCheck_alcotest.to_alcotest prop_blit_roundtrip;
      QCheck_alcotest.to_alcotest prop_sub_consistent;
      QCheck_alcotest.to_alcotest prop_i64_any;
      QCheck_alcotest.to_alcotest prop_concat_length;
    ] )
