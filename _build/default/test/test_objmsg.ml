(* Tests for the mpi4py-style object messaging layer. *)

module Buf = Mpicd_buf.Buf
module P = Mpicd_pickle.Pickle
module Mpi = Mpicd.Mpi
module Objmsg = Mpicd_objmsg.Objmsg

let check_int = Alcotest.(check int)

let sample_object () =
  P.Dict
    [
      (P.Str "name", P.Str "halo");
      (P.Str "step", P.Int 42L);
      (P.Str "field", P.Ndarray (P.ndarray_of_floats (Array.init 512 float_of_int)));
      ( P.Str "parts",
        P.List
          [
            P.Ndarray (P.ndarray ~dtype:P.I32 [| 100 |]);
            P.Tuple [ P.Bool true; P.Float 0.5 ];
          ] );
    ]

let exchange strategy obj =
  let w = Mpi.create_world ~size:2 () in
  let got = ref P.None_ in
  let st = ref None in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then Objmsg.send strategy comm ~dst:1 ~tag:3 obj
      else begin
        let o, s = Objmsg.recv strategy comm ~source:0 ~tag:3 () in
        got := o;
        st := Some s
      end);
  (!got, Option.get !st, Mpi.world_stats w)

let test_strategy strategy () =
  let obj = sample_object () in
  let got, st, _ = exchange strategy obj in
  Alcotest.(check bool)
    (Objmsg.strategy_name strategy ^ " delivers equal object")
    true (P.equal obj got);
  check_int "status source" 0 st.source;
  check_int "status tag" 3 st.tag

let test_basic () = test_strategy Objmsg.Pickle_basic ()
let test_oob () = test_strategy Objmsg.Pickle_oob ()
let test_oob_cdt () = test_strategy Objmsg.Pickle_oob_cdt ()

let test_strategies_agree () =
  let obj = sample_object () in
  let a, _, _ = exchange Objmsg.Pickle_basic obj in
  let b, _, _ = exchange Objmsg.Pickle_oob obj in
  let c, _, _ = exchange Objmsg.Pickle_oob_cdt obj in
  Alcotest.(check bool) "basic = oob" true (P.equal a b);
  Alcotest.(check bool) "oob = cdt" true (P.equal b c)

let test_scalar_only_objects () =
  (* no arrays: oob degenerates gracefully (no buffers) *)
  let obj = P.List [ P.Int 1L; P.Str "x"; P.None_ ] in
  List.iter
    (fun s ->
      let got, _, _ = exchange s obj in
      Alcotest.(check bool) (Objmsg.strategy_name s) true (P.equal obj got))
    [ Objmsg.Pickle_basic; Objmsg.Pickle_oob; Objmsg.Pickle_oob_cdt ]

let test_message_counts () =
  let obj = sample_object () in
  (* sample object has 2 arrays above the oob threshold *)
  check_int "basic: one message" 1
    (Objmsg.messages_per_object Objmsg.Pickle_basic obj);
  check_int "oob: header + lengths + one per buffer" 4
    (Objmsg.messages_per_object Objmsg.Pickle_oob obj);
  check_int "cdt: lengths + single custom message" 2
    (Objmsg.messages_per_object Objmsg.Pickle_oob_cdt obj)

let test_wire_message_counts_observed () =
  let obj = sample_object () in
  let count strategy =
    let _, _, stats = exchange strategy obj in
    stats.messages_sent
  in
  let basic = count Objmsg.Pickle_basic in
  let oob = count Objmsg.Pickle_oob in
  let cdt = count Objmsg.Pickle_oob_cdt in
  check_int "basic" 1 basic;
  check_int "oob" 4 oob;
  check_int "cdt" 2 cdt

let test_basic_copies_payload_oob_does_not () =
  let big = P.Ndarray (P.ndarray [| 512 * 1024 |]) in
  let payload = P.payload_bytes big in
  let _, _, s_basic = exchange Objmsg.Pickle_basic big in
  let _, _, s_cdt = exchange Objmsg.Pickle_oob_cdt big in
  Alcotest.(check bool) "basic copies >= 2x payload" true
    (s_basic.bytes_copied >= 2 * payload);
  Alcotest.(check bool) "cdt copies << payload" true
    (s_cdt.bytes_copied < payload / 10)

let test_memory_amplification () =
  (* peak allocation: basic buffers the serialized stream on both
     sides; the oob strategies never hold a full extra copy. *)
  let big = P.Ndarray (P.ndarray [| 1024 * 1024 |]) in
  let payload = P.payload_bytes big in
  let _, _, s_basic = exchange Objmsg.Pickle_basic big in
  let _, _, s_oob = exchange Objmsg.Pickle_oob big in
  Alcotest.(check bool) "basic peak >= 2x payload" true
    (s_basic.peak_alloc_bytes >= 2 * payload);
  Alcotest.(check bool) "oob peak < 1.5x payload" true
    (s_oob.peak_alloc_bytes < payload * 3 / 2)

let test_interleaved_tags () =
  (* two objects on different tags, received in reverse order *)
  let o1 = P.Str "first" and o2 = P.Str "second" in
  let w = Mpi.create_world ~size:2 () in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        Objmsg.send Objmsg.Pickle_basic comm ~dst:1 ~tag:1 o1;
        Objmsg.send Objmsg.Pickle_basic comm ~dst:1 ~tag:2 o2
      end
      else begin
        let got2, _ = Objmsg.recv Objmsg.Pickle_basic comm ~source:0 ~tag:2 () in
        let got1, _ = Objmsg.recv Objmsg.Pickle_basic comm ~source:0 ~tag:1 () in
        Alcotest.(check bool) "tag 2" true (P.equal o2 got2);
        Alcotest.(check bool) "tag 1" true (P.equal o1 got1)
      end)

let test_pingpong_multiple_rounds () =
  let w = Mpi.create_world ~size:2 () in
  let obj = sample_object () in
  Mpi.run w (fun comm ->
      for round = 1 to 5 do
        if Mpi.rank comm = 0 then begin
          Objmsg.send Objmsg.Pickle_oob_cdt comm ~dst:1 ~tag:round obj;
          let got, _ = Objmsg.recv Objmsg.Pickle_oob_cdt comm ~source:1 ~tag:round () in
          Alcotest.(check bool) "echo equal" true (P.equal obj got)
        end
        else begin
          let got, _ = Objmsg.recv Objmsg.Pickle_oob_cdt comm ~source:0 ~tag:round () in
          Objmsg.send Objmsg.Pickle_oob_cdt comm ~dst:0 ~tag:round got
        end
      done)

let suite =
  let tc = Alcotest.test_case in
  ( "objmsg",
    [
      tc "pickle-basic roundtrip" `Quick test_basic;
      tc "pickle-oob roundtrip" `Quick test_oob;
      tc "pickle-oob-cdt roundtrip" `Quick test_oob_cdt;
      tc "strategies agree" `Quick test_strategies_agree;
      tc "scalar-only objects" `Quick test_scalar_only_objects;
      tc "declared message counts" `Quick test_message_counts;
      tc "observed wire message counts" `Quick test_wire_message_counts_observed;
      tc "basic copies payload, cdt does not" `Quick test_basic_copies_payload_oob_does_not;
      tc "memory amplification of basic pickle" `Quick test_memory_amplification;
      tc "interleaved tags" `Quick test_interleaved_tags;
      tc "pingpong multiple rounds" `Quick test_pingpong_multiple_rounds;
    ] )
