(* Tests for the multithreaded tag-space model (paper §VI). *)

module T = Mpicd_objmsg.Threaded

let run mode ~nthreads =
  T.run mode ~nthreads ~objects_per_thread:4 ~arrays_per_object:3
    ~chunk_bytes:2048

let test_locked_oob_correct () =
  List.iter
    (fun nthreads ->
      let o = run T.Oob_locked ~nthreads in
      Alcotest.(check int)
        (Printf.sprintf "no corruption with %d threads" nthreads)
        0 o.corrupted)
    [ 1; 2; 4; 8 ]

let test_cdt_tagged_correct () =
  List.iter
    (fun nthreads ->
      let o = run T.Cdt_tagged ~nthreads in
      Alcotest.(check int)
        (Printf.sprintf "no corruption with %d threads" nthreads)
        0 o.corrupted)
    [ 1; 2; 4; 8 ]

let test_unlocked_oob_hazard () =
  (* one thread is fine... *)
  Alcotest.(check int) "single thread safe" 0 (run T.Oob_unlocked ~nthreads:1).corrupted;
  (* ...but concurrent threads interleave sub-messages *)
  let o = run T.Oob_unlocked ~nthreads:8 in
  Alcotest.(check bool)
    (Printf.sprintf "hazard manifests (%d corrupted)" o.corrupted)
    true (o.corrupted > 0)

let test_lock_serializes () =
  (* the per-communicator lock forfeits thread-level overlap: elapsed
     time barely improves with more threads, while the custom-datatype
     path scales *)
  let locked1 = (run T.Oob_locked ~nthreads:1).elapsed_us in
  let locked8 = (run T.Oob_locked ~nthreads:8).elapsed_us in
  let cdt1 = (run T.Cdt_tagged ~nthreads:1).elapsed_us in
  let cdt8 = (run T.Cdt_tagged ~nthreads:8).elapsed_us in
  (* same total work: 8 threads send 8x the objects of 1 thread *)
  Alcotest.(check bool)
    (Printf.sprintf "locked oob scales poorly (1t: %.0fus, 8t: %.0fus)" locked1
       locked8)
    true
    (locked8 > 4. *. locked1);
  Alcotest.(check bool)
    (Printf.sprintf "cdt overlaps threads (1t: %.0fus, 8t: %.0fus)" cdt1 cdt8)
    true
    (cdt8 < 3. *. cdt1)

let test_message_counts () =
  (* oob: (2 + arrays) messages per object; cdt: 2 per object *)
  let oob = run T.Oob_locked ~nthreads:2 in
  let cdt = run T.Cdt_tagged ~nthreads:2 in
  Alcotest.(check int) "oob messages" (2 * 4 * (2 + 3)) oob.messages;
  Alcotest.(check int) "cdt messages" (2 * 4 * 2) cdt.messages

let suite =
  let tc = Alcotest.test_case in
  ( "threaded",
    [
      tc "locked oob is correct" `Quick test_locked_oob_correct;
      tc "cdt with per-object tags is correct" `Quick test_cdt_tagged_correct;
      tc "unlocked oob interleaves (the hazard is real)" `Quick
        test_unlocked_oob_hazard;
      tc "lock serializes, cdt overlaps" `Quick test_lock_serializes;
      tc "message counts" `Quick test_message_counts;
    ] )
