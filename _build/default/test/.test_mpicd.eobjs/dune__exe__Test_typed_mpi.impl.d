test/test_typed_mpi.ml: Alcotest Mpicd Mpicd_buf Mpicd_datatype Mpicd_typed_mpi QCheck QCheck_alcotest String
