test/test_serde.ml: Alcotest Char List Mpicd Mpicd_buf Mpicd_serde QCheck QCheck_alcotest String
