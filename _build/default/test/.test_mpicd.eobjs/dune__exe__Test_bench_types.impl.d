test/test_bench_types.ml: Alcotest Array Filename Fun List Mpicd Mpicd_bench_types Mpicd_buf Mpicd_datatype Mpicd_harness String Sys
