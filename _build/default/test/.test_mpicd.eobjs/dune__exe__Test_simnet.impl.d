test/test_simnet.ml: Alcotest Array Buffer Config Engine Format Fun Heap List Mpicd_simnet Printf QCheck QCheck_alcotest Rng Stats String Trace
