test/test_figures.ml: Alcotest List Mpicd Mpicd_bench_types Mpicd_ddtbench Mpicd_figures Mpicd_harness Mpicd_objmsg Mpicd_pickle Mpicd_simnet Option Printf
