test/test_collectives.ml: Alcotest Array Float Gen List Mpicd Mpicd_bench_types Mpicd_buf Mpicd_collectives Mpicd_ddtbench Mpicd_simnet Printf QCheck QCheck_alcotest String
