test/test_derive.ml: Alcotest Gen List Mpicd_datatype Mpicd_derive QCheck QCheck_alcotest
