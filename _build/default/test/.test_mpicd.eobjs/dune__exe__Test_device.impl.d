test/test_device.ml: Alcotest List Mpicd Mpicd_buf Mpicd_ddtbench Mpicd_device Mpicd_harness Mpicd_simnet Printf
