test/test_ucx.ml: Alcotest Int32 List Mpicd_buf Mpicd_simnet Mpicd_ucx Printf
