test/test_buf.ml: Alcotest Bytes Float Gen Int32 Int64 List Mpicd_buf QCheck QCheck_alcotest String
