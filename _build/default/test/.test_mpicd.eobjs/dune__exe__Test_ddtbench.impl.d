test/test_ddtbench.ml: Alcotest Array List Mpicd Mpicd_buf Mpicd_datatype Mpicd_ddtbench Option Printf QCheck QCheck_alcotest String
