test/test_core.ml: Alcotest Array Fmt Fun Int32 List Mpicd Mpicd_buf Mpicd_datatype Mpicd_simnet Printf QCheck QCheck_alcotest
