test/test_datatype.ml: Alcotest Array List Mpicd_buf Mpicd_datatype Mpicd_simnet Printf QCheck QCheck_alcotest
