test/test_pickle.ml: Alcotest Array Char Format Int32 Int64 List Mpicd_buf Mpicd_pickle Printf QCheck QCheck_alcotest
