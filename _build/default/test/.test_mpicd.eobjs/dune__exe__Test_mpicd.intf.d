test/test_mpicd.mli:
