test/test_objmsg.ml: Alcotest Array List Mpicd Mpicd_buf Mpicd_objmsg Mpicd_pickle Option
