test/test_threaded.ml: Alcotest List Mpicd_objmsg Printf
