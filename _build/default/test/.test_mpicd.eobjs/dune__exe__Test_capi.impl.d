test/test_capi.ml: Alcotest Array Int32 Mpicd Mpicd_buf Mpicd_capi Mpicd_simnet Option
