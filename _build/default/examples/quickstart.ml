(* Quickstart: define a custom datatype for a dynamic type and send it
   between two ranks.

   The type here is a list of strings — something classic MPI derived
   datatypes cannot describe (multiple heap allocations of varying
   length).  With the custom serialization API we provide:

   - query: total packed size (here: the lengths header),
   - pack/unpack: serialize the lengths at any requested offset,
   - regions: the string payloads as zero-copy memory regions.

   Run with:  dune exec examples/quickstart.exe *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom

(* Our application type: a mutable record of rope fragments. *)
type rope = { mutable fragments : Buf.t list }

(* The custom datatype.  The state object carries the serialized
   lengths header, built once per operation (paper Listing 3). *)
let rope_dt : rope Custom.t =
  let header_of rope =
    let n = List.length rope.fragments in
    let h = Buf.create (4 * (n + 1)) in
    Buf.set_i32 h 0 (Int32.of_int n);
    List.iteri
      (fun i frag -> Buf.set_i32 h (4 * (i + 1)) (Int32.of_int (Buf.length frag)))
      rope.fragments;
    h
  in
  Custom.create
    {
      state = (fun rope ~count:_ -> header_of rope);
      state_free = ignore;
      query = (fun header _ ~count:_ -> Buf.length header);
      pack =
        (fun header _ ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (Buf.length header - offset) in
          Buf.blit ~src:header ~src_pos:offset ~dst ~dst_pos:0 ~len;
          len);
      unpack =
        (fun expected _ ~count:_ ~offset ~src ->
          (* the receiver posted buffers of known sizes; verify *)
          for i = 0 to Buf.length src - 1 do
            if Buf.get src i <> Buf.get expected (offset + i) then
              raise (Custom.Error 1)
          done);
      region_count = Some (fun _ rope ~count:_ -> List.length rope.fragments);
      regions = Some (fun _ rope ~count:_ -> Array.of_list rope.fragments);
    }

let () =
  let world = Mpi.create_world ~size:2 () in
  Mpi.run world (fun comm ->
      if Mpi.rank comm = 0 then begin
        let rope =
          {
            fragments =
              List.map Buf.of_string
                [ "MPI "; "needs "; "custom "; "datatype "; "serialization!" ];
          }
        in
        Mpi.send comm ~dst:1 ~tag:0 (Mpi.Custom { dt = rope_dt; obj = rope; count = 1 });
        Printf.printf "[rank 0] sent a rope of %d fragments\n"
          (List.length rope.fragments)
      end
      else begin
        (* Receive side: sizes are agreed upon beforehand (the paper's
           §VI limitation; the objmsg layer shows the two-message
           workaround). *)
        let sink = { fragments = List.map Buf.create [ 4; 6; 7; 9; 14 ] } in
        let st =
          Mpi.recv comm ~source:0 ~tag:0
            (Mpi.Custom { dt = rope_dt; obj = sink; count = 1 })
        in
        let text = String.concat "" (List.map Buf.to_string sink.fragments) in
        Printf.printf "[rank 1] received %d bytes: %S\n" st.len text
      end);
  let stats = Mpi.world_stats world in
  Printf.printf "wire messages: %d, CPU-copied payload bytes: %d (zero-copy!)\n"
    stats.messages_sent stats.bytes_copied
