examples/quickstart.ml: Array Int32 List Mpicd Mpicd_buf Printf String
