examples/quickstart.mli:
