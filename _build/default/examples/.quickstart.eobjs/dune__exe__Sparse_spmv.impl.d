examples/sparse_spmv.ml: Array Float Hashtbl List Mpicd Mpicd_buf Mpicd_collectives Mpicd_datatype Mpicd_serde Mpicd_typed_mpi Printf
