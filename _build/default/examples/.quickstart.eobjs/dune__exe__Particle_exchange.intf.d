examples/particle_exchange.mli:
