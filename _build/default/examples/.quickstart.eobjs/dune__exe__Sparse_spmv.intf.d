examples/sparse_spmv.mli:
