examples/dynamic_matrix.mli:
