examples/particle_exchange.ml: Array Fun Int32 List Mpicd Mpicd_buf Printf
