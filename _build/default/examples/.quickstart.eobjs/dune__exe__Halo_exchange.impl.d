examples/halo_exchange.ml: Array Float Mpicd Mpicd_buf Mpicd_collectives Mpicd_datatype Mpicd_simnet Option Printf
