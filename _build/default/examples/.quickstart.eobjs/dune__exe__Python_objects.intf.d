examples/python_objects.mli:
