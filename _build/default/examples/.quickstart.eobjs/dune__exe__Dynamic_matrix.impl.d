examples/dynamic_matrix.ml: Array Int32 Mpicd Mpicd_buf Mpicd_collectives Printf
