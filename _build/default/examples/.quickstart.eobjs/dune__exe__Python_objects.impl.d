examples/python_objects.ml: List Mpicd Mpicd_buf Mpicd_objmsg Mpicd_pickle Printf
