(* Dynamic (ragged) matrix exchange and broadcast.

   A ragged matrix — rows of varying length allocated independently on
   the heap — is the std::list<std::vector<int>> example from the
   paper's §II-B: classic derived datatypes cannot describe it without
   per-message address manipulation, but a custom datatype carries the
   row lengths in its packed part and the row payloads as zero-copy
   regions.  The same datatype value then works unchanged inside a
   binomial-tree broadcast (the paper's future-work collectives).

   Run with:  dune exec examples/dynamic_matrix.exe *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Coll = Mpicd_collectives.Collectives

type ragged = { rows : Buf.t array }

let ragged_dt : ragged Custom.t =
  let header_of m =
    let h = Buf.create (4 * Array.length m.rows) in
    Array.iteri
      (fun i row -> Buf.set_i32 h (4 * i) (Int32.of_int (Buf.length row)))
      m.rows;
    h
  in
  Custom.create
    {
      state = (fun m ~count:_ -> header_of m);
      state_free = ignore;
      query = (fun h _ ~count:_ -> Buf.length h);
      pack =
        (fun h _ ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (Buf.length h - offset) in
          Buf.blit ~src:h ~src_pos:offset ~dst ~dst_pos:0 ~len;
          len);
      unpack =
        (fun h _ ~count:_ ~offset ~src ->
          for i = 0 to Buf.length src - 1 do
            if Buf.get src i <> Buf.get h (offset + i) then
              raise (Custom.Error 2)
          done);
      region_count = Some (fun _ m ~count:_ -> Array.length m.rows);
      regions = Some (fun _ m ~count:_ -> m.rows);
    }

(* Row i has 16 * (1 + i mod 7) i32 entries — genuinely ragged. *)
let row_len i = 64 * (1 + (i mod 7))

let make_matrix ~nrows ~fill =
  {
    rows =
      Array.init nrows (fun i ->
          let b = Buf.create (row_len i) in
          if fill then
            for j = 0 to (Buf.length b / 4) - 1 do
              Buf.set_i32 b (4 * j) (Int32.of_int ((i * 1000) + j))
            done;
          b);
  }

let checksum m =
  Array.fold_left
    (fun acc row ->
      let s = ref acc in
      for j = 0 to (Buf.length row / 4) - 1 do
        s := !s + Int32.to_int (Buf.get_i32 row (4 * j))
      done;
      !s)
    0 m.rows

let () =
  let nranks = 8 and nrows = 100 in
  let world = Mpi.create_world ~size:nranks () in
  let reference = make_matrix ~nrows ~fill:true in
  Mpi.run world (fun comm ->
      let mine =
        if Mpi.rank comm = 0 then reference else make_matrix ~nrows ~fill:false
      in
      (* broadcast the ragged matrix to all ranks in log2(n) rounds *)
      Coll.bcast comm ~root:0 (Mpi.Custom { dt = ragged_dt; obj = mine; count = 1 });
      if checksum mine <> checksum reference then
        failwith "broadcast corrupted the matrix";
      (* then a sanity allreduce over a derived statistic *)
      let stat = [| float_of_int (checksum mine) |] in
      Coll.allreduce_f64 comm ~op:`Sum stat;
      if Mpi.rank comm = 0 then
        Printf.printf
          "[rank 0] ragged matrix (%d rows, %d bytes) broadcast to %d ranks;\n\
           checksum verified everywhere (allreduce total %.0f)\n"
          nrows
          (Array.fold_left (fun a r -> a + Buf.length r) 0 mine.rows)
          nranks stat.(0));
  let stats = Mpi.world_stats world in
  Printf.printf "messages: %d, payload CPU copies: %d bytes\n"
    stats.messages_sent stats.bytes_copied
