(* 2-D Jacobi stencil with halo exchange on a 2x2 rank grid.

   Each rank owns an (n+2) x (n+2) tile of a global temperature field
   (one ghost layer).  Per iteration every rank exchanges its boundary
   rows/columns with its neighbours and applies a 5-point stencil.

   The north/south halos are contiguous rows; the east/west halos are
   strided columns, exchanged here with the classic derived-datatype
   engine (a vector type) — the workload NAS_LU/NAS_MG model.  The
   convergence check is an allreduce.  This example shows the whole
   stack working together: derived datatypes, point-to-point,
   collectives, and the simulated cluster.

   Run with:  dune exec examples/halo_exchange.exe *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module Coll = Mpicd_collectives.Collectives

let n = 64 (* interior cells per side per rank *)
let px = 2 (* process grid *)
let py = 2
let iterations = 25

let stride = n + 2
let idx ~row ~col = ((row * stride) + col) * 8

(* column halo: n doubles with stride (n+2) *)
let column_dt = Dt.vector ~count:n ~blocklength:1 ~stride Dt.float64

let () =
  let world = Mpi.create_world ~size:(px * py) () in
  let final_residual = ref infinity in
  Mpi.run world (fun comm ->
      let me = Mpi.rank comm in
      let mx = me mod px and my = me / px in
      let tile = Buf.create (stride * stride * 8) in
      let next = Buf.create (stride * stride * 8) in
      (* boundary condition: hot west edge of the global domain *)
      if mx = 0 then
        for r = 0 to stride - 1 do
          Buf.set_f64 tile (idx ~row:r ~col:0) 100.;
          Buf.set_f64 next (idx ~row:r ~col:0) 100.
        done;
      let neighbour dx dy =
        let nx = mx + dx and ny = my + dy in
        if nx < 0 || nx >= px || ny < 0 || ny >= py then None
        else Some ((ny * px) + nx)
      in
      let west = neighbour (-1) 0
      and east = neighbour 1 0
      and north = neighbour 0 (-1)
      and south = neighbour 0 1 in
      for iter = 1 to iterations do
        let tag = iter in
        (* post sends of our boundary data, then receive ghosts *)
        let reqs = ref [] in
        let send_col col dst =
          let base = Buf.sub tile ~pos:(idx ~row:1 ~col) ~len:(Buf.length tile - idx ~row:1 ~col) in
          reqs :=
            Mpi.isend comm ~dst ~tag (Mpi.Typed { dt = column_dt; count = 1; base })
            :: !reqs
        in
        let recv_col col src =
          let base = Buf.sub tile ~pos:(idx ~row:1 ~col) ~len:(Buf.length tile - idx ~row:1 ~col) in
          ignore
            (Mpi.recv comm ~source:src ~tag
               (Mpi.Typed { dt = column_dt; count = 1; base }))
        in
        let send_row row dst =
          let base = Buf.sub tile ~pos:(idx ~row ~col:1) ~len:(n * 8) in
          reqs := Mpi.isend comm ~dst ~tag (Mpi.Bytes base) :: !reqs
        in
        let recv_row row src =
          let base = Buf.sub tile ~pos:(idx ~row ~col:1) ~len:(n * 8) in
          ignore (Mpi.recv comm ~source:src ~tag (Mpi.Bytes base))
        in
        Option.iter (send_col 1) west;
        Option.iter (send_col n) east;
        Option.iter (send_row 1) north;
        Option.iter (send_row n) south;
        Option.iter (recv_col 0) west;
        Option.iter (recv_col (n + 1)) east;
        Option.iter (recv_row 0) north;
        Option.iter (recv_row (n + 1)) south;
        ignore (Mpi.waitall !reqs);
        (* 5-point stencil *)
        let diff = ref 0. in
        for r = 1 to n do
          for c = 1 to n do
            let v =
              0.25
              *. (Buf.get_f64 tile (idx ~row:(r - 1) ~col:c)
                 +. Buf.get_f64 tile (idx ~row:(r + 1) ~col:c)
                 +. Buf.get_f64 tile (idx ~row:r ~col:(c - 1))
                 +. Buf.get_f64 tile (idx ~row:r ~col:(c + 1)))
            in
            diff := !diff +. Float.abs (v -. Buf.get_f64 tile (idx ~row:r ~col:c));
            Buf.set_f64 next (idx ~row:r ~col:c) v
          done
        done;
        Buf.blit ~src:next ~src_pos:0 ~dst:tile ~dst_pos:0 ~len:(Buf.length tile);
        (* global residual *)
        let res = [| !diff |] in
        Coll.allreduce_f64 comm ~op:`Sum res;
        if me = 0 then begin
          final_residual := res.(0);
          if iter mod 5 = 0 then
            Printf.printf "[iter %2d] global residual %.3f\n" iter res.(0)
        end
      done);
  Printf.printf "converging: final residual %.3f (virtual time %.2f ms)\n"
    !final_residual
    (Mpicd_simnet.Engine.now (Mpi.world_engine world) /. 1e6)
