(* Distributed sparse matrix-vector product (SpMV) with typed,
   schema-derived halo exchange.

   Each rank owns a block of rows of a sparse matrix in CSR form and
   the matching slice of the vector.  Before each multiply it must
   fetch the remote vector entries its columns reference.  The request
   list (irregular, run-length varying) travels as a serde-schema
   custom datatype; the reply uses the type-validated layer so a
   mismatched datatype is caught instead of silently mis-interpreted.

   Run with:  dune exec examples/sparse_spmv.exe *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module S = Mpicd_serde.Serde
module T = Mpicd_typed_mpi.Typed_mpi
module Coll = Mpicd_collectives.Collectives

let nranks = 4
let rows_per_rank = 256
let n = nranks * rows_per_rank

(* Deterministic sparse structure: each row i has entries on the
   diagonal band and a few far couplings into other ranks' slices. *)
let cols_of_row i =
  let local = [ i; (i + 1) mod n; (i + n - 1) mod n ] in
  let far = [ (i * 7 + 13) mod n; (i * 31 + 5) mod n ] in
  List.sort_uniq compare (local @ far)

(* The halo request: which vector indices this rank needs from [peer]. *)
type request = { r_step : int; r_indices : int array }

let request_schema =
  S.map
    (fun r -> (r.r_step, Array.to_list r.r_indices))
    (fun (r_step, idx) -> { r_step; r_indices = Array.of_list idx })
    S.(pair int (list int))

let () =
  let world = Mpi.create_world ~size:nranks () in
  let residual = ref 0. in
  Mpi.run world (fun comm ->
      let me = Mpi.rank comm in
      let row0 = me * rows_per_rank in
      let owner col = col / rows_per_rank in
      (* local slice of x, initialised to x_i = i *)
      let x = Array.init rows_per_rank (fun i -> float_of_int (row0 + i)) in
      (* indices we need from each peer *)
      let needed = Array.make nranks [] in
      for i = row0 to row0 + rows_per_rank - 1 do
        List.iter
          (fun c -> if owner c <> me then needed.(owner c) <- c :: needed.(owner c))
          (cols_of_row i)
      done;
      let needed = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) needed in
      (* 1. ship request lists (schema-derived custom datatype needs no
         manual packing code for this irregular type); nonblocking, as
         the custom path completes only when the peer posts its recv *)
      let reqs = ref [] in
      for peer = 0 to nranks - 1 do
        if peer <> me then
          reqs :=
            Mpi.isend comm ~dst:peer ~tag:1
              (Mpi.Custom
                 {
                   dt = S.to_custom request_schema;
                   obj = { r_step = 0; r_indices = needed.(peer) };
                   count = 1;
                 })
            :: !reqs
      done;
      (* 2. serve incoming requests: gather the values with a derived
         indexed datatype over our x slice, send type-validated *)
      let xbuf = Buf.create (rows_per_rank * 8) in
      Array.iteri (fun i v -> Buf.set_f64 xbuf (8 * i) v) x;
      for _ = 1 to nranks - 1 do
        (* requests are small; receive into a bounded shape *)
        let sink = ref { r_step = -1; r_indices = Array.make 0 0 } in
        (* learn the size via probe-based object receive: requests use a
           fixed maximal shape here for simplicity *)
        let st = Mpi.probe comm ~tag:1 () in
        let peer = st.source in
        (* reconstruct: peers' request arrays vary, so receive via the
           dynamic serde path: post a matching shape *)
        let expect = Array.length needed.(peer) in
        ignore expect;
        (* the requester's own 'needed' toward us is symmetric in this
           structure; compute it directly *)
        let theirs = ref [] in
        let prow0 = peer * rows_per_rank in
        for i = prow0 to prow0 + rows_per_rank - 1 do
          List.iter
            (fun c -> if owner c = me then theirs := c :: !theirs)
            (cols_of_row i)
        done;
        let theirs = Array.of_list (List.sort_uniq compare !theirs) in
        sink := { r_step = 0; r_indices = Array.make (Array.length theirs) 0 };
        let cell = sink in
        ignore
          (Mpi.recv comm ~source:peer ~tag:1
             (Mpi.Custom
                { dt = S.receive_into request_schema cell; obj = cell; count = 1 }));
        let req = !cell in
        assert (req.r_indices = theirs);
        (* gather requested entries with an indexed datatype *)
        let displacements = Array.map (fun c -> c - (me * rows_per_rank)) req.r_indices in
        let dt = Dt.indexed_block ~blocklength:1 ~displacements Dt.float64 in
        T.send comm ~dst:peer ~tag:2 dt ~count:1 xbuf
      done;
      ignore (Mpi.waitall !reqs);
      (* 3. receive halo values (type-validated, dynamic) *)
      let halo = Hashtbl.create 64 in
      for _ = 1 to nranks - 1 do
        let _dt, _count, data, st = T.recv_any comm ~tag:2 () in
        let peer = st.source in
        (* values land at the displacements we asked for *)
        Array.iteri
          (fun k c ->
            let local = c - (peer * rows_per_rank) in
            Hashtbl.replace halo c (Buf.get_f64 data (8 * local));
            ignore k)
          needed.(peer)
      done;
      (* 4. the multiply: y = A x with A_ij = 1/(1+|i-j|) *)
      let value_of c =
        if owner c = me then x.(c - row0) else Hashtbl.find halo c
      in
      let y =
        Array.init rows_per_rank (fun i ->
            let row = row0 + i in
            List.fold_left
              (fun acc c ->
                acc +. (value_of c /. float_of_int (1 + abs (row - c))))
              0. (cols_of_row row))
      in
      (* 5. a global check: sum of |y| via allreduce *)
      let total = [| Array.fold_left (fun a v -> a +. Float.abs v) 0. y |] in
      Coll.allreduce_f64 comm ~op:`Sum total;
      if me = 0 then residual := total.(0));
  Printf.printf "SpMV on %d ranks (%d rows, irregular halo): |y|_1 = %.3f\n"
    nranks n !residual;
  let stats = Mpi.world_stats world in
  Printf.printf
    "halo exchange used %d messages; typed replies were datatype-validated\n"
    stats.messages_sent
