(* Particle exchange: the molecular-dynamics workload that motivates
   the paper's LAMMPS kernel, on a 4-rank ring.

   Each rank owns particles in structure-of-arrays form (positions,
   velocities, charges).  Every step, particles that crossed the local
   boundary must migrate to the neighbour.  The migrating subset is a
   non-contiguous index list — exactly the shape classic derived
   datatypes handle poorly (the index list changes every step, forcing
   datatype recreation), and the custom API handles naturally: the
   per-operation state callback captures this step's index list.

   Run with:  dune exec examples/particle_exchange.exe *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom

let nparticles = 4096
let steps = 5

(* SoA particle store. *)
type particles = {
  x : Buf.t; (* 3 x f64 per particle *)
  v : Buf.t; (* 3 x f64 per particle *)
  q : Buf.t; (* f64 per particle *)
  mutable migrating : int array; (* indices leaving this step *)
}

let bytes_per_particle = 24 + 24 + 8

let make_particles seed =
  let p =
    {
      x = Buf.create (nparticles * 24);
      v = Buf.create (nparticles * 24);
      q = Buf.create (nparticles * 8);
      migrating = [||];
    }
  in
  for i = 0 to nparticles - 1 do
    for d = 0 to 2 do
      Buf.set_f64 p.x ((i * 24) + (d * 8)) (float_of_int ((i + seed) * (d + 1)));
      Buf.set_f64 p.v ((i * 24) + (d * 8)) (float_of_int (i - seed))
    done;
    Buf.set_f64 p.q (i * 8) (float_of_int (i mod 7))
  done;
  p

(* The custom datatype: packs x, v, q of each migrating particle.  The
   state snapshot captures the index list at operation start, so the
   application may keep simulating while the send is in flight. *)
let particle_dt : particles Custom.t =
  let fields p = [| (p.x, 24); (p.v, 24); (p.q, 8) |] in
  let pack_unpack ~into state p ~offset ~buf =
    (* byte-granular resumable copy over (particle, field) space *)
    let idx : int array = state in
    let fs = fields p in
    let remaining = ref (Buf.length buf) and off = ref offset and pos = ref 0 in
    while !remaining > 0 do
      let particle_slot = !off / bytes_per_particle in
      let within = !off mod bytes_per_particle in
      let field, foff =
        if within < 24 then (0, within)
        else if within < 48 then (1, within - 24)
        else (2, within - 48)
      in
      let fbuf, fsize = fs.(field) in
      let src_off = (idx.(particle_slot) * fsize) + foff in
      let n = min !remaining (fsize - foff) in
      if into then
        Buf.blit ~src:buf ~src_pos:!pos ~dst:fbuf ~dst_pos:src_off ~len:n
      else Buf.blit ~src:fbuf ~src_pos:src_off ~dst:buf ~dst_pos:!pos ~len:n;
      off := !off + n;
      pos := !pos + n;
      remaining := !remaining - n
    done
  in
  Custom.create
    ~pack_pieces:(fun p ~count:_ -> 3 * Array.length p.migrating)
    {
      state = (fun p ~count:_ -> Array.copy p.migrating);
      state_free = ignore;
      query = (fun idx _ ~count:_ -> Array.length idx * bytes_per_particle);
      pack =
        (fun idx p ~count:_ ~offset ~dst ->
          let total = (Array.length idx * bytes_per_particle) - offset in
          let len = min (Buf.length dst) total in
          pack_unpack ~into:false idx p ~offset ~buf:(Buf.sub dst ~pos:0 ~len);
          len);
      unpack =
        (fun idx p ~count:_ ~offset ~src ->
          pack_unpack ~into:true idx p ~offset ~buf:src);
      region_count = None;
      regions = None;
    }

let () =
  let nranks = 4 in
  let world = Mpi.create_world ~size:nranks () in
  Mpi.run world (fun comm ->
      let me = Mpi.rank comm in
      let p = make_particles me in
      let next = (me + 1) mod nranks and prev = (me + nranks - 1) mod nranks in
      for step = 1 to steps do
        (* particles with index ≡ step (mod 16) "cross the boundary" *)
        p.migrating <-
          Array.of_list
            (List.filter
               (fun i -> i mod 16 = step)
               (List.init nparticles Fun.id));
        let outgoing = Array.length p.migrating in
        (* exchange counts first (the real protocol would too) *)
        let cnt = Buf.create 4 in
        Buf.set_i32 cnt 0 (Int32.of_int outgoing);
        let creq = Mpi.isend comm ~dst:next ~tag:(2 * step) (Mpi.Bytes cnt) in
        let inc_cnt = Buf.create 4 in
        ignore (Mpi.recv comm ~source:prev ~tag:(2 * step) (Mpi.Bytes inc_cnt));
        ignore (Mpi.wait creq);
        let incoming = Int32.to_int (Buf.get_i32 inc_cnt 0) in
        (* now the particle payload as one custom-datatype message *)
        let sreq =
          Mpi.isend comm ~dst:next ~tag:((2 * step) + 1)
            (Mpi.Custom { dt = particle_dt; obj = p; count = 1 })
        in
        (* receive into slots at the end of our arrays: reuse the same
           datatype with a different index list *)
        let sink = { p with migrating = Array.init incoming (fun k -> nparticles - 1 - k) } in
        let st =
          Mpi.recv comm ~source:prev ~tag:((2 * step) + 1)
            (Mpi.Custom { dt = particle_dt; obj = sink; count = 1 })
        in
        ignore (Mpi.wait sreq);
        if me = 0 then
          Printf.printf "[step %d] rank 0: sent %d particles, received %d (%d bytes)\n"
            step outgoing incoming st.len
      done);
  let stats = Mpi.world_stats world in
  Printf.printf
    "done: %d messages, %d bytes on the wire, peak buffer memory %d bytes\n"
    stats.messages_sent stats.bytes_on_wire stats.peak_alloc_bytes
