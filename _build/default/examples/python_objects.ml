(* Python-object messaging: the mpi4py scenario of the paper's §V-B.

   Sends a "simulation checkpoint" — a nested Python-style object with
   several NumPy arrays — under the three pickle strategies and prints
   what each one costs in messages, copies and peak memory.

   Run with:  dune exec examples/python_objects.exe *)

module Buf = Mpicd_buf.Buf
module P = Mpicd_pickle.Pickle
module Mpi = Mpicd.Mpi
module Objmsg = Mpicd_objmsg.Objmsg

let checkpoint () =
  let field name bytes =
    (P.Str name, P.Ndarray (P.ndarray ~dtype:P.F64 [| bytes / 8 |]))
  in
  P.Dict
    [
      (P.Str "step", P.Int 128L);
      (P.Str "time", P.Float 3.14);
      (P.Str "comment", P.Str "checkpoint after equilibration");
      field "density" (2 * 1024 * 1024);
      field "velocity_x" (2 * 1024 * 1024);
      field "velocity_y" (2 * 1024 * 1024);
      (P.Str "tags", P.List [ P.Str "prod"; P.Str "v2"; P.Bool true ]);
    ]

let run strategy =
  let world = Mpi.create_world ~size:2 () in
  let obj = checkpoint () in
  let ok = ref false in
  Mpi.run world (fun comm ->
      if Mpi.rank comm = 0 then Objmsg.send strategy comm ~dst:1 ~tag:0 obj
      else begin
        let got, st = Objmsg.recv strategy comm ~source:0 ~tag:0 () in
        ok := P.equal obj got;
        ignore st
      end);
  let stats = Mpi.world_stats world in
  let payload = P.payload_bytes obj in
  Printf.printf "%-16s delivered=%-5b messages=%-3d copies=%5.2fx payload  peak-mem=%5.2fx payload\n"
    (Objmsg.strategy_name strategy) !ok stats.messages_sent
    (float_of_int stats.bytes_copied /. float_of_int payload)
    (float_of_int stats.peak_alloc_bytes /. float_of_int payload)

let () =
  let obj = checkpoint () in
  Printf.printf "checkpoint object: %d nodes, %d payload bytes\n\n"
    (P.visit_count obj) (P.payload_bytes obj);
  List.iter run [ Objmsg.Pickle_basic; Objmsg.Pickle_oob; Objmsg.Pickle_oob_cdt ];
  print_newline ();
  print_endline
    "pickle-basic packs everything into one stream (2x memory, 2x copies);";
  print_endline
    "pickle-oob avoids the copies but needs one MPI message per buffer;";
  print_endline
    "pickle-oob-cdt gets both: zero-copy and a single data message via the";
  print_endline "custom datatype API.";
