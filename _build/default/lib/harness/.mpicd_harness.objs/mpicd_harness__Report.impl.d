lib/harness/report.ml: Buffer Float Fun List Printf String
