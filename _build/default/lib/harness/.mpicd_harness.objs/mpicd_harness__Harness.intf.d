lib/harness/harness.mli: Mpicd Mpicd_buf Mpicd_simnet
