lib/harness/report.mli:
