lib/harness/harness.ml: Mpicd Mpicd_buf Mpicd_simnet
