(** A pickle-like serializer for a Python-style object model.

    Stands in for Python's [pickle] module in the paper's mpi4py
    experiments.  Two modes, matching pickle protocols 4 and 5:

    - {b in-band} (protocol 4): the whole object graph, including large
      array payloads, is flattened into one contiguous byte stream —
      doubling memory for large objects, the problem the paper's §II-C
      describes;
    - {b out-of-band} (protocol 5, PEP 574): large buffers are not
      copied into the stream; instead the stream carries references and
      the serializer returns the buffers as zero-copy slices, the way
      [pickle.dumps(obj, protocol=5, buffer_callback=...)] hands out
      [PickleBuffer]s.

    The wire format is our own compact opcode stream (it does not try
    to be byte-compatible with CPython), but the structure — a small
    metadata header of ~100 bytes plus the raw array payload — matches
    what the paper reports for NumPy arrays. *)

module Buf = Mpicd_buf.Buf

type dtype = F64 | F32 | I64 | I32 | U8

type ndarray = { shape : int array; dtype : dtype; data : Buf.t }
(** NumPy-style array: [data] holds [numel * itemsize] bytes. *)

type t =
  | None_
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | Bytes of Buf.t
  | List of t list
  | Tuple of t list
  | Dict of (t * t) list
  | Ndarray of ndarray

exception Corrupt of string
(** Raised by {!loads} on malformed input — serialization libraries can
    fail on invalid data, which is why the custom datatype API
    propagates callback errors. *)

val dtype_size : dtype -> int
val numel : ndarray -> int

val ndarray : ?dtype:dtype -> int array -> ndarray
(** Fresh zero-filled array of the given shape (dtype defaults to F64). *)

val ndarray_of_floats : float array -> ndarray
val floats_of_ndarray : ndarray -> float array

(** {1 Serialization} *)

val dumps : t -> Buf.t
(** In-band (protocol 4): everything in one stream. *)

val dumps_oob : ?oob_threshold:int -> t -> Buf.t * Buf.t list
(** Out-of-band (protocol 5): returns the in-band header and the list
    of out-of-band buffers in reference order.  Ndarray payloads and
    [Bytes] values of at least [oob_threshold] bytes (default 1024) go
    out of band; the returned buffers {e alias} the object's memory
    (zero-copy). *)

val loads : ?buffers:Buf.t list -> Buf.t -> t
(** Reconstruct an object.  [buffers] supplies the out-of-band buffers
    for a protocol-5 stream, in the same order [dumps_oob] returned
    them; reconstructed arrays alias these buffers (zero-copy receive).
    @raise Corrupt on malformed data or missing buffers. *)

(** {1 Introspection} *)

val equal : t -> t -> bool
(** Structural equality ([Ndarray] payloads compared byte-wise). *)

val visit_count : t -> int
(** Number of nodes in the object graph (drives the per-object
    traversal cost in the simulator). *)

val payload_bytes : t -> int
(** Total bytes of array/bytes payloads in the graph. *)

val pp : Format.formatter -> t -> unit
