module Buf = Mpicd_buf.Buf

type dtype = F64 | F32 | I64 | I32 | U8

type ndarray = { shape : int array; dtype : dtype; data : Buf.t }

type t =
  | None_
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | Bytes of Buf.t
  | List of t list
  | Tuple of t list
  | Dict of (t * t) list
  | Ndarray of ndarray

exception Corrupt of string

let dtype_size = function F64 | I64 -> 8 | F32 | I32 -> 4 | U8 -> 1

let dtype_code = function F64 -> 0 | F32 -> 1 | I64 -> 2 | I32 -> 3 | U8 -> 4

let dtype_of_code = function
  | 0 -> F64
  | 1 -> F32
  | 2 -> I64
  | 3 -> I32
  | 4 -> U8
  | c -> raise (Corrupt (Printf.sprintf "bad dtype code %d" c))

let numel a = Array.fold_left ( * ) 1 a.shape

let ndarray ?(dtype = F64) shape =
  Array.iter (fun d -> if d < 0 then invalid_arg "Pickle.ndarray: negative dim") shape;
  let n = Array.fold_left ( * ) 1 shape in
  { shape; dtype; data = Buf.create (n * dtype_size dtype) }

let ndarray_of_floats fs =
  let a = ndarray [| Array.length fs |] in
  Array.iteri (fun i v -> Buf.set_f64 a.data (8 * i) v) fs;
  a

let floats_of_ndarray a =
  if a.dtype <> F64 then invalid_arg "Pickle.floats_of_ndarray: not F64";
  Array.init (numel a) (fun i -> Buf.get_f64 a.data (8 * i))

(* --- opcodes --- *)

let op_none = 0x4E
let op_true = 0x54
let op_false = 0x46
let op_int = 0x49
let op_float = 0x47
let op_str = 0x55
let op_bytes = 0x42 (* in-band bytes *)
let op_oob = 0x4F (* out-of-band buffer reference *)
let op_list = 0x6C
let op_tuple = 0x74
let op_dict = 0x64
let op_ndarray = 0x41
let op_stop = 0x2E

(* --- writer --- *)

module Writer = struct
  type w = { buf : Buffer.t; mutable oob : Buf.t list; oob_threshold : int option }
  (* oob_threshold = None -> everything in-band (protocol 4) *)

  let create oob_threshold = { buf = Buffer.create 256; oob = []; oob_threshold }

  let u8 w v = Buffer.add_char w.buf (Char.chr (v land 0xff))

  let i32 w v =
    u8 w v;
    u8 w (v lsr 8);
    u8 w (v lsr 16);
    u8 w (v lsr 24)

  let i64 w v =
    for k = 0 to 7 do
      u8 w (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
    done

  let raw w (b : Buf.t) = Buffer.add_string w.buf (Buf.to_string b)

  (* Emit a payload either in-band or as an out-of-band reference. *)
  let payload w (b : Buf.t) ~force_oob =
    let oob =
      match w.oob_threshold with
      | None -> false
      | Some thr -> force_oob || Buf.length b >= thr
    in
    if oob then begin
      u8 w op_oob;
      i32 w (List.length w.oob);
      i32 w (Buf.length b);
      w.oob <- b :: w.oob
    end
    else begin
      u8 w op_bytes;
      i32 w (Buf.length b);
      raw w b
    end

  let rec value w = function
    | None_ -> u8 w op_none
    | Bool true -> u8 w op_true
    | Bool false -> u8 w op_false
    | Int v ->
        u8 w op_int;
        i64 w v
    | Float f ->
        u8 w op_float;
        i64 w (Int64.bits_of_float f)
    | Str s ->
        u8 w op_str;
        i32 w (String.length s);
        Buffer.add_string w.buf s
    | Bytes b -> payload w b ~force_oob:false
    | List items ->
        u8 w op_list;
        i32 w (List.length items);
        List.iter (value w) items
    | Tuple items ->
        u8 w op_tuple;
        i32 w (List.length items);
        List.iter (value w) items
    | Dict pairs ->
        u8 w op_dict;
        i32 w (List.length pairs);
        List.iter
          (fun (k, v) ->
            value w k;
            value w v)
          pairs
    | Ndarray a ->
        u8 w op_ndarray;
        u8 w (dtype_code a.dtype);
        u8 w (Array.length a.shape);
        Array.iter (fun d -> i32 w d) a.shape;
        (* NumPy buffers always go out-of-band under protocol 5. *)
        payload w a.data ~force_oob:true

  let finish w =
    u8 w op_stop;
    (Buf.of_string (Buffer.contents w.buf), List.rev w.oob)
end

let dumps v =
  let w = Writer.create None in
  Writer.value w v;
  fst (Writer.finish w)

let dumps_oob ?(oob_threshold = 1024) v =
  let w = Writer.create (Some oob_threshold) in
  Writer.value w v;
  Writer.finish w

(* --- reader --- *)

module Reader = struct
  type r = { src : Buf.t; mutable pos : int; buffers : Buf.t array }

  let create src buffers = { src; pos = 0; buffers = Array.of_list buffers }

  let u8 r =
    if r.pos >= Buf.length r.src then raise (Corrupt "truncated stream");
    let v = Buf.get_u8 r.src r.pos in
    r.pos <- r.pos + 1;
    v

  let i32 r =
    let a = u8 r and b = u8 r and c = u8 r and d = u8 r in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let i64 r =
    let v = ref 0L in
    for k = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 r)) (8 * k))
    done;
    !v

  let raw r n =
    if n < 0 || r.pos + n > Buf.length r.src then
      raise (Corrupt "bad payload length");
    let b = Buf.sub r.src ~pos:r.pos ~len:n in
    r.pos <- r.pos + n;
    b

  (* Read a payload; in-band data is copied out of the stream,
     out-of-band references alias the supplied buffers. *)
  let payload r op =
    if op = op_bytes then Buf.copy (raw r (i32 r))
    else if op = op_oob then begin
      let idx = i32 r in
      let len = i32 r in
      if idx < 0 || idx >= Array.length r.buffers then
        raise (Corrupt (Printf.sprintf "missing out-of-band buffer %d" idx));
      let b = r.buffers.(idx) in
      if Buf.length b <> len then
        raise
          (Corrupt
             (Printf.sprintf "out-of-band buffer %d: expected %d bytes, got %d"
                idx len (Buf.length b)));
      b
    end
    else raise (Corrupt (Printf.sprintf "expected payload, got opcode 0x%02x" op))

  let rec value r =
    let op = u8 r in
    if op = op_none then None_
    else if op = op_true then Bool true
    else if op = op_false then Bool false
    else if op = op_int then Int (i64 r)
    else if op = op_float then Float (Int64.float_of_bits (i64 r))
    else if op = op_str then begin
      let n = i32 r in
      Str (Buf.to_string (raw r n))
    end
    else if op = op_bytes || op = op_oob then Bytes (payload r op)
    else if op = op_list then begin
      let n = i32 r in
      List (List.init n (fun _ -> value r))
    end
    else if op = op_tuple then begin
      let n = i32 r in
      Tuple (List.init n (fun _ -> value r))
    end
    else if op = op_dict then begin
      let n = i32 r in
      Dict
        (List.init n (fun _ ->
             let k = value r in
             let v = value r in
             (k, v)))
    end
    else if op = op_ndarray then begin
      let dtype = dtype_of_code (u8 r) in
      let ndim = u8 r in
      let shape = Array.init ndim (fun _ -> i32 r) in
      let data = payload r (u8 r) in
      let expected = Array.fold_left ( * ) 1 shape * dtype_size dtype in
      if Buf.length data <> expected then
        raise (Corrupt "ndarray payload size mismatch");
      Ndarray { shape; dtype; data }
    end
    else raise (Corrupt (Printf.sprintf "unknown opcode 0x%02x" op))
end

let loads ?(buffers = []) src =
  let r = Reader.create src buffers in
  let v = Reader.value r in
  if Reader.u8 r <> op_stop then raise (Corrupt "missing stop opcode");
  v

(* --- introspection --- *)

let rec equal a b =
  match (a, b) with
  | None_, None_ -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.equal x y
  | Bytes x, Bytes y -> Buf.equal x y
  | List x, List y | Tuple x, Tuple y ->
      List.length x = List.length y && List.for_all2 equal x y
  | Dict x, Dict y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> equal k1 k2 && equal v1 v2) x y
  | Ndarray x, Ndarray y ->
      x.shape = y.shape && x.dtype = y.dtype && Buf.equal x.data y.data
  | ( (None_ | Bool _ | Int _ | Float _ | Str _ | Bytes _ | List _ | Tuple _
      | Dict _ | Ndarray _), _ ) ->
      false

let rec visit_count = function
  | None_ | Bool _ | Int _ | Float _ | Str _ | Bytes _ | Ndarray _ -> 1
  | List items | Tuple items ->
      List.fold_left (fun acc v -> acc + visit_count v) 1 items
  | Dict pairs ->
      List.fold_left
        (fun acc (k, v) -> acc + visit_count k + visit_count v)
        1 pairs

let rec payload_bytes = function
  | None_ | Bool _ | Int _ | Float _ | Str _ -> 0
  | Bytes b -> Buf.length b
  | Ndarray a -> Buf.length a.data
  | List items | Tuple items ->
      List.fold_left (fun acc v -> acc + payload_bytes v) 0 items
  | Dict pairs ->
      List.fold_left
        (fun acc (k, v) -> acc + payload_bytes k + payload_bytes v)
        0 pairs

let rec pp ppf = function
  | None_ -> Format.pp_print_string ppf "None"
  | Bool b -> Format.pp_print_bool ppf b
  | Int v -> Format.fprintf ppf "%Ld" v
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bytes b -> Format.fprintf ppf "bytes[%d]" (Buf.length b)
  | List items ->
      Format.fprintf ppf "[@[<hov>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        items
  | Tuple items ->
      Format.fprintf ppf "(@[<hov>%a@])"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        items
  | Dict pairs ->
      let pp_pair ppf (k, v) = Format.fprintf ppf "%a: %a" pp k pp v in
      Format.fprintf ppf "{@[<hov>%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_pair)
        pairs
  | Ndarray a ->
      Format.fprintf ppf "ndarray(shape=[%s], %s)"
        (String.concat ";" (Array.to_list (Array.map string_of_int a.shape)))
        (match a.dtype with
        | F64 -> "f64"
        | F32 -> "f32"
        | I64 -> "i64"
        | I32 -> "i32"
        | U8 -> "u8")
