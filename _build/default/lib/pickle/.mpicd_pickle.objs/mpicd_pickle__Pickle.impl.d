lib/pickle/pickle.ml: Array Buffer Char Format Int64 List Mpicd_buf Printf String
