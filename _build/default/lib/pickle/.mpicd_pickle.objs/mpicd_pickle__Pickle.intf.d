lib/pickle/pickle.mli: Format Mpicd_buf
