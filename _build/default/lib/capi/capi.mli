(** C-ABI-shaped façade over the custom datatype API.

    The paper proposes the interface as C prototypes
    ([MPI_Type_create_custom], Listings 2–5): every callback returns an
    [int] status code ([MPI_SUCCESS] or an error) and produces results
    through out-parameters.  This module mirrors those signatures as
    directly as OCaml allows — the analog of the prototype's
    [mpicd-capi] crate, and evidence that the proposal is expressible
    behind a C ABI:

    - [void *] message buffers are {!Buf.t} (raw memory);
    - [void *state] / [void *context] are {!Univ.t} universal values
      (the type-safe OCaml stand-in for a C void pointer);
    - out-parameters are [ref] cells, arrays filled in place, and
      mutable status records;
    - all functions return [MPI_SUCCESS] or an [MPI_ERR_*] code instead
      of raising. *)

module Buf = Mpicd_buf.Buf
module Mpi = Mpicd.Mpi

(** Universal values: a typed [void *]. *)
module Univ : sig
  type t

  val embed : unit -> ('a -> t) * (t -> 'a option)
  (** [embed ()] returns an injection/projection pair for one type. *)
end

(** {1 Status codes} *)

val mpi_success : int
val mpi_err_arg : int
val mpi_err_truncate : int
val mpi_err_type : int
val mpi_err_other : int

(** {1 Callback prototypes (paper Listings 3–5)} *)

type count = int
(** [MPI_Count]. *)

type state_function =
  context:Univ.t option ->
  src:Buf.t ->
  src_count:count ->
  state:Univ.t option ref ->
  int
(** [MPI_Type_custom_state_function] (Listing 3). *)

type state_free_function = state:Univ.t option -> int

type query_function =
  state:Univ.t option -> buf:Buf.t -> count:count -> packed_size:count ref -> int
(** [MPI_Type_custom_query_function] (Listing 4). *)

type pack_function =
  state:Univ.t option ->
  buf:Buf.t ->
  count:count ->
  offset:count ->
  dst:Buf.t ->
  used:count ref ->
  int
(** [MPI_Type_custom_pack_function]: fill (part of) [dst] with packed
    bytes from virtual offset [offset]; report bytes produced in
    [used]. *)

type unpack_function =
  state:Univ.t option ->
  buf:Buf.t ->
  count:count ->
  offset:count ->
  src:Buf.t ->
  int

type region_count_function =
  state:Univ.t option -> buf:Buf.t -> count:count -> region_count:count ref -> int
(** [MPI_Type_custom_region_count_function] (Listing 5). *)

type region_function =
  state:Univ.t option ->
  buf:Buf.t ->
  count:count ->
  region_count:count ->
  reg_bases:Buf.t option array ->
  reg_lens:count array ->
  int
(** [MPI_Type_custom_region_function]: fill [reg_bases]/[reg_lens]
    (all regions are byte-typed in this façade, i.e. [reg_types] is
    implicitly [MPI_BYTE]). *)

(** {1 Datatypes} *)

type datatype
(** An [MPI_Datatype] handle. *)

val mpi_byte : datatype

val mpi_type_create_custom :
  statefn:state_function ->
  freefn:state_free_function ->
  queryfn:query_function ->
  packfn:pack_function ->
  unpackfn:unpack_function ->
  region_countfn:region_count_function option ->
  regionfn:region_function option ->
  context:Univ.t option ->
  inorder:int ->
  datatype ref ->
  int
(** The paper's Listing 2.  On success writes the new handle into the
    out-parameter and returns [MPI_SUCCESS]. *)

val mpi_type_free : datatype ref -> int

(** {1 Point-to-point} *)

type mpi_status = {
  mutable st_source : int;
  mutable st_tag : int;
  mutable st_len : count;
  mutable st_error : int;
}

val mpi_status_ignore : unit -> mpi_status

val mpi_send :
  buf:Buf.t -> count:count -> datatype:datatype -> dest:int -> tag:int ->
  comm:Mpi.comm -> int

val mpi_recv :
  buf:Buf.t -> count:count -> datatype:datatype -> source:int -> tag:int ->
  comm:Mpi.comm -> status:mpi_status -> int
(** [source] may be {!Mpi.any_source} and [tag] {!Mpi.any_tag}. *)

(** {1 Nonblocking operations} *)

type mpi_request

val mpi_request_null : unit -> mpi_request ref

val mpi_isend :
  buf:Buf.t -> count:count -> datatype:datatype -> dest:int -> tag:int ->
  comm:Mpi.comm -> request:mpi_request ref -> int

val mpi_irecv :
  buf:Buf.t -> count:count -> datatype:datatype -> source:int -> tag:int ->
  comm:Mpi.comm -> request:mpi_request ref -> int

val mpi_wait : request:mpi_request ref -> status:mpi_status -> int
(** Completes the request (the handle becomes the null request, as in
    MPI).  Waiting on the null request returns [MPI_SUCCESS] with an
    empty status. *)

val mpi_test :
  request:mpi_request ref -> flag:int ref -> status:mpi_status -> int
(** [flag] is set to 1 and the request freed once complete. *)

val mpi_probe :
  source:int -> tag:int -> comm:Mpi.comm -> status:mpi_status -> int

val mpi_iprobe :
  source:int -> tag:int -> comm:Mpi.comm -> flag:int ref -> status:mpi_status -> int

val mpi_comm_rank : comm:Mpi.comm -> rank:int ref -> int
val mpi_comm_size : comm:Mpi.comm -> size:int ref -> int
val mpi_barrier : comm:Mpi.comm -> int
