lib/capi/capi.ml: Array Mpicd Mpicd_buf Option
