lib/capi/capi.mli: Mpicd Mpicd_buf
