lib/device/device.ml: Mpicd Mpicd_buf Mpicd_ddtbench Mpicd_harness Mpicd_simnet Printf
