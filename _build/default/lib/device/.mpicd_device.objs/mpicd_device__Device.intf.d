lib/device/device.mli: Mpicd Mpicd_buf Mpicd_ddtbench Mpicd_harness
