module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Blocks = Mpicd_ddtbench.Blocks
module Mpi = Mpicd.Mpi
module H = Mpicd_harness.Harness

type space = Host | Device

exception Space_mismatch of string

type buf = { b_space : space; b_data : Buf.t }

let create space n = { b_space = space; b_data = Buf.create n }
let space_of b = b.b_space
let data b = b.b_data
let length b = Buf.length b.b_data

let charge comm ns = Engine.sleep (Mpi.world_engine (Mpi.world_of comm)) ns
let gpu comm = (Mpi.world_config (Mpi.world_of comm)).gpu
let cpu comm = (Mpi.world_config (Mpi.world_of comm)).cpu

let transfer comm ~src ~dst =
  if length src <> length dst then
    invalid_arg "Device.transfer: length mismatch";
  let n = length src in
  Buf.blit ~src:src.b_data ~src_pos:0 ~dst:dst.b_data ~dst_pos:0 ~len:n;
  Stats.record_copy (Mpi.world_stats (Mpi.world_of comm)) n;
  let rate =
    match (src.b_space, dst.b_space) with
    | Host, Host -> (cpu comm).memcpy_ns_per_byte
    | Device, Device -> (gpu comm).hbm_ns_per_byte
    | Host, Device | Device, Host -> (gpu comm).pcie_ns_per_byte
  in
  charge comm (rate *. float_of_int n)

let same_space name a b =
  if a.b_space <> b.b_space then
    raise
      (Space_mismatch
         (Printf.sprintf "%s: buffers live in different memory spaces" name))

let kernel_costs comm space ~bytes ~pieces =
  match space with
  | Device ->
      let g = gpu comm in
      g.kernel_launch_ns
      +. (g.hbm_ns_per_byte *. float_of_int bytes)
      +. (g.gpu_piece_ns *. float_of_int pieces)
  | Host ->
      let c = cpu comm in
      (c.memcpy_ns_per_byte *. float_of_int bytes)
      +. (c.pack_piece_ns *. float_of_int pieces)

let pack_kernel comm blocks ~src ~dst =
  same_space "Device.pack_kernel" src dst;
  let n = Blocks.total blocks in
  if length dst < n then invalid_arg "Device.pack_kernel: destination too small";
  ignore (Blocks.pack_range blocks ~base:src.b_data ~offset:0
            ~dst:(Buf.sub dst.b_data ~pos:0 ~len:n));
  Stats.record_copy (Mpi.world_stats (Mpi.world_of comm)) n;
  charge comm
    (kernel_costs comm src.b_space ~bytes:n ~pieces:(Blocks.count blocks))

let unpack_kernel comm blocks ~src ~dst =
  same_space "Device.unpack_kernel" src dst;
  let n = Blocks.total blocks in
  Blocks.unpack_range blocks ~base:dst.b_data ~offset:0
    ~src:(Buf.sub src.b_data ~pos:0 ~len:n);
  Stats.record_copy (Mpi.world_stats (Mpi.world_of comm)) n;
  charge comm
    (kernel_costs comm src.b_space ~bytes:n ~pieces:(Blocks.count blocks))

type method_ = Staged_host_pack | Device_pack_staged | Device_pack_direct

let method_name = function
  | Staged_host_pack -> "staged-host-pack"
  | Device_pack_staged -> "device-pack-staged"
  | Device_pack_direct -> "device-pack-direct"

(* A ping-pong side: the application data lives on the device; each
   send must deliver the block layout's bytes into the peer's device
   slab. *)
let exchange_impl method_ ~blocks ~slab_bytes () =
  let wire = Blocks.total blocks in
  let dev_slab = create Device slab_bytes in
  Mpicd_ddtbench.Kernel.fill dev_slab.b_data;
  let dev_packed = create Device wire in
  let host_slab = create Host slab_bytes in
  let host_packed = create Host wire in
  let send comm ~dst ~tag =
    match method_ with
    | Staged_host_pack ->
        (* D2H the whole slab, then a host pack, then an ordinary send *)
        transfer comm ~src:dev_slab ~dst:host_slab;
        pack_kernel comm blocks ~src:host_slab ~dst:host_packed;
        Mpi.send comm ~dst ~tag (Mpi.Bytes (data host_packed))
    | Device_pack_staged ->
        (* pack with a device kernel, stage only the packed bytes *)
        pack_kernel comm blocks ~src:dev_slab ~dst:dev_packed;
        transfer comm ~src:dev_packed ~dst:host_packed;
        Mpi.send comm ~dst ~tag (Mpi.Bytes (data host_packed))
    | Device_pack_direct ->
        (* pack with a device kernel; the NIC reads device memory *)
        pack_kernel comm blocks ~src:dev_slab ~dst:dev_packed;
        Mpi.send comm ~dst ~tag (Mpi.Bytes (data dev_packed))
  in
  let recv comm ~source ~tag =
    match method_ with
    | Staged_host_pack ->
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes (data host_packed)));
        unpack_kernel comm blocks ~src:host_packed ~dst:host_slab;
        transfer comm ~src:host_slab ~dst:dev_slab
    | Device_pack_staged ->
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes (data host_packed)));
        transfer comm ~src:host_packed ~dst:dev_packed;
        unpack_kernel comm blocks ~src:dev_packed ~dst:dev_slab
    | Device_pack_direct ->
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes (data dev_packed)));
        unpack_kernel comm blocks ~src:dev_packed ~dst:dev_slab
  in
  { H.send; H.recv }
