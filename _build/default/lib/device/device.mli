(** Accelerator-memory buffers — the paper's §VI device extension.

    "Packing and handling accelerator memory may require device kernels
    to run, as opposed to our host-based callbacks."  This module
    models that: buffers live in a memory {!space} (host or device);
    cross-space staging costs PCIe bandwidth, and packing
    device-resident data either

    - {b stages} the whole slab to the host and packs there
      ([Staged_host_pack] — what a host-callback implementation is
      forced to do),
    - runs a {b device pack kernel} (launch overhead + HBM-rate gather)
      and stages only the packed bytes ([Device_pack_staged]), or
    - runs the device kernel and hands the packed device buffer to the
      NIC directly ([Device_pack_direct] — GPUDirect-style), the design
      point a device-aware custom datatype API would enable.

    All data movement is performed for real (the simulated device
    memory is ordinary memory with a space tag), so correctness is
    testable; time is charged per the {!Mpicd_simnet.Config.gpu}
    model. *)

module Buf = Mpicd_buf.Buf
module Blocks = Mpicd_ddtbench.Blocks
module Mpi = Mpicd.Mpi

type space = Host | Device

exception Space_mismatch of string

type buf
(** A space-tagged buffer. *)

val create : space -> int -> buf
val space_of : buf -> space
val data : buf -> Buf.t
(** The underlying memory.  Reading device memory from "host code" is a
    modelling convenience; all charged paths go through {!transfer} and
    {!pack_kernel}. *)

val length : buf -> int

val transfer : Mpi.comm -> src:buf -> dst:buf -> unit
(** Copy [src] into [dst] (equal lengths), charging by the spaces
    involved: host→host at memcpy rate, device→device at HBM rate,
    cross-space at PCIe rate.  Raises [Invalid_argument] on length
    mismatch. *)

val pack_kernel : Mpi.comm -> Blocks.t -> src:buf -> dst:buf -> unit
(** Gather the block layout of [src] into contiguous [dst], both in the
    same space.  On the device this charges one kernel launch plus
    HBM-rate per byte and a small per-piece cost; on the host it
    charges the usual CPU pack costs.
    @raise Space_mismatch if [src] and [dst] live in different spaces. *)

val unpack_kernel : Mpi.comm -> Blocks.t -> src:buf -> dst:buf -> unit
(** Inverse scatter. *)

(** {1 Transfer methods for device-resident exchanges} *)

type method_ =
  | Staged_host_pack  (** stage slab D2H, pack on host, send, reverse *)
  | Device_pack_staged  (** pack on device, stage packed D2H, send *)
  | Device_pack_direct  (** pack on device, NIC reads device memory *)

val method_name : method_ -> string

val exchange_impl :
  method_ -> blocks:Blocks.t -> slab_bytes:int -> unit -> Mpicd_harness.Harness.impl
(** A ping-pong implementation exchanging a device-resident slab's
    block layout between two ranks under the given method (used by the
    device ablation bench and tests). *)
