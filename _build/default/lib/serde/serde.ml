module Buf = Mpicd_buf.Buf
module Custom = Mpicd.Custom

exception Decode_error of string

(* Writers either inline [buf] payloads (in-band mode) or collect them
   out-of-band, recording only the length. *)
type writer = { w : Buffer.t; mutable oob : Buf.t list option (* rev *) }

type reader = {
  src : Buf.t;
  mutable pos : int;
  mutable buffers : Buf.t list option;  (* None = in-band stream *)
}

type 'a t = {
  write : writer -> 'a -> unit;
  read : reader -> 'a;
  bufs : 'a -> Buf.t list;  (* out-of-band payloads, traversal order *)
}

(* --- low-level io --- *)

let w_u8 w v = Buffer.add_char w.w (Char.chr (v land 0xff))

let w_i64 w v =
  for k = 0 to 7 do
    w_u8 w (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
  done

let w_int w v = w_i64 w (Int64.of_int v)

let r_u8 r =
  if r.pos >= Buf.length r.src then raise (Decode_error "truncated");
  let v = Buf.get_u8 r.src r.pos in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * k))
  done;
  !v

let r_int r =
  let v = r_i64 r in
  Int64.to_int v

let r_raw r n =
  if n < 0 || r.pos + n > Buf.length r.src then
    raise (Decode_error "bad length");
  let b = Buf.sub r.src ~pos:r.pos ~len:n in
  r.pos <- r.pos + n;
  b

(* --- primitives --- *)

let unit =
  { write = (fun _ () -> ()); read = (fun _ -> ()); bufs = (fun () -> []) }

let bool =
  {
    write = (fun w b -> w_u8 w (if b then 1 else 0));
    read =
      (fun r ->
        match r_u8 r with
        | 0 -> false
        | 1 -> true
        | v -> raise (Decode_error (Printf.sprintf "bad bool %d" v)));
    bufs = (fun _ -> []);
  }

let int = { write = w_int; read = r_int; bufs = (fun _ -> []) }

let float =
  {
    write = (fun w f -> w_i64 w (Int64.bits_of_float f));
    read = (fun r -> Int64.float_of_bits (r_i64 r));
    bufs = (fun _ -> []);
  }

let string =
  {
    write =
      (fun w s ->
        w_int w (String.length s);
        Buffer.add_string w.w s);
    read =
      (fun r ->
        let n = r_int r in
        Buf.to_string (r_raw r n));
    bufs = (fun _ -> []);
  }

let buf =
  {
    write =
      (fun w b ->
        w_int w (Buf.length b);
        match w.oob with
        | Some acc -> w.oob <- Some (b :: acc)
        | None -> Buffer.add_string w.w (Buf.to_string b));
    read =
      (fun r ->
        let n = r_int r in
        match r.buffers with
        | None -> Buf.copy (r_raw r n)
        | Some [] -> raise (Decode_error "missing out-of-band buffer")
        | Some (b :: rest) ->
            if Buf.length b <> n then
              raise
                (Decode_error
                   (Printf.sprintf "out-of-band buffer length %d, expected %d"
                      (Buf.length b) n));
            r.buffers <- Some rest;
            b);
    bufs = (fun b -> [ b ]);
  }

(* --- combinators --- *)

let pair a b =
  {
    write =
      (fun w (x, y) ->
        a.write w x;
        b.write w y);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y));
    bufs = (fun (x, y) -> a.bufs x @ b.bufs y);
  }

let triple a b c =
  {
    write =
      (fun w (x, y, z) ->
        a.write w x;
        b.write w y;
        c.write w z);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        let z = c.read r in
        (x, y, z));
    bufs = (fun (x, y, z) -> a.bufs x @ b.bufs y @ c.bufs z);
  }

let list elt =
  {
    write =
      (fun w xs ->
        w_int w (List.length xs);
        List.iter (elt.write w) xs);
    read =
      (fun r ->
        let n = r_int r in
        if n < 0 then raise (Decode_error "negative list length");
        List.init n (fun _ -> elt.read r));
    bufs = (fun xs -> List.concat_map elt.bufs xs);
  }

let array elt =
  {
    write =
      (fun w xs ->
        w_int w (Array.length xs);
        Array.iter (elt.write w) xs);
    read =
      (fun r ->
        let n = r_int r in
        if n < 0 then raise (Decode_error "negative array length");
        Array.init n (fun _ -> elt.read r));
    bufs = (fun xs -> Array.to_list xs |> List.concat_map elt.bufs);
  }

let option elt =
  {
    write =
      (fun w -> function
        | None -> w_u8 w 0
        | Some v ->
            w_u8 w 1;
            elt.write w v);
    read =
      (fun r ->
        match r_u8 r with
        | 0 -> None
        | 1 -> Some (elt.read r)
        | v -> raise (Decode_error (Printf.sprintf "bad option tag %d" v)));
    bufs = (function None -> [] | Some v -> elt.bufs v);
  }

let result ~ok ~error =
  {
    write =
      (fun w -> function
        | Ok v ->
            w_u8 w 0;
            ok.write w v
        | Error e ->
            w_u8 w 1;
            error.write w e);
    read =
      (fun r ->
        match r_u8 r with
        | 0 -> Ok (ok.read r)
        | 1 -> Error (error.read r)
        | v -> raise (Decode_error (Printf.sprintf "bad result tag %d" v)));
    bufs = (function Ok v -> ok.bufs v | Error e -> error.bufs e);
  }

let map project inject repr =
  {
    write = (fun w v -> repr.write w (project v));
    read = (fun r -> inject (repr.read r));
    bufs = (fun v -> repr.bufs (project v));
  }

let fix f =
  let rec self =
    {
      write = (fun w v -> (Lazy.force knot).write w v);
      read = (fun r -> (Lazy.force knot).read r);
      bufs = (fun v -> (Lazy.force knot).bufs v);
    }
  and knot = lazy (f self) in
  self

(* --- codecs --- *)

let encode_with ~oob schema v =
  let w = { w = Buffer.create 64; oob = (if oob then Some [] else None) } in
  schema.write w v;
  ( Buf.of_string (Buffer.contents w.w),
    match w.oob with None -> [] | Some acc -> List.rev acc )

let encode schema v = fst (encode_with ~oob:false schema v)
let encode_oob schema v = encode_with ~oob:true schema v
let encoded_size schema v = Buf.length (encode schema v)
let oob_buffers schema v = schema.bufs v

let finish_read r v =
  if r.pos <> Buf.length r.src then raise (Decode_error "trailing bytes");
  (match r.buffers with
  | Some (_ :: _) -> raise (Decode_error "unused out-of-band buffers")
  | _ -> ());
  v

let decode schema src =
  let r = { src; pos = 0; buffers = None } in
  finish_read r (schema.read r)

let decode_oob schema src ~buffers =
  let r = { src; pos = 0; buffers = Some buffers } in
  finish_read r (schema.read r)

(* --- custom datatype derivation --- *)

(* Shared header-pack plumbing: the state carries the header buffer;
   pack copies out of it, unpack fills it and counts progress. *)
type 'a cdt_state = {
  header : Buf.t;
  mutable received : int;
  regions : Buf.t array;
}

let guard f = try f () with Decode_error _ -> raise (Custom.Error 1)

let to_custom (schema : 'a t) : 'a Custom.t =
  Custom.create
    {
      state =
        (fun v ~count:_ ->
          let header, oob = encode_oob schema v in
          { header; received = 0; regions = Array.of_list oob });
      state_free = ignore;
      query = (fun st _ ~count:_ -> Buf.length st.header);
      pack =
        (fun st _ ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (Buf.length st.header - offset) in
          Buf.blit ~src:st.header ~src_pos:offset ~dst ~dst_pos:0 ~len;
          len);
      unpack =
        (fun st v ~count:_ ~offset ~src ->
          Buf.blit ~src ~src_pos:0 ~dst:st.header ~dst_pos:offset
            ~len:(Buf.length src);
          st.received <- st.received + Buf.length src;
          if st.received >= Buf.length st.header then
            (* full header: verify it decodes against our regions *)
            guard (fun () ->
                ignore
                  (decode_oob schema st.header
                     ~buffers:(Array.to_list (Array.map Fun.id st.regions)));
                ignore v));
      region_count = Some (fun st _ ~count:_ -> Array.length st.regions);
      regions = Some (fun st _ ~count:_ -> st.regions);
    }

let receive_into (schema : 'a t) (_cell : 'a ref) : 'a ref Custom.t =
  Custom.create
    {
      state =
        (fun r ~count:_ ->
          let header, oob = encode_oob schema !r in
          { header; received = 0; regions = Array.of_list oob });
      state_free = ignore;
      query = (fun st _ ~count:_ -> Buf.length st.header);
      pack =
        (fun st _ ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (Buf.length st.header - offset) in
          Buf.blit ~src:st.header ~src_pos:offset ~dst ~dst_pos:0 ~len;
          len);
      unpack =
        (fun st r ~count:_ ~offset ~src ->
          Buf.blit ~src ~src_pos:0 ~dst:st.header ~dst_pos:offset
            ~len:(Buf.length src);
          st.received <- st.received + Buf.length src;
          if st.received >= Buf.length st.header then
            guard (fun () ->
                r :=
                  decode_oob schema st.header
                    ~buffers:(Array.to_list st.regions)));
      region_count = Some (fun st _ ~count:_ -> Array.length st.regions);
      regions = Some (fun st _ ~count:_ -> st.regions);
    }
