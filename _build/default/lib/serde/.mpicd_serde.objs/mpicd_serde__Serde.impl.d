lib/serde/serde.ml: Array Buffer Char Fun Int64 Lazy List Mpicd Mpicd_buf Printf String
