lib/serde/serde.mli: Mpicd Mpicd_buf
