(** Typed serialization schemas with out-of-band buffers — the
    Serde-style layer the paper's §VII anticipates.

    The paper notes that "an extended Rust MPI implementation supporting
    our new type interface may implement macros to automatically
    generate manual packing" from the type structure, the way Serde
    derives serializers.  This module is that idea in OCaml: a schema
    combinator language describes a value's structure once, and from it
    we derive

    - {!to_custom}: an {!Mpicd.Custom.t} datatype whose pack/unpack
      callbacks are generated from the schema and whose [Buf] fields
      travel out-of-band as zero-copy memory regions, and
    - {!encode}/{!decode}: a plain in-band byte-stream serializer (the
      "old way", useful as a baseline and for persistence).

    Schemas are first-class values, so generic containers compose:
    [list (pair int string)], [record ...], etc. *)

module Buf = Mpicd_buf.Buf
module Custom = Mpicd.Custom

type 'a t
(** A serialization schema for values of type ['a]. *)

exception Decode_error of string

(** {1 Primitive schemas} *)

val unit : unit t
val bool : bool t
val int : int t  (** 63-bit, varint-free fixed 8-byte encoding *)

val float : float t
val string : string t
val buf : Buf.t t
(** Raw memory payload.  In-band encoding copies it; {!to_custom}
    transfers it {e out-of-band} (zero-copy region).  Decoding under
    {!to_custom} requires the receiver's value to already hold a buffer
    of the matching length (the paper's known-size limitation). *)

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val option : 'a t -> 'a option t

val result : ok:'a t -> error:'b t -> ('a, 'b) result t

val map : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [map project inject schema]: serialize ['a] through its ['b]
    representation.  Use for records:
    [map (fun {x;y} -> (x,y)) (fun (x,y) -> {x;y}) (pair int float)]. *)

val fix : ('a t -> 'a t) -> 'a t
(** Recursive schemas (trees etc.). *)

(** {1 In-band codec} *)

val encode : 'a t -> 'a -> Buf.t
val decode : 'a t -> Buf.t -> 'a
(** @raise Decode_error on malformed input. *)

val encoded_size : 'a t -> 'a -> int

(** {1 Out-of-band split}

    Like pickle protocol 5: the in-band part holds the structure, every
    [buf] payload is returned separately. *)

val encode_oob : 'a t -> 'a -> Buf.t * Buf.t list
val decode_oob : 'a t -> Buf.t -> buffers:Buf.t list -> 'a
(** Reconstructed [buf] leaves alias the supplied buffers (zero-copy). *)

val oob_buffers : 'a t -> 'a -> Buf.t list
(** Just the out-of-band payloads, in traversal order. *)

(** {1 Custom datatype derivation} *)

val to_custom : 'a t -> 'a Custom.t
(** A custom MPI datatype for values of this schema: the packed part is
    the in-band encoding, the [buf] payloads are zero-copy regions.

    On the receive side, the posted value must structurally match the
    incoming one ([buf] lengths and region count in particular);
    decoded scalar fields are written into the received object via the
    schema's [map] injections where the carrier is mutable, and the
    full decoded value can be obtained with {!receive_into}'s result.
    A structural mismatch surfaces as [Custom.Error 1]. *)

val receive_into : 'a t -> 'a ref -> 'a ref Custom.t
(** Variant of {!to_custom} for receiving: after the receive completes
    the ref holds the decoded value, whose [buf] leaves are the posted
    value's buffers (filled in place, zero-copy).  The posted value
    (initial ref contents) supplies the region layout. *)
