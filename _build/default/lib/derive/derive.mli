(** RSMPI-style automatic derived datatypes.

    RSMPI's [#\[derive(Equivalence)\]] proc-macro turns a Rust
    [#\[repr(C)\]] struct definition into the MPI type-creation calls,
    lazily on first use.  This module is the OCaml analog: describe the
    struct's fields, and {!equivalence} computes the C layout (offsets,
    alignment padding, trailing padding) and builds the corresponding
    {!Mpicd_datatype.Datatype} — including the inter-field gaps that
    make Open MPI slow in the paper's Fig. 5.

    The resulting datatype is cached on the layout, mirroring RSMPI's
    create-once-on-first-use behaviour. *)

module Datatype = Mpicd_datatype.Datatype

type field

val field : string -> ?count:int -> Datatype.predefined -> field
(** [field name ty] — a scalar field; [count > 1] declares an inline
    fixed-size array field ([\[i32; 2048\]] in the paper's struct-vec). *)

type layout

val c_layout : field list -> layout
(** Compute x86-64 C struct layout: each field at the next multiple of
    its natural alignment; total size rounded up to the widest
    alignment.  @raise Invalid_argument on an empty field list. *)

val size_of : layout -> int
(** sizeof(struct), including padding. *)

val offset_of : layout -> string -> int
(** offsetof(struct, field).  @raise Not_found for unknown fields. *)

val packed_size_of : layout -> int
(** Sum of field data sizes (excludes padding). *)

val has_padding : layout -> bool

val equivalence : layout -> Datatype.t
(** The derived datatype for one struct element (cached; repeated calls
    return the same value).  Its extent equals [size_of]. *)

val fields_of : layout -> (string * int * int) list
(** [(name, offset, byte_size)] per field, for debugging and tests. *)

val pp : Format.formatter -> layout -> unit
