lib/derive/derive.ml: Array Format List Mpicd_datatype
