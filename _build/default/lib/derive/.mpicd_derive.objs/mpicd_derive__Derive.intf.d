lib/derive/derive.mli: Format Mpicd_datatype
