module Datatype = Mpicd_datatype.Datatype

type field = { f_name : string; f_ty : Datatype.predefined; f_count : int }

let field name ?(count = 1) ty =
  if count < 1 then invalid_arg "Derive.field: count must be >= 1";
  { f_name = name; f_ty = ty; f_count = count }

type placed = { p_field : field; p_offset : int }

type layout = {
  placed : placed list;
  l_size : int;
  l_packed : int;
  mutable cached : Datatype.t option;
}

(* Natural alignment on x86-64 equals the scalar size for all the
   predefined types we model. *)
let alignment_of (p : Datatype.predefined) = Datatype.predefined_size p

let round_up v a = (v + a - 1) / a * a

let c_layout fields =
  if fields = [] then invalid_arg "Derive.c_layout: empty struct";
  let off = ref 0 and max_align = ref 1 and packed = ref 0 in
  let placed =
    List.map
      (fun f ->
        let a = alignment_of f.f_ty in
        if a > !max_align then max_align := a;
        let o = round_up !off a in
        let bytes = Datatype.predefined_size f.f_ty * f.f_count in
        off := o + bytes;
        packed := !packed + bytes;
        { p_field = f; p_offset = o })
      fields
  in
  {
    placed;
    l_size = round_up !off !max_align;
    l_packed = !packed;
    cached = None;
  }

let size_of l = l.l_size
let packed_size_of l = l.l_packed
let has_padding l = l.l_packed <> l.l_size

let offset_of l name =
  match List.find_opt (fun p -> p.p_field.f_name = name) l.placed with
  | Some p -> p.p_offset
  | None -> raise Not_found

let fields_of l =
  List.map
    (fun p ->
      ( p.p_field.f_name,
        p.p_offset,
        Datatype.predefined_size p.p_field.f_ty * p.p_field.f_count ))
    l.placed

let equivalence l =
  match l.cached with
  | Some dt -> dt
  | None ->
      let n = List.length l.placed in
      let blocklengths = Array.make n 0 in
      let displacements_bytes = Array.make n 0 in
      let types = Array.make n Datatype.byte in
      List.iteri
        (fun i p ->
          blocklengths.(i) <- p.p_field.f_count;
          displacements_bytes.(i) <- p.p_offset;
          types.(i) <- Datatype.predefined p.p_field.f_ty)
        l.placed;
      let s = Datatype.struct_ ~blocklengths ~displacements_bytes ~types in
      (* Pin the extent to sizeof(struct) so arrays of elements tile the
         way a C array does (MPI_Type_create_resized). *)
      let dt = Datatype.resized ~lb:0 ~extent:l.l_size s in
      l.cached <- Some dt;
      dt

let pp ppf l =
  Format.fprintf ppf "@[<v>struct (size=%d, packed=%d)%s@,"
    l.l_size l.l_packed
    (if has_padding l then " [padded]" else "");
  List.iter
    (fun (name, off, bytes) ->
      Format.fprintf ppf "  %s @@ %d (%d B)@," name off bytes)
    (fields_of l);
  Format.fprintf ppf "@]"
