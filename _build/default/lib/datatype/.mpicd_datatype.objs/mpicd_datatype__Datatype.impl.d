lib/datatype/datatype.ml: Array Buffer Char Format Int64 List Mpicd_buf Mpicd_simnet Printf
