lib/datatype/datatype.mli: Format Mpicd_buf Mpicd_simnet
