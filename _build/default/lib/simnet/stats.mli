(** Per-simulation counters.

    The transport and datatype layers report what they do here; tests use
    the counters to assert zero-copy behaviour (e.g. "the custom path
    performed no full-payload memcpy") and benchmarks report memory
    amplification alongside time. *)

type t = {
  mutable messages_sent : int;
  mutable bytes_on_wire : int;
  mutable eager_messages : int;
  mutable rndv_messages : int;
  mutable iov_entries : int;
  mutable memcpys : int;
  mutable bytes_copied : int;
  mutable allocs : int;
  mutable bytes_allocated : int;
  mutable live_alloc_bytes : int;
  mutable peak_alloc_bytes : int;
  mutable pack_callbacks : int;
  mutable unpack_callbacks : int;
  mutable query_callbacks : int;
  mutable region_queries : int;
  mutable ddt_blocks_processed : int;
  mutable probes : int;
}

val create : unit -> t
val reset : t -> unit

val record_message : t -> eager:bool -> wire_bytes:int -> unit
val record_iov_entries : t -> int -> unit
val record_copy : t -> int -> unit
val record_alloc : t -> int -> unit
val record_free : t -> int -> unit
val record_pack_cb : t -> unit
val record_unpack_cb : t -> unit
val record_query_cb : t -> unit
val record_region_query : t -> unit
val record_ddt_blocks : t -> int -> unit
val record_probe : t -> unit

val snapshot : t -> t
(** Independent copy of the current counters. *)

val diff : after:t -> before:t -> t
(** Field-wise subtraction, for measuring a single operation.  The
    [live_alloc_bytes]/[peak_alloc_bytes] fields of the result carry the
    [after] values. *)

val pp : Format.formatter -> t -> unit
