lib/simnet/config.mli: Format
