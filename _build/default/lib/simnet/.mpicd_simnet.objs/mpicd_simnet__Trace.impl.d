lib/simnet/trace.ml: Array Format List
