lib/simnet/engine.mli:
