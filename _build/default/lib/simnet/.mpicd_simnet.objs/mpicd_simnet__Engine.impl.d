lib/simnet/engine.ml: Effect Float Fun Heap List Option Printf Queue String
