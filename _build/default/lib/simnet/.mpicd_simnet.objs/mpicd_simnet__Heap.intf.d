lib/simnet/heap.mli:
