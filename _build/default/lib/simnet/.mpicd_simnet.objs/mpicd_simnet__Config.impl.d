lib/simnet/config.ml: Format
