lib/simnet/rng.mli:
