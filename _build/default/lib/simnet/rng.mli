(** Deterministic splitmix64 pseudo-random generator.

    Used by tests (fragment-boundary fuzzing, delivery shuffles) and by
    workload generators so that every simulation is reproducible from a
    seed, independent of the global [Random] state. *)

type t

val create : int -> t
(** [create seed]. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t bound] in [0, bound).  @raise Invalid_argument if bound <= 0. *)

val float : t -> float -> float
(** [float t bound] in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Independent generator derived from this one. *)
