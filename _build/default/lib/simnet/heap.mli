(** Binary min-heap used as the event queue of the simulation engine.

    Entries are ordered by [(time, seq)]: the sequence number breaks ties
    so that events scheduled earlier at the same timestamp run first,
    keeping the whole simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum entry. *)

val peek_time : 'a t -> float option
