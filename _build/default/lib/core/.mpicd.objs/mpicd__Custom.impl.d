lib/core/custom.ml: Mpicd_buf
