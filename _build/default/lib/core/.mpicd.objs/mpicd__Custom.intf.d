lib/core/custom.mli: Mpicd_buf
