lib/core/mpi.mli: Custom Mpicd_buf Mpicd_datatype Mpicd_simnet
