lib/core/mpi.ml: Array Custom Fun Int64 List Mpicd_buf Mpicd_datatype Mpicd_simnet Mpicd_ucx Option Printf
