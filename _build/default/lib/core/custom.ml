module Buf = Mpicd_buf.Buf

exception Error of int

type ('obj, 'state) callbacks = {
  state : 'obj -> count:int -> 'state;
  state_free : 'state -> unit;
  query : 'state -> 'obj -> count:int -> int;
  pack : 'state -> 'obj -> count:int -> offset:int -> dst:Buf.t -> int;
  unpack : 'state -> 'obj -> count:int -> offset:int -> src:Buf.t -> unit;
  region_count : ('state -> 'obj -> count:int -> int) option;
  regions : ('state -> 'obj -> count:int -> Buf.t array) option;
}

type 'obj t =
  | T : {
      cb : ('obj, 'state) callbacks;
      inorder : bool;
      pieces : ('obj -> count:int -> int) option;
    }
      -> 'obj t

let create ?(inorder = true) ?pack_pieces cb =
  T { cb; inorder; pieces = pack_pieces }

let inorder (T t) = t.inorder

type 'obj op =
  | Op : {
      cb : ('obj, 'state) callbacks;
      state : 'state;
      obj : 'obj;
      count : int;
      inorder : bool;
      pieces : ('obj -> count:int -> int) option;
      mutable freed : bool;
    }
      -> 'obj op

let start (T t) obj ~count =
  let state = t.cb.state obj ~count in
  Op
    {
      cb = t.cb;
      state;
      obj;
      count;
      inorder = t.inorder;
      pieces = t.pieces;
      freed = false;
    }

let finish (Op o) =
  if not o.freed then begin
    o.freed <- true;
    o.cb.state_free o.state
  end

let packed_size (Op o) = o.cb.query o.state o.obj ~count:o.count

let pack (Op o) ~offset ~dst = o.cb.pack o.state o.obj ~count:o.count ~offset ~dst

let unpack (Op o) ~offset ~src =
  o.cb.unpack o.state o.obj ~count:o.count ~offset ~src

let region_count (Op o) =
  match o.cb.region_count with
  | None -> 0
  | Some f -> f o.state o.obj ~count:o.count

let regions (Op o) =
  match o.cb.regions with
  | None -> [||]
  | Some f -> f o.state o.obj ~count:o.count

let op_inorder (Op o) = o.inorder

let pack_pieces (Op o) =
  match o.pieces with None -> 0 | Some f -> f o.obj ~count:o.count
