(** The custom serialization datatype API — the paper's contribution.

    A custom datatype is created from a set of application callbacks
    (paper Listings 2–5, [MPI_Type_create_custom]):

    - {b state} / {b state_free} — per-operation state, created when an
      MPI operation first touches a buffer of this type and freed when
      the operation completes (Listing 3).  The C API's [void *context]
      argument is subsumed by OCaml closures: capture whatever you need.
    - {b query} — the total packed size of a buffer (Listing 4); used by
      the implementation to size wire buffers and, on the receive side,
      to know how many packed bytes to expect.
    - {b pack} / {b unpack} — fragment-wise serialization at a virtual
      byte offset into the packed stream (Listing 4).  [pack] may fill
      its destination only partially (return the bytes produced);
      the engine comes back with a new fragment for the rest.
    - {b region_count} / {b regions} — optional zero-copy memory regions
      (iovecs, Listing 5).  Regions are transferred directly by the
      transport without packing; on the receive side they designate the
      destination memory.

    When a buffer of a custom type is sent, the engine builds a
    scatter/gather message whose first entry is the packed data and
    whose remaining entries are the regions — exactly the layout the
    paper's prototype hands to [UCP_DATATYPE_IOV]. *)

module Buf = Mpicd_buf.Buf

exception Error of int
(** Callbacks signal failure by raising [Error code]; the code is
    surfaced as a [Callback_failed] status on the affected operation
    (the paper's [MPI_SUCCESS]-or-error return-value convention). *)

type ('obj, 'state) callbacks = {
  state : 'obj -> count:int -> 'state;
      (** [statefn]: create per-operation state for [count] elements
          rooted at [obj]. *)
  state_free : 'state -> unit;  (** [freefn] *)
  query : 'state -> 'obj -> count:int -> int;
      (** [queryfn]: total packed size in bytes. *)
  pack : 'state -> 'obj -> count:int -> offset:int -> dst:Buf.t -> int;
      (** [packfn]: write packed bytes starting at virtual [offset] into
          [dst]; return bytes produced (0 < n <= length dst unless the
          stream is exhausted). *)
  unpack : 'state -> 'obj -> count:int -> offset:int -> src:Buf.t -> unit;
      (** [unpackfn]: consume a fragment of the packed stream that
          starts at virtual [offset]. *)
  region_count : ('state -> 'obj -> count:int -> int) option;
      (** [region_countfn]: number of zero-copy regions, if any. *)
  regions : ('state -> 'obj -> count:int -> Buf.t array) option;
      (** [regionfn]: the region slices themselves.  On the send side
          they are gathered onto the wire; on the receive side they are
          scattered into.  All regions are byte-typed (the C API's
          [reg_types] generalization is exposed in {!Mpicd_capi}). *)
}

type 'obj t
(** A committed custom datatype for buffers of type ['obj]. *)

val create :
  ?inorder:bool ->
  ?pack_pieces:('obj -> count:int -> int) ->
  ('obj, 'state) callbacks ->
  'obj t
(** [create cb] — [MPI_Type_create_custom].  [pack_pieces] is a
    simulation hint: how many contiguous memory pieces the pack loop
    touches for a given buffer (the engine charges
    {!Mpicd_simnet.Config.cpu.pack_piece_ns} per piece, modelling the
    slowdown of gathering scattered blocks versus one streaming copy).
    [inorder] (default [true])
    requests that pack/unpack fragments be presented in increasing
    offset order; setting it to [false] permits the engine to reorder
    fragment unpacking (our engine does so only when asked to via
    {!val:Mpi.set_unpack_shuffle}, mirroring the paper's prototype which
    "always provides in-order packing"). *)

val inorder : _ t -> bool

(** {1 Engine-side interface}

    Used by the MPI layer; applications normally don't call these. *)

type 'obj op
(** An in-flight operation's view of a buffer: datatype + state. *)

val start : 'obj t -> 'obj -> count:int -> 'obj op
(** Run the state callback. *)

val finish : _ op -> unit
(** Run the state_free callback (idempotent). *)

val packed_size : 'obj op -> int
val pack : 'obj op -> offset:int -> dst:Buf.t -> int
val unpack : 'obj op -> offset:int -> src:Buf.t -> unit
val regions : 'obj op -> Buf.t array
(** Empty array when the type exposes no regions. *)

val region_count : 'obj op -> int
val op_inorder : _ op -> bool
val pack_pieces : 'obj op -> int
(** The declared piece count for this operation (0 when no hint). *)
