lib/objmsg/objmsg.mli: Mpicd Mpicd_buf Mpicd_pickle
