lib/objmsg/objmsg.ml: Array Int64 List Mpicd Mpicd_buf Mpicd_pickle Mpicd_simnet
