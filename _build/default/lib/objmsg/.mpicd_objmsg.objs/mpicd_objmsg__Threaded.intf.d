lib/objmsg/threaded.mli: Mpicd Mpicd_pickle
