lib/objmsg/threaded.ml: Array Char List Mpicd Mpicd_buf Mpicd_pickle Mpicd_simnet Objmsg Option Printf
