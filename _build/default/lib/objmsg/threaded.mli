(** Multithreaded object messaging — the paper's §VI tag-space problem.

    "When multithreading is used ... higher level thread safety controls
    need to be implemented around the MPI interfaces to ensure that
    messages being sent from multiple threads are not interleaved.  This
    can involve locking per communicator and per tag, all of which can
    lead to significant overhead."

    This module makes that concrete on the simulator.  [nthreads]
    application threads per rank (modelled as fibers sharing the rank's
    communicator) each send a stream of objects to a peer:

    - a {e multi-message} strategy (pickle-oob) on a shared tag is only
      correct under a per-communicator lock held across the whole
      object — serializing the threads ({!run} with
      [mode = Oob_locked]);
    - without the lock the sub-messages of concurrent objects interleave
      and objects are mis-assembled ([Oob_unlocked] — {!run} reports the
      corruption count, used by tests to show the hazard is real);
    - the custom-datatype strategy needs only per-object tags and no
      lock: one data operation per object, threads overlap freely
      ([Cdt_tagged]). *)

module Pickle = Mpicd_pickle.Pickle
module Mpi = Mpicd.Mpi

type mode =
  | Oob_locked  (** pickle-oob on a shared tag, per-communicator lock *)
  | Oob_unlocked  (** pickle-oob on a shared tag, no lock: UNSAFE *)
  | Cdt_tagged  (** pickle-oob-cdt with per-object tags, no lock *)

val mode_name : mode -> string

type outcome = {
  elapsed_us : float;  (** virtual time for the whole exchange *)
  corrupted : int;  (** objects whose payload was mis-assembled *)
  messages : int;  (** MPI messages on the wire *)
}

val run :
  mode -> nthreads:int -> objects_per_thread:int -> arrays_per_object:int ->
  chunk_bytes:int -> outcome
(** Two ranks; rank 0 runs [nthreads] sender threads, rank 1 the
    matching receiver threads.  Every object is a list of
    [arrays_per_object] arrays of [chunk_bytes], each byte stamped with
    the sending thread's id so mis-assembly is detectable. *)
