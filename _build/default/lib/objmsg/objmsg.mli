(** mpi4py-style Python-object messaging.

    Communicates {!Mpicd_pickle.Pickle.t} object graphs between ranks
    using the three strategies the paper evaluates (Figs. 8–9):

    - {!Pickle_basic} — protocol-4 pickle: the object (arrays included)
      is serialized into one contiguous in-band stream and sent as a
      single [MPI_BYTE] message; the receiver [MPI_Mprobe]s for the
      unknown size, allocates, receives, and unpickles (which copies
      every array payload once more).  Memory use is ~2x the object.

    - {!Pickle_oob} — protocol-5 pickle over plain MPI, the current
      mpi4py approach: a small in-band header message, then an auxiliary
      message carrying the buffer-length vector, then one extra MPI
      message {e per} out-of-band buffer.  Zero-copy, but many messages
      per object — the thread-safety/tag-space hazard of §VI.

    - {!Pickle_oob_cdt} — protocol-5 pickle over this paper's custom
      datatype: one auxiliary length message (the receive side must
      still learn region sizes, §VI limitation), then a {e single} MPI
      operation whose packed part is the pickle header and whose
      zero-copy regions are the buffers.

    All strategies deliver structurally equal objects; they differ in
    message count, copies, and receive-side allocation, which is what
    the bandwidth figures measure. *)

module Buf = Mpicd_buf.Buf
module Pickle = Mpicd_pickle.Pickle
module Mpi = Mpicd.Mpi

type strategy = Pickle_basic | Pickle_oob | Pickle_oob_cdt

val strategy_name : strategy -> string
(** ["pickle-basic"], ["pickle-oob"], ["pickle-oob-cdt"] — the labels of
    the paper's figures. *)

val send : strategy -> Mpi.comm -> dst:int -> tag:int -> Pickle.t -> unit
val recv :
  strategy -> Mpi.comm -> ?source:int -> ?tag:int -> unit -> Pickle.t * Mpi.status
(** The returned status reports the {e total} payload bytes moved and
    the matched source/tag of the primary message. *)

val messages_per_object : strategy -> Pickle.t -> int
(** How many MPI messages one send of this object costs (for tests and
    the discussion in §VI). *)
