module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Pickle = Mpicd_pickle.Pickle
module Mpi = Mpicd.Mpi

type mode = Oob_locked | Oob_unlocked | Cdt_tagged

let mode_name = function
  | Oob_locked -> "oob+lock"
  | Oob_unlocked -> "oob-unlocked (unsafe)"
  | Cdt_tagged -> "cdt-per-object-tags"

type outcome = { elapsed_us : float; corrupted : int; messages : int }

(* Every array of an object is stamped with the sender thread's id. *)
let make_object ~tid ~arrays ~chunk =
  Pickle.List
    (List.init arrays (fun _ ->
         let a = Pickle.ndarray ~dtype:Pickle.U8 [| chunk |] in
         Buf.fill a.Pickle.data (Char.chr (1 + (tid land 0x7f)));
         Pickle.Ndarray a))

(* [`Intact of stamp] when all arrays carry one uniform stamp. *)
let inspect_object ~arrays ~chunk obj =
  match obj with
  | Pickle.List items when List.length items = arrays ->
      let stamp_of = function
        | Pickle.Ndarray a when Buf.length a.Pickle.data = chunk ->
            let s = Buf.get_u8 a.Pickle.data 0 in
            let uniform = ref true in
            for i = 1 to chunk - 1 do
              if Buf.get_u8 a.Pickle.data i <> s then uniform := false
            done;
            if !uniform then Some s else None
        | _ -> None
      in
      let stamps = List.map stamp_of items in
      if List.exists Option.is_none stamps then `Corrupted
      else begin
        match List.sort_uniq compare stamps with
        | [ Some s ] -> `Intact s
        | _ -> `Corrupted (* arrays from different senders mixed *)
      end
  | _ -> `Corrupted

(* Spawn [n] "threads" (fibers) in the current rank and wait for all. *)
let parallel_threads comm n body =
  let w = Mpi.world_of comm in
  let engine = Mpi.world_engine w in
  let done_ = Array.init n (fun _ -> Engine.Ivar.create ()) in
  for t = 0 to n - 1 do
    Engine.spawn engine
      ~name:(Printf.sprintf "rank%d-thread%d" (Mpi.rank comm) t)
      (fun () ->
        body t;
        Engine.Ivar.fill done_.(t) ())
  done;
  Array.iter (fun iv -> Engine.Ivar.read engine iv) done_

let run mode ~nthreads ~objects_per_thread ~arrays_per_object ~chunk_bytes =
  if chunk_bytes > 16 * 1024 then
    invalid_arg "Threaded.run: chunk must stay in the eager regime";
  let w = Mpi.create_world ~size:2 () in
  let engine = Mpi.world_engine w in
  let corrupted = ref 0 in
  let elapsed = ref 0. in
  let tag_of ~tid ~seq =
    match mode with
    | Oob_locked | Oob_unlocked -> 0 (* the shared-tag scenario of §VI *)
    | Cdt_tagged -> (tid * 65536) + seq
  in
  let strategy =
    match mode with
    | Oob_locked | Oob_unlocked -> Objmsg.Pickle_oob
    | Cdt_tagged -> Objmsg.Pickle_oob_cdt
  in
  let send_lock = Engine.Mutex.create () in
  let recv_lock = Engine.Mutex.create () in
  let locked lock comm f =
    match mode with
    | Oob_locked -> Engine.Mutex.with_lock (Mpi.world_engine (Mpi.world_of comm)) lock f
    | Oob_unlocked | Cdt_tagged -> f ()
  in
  (* Threads of a real runtime are preempted unevenly; fibers are not.
     Model that with deterministic per-thread compute jitter around each
     object, which desynchronises the sub-message streams. *)
  let jitter comm tid seq =
    Engine.sleep
      (Mpi.world_engine (Mpi.world_of comm))
      (float_of_int (((tid * 211) + (seq * 97)) mod 1500))
  in
  let program comm =
      if Mpi.rank comm = 0 then begin
        let t0 = Engine.now engine in
        parallel_threads comm nthreads (fun tid ->
            for seq = 0 to objects_per_thread - 1 do
              let obj =
                make_object ~tid ~arrays:arrays_per_object ~chunk:chunk_bytes
              in
              jitter comm tid seq;
              locked send_lock comm (fun () ->
                  Objmsg.send strategy comm ~dst:1 ~tag:(tag_of ~tid ~seq) obj)
            done);
        elapsed := Engine.now engine -. t0
      end
      else
        parallel_threads comm nthreads (fun tid ->
            for seq = 0 to objects_per_thread - 1 do
              jitter comm tid (seq + 3);
              match
                locked recv_lock comm (fun () ->
                    Objmsg.recv strategy comm ~source:0 ~tag:(tag_of ~tid ~seq) ())
              with
              | obj, _st -> (
                  match
                    inspect_object ~arrays:arrays_per_object ~chunk:chunk_bytes obj
                  with
                  | `Intact s ->
                      (* per-object tags pin the sender; shared-tag modes
                         only require a whole intact object *)
                      if mode = Cdt_tagged && s <> 1 + (tid land 0x7f) then
                        incr corrupted
                  | `Corrupted -> incr corrupted)
              | exception (Pickle.Corrupt _ | Mpi.Mpi_error _ | Invalid_argument _)
                ->
                  incr corrupted
            done)
  in
  (* In the unsafe mode the interleaving hazard can also wedge the
     receiver threads (message accounting drifts); a deadlock is the
     hazard manifesting, not a harness failure. *)
  (match Mpi.run w program with
  | () -> ()
  | exception Engine.Deadlock _ when mode = Oob_unlocked -> incr corrupted);
  {
    elapsed_us = !elapsed /. 1000.;
    corrupted = !corrupted;
    messages = (Mpi.world_stats w).messages_sent;
  }
