module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Pickle = Mpicd_pickle.Pickle
module Custom = Mpicd.Custom
module Mpi = Mpicd.Mpi
module K = Mpi.Internal

type strategy = Pickle_basic | Pickle_oob | Pickle_oob_cdt

let strategy_name = function
  | Pickle_basic -> "pickle-basic"
  | Pickle_oob -> "pickle-oob"
  | Pickle_oob_cdt -> "pickle-oob-cdt"

let engine_of comm = Mpi.world_engine (Mpi.world_of comm)
let config_of comm = Mpi.world_config (Mpi.world_of comm)
let stats_of comm = Mpi.world_stats (Mpi.world_of comm)

let charge comm t = Engine.sleep (engine_of comm) t

(* Cost of walking the object graph in the Python interpreter. *)
let charge_visit comm obj =
  charge comm
    (float_of_int (Pickle.visit_count obj) *. (config_of comm).cpu.object_visit_ns)

let charge_alloc comm bytes =
  Stats.record_alloc (stats_of comm) bytes;
  charge comm (Config.alloc_time (config_of comm).cpu bytes)

let charge_copy comm bytes =
  Stats.record_copy (stats_of comm) bytes;
  charge comm (Config.memcpy_time (config_of comm).cpu bytes)

(* --- the custom datatype for pickled objects (send side carries the
   real header + buffers; the receive side carries pre-allocated
   sinks) --- *)

type pickled = { header : Buf.t; buffers : Buf.t array }

let pickled_dt : pickled Custom.t =
  Custom.create
    {
      state = (fun _ ~count:_ -> ());
      state_free = ignore;
      query = (fun () p ~count:_ -> Buf.length p.header);
      pack =
        (fun () p ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (Buf.length p.header - offset) in
          Buf.blit ~src:p.header ~src_pos:offset ~dst ~dst_pos:0 ~len;
          len);
      unpack =
        (fun () p ~count:_ ~offset ~src ->
          Buf.blit ~src ~src_pos:0 ~dst:p.header ~dst_pos:offset
            ~len:(Buf.length src));
      region_count = Some (fun () p ~count:_ -> Array.length p.buffers);
      regions = Some (fun () p ~count:_ -> p.buffers);
    }

(* Length vector wire format: [n; header_len; len_0; ...; len_{n-1}]
   as little-endian i64. *)
let encode_lengths ~header_len lens =
  let n = Array.length lens in
  let b = Buf.create (8 * (n + 2)) in
  Buf.set_i64 b 0 (Int64.of_int n);
  Buf.set_i64 b 8 (Int64.of_int header_len);
  Array.iteri (fun i l -> Buf.set_i64 b (8 * (i + 2)) (Int64.of_int l)) lens;
  b

let decode_lengths b =
  (* Validate before trusting: under unsafe multithreaded interleaving
     (see {!Threaded}) an arbitrary data message can arrive here. *)
  if Buf.length b < 16 || Buf.length b mod 8 <> 0 then
    raise (Pickle.Corrupt "implausible length vector");
  let n = Int64.to_int (Buf.get_i64 b 0) in
  let header_len = Int64.to_int (Buf.get_i64 b 8) in
  if n < 0 || Buf.length b <> 8 * (n + 2) || header_len < 0 then
    raise (Pickle.Corrupt "implausible length vector");
  let lens = Array.init n (fun i -> Int64.to_int (Buf.get_i64 b (8 * (i + 2)))) in
  Array.iter
    (fun l -> if l < 0 || l > 1 lsl 31 then raise (Pickle.Corrupt "bad buffer length"))
    lens;
  (header_len, lens)

(* --- send --- *)

let send strategy comm ~dst ~tag obj =
  match strategy with
  | Pickle_basic ->
      charge_visit comm obj;
      let stream = Pickle.dumps obj in
      (* The in-band stream is a fresh allocation holding a copy of
         every payload byte: the memory-doubling of §II-C. *)
      charge_alloc comm (Buf.length stream);
      charge_copy comm (Pickle.payload_bytes obj);
      K.send_k comm K.Objmsg ~dst ~tag (Mpi.Bytes stream);
      Stats.record_free (stats_of comm) (Buf.length stream)
  | Pickle_oob ->
      charge_visit comm obj;
      let header, buffers = Pickle.dumps_oob obj in
      charge_alloc comm (Buf.length header);
      let lens = Array.of_list (List.map Buf.length buffers) in
      (* header, then the length vector, then one message per buffer *)
      K.send_k comm K.Objmsg ~dst ~tag (Mpi.Bytes header);
      K.send_k comm K.Objmsg_aux ~dst ~tag
        (Mpi.Bytes (encode_lengths ~header_len:(Buf.length header) lens));
      List.iter (fun b -> K.send_k comm K.Objmsg_aux ~dst ~tag (Mpi.Bytes b)) buffers;
      Stats.record_free (stats_of comm) (Buf.length header)
  | Pickle_oob_cdt ->
      charge_visit comm obj;
      let header, buffers = Pickle.dumps_oob obj in
      charge_alloc comm (Buf.length header);
      let buffers = Array.of_list buffers in
      let lens = Array.map Buf.length buffers in
      (* The receive side must know the region sizes in advance (§VI
         limitation): one small auxiliary message, then a single custom
         datatype operation carries header + regions. *)
      K.send_k comm K.Objmsg_aux ~dst ~tag
        (Mpi.Bytes (encode_lengths ~header_len:(Buf.length header) lens));
      K.send_k comm K.Objmsg ~dst ~tag
        (Mpi.Custom { dt = pickled_dt; obj = { header; buffers }; count = 1 });
      Stats.record_free (stats_of comm) (Buf.length header)

(* --- recv --- *)

let recv strategy comm ?source ?tag () =
  match strategy with
  | Pickle_basic ->
      (* size unknown: Mprobe, allocate, receive, unpickle *)
      let st, msg = K.mprobe_k comm K.Objmsg ?source ?tag () in
      let stream = Buf.create st.len in
      charge_alloc comm st.len;
      let st = K.mrecv_k comm K.Objmsg msg (Mpi.Bytes stream) in
      let obj = Pickle.loads stream in
      charge_visit comm obj;
      (* unpickling copies every payload into fresh arrays *)
      charge_alloc comm (Pickle.payload_bytes obj);
      charge_copy comm (Pickle.payload_bytes obj);
      Stats.record_free (stats_of comm) st.len;
      (obj, st)
  | Pickle_oob ->
      let st, msg = K.mprobe_k comm K.Objmsg ?source ?tag () in
      let header = Buf.create st.len in
      charge_alloc comm st.len;
      let st = K.mrecv_k comm K.Objmsg msg (Mpi.Bytes header) in
      let source = st.source and tag = st.tag in
      (* the length vector tells us what to allocate *)
      let lst, lmsg = K.mprobe_k comm K.Objmsg_aux ~source ~tag () in
      let lbuf = Buf.create lst.len in
      ignore (K.mrecv_k comm K.Objmsg_aux lmsg (Mpi.Bytes lbuf));
      let _header_len, lens = decode_lengths lbuf in
      let buffers =
        Array.to_list
          (Array.map
             (fun len ->
               let b = Buf.create len in
               charge_alloc comm len;
               b)
             lens)
      in
      (* one receive per out-of-band buffer *)
      let total = ref st.len in
      List.iter
        (fun b ->
          let s = K.recv_k comm K.Objmsg_aux ~source ~tag (Mpi.Bytes b) in
          total := !total + s.len)
        buffers;
      let obj = Pickle.loads ~buffers header in
      charge_visit comm obj;
      Stats.record_free (stats_of comm) (Buf.length header);
      (obj, { st with len = !total })
  | Pickle_oob_cdt ->
      (* auxiliary length message first *)
      let lst, lmsg = K.mprobe_k comm K.Objmsg_aux ?source ?tag () in
      let lbuf = Buf.create lst.len in
      ignore (K.mrecv_k comm K.Objmsg_aux lmsg (Mpi.Bytes lbuf));
      let source = lst.source and tag = lst.tag in
      let header_len, lens = decode_lengths lbuf in
      let header = Buf.create header_len in
      charge_alloc comm header_len;
      let buffers =
        Array.map
          (fun len ->
            let b = Buf.create len in
            charge_alloc comm len;
            b)
          lens
      in
      (* a single custom-datatype receive delivers header + regions *)
      let st =
        K.recv_k comm K.Objmsg ~source ~tag
          (Mpi.Custom { dt = pickled_dt; obj = { header; buffers }; count = 1 })
      in
      let obj = Pickle.loads ~buffers:(Array.to_list buffers) header in
      charge_visit comm obj;
      Stats.record_free (stats_of comm) header_len;
      (obj, st)

let messages_per_object strategy obj =
  match strategy with
  | Pickle_basic -> 1
  | Pickle_oob ->
      let _, buffers = Pickle.dumps_oob obj in
      2 + List.length buffers
  | Pickle_oob_cdt -> 2
