(** Kernels beyond the paper's Fig. 10 subset, for suite completeness. *)

module Fft2 : Kernel.KERNEL
(** 2-D FFT transpose: a block of columns of a complex matrix. *)

module Specfem3d_oc : Kernel.KERNEL
(** Outer-core coupling: single float32 values at irregular indices. *)

module Specfem3d_mt : Kernel.KERNEL
(** Mantle coupling: 3-component float32 vectors at irregular points. *)

module Milc_su3_xdown : Kernel.KERNEL
(** The x-direction MILC face: every site isolated — the many-small-
    regions counterpart of {!Milc}'s zdown face. *)
