(** NAS LU boundary exchanges of the g[ny][nx][5] f64 field. *)

module X : Kernel.KERNEL
(** The fully contiguous x-direction line (one large region). *)

module Y : Kernel.KERNEL
(** The strided y-direction line: many 40-byte blocks (the case where
    iovec lists lose, paper Fig. 10). *)
