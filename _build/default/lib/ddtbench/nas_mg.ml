(* NAS MG face-exchange kernels (DDTBench NAS_MG_x / NAS_MG_y / NAS_MG_z).

   The multigrid solver exchanges the faces of a 3-D f64 grid
   u[nz][ny][nx]:

   - the x-face (fixed i) touches a single double per (k, j) pair —
     nz*ny tiny 8-byte blocks: packing wins, iovec lists are hopeless
     (paper: regions yield lower bandwidth for NAS_MG_x);
   - the y-face (fixed j) is nz contiguous rows of nx doubles — few,
     large blocks: memory regions win (paper: higher bandwidth for
     NAS_MG_y);
   - the z-face (fixed k) is one fully contiguous slab (kept as an
     extra kernel; trivially fast for every method). *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype

let nx = 128
let ny = 128
let nz = 128
let elem = 8

let off ~k ~j ~i = ((((k * ny) + j) * nx) + i) * elem

let ifix = 1
let jfix = 1
let kfix = 1

module X = Kernel.Make (struct
  let name = "NAS_MG_x"
  let datatypes_desc = "strided vector"
  let loop_desc = "2 nested loops (non-contiguous)"
  let regions_sensible = true
  let slab_bytes = nz * ny * nx * elem

  let blocks =
    Blocks.of_list
      (List.concat_map
         (fun k -> List.init ny (fun j -> (off ~k ~j ~i:ifix, elem)))
         (List.init nz Fun.id))

  let manual_pack base ~dst =
    let pos = ref 0 in
    for k = 0 to nz - 1 do
      for j = 0 to ny - 1 do
        Buf.set_f64 dst !pos (Buf.get_f64 base (off ~k ~j ~i:ifix));
        pos := !pos + elem
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for k = 0 to nz - 1 do
      for j = 0 to ny - 1 do
        Buf.set_f64 base (off ~k ~j ~i:ifix) (Buf.get_f64 src !pos);
        pos := !pos + elem
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| ifix * elem |]
      (Datatype.hvector ~count:(nz * ny) ~blocklength:1 ~stride_bytes:(nx * elem)
         Datatype.float64)
end)

module Y = Kernel.Make (struct
  let name = "NAS_MG_y"
  let datatypes_desc = "strided vector"
  let loop_desc = "2 nested loops (non-contiguous)"
  let regions_sensible = true
  let slab_bytes = nz * ny * nx * elem

  let blocks =
    Blocks.of_list (List.init nz (fun k -> (off ~k ~j:jfix ~i:0, nx * elem)))

  let manual_pack base ~dst =
    let pos = ref 0 in
    for k = 0 to nz - 1 do
      for i = 0 to nx - 1 do
        Buf.set_f64 dst !pos (Buf.get_f64 base (off ~k ~j:jfix ~i));
        pos := !pos + elem
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for k = 0 to nz - 1 do
      for i = 0 to nx - 1 do
        Buf.set_f64 base (off ~k ~j:jfix ~i) (Buf.get_f64 src !pos);
        pos := !pos + elem
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| jfix * nx * elem |]
      (Datatype.hvector ~count:nz ~blocklength:nx
         ~stride_bytes:(ny * nx * elem) Datatype.float64)
end)

module Z = Kernel.Make (struct
  let name = "NAS_MG_z"
  let datatypes_desc = "contiguous"
  let loop_desc = "2 nested loops"
  let regions_sensible = true
  let slab_bytes = nz * ny * nx * elem

  let blocks = Blocks.of_list [ (off ~k:kfix ~j:0 ~i:0, ny * nx * elem) ]

  let manual_pack base ~dst =
    let pos = ref 0 in
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        Buf.set_f64 dst !pos (Buf.get_f64 base (off ~k:kfix ~j ~i));
        pos := !pos + elem
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        Buf.set_f64 base (off ~k:kfix ~j ~i) (Buf.get_f64 src !pos);
        pos := !pos + elem
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| off ~k:kfix ~j:0 ~i:0 |]
      (Datatype.contiguous (ny * nx) Datatype.float64)
end)
