(* WRF halo-exchange kernels (DDTBench WRF_x_vec / WRF_y_vec and the
   subarray variants WRF_x_sa / WRF_y_sa).

   The weather model exchanges halos of several 3-D float32 fields at
   once; the MPI representation is a struct of strided vectors (the
   _vec variants) or of subarrays (_sa).  The x-direction halo touches
   [halo] floats per (field, k, j) — thousands of 16-byte pieces across
   deep loop nests, which is why the paper deems memory regions
   impracticable for WRF. *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype

let nfields = 4
let ni = 64
let nj = 64
let nk = 32
let halo = 4
let elem = 4 (* f32 *)

let field_bytes = nk * nj * ni * elem
let off ~f ~k ~j ~i = ((((((f * nk) + k) * nj) + j) * ni) + i) * elem

let i0 = 1
let j0 = 1

(* Block lists shared between the _vec and _sa variants. *)
let x_blocks =
  Blocks.of_list
    (List.concat_map
       (fun f ->
         List.concat_map
           (fun k -> List.init nj (fun j -> (off ~f ~k ~j ~i:i0, halo * elem)))
           (List.init nk Fun.id))
       (List.init nfields Fun.id))

let y_blocks =
  Blocks.of_list
    (List.concat_map
       (fun f ->
         List.init nk (fun k -> (off ~f ~k ~j:j0 ~i:0, halo * ni * elem)))
       (List.init nfields Fun.id))

let x_manual_pack base ~dst =
  let pos = ref 0 in
  for f = 0 to nfields - 1 do
    for k = 0 to nk - 1 do
      for j = 0 to nj - 1 do
        for i = i0 to i0 + halo - 1 do
          Buf.set_f32 dst !pos (Buf.get_f32 base (off ~f ~k ~j ~i));
          pos := !pos + elem
        done
      done
    done
  done

let x_manual_unpack ~src base =
  let pos = ref 0 in
  for f = 0 to nfields - 1 do
    for k = 0 to nk - 1 do
      for j = 0 to nj - 1 do
        for i = i0 to i0 + halo - 1 do
          Buf.set_f32 base (off ~f ~k ~j ~i) (Buf.get_f32 src !pos);
          pos := !pos + elem
        done
      done
    done
  done

let y_manual_pack base ~dst =
  let pos = ref 0 in
  for f = 0 to nfields - 1 do
    for k = 0 to nk - 1 do
      for j = j0 to j0 + halo - 1 do
        for i = 0 to ni - 1 do
          Buf.set_f32 dst !pos (Buf.get_f32 base (off ~f ~k ~j ~i));
          pos := !pos + elem
        done
      done
    done
  done

let y_manual_unpack ~src base =
  let pos = ref 0 in
  for f = 0 to nfields - 1 do
    for k = 0 to nk - 1 do
      for j = j0 to j0 + halo - 1 do
        for i = 0 to ni - 1 do
          Buf.set_f32 base (off ~f ~k ~j ~i) (Buf.get_f32 src !pos);
          pos := !pos + elem
        done
      done
    done
  done

(* struct over the per-field face types *)
let struct_of_fields face_type =
  Datatype.hindexed
    ~blocklengths:(Array.make nfields 1)
    ~displacements_bytes:(Array.init nfields (fun f -> f * field_bytes))
    face_type

let x_vec_derived =
  (* per field: nk planes of nj rows of [halo] floats at offset i0 *)
  let rows =
    Datatype.hvector ~count:nj ~blocklength:halo ~stride_bytes:(ni * elem)
      Datatype.float32
  in
  let planes =
    Datatype.hvector ~count:nk ~blocklength:1 ~stride_bytes:(nj * ni * elem) rows
  in
  struct_of_fields
    (Datatype.hindexed ~blocklengths:[| 1 |]
       ~displacements_bytes:[| i0 * elem |] planes)

let y_vec_derived =
  let rows =
    Datatype.hvector ~count:nk ~blocklength:(halo * ni)
      ~stride_bytes:(nj * ni * elem) Datatype.float32
  in
  struct_of_fields
    (Datatype.hindexed ~blocklengths:[| 1 |]
       ~displacements_bytes:[| j0 * ni * elem |] rows)

let x_sa_derived =
  struct_of_fields
    (Datatype.subarray
       ~sizes:[| nk; nj; ni |]
       ~subsizes:[| nk; nj; halo |]
       ~starts:[| 0; 0; i0 |] ~order:`C Datatype.float32)

let y_sa_derived =
  struct_of_fields
    (Datatype.subarray
       ~sizes:[| nk; nj; ni |]
       ~subsizes:[| nk; halo; ni |]
       ~starts:[| 0; j0; 0 |] ~order:`C Datatype.float32)

module X_vec = Kernel.Make (struct
  let name = "WRF_x_vec"
  let datatypes_desc = "struct of strided vectors"
  let loop_desc = "4 nested loops (non-contiguous)"
  let regions_sensible = false
  let slab_bytes = nfields * field_bytes
  let blocks = x_blocks
  let manual_pack = x_manual_pack
  let manual_unpack = x_manual_unpack
  let derived = x_vec_derived
end)

module Y_vec = Kernel.Make (struct
  let name = "WRF_y_vec"
  let datatypes_desc = "struct of strided vectors"
  let loop_desc = "3 nested loops (non-contiguous)"
  let regions_sensible = false
  let slab_bytes = nfields * field_bytes
  let blocks = y_blocks
  let manual_pack = y_manual_pack
  let manual_unpack = y_manual_unpack
  let derived = y_vec_derived
end)

module X_sa = Kernel.Make (struct
  let name = "WRF_x_sa"
  let datatypes_desc = "struct of subarrays"
  let loop_desc = "4 nested loops (non-contiguous)"
  let regions_sensible = false
  let slab_bytes = nfields * field_bytes
  let blocks = x_blocks
  let manual_pack = x_manual_pack
  let manual_unpack = x_manual_unpack
  let derived = x_sa_derived
end)

module Y_sa = Kernel.Make (struct
  let name = "WRF_y_sa"
  let datatypes_desc = "struct of subarrays"
  let loop_desc = "3 nested loops (non-contiguous)"
  let regions_sensible = false
  let slab_bytes = nfields * field_bytes
  let blocks = y_blocks
  let manual_pack = y_manual_pack
  let manual_unpack = y_manual_unpack
  let derived = y_sa_derived
end)
