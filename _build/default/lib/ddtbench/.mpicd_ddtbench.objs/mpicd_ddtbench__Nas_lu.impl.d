lib/ddtbench/nas_lu.ml: Blocks Kernel List Mpicd_buf Mpicd_datatype
