lib/ddtbench/nas_mg.ml: Blocks Fun Kernel List Mpicd_buf Mpicd_datatype
