lib/ddtbench/wrf.mli: Kernel
