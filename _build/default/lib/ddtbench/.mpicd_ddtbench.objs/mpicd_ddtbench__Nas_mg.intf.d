lib/ddtbench/nas_mg.mli: Kernel
