lib/ddtbench/extras.mli: Kernel
