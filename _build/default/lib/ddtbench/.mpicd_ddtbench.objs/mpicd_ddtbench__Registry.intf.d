lib/ddtbench/registry.mli: Kernel
