lib/ddtbench/blocks.ml: Array List Mpicd_buf
