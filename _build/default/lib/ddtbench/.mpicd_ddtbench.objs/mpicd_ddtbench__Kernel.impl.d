lib/ddtbench/kernel.ml: Array Blocks Mpicd Mpicd_buf Mpicd_datatype Printf
