lib/ddtbench/blocks.mli: Mpicd_buf
