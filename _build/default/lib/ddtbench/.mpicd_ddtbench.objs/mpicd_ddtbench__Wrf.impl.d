lib/ddtbench/wrf.ml: Array Blocks Fun Kernel List Mpicd_buf Mpicd_datatype
