lib/ddtbench/registry.ml: Extras Kernel Lammps List Milc Nas_lu Nas_mg Wrf
