lib/ddtbench/milc.ml: Blocks Fun Kernel List Mpicd_buf Mpicd_datatype
