lib/ddtbench/kernel.mli: Blocks Mpicd Mpicd_buf Mpicd_datatype
