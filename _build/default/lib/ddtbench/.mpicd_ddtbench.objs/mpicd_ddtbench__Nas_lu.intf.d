lib/ddtbench/nas_lu.mli: Kernel
