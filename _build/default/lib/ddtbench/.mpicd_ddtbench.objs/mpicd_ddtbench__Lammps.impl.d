lib/ddtbench/lammps.ml: Array Blocks Kernel List Mpicd_buf Mpicd_datatype Printf
