lib/ddtbench/milc.mli: Kernel
