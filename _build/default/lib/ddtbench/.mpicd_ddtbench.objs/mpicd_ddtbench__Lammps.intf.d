lib/ddtbench/lammps.mli: Kernel
