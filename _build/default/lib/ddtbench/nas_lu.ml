(* NAS LU boundary-exchange kernels (DDTBench NAS_LU_x / NAS_LU_y).

   The LU pseudo-application keeps a field g[ny][nx][5] of f64 and
   exchanges grid lines with its neighbours:

   - the x-direction line (fixed j) is one fully contiguous run of
     nx * 5 doubles — the datatype is plain contiguous and a single
     large memory region covers the whole exchange;
   - the y-direction line (fixed i) touches 5 doubles per row with a
     large stride — a strided vector, and as memory regions a long
     list of 40-byte blocks (which is why the paper sees the iovec
     path lose for NAS_LU_y). *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype

let ncomp = 5
let nx = 1024
let ny = 1024
let elem = 8 (* f64 *)

let off ~j ~i ~k = ((((j * nx) + i) * ncomp) + k) * elem

let jfix = 1
let ifix = 1

module X = Kernel.Make (struct
  let name = "NAS_LU_x"
  let datatypes_desc = "contiguous"
  let loop_desc = "2 nested loops"
  let regions_sensible = true
  let slab_bytes = ny * nx * ncomp * elem

  let blocks = Blocks.of_list [ (off ~j:jfix ~i:0 ~k:0, nx * ncomp * elem) ]

  let manual_pack base ~dst =
    let pos = ref 0 in
    for i = 0 to nx - 1 do
      for k = 0 to ncomp - 1 do
        Buf.set_f64 dst !pos (Buf.get_f64 base (off ~j:jfix ~i ~k));
        pos := !pos + elem
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for i = 0 to nx - 1 do
      for k = 0 to ncomp - 1 do
        Buf.set_f64 base (off ~j:jfix ~i ~k) (Buf.get_f64 src !pos);
        pos := !pos + elem
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| off ~j:jfix ~i:0 ~k:0 |]
      (Datatype.contiguous (nx * ncomp) Datatype.float64)
end)

module Y = Kernel.Make (struct
  let name = "NAS_LU_y"
  let datatypes_desc = "strided vector"
  let loop_desc = "2 nested loops (non-contiguous)"
  let regions_sensible = true
  let slab_bytes = ny * nx * ncomp * elem

  let blocks =
    Blocks.of_list
      (List.init ny (fun j -> (off ~j ~i:ifix ~k:0, ncomp * elem)))

  let manual_pack base ~dst =
    let pos = ref 0 in
    for j = 0 to ny - 1 do
      for k = 0 to ncomp - 1 do
        Buf.set_f64 dst !pos (Buf.get_f64 base (off ~j ~i:ifix ~k));
        pos := !pos + elem
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for j = 0 to ny - 1 do
      for k = 0 to ncomp - 1 do
        Buf.set_f64 base (off ~j ~i:ifix ~k) (Buf.get_f64 src !pos);
        pos := !pos + elem
      done
    done

  let derived =
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| off ~j:0 ~i:ifix ~k:0 |]
      (Datatype.hvector ~count:ny ~blocklength:ncomp
         ~stride_bytes:(nx * ncomp * elem) Datatype.float64)
end)
