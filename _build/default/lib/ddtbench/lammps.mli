(** LAMMPS particle-exchange kernels: boundary migration gathering
    per-particle fields from structure-of-arrays storage through a
    non-unit-stride index list (Table I row 1). *)

module Full : Kernel.KERNEL
(** The full atom style: x, v (3 x f64 each), tag/type/mask (i32), q
    (f64) — six arrays, one pack loop. *)

module Atomic : Kernel.KERNEL
(** The atomic style: x, tag, type, mask. *)
