(* LAMMPS particle-exchange kernels (DDTBench LAMMPS_full /
   LAMMPS_atomic).

   The molecular-dynamics code keeps particle properties in
   structure-of-arrays form; a boundary exchange gathers the properties
   of a non-contiguous subset of particles (an index list with non-unit
   stride) from several arrays with a single pack loop.  Table I:
   indexed + struct datatypes, single loop over 6 arrays, memory
   regions impracticable (tens of thousands of tiny blocks). *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype

(* field name, bytes per particle *)
let full_fields =
  [ ("x", 24); ("v", 24); ("tag", 4); ("type", 4); ("mask", 4); ("q", 8) ]

let atomic_fields = [ ("x", 24); ("tag", 4); ("type", 4); ("mask", 4) ]

module Config = struct
  type t = { n : int; m : int; stride : int; fields : (string * int) list }

  (* Array base offsets within the one slab holding all arrays. *)
  let field_offsets c =
    let off = ref 0 in
    List.map
      (fun (name, bytes) ->
        let o = !off in
        off := !off + (c.n * bytes);
        (name, o, bytes))
      c.fields

  let slab_bytes c =
    c.n * List.fold_left (fun a (_, b) -> a + b) 0 c.fields

  (* Selected particle indices: non-unit stride through the arrays. *)
  let indices c = Array.init c.m (fun i -> i * c.stride mod c.n)

  (* Pack order: for each selected particle, each field in turn —
     the single pack loop over six arrays of the real kernel. *)
  let blocks c =
    let offsets = field_offsets c in
    let idx = indices c in
    Blocks.of_list
      (Array.to_list idx
      |> List.concat_map (fun p ->
             List.map (fun (_, base, bytes) -> (base + (p * bytes), bytes)) offsets))
end

module Make_lammps (C : sig
  val name : string
  val config : Config.t
end) = Kernel.Make (struct
  let name = C.name

  let datatypes_desc = "indexed, struct"

  let loop_desc =
    Printf.sprintf "single loop, %d arrays (non-unit stride)"
      (List.length C.config.fields)

  let regions_sensible = false
  let slab_bytes = Config.slab_bytes C.config
  let blocks = Config.blocks C.config

  let manual_pack base ~dst =
    (* single loop over the index list, packing from all arrays *)
    let offsets = Config.field_offsets C.config in
    let idx = Config.indices C.config in
    let pos = ref 0 in
    Array.iter
      (fun p ->
        List.iter
          (fun (_, fbase, bytes) ->
            Buf.blit ~src:base ~src_pos:(fbase + (p * bytes)) ~dst ~dst_pos:!pos
              ~len:bytes;
            pos := !pos + bytes)
          offsets)
      idx

  let manual_unpack ~src base =
    let offsets = Config.field_offsets C.config in
    let idx = Config.indices C.config in
    let pos = ref 0 in
    Array.iter
      (fun p ->
        List.iter
          (fun (_, fbase, bytes) ->
            Buf.blit ~src ~src_pos:!pos ~dst:base ~dst_pos:(fbase + (p * bytes))
              ~len:bytes;
            pos := !pos + bytes)
          offsets)
      idx

  let derived = Kernel.hindexed_bytes_of_blocks blocks
end)

module Full = Make_lammps (struct
  let name = "LAMMPS_full"
  let config = { Config.n = 16384; m = 4096; stride = 3; fields = full_fields }
end)

module Atomic = Make_lammps (struct
  let name = "LAMMPS_atomic"
  let config = { Config.n = 16384; m = 4096; stride = 3; fields = atomic_fields }
end)
