(* MILC su3_zdown kernel (DDTBench MILC_su3_zdown).

   Lattice QCD on a 4-D lattice of su3 matrices (3x3 complex float32,
   72 B per site).  The z-down halo gathers the z = z0 hyperplane.
   With layout [t][y][z][x], sites of the face form one contiguous run
   of nx sites per (t, y) pair: a modest number of fairly large blocks,
   which is why the paper finds memory regions profitable here.
   Table I: strided vector, 5 nested loops (t, y, x, color row,
   complex), non-unit stride. *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype

let site_bytes = 72 (* 3x3 complex f32 = 18 floats *)

let nx = 16
let ny = 16
let nz = 16
let nt = 16
let z0 = 1 (* exchanged hyperplane *)

let site_off ~t ~y ~z ~x = ((((t * ny) + y) * nz) + z) * nx + x

module Spec = struct
  let name = "MILC_su3_zdown"
  let datatypes_desc = "strided vector"
  let loop_desc = "5 nested loops (non-unit stride)"
  let regions_sensible = true
  let slab_bytes = nt * ny * nz * nx * site_bytes

  let blocks =
    Blocks.of_list
      (List.concat_map
         (fun t ->
           List.init ny (fun y ->
               (site_off ~t ~y ~z:z0 ~x:0 * site_bytes, nx * site_bytes)))
         (List.init nt Fun.id))

  (* The real kernel packs float-by-float with five nested loops. *)
  let manual_pack base ~dst =
    let pos = ref 0 in
    for t = 0 to nt - 1 do
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          let site = site_off ~t ~y ~z:z0 ~x * site_bytes in
          for row = 0 to 2 do
            for c = 0 to 5 do
              (* 3 complex entries per row = 6 floats *)
              let o = site + (((row * 6) + c) * 4) in
              Buf.set_f32 dst !pos (Buf.get_f32 base o);
              pos := !pos + 4
            done
          done
        done
      done
    done

  let manual_unpack ~src base =
    let pos = ref 0 in
    for t = 0 to nt - 1 do
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          let site = site_off ~t ~y ~z:z0 ~x * site_bytes in
          for row = 0 to 2 do
            for c = 0 to 5 do
              let o = site + (((row * 6) + c) * 4) in
              Buf.set_f32 base o (Buf.get_f32 src !pos);
              pos := !pos + 4
            done
          done
        done
      done
    done

  let derived =
    (* nested strided vectors over the contiguous x-runs of the face *)
    let run = Datatype.contiguous (nx * 18) Datatype.float32 in
    let ys =
      Datatype.hvector ~count:ny ~blocklength:1
        ~stride_bytes:(nz * nx * site_bytes) run
    in
    let ts =
      Datatype.hvector ~count:nt ~blocklength:1
        ~stride_bytes:(ny * nz * nx * site_bytes) ys
    in
    Datatype.hindexed ~blocklengths:[| 1 |]
      ~displacements_bytes:[| z0 * nx * site_bytes |]
      ts
end

include Kernel.Make (Spec)
