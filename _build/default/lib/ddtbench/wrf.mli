(** WRF multi-field halo exchanges: four 3-D float32 fields exchanged
    in one operation (struct of strided vectors / subarrays).  Regions
    are impracticable (Table I): thousands of 16-byte pieces. *)

module X_vec : Kernel.KERNEL
module Y_vec : Kernel.KERNEL

module X_sa : Kernel.KERNEL
(** Subarray-datatype variant of the x halo. *)

module Y_sa : Kernel.KERNEL
