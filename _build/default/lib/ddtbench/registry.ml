let paper_kernels : Kernel.kernel list =
  [
    (module Lammps.Full);
    (module Milc);
    (module Nas_lu.X);
    (module Nas_lu.Y);
    (module Nas_mg.X);
    (module Nas_mg.Y);
    (module Wrf.X_vec);
    (module Wrf.Y_vec);
  ]

let extra_kernels : Kernel.kernel list =
  [
    (module Lammps.Atomic);
    (module Nas_mg.Z);
    (module Wrf.X_sa);
    (module Wrf.Y_sa);
    (module Extras.Fft2);
    (module Extras.Specfem3d_oc);
    (module Extras.Specfem3d_mt);
    (module Extras.Milc_su3_xdown);
  ]

let all = paper_kernels @ extra_kernels

let find name =
  List.find_opt (fun (module K : Kernel.KERNEL) -> K.name = name) all

let table1 kernels =
  List.map
    (fun (module K : Kernel.KERNEL) ->
      ( K.name,
        K.datatypes_desc,
        K.loop_desc,
        if K.regions_sensible then "yes" else "" ))
    kernels
