module Buf = Mpicd_buf.Buf

type t = {
  offs : int array;  (* slab offset per block *)
  lens : int array;
  prefix : int array;  (* prefix.(i) = packed offset of block i *)
  total : int;
}

let of_list blocks =
  let n = List.length blocks in
  let offs = Array.make n 0 and lens = Array.make n 0 in
  let prefix = Array.make n 0 in
  let acc = ref 0 in
  List.iteri
    (fun i (o, l) ->
      if l < 0 || o < 0 then invalid_arg "Blocks.of_list: negative block";
      offs.(i) <- o;
      lens.(i) <- l;
      prefix.(i) <- !acc;
      acc := !acc + l)
    blocks;
  { offs; lens; prefix; total = !acc }

let total t = t.total
let count t = Array.length t.offs

(* Largest i with prefix.(i) <= pos. *)
let find_block t pos =
  let lo = ref 0 and hi = ref (Array.length t.prefix - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.prefix.(mid) <= pos then lo := mid else hi := mid - 1
  done;
  !lo

let pack_range t ~base ~offset ~dst =
  if offset >= t.total then 0
  else begin
    let want = min (Buf.length dst) (t.total - offset) in
    let produced = ref 0 in
    let i = ref (find_block t offset) in
    while !produced < want do
      let within = offset + !produced - t.prefix.(!i) in
      let n = min (want - !produced) (t.lens.(!i) - within) in
      Buf.blit ~src:base ~src_pos:(t.offs.(!i) + within) ~dst ~dst_pos:!produced
        ~len:n;
      produced := !produced + n;
      incr i
    done;
    want
  end

let unpack_range t ~base ~offset ~src =
  if offset >= t.total then ()
  else begin
    let want = min (Buf.length src) (t.total - offset) in
    let consumed = ref 0 in
    let i = ref (find_block t offset) in
    while !consumed < want do
      let within = offset + !consumed - t.prefix.(!i) in
      let n = min (want - !consumed) (t.lens.(!i) - within) in
      Buf.blit ~src ~src_pos:!consumed ~dst:base
        ~dst_pos:(t.offs.(!i) + within) ~len:n;
      consumed := !consumed + n;
      incr i
    done
  end

let regions t ~base =
  Array.init (count t) (fun i -> Buf.sub base ~pos:t.offs.(i) ~len:t.lens.(i))

let equal_typed t a b =
  let ok = ref true in
  for i = 0 to count t - 1 do
    if
      not
        (Buf.equal
           (Buf.sub a ~pos:t.offs.(i) ~len:t.lens.(i))
           (Buf.sub b ~pos:t.offs.(i) ~len:t.lens.(i)))
    then ok := false
  done;
  !ok

let iter t ~f =
  for i = 0 to count t - 1 do
    f ~off:t.offs.(i) ~len:t.lens.(i)
  done
