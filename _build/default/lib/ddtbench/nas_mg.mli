(** NAS MG face exchanges of the u[nz][ny][nx] f64 grid. *)

module X : Kernel.KERNEL
(** x-face: one 8-byte element per (k, j) — thousands of tiny blocks. *)

module Y : Kernel.KERNEL
(** y-face: nz contiguous rows — few large blocks. *)

module Z : Kernel.KERNEL
(** z-face: a single contiguous slab (extra kernel). *)
