(** Resumable block cursors.

    A DDTBench kernel's exchange is, at bottom, an ordered list of
    (slab offset, length) blocks.  The paper packs such lists with C++
    coroutines ([std::generator]) so the pack callback can suspend
    mid-loop-nest when its destination fragment fills up; this module is
    the equivalent explicit state machine: the prefix-sum table lets a
    pack/unpack callback resume at any virtual offset of the packed
    stream in O(log n_blocks) — no coroutine (and no vectorization bug)
    required. *)

module Buf = Mpicd_buf.Buf

type t

val of_list : (int * int) list -> t
(** [(slab_offset, len)] blocks in packed-stream order.
    @raise Invalid_argument on negative lengths. *)

val total : t -> int
(** Packed size: sum of block lengths. *)

val count : t -> int

val pack_range : t -> base:Buf.t -> offset:int -> dst:Buf.t -> int
(** Copy packed-stream bytes [offset .. offset + length dst) out of the
    slab; returns the bytes produced (short only at end of stream). *)

val unpack_range : t -> base:Buf.t -> offset:int -> src:Buf.t -> unit
(** Scatter a fragment starting at packed-stream [offset] into the slab. *)

val regions : t -> base:Buf.t -> Buf.t array
(** One zero-copy slice per block. *)

val equal_typed : t -> Buf.t -> Buf.t -> bool
(** Compare the block-covered bytes of two slabs. *)

val iter : t -> f:(off:int -> len:int -> unit) -> unit
