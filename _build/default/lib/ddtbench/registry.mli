(** Kernel registry: the paper's Fig. 10 / Table I subset plus the
    extra kernels this reproduction adds for completeness. *)

val paper_kernels : Kernel.kernel list
(** The eight kernels evaluated in the paper's Fig. 10, in its order:
    LAMMPS_full, MILC_su3_zdown, NAS_LU_x, NAS_LU_y, NAS_MG_x,
    NAS_MG_y, WRF_x_vec, WRF_y_vec. *)

val extra_kernels : Kernel.kernel list
(** LAMMPS_atomic, NAS_MG_z, WRF_x_sa, WRF_y_sa, FFT2, SPECFEM3D_oc. *)

val all : Kernel.kernel list

val find : string -> Kernel.kernel option
(** Lookup by kernel name (case-sensitive). *)

val table1 : Kernel.kernel list -> (string * string * string * string) list
(** Rows of the paper's Table I: (benchmark, MPI datatypes, loop
    structure, memory-regions checkmark). *)
