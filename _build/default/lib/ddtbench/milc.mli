(** MILC su3_zdown: the z-direction halo of a 4-D lattice of su3
    matrices (3x3 complex float32).  The face decomposes into a modest
    number of contiguous x-runs — the "few large regions" case where
    the paper finds the memory-region path profitable. *)

include Kernel.KERNEL
