(** Type-validated point-to-point messaging.

    The paper's related work (its authors' earlier "Improving MPI
    Safety for Modern Languages", EuroMPI'23, and the correctness-
    benchmark line of work it cites) observes that MPI performs no
    message type validation: a sender's doubles silently land in a
    receiver's ints.  This layer closes that hole for derived
    datatypes: every send carries a compact fingerprint of its datatype
    (built on {!Mpicd_datatype.Datatype.serialize}), and the receive
    verifies it against the posted datatype before any data is
    delivered, raising {!Type_mismatch} otherwise.

    The fingerprint travels in the internal tag space as a tiny
    auxiliary eager message, so user payloads and tags are untouched —
    the same single-extra-message technique mpi4py uses for buffer
    lengths (§VI of the paper). *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi

exception Type_mismatch of { expected : string; got : string }
(** Carries the printed forms of the two datatypes. *)

val fingerprint : Datatype.t -> count:int -> Buf.t
(** Serialized (datatype, count) description.  Two fingerprints are
    byte-equal iff sender and receiver agree on the lowered type
    representation and count. *)

val send :
  Mpi.comm -> dst:int -> tag:int -> Datatype.t -> count:int -> Buf.t -> unit
(** Typed send: ships the fingerprint, then the payload as a [Typed]
    buffer. *)

val recv :
  Mpi.comm ->
  ?source:int ->
  ?tag:int ->
  Datatype.t ->
  count:int ->
  Buf.t ->
  Mpi.status
(** Typed receive: verifies the sender's fingerprint against the posted
    datatype {e before} receiving the payload.
    @raise Type_mismatch when the types disagree (the payload is then
    drained into a scratch buffer so the channel stays usable). *)

val recv_any :
  Mpi.comm -> ?source:int -> ?tag:int -> unit -> Datatype.t * int * Buf.t * Mpi.status
(** Dynamic receive: learns the sender's datatype from the fingerprint,
    allocates a buffer of the right extent, receives into it, and
    returns (datatype, count, buffer, status) — receiving "objects of
    an undetermined size", the direction §VIII calls out for future
    work. *)
