module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module K = Mpi.Internal

exception Type_mismatch of { expected : string; got : string }

let fingerprint dt ~count =
  let body = Datatype.serialize dt in
  let b = Buf.create (8 + Buf.length body) in
  Buf.set_i64 b 0 (Int64.of_int count);
  Buf.blit ~src:body ~src_pos:0 ~dst:b ~dst_pos:8 ~len:(Buf.length body);
  b

let parse_fingerprint b =
  let count = Int64.to_int (Buf.get_i64 b 0) in
  let dt =
    Datatype.deserialize (Buf.sub b ~pos:8 ~len:(Buf.length b - 8))
  in
  (dt, count)

let send comm ~dst ~tag dt ~count base =
  K.send_k comm K.Objmsg_aux ~dst ~tag (Mpi.Bytes (fingerprint dt ~count));
  Mpi.send comm ~dst ~tag (Mpi.Typed { dt; count; base })

(* Fetch and parse the sender's fingerprint (mprobe for the unknown
   size), pinning source and tag for the payload receive. *)
let incoming_type comm ?source ?tag () =
  let st, msg = K.mprobe_k comm K.Objmsg_aux ?source ?tag () in
  let fp = Buf.create st.len in
  ignore (K.mrecv_k comm K.Objmsg_aux msg (Mpi.Bytes fp));
  let dt, count = parse_fingerprint fp in
  (dt, count, st.source, st.tag)

let describe dt ~count = Printf.sprintf "%d x %s" count (Datatype.to_string dt)

let recv comm ?source ?tag dt ~count base =
  let sender_dt, sender_count, src, utag = incoming_type comm ?source ?tag () in
  if not (Datatype.equal sender_dt dt && sender_count = count) then begin
    (* drain the mismatched payload so the channel stays usable *)
    let scratch =
      Buf.create (Datatype.packed_size sender_dt ~count:sender_count)
    in
    ignore (Mpi.recv comm ~source:src ~tag:utag (Mpi.Bytes scratch));
    raise
      (Type_mismatch
         {
           expected = describe dt ~count;
           got = describe sender_dt ~count:sender_count;
         })
  end;
  Mpi.recv comm ~source:src ~tag:utag (Mpi.Typed { dt; count; base })

let recv_any comm ?source ?tag () =
  let dt, count, src, utag = incoming_type comm ?source ?tag () in
  let need = Datatype.ub dt + ((count - 1) * Datatype.extent dt) in
  let base = Buf.create (max need 0) in
  let st = Mpi.recv comm ~source:src ~tag:utag (Mpi.Typed { dt; count; base }) in
  (dt, count, base, st)
