lib/typed_mpi/typed_mpi.ml: Int64 Mpicd Mpicd_buf Mpicd_datatype Printf
