lib/typed_mpi/typed_mpi.mli: Mpicd Mpicd_buf Mpicd_datatype
