lib/collectives/collectives.mli: Mpicd Mpicd_buf
