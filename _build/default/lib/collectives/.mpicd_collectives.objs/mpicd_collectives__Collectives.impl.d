lib/collectives/collectives.ml: Array Float List Mpicd Mpicd_buf
