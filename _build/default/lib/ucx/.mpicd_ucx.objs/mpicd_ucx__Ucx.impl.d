lib/ucx/ucx.ml: Float Hashtbl Int64 List Mpicd_buf Mpicd_simnet Option Printf
