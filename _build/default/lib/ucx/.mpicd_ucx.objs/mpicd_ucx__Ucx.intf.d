lib/ucx/ucx.mli: Mpicd_buf Mpicd_simnet
