(** Figures 1–7: the Rust-type benchmarks of the paper's §V-A. *)

module Report = Mpicd_harness.Report

val fig1 : unit -> Report.series list
(** Double-vec latency vs subvector size at a fixed 64 KiB message. *)

val fig2 : unit -> Report.series list
(** Double-vec bandwidth over message size (subvector 1 KiB). *)

val fig3 : unit -> Report.series list
(** struct-vec latency. *)

val fig4 : unit -> Report.series list
(** struct-vec bandwidth. *)

val fig5 : unit -> Report.series list
(** struct-simple latency (the gapped struct that hurts Open MPI). *)

val fig6 : unit -> Report.series list
(** struct-simple-no-gap latency. *)

val fig7 : unit -> Report.series list
(** struct-simple bandwidth (the eager→rendezvous dip). *)

val all : (string * string * string * (unit -> Report.series list)) list
(** [(key, title, ylabel, generator)] for each figure. *)
