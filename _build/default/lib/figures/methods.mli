(** Transfer-method implementations — one {!Mpicd_harness.Harness.impl}
    builder per method the paper's evaluation compares.  Each builder
    allocates its own buffers so every measurement starts fresh. *)

module Buf = Mpicd_buf.Buf
module H = Mpicd_harness.Harness
module B = Mpicd_bench_types.Bench_types
module Kernel = Mpicd_ddtbench.Kernel

(** {1 double-vec (Figs. 1–2)} *)

val dv_custom : subvec:int -> total:int -> unit -> H.impl
(** The custom datatype API: packed length header + one zero-copy
    region per subvector. *)

val dv_manual : subvec:int -> total:int -> unit -> H.impl
(** Manual packing into an allocated byte buffer (charged). *)

val bytes_baseline : total:int -> unit -> H.impl
(** rsmpi-bytes-baseline: the same bytes as one contiguous buffer. *)

(** {1 struct types (Figs. 3–7)} *)

val st_custom : (module B.STRUCT) -> count:int -> unit -> H.impl
val st_manual : (module B.STRUCT) -> count:int -> unit -> H.impl
val st_rsmpi : (module B.STRUCT) -> count:int -> unit -> H.impl
(** The derived-datatype baseline (RSMPI over the Open MPI engine). *)

(** {1 DDTBench kernels (Fig. 10)} *)

val k_reference : Kernel.kernel -> unit -> H.impl
(** Contiguous pingpong of the same wire size (upper bound). *)

val k_manual : Kernel.kernel -> unit -> H.impl
val k_ddt_direct : Kernel.kernel -> unit -> H.impl
(** Send/receive directly with the derived datatype engine. *)

val k_ddt_pack : Kernel.kernel -> unit -> H.impl
(** MPI_Pack into a buffer, send bytes, MPI_Unpack. *)

val k_custom_pack : Kernel.kernel -> unit -> H.impl
val k_custom_regions : Kernel.kernel -> unit -> H.impl option
(** [None] when the kernel's Table-I row marks regions impracticable. *)
