(* Transfer-method implementations shared by the figure generators:
   every method the paper's §V compares, as Harness.impl builders. *)

module Buf = Mpicd_buf.Buf
module Dt = Mpicd_datatype.Datatype
module Mpi = Mpicd.Mpi
module H = Mpicd_harness.Harness
module B = Mpicd_bench_types.Bench_types
module DV = B.Double_vec
module Blocks = Mpicd_ddtbench.Blocks
module Kernel = Mpicd_ddtbench.Kernel

(* --- double-vec (Vec<Vec<i32>>) --- *)

let dv_custom ~subvec ~total () =
  let src = DV.generate ~subvec_bytes:subvec ~total_bytes:total in
  let sink = DV.make_sink ~subvec_bytes:subvec ~total_bytes:total in
  {
    H.send =
      (fun comm ~dst ~tag ->
        Mpi.send comm ~dst ~tag
          (Mpi.Custom { dt = DV.custom_dt; obj = src; count = 1 }));
    H.recv =
      (fun comm ~source ~tag ->
        ignore
          (Mpi.recv comm ~source ~tag
             (Mpi.Custom { dt = DV.custom_dt; obj = sink; count = 1 })));
  }

let dv_manual ~subvec ~total () =
  let src = DV.generate ~subvec_bytes:subvec ~total_bytes:total in
  let sink = DV.make_sink ~subvec_bytes:subvec ~total_bytes:total in
  let psize = DV.manual_pack_size src in
  let nvec = Array.length src in
  {
    H.send =
      (fun comm ~dst ~tag ->
        let buf = H.charged_alloc comm psize in
        DV.manual_pack src ~dst:buf;
        H.charge_copy comm total;
        H.charge_pieces comm nvec;
        Mpi.send comm ~dst ~tag (Mpi.Bytes buf);
        H.charged_free comm buf);
    H.recv =
      (fun comm ~source ~tag ->
        let buf = H.charged_alloc comm psize in
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes buf));
        DV.manual_unpack ~src:buf sink;
        H.charge_copy comm total;
        H.charge_pieces comm nvec;
        H.charged_free comm buf);
  }

(* The paper's rsmpi-bytes-baseline: RSMPI cannot express Vec<Vec<i32>>,
   so the absolute baseline just moves the same bytes contiguously. *)
let bytes_baseline ~total () =
  let src = Buf.create total and sink = Buf.create total in
  Kernel.fill src;
  {
    H.send = (fun comm ~dst ~tag -> Mpi.send comm ~dst ~tag (Mpi.Bytes src));
    H.recv =
      (fun comm ~source ~tag -> ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes sink)));
  }

(* --- the struct types --- *)

let st_custom (module S : B.STRUCT) ~count () =
  let src = S.generate ~count and sink = S.make_sink ~count in
  {
    H.send =
      (fun comm ~dst ~tag ->
        Mpi.send comm ~dst ~tag (Mpi.Custom { dt = S.custom_dt; obj = src; count }));
    H.recv =
      (fun comm ~source ~tag ->
        ignore
          (Mpi.recv comm ~source ~tag
             (Mpi.Custom { dt = S.custom_dt; obj = sink; count })));
  }

let st_manual (module S : B.STRUCT) ~count () =
  let src = S.generate ~count and sink = S.make_sink ~count in
  let psize = count * S.packed_elem_size in
  let pieces = count * max 1 S.pieces_per_elem in
  {
    H.send =
      (fun comm ~dst ~tag ->
        let buf = H.charged_alloc comm psize in
        S.manual_pack src ~count ~dst:buf;
        H.charge_copy comm psize;
        H.charge_pieces comm pieces;
        Mpi.send comm ~dst ~tag (Mpi.Bytes buf);
        H.charged_free comm buf);
    H.recv =
      (fun comm ~source ~tag ->
        let buf = H.charged_alloc comm psize in
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes buf));
        S.manual_unpack ~src:buf sink ~count;
        H.charge_copy comm psize;
        H.charge_pieces comm pieces;
        H.charged_free comm buf);
  }

let st_rsmpi (module S : B.STRUCT) ~count () =
  let src = S.generate ~count and sink = S.make_sink ~count in
  {
    H.send =
      (fun comm ~dst ~tag ->
        Mpi.send comm ~dst ~tag (Mpi.Typed { dt = S.derived; count; base = src }));
    H.recv =
      (fun comm ~source ~tag ->
        ignore
          (Mpi.recv comm ~source ~tag
             (Mpi.Typed { dt = S.derived; count; base = sink })));
  }

(* --- DDTBench kernels (Fig. 10 methods) --- *)

let k_reference (module K : Kernel.KERNEL) () = bytes_baseline ~total:K.wire_bytes ()

let k_manual (module K : Kernel.KERNEL) () =
  let src = K.create () and sink = K.create_sink () in
  let pieces = Blocks.count K.blocks in
  {
    H.send =
      (fun comm ~dst ~tag ->
        let buf = H.charged_alloc comm K.wire_bytes in
        K.manual_pack src ~dst:buf;
        H.charge_copy comm K.wire_bytes;
        H.charge_pieces comm pieces;
        Mpi.send comm ~dst ~tag (Mpi.Bytes buf);
        H.charged_free comm buf);
    H.recv =
      (fun comm ~source ~tag ->
        let buf = H.charged_alloc comm K.wire_bytes in
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes buf));
        K.manual_unpack ~src:buf sink;
        H.charge_copy comm K.wire_bytes;
        H.charge_pieces comm pieces;
        H.charged_free comm buf);
  }

let k_ddt_direct (module K : Kernel.KERNEL) () =
  let src = K.create () and sink = K.create_sink () in
  {
    H.send =
      (fun comm ~dst ~tag ->
        Mpi.send comm ~dst ~tag (Mpi.Typed { dt = K.derived; count = 1; base = src }));
    H.recv =
      (fun comm ~source ~tag ->
        ignore
          (Mpi.recv comm ~source ~tag
             (Mpi.Typed { dt = K.derived; count = 1; base = sink })));
  }

(* MPI_Pack into a contiguous buffer, send as bytes, MPI_Unpack. *)
let k_ddt_pack (module K : Kernel.KERNEL) () =
  let src = K.create () and sink = K.create_sink () in
  let blocks = Dt.blocks_per_element K.derived in
  {
    H.send =
      (fun comm ~dst ~tag ->
        let buf = H.charged_alloc comm K.wire_bytes in
        ignore (Dt.pack K.derived ~count:1 ~src ~dst:buf);
        H.charge_copy comm K.wire_bytes;
        H.charge_ddt_blocks comm blocks;
        Mpi.send comm ~dst ~tag (Mpi.Bytes buf);
        H.charged_free comm buf);
    H.recv =
      (fun comm ~source ~tag ->
        let buf = H.charged_alloc comm K.wire_bytes in
        ignore (Mpi.recv comm ~source ~tag (Mpi.Bytes buf));
        Dt.unpack K.derived ~count:1 ~src:buf ~dst:sink;
        H.charge_copy comm K.wire_bytes;
        H.charge_ddt_blocks comm blocks;
        H.charged_free comm buf);
  }

let k_custom_pack (module K : Kernel.KERNEL) () =
  let src = K.create () and sink = K.create_sink () in
  {
    H.send =
      (fun comm ~dst ~tag ->
        Mpi.send comm ~dst ~tag
          (Mpi.Custom { dt = K.custom_pack; obj = src; count = 1 }));
    H.recv =
      (fun comm ~source ~tag ->
        ignore
          (Mpi.recv comm ~source ~tag
             (Mpi.Custom { dt = K.custom_pack; obj = sink; count = 1 })));
  }

let k_custom_regions (module K : Kernel.KERNEL) () =
  match K.custom_regions with
  | None -> None
  | Some dt ->
      let src = K.create () and sink = K.create_sink () in
      Some
        {
          H.send =
            (fun comm ~dst ~tag ->
              Mpi.send comm ~dst ~tag (Mpi.Custom { dt; obj = src; count = 1 }));
          H.recv =
            (fun comm ~source ~tag ->
              ignore
                (Mpi.recv comm ~source ~tag (Mpi.Custom { dt; obj = sink; count = 1 })));
        }
