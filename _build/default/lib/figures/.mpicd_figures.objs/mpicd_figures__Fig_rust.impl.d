lib/figures/fig_rust.ml: List Methods Mpicd_bench_types Mpicd_harness
