lib/figures/fig_python.ml: Int64 List Methods Mpicd_buf Mpicd_harness Mpicd_objmsg Mpicd_pickle
