lib/figures/fig_ddtbench.mli: Mpicd_ddtbench
