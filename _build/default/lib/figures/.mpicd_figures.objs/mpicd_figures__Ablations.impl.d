lib/figures/ablations.ml: List Methods Mpicd Mpicd_bench_types Mpicd_buf Mpicd_collectives Mpicd_ddtbench Mpicd_device Mpicd_harness Mpicd_objmsg Mpicd_pickle Mpicd_simnet Option Printf
