lib/figures/fig_rust.mli: Mpicd_harness
