lib/figures/fig_ddtbench.ml: Fun List Methods Mpicd_ddtbench Mpicd_harness Option Printf String
