lib/figures/methods.mli: Mpicd_bench_types Mpicd_buf Mpicd_ddtbench Mpicd_harness
