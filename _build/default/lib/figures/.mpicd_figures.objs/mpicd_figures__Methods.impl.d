lib/figures/methods.ml: Array Mpicd Mpicd_bench_types Mpicd_buf Mpicd_datatype Mpicd_ddtbench Mpicd_harness
