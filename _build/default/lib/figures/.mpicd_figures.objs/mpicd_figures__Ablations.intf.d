lib/figures/ablations.mli: Mpicd_harness
