lib/figures/fig_python.mli: Mpicd_harness
