(** Table I and Figure 10: the DDTBench evaluation (paper §V-C). *)

module Kernel = Mpicd_ddtbench.Kernel

val method_names : string list
(** Column labels of Fig. 10, in order: reference, manual-pack,
    mpi-ddt, mpi-pack-ddt, custom-pack, custom-regions. *)

val kernel_row : Kernel.kernel -> float option list
(** Bandwidth (MiB/s) of one kernel under every method; [None] where a
    method does not apply. *)

val fig10_rows :
  ?kernels:Kernel.kernel list -> unit -> (string * int * float option list) list
(** [(name, wire_bytes, bandwidths)] per kernel (defaults to the
    paper's eight). *)

val print_fig10 : ?kernels:Kernel.kernel list -> unit -> unit
val fig10_csv : path:string -> ?kernels:Kernel.kernel list -> unit -> unit
val print_table1 : unit -> unit
