(* Figures 1–7: the Rust benchmark types over the mpicd prototype
   (paper §V-A).  Each function regenerates one figure as Report
   series; sizes follow the paper's axes. *)

module H = Mpicd_harness.Harness
module Report = Mpicd_harness.Report
module B = Mpicd_bench_types.Bench_types

(* average of four runs, as in the paper *)
let reps = 4

let pow2 lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let measure ~bytes make = H.pingpong ~warmup:1 ~reps ~bytes make

let bandwidth_series label ~sizes ~make =
  {
    Report.label;
    points =
      List.map (fun n -> (n, (measure ~bytes:n (make n)).bandwidth_mib_s)) sizes;
  }

(* Fig. 1: double-vec latency while varying the subvector size from
   64 B to 4 KiB (fixed 64 KiB message).  Expected shape: custom falls
   as subvectors grow and crosses below manual-pack near 2^9 B;
   manual-pack is insensitive to the subvector size; the raw byte
   baseline is lowest. *)
let fig1 () =
  let total = 64 * 1024 in
  let subvecs = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let series label make =
    {
      Report.label;
      points =
        List.map
          (fun subvec -> (subvec, (measure ~bytes:total (make subvec)).latency_us))
          subvecs;
    }
  in
  [
    series "custom" (fun subvec -> Methods.dv_custom ~subvec ~total);
    series "manual-pack" (fun subvec -> Methods.dv_manual ~subvec ~total);
    series "rsmpi-bytes-baseline" (fun _ -> Methods.bytes_baseline ~total);
  ]

(* Fig. 2: double-vec bandwidth, subvector size 1024 B. *)
let fig2 () =
  let sizes = pow2 10 22 in
  [
    bandwidth_series "custom" ~sizes ~make:(fun n ->
        Methods.dv_custom ~subvec:1024 ~total:n);
    bandwidth_series "manual-pack" ~sizes ~make:(fun n ->
        Methods.dv_manual ~subvec:1024 ~total:n);
    bandwidth_series "rsmpi-bytes-baseline" ~sizes ~make:(fun n ->
        Methods.bytes_baseline ~total:n);
  ]

(* Figs. 3/4: struct-vec — counts chosen so the packed size (~8212 B
   per element) matches the x value. *)
let struct_series which (module S : B.STRUCT) ~sizes =
  let make_of m n =
    let count = S.count_for_packed_bytes n in
    m (module S : B.STRUCT) ~count
  in
  let series label m =
    {
      Report.label;
      points =
        List.map
          (fun n ->
            let count = S.count_for_packed_bytes n in
            let bytes = count * S.packed_elem_size in
            let r = measure ~bytes (make_of m n) in
            ( bytes,
              match which with
              | `Latency -> r.latency_us
              | `Bandwidth -> r.bandwidth_mib_s ))
          sizes;
    }
  in
  [
    series "custom" Methods.st_custom;
    series "manual-pack" Methods.st_manual;
    series "rsmpi-derived-datatype" Methods.st_rsmpi;
  ]

let fig3 () = struct_series `Latency (module B.Struct_vec) ~sizes:(pow2 13 22)
let fig4 () = struct_series `Bandwidth (module B.Struct_vec) ~sizes:(pow2 15 22)
let fig5 () = struct_series `Latency (module B.Struct_simple) ~sizes:(pow2 6 19)

let fig6 () =
  struct_series `Latency (module B.Struct_simple_no_gap) ~sizes:(pow2 6 19)

let fig7 () =
  struct_series `Bandwidth (module B.Struct_simple) ~sizes:(pow2 10 22)

let all : (string * string * string * (unit -> Report.series list)) list =
  [
    ("fig1", "Fig. 1: double-vec latency vs subvector size (64 KiB msg)", "latency us", fig1);
    ("fig2", "Fig. 2: double-vec bandwidth (subvec 1 KiB)", "MiB/s", fig2);
    ("fig3", "Fig. 3: struct-vec latency", "latency us", fig3);
    ("fig4", "Fig. 4: struct-vec bandwidth", "MiB/s", fig4);
    ("fig5", "Fig. 5: struct-simple latency", "latency us", fig5);
    ("fig6", "Fig. 6: struct-simple-no-gap latency", "latency us", fig6);
    ("fig7", "Fig. 7: struct-simple bandwidth", "MiB/s", fig7);
  ]
