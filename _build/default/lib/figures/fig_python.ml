(* Figures 8–9: mpi4py-style Python object pingpong (paper §V-B).

   Effective bandwidth of communicating Python objects under the three
   pickle strategies, against a raw-buffer roofline. *)

module Buf = Mpicd_buf.Buf
module P = Mpicd_pickle.Pickle
module Objmsg = Mpicd_objmsg.Objmsg
module H = Mpicd_harness.Harness
module Report = Mpicd_harness.Report

let reps = 4

let pow2 lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

(* A single 1-D f64 NumPy array of [bytes] total. *)
let single_array bytes () = P.Ndarray (P.ndarray ~dtype:P.U8 [| bytes |])

(* The paper's complex object: a user-defined object holding multiple
   128 KiB arrays summing to [bytes] (dict + list structure adds the
   small metadata the pickle header carries). *)
let complex_object bytes () =
  let chunk = 128 * 1024 in
  let n = max 1 (bytes / chunk) in
  P.Dict
    [
      (P.Str "kind", P.Str "complex");
      (P.Str "n", P.Int (Int64.of_int n));
      ( P.Str "fields",
        P.List (List.init n (fun _ -> P.Ndarray (P.ndarray ~dtype:P.U8 [| chunk |])))
      );
    ]

let measure = H.pingpong ~warmup:1 ~reps

let obj_impl strategy make_obj () =
  let obj = make_obj () in
  {
    H.send = (fun comm ~dst ~tag -> Objmsg.send strategy comm ~dst ~tag obj);
    H.recv =
      (fun comm ~source ~tag ->
        ignore (Objmsg.recv strategy comm ~source ~tag ()));
  }

let series_for make_obj ~sizes =
  let strategies =
    [ Objmsg.Pickle_basic; Objmsg.Pickle_oob; Objmsg.Pickle_oob_cdt ]
  in
  let payload n = P.payload_bytes (make_obj n ()) in
  {
    Report.label = "roofline";
    points =
      List.map
        (fun n ->
          let bytes = payload n in
          (n, (measure ~bytes (Methods.bytes_baseline ~total:bytes)).bandwidth_mib_s))
        sizes;
  }
  :: List.map
       (fun strategy ->
         {
           Report.label = Objmsg.strategy_name strategy;
           points =
             List.map
               (fun n ->
                 let bytes = payload n in
                 ( n,
                   (H.pingpong ~reps ~bytes (obj_impl strategy (make_obj n)))
                     .bandwidth_mib_s ))
               sizes;
         })
       strategies

(* Fig. 8: single NumPy arrays, 1 KiB – 32 MiB. *)
let fig8 () = series_for single_array ~sizes:(pow2 10 24)

(* Fig. 9: complex objects of 128 KiB arrays, 128 KiB – 32 MiB. *)
let fig9 () = series_for complex_object ~sizes:(pow2 17 24)

let all : (string * string * string * (unit -> Report.series list)) list =
  [
    ("fig8", "Fig. 8: Python pingpong, single NumPy array", "MiB/s", fig8);
    ("fig9", "Fig. 9: Python pingpong, complex object (128 KiB arrays)", "MiB/s", fig9);
  ]
