(** Figures 8–9: mpi4py-style Python object pingpong (paper §V-B). *)

module Report = Mpicd_harness.Report

val fig8 : unit -> Report.series list
(** Single NumPy array: roofline / pickle-basic / pickle-oob /
    pickle-oob-cdt effective bandwidth. *)

val fig9 : unit -> Report.series list
(** Complex object composed of 128 KiB arrays. *)

val all : (string * string * string * (unit -> Report.series list)) list
