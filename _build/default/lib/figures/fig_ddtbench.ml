(* Table I and Figure 10: the DDTBench subset (paper §V-C). *)

module H = Mpicd_harness.Harness
module Report = Mpicd_harness.Report
module Kernel = Mpicd_ddtbench.Kernel
module Registry = Mpicd_ddtbench.Registry

let reps = 4

let method_names =
  [
    "reference";
    "manual-pack";
    "mpi-ddt";
    "mpi-pack-ddt";
    "custom-pack";
    "custom-regions";
  ]

(* Bandwidth (MiB/s) of one kernel under every method; [None] when the
   method does not apply (regions impracticable). *)
let kernel_row (module K : Kernel.KERNEL) =
  let bw make = (H.pingpong ~reps ~bytes:K.wire_bytes make).H.bandwidth_mib_s in
  let k = (module K : Kernel.KERNEL) in
  [
    Some (bw (Methods.k_reference k));
    Some (bw (Methods.k_manual k));
    Some (bw (Methods.k_ddt_direct k));
    Some (bw (Methods.k_ddt_pack k));
    Some (bw (Methods.k_custom_pack k));
    (match Methods.k_custom_regions k () with
    | None -> None
    | Some _ -> Some (bw (fun () -> Option.get (Methods.k_custom_regions k ()))));
  ]

let fig10_rows ?(kernels = Registry.paper_kernels) () =
  List.map
    (fun (module K : Kernel.KERNEL) -> (K.name, K.wire_bytes, kernel_row (module K)))
    kernels

let print_fig10 ?kernels () =
  let rows = fig10_rows ?kernels () in
  let cells =
    List.map
      (fun (name, bytes, bws) ->
        name :: Report.human_bytes bytes
        :: List.map
             (function None -> "-" | Some bw -> Printf.sprintf "%.0f" bw)
             bws)
      rows
  in
  Report.print_kv_table
    ~title:"Fig. 10: DDTBench bandwidth (MiB/s) per kernel and method"
    ~header:("benchmark" :: "size" :: method_names)
    cells

let fig10_csv ~path ?kernels () =
  let rows = fig10_rows ?kernels () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (String.concat "," ("benchmark" :: "bytes" :: method_names));
      output_char oc '\n';
      List.iter
        (fun (name, bytes, bws) ->
          output_string oc
            (String.concat ","
               (name :: string_of_int bytes
               :: List.map
                    (function None -> "" | Some b -> Printf.sprintf "%.1f" b)
                    bws));
          output_char oc '\n')
        rows)

let print_table1 () =
  let rows =
    Registry.table1 Registry.paper_kernels
    |> List.map (fun (a, b, c, d) -> [ a; b; c; d ])
  in
  Report.print_kv_table ~title:"Table I: Benchmark characteristics"
    ~header:[ "Benchmark"; "MPI Datatypes"; "Loop Structure"; "Memory Regions" ]
    rows
