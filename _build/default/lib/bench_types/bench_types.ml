module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype
module Derive = Mpicd_derive.Derive
module Custom = Mpicd.Custom

let fill_pattern ?(seed = 0) b =
  for i = 0 to Buf.length b - 1 do
    Buf.set_u8 b i ((i * 31 + seed + 11) land 0xff)
  done

module Double_vec = struct
  type t = Buf.t array

  let generate ~subvec_bytes ~total_bytes =
    if subvec_bytes <= 0 || total_bytes <= 0 then
      invalid_arg "Double_vec.generate: sizes must be positive";
    if total_bytes < subvec_bytes then begin
      let b = Buf.create total_bytes in
      fill_pattern b;
      [| b |]
    end
    else begin
      let n = total_bytes / subvec_bytes in
      Array.init n (fun i ->
          let b = Buf.create subvec_bytes in
          fill_pattern ~seed:i b;
          b)
    end

  let make_sink ~subvec_bytes ~total_bytes =
    if total_bytes < subvec_bytes then [| Buf.create total_bytes |]
    else Array.init (total_bytes / subvec_bytes) (fun _ -> Buf.create subvec_bytes)

  let total_bytes t = Array.fold_left (fun a b -> a + Buf.length b) 0 t

  let equal a b =
    Array.length a = Array.length b
    && Array.for_all2 (fun x y -> Buf.equal x y) a b

  (* The packed header: one little-endian i32 length per subvector. *)
  let header_of (t : t) =
    let h = Buf.create (4 * Array.length t) in
    Array.iteri (fun i b -> Buf.set_i32 h (4 * i) (Int32.of_int (Buf.length b))) t;
    h

  let custom_dt : t Custom.t =
    Custom.create
      ~pack_pieces:(fun _ ~count:_ -> 1)
      {
        (* state holds the serialized length header; on the receive side
           it is the expected header, verified as data arrives. *)
        state = (fun t ~count:_ -> header_of t);
        state_free = ignore;
        query = (fun h _ ~count:_ -> Buf.length h);
        pack =
          (fun h _ ~count:_ ~offset ~dst ->
            let len = min (Buf.length dst) (Buf.length h - offset) in
            Buf.blit ~src:h ~src_pos:offset ~dst ~dst_pos:0 ~len;
            len);
        unpack =
          (fun h _ ~count:_ ~offset ~src ->
            (* announced subvector lengths must match the local shape *)
            for i = 0 to Buf.length src - 1 do
              if Buf.get src i <> Buf.get h (offset + i) then
                raise (Custom.Error 86)
            done);
        region_count = Some (fun _ t ~count:_ -> Array.length t);
        regions = Some (fun _ t ~count:_ -> t);
      }

  let manual_pack_size t = 4 + (4 * Array.length t) + total_bytes t

  let manual_pack t ~dst =
    if Buf.length dst < manual_pack_size t then
      invalid_arg "Double_vec.manual_pack: destination too small";
    Buf.set_i32 dst 0 (Int32.of_int (Array.length t));
    let pos = ref (4 + (4 * Array.length t)) in
    Array.iteri
      (fun i b ->
        Buf.set_i32 dst (4 + (4 * i)) (Int32.of_int (Buf.length b));
        Buf.blit ~src:b ~src_pos:0 ~dst ~dst_pos:!pos ~len:(Buf.length b);
        pos := !pos + Buf.length b)
      t

  let manual_unpack ~src t =
    let n = Int32.to_int (Buf.get_i32 src 0) in
    if n <> Array.length t then
      invalid_arg "Double_vec.manual_unpack: shape mismatch";
    let pos = ref (4 + (4 * n)) in
    Array.iteri
      (fun i b ->
        let len = Int32.to_int (Buf.get_i32 src (4 + (4 * i))) in
        if len <> Buf.length b then
          invalid_arg "Double_vec.manual_unpack: subvector length mismatch";
        Buf.blit ~src ~src_pos:!pos ~dst:b ~dst_pos:0 ~len;
        pos := !pos + len)
      t
end

module type STRUCT = sig
  val layout : Derive.layout
  val sizeof : int
  val packed_elem_size : int
  val pieces_per_elem : int
  val generate : count:int -> Buf.t
  val make_sink : count:int -> Buf.t
  val count_for_packed_bytes : int -> int
  val equal_elems : Buf.t -> Buf.t -> count:int -> bool
  val derived : Datatype.t
  val custom_dt : Buf.t Custom.t
  val manual_pack : Buf.t -> count:int -> dst:Buf.t -> unit
  val manual_unpack : src:Buf.t -> Buf.t -> count:int -> unit
end

(* Shared machinery for the struct types: a C-layout struct array whose
   scalar fields are packed and whose (optional) trailing array field is
   exposed as one zero-copy region per element.  When there are no
   scalar segments at all, the whole array is a single region. *)
module Make_struct (S : sig
  val layout : Derive.layout
  val region_field : string option
  val whole_region : bool
  (* when true (only valid for gap-free layouts) the custom datatype
     exposes the entire array as a single zero-copy region and packs
     nothing — "should require no packing" (paper, Listing 8) *)
end) : STRUCT = struct
  let layout = S.layout
  let sizeof = Derive.size_of S.layout

  (* (packed_off, elem_off, len) of each scalar segment, adjacent
     segments merged. *)
  let scalar_segments, scalar_packed, region_off, region_len =
    if S.whole_region then begin
      if Derive.has_padding S.layout then
        invalid_arg "Make_struct: whole_region requires a gap-free layout";
      ([||], 0, 0, 0)
    end
    else
    let fields = Derive.fields_of S.layout in
    let segs = ref [] and packed = ref 0 in
    let r_off = ref 0 and r_len = ref 0 in
    List.iter
      (fun (name, off, bytes) ->
        if Some name = S.region_field then begin
          r_off := off;
          r_len := bytes
        end
        else begin
          (match !segs with
          | (p0, e0, l0) :: rest when e0 + l0 = off ->
              segs := (p0, e0, l0 + bytes) :: rest
          | _ -> segs := (!packed, off, bytes) :: !segs);
          packed := !packed + bytes
        end)
      fields;
    (Array.of_list (List.rev !segs), !packed, !r_off, !r_len)

  let has_region = region_len > 0
  let packed_elem_size = scalar_packed + region_len

  let generate ~count =
    let b = Buf.create (count * sizeof) in
    fill_pattern b;
    b

  let make_sink ~count = Buf.create (count * sizeof)

  let packed_elem_size = if S.whole_region then sizeof else packed_elem_size

  let pieces_per_elem =
    if S.whole_region then 0
    else Array.length scalar_segments + (if has_region then 1 else 0)

  let count_for_packed_bytes bytes = max 1 (bytes / packed_elem_size)

  (* Map a packed-stream byte range to scalar-field memory:
     [f ~elem_off ~pos ~len] is called per contiguous piece.  Used by
     both pack and unpack of the custom datatype. *)
  let map_scalar_range ~offset ~window ~f =
    if scalar_packed = 0 then 0
    else begin
      let remaining = ref window and off = ref offset and done_ = ref 0 in
      while !remaining > 0 do
        let e = !off / scalar_packed and r = !off mod scalar_packed in
        (* find the segment containing packed offset r *)
        let rec seg i =
          let p0, e0, l0 = scalar_segments.(i) in
          if r < p0 + l0 then (p0, e0, l0) else seg (i + 1)
        in
        let p0, e0, l0 = seg 0 in
        let within = r - p0 in
        let n = min !remaining (l0 - within) in
        f ~elem_off:((e * sizeof) + e0 + within) ~pos:!done_ ~len:n;
        off := !off + n;
        remaining := !remaining - n;
        done_ := !done_ + n
      done;
      !done_
    end

  let custom_dt : Buf.t Custom.t =
    Custom.create
      ~pack_pieces:(fun _ ~count -> Array.length scalar_segments * count)
      {
        state = (fun _ ~count:_ -> ());
        state_free = ignore;
        query = (fun () _ ~count -> scalar_packed * count);
        pack =
          (fun () base ~count ~offset ~dst ->
            let window =
              min (Buf.length dst) ((scalar_packed * count) - offset)
            in
            map_scalar_range ~offset ~window ~f:(fun ~elem_off ~pos ~len ->
                Buf.blit ~src:base ~src_pos:elem_off ~dst ~dst_pos:pos ~len));
        unpack =
          (fun () base ~count:_ ~offset ~src ->
            ignore
              (map_scalar_range ~offset ~window:(Buf.length src)
                 ~f:(fun ~elem_off ~pos ~len ->
                   Buf.blit ~src ~src_pos:pos ~dst:base ~dst_pos:elem_off ~len)));
        region_count =
          (if has_region then Some (fun () _ ~count -> count)
           else if scalar_packed = 0 then Some (fun () _ ~count:_ -> 1)
           else None);
        regions =
          (if has_region then
             Some
               (fun () base ~count ->
                 Array.init count (fun e ->
                     Buf.sub base ~pos:((e * sizeof) + region_off) ~len:region_len))
           else if scalar_packed = 0 then
             Some
               (fun () base ~count ->
                 [| Buf.sub base ~pos:0 ~len:(count * sizeof) |])
           else None);
      }

  let derived = Derive.equivalence S.layout

  let manual_pack base ~count ~dst =
    if S.whole_region then
      Buf.blit ~src:base ~src_pos:0 ~dst ~dst_pos:0 ~len:(count * sizeof)
    else
    let pos = ref 0 in
    for e = 0 to count - 1 do
      Array.iter
        (fun (_, e0, l0) ->
          Buf.blit ~src:base ~src_pos:((e * sizeof) + e0) ~dst ~dst_pos:!pos ~len:l0;
          pos := !pos + l0)
        scalar_segments;
      if has_region then begin
        Buf.blit ~src:base ~src_pos:((e * sizeof) + region_off) ~dst
          ~dst_pos:!pos ~len:region_len;
        pos := !pos + region_len
      end
    done

  let manual_unpack ~src base ~count =
    if S.whole_region then
      Buf.blit ~src ~src_pos:0 ~dst:base ~dst_pos:0 ~len:(count * sizeof)
    else
    let pos = ref 0 in
    for e = 0 to count - 1 do
      Array.iter
        (fun (_, e0, l0) ->
          Buf.blit ~src ~src_pos:!pos ~dst:base ~dst_pos:((e * sizeof) + e0) ~len:l0;
          pos := !pos + l0)
        scalar_segments;
      if has_region then begin
        Buf.blit ~src ~src_pos:!pos ~dst:base ~dst_pos:((e * sizeof) + region_off)
          ~len:region_len;
        pos := !pos + region_len
      end
    done

  let equal_elems a b ~count =
    if S.whole_region then
      Buf.equal (Buf.sub a ~pos:0 ~len:(count * sizeof))
        (Buf.sub b ~pos:0 ~len:(count * sizeof))
    else
    let ok = ref true in
    for e = 0 to count - 1 do
      Array.iter
        (fun (_, e0, l0) ->
          let off = (e * sizeof) + e0 in
          if
            not
              (Buf.equal (Buf.sub a ~pos:off ~len:l0) (Buf.sub b ~pos:off ~len:l0))
          then ok := false)
        scalar_segments;
      if has_region then begin
        let off = (e * sizeof) + region_off in
        if
          not
            (Buf.equal
               (Buf.sub a ~pos:off ~len:region_len)
               (Buf.sub b ~pos:off ~len:region_len))
        then ok := false
      end
    done;
    !ok
end

module Struct_vec = Make_struct (struct
  let layout =
    Derive.c_layout
      [
        Derive.field "a" Datatype.Int32;
        Derive.field "b" Datatype.Int32;
        Derive.field "c" Datatype.Int32;
        Derive.field "d" Datatype.Float64;
        Derive.field "data" ~count:2048 Datatype.Int32;
      ]

  let region_field = Some "data"
  let whole_region = false
end)

module Struct_simple = Make_struct (struct
  let layout =
    Derive.c_layout
      [
        Derive.field "a" Datatype.Int32;
        Derive.field "b" Datatype.Int32;
        Derive.field "c" Datatype.Int32;
        Derive.field "d" Datatype.Float64;
      ]

  let region_field = None
  let whole_region = false
end)

module Struct_simple_no_gap = Make_struct (struct
  let layout =
    Derive.c_layout
      [
        Derive.field "a" Datatype.Int32;
        Derive.field "b" Datatype.Int32;
        Derive.field "c" Datatype.Float64;
      ]

  let region_field = None
  let whole_region = true
end)
