lib/bench_types/bench_types.mli: Mpicd Mpicd_buf Mpicd_datatype Mpicd_derive
