lib/bench_types/bench_types.ml: Array Int32 List Mpicd Mpicd_buf Mpicd_datatype Mpicd_derive
