(** The four Rust benchmark types of the paper's §V-A evaluation, with
    every transfer representation the figures compare:

    - {!Double_vec} — [Vec<Vec<i32>>]: a dynamic vector of heap
      subvectors (Figs. 1–2).  Not representable as a derived datatype;
      the baseline sends the same bytes as a raw byte stream
      (rsmpi-bytes-baseline).
    - {!Struct_vec} — [StructVec { a,b,c: i32, d: f64, data: [i32;2048] }]
      (Listing 6; Figs. 3–4): scalar fields that want packing plus a
      large array best sent as a memory region.
    - {!Struct_simple} — the same without the array (Listing 7;
      Figs. 5 and 7): pure packing, with a 4-byte C-layout gap.
    - {!Struct_simple_no_gap} — Listing 8 (Fig. 6): contiguous, needs
      no packing at all.

    Struct arrays are represented as raw memory with the exact C layout
    (a [Buf.t] of [count * sizeof] bytes), like the Rust originals. *)

module Buf = Mpicd_buf.Buf
module Datatype = Mpicd_datatype.Datatype
module Derive = Mpicd_derive.Derive
module Custom = Mpicd.Custom

module Double_vec : sig
  type t = Buf.t array
  (** Each entry is one heap-allocated subvector of i32s. *)

  val generate : subvec_bytes:int -> total_bytes:int -> t
  (** Deterministically filled subvectors.  If [total_bytes <
      subvec_bytes], a single subvector of [total_bytes] is produced
      (the paper's rule for small messages). *)

  val make_sink : subvec_bytes:int -> total_bytes:int -> t
  (** Zeroed structure of the same shape (receive side). *)

  val total_bytes : t -> int
  val equal : t -> t -> bool

  val custom_dt : t Custom.t
  (** Packed part: one i32 length per subvector; regions: the
      subvectors themselves (zero-copy). *)

  val manual_pack_size : t -> int
  val manual_pack : t -> dst:Buf.t -> unit
  (** [count:i32][len_i:i32...][data...] — the manual-pack wire format. *)

  val manual_unpack : src:Buf.t -> t -> unit
  (** Scatter a manually packed stream back into an existing structure
      of matching shape.  @raise Invalid_argument on shape mismatch. *)
end

(** Common interface of the three struct types. *)
module type STRUCT = sig
  val layout : Derive.layout
  val sizeof : int  (** bytes per element incl. padding *)

  val packed_elem_size : int  (** bytes per element on the wire *)

  val pieces_per_elem : int
  (** contiguous pieces a pack loop touches per element (cost model) *)

  val generate : count:int -> Buf.t
  val make_sink : count:int -> Buf.t
  val count_for_packed_bytes : int -> int
  (** Elements whose packed size best matches the requested total. *)

  val equal_elems : Buf.t -> Buf.t -> count:int -> bool
  (** Compare the typed fields of [count] elements (ignores padding). *)

  val derived : Datatype.t
  (** The RSMPI/Open MPI derived datatype (cached). *)

  val custom_dt : Buf.t Custom.t
  (** The custom-API representation; [obj] is the array base buffer and
      [count] the element count. *)

  val manual_pack : Buf.t -> count:int -> dst:Buf.t -> unit
  val manual_unpack : src:Buf.t -> Buf.t -> count:int -> unit
end

module Struct_vec : STRUCT
module Struct_simple : STRUCT
module Struct_simple_no_gap : STRUCT
