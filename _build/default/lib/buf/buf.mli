(** Raw memory buffers for the mpicd stack.

    All message payloads, packed representations and zero-copy regions in
    this repository are slices of off-heap [Bigarray] byte buffers
    ("bigstrings").  This mirrors the role of raw [void*] memory in the
    paper's C/Rust prototype: regions can alias each other, can be
    sub-sliced without copying, and carry explicit lengths. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A [t] is a view (offset + length) into a bigstring.  Slicing is O(1)
    and never copies. *)
type t = { base : bigstring; off : int; len : int }

val create : int -> t
(** [create n] allocates a fresh zero-filled buffer of [n] bytes. *)

val of_bigstring : bigstring -> t

val length : t -> int

val sub : t -> pos:int -> len:int -> t
(** [sub b ~pos ~len] is the slice [b.[pos .. pos+len-1]].
    @raise Invalid_argument if the range does not fit. *)

val is_empty : t -> bool

(** {1 Byte access} *)

val get : t -> int -> char
val set : t -> int -> char -> unit
val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

(** {1 Little-endian scalar access}

    Multibyte accessors use little-endian order, matching the x86-64
    testbed of the paper.  Offsets are in bytes and need not be
    aligned. *)

val get_i32 : t -> int -> int32
val set_i32 : t -> int -> int32 -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit
val get_f64 : t -> int -> float
val set_f64 : t -> int -> float -> unit
val get_f32 : t -> int -> float
val set_f32 : t -> int -> float -> unit

(** {1 Bulk operations} *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy [len] bytes.  Overlapping ranges behave like [memmove]. *)

val fill : t -> char -> unit

val copy : t -> t
(** Deep copy into a fresh buffer of the same length. *)

val equal : t -> t -> bool
(** Byte-wise equality of contents. *)

val of_string : string -> t
val to_string : t -> string

val blit_from_string : string -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
val blit_to_bytes : src:t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit

val concat : t list -> t
(** Fresh buffer holding the concatenation of the slices. *)

val hexdump : ?max_bytes:int -> t -> string
(** Human-readable hex dump, for debugging and error messages. *)

val same_memory : t -> t -> bool
(** [same_memory a b] is [true] iff the two slices denote exactly the
    same byte range of the same underlying bigstring (used by tests to
    assert zero-copy behaviour). *)

val overlaps : t -> t -> bool
(** Whether the two slices share at least one byte of storage. *)
