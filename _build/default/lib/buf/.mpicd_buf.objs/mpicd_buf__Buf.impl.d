lib/buf/buf.ml: Bigarray Buffer Bytes Char Int32 Int64 List Printf String
