lib/buf/buf.mli: Bigarray Bytes
