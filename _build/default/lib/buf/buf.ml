type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { base : bigstring; off : int; len : int }

let create n =
  if n < 0 then invalid_arg "Buf.create: negative length";
  let base = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  Bigarray.Array1.fill base '\000';
  { base; off = 0; len = n }

let of_bigstring base = { base; off = 0; len = Bigarray.Array1.dim base }

let length t = t.len

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg
      (Printf.sprintf "Buf.sub: pos=%d len=%d out of range (buffer len %d)"
         pos len t.len);
  { base = t.base; off = t.off + pos; len }

let is_empty t = t.len = 0

let check t i n =
  if i < 0 || i + n > t.len then
    invalid_arg
      (Printf.sprintf "Buf: offset %d (+%d) out of range (len %d)" i n t.len)

let get t i =
  check t i 1;
  Bigarray.Array1.unsafe_get t.base (t.off + i)

let set t i c =
  check t i 1;
  Bigarray.Array1.unsafe_set t.base (t.off + i) c

let get_u8 t i = Char.code (get t i)
let set_u8 t i v = set t i (Char.chr (v land 0xff))

let get_i32 t i =
  check t i 4;
  let b k = Int32.of_int (Char.code (Bigarray.Array1.unsafe_get t.base (t.off + i + k))) in
  let ( ||| ) = Int32.logor and ( <<< ) = Int32.shift_left in
  b 0 ||| (b 1 <<< 8) ||| (b 2 <<< 16) ||| (b 3 <<< 24)

let set_i32 t i v =
  check t i 4;
  let put k x =
    Bigarray.Array1.unsafe_set t.base (t.off + i + k)
      (Char.unsafe_chr (Int32.to_int x land 0xff))
  in
  put 0 v;
  put 1 (Int32.shift_right_logical v 8);
  put 2 (Int32.shift_right_logical v 16);
  put 3 (Int32.shift_right_logical v 24)

let get_i64 t i =
  check t i 8;
  let b k = Int64.of_int (Char.code (Bigarray.Array1.unsafe_get t.base (t.off + i + k))) in
  let ( ||| ) = Int64.logor and ( <<< ) = Int64.shift_left in
  b 0 ||| (b 1 <<< 8) ||| (b 2 <<< 16) ||| (b 3 <<< 24)
  ||| (b 4 <<< 32) ||| (b 5 <<< 40) ||| (b 6 <<< 48) ||| (b 7 <<< 56)

let set_i64 t i v =
  check t i 8;
  let put k x =
    Bigarray.Array1.unsafe_set t.base (t.off + i + k)
      (Char.unsafe_chr (Int64.to_int x land 0xff))
  in
  put 0 v;
  put 1 (Int64.shift_right_logical v 8);
  put 2 (Int64.shift_right_logical v 16);
  put 3 (Int64.shift_right_logical v 24);
  put 4 (Int64.shift_right_logical v 32);
  put 5 (Int64.shift_right_logical v 40);
  put 6 (Int64.shift_right_logical v 48);
  put 7 (Int64.shift_right_logical v 56)

let get_f64 t i = Int64.float_of_bits (get_i64 t i)
let set_f64 t i v = set_i64 t i (Int64.bits_of_float v)
let get_f32 t i = Int32.float_of_bits (get_i32 t i)
let set_f32 t i v = set_i32 t i (Int32.bits_of_float v)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  check src src_pos len;
  check dst dst_pos len;
  (* Small copies dominate the pack loops of the benchmark kernels; a
     byte loop avoids the cost of materialising two Bigarray views.
     The byte loop copies forward, which is only memmove-correct when
     the destination does not overlap the source from above. *)
  let so = src.off + src_pos and d_o = dst.off + dst_pos in
  if len <= 64 && (src.base != dst.base || d_o <= so || d_o >= so + len) then
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set dst.base (d_o + i)
        (Bigarray.Array1.unsafe_get src.base (so + i))
    done
  else begin
    let s = Bigarray.Array1.sub src.base so len in
    let d = Bigarray.Array1.sub dst.base d_o len in
    Bigarray.Array1.blit s d
  end

let fill t c =
  let s = Bigarray.Array1.sub t.base t.off t.len in
  Bigarray.Array1.fill s c

let copy t =
  let dst = create t.len in
  blit ~src:t ~src_pos:0 ~dst ~dst_pos:0 ~len:t.len;
  dst

let equal a b =
  a.len = b.len
  &&
  let rec loop i =
    i >= a.len
    || Bigarray.Array1.unsafe_get a.base (a.off + i)
         = Bigarray.Array1.unsafe_get b.base (b.off + i)
       && loop (i + 1)
  in
  loop 0

let of_string s =
  let t = create (String.length s) in
  String.iteri (fun i c -> Bigarray.Array1.unsafe_set t.base i c) s;
  t

let to_string t =
  String.init t.len (fun i -> Bigarray.Array1.unsafe_get t.base (t.off + i))

let blit_from_string s ~src_pos ~dst ~dst_pos ~len =
  if src_pos < 0 || len < 0 || src_pos + len > String.length s then
    invalid_arg "Buf.blit_from_string: source range";
  check dst dst_pos len;
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst.base (dst.off + dst_pos + i)
      (String.unsafe_get s (src_pos + i))
  done

let blit_to_bytes ~src ~src_pos ~dst ~dst_pos ~len =
  check src src_pos len;
  if dst_pos < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg "Buf.blit_to_bytes: destination range";
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + i)
      (Bigarray.Array1.unsafe_get src.base (src.off + src_pos + i))
  done

let concat parts =
  let total = List.fold_left (fun acc p -> acc + p.len) 0 parts in
  let dst = create total in
  let pos = ref 0 in
  List.iter
    (fun p ->
      blit ~src:p ~src_pos:0 ~dst ~dst_pos:!pos ~len:p.len;
      pos := !pos + p.len)
    parts;
  dst

let hexdump ?(max_bytes = 256) t =
  let n = min t.len max_bytes in
  let buf = Buffer.create (n * 4) in
  for row = 0 to (n - 1) / 16 do
    Buffer.add_string buf (Printf.sprintf "%08x  " (row * 16));
    for col = 0 to 15 do
      let i = (row * 16) + col in
      if i < n then Buffer.add_string buf (Printf.sprintf "%02x " (get_u8 t i))
      else Buffer.add_string buf "   "
    done;
    Buffer.add_char buf ' ';
    for col = 0 to 15 do
      let i = (row * 16) + col in
      if i < n then begin
        let c = get t i in
        Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
      end
    done;
    Buffer.add_char buf '\n'
  done;
  if t.len > max_bytes then
    Buffer.add_string buf (Printf.sprintf "... (%d more bytes)\n" (t.len - max_bytes));
  Buffer.contents buf

let same_memory a b = a.base == b.base && a.off = b.off && a.len = b.len

let overlaps a b =
  a.base == b.base && a.len > 0 && b.len > 0
  && a.off < b.off + b.len
  && b.off < a.off + a.len
