(* Tests for ULFM-style process-failure resilience: the heartbeat
   failure detector, failure-triggered cancellation, comm_revoke /
   comm_agree / comm_shrink, fault-tolerant collectives, and the
   exactly-once release of custom-datatype callback state on aborted
   operations.  See docs/RESILIENCE.md. *)

module Buf = Mpicd_buf.Buf
module Engine = Mpicd_simnet.Engine
module Config = Mpicd_simnet.Config
module Stats = Mpicd_simnet.Stats
module Fault = Mpicd_simnet.Fault
module Ucx = Mpicd_ucx.Ucx
module Mpi = Mpicd.Mpi
module Custom = Mpicd.Custom
module Coll = Mpicd_collectives.Collectives

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.))

let crash_plan ?(extra = "") ~rank ~at () =
  let s = Printf.sprintf "crash=%d@%g,hb=100000%s" rank at extra in
  match Fault.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S: %s" s e

(* --- failure detector: bounded declaration latency --- *)

let test_detector_latency () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let ctx = Ucx.create_context ~engine ~config:Config.default ~stats in
  ignore (Ucx.create_worker ctx);
  ignore (Ucx.create_worker ctx);
  let declared = ref [] in
  Ucx.on_failure ctx (fun ~rank ~time -> declared := (rank, time) :: !declared);
  Ucx.set_faults ctx (Some (crash_plan ~rank:1 ~at:50_000. ()));
  Engine.run engine;
  (match !declared with
  | [ (1, t) ] ->
      (* first heartbeat boundary after the crash, plus two latencies *)
      check_float "declaration instant" 102_600. t;
      check_bool "within the documented bound" true
        (t <= 50_000. +. 100_000. +. (2. *. Config.default.Config.link.latency_ns))
  | l -> Alcotest.failf "expected one declaration, got %d" (List.length l));
  check_bool "is_failed" true (Ucx.is_failed ctx ~rank:1);
  check_bool "any_failures" true (Ucx.any_failures ctx);
  check_bool "failed_ranks" true (Ucx.failed_ranks ctx = [ 1 ]);
  check_int "counted in stats" 1 stats.Stats.failures_detected

(* --- crash mid-collective: every rank terminates, none hangs --- *)

let test_crash_mid_barrier_terminates () =
  let w = Mpi.create_world ~size:3 () in
  Mpi.set_faults w (Some (crash_plan ~rank:1 ~at:30_000. ()));
  let completed = Array.make 3 0 in
  let errs = Array.make 3 None in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      try
        for _ = 1 to 200 do
          Coll.barrier comm;
          completed.(me) <- completed.(me) + 1
        done
      with Mpi.Mpi_error e -> errs.(me) <- Some e);
  for r = 0 to 2 do
    check_bool
      (Printf.sprintf "rank %d stopped before finishing the loop" r)
      true
      (completed.(r) < 200);
    match errs.(r) with
    | Some (Mpi.Peer_failed _) | Some (Mpi.Revoked) -> ()
    | Some e ->
        Alcotest.failf "rank %d: unexpected error %s" r
          (match e with
          | Mpi.Timeout _ -> "Timeout"
          | Mpi.Data_corrupted -> "Data_corrupted"
          | _ -> "?")
    | None -> Alcotest.failf "rank %d finished a barrier loop across a crash" r
  done;
  (* the communicator is poisoned: the next collective fails fast *)
  let fast = ref false in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        match Coll.barrier comm with
        | () -> ()
        | exception Mpi.Mpi_error (Mpi.Peer_failed _) -> fast := true);
  check_bool "subsequent collective fails fast" true !fast;
  check_bool "operations were cancelled" true
    ((Mpi.world_stats w).Stats.ops_cancelled > 0)

(* --- comm_revoke: pending and future operations fail fast --- *)

let test_revoke () =
  let w = Mpi.create_world ~size:2 () in
  let engine = Mpi.world_engine w in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let r = Mpi.irecv comm ~source:1 ~tag:9 (Mpi.Bytes (Buf.create 64)) in
        check_bool "not yet revoked" false (Mpi.comm_revoked comm);
        Mpi.comm_revoke comm;
        check_bool "revoked locally" true (Mpi.comm_revoked comm);
        (match Mpi.wait r with
        | _ -> Alcotest.fail "pending recv survived a revocation"
        | exception Mpi.Mpi_error Mpi.Revoked -> ());
        match Mpi.send comm ~dst:1 ~tag:10 (Mpi.Bytes (Buf.create 8)) with
        | () -> Alcotest.fail "post-revoke send succeeded"
        | exception Mpi.Mpi_error Mpi.Revoked -> ()
      end
      else begin
        (* one link latency later the peer has seen the revocation too *)
        Engine.sleep engine 10_000.;
        check_bool "peer sees the revocation" true (Mpi.comm_revoked comm);
        match Mpi.send comm ~dst:0 ~tag:11 (Mpi.Bytes (Buf.create 8)) with
        | () -> Alcotest.fail "peer send on a revoked communicator succeeded"
        | exception Mpi.Mpi_error Mpi.Revoked -> ()
      end);
  let s = Mpi.world_stats w in
  check_int "one revocation" 1 s.Stats.comm_revokes;
  check_int "the pending recv was cancelled" 1 s.Stats.ops_cancelled

(* --- comm_agree: failure mid-agreement, acknowledgement --- *)

let test_agree_with_failure () =
  let w = Mpi.create_world ~size:3 () in
  let engine = Mpi.world_engine w in
  Mpi.set_faults w (Some (crash_plan ~rank:2 ~at:10_000. ()));
  Mpi.run w (fun comm ->
      Mpi.set_errhandler comm Mpi.Errors_return;
      let me = Mpi.rank comm in
      if me = 2 then begin
        (* sleep past our own declared death, then try to participate:
           a presumed-dead caller raises immediately *)
        Engine.sleep engine 200_000.;
        match Mpi.comm_agree comm ~flags:1 with
        | _ -> Alcotest.fail "a dead rank joined an agreement"
        | exception Mpi.Mpi_error (Mpi.Peer_failed { peer }) ->
            check_int "reported itself" 2 peer
      end
      else begin
        let flags = if me = 0 then 0b11 else 0b01 in
        let v = Mpi.comm_agree comm ~flags in
        check_int "AND of the live contributions" 1 v;
        (* rank 2 failed without contributing and nobody acked it *)
        (match Mpi.last_error comm with
        | Some (Mpi.Peer_failed { peer }) ->
            check_int "unacked failure reported" 2 peer
        | _ -> Alcotest.fail "expected a stashed Peer_failed");
        Mpi.clear_last_error comm;
        check_bool "failure listed" true (Mpi.failed_ranks comm = [ 2 ]);
        Mpi.comm_failure_ack comm;
        check_bool "acknowledged" true (Mpi.comm_get_acked comm = [ 2 ]);
        (* with the failure acknowledged by every live rank, agreement
           completes silently (ULFM MPI_Comm_agree semantics) *)
        let v = Mpi.comm_agree comm ~flags:1 in
        check_int "second agreement value" 1 v;
        check_bool "no error this time" true (Mpi.last_error comm = None)
      end);
  check_int "two agreements" 2 (Mpi.world_stats w).Stats.comm_agreements

(* --- comm_shrink + resilient allreduce on the survivors --- *)

let test_resilient_allreduce_shrink () =
  let n = 4 in
  let floats = 4096 (* 32 KiB: the rendezvous path *) in
  let w = Mpi.create_world ~size:n () in
  Mpi.set_faults w (Some (crash_plan ~rank:2 ~at:20_000. ()));
  let shrinks = Array.make n (-1) in
  let groups = Array.make n [] in
  let sums = Array.make n 0. in
  let died = ref false in
  Mpi.run w (fun comm ->
      let me = Mpi.rank comm in
      let data = Array.make floats (float_of_int (me + 1)) in
      match Coll.resilient_allreduce_f64 comm ~op:`Sum data with
      | comm', k ->
          shrinks.(me) <- k;
          groups.(me) <-
            List.init (Mpi.size comm') (Mpi.world_rank_of comm');
          sums.(me) <- data.(0);
          Array.iter
            (fun v -> if v <> data.(0) then Alcotest.fail "ragged result")
            data
      | exception Mpi.Mpi_error (Mpi.Peer_failed _) ->
          check_int "only the crashed rank gives up" 2 me;
          died := true);
  check_bool "the crashed rank gave up" true !died;
  List.iter
    (fun r ->
      check_int (Printf.sprintf "rank %d shrank once" r) 1 shrinks.(r);
      check_bool
        (Printf.sprintf "rank %d group excludes the dead rank" r)
        true
        (groups.(r) = [ 0; 1; 3 ]);
      (* 1 + 2 + 4: the reduction over the survivors *)
      check_float (Printf.sprintf "rank %d sum" r) 7. sums.(r))
    [ 0; 1; 3 ];
  let s = Mpi.world_stats w in
  check_int "one revoke" 1 s.Stats.comm_revokes;
  check_int "one shrink" 1 s.Stats.comm_shrinks;
  check_bool "failure detected" true (s.Stats.failures_detected >= 1)

(* --- custom-datatype state is released exactly once on abort --- *)

let counting_dt created freed : Buf.t Custom.t =
  Custom.create
    {
      Custom.state = (fun _ ~count:_ -> incr created);
      state_free = (fun () -> incr freed);
      query = (fun () b ~count:_ -> Buf.length b);
      pack =
        (fun () b ~count:_ ~offset ~dst ->
          let len = min (Buf.length dst) (Buf.length b - offset) in
          Buf.blit ~src:b ~src_pos:offset ~dst ~dst_pos:0 ~len;
          len);
      unpack = (fun () _ ~count:_ ~offset:_ ~src:_ -> ());
      region_count = None;
      regions = None;
    }

let test_rndv_abort_frees_state_once () =
  (* a rendezvous-sized generic send whose handshake times out because
     the peer never posts: the withdrawn rendezvous state must release
     the pack callbacks' state exactly once (the leak this guards
     against: the timeout path dropped the envelope without finishing
     the datatype) *)
  let plan =
    match Fault.of_string "rndv_timeout=10000" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let created = ref 0 and freed = ref 0 in
  let dt = counting_dt created freed in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then
        let obj = Buf.create (128 * 1024) in
        match Mpi.send comm ~dst:1 ~tag:1 (Mpi.Custom { dt; obj; count = 1 }) with
        | () -> Alcotest.fail "unmatched rendezvous send completed"
        | exception Mpi.Mpi_error (Mpi.Timeout _) -> ());
  check_int "state allocated once" 1 !created;
  check_int "state freed exactly once" 1 !freed

let test_failed_wait_replays_once () =
  (* waiting twice on a failed request replays the same error without
     re-running cleanup (the double-finalize this guards against) *)
  let plan =
    match Fault.of_string "drop=1.0,retries=1,rto=1000" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let w = Mpi.create_world ~size:2 () in
  Mpi.set_faults w (Some plan);
  let created = ref 0 and freed = ref 0 in
  let dt = counting_dt created freed in
  Mpi.run w (fun comm ->
      if Mpi.rank comm = 0 then begin
        let obj = Buf.create 512 in
        let r = Mpi.isend comm ~dst:1 ~tag:1 (Mpi.Custom { dt; obj; count = 1 }) in
        (match Mpi.wait r with
        | _ -> Alcotest.fail "send survived a 100% lossy link"
        | exception Mpi.Mpi_error (Mpi.Timeout _) -> ());
        match Mpi.wait r with
        | _ -> Alcotest.fail "second wait returned success"
        | exception Mpi.Mpi_error (Mpi.Timeout _) -> ()
      end);
  check_int "state allocated once" 1 !created;
  check_int "state freed exactly once despite two waits" 1 !freed

let suite =
  let tc = Alcotest.test_case in
  ( "resilience",
    [
      tc "detector declares within the bound" `Quick test_detector_latency;
      tc "crash mid-barrier: all ranks terminate" `Quick
        test_crash_mid_barrier_terminates;
      tc "revoke interrupts pending and future ops" `Quick test_revoke;
      tc "agree survives mid-agreement failure" `Quick test_agree_with_failure;
      tc "shrink + resilient allreduce" `Quick test_resilient_allreduce_shrink;
      tc "rndv abort frees custom state once" `Quick
        test_rndv_abort_frees_state_once;
      tc "failed wait replays, cleanup runs once" `Quick
        test_failed_wait_replays_once;
    ] )
